// Timeseries: the workload the paper's introduction motivates — telemetry
// that arrives *near*-sorted because events are timestamped at the source
// but delivered over parallel, occasionally-lagging channels.
//
// The example builds such a stream, measures its K-L sortedness, ingests it
// into both a classical B+-tree and a QuIT, and compares ingestion time,
// fast-path usage and memory footprint, then runs a time-window query.
package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	quit "github.com/quittree/quit"
)

// event is a measurement keyed by its source timestamp (microseconds).
type event struct {
	ts    int64
	value float64
}

// generate produces n events whose arrival order lags their timestamp
// order: most events arrive in order, but a fraction is delayed by up to
// maxDelay positions (e.g. a slow shard or a retried batch).
func generate(n int, delayed float64, maxDelay int, seed int64) []event {
	rng := rand.New(rand.NewSource(seed))
	evs := make([]event, n)
	for i := range evs {
		evs[i] = event{ts: int64(i) * 1000, value: rng.Float64() * 100}
	}
	for i := 0; i < int(float64(n)*delayed); i++ {
		src := rng.Intn(n)
		dst := src + rng.Intn(maxDelay) + 1
		if dst >= n {
			continue
		}
		evs[src], evs[dst] = evs[dst], evs[src]
	}
	return evs
}

// measure ingests the stream into a fresh index of the given design and
// returns the numbers we report. The tree is scoped here and released
// before the next design runs, so one design's live heap doesn't tax the
// next one's GC.
type result struct {
	design    quit.Design
	elapsed   time.Duration
	fastFrac  float64
	memory    int64
	occupancy float64
}

func measure(design quit.Design, evs []event) result {
	idx := quit.New[int64, float64](quit.Options{Design: design})
	runtime.GC()
	start := time.Now()
	for _, e := range evs {
		idx.Insert(e.ts, e.value)
	}
	elapsed := time.Since(start)
	return result{
		design:    design,
		elapsed:   elapsed,
		fastFrac:  idx.Stats().FastInsertFraction(),
		memory:    idx.MemoryFootprint(),
		occupancy: idx.AvgLeafOccupancy(),
	}
}

func main() {
	const n = 2_000_000
	evs := generate(n, 0.03, 50_000, 7)

	// How sorted is the arrival stream, in the paper's K-L terms?
	keys := make([]int64, len(evs))
	for i, e := range evs {
		keys[i] = e.ts
	}
	m := quit.MeasureSortedness(keys)
	fmt.Printf("stream: %d events, K=%.2f%% out-of-order, max displacement %.2f%% of N\n",
		m.N, m.KFraction()*100, m.LFraction()*100)

	b := measure(quit.BPlusTree, evs)
	q := measure(quit.QuIT, evs)

	fmt.Printf("\n%-12s %12s %14s %12s %10s\n", "design", "ingest", "fast-inserts", "memory", "occupancy")
	for _, r := range []result{b, q} {
		fmt.Printf("%-12s %12s %13.1f%% %10.1fMB %9.1f%%\n",
			r.design, r.elapsed.Round(time.Millisecond), r.fastFrac*100,
			float64(r.memory)/(1<<20), r.occupancy*100)
	}
	fmt.Printf("\nQuIT ingestion speedup: %.2fx\n", float64(b.elapsed)/float64(q.elapsed))

	// A dashboard-style window query: average over 10 seconds of data.
	quitIdx := quit.New[int64, float64](quit.Options{})
	for _, e := range evs {
		quitIdx.Insert(e.ts, e.value)
	}
	winStart := int64(n/2) * 1000
	winEnd := winStart + 10_000_000
	sum, count := 0.0, 0
	quitIdx.Range(winStart, winEnd, func(_ int64, v float64) bool {
		sum += v
		count++
		return true
	})
	fmt.Printf("window [%d,%d): %d events, mean value %.2f\n",
		winStart, winEnd, count, sum/float64(count))
}
