// Stockindex: indexing a market price stream on the price attribute, the
// paper's real-world scenario (§5.5). Prices trend upward with intraday
// noise, so the stream is implicitly near-sorted even though nobody sorted
// it — exactly the "sortedness as an unexploited resource" QuIT targets.
//
// The example synthesizes a price walk inline (the repository's
// internal/stock package provides richer NIFTY/SPXUSD-like generators for
// the benchmark harness), then compares all five index designs.
package main

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"time"

	quit "github.com/quittree/quit"
)

// priceKeys generates minute-close prices via a trending random walk and
// encodes them as unique integer keys: price ticks in the high bits, the
// minute sequence in the low bits (a (price, ts) composite key).
func priceKeys(minutes int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	price := 8000.0
	drift := 0.15 / 100_000
	vol := 0.10 / math.Sqrt(100_000)
	trend := 0.0
	keys := make([]int64, minutes)
	for i := range keys {
		trend += -trend/4000 + 1.4*vol/65*rng.NormFloat64()
		price *= 1 + drift + trend + vol*rng.NormFloat64()
		if price < 1 {
			price = 1
		}
		keys[i] = int64(price*100)<<22 | int64(i)
	}
	return keys
}

func main() {
	const minutes = 1_000_000
	keys := priceKeys(minutes, 2015)

	m := quit.MeasureSortedness(keys)
	fmt.Printf("synthetic instrument: %d minute closes, K=%.1f%%, adjacent inversions=%.1f%%\n\n",
		m.N, m.KFraction()*100, float64(m.AdjacentInversions)/float64(m.N)*100)

	designs := []quit.Design{
		quit.BPlusTree, quit.TailBPlusTree, quit.LILBPlusTree, quit.QuIT,
	}
	var base time.Duration
	fmt.Printf("%-14s %10s %9s %13s\n", "design", "ingest", "speedup", "fast-inserts")
	for _, d := range designs {
		idx := quit.New[int64, int64](quit.Options{Design: d})
		runtime.GC() // don't bill the previous design's garbage to this one
		start := time.Now()
		for i, k := range keys {
			idx.Insert(k, int64(i))
		}
		elapsed := time.Since(start)
		if d == quit.BPlusTree {
			base = elapsed
		}
		fmt.Printf("%-14s %10s %8.2fx %12.1f%%\n",
			d, elapsed.Round(time.Millisecond),
			float64(base)/float64(elapsed),
			idx.Stats().FastInsertFraction()*100)
	}

	// Price-band query on the final QuIT index: how many minutes closed in
	// a band? (Keys encode price<<22 | minute.)
	idx := quit.New[int64, int64](quit.Options{})
	for i, k := range keys {
		idx.Insert(k, int64(i))
	}
	lo, hi := int64(820000)<<22, int64(830000)<<22
	count := idx.Range(lo, hi, func(int64, int64) bool { return true })
	fmt.Printf("\nminutes closing in price band [8200.00, 8300.00): %d\n", count)
}
