// Checkpoint: snapshotting an index to disk and restoring it, plus the
// ordered-query APIs (Floor/Ceiling, Seek iteration). A QuIT index built
// from a near-sorted feed is saved, reloaded compactly, and queried.
package main

import (
	"bytes"
	"fmt"
	"log"

	quit "github.com/quittree/quit"
)

func main() {
	// Build an index from a near-sorted feed (5% out-of-order).
	keys := quit.GenerateWorkload(quit.WorkloadSpec{N: 500_000, K: 0.05, L: 1, Seed: 1})
	idx := quit.New[int64, int64](quit.Options{})
	for _, k := range keys {
		idx.Insert(k, k*2)
	}
	fmt.Printf("built: %d entries, height %d, %.1f%% leaf occupancy\n",
		idx.Len(), idx.Height(), idx.AvgLeafOccupancy()*100)

	// Snapshot. Any io.Writer works; a file in production, a buffer here.
	var snap bytes.Buffer
	if err := idx.Save(&snap); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot: %.1f MB\n", float64(snap.Len())/(1<<20))

	// Restore — the loaded tree is rebuilt compactly via bulk loading.
	restored, err := quit.Load[int64, int64](&snap, quit.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored: %d entries, %.1f%% leaf occupancy\n",
		restored.Len(), restored.AvgLeafOccupancy()*100)

	// Ordered queries on the restored index.
	if k, v, ok := restored.Floor(123_456); ok {
		fmt.Printf("Floor(123456)   = (%d, %d)\n", k, v)
	}
	if k, v, ok := restored.Ceiling(123_456); ok {
		fmt.Printf("Ceiling(123456) = (%d, %d)\n", k, v)
	}

	// Cursor iteration from a seek point.
	it := restored.Seek(499_995)
	fmt.Println("tail of the key space:")
	for it.Next() {
		fmt.Printf("  %d -> %d\n", it.Key(), it.Value())
	}

	// The restored tree keeps ingesting through the fast path.
	restored.ResetCounters()
	for i := int64(500_000); i < 510_000; i++ {
		restored.Insert(i, i*2)
	}
	fmt.Printf("post-restore appends: %.1f%% fast-inserts\n",
		restored.Stats().FastInsertFraction()*100)
}
