// Checkpoint: snapshotting an index to disk and restoring it, the ordered
// query APIs (Floor/Ceiling, Seek iteration), and the crash-safe
// DurableTree — write-ahead logging, checkpoints, and recovery on reopen.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	quit "github.com/quittree/quit"
)

func main() {
	// Build an index from a near-sorted feed (5% out-of-order).
	keys := quit.GenerateWorkload(quit.WorkloadSpec{N: 500_000, K: 0.05, L: 1, Seed: 1})
	idx := quit.New[int64, int64](quit.Options{})
	for _, k := range keys {
		idx.Insert(k, k*2)
	}
	fmt.Printf("built: %d entries, height %d, %.1f%% leaf occupancy\n",
		idx.Len(), idx.Height(), idx.AvgLeafOccupancy()*100)

	// Snapshot. Any io.Writer works; a file in production, a buffer here.
	var snap bytes.Buffer
	if err := idx.Save(&snap); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot: %.1f MB\n", float64(snap.Len())/(1<<20))

	// Restore — the loaded tree is rebuilt compactly via bulk loading.
	restored, err := quit.Load[int64, int64](&snap, quit.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored: %d entries, %.1f%% leaf occupancy\n",
		restored.Len(), restored.AvgLeafOccupancy()*100)

	// Ordered queries on the restored index.
	if k, v, ok := restored.Floor(123_456); ok {
		fmt.Printf("Floor(123456)   = (%d, %d)\n", k, v)
	}
	if k, v, ok := restored.Ceiling(123_456); ok {
		fmt.Printf("Ceiling(123456) = (%d, %d)\n", k, v)
	}

	// Cursor iteration from a seek point.
	it := restored.Seek(499_995)
	fmt.Println("tail of the key space:")
	for it.Next() {
		fmt.Printf("  %d -> %d\n", it.Key(), it.Value())
	}

	// The restored tree keeps ingesting through the fast path.
	restored.ResetCounters()
	for i := int64(500_000); i < 510_000; i++ {
		restored.Insert(i, i*2)
	}
	fmt.Printf("post-restore appends: %.1f%% fast-inserts\n",
		restored.Stats().FastInsertFraction()*100)

	durableDemo()
}

// durableDemo shows the crash-safe layer: every write goes through a
// write-ahead log before it is applied, Checkpoint installs a checksummed
// snapshot and truncates the log, and Open replays whatever the log holds
// above the newest snapshot. Killing this process at any point between
// Open and Close would lose nothing acknowledged (SyncAlways here; see
// DESIGN.md §8 for the weaker policies' windows).
func durableDemo() {
	dir, err := os.MkdirTemp("", "quit-checkpoint-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Segmented WAL + auto-checkpoint: the log rotates into 16KiB segment
	// files, and once the live log (what a reopen would have to replay)
	// passes 500 records, a checkpoint runs on its own goroutine — off
	// the commit path — and deletes the covered segments.
	opts := quit.DurableOptions{
		Sync:         quit.SyncAlways,
		SegmentBytes: 16 << 10,
		Checkpoint:   quit.CheckpointPolicy{MaxRecords: 500},
	}

	db, err := quit.Open[int64, int64](dir, opts)
	if err != nil {
		log.Fatal(err)
	}
	for i := int64(0); i < 1_000; i++ {
		if err := db.Insert(i, i*2); err != nil {
			log.Fatal(err)
		}
	}
	// Checkpoint: fold the logged writes into an on-disk snapshot. The
	// install is atomic — a crash mid-checkpoint leaves the previous
	// generation intact.
	if err := db.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	// More writes land in a fresh log segment above the snapshot.
	for i := int64(1_000); i < 1_250; i++ {
		if err := db.Insert(i, i*2); err != nil {
			log.Fatal(err)
		}
	}
	if _, _, err := db.Delete(42); err != nil {
		log.Fatal(err)
	}
	st := db.DurabilityStats()
	fmt.Printf("\nself-healing counters: %d segments rotated, %d checkpoints "+
		"(%d automatic), %d WAL bytes reclaimed\n",
		st.SegmentsRotated, st.Checkpoints, st.AutoCheckpoints, st.WALBytesReclaimed)
	if err := db.Close(); err != nil { // Close drains any in-flight auto-checkpoint
		log.Fatal(err)
	}

	// "Restart": Open loads the snapshot and replays the log tail.
	db2, err := quit.Open[int64, int64](dir, opts)
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()

	rec := db2.Recovery()
	fmt.Printf("\ndurable reopen: %d entries (snapshot %q covered seq %d, "+
		"%d records replayed)\n",
		db2.Len(), rec.Snapshot, rec.SnapshotSeq, rec.RecordsReplayed)
	fmt.Printf("delete of key 42 survived the restart: %v\n", !db2.Contains(42))
}
