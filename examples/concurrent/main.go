// Concurrent: multi-goroutine ingestion and querying with a synchronized
// QuIT (paper §4.5 / Figure 13). Writer goroutines append a shared
// near-sorted stream while reader goroutines issue point lookups and range
// scans; the run reports per-phase throughput for QuIT vs the classical
// B+-tree.
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	quit "github.com/quittree/quit"
)

const (
	n       = 1_000_000
	writers = 4
	readers = 4
)

func run(design quit.Design, keys []int64) (insertOps, lookupOps float64) {
	idx := quit.New[int64, int64](quit.Options{Design: design, Synchronized: true})

	// Phase 1: concurrent ingestion. Writer w takes stream positions
	// congruent to w, so all writers chase the same in-order frontier —
	// the contended scenario the paper measures.
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(keys); i += writers {
				idx.Insert(keys[i], keys[i])
			}
		}(w)
	}
	wg.Wait()
	insertOps = float64(len(keys)) / time.Since(start).Seconds()

	// Phase 2: concurrent reads — point lookups plus occasional scans.
	var total atomic.Int64
	start = time.Now()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			ops := 0
			for ops < 200_000 {
				k := int64(rng.Intn(n))
				if ops%1000 == 999 {
					idx.Range(k, k+500, func(int64, int64) bool { return true })
				} else if _, ok := idx.Get(k); !ok {
					panic("lost a key")
				}
				ops++
			}
			total.Add(int64(ops))
		}(r)
	}
	wg.Wait()
	lookupOps = float64(total.Load()) / time.Since(start).Seconds()
	return insertOps, lookupOps
}

func main() {
	keys := quit.GenerateWorkload(quit.WorkloadSpec{N: n, K: 0.05, L: 1, Seed: 11})
	fmt.Printf("%d entries (K=5%% near-sorted), %d writers, %d readers\n\n", n, writers, readers)
	fmt.Printf("%-10s %16s %16s\n", "design", "inserts/sec", "reads/sec")
	for _, d := range []quit.Design{quit.BPlusTree, quit.QuIT} {
		ins, look := run(d, keys)
		fmt.Printf("%-10s %15.2fM %15.2fM\n", d, ins/1e6, look/1e6)
	}
}
