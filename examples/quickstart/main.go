// Quickstart: the basic Quick Insertion Tree workflow — create, insert,
// look up, range-scan, delete — plus the stats that show the fast path at
// work.
package main

import (
	"fmt"

	quit "github.com/quittree/quit"
)

func main() {
	// The zero Options value selects the paper's defaults: the QuIT design
	// with 510-entry leaves.
	idx := quit.New[int64, string](quit.Options{})

	// Insert a few entries; keys arrive in order, so every insert after
	// the first rides the fast path.
	events := []struct {
		ts   int64
		name string
	}{
		{1000, "boot"}, {1005, "listen"}, {1009, "accept"},
		{1013, "read"}, {1020, "write"}, {1031, "close"},
	}
	for _, e := range events {
		idx.Put(e.ts, e.name)
	}

	// Point lookup.
	if v, ok := idx.Get(1013); ok {
		fmt.Printf("ts=1013 -> %s\n", v)
	}

	// Range scan: everything in [1005, 1020).
	fmt.Println("window [1005,1020):")
	idx.Range(1005, 1020, func(ts int64, name string) bool {
		fmt.Printf("  %d %s\n", ts, name)
		return true
	})

	// Overwrite and delete.
	idx.Put(1031, "close(graceful)")
	if prev, ok := idx.Delete(1000); ok {
		fmt.Printf("deleted ts=1000 (%s)\n", prev)
	}

	// Min/Max and size.
	if k, v, ok := idx.Min(); ok {
		fmt.Printf("min: %d %s\n", k, v)
	}
	if k, v, ok := idx.Max(); ok {
		fmt.Printf("max: %d %s\n", k, v)
	}
	fmt.Printf("entries: %d, height: %d\n", idx.Len(), idx.Height())

	// The stats tell you how well the fast path matched your stream.
	st := idx.Stats()
	fmt.Printf("fast-inserts: %d of %d (%.0f%%)\n",
		st.FastInserts, st.Inserts(), st.FastInsertFraction()*100)
}
