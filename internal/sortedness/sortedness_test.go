package sortedness

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPaperFigure2cExample(t *testing.T) {
	// Fig. 2c: [1 8 3 6 5 4 7 2 10 9] has K=5 out-of-order entries with a
	// maximum displacement of L=6.
	stream := []int64{1, 8, 3, 6, 5, 4, 7, 2, 10, 9}
	m := Measure(stream)
	if m.K != 5 {
		t.Fatalf("K = %d, want 5", m.K)
	}
	if m.L != 6 {
		t.Fatalf("L = %d, want 6", m.L)
	}
}

func TestPaperFigure2aExample(t *testing.T) {
	// Fig. 2a: [1 2 4 3 5 7 6 8 9 10] — 3 and 6 are smaller than their
	// predecessors.
	stream := []int64{1, 2, 4, 3, 5, 7, 6, 8, 9, 10}
	if got := AdjacentInversions(stream); got != 2 {
		t.Fatalf("AdjacentInversions = %d, want 2", got)
	}
	if K(stream) != 2 {
		t.Fatalf("K = %d, want 2", K(stream))
	}
}

func TestSortedStream(t *testing.T) {
	stream := []int64{1, 2, 3, 4, 5}
	m := Measure(stream)
	if m.K != 0 || m.L != 0 || m.AdjacentInversions != 0 {
		t.Fatalf("sorted stream measured %+v", m)
	}
	if !IsSorted(stream) {
		t.Fatal("IsSorted false for sorted stream")
	}
	if m.KFraction() != 0 || m.LFraction() != 0 {
		t.Fatal("fractions nonzero for sorted stream")
	}
}

func TestReversedStream(t *testing.T) {
	n := 100
	stream := make([]int64, n)
	for i := range stream {
		stream[i] = int64(n - i)
	}
	m := Measure(stream)
	// Longest non-decreasing subsequence of a strictly decreasing stream is 1.
	if m.K != n-1 {
		t.Fatalf("K = %d, want %d", m.K, n-1)
	}
	if m.L != n-1 {
		t.Fatalf("L = %d, want %d", m.L, n-1)
	}
	if IsSorted(stream) {
		t.Fatal("IsSorted true for reversed stream")
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if m := Measure(nil); m.K != 0 || m.L != 0 || m.KFraction() != 0 {
		t.Fatalf("empty stream measured %+v", m)
	}
	if m := Measure([]int64{42}); m.K != 0 || m.L != 0 {
		t.Fatalf("singleton measured %+v", m)
	}
}

func TestDuplicatesDoNotInflate(t *testing.T) {
	// Non-decreasing with duplicates is fully sorted under the metric.
	stream := []int64{1, 2, 2, 2, 3, 3, 4}
	m := Measure(stream)
	if m.K != 0 || m.L != 0 {
		t.Fatalf("duplicates inflated metrics: %+v", m)
	}
}

func TestSingleDisplacedEntry(t *testing.T) {
	// One entry moved d positions: K counts the displaced entry, L = d.
	stream := []int64{0, 1, 2, 3, 9, 4, 5, 6, 7, 8}
	m := Measure(stream)
	if m.K != 1 {
		t.Fatalf("K = %d, want 1", m.K)
	}
	if m.L != 5 {
		t.Fatalf("L = %d, want 5", m.L)
	}
}

func TestKNeverExceedsN(t *testing.T) {
	prop := func(raw []int16) bool {
		stream := make([]int64, len(raw))
		for i, v := range raw {
			stream[i] = int64(v)
		}
		m := Measure(stream)
		if m.K < 0 || m.K > len(stream) {
			return false
		}
		if m.L < 0 || m.L >= max(len(stream), 1) {
			return false
		}
		// Sorting any stream zeroes the metrics.
		sorted := append([]int64(nil), stream...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		sm := Measure(sorted)
		return sm.K == 0 && sm.L == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffledKApproachesN(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 10000
	stream := make([]int64, n)
	for i := range stream {
		stream[i] = int64(i)
	}
	rng.Shuffle(n, func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })
	m := Measure(stream)
	// A uniform shuffle's longest increasing subsequence is ~2*sqrt(n).
	if m.KFraction() < 0.9 {
		t.Fatalf("shuffled KFraction = %.3f, want >= 0.9", m.KFraction())
	}
}
