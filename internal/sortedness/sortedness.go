// Package sortedness quantifies how far a key stream deviates from sorted
// order, implementing the K-L metric the paper adopts from Raman et al. [37]
// and Ben-Moshe et al. [5] (paper §2, Fig. 2):
//
//   - K is the number of out-of-order entries: the minimum number of entries
//     whose removal leaves the stream sorted (equivalently, N minus the
//     length of the longest non-decreasing subsequence).
//   - L is the maximum displacement of an out-of-order entry from its
//     in-order position.
//
// A simpler local measure — entries smaller than their predecessor — is also
// provided (Inversions of adjacent pairs), matching Fig. 2a's illustration.
package sortedness

import "sort"

// Metrics summarizes the sortedness of a stream.
type Metrics struct {
	N int
	// K is the number of out-of-order entries (N - longest non-decreasing
	// subsequence).
	K int
	// L is the maximum displacement between an entry's stream position and
	// its position in the sorted order.
	L int
	// AdjacentInversions counts entries smaller than their predecessor.
	AdjacentInversions int
}

// KFraction returns K/N in [0,1]; 0 for an empty stream.
func (m Metrics) KFraction() float64 {
	if m.N == 0 {
		return 0
	}
	return float64(m.K) / float64(m.N)
}

// LFraction returns L/N in [0,1]; 0 for an empty stream.
func (m Metrics) LFraction() float64 {
	if m.N == 0 {
		return 0
	}
	return float64(m.L) / float64(m.N)
}

// Measure computes the K-L metrics of stream.
func Measure(stream []int64) Metrics {
	return Metrics{
		N:                  len(stream),
		K:                  K(stream),
		L:                  L(stream),
		AdjacentInversions: AdjacentInversions(stream),
	}
}

// K returns the number of out-of-order entries: the minimum number of
// entries that must be removed for the remainder to be sorted. Computed as
// N minus the longest non-decreasing subsequence (patience sorting,
// O(N log N)).
func K(stream []int64) int {
	if len(stream) == 0 {
		return 0
	}
	// tails[i] = smallest possible tail of a non-decreasing subsequence of
	// length i+1. For non-decreasing subsequences we search for the first
	// tail strictly greater than the element.
	tails := make([]int64, 0, 64)
	for _, v := range stream {
		i := sort.Search(len(tails), func(i int) bool { return tails[i] > v })
		if i == len(tails) {
			tails = append(tails, v)
		} else {
			tails[i] = v
		}
	}
	return len(stream) - len(tails)
}

// L returns the maximum displacement between each entry's position in the
// stream and its position in the sorted order. Duplicate keys are matched in
// order of appearance so they contribute no artificial displacement.
func L(stream []int64) int {
	n := len(stream)
	if n == 0 {
		return 0
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return stream[idx[a]] < stream[idx[b]] })
	maxDisp := 0
	for sortedPos, streamPos := range idx {
		d := sortedPos - streamPos
		if d < 0 {
			d = -d
		}
		if d > maxDisp {
			maxDisp = d
		}
	}
	return maxDisp
}

// AdjacentInversions counts entries that are smaller than their immediate
// predecessor (the simple quantification of Fig. 2a).
func AdjacentInversions(stream []int64) int {
	c := 0
	for i := 1; i < len(stream); i++ {
		if stream[i] < stream[i-1] {
			c++
		}
	}
	return c
}

// IsSorted reports whether the stream is non-decreasing.
func IsSorted(stream []int64) bool {
	for i := 1; i < len(stream); i++ {
		if stream[i] < stream[i-1] {
			return false
		}
	}
	return true
}
