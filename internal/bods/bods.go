// Package bods reimplements the workload generator of the Benchmark on Data
// Sortedness (BoDS, Raman et al. [36]) that the paper uses for every
// synthetic experiment (§5 "Workloads"). It produces key streams of
// controlled sortedness under the K-L metric:
//
//   - N: number of entries;
//   - K: fraction of entries that are out of order;
//   - L: maximum displacement of an out-of-order entry, as a fraction of N;
//   - (α, β): Beta-distribution skew governing where in the stream the
//     unordered entries sit (α=β=1 spreads them uniformly, the default);
//   - a seed for reproducibility.
//
// The generator starts from the fully sorted stream 0..N-1 and displaces
// entries by swapping: each swap moves two entries out of order by up to L·N
// positions, so ⌈K·N/2⌉ swaps of distinct positions yield ≈K·N out-of-order
// entries as counted by the longest-sorted-subsequence definition the
// sortedness package implements.
package bods

import (
	"fmt"
	"math/rand"
)

// Spec describes one BoDS workload.
type Spec struct {
	N     int     // number of entries
	K     float64 // fraction of out-of-order entries, in [0,1]
	L     float64 // max displacement as a fraction of N, in (0,1]
	Alpha float64 // Beta-distribution alpha (default 1)
	Beta  float64 // Beta-distribution beta (default 1)
	Seed  int64
}

func (s Spec) String() string {
	return fmt.Sprintf("bods(N=%d K=%.4g%% L=%.4g%% a=%g b=%g seed=%d)",
		s.N, s.K*100, s.L*100, s.Alpha, s.Beta, s.Seed)
}

// normalized applies defaults and clamps.
func (s Spec) normalized() Spec {
	if s.K < 0 {
		s.K = 0
	}
	if s.K > 1 {
		s.K = 1
	}
	if s.L <= 0 {
		s.L = 1
	}
	if s.L > 1 {
		s.L = 1
	}
	if s.Alpha <= 0 {
		s.Alpha = 1
	}
	if s.Beta <= 0 {
		s.Beta = 1
	}
	return s
}

// Generate produces the key stream for spec. Keys are the integers 0..N-1,
// each appearing exactly once.
func Generate(spec Spec) []int64 {
	spec = spec.normalized()
	keys := make([]int64, spec.N)
	for i := range keys {
		keys[i] = int64(i)
	}
	Scramble(keys, spec)
	return keys
}

// Scramble displaces entries of an already-sorted slice in place according
// to spec (N is taken from len(keys)). Use Generate unless you need custom
// key values.
func Scramble(keys []int64, spec Spec) {
	spec = spec.normalized()
	n := len(keys)
	if n < 2 || spec.K == 0 {
		return
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	beta := newBetaSampler(spec.Alpha, spec.Beta, rng)

	maxDisp := int(spec.L * float64(n))
	if maxDisp < 1 {
		maxDisp = 1
	}
	swaps := int(spec.K*float64(n)/2 + 0.5)
	if spec.K >= 1 {
		// Fully scrambled: a uniform shuffle is the honest limit case.
		rng.Shuffle(n, func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
		return
	}
	// Each position participates in at most one swap so displacements
	// never compound past the L bound.
	touched := make([]bool, n)
	attempts := 0
	for s := 0; s < swaps && attempts < swaps*20; s++ {
		attempts++
		i := int(beta.sample() * float64(n))
		if i >= n {
			i = n - 1
		}
		d := rng.Intn(maxDisp) + 1
		j := i + d
		if j >= n || rng.Intn(2) == 0 {
			j = i - d
		}
		if j < 0 {
			j = i + d
		}
		if j >= n || touched[i] || touched[j] {
			s--
			continue
		}
		touched[i], touched[j] = true, true
		keys[i], keys[j] = keys[j], keys[i]
	}
}

// Segment describes one stretch of an alternating-sortedness stream.
type Segment struct {
	N int
	K float64
	L float64
}

// GenerateSegments builds the Fig. 12 stress workload: consecutive key
// ranges, each scrambled with its own K-L parameters. Segment i covers keys
// [sum(N_0..N_{i-1}), ...), so the stream trends upward globally while its
// local sortedness alternates.
func GenerateSegments(segments []Segment, seed int64) []int64 {
	total := 0
	for _, s := range segments {
		total += s.N
	}
	out := make([]int64, 0, total)
	base := int64(0)
	for i, s := range segments {
		seg := make([]int64, s.N)
		for j := range seg {
			seg[j] = base + int64(j)
		}
		Scramble(seg, Spec{N: s.N, K: s.K, L: s.L, Seed: seed + int64(i)*7919})
		out = append(out, seg...)
		base += int64(s.N)
	}
	return out
}

// Values returns a value slice (key itself) matching keys, for APIs that
// ingest key-value pairs. The paper's default entries are integer key-value
// pairs.
func Values(keys []int64) []int64 {
	vals := make([]int64, len(keys))
	copy(vals, keys)
	return vals
}
