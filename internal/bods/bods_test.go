package bods

import (
	"math"
	"testing"

	"github.com/quittree/quit/internal/sortedness"
)

func TestFullySorted(t *testing.T) {
	keys := Generate(Spec{N: 10000, K: 0, L: 1, Seed: 1})
	if !sortedness.IsSorted(keys) {
		t.Fatal("K=0 stream is not sorted")
	}
	if len(keys) != 10000 {
		t.Fatalf("len = %d", len(keys))
	}
}

func TestPermutationPreserved(t *testing.T) {
	for _, k := range []float64{0, 0.01, 0.1, 0.5, 1} {
		keys := Generate(Spec{N: 5000, K: k, L: 0.5, Seed: 3})
		seen := make(map[int64]bool, len(keys))
		for _, key := range keys {
			if seen[key] {
				t.Fatalf("K=%v: duplicate key %d", k, key)
			}
			seen[key] = true
		}
		for i := int64(0); i < 5000; i++ {
			if !seen[i] {
				t.Fatalf("K=%v: key %d missing", k, i)
			}
		}
	}
}

func TestMeasuredKTracksRequested(t *testing.T) {
	for _, want := range []float64{0.01, 0.05, 0.10, 0.25} {
		keys := Generate(Spec{N: 50000, K: want, L: 1, Seed: 9})
		m := sortedness.Measure(keys)
		got := m.KFraction()
		if math.Abs(got-want) > want*0.5+0.005 {
			t.Fatalf("requested K=%.2f, measured %.3f", want, got)
		}
	}
}

func TestMeasuredLBounded(t *testing.T) {
	for _, l := range []float64{0.01, 0.1, 0.5} {
		keys := Generate(Spec{N: 20000, K: 0.1, L: l, Seed: 4})
		m := sortedness.Measure(keys)
		if m.LFraction() > l+0.001 {
			t.Fatalf("requested L=%.2f, measured %.3f", l, m.LFraction())
		}
		if m.L == 0 {
			t.Fatalf("L=%v produced no displacement", l)
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a := Generate(Spec{N: 10000, K: 0.1, L: 0.5, Seed: 42})
	b := Generate(Spec{N: 10000, K: 0.1, L: 0.5, Seed: 42})
	c := Generate(Spec{N: 10000, K: 0.1, L: 0.5, Seed: 43})
	diff := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
		if a[i] != c[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestFullyScrambled(t *testing.T) {
	keys := Generate(Spec{N: 20000, K: 1, L: 1, Seed: 8})
	m := sortedness.Measure(keys)
	if m.KFraction() < 0.9 {
		t.Fatalf("K=100%% measured only %.3f", m.KFraction())
	}
}

func TestBetaSkewConcentratesDisplacements(t *testing.T) {
	// Alpha >> Beta pushes out-of-order entries toward the end of the
	// stream; the first half should stay much more sorted.
	keys := Generate(Spec{N: 40000, K: 0.2, L: 0.02, Alpha: 8, Beta: 1, Seed: 5})
	firstHalf := sortedness.Measure(keys[:20000])
	secondHalf := sortedness.Measure(keys[20000:])
	if firstHalf.KFraction() >= secondHalf.KFraction() {
		t.Fatalf("beta skew had no effect: first=%.3f second=%.3f",
			firstHalf.KFraction(), secondHalf.KFraction())
	}
}

func TestGenerateSegments(t *testing.T) {
	segs := []Segment{
		{N: 5000, K: 0.1, L: 1},
		{N: 5000, K: 1, L: 1},
		{N: 5000, K: 0.1, L: 1},
	}
	keys := GenerateSegments(segs, 7)
	if len(keys) != 15000 {
		t.Fatalf("len = %d", len(keys))
	}
	// Each segment covers its own contiguous key range.
	for i, k := range keys {
		seg := i / 5000
		lo, hi := int64(seg*5000), int64((seg+1)*5000)
		if k < lo || k >= hi {
			t.Fatalf("key %d at pos %d escapes segment [%d,%d)", k, i, lo, hi)
		}
	}
	// The scrambled middle segment is much less sorted.
	m0 := sortedness.Measure(keys[:5000])
	m1 := sortedness.Measure(keys[5000:10000])
	if m1.KFraction() < m0.KFraction()*2 {
		t.Fatalf("segment sortedness not alternating: %.3f vs %.3f",
			m0.KFraction(), m1.KFraction())
	}
}

func TestValuesMirrorsKeys(t *testing.T) {
	keys := Generate(Spec{N: 100, K: 0.1, L: 1, Seed: 2})
	vals := Values(keys)
	for i := range keys {
		if vals[i] != keys[i] {
			t.Fatal("Values diverged from keys")
		}
	}
	vals[0] = -1
	if keys[0] == -1 {
		t.Fatal("Values aliases the key slice")
	}
}

func TestSpecNormalization(t *testing.T) {
	keys := Generate(Spec{N: 100, K: -0.5, L: -2, Seed: 1})
	if !sortedness.IsSorted(keys) {
		t.Fatal("negative K did not clamp to 0")
	}
	keys = Generate(Spec{N: 100, K: 2, L: 5, Seed: 1})
	if len(keys) != 100 {
		t.Fatal("clamped spec failed to generate")
	}
	s := Spec{N: 5, K: 0.1, L: 0.2, Seed: 3}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestScrambleTinyStreams(t *testing.T) {
	for n := 0; n < 4; n++ {
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = int64(i)
		}
		Scramble(keys, Spec{N: n, K: 0.5, L: 1, Seed: 1}) // must not panic
	}
}
