package bods

import (
	"math"
	"math/rand"
)

// betaSampler draws Beta(alpha, beta)-distributed values in (0,1), used to
// skew where out-of-order entries land in the stream (the BoDS generator's
// (α,β) parameter; α=β=1 is uniform, the paper's default).
type betaSampler struct {
	alpha, beta float64
	rng         *rand.Rand
}

func newBetaSampler(alpha, beta float64, rng *rand.Rand) betaSampler {
	if alpha <= 0 {
		alpha = 1
	}
	if beta <= 0 {
		beta = 1
	}
	return betaSampler{alpha: alpha, beta: beta, rng: rng}
}

// sample draws one Beta(alpha, beta) variate via two Gamma draws.
func (b betaSampler) sample() float64 {
	if b.alpha == 1 && b.beta == 1 {
		return b.rng.Float64()
	}
	x := gamma(b.alpha, b.rng)
	y := gamma(b.beta, b.rng)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// gamma draws a Gamma(shape, 1) variate using the Marsaglia-Tsang method,
// with the standard boost for shape < 1.
func gamma(shape float64, rng *rand.Rand) float64 {
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^(1/a)
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gamma(shape+1, rng) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9.0*d)
	for {
		x := rng.NormFloat64()
		v := 1.0 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1.0-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1.0-v+math.Log(v)) {
			return d * v
		}
	}
}
