package ikr

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultScale(t *testing.T) {
	if e := New(0); e.Scale() != DefaultScale {
		t.Fatalf("New(0).Scale() = %v, want %v", e.Scale(), DefaultScale)
	}
	if e := New(-3); e.Scale() != DefaultScale {
		t.Fatalf("New(-3).Scale() = %v", e.Scale())
	}
	if e := New(2.5); e.Scale() != 2.5 {
		t.Fatalf("New(2.5).Scale() = %v", e.Scale())
	}
}

func TestBoundMatchesEquation2(t *testing.T) {
	e := New(1.5)
	// x = q + ((q-p)/prevSize) * poleSize * scale
	// p=0, q=100, prevSize=100, poleSize=200 -> x = 100 + 1*200*1.5 = 400
	if x := e.Bound(0, 100, 100, 200); x != 400 {
		t.Fatalf("Bound = %v, want 400", x)
	}
	// Unit density, equal sizes: one node's worth of slack times scale.
	if x := e.Bound(0, 510, 510, 510); x != 510+510*1.5 {
		t.Fatalf("Bound = %v, want %v", x, 510+510*1.5)
	}
}

func TestIsOutlier(t *testing.T) {
	e := New(1.5)
	// Density 1 keys: acceptable up to q + poleSize*1.5.
	if e.IsOutlier(115, 0, 100, 100, 10) {
		t.Fatal("115 flagged as outlier with bound 115")
	}
	if !e.IsOutlier(116, 0, 100, 100, 10) {
		t.Fatal("116 not flagged with bound 115")
	}
	// Keys below q are out of order, never outliers.
	if e.IsOutlier(50, 0, 100, 100, 10) {
		t.Fatal("key below q flagged as outlier")
	}
}

func TestBoundPanicsOnBadPrevSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bound(prevSize=0) did not panic")
		}
	}()
	New(1.5).Bound(0, 1, 0, 1)
}

func TestBoundMonotonicProperties(t *testing.T) {
	e := New(1.5)
	// The bound always admits q itself and grows with pole size.
	prop := func(p16, q16 int16, prevSize8, poleSize8 uint8) bool {
		p, q := float64(p16), float64(q16)
		if q <= p {
			p, q = q-1, p+1
		}
		prevSize := int(prevSize8)%512 + 1
		poleSize := int(poleSize8) % 512
		x := e.Bound(p, q, prevSize, poleSize)
		if x < q {
			return false
		}
		bigger := e.Bound(p, q, prevSize, poleSize+1)
		return bigger >= x
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundScaleEffect(t *testing.T) {
	loose := New(3.0)
	tight := New(1.0)
	xl := loose.Bound(0, 100, 100, 100)
	xt := tight.Bound(0, 100, 100, 100)
	if xl <= xt {
		t.Fatalf("larger scale gave smaller bound: %v <= %v", xl, xt)
	}
	if math.Abs(xl-400) > 1e-9 || math.Abs(xt-200) > 1e-9 {
		t.Fatalf("bounds = %v, %v", xl, xt)
	}
}
