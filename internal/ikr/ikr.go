// Package ikr implements the In-order Key estimatoR (IKR) from the QuIT
// paper (§4.1, Eq. 2). IKR is a lightweight outlier predictor inspired by
// interquartile-range outlier detection: given two consecutive leaf nodes
// that are known to contain in-order entries, it extrapolates the key
// density observed in the preceding node across the current node and adds a
// slack factor. Any key beyond the resulting bound is considered an outlier.
//
// The estimator is deliberately stateless: callers feed it the smallest keys
// of pole_prev (p) and pole (q), the number of entries in pole_prev, and the
// number of entries in pole, exactly the metadata the Quick Insertion Tree
// keeps for its fast path (Table 1 in the paper).
package ikr

// DefaultScale is the slack multiplier from the paper. Following standard
// IQR practice the paper fixes scale = 1.5; it is the only IKR tunable.
const DefaultScale = 1.5

// Estimator computes the maximum acceptable (non-outlier) key for the
// predicted-ordered-leaf. The zero value is not usable; construct with New.
type Estimator struct {
	scale float64
}

// New returns an Estimator with the given slack scale. Non-positive scales
// fall back to DefaultScale.
func New(scale float64) Estimator {
	if scale <= 0 {
		scale = DefaultScale
	}
	return Estimator{scale: scale}
}

// Scale reports the slack multiplier in use.
func (e Estimator) Scale() float64 { return e.scale }

// Bound evaluates Eq. (2) of the paper:
//
//	x = q + ((q - p) / prevSize) * poleSize * scale
//
// where p and q are the smallest keys of pole_prev and pole, prevSize is the
// entry count of pole_prev and poleSize the entry count of pole. Keys are
// passed as float64 so the estimator works for any integer key domain (exact
// for |key| < 2^53). Bound panics if prevSize <= 0: the tree guarantees
// pole_prev is at least half full before consulting IKR (§4.1), so a
// non-positive size is a caller bug, not a data condition.
func (e Estimator) Bound(p, q float64, prevSize, poleSize int) float64 {
	if prevSize <= 0 {
		panic("ikr: Bound called with non-positive prevSize")
	}
	density := (q - p) / float64(prevSize)
	return q + density*float64(poleSize)*e.scale
}

// IsOutlier reports whether key exceeds the acceptable bound computed from
// (p, q, prevSize, poleSize). Keys are never outliers from below: an entry
// smaller than q is out of order with respect to pole, not an outlier in the
// IKR sense (§2 distinguishes the two).
func (e Estimator) IsOutlier(key, p, q float64, prevSize, poleSize int) bool {
	return key > e.Bound(p, q, prevSize, poleSize)
}
