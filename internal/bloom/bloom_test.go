package bloom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := NewWithEstimates(10000, 0.01)
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 10000)
	for i := range keys {
		keys[i] = rng.Uint64()
		f.Add(keys[i])
	}
	for _, k := range keys {
		if !f.MayContain(k) {
			t.Fatalf("false negative for %d", k)
		}
	}
}

func TestFalsePositiveRateNearTarget(t *testing.T) {
	const n = 50000
	target := 0.01
	f := NewWithEstimates(n, target)
	rng := rand.New(rand.NewSource(2))
	present := make(map[uint64]bool, n)
	for i := 0; i < n; i++ {
		k := rng.Uint64()
		present[k] = true
		f.Add(k)
	}
	fp := 0
	trials := 200000
	for i := 0; i < trials; i++ {
		k := rng.Uint64()
		if present[k] {
			continue
		}
		if f.MayContain(k) {
			fp++
		}
	}
	rate := float64(fp) / float64(trials)
	if rate > target*3 {
		t.Fatalf("false positive rate %.4f, want <= %.4f", rate, target*3)
	}
}

func TestReset(t *testing.T) {
	f := New(1024, 3)
	for i := uint64(0); i < 100; i++ {
		f.Add(i)
	}
	if f.Adds() != 100 {
		t.Fatalf("Adds = %d", f.Adds())
	}
	if f.FillRatio() == 0 {
		t.Fatal("no bits set after 100 adds")
	}
	f.Reset()
	if f.Adds() != 0 || f.FillRatio() != 0 {
		t.Fatal("Reset did not clear the filter")
	}
	// Most keys should now be reported absent (all, in fact).
	for i := uint64(0); i < 100; i++ {
		if f.MayContain(i) {
			t.Fatalf("key %d present after Reset", i)
		}
	}
}

func TestClampingAndSizing(t *testing.T) {
	f := New(1, 0)
	if f.Bits() < 64 || f.Hashes() < 1 {
		t.Fatalf("clamping failed: m=%d k=%d", f.Bits(), f.Hashes())
	}
	if f.Bits()%64 != 0 {
		t.Fatalf("bits %d not a multiple of 64", f.Bits())
	}
	f2 := NewWithEstimates(0, 0.5)
	f2.Add(7)
	if !f2.MayContain(7) {
		t.Fatal("degenerate filter lost a key")
	}
	f3 := NewWithEstimates(1000, -1) // bad p falls back
	if f3.Bits() == 0 {
		t.Fatal("fallback sizing produced empty filter")
	}
}

func TestQuickNoFalseNegativeProperty(t *testing.T) {
	f := New(1<<14, 4)
	prop := func(keys []uint64) bool {
		f.Reset()
		for _, k := range keys {
			f.Add(k)
		}
		for _, k := range keys {
			if !f.MayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
