// Package bloom provides the standard bit-array Bloom filter the SWARE
// baseline uses to shortcut buffer probes (paper §2: "the inserted key is
// also indexed through a couple of layers of Bloom filters").
//
// Hashing uses the Kirsch-Mitzenmacher double-hashing scheme over two
// independent 64-bit mixes of the key, so k probe positions cost two
// multiplications rather than k hash evaluations.
package bloom

import "math"

// Filter is a Bloom filter over uint64-encodable keys. The zero value is not
// usable; construct with New or NewWithEstimates.
type Filter struct {
	bits   []uint64
	m      uint64 // number of bits
	k      uint32 // hashes per key
	adds   uint64
	hasher func(uint64) (uint64, uint64)
}

// New creates a filter with m bits (rounded up to a multiple of 64) and k
// hash functions. m and k are clamped to at least 64 and 1.
func New(m uint64, k uint32) *Filter {
	if m < 64 {
		m = 64
	}
	m = (m + 63) &^ 63
	if k < 1 {
		k = 1
	}
	return &Filter{
		bits:   make([]uint64, m/64),
		m:      m,
		k:      k,
		hasher: splitMix2,
	}
}

// NewWithEstimates sizes a filter for n expected keys at false-positive rate
// p, using the standard m = -n·ln(p)/ln(2)² and k = m/n·ln(2) formulas.
func NewWithEstimates(n uint64, p float64) *Filter {
	if n == 0 {
		n = 1
	}
	if p <= 0 || p >= 1 {
		p = 0.01
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)))
	k := uint32(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return New(m, k)
}

// splitMix2 derives two independent 64-bit hashes from a key using two
// rounds of the SplitMix64 finalizer with distinct stream constants.
func splitMix2(x uint64) (uint64, uint64) {
	h1 := mix64(x + 0x9e3779b97f4a7c15)
	h2 := mix64(x + 0xbf58476d1ce4e5b9)
	if h2 == 0 {
		h2 = 0x94d049bb133111eb // g2 must be non-zero for double hashing
	}
	return h1, h2
}

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Add inserts key into the filter.
func (f *Filter) Add(key uint64) {
	h1, h2 := f.hasher(key)
	for i := uint32(0); i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.m
		f.bits[pos/64] |= 1 << (pos % 64)
	}
	f.adds++
}

// MayContain reports whether key may have been added. False positives occur
// at the configured rate; false negatives never.
func (f *Filter) MayContain(key uint64) bool {
	h1, h2 := f.hasher(key)
	for i := uint32(0); i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.m
		if f.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// Reset clears the filter. SWARE recalibrates its filters on every buffer
// flush; Reset keeps the allocation.
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.adds = 0
}

// Adds returns the number of Add calls since the last Reset.
func (f *Filter) Adds() uint64 { return f.adds }

// Bits returns the filter size in bits.
func (f *Filter) Bits() uint64 { return f.m }

// Hashes returns the number of hash functions.
func (f *Filter) Hashes() uint32 { return uint32(f.k) }

// FillRatio returns the fraction of set bits, a health metric for tests.
func (f *Filter) FillRatio() float64 {
	set := 0
	for _, w := range f.bits {
		set += popcount(w)
	}
	return float64(set) / float64(f.m)
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
