package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"reflect"
	"testing"
	"time"
)

// memFile is a minimal in-memory File for these unit tests (the full
// fault-injecting filesystem lives in internal/faultio).
type memFile struct {
	bytes.Buffer
	syncs    int
	syncErr  error
	writeErr error
	closed   bool
}

func (f *memFile) Write(p []byte) (int, error) {
	if f.writeErr != nil {
		return 0, f.writeErr
	}
	return f.Buffer.Write(p)
}

func (f *memFile) Sync() error {
	if f.syncErr != nil {
		return f.syncErr
	}
	f.syncs++
	return nil
}

func (f *memFile) Close() error { f.closed = true; return nil }

func collect(t *testing.T, data []byte, startAfter uint64) ([]Record[int64, string], ReplayStats) {
	t.Helper()
	var recs []Record[int64, string]
	stats, err := Replay(bytes.NewReader(data), startAfter, func(r Record[int64, string]) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("replay error: %v", err)
	}
	return recs, stats
}

func TestAppendReplayRoundTrip(t *testing.T) {
	f := &memFile{}
	l := New[int64, string](f, 0, Config{Sync: SyncAlways})
	seq1, err := l.Append(OpInsert, 10, "ten")
	if err != nil || seq1 != 1 {
		t.Fatalf("append 1: (%d, %v)", seq1, err)
	}
	if _, err := l.Append(OpInsert, -5, "neg"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(OpDelete, 10, ""); err != nil {
		t.Fatal(err)
	}
	if seq, err := l.Append(OpClear, 0, ""); err != nil || seq != 4 {
		t.Fatalf("append 4: (%d, %v)", seq, err)
	}
	if l.LastSeq() != 4 {
		t.Fatalf("LastSeq = %d", l.LastSeq())
	}

	recs, stats := collect(t, f.Bytes(), 0)
	if len(recs) != 4 || stats.Applied != 4 || stats.LastSeq != 4 || stats.Tail != nil {
		t.Fatalf("replay: %d recs, stats %+v", len(recs), stats)
	}
	want := []Record[int64, string]{
		{Seq: 1, Op: OpInsert, Key: 10, Val: "ten"},
		{Seq: 2, Op: OpInsert, Key: -5, Val: "neg"},
		{Seq: 3, Op: OpDelete, Key: 10},
		{Seq: 4, Op: OpClear},
	}
	for i, w := range want {
		if !reflect.DeepEqual(recs[i], w) {
			t.Errorf("rec %d = %+v, want %+v", i, recs[i], w)
		}
	}

	// startAfter skips the prefix.
	recs, stats = collect(t, f.Bytes(), 2)
	if len(recs) != 2 || recs[0].Seq != 3 || stats.LastSeq != 4 {
		t.Fatalf("startAfter=2: %d recs, stats %+v", len(recs), stats)
	}
	// startAfter beyond the log applies nothing.
	recs, stats = collect(t, f.Bytes(), 99)
	if len(recs) != 0 || stats.LastSeq != 99 {
		t.Fatalf("startAfter=99: %d recs, stats %+v", len(recs), stats)
	}
}

func TestReplayTornTail(t *testing.T) {
	f := &memFile{}
	l := New[int64, string](f, 0, Config{Sync: SyncAlways})
	for i := 0; i < 5; i++ {
		if _, err := l.Append(OpInsert, int64(i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	full := append([]byte(nil), f.Bytes()...)
	// Cut the log at every byte length; replay must never error, never
	// panic, and apply a prefix.
	for cut := 0; cut <= len(full); cut++ {
		recs, stats := collect(t, full[:cut], 0)
		if len(recs) != stats.Applied {
			t.Fatalf("cut %d: recs %d != applied %d", cut, len(recs), stats.Applied)
		}
		if cut == len(full) {
			if stats.Tail != nil || stats.Applied != 5 {
				t.Fatalf("intact log: %+v", stats)
			}
			continue
		}
		if stats.Applied > 5 {
			t.Fatalf("cut %d: applied %d > written", cut, stats.Applied)
		}
		// A cut strictly inside a record leaves a torn tail.
		if stats.Tail != nil && !errors.Is(stats.Tail, ErrTornRecord) {
			t.Fatalf("cut %d: tail = %v, want ErrTornRecord", cut, stats.Tail)
		}
		for i, r := range recs {
			if r.Seq != uint64(i+1) || r.Key != int64(i) {
				t.Fatalf("cut %d: rec %d = %+v", cut, i, r)
			}
		}
	}
}

func TestReplayCorruptRecord(t *testing.T) {
	f := &memFile{}
	l := New[int64, string](f, 0, Config{Sync: SyncAlways})
	for i := 0; i < 3; i++ {
		if _, err := l.Append(OpInsert, int64(i), "value"); err != nil {
			t.Fatal(err)
		}
	}
	full := f.Bytes()
	recLen := len(full) / 3
	// Flip one byte in the middle record's payload region.
	bad := append([]byte(nil), full...)
	bad[recLen+12] ^= 0x01
	recs, stats := collect(t, bad, 0)
	if len(recs) != 1 || !errors.Is(stats.Tail, ErrCorruptRecord) {
		t.Fatalf("flip: %d recs, tail %v", len(recs), stats.Tail)
	}
	// A corrupted length field must not cause a huge allocation or panic.
	bad = append([]byte(nil), full...)
	bad[recLen] = 0xFF
	bad[recLen+1] = 0xFF
	bad[recLen+2] = 0xFF
	bad[recLen+3] = 0x7F
	recs, stats = collect(t, bad, 0)
	if len(recs) != 1 || !errors.Is(stats.Tail, ErrCorruptRecord) {
		t.Fatalf("bad length: %d recs, tail %v", len(recs), stats.Tail)
	}
}

func TestReplaySequenceDiscontinuity(t *testing.T) {
	// Two logs spliced: seqs 1..2 then 5..6.
	f1 := &memFile{}
	l1 := New[int64, string](f1, 0, Config{Sync: SyncAlways})
	l1.Append(OpInsert, 1, "a")
	l1.Append(OpInsert, 2, "b")
	f2 := &memFile{}
	l2 := New[int64, string](f2, 4, Config{Sync: SyncAlways})
	l2.Append(OpInsert, 5, "c")
	spliced := append(append([]byte(nil), f1.Bytes()...), f2.Bytes()...)
	recs, stats := collect(t, spliced, 0)
	if len(recs) != 2 || !errors.Is(stats.Tail, ErrSequence) {
		t.Fatalf("splice: %d recs, tail %v", len(recs), stats.Tail)
	}
	if stats.LastSeq != 2 {
		t.Fatalf("LastSeq = %d, want 2", stats.LastSeq)
	}
}

func TestReplayApplyError(t *testing.T) {
	f := &memFile{}
	l := New[int64, string](f, 0, Config{Sync: SyncAlways})
	l.Append(OpInsert, 1, "a")
	l.Append(OpInsert, 2, "b")
	boom := errors.New("boom")
	stats, err := Replay(bytes.NewReader(f.Bytes()), 0, func(r Record[int64, string]) error {
		if r.Seq == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || stats.Applied != 1 {
		t.Fatalf("apply error: stats %+v, err %v", stats, err)
	}
}

func TestSyncPolicies(t *testing.T) {
	t.Run("always", func(t *testing.T) {
		f := &memFile{}
		l := New[int64, string](f, 0, Config{Sync: SyncAlways})
		l.Append(OpInsert, 1, "a")
		if f.syncs != 1 || f.Len() == 0 {
			t.Fatalf("syncs=%d len=%d; SyncAlways must sync per append", f.syncs, f.Len())
		}
	})
	t.Run("interval buffers", func(t *testing.T) {
		f := &memFile{}
		l := New[int64, string](f, 0, Config{Sync: SyncInterval, Interval: time.Hour})
		l.Append(OpInsert, 1, "a")
		if f.Len() != 0 || f.syncs != 0 {
			t.Fatalf("len=%d syncs=%d; long-interval append must buffer", f.Len(), f.syncs)
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
		if f.Len() == 0 || f.syncs != 1 {
			t.Fatalf("len=%d syncs=%d after explicit Sync", f.Len(), f.syncs)
		}
	})
	t.Run("interval elapses", func(t *testing.T) {
		f := &memFile{}
		l := New[int64, string](f, 0, Config{Sync: SyncInterval, Interval: time.Nanosecond})
		l.Append(OpInsert, 1, "a")
		time.Sleep(time.Millisecond)
		l.Append(OpInsert, 2, "b")
		if f.syncs == 0 {
			t.Fatal("append past the interval did not sync the batch")
		}
	})
	t.Run("interval buffer pressure", func(t *testing.T) {
		f := &memFile{}
		l := New[int64, string](f, 0, Config{Sync: SyncInterval, Interval: time.Hour, BufBytes: 64})
		for i := 0; i < 10; i++ {
			l.Append(OpInsert, int64(i), "some value text")
		}
		if f.syncs == 0 {
			t.Fatal("buffer pressure did not trigger a sync")
		}
	})
	t.Run("never", func(t *testing.T) {
		f := &memFile{}
		l := New[int64, string](f, 0, Config{Sync: SyncNever, BufBytes: 64})
		for i := 0; i < 10; i++ {
			l.Append(OpInsert, int64(i), "some value text")
		}
		if f.syncs != 0 {
			t.Fatalf("SyncNever fsynced %d times", f.syncs)
		}
		if f.Len() == 0 {
			t.Fatal("buffer pressure did not flush")
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
		if f.syncs != 0 {
			t.Fatal("Sync under SyncNever must degrade to Flush")
		}
	})
}

func TestLogPoisoning(t *testing.T) {
	f := &memFile{}
	l := New[int64, string](f, 0, Config{Sync: SyncAlways})
	if _, err := l.Append(OpInsert, 1, "a"); err != nil {
		t.Fatal(err)
	}
	f.syncErr = errors.New("disk gone")
	if _, err := l.Append(OpInsert, 2, "b"); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("append on failing disk: %v", err)
	}
	// Sticky: even after the disk "recovers" the log refuses.
	f.syncErr = nil
	if _, err := l.Append(OpInsert, 3, "c"); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("append after failure: %v", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("sync after failure: %v", err)
	}
	if err := l.Close(); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("close after failure: %v", err)
	}
	if !f.closed {
		t.Fatal("poisoned Close must still release the file")
	}
	// Whatever reached the disk before the failure replays cleanly. The
	// unacknowledged record 2 may legitimately be present (its bytes were
	// flushed before the fsync failed); recovery applying an unacked but
	// complete record is allowed — what matters is the prefix is clean.
	recs, stats := collect(t, f.Bytes(), 0)
	if len(recs) < 1 || recs[0].Seq != 1 || stats.Tail != nil {
		t.Fatalf("surviving prefix: %+v (tail %v)", recs, stats.Tail)
	}
}

func TestCloseFlushesAndPoisons(t *testing.T) {
	f := &memFile{}
	l := New[int64, string](f, 0, Config{Sync: SyncInterval, Interval: time.Hour})
	l.Append(OpInsert, 1, "a")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if !f.closed || f.Len() == 0 {
		t.Fatalf("closed=%v len=%d; Close must flush buffered records", f.closed, f.Len())
	}
	if _, err := l.Append(OpInsert, 2, "b"); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("append after close: %v", err)
	}
	recs, stats := collect(t, f.Bytes(), 0)
	if len(recs) != 1 || stats.Tail != nil {
		t.Fatalf("replay after close: %d recs, tail %v", len(recs), stats.Tail)
	}
}

func TestPreambleRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePreamble(&buf, 42); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != PreambleSize {
		t.Fatalf("preamble is %d bytes, want %d", buf.Len(), PreambleSize)
	}
	seq, err := ReadPreamble(bytes.NewReader(buf.Bytes()))
	if err != nil || seq != 42 {
		t.Fatalf("ReadPreamble = (%d, %v)", seq, err)
	}
	// Torn preamble.
	for cut := 0; cut < buf.Len(); cut++ {
		if _, err := ReadPreamble(bytes.NewReader(buf.Bytes()[:cut])); !errors.Is(err, ErrBadPreamble) {
			t.Fatalf("cut %d: err = %v", cut, err)
		}
	}
	// Flipped bytes.
	for off := 0; off < buf.Len(); off++ {
		bad := append([]byte(nil), buf.Bytes()...)
		bad[off] ^= 0x10
		if _, err := ReadPreamble(bytes.NewReader(bad)); !errors.Is(err, ErrBadPreamble) {
			t.Fatalf("flip %d: err = %v", off, err)
		}
	}
}

func TestAppendBatchRoundTrip(t *testing.T) {
	f := &memFile{}
	l := New[int64, string](f, 0, Config{Sync: SyncAlways})
	if _, err := l.Append(OpInsert, 1, "one"); err != nil {
		t.Fatal(err)
	}
	keys := []int64{5, 2, 9, 2}
	vals := []string{"five", "two", "nine", "two-again"}
	seq, err := l.AppendBatch(keys, vals)
	if err != nil || seq != 2 {
		t.Fatalf("AppendBatch = (%d, %v)", seq, err)
	}
	if _, err := l.Append(OpDelete, 9, ""); err != nil {
		t.Fatal(err)
	}

	recs, stats := collect(t, f.Bytes(), 0)
	if len(recs) != 3 || stats.Tail != nil {
		t.Fatalf("replay: %d recs, tail %v", len(recs), stats.Tail)
	}
	b := recs[1]
	if b.Op != OpBatch || b.Seq != 2 {
		t.Fatalf("batch record: %+v", b)
	}
	if !reflect.DeepEqual(b.Keys, keys) || !reflect.DeepEqual(b.Vals, vals) {
		t.Fatalf("batch payload: keys %v vals %v", b.Keys, b.Vals)
	}
	if recs[2].Op != OpDelete || recs[2].Seq != 3 {
		t.Fatalf("record after batch: %+v", recs[2])
	}
}

func TestAppendBatchSingleSync(t *testing.T) {
	f := &memFile{}
	l := New[int64, string](f, 0, Config{Sync: SyncAlways})
	keys := make([]int64, 1000)
	vals := make([]string, 1000)
	for i := range keys {
		keys[i] = int64(i)
		vals[i] = "v"
	}
	if _, err := l.AppendBatch(keys, vals); err != nil {
		t.Fatal(err)
	}
	if f.syncs != 1 {
		t.Fatalf("1000-key batch cost %d fsyncs, want 1", f.syncs)
	}
}

func TestAppendBatchArgumentErrors(t *testing.T) {
	f := &memFile{}
	l := New[int64, string](f, 0, Config{Sync: SyncAlways})
	if _, err := l.AppendBatch([]int64{1, 2}, []string{"a"}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := l.AppendBatch(nil, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	// Argument errors must not poison the log.
	if seq, err := l.AppendBatch([]int64{7}, []string{"seven"}); err != nil || seq != 1 {
		t.Fatalf("append after argument errors: (%d, %v)", seq, err)
	}
	recs, stats := collect(t, f.Bytes(), 0)
	if len(recs) != 1 || stats.Tail != nil || recs[0].Keys[0] != 7 {
		t.Fatalf("replay: %d recs, tail %v", len(recs), stats.Tail)
	}
}

func TestBatchRecordTornAtEveryCut(t *testing.T) {
	f := &memFile{}
	l := New[int64, string](f, 0, Config{Sync: SyncAlways})
	if _, err := l.Append(OpInsert, 100, "pre"); err != nil {
		t.Fatal(err)
	}
	prefixLen := f.Len()
	if _, err := l.AppendBatch([]int64{1, 2, 3, 4, 5}, []string{"a", "b", "c", "d", "e"}); err != nil {
		t.Fatal(err)
	}
	full := append([]byte(nil), f.Bytes()...)
	// A cut anywhere inside the batch record recovers all-or-nothing: the
	// preceding record, never a partial batch.
	for cut := prefixLen; cut < len(full); cut++ {
		recs, stats := collect(t, full[:cut], 0)
		if stats.Applied != 1 || len(recs) != 1 || recs[0].Key != 100 {
			t.Fatalf("cut %d: applied %d (want the single pre-batch record)", cut, stats.Applied)
		}
		if cut > prefixLen && stats.Tail == nil {
			t.Fatalf("cut %d: mid-record cut reported a clean tail", cut)
		}
	}
	recs, stats := collect(t, full, 0)
	if stats.Applied != 2 || len(recs[1].Keys) != 5 || stats.Tail != nil {
		t.Fatalf("intact: applied %d, tail %v", stats.Applied, stats.Tail)
	}
}

func TestBatchRecordStructuralCorruption(t *testing.T) {
	frame := func(payload []byte) []byte {
		out := make([]byte, 8, 8+len(payload))
		binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(out[4:8], crc32.Checksum(payload, crcTable))
		return append(out, payload...)
	}
	mk := func(mutate func([]byte)) []byte {
		f := &memFile{}
		l := New[int64, string](f, 0, Config{Sync: SyncAlways})
		if _, err := l.AppendBatch([]int64{1, 2}, []string{"a", "b"}); err != nil {
			t.Fatal(err)
		}
		payload := append([]byte(nil), f.Bytes()[8:]...)
		mutate(payload)
		return frame(payload)
	}
	cases := map[string][]byte{
		// count = 0
		"zero count": mk(func(p []byte) { p[9], p[10], p[11], p[12] = 0, 0, 0, 0 }),
		// count claims more keys than the payload carries
		"overlong count": mk(func(p []byte) { p[9], p[10], p[11], p[12] = 0xFF, 0xFF, 0xFF, 0x0F }),
		// truncated to just the 13-byte header (valid frame, no keys)
		"header only": frame(mk(func([]byte) {})[8 : 8+13]),
	}
	for name, data := range cases {
		recs, stats := collect(t, data, 0)
		if len(recs) != 0 || !errors.Is(stats.Tail, ErrCorruptRecord) {
			t.Errorf("%s: %d recs, tail %v (want ErrCorruptRecord)", name, len(recs), stats.Tail)
		}
	}
}
