package wal

import (
	"bytes"
	"testing"
)

// validLog builds an intact log of n records for fuzz seeding.
func validLog(n int) []byte {
	f := &memFile{}
	l := New[int64, string](f, 0, Config{Sync: SyncNever})
	for i := 0; i < n; i++ {
		l.Append(OpInsert, int64(i*7-3), "value")
		if i%5 == 4 {
			l.Append(OpDelete, int64(i), "")
		}
	}
	l.Flush()
	return append([]byte(nil), f.Bytes()...)
}

// FuzzWALReplay feeds arbitrary byte streams to Replay and checks the
// recovery invariants the durability contract promises for ANY input: no
// panic, no apply-callback error, a contiguous applied sequence, and
// internally consistent stats. The seed corpus covers intact logs, torn
// tails, flipped bits and raw garbage; testdata/fuzz holds committed
// regression inputs.
func FuzzWALReplay(f *testing.F) {
	intact := validLog(8)
	f.Add(intact, uint64(0))
	f.Add(intact, uint64(3))
	f.Add(intact[:len(intact)-5], uint64(0)) // torn tail
	f.Add(intact[:9], uint64(0))             // torn first record
	flipped := append([]byte(nil), intact...)
	flipped[len(flipped)/2] ^= 0x20
	f.Add(flipped, uint64(0))
	f.Add([]byte{}, uint64(0))
	f.Add([]byte("not a log at all, just some text"), uint64(0))
	f.Add(bytes.Repeat([]byte{0xFF}, 64), uint64(1<<63))

	f.Fuzz(func(t *testing.T, data []byte, startAfter uint64) {
		var applied []Record[int64, string]
		stats, err := Replay(bytes.NewReader(data), startAfter, func(r Record[int64, string]) error {
			applied = append(applied, r)
			return nil
		})
		if err != nil {
			t.Fatalf("non-failing apply callback surfaced an error: %v", err)
		}
		if stats.Applied != len(applied) {
			t.Fatalf("stats.Applied = %d, callback saw %d", stats.Applied, len(applied))
		}
		for i, r := range applied {
			if want := startAfter + uint64(i) + 1; r.Seq != want {
				t.Fatalf("applied record %d has seq %d, want %d", i, r.Seq, want)
			}
			if r.Op != OpInsert && r.Op != OpDelete && r.Op != OpClear {
				t.Fatalf("applied record %d has invalid op %d", i, r.Op)
			}
		}
		if len(applied) == 0 {
			if stats.LastSeq != startAfter {
				t.Fatalf("nothing applied but LastSeq = %d, want %d", stats.LastSeq, startAfter)
			}
		} else if stats.LastSeq != applied[len(applied)-1].Seq {
			t.Fatalf("LastSeq = %d, last applied %d", stats.LastSeq, applied[len(applied)-1].Seq)
		}
	})
}
