// Package wal implements the write-ahead log behind quit.DurableTree: an
// append-only stream of insert/delete/clear records, each individually
// framed with a length prefix and a CRC32C, carrying monotonically
// increasing sequence numbers. Appends are buffered for group commit and
// flushed according to a configurable sync policy; framing is serialized
// by the log mutex while the flush+fsync runs outside it under a
// leader/follower protocol, so appenders may be concurrent and a framed
// record's disk write can overlap the caller's own work (AppendBatchStart
// / Commit). Replay applies the longest valid prefix of a log and stops
// cleanly at the first torn or corrupt record, which is exactly the state
// a crashed writer leaves behind (see DESIGN.md §8 for the durability
// contract).
//
// Record wire format (all integers little-endian):
//
//	len(4) | crc32c(4) | payload
//	payload = seq(8) | op(1) | key(8) | vlen(4) | vbytes(vlen)
//
// The CRC covers the payload. Keys are bit-cast to uint64 (sign-extended
// for signed key types, exactly inverted on replay); values are gob
// streams encoded independently per record, so any record can be decoded
// — or rejected — in isolation.
//
// Format version 2 adds the batch record (OpBatch), which shares the
// frame but carries a whole insertion group under one sequence number and
// one CRC:
//
//	payload = seq(8) | op(1) | count(4) | keys(8*count) | vbytes
//
// where vbytes is a single gob stream encoding the []V of values. Old
// logs contain no OpBatch records and replay unchanged; readers predating
// version 2 stop at the first batch record with an unknown-op corrupt
// tail, which recovery treats as a clean prefix.
//
// The log is *segmented*: when Config.OpenSegment is set, the commit
// leader rotates to a fresh file once the current segment crosses
// Config.SegmentBytes. A segment is rotated away only after a final
// fsync, so every segment but the last is complete and durable — a torn
// tail can exist only in the newest segment. Transient write/fsync
// failures are retried a bounded number of times with exponential
// backoff (Config.Retry) before the log poisons itself; hard failures
// (disk full and friends) poison immediately so the caller can degrade.
package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/quittree/quit/internal/core"
)

// Op identifies a logged mutation.
type Op uint8

const (
	OpInsert Op = 1
	OpDelete Op = 2
	OpClear  Op = 3
	// OpBatch (format version 2) carries a whole insertion group in one
	// record.
	OpBatch Op = 4
)

// String names the operation for diagnostics.
func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpClear:
		return "clear"
	case OpBatch:
		return "batch"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// SyncPolicy selects when appended records are fsynced to stable storage.
type SyncPolicy uint8

const (
	// SyncAlways flushes and syncs after every append: an append that
	// returns nil is durable. The safest and slowest policy.
	SyncAlways SyncPolicy = iota
	// SyncInterval group-commits: appends buffer in memory and the batch
	// is flushed and synced once the configured interval has elapsed (or
	// the buffer fills). A crash loses at most the last interval's worth
	// of acknowledged appends — recovery still sees a clean prefix.
	SyncInterval
	// SyncNever flushes only on buffer pressure and Close, and never
	// fsyncs; the OS decides when bytes reach the disk. Fastest; a crash
	// may lose any suffix of acknowledged appends.
	SyncNever
)

// String names the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// File is the sink a Log appends to: an os.File in production, a
// fault-injecting stand-in under test.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// RetryPolicy bounds the in-place recovery from transient I/O failures:
// a failed write or fsync is retried up to MaxRetries times with
// exponential backoff before the log gives up and poisons itself. Errors
// the classifier calls non-transient (disk full, read-only filesystem,
// a closed descriptor) skip the retries entirely — backing off will not
// conjure free space.
type RetryPolicy struct {
	// MaxRetries is the number of retries after the first attempt. The
	// zero value selects the default (3); negative disables retrying.
	MaxRetries int
	// Backoff is the delay before the first retry (default 1ms); it
	// doubles per retry up to MaxBackoff (default 100ms).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Sleep waits between attempts; nil selects time.Sleep. Tests inject
	// a recording sleeper so retries take no wall-clock time.
	Sleep func(time.Duration)
	// Transient reports whether an I/O error is worth retrying; nil
	// selects the default classifier, which retries everything except
	// the hard errnos (ENOSPC, EDQUOT, EROFS, EBADF) and closed files.
	Transient func(error) bool
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxRetries == 0 {
		p.MaxRetries = 3
	}
	if p.MaxRetries < 0 {
		p.MaxRetries = 0
	}
	if p.Backoff <= 0 {
		p.Backoff = time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 100 * time.Millisecond
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	if p.Transient == nil {
		p.Transient = DefaultTransient
	}
	return p
}

// backoffFor returns the delay before retry attempt n (1-based),
// doubling from Backoff and capped at MaxBackoff.
func (p RetryPolicy) backoffFor(attempt int) time.Duration {
	d := p.Backoff
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}

// DefaultTransient is the default retry classifier: an error is worth
// retrying unless it is one of the hard failures that time cannot fix —
// a full disk or quota, a read-only filesystem, or a dead descriptor.
func DefaultTransient(err error) bool {
	switch {
	case errors.Is(err, syscall.ENOSPC),
		errors.Is(err, syscall.EDQUOT),
		errors.Is(err, syscall.EROFS),
		errors.Is(err, syscall.EBADF),
		errors.Is(err, os.ErrClosed):
		return false
	}
	return true
}

// Config tunes a Log.
type Config struct {
	// Sync selects the sync policy; the zero value is SyncAlways.
	Sync SyncPolicy
	// Interval is the group-commit window for SyncInterval (default
	// 10ms). Checked lazily on Append: the batch is synced by the first
	// append past the deadline.
	Interval time.Duration
	// BufBytes caps the group-commit buffer; a batch exceeding it is
	// flushed regardless of policy (default 256KiB).
	BufBytes int
	// SegmentBytes is the rotation threshold: once the current segment
	// holds at least this many bytes, the commit leader syncs and closes
	// it and continues in a fresh file from OpenSegment. Zero selects
	// the default (64MiB); negative disables rotation. Rotation also
	// requires OpenSegment.
	SegmentBytes int64
	// OpenSegment opens the file for a new segment whose first record
	// will carry firstSeq. nil disables rotation (the log stays in the
	// file it was created with). The callback must create the file and
	// make its directory entry durable before returning.
	OpenSegment func(firstSeq uint64) (File, error)
	// Retry bounds the transient-fault retry loop; see RetryPolicy.
	Retry RetryPolicy
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 10 * time.Millisecond
	}
	if c.BufBytes <= 0 {
		c.BufBytes = 256 << 10
	}
	if c.SegmentBytes == 0 {
		c.SegmentBytes = 64 << 20
	}
	c.Retry = c.Retry.withDefaults()
	return c
}

// Record is one logged mutation. Key and Val are meaningful per Op: both
// for OpInsert, Key alone for OpDelete, neither for OpClear. OpBatch
// records carry the whole group in Keys/Vals instead (always equal in
// length, in the original application order).
type Record[K core.Integer, V any] struct {
	Seq uint64
	Op  Op
	Key K
	Val V

	// Batch fields (OpBatch only).
	Keys []K
	Vals []V
}

// ErrCorruptRecord reports a record whose checksum or structure is invalid
// — a flipped bit or a spliced log.
var ErrCorruptRecord = errors.New("wal: corrupt record (checksum or structure mismatch)")

// ErrTornRecord reports a log that ends mid-record — the signature of a
// crash between the first and last byte of a batch reaching the disk.
var ErrTornRecord = errors.New("wal: torn record at end of log")

// ErrSequence reports a sequence-number discontinuity: the log was
// tampered with or segments were replayed out of order.
var ErrSequence = errors.New("wal: sequence number discontinuity")

// ErrLogFailed is returned by every call after an append or sync has
// failed: the log's durable prefix is unknown, so the writer refuses to
// acknowledge further operations until reopened.
var ErrLogFailed = errors.New("wal: log failed; reopen to resume")

// maxRecordPayload bounds a record's declared length so a corrupted
// length field cannot demand an absurd allocation during replay.
const maxRecordPayload = 1 << 26

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Log is an append-only record log safe for concurrent appenders. Framing
// (sequence assignment, CRC, buffer append) happens under a single mutex;
// the write+fsync runs outside it under a leader/follower group commit, so
// a caller that has framed a record can overlap its own work — applying
// the mutation to the in-memory tree — with the disk write and only
// rendezvous with durability in Commit. One appender at a time becomes the
// commit leader and syncs the whole buffered batch; contemporaries framed
// into the same batch just wait for the leader's broadcast.
type Log[K core.Integer, V any] struct {
	f   File
	cfg Config

	mu      sync.Mutex
	commitC *sync.Cond // broadcast when a leader finishes (or the log fails)

	seq       uint64        // last assigned sequence number
	syncedSeq uint64        // highest sequence number committed per policy
	syncing   bool          // a commit leader is writing outside mu
	buf       *bytes.Buffer // framed records awaiting the next commit
	spare     *bytes.Buffer // the leader's detached batch, swapped back when idle
	pending   int           // appends buffered since the last flush
	lastSync  time.Time
	err       error // sticky failure

	// segBytes counts bytes written to the current segment. It is
	// touched only by the commit leader (syncing=true fences other
	// leaders off the file) and by New, so it needs no extra locking.
	segBytes int64

	// Counters, updated under mu (framing) or by the exclusive leader
	// (I/O), stored atomically so DurableTree's auto-checkpoint trigger
	// can read them without taking the log mutex.
	cRotations   atomic.Uint64
	cRetries     atomic.Uint64
	cRetriesOK   atomic.Uint64
	cBytes       atomic.Uint64 // bytes framed (and eventually written)
	cRecords     atomic.Uint64 // records framed
	cRotfailures atomic.Uint64
	cFsyncs      atomic.Uint64 // successful fsync barriers issued
}

// Counters is a snapshot of the log's durability counters. Bytes and
// Records count framed work since the Log was created (spanning its own
// segment rotations, not any predecessor logs).
type Counters struct {
	Rotations        uint64 // segments rotated away full and durable
	RotationFailures uint64 // abandoned rotations (sync or open failed)
	RetriesAttempted uint64 // write/fsync attempts beyond the first
	RetriesSucceeded uint64 // operations rescued by a retry
	Bytes            uint64 // record bytes framed into the log
	Records          uint64 // records framed into the log
	Fsyncs           uint64 // successful fsync barriers issued against segments
}

// Counters reads the counter snapshot without taking the log mutex.
func (l *Log[K, V]) Counters() Counters {
	return Counters{
		Rotations:        l.cRotations.Load(),
		RotationFailures: l.cRotfailures.Load(),
		RetriesAttempted: l.cRetries.Load(),
		RetriesSucceeded: l.cRetriesOK.Load(),
		Bytes:            l.cBytes.Load(),
		Records:          l.cRecords.Load(),
		Fsyncs:           l.cFsyncs.Load(),
	}
}

// New starts a log appending to f. lastSeq is the sequence number already
// durable below this log (0 for a fresh tree, the snapshot's sequence
// after a checkpoint); the first appended record gets lastSeq+1.
func New[K core.Integer, V any](f File, lastSeq uint64, cfg Config) *Log[K, V] {
	l := &Log[K, V]{
		f: f, cfg: cfg.withDefaults(),
		seq: lastSeq, syncedSeq: lastSeq,
		buf: new(bytes.Buffer), spare: new(bytes.Buffer),
		lastSync: time.Now(),
	}
	l.commitC = sync.NewCond(&l.mu)
	return l
}

// LastSeq returns the sequence number of the most recently appended (not
// necessarily durable) record.
func (l *Log[K, V]) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Err returns the sticky failure, if any.
func (l *Log[K, V]) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Append logs one mutation and applies the sync policy. The returned
// sequence number identifies the record; under SyncAlways a nil error
// means the record is durable, under the other policies it means the
// record is buffered and a later Sync (or policy-triggered flush) will
// make it durable. After any failure the log is poisoned and every
// subsequent call returns ErrLogFailed.
func (l *Log[K, V]) Append(op Op, key K, val V) (uint64, error) {
	l.mu.Lock()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return 0, err
	}
	seq := l.seq + 1
	before := l.buf.Len()
	if err := appendRecord(l.buf, seq, op, key, val, op == OpInsert); err != nil {
		// Encoding failed before any bytes were framed; the log file is
		// untouched, so this is not poisonous — but the buffer may hold a
		// partial frame, so it is. Be conservative: poison.
		l.fail(err)
		err = l.err
		l.mu.Unlock()
		return 0, err
	}
	l.seq = seq
	l.pending++
	l.cBytes.Add(uint64(l.buf.Len() - before))
	l.cRecords.Add(1)
	l.mu.Unlock()
	if err := l.Commit(seq); err != nil {
		return 0, err
	}
	return seq, nil
}

// AppendBatch logs a whole insertion group as one framed batch record:
// one sequence number, one CRC and — under SyncAlways — one fsync for
// the entire group, instead of one per key. Equivalent to
// AppendBatchStart followed immediately by Commit.
func (l *Log[K, V]) AppendBatch(keys []K, vals []V) (uint64, error) {
	seq, err := l.AppendBatchStart(keys, vals)
	if err != nil {
		return 0, err
	}
	if err := l.Commit(seq); err != nil {
		return 0, err
	}
	return seq, nil
}

// AppendBatchStart frames a batch record without committing it: the
// record is sequenced, checksummed and buffered, and the returned
// sequence number must later be handed to Commit, which applies the sync
// policy and blocks until the record is committed (or the policy defers
// it). The split lets a caller overlap tree application with the disk
// write of its own record — the WAL pipelining DurableTree.PutBatch uses.
//
// Keys and vals must be equal in length and non-empty; argument
// violations and oversize batches are reported without poisoning the log,
// since nothing is framed until the record is known to encode and fit.
// The value encoding happens outside the log mutex.
func (l *Log[K, V]) AppendBatchStart(keys []K, vals []V) (uint64, error) {
	if len(keys) != len(vals) {
		return 0, fmt.Errorf("wal: batch of %d keys with %d values", len(keys), len(vals))
	}
	if len(keys) == 0 {
		return 0, errors.New("wal: empty batch")
	}
	var vbuf bytes.Buffer
	if err := gob.NewEncoder(&vbuf).Encode(&vals); err != nil {
		return 0, fmt.Errorf("wal: encoding batch values: %w", err)
	}
	plen := 8 + 1 + 4 + 8*len(keys) + vbuf.Len()
	if plen > maxRecordPayload {
		return 0, fmt.Errorf("wal: batch record of %d bytes exceeds the %d-byte payload cap", plen, maxRecordPayload)
	}
	payload := make([]byte, plen)
	payload[8] = byte(OpBatch)
	binary.LittleEndian.PutUint32(payload[9:13], uint32(len(keys)))
	off := 13
	for _, k := range keys {
		binary.LittleEndian.PutUint64(payload[off:off+8], uint64(k))
		off += 8
	}
	copy(payload[off:], vbuf.Bytes())

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	seq := l.seq + 1
	binary.LittleEndian.PutUint64(payload[0:8], seq)
	var pre [8]byte
	binary.LittleEndian.PutUint32(pre[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(pre[4:8], crc32.Checksum(payload, crcTable))
	l.buf.Write(pre[:])
	l.buf.Write(payload)
	l.seq = seq
	l.pending++
	l.cBytes.Add(uint64(len(pre) + len(payload)))
	l.cRecords.Add(1)
	return seq, nil
}

// Commit applies the sync policy to a record framed by Append*Start. It
// returns nil once the record is committed — durable under SyncAlways and
// a tripped SyncInterval, flushed under a tripped SyncNever — or
// immediately when the policy defers the record to a later group commit
// (nothing to wait for: the deadline or buffer-pressure commit will carry
// it). If no leader is in flight, the caller becomes one and syncs the
// whole buffered batch; otherwise it waits for the in-flight leader and
// re-decides, since its record may have been framed after the leader
// detached its batch.
func (l *Log[K, V]) Commit(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.syncedSeq >= seq {
			// Already carried by an earlier leader (possibly a concurrent
			// committer, or Close's final sync). This must be checked before
			// the sticky error: a record that reached the disk is committed
			// even if the log failed afterwards.
			//quitlint:allow stickypoison syncedSeq-before-error carve-out: a durable record is committed even if the log failed later
			return nil
		}
		if l.err != nil {
			return l.err
		}
		switch l.cfg.Sync {
		case SyncInterval:
			if l.buf.Len() < l.cfg.BufBytes && time.Since(l.lastSync) < l.cfg.Interval {
				return nil
			}
		case SyncNever:
			if l.buf.Len() < l.cfg.BufBytes {
				return nil
			}
		}
		if !l.syncing {
			l.leaderCommit(true)
			continue
		}
		l.commitC.Wait()
	}
}

// leaderCommit detaches the buffered batch and writes (and, when doSync
// says so and the policy allows fsyncs, syncs) it outside the mutex.
// Called with l.mu held and l.syncing false; returns with l.mu held.
// syncedSeq advances on success — a flush alone counts as commit only
// under SyncNever, which by contract never makes durability promises.
//
// The leader is elected under l.mu after the caller's sticky check and
// owns l.f exclusively while syncing=true; its I/O runs through the
// bounded retry loops in writeAll/syncRetry, and its own final failure
// is what sets l.err. After a successful commit it rotates the segment
// if the threshold is crossed.
func (l *Log[K, V]) leaderCommit(doSync bool) {
	target := l.seq
	n := l.pending
	batch := l.buf
	l.buf, l.spare = l.spare, l.buf
	l.pending = 0
	l.syncing = true
	l.mu.Unlock()

	var err error
	if batch.Len() > 0 {
		err = l.writeAll(batch.Bytes(), n)
	}
	fsync := doSync && l.cfg.Sync != SyncNever
	if err == nil && fsync {
		err = l.syncRetry()
	}
	if err == nil {
		l.segBytes += int64(batch.Len())
		l.maybeRotate(target, fsync)
	}
	batch.Reset() // safe: syncing=true keeps other leaders off the spare

	l.mu.Lock()
	l.syncing = false
	if err != nil {
		l.fail(err)
	} else {
		if fsync || l.cfg.Sync == SyncNever {
			if target > l.syncedSeq {
				l.syncedSeq = target
			}
		}
		if fsync {
			l.lastSync = time.Now()
		}
	}
	l.commitC.Broadcast()
}

// writeAll writes data to the current segment, resuming after short
// writes and retrying transient failures under the bounded retry policy.
// Leader-only: called outside l.mu with syncing=true, so the file is
// exclusively owned and the sticky error cannot gate this I/O — the
// leader's own outcome is what decides it (the sanctioned retry loop the
// stickypoison analyzer verifies: bounded counter, transience check,
// injectable backoff sleeper).
func (l *Log[K, V]) writeAll(data []byte, n int) error {
	pol := l.cfg.Retry
	written := 0
	var err error
	for attempt := 0; attempt <= pol.MaxRetries; attempt++ {
		if attempt > 0 {
			l.cRetries.Add(1)
			pol.Sleep(pol.backoffFor(attempt))
		}
		m, werr := l.f.Write(data[written:])
		// A failed write may still have consumed a prefix (the os.File
		// short-write contract); resume after it, never rewrite it — a
		// duplicated prefix would corrupt the frame stream.
		written += m
		if werr == nil && written >= len(data) {
			if attempt > 0 {
				l.cRetriesOK.Add(1)
			}
			return nil
		}
		if werr != nil {
			err = werr
			if !pol.Transient(werr) {
				break
			}
		}
	}
	if err == nil {
		err = io.ErrShortWrite
	}
	return fmt.Errorf("wal: writing batch of %d records: %w", n, err)
}

// syncRetry fsyncs the current segment, retrying transient failures
// under the bounded retry policy. Leader-only, like writeAll.
func (l *Log[K, V]) syncRetry() error {
	pol := l.cfg.Retry
	var err error
	for attempt := 0; attempt <= pol.MaxRetries; attempt++ {
		if attempt > 0 {
			l.cRetries.Add(1)
			pol.Sleep(pol.backoffFor(attempt))
		}
		serr := l.f.Sync()
		if serr == nil {
			l.cFsyncs.Add(1)
			if attempt > 0 {
				l.cRetriesOK.Add(1)
			}
			return nil
		}
		err = serr
		if !pol.Transient(serr) {
			break
		}
	}
	return fmt.Errorf("wal: syncing log: %w", err)
}

// maybeRotate closes out the current segment and continues in a fresh
// one once the size threshold is crossed. Leader-only, outside l.mu. A
// segment is rotated away only after a final fsync (even under
// SyncNever), so every non-last segment is complete and durable on disk
// — replay tolerates a torn tail only in the newest segment. lastSeq is
// the last sequence number written to the old segment; the new segment's
// first record is lastSeq+1 (sequence numbers are contiguous and
// everything up to lastSeq has just been written).
//
// Rotation failures are not poisonous: the log simply keeps writing to
// the old segment and retries at the next commit.
func (l *Log[K, V]) maybeRotate(lastSeq uint64, synced bool) {
	if l.cfg.OpenSegment == nil || l.cfg.SegmentBytes <= 0 || l.segBytes < l.cfg.SegmentBytes {
		return
	}
	if !synced {
		if err := l.syncRetry(); err != nil {
			l.cRotfailures.Add(1)
			return
		}
	}
	nf, err := l.cfg.OpenSegment(lastSeq + 1)
	if err != nil {
		l.cRotfailures.Add(1)
		return
	}
	old := l.f
	l.f = nf // leader-owned while syncing=true; framing never touches l.f
	l.segBytes = 0
	l.cRotations.Add(1)
	old.Close()
}

// appendRecord frames one record into w. withVal controls whether the
// value is encoded (deletes and clears carry none).
func appendRecord[K core.Integer, V any](w *bytes.Buffer, seq uint64, op Op, key K, val V, withVal bool) error {
	var vbytes []byte
	if withVal {
		var vbuf bytes.Buffer
		if err := gob.NewEncoder(&vbuf).Encode(&val); err != nil {
			return fmt.Errorf("wal: encoding value for seq %d: %w", seq, err)
		}
		vbytes = vbuf.Bytes()
	}
	payload := make([]byte, 8+1+8+4+len(vbytes))
	binary.LittleEndian.PutUint64(payload[0:8], seq)
	payload[8] = byte(op)
	binary.LittleEndian.PutUint64(payload[9:17], uint64(key))
	binary.LittleEndian.PutUint32(payload[17:21], uint32(len(vbytes)))
	copy(payload[21:], vbytes)

	var pre [8]byte
	binary.LittleEndian.PutUint32(pre[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(pre[4:8], crc32.Checksum(payload, crcTable))
	w.Write(pre[:])
	w.Write(payload)
	return nil
}

// Flush writes the buffered batch to the file without syncing.
func (l *Log[K, V]) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.err != nil {
			return l.err
		}
		if l.syncing {
			l.commitC.Wait()
			continue
		}
		if l.buf.Len() == 0 {
			return nil
		}
		l.leaderCommit(false)
	}
}

// Sync commits every record appended so far: flush plus fsync (the fsync
// is skipped under SyncNever, where Sync degrades to Flush). Returns once
// the last appended record is committed, whether by this call or by a
// concurrent leader.
func (l *Log[K, V]) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

// syncLocked is Sync's commit loop, shared with Close. Called with l.mu
// held; returns with l.mu held.
//
// Unlike Commit, the sticky error is checked *before* the synced
// position: Sync and Close are whole-log entry points, and a poisoned
// log must report its failure from every entry point consistently, even
// when all previously framed records happen to be durable. (Commit keeps
// the syncedSeq-before-error carve-out because it speaks for one record,
// whose durability is a fact regardless of later failures.)
func (l *Log[K, V]) syncLocked() error {
	target := l.seq
	for {
		if l.err != nil {
			return l.err
		}
		if l.syncedSeq >= target {
			return nil
		}
		if !l.syncing {
			l.leaderCommit(true)
			continue
		}
		l.commitC.Wait()
	}
}

// Close flushes and syncs outstanding records and closes the file. The log
// is unusable afterwards; concurrent committers are woken with the sticky
// closed error (unless their records made it into the final sync, which
// counts as commit).
func (l *Log[K, V]) Close() error {
	l.mu.Lock()
	if l.err != nil {
		// Still release the file descriptor, but report the poisoning.
		err := l.err
		l.mu.Unlock()
		l.f.Close()
		return err
	}
	serr := l.syncLocked()
	for l.syncing {
		// A concurrent leader may still hold the file; let it land before
		// the descriptor goes away.
		l.commitC.Wait()
	}
	l.fail(errors.New("wal: log closed"))
	l.commitC.Broadcast()
	l.mu.Unlock()
	cerr := l.f.Close()
	if serr != nil {
		return serr
	}
	if cerr != nil {
		return fmt.Errorf("wal: closing log: %w", cerr)
	}
	// The log is self-poisoned ("log closed") and the descriptor released;
	// nothing observed after the final unlock can change what was acked.
	//quitlint:allow stickypoison teardown: log already self-poisoned and synced before the final unlock
	return nil
}

func (l *Log[K, V]) fail(err error) {
	if l.err == nil {
		l.err = fmt.Errorf("%w: %w", ErrLogFailed, err)
	}
}

// ReplayStats reports how a replay ended.
type ReplayStats struct {
	// Applied is the number of records handed to the callback.
	Applied int
	// LastSeq is the sequence number of the last applied record (or the
	// startAfter floor when none were).
	LastSeq uint64
	// Tail is nil when the log ended cleanly at a record boundary;
	// otherwise it wraps ErrTornRecord, ErrCorruptRecord or ErrSequence,
	// describing why replay stopped early. A torn or corrupt tail is the
	// expected post-crash state, not a replay failure: the applied prefix
	// is still consistent.
	Tail error
	// Bytes is the length of the valid record prefix — every framed byte
	// up to (not including) the first torn or corrupt record. Recovery
	// seeds the auto-checkpoint accounting from it.
	Bytes int64
}

// Replay reads records from r in order and hands every checksum-valid
// record with Seq > startAfter to apply, stopping cleanly at the first
// torn or corrupt record (reported in ReplayStats.Tail, not as an error).
// The returned error is reserved for failures of the apply callback
// itself, which abort the replay.
//
// Sequence numbers must increase contiguously from the first applied
// record; a regression or gap stops the replay with ErrSequence in Tail,
// on the grounds that a log whose ordering is broken cannot be trusted
// past the break.
func Replay[K core.Integer, V any](r io.Reader, startAfter uint64, apply func(Record[K, V]) error) (ReplayStats, error) {
	stats := ReplayStats{LastSeq: startAfter}
	next := startAfter + 1 // expected seq of the next applied record
	for {
		var pre [8]byte
		if _, err := io.ReadFull(r, pre[:1]); err != nil {
			if err != io.EOF {
				stats.Tail = fmt.Errorf("wal: reading record prefix: %w", ErrTornRecord)
			}
			return stats, nil
		}
		if _, err := io.ReadFull(r, pre[1:]); err != nil {
			stats.Tail = fmt.Errorf("wal: reading record prefix: %w", ErrTornRecord)
			return stats, nil
		}
		plen := binary.LittleEndian.Uint32(pre[0:4])
		want := binary.LittleEndian.Uint32(pre[4:8])
		// 13 bytes is the smallest legal payload (a batch header); per-op
		// minimums are enforced in decodeRecord.
		if plen < 13 || plen > maxRecordPayload {
			stats.Tail = fmt.Errorf("wal: record declares %d payload bytes: %w", plen, ErrCorruptRecord)
			return stats, nil
		}
		var pbuf bytes.Buffer
		if _, err := io.CopyN(&pbuf, r, int64(plen)); err != nil {
			stats.Tail = fmt.Errorf("wal: reading record payload: %w", ErrTornRecord)
			return stats, nil
		}
		payload := pbuf.Bytes()
		if crc32.Checksum(payload, crcTable) != want {
			stats.Tail = fmt.Errorf("wal: record checksum mismatch after seq %d: %w", stats.LastSeq, ErrCorruptRecord)
			return stats, nil
		}
		rec, err := decodeRecord[K, V](payload)
		if err != nil {
			stats.Tail = err
			return stats, nil
		}
		if rec.Seq <= startAfter {
			// Already covered by the snapshot below this log; skip, but
			// the ordering must still hold.
			stats.Bytes += int64(8 + plen)
			continue
		}
		if rec.Seq != next {
			stats.Tail = fmt.Errorf("wal: record seq %d, want %d: %w", rec.Seq, next, ErrSequence)
			return stats, nil
		}
		if err := apply(rec); err != nil {
			return stats, fmt.Errorf("wal: applying record seq %d: %w", rec.Seq, err)
		}
		stats.Applied++
		stats.LastSeq = rec.Seq
		stats.Bytes += int64(8 + plen)
		next++
	}
}

// decodeRecord parses one checksum-verified payload. Replay guarantees
// at least 13 bytes (the batch header); the larger 21-byte minimum of the
// legacy single-key ops is enforced here, per op.
func decodeRecord[K core.Integer, V any](payload []byte) (Record[K, V], error) {
	var rec Record[K, V]
	rec.Seq = binary.LittleEndian.Uint64(payload[0:8])
	rec.Op = Op(payload[8])
	switch rec.Op {
	case OpInsert, OpDelete, OpClear:
		if len(payload) < 21 {
			return rec, fmt.Errorf("wal: %s record payload of %d bytes, need at least 21: %w", rec.Op, len(payload), ErrCorruptRecord)
		}
		rec.Key = K(binary.LittleEndian.Uint64(payload[9:17]))
		vlen := binary.LittleEndian.Uint32(payload[17:21])
		vbytes := payload[21:]
		if uint32(len(vbytes)) != vlen {
			return rec, fmt.Errorf("wal: record value length %d, payload carries %d: %w", vlen, len(vbytes), ErrCorruptRecord)
		}
		if rec.Op == OpInsert {
			if err := gob.NewDecoder(bytes.NewReader(vbytes)).Decode(&rec.Val); err != nil {
				return rec, fmt.Errorf("wal: decoding value for seq %d: %v: %w", rec.Seq, err, ErrCorruptRecord) //quitlint:allow errwrap mapping cause onto the typed sentinel
			}
		} else if vlen != 0 {
			return rec, fmt.Errorf("wal: %s record carries a value: %w", rec.Op, ErrCorruptRecord)
		}
	case OpBatch:
		count := binary.LittleEndian.Uint32(payload[9:13])
		if count == 0 {
			return rec, fmt.Errorf("wal: batch record at seq %d carries no keys: %w", rec.Seq, ErrCorruptRecord)
		}
		end := 13 + 8*uint64(count)
		if uint64(len(payload)) < end {
			return rec, fmt.Errorf("wal: batch record declares %d keys but carries %d payload bytes: %w", count, len(payload), ErrCorruptRecord)
		}
		rec.Keys = make([]K, count)
		for i := range rec.Keys {
			rec.Keys[i] = K(binary.LittleEndian.Uint64(payload[13+8*i : 21+8*i]))
		}
		if err := gob.NewDecoder(bytes.NewReader(payload[end:])).Decode(&rec.Vals); err != nil {
			return rec, fmt.Errorf("wal: decoding batch values for seq %d: %v: %w", rec.Seq, err, ErrCorruptRecord) //quitlint:allow errwrap mapping cause onto the typed sentinel
		}
		if len(rec.Vals) != int(count) {
			return rec, fmt.Errorf("wal: batch record carries %d keys but %d values: %w", count, len(rec.Vals), ErrCorruptRecord)
		}
	default:
		return rec, fmt.Errorf("wal: unknown op %d at seq %d: %w", uint8(rec.Op), rec.Seq, ErrCorruptRecord)
	}
	return rec, nil
}
