package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// A checkpoint snapshot file opens with a fixed-size preamble binding the
// snapshot to the log position it covers: records with Seq <= LastSeq are
// baked into the snapshot and must be skipped on replay. The preamble is
// checksummed independently of the snapshot stream that follows it, so a
// damaged binding is detected before any snapshot bytes are trusted.
//
//	magic "QUITCKPT1\n" (10) | lastSeq(8 LE) | crc32c(4 LE, over magic+lastSeq)
const preambleMagic = "QUITCKPT1\n"

// PreambleMagic identifies a checkpoint snapshot file. Exposed so salvage
// tooling can recognize (and skip past) the preamble of an on-disk
// checkpoint when handed the whole file.
const PreambleMagic = preambleMagic

// PreambleSize is the byte length of the checkpoint preamble.
const PreambleSize = len(preambleMagic) + 8 + 4

// ErrBadPreamble reports a checkpoint preamble that is missing, torn, or
// checksum-invalid.
var ErrBadPreamble = errors.New("wal: bad checkpoint preamble")

// WritePreamble emits the checkpoint preamble for a snapshot covering the
// log up to and including lastSeq.
func WritePreamble(w io.Writer, lastSeq uint64) error {
	buf := make([]byte, PreambleSize)
	copy(buf, preambleMagic)
	binary.LittleEndian.PutUint64(buf[len(preambleMagic):], lastSeq)
	crc := crc32.Checksum(buf[:len(preambleMagic)+8], crcTable)
	binary.LittleEndian.PutUint32(buf[len(preambleMagic)+8:], crc)
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("wal: writing checkpoint preamble: %w", err)
	}
	return nil
}

// ReadPreamble reads and verifies the checkpoint preamble, returning the
// last sequence number the snapshot covers.
func ReadPreamble(r io.Reader) (lastSeq uint64, err error) {
	buf := make([]byte, PreambleSize)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, fmt.Errorf("wal: reading checkpoint preamble: %w", ErrBadPreamble)
	}
	if string(buf[:len(preambleMagic)]) != preambleMagic {
		return 0, fmt.Errorf("wal: checkpoint preamble magic mismatch: %w", ErrBadPreamble)
	}
	want := binary.LittleEndian.Uint32(buf[len(preambleMagic)+8:])
	if crc32.Checksum(buf[:len(preambleMagic)+8], crcTable) != want {
		return 0, fmt.Errorf("wal: checkpoint preamble checksum mismatch: %w", ErrBadPreamble)
	}
	return binary.LittleEndian.Uint64(buf[len(preambleMagic):]), nil
}
