package wal

import (
	"bytes"
	"errors"
	"fmt"
	"syscall"
	"testing"
	"time"
)

// flakyFile is a memFile with countdown fault schedules: the next
// failWrites writes (resp. failSyncs syncs) fail with err, then the file
// heals — the fail-N-times-then-succeed shape the retry loop exists for.
// A failing write may still consume partial bytes first (the os.File
// short-write contract).
type flakyFile struct {
	bytes.Buffer
	err        error
	failWrites int
	failSyncs  int
	partial    int // bytes a failing write consumes before erroring
	writes     int
	syncs      int
	closed     bool
}

func (f *flakyFile) Write(p []byte) (int, error) {
	f.writes++
	if f.failWrites != 0 {
		if f.failWrites > 0 {
			f.failWrites--
		}
		n := f.partial
		if n > len(p) {
			n = len(p)
		}
		f.Buffer.Write(p[:n])
		return n, f.err
	}
	return f.Buffer.Write(p)
}

func (f *flakyFile) Sync() error {
	if f.failSyncs != 0 {
		if f.failSyncs > 0 {
			f.failSyncs--
		}
		return f.err
	}
	f.syncs++
	return nil
}

func (f *flakyFile) Close() error { f.closed = true; return nil }

// recordedRetry returns a retry policy with an injected sleeper so tests
// assert the backoff sequence without waiting for it.
func recordedRetry(maxRetries int, sleeps *[]time.Duration) RetryPolicy {
	return RetryPolicy{
		MaxRetries: maxRetries,
		Backoff:    time.Millisecond,
		MaxBackoff: 8 * time.Millisecond,
		Sleep:      func(d time.Duration) { *sleeps = append(*sleeps, d) },
	}
}

func TestRetryHealsTransientWriteFailure(t *testing.T) {
	var sleeps []time.Duration
	f := &flakyFile{err: errors.New("EIO-ish hiccup"), failWrites: 2}
	l := New[int64, string](f, 0, Config{Sync: SyncAlways, Retry: recordedRetry(3, &sleeps)})

	if _, err := l.Append(OpInsert, 1, "one"); err != nil {
		t.Fatalf("append through transient failure: %v", err)
	}
	if err := l.Err(); err != nil {
		t.Fatalf("log poisoned despite self-healing: %v", err)
	}
	// Two retries, doubling backoff.
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond}
	if len(sleeps) != len(want) || sleeps[0] != want[0] || sleeps[1] != want[1] {
		t.Fatalf("backoff sleeps = %v, want %v", sleeps, want)
	}
	c := l.Counters()
	if c.RetriesAttempted != 2 || c.RetriesSucceeded != 1 {
		t.Fatalf("counters = %+v", c)
	}
	recs, stats := collect(t, f.Bytes(), 0)
	if len(recs) != 1 || stats.Tail != nil || recs[0].Val != "one" {
		t.Fatalf("replay after retry: %d recs, stats %+v", len(recs), stats)
	}
}

func TestRetryHealsTransientSyncFailure(t *testing.T) {
	var sleeps []time.Duration
	f := &flakyFile{err: errors.New("fsync hiccup"), failSyncs: 2}
	l := New[int64, string](f, 0, Config{Sync: SyncAlways, Retry: recordedRetry(3, &sleeps)})

	if _, err := l.Append(OpInsert, 7, "seven"); err != nil {
		t.Fatalf("append through transient fsync failure: %v", err)
	}
	if err := l.Err(); err != nil {
		t.Fatalf("log poisoned despite self-healing: %v", err)
	}
	if len(sleeps) != 2 {
		t.Fatalf("sleeps = %v, want 2 entries", sleeps)
	}
	if f.syncs == 0 {
		t.Fatal("no successful fsync recorded")
	}
}

func TestRetryExhaustionPoisons(t *testing.T) {
	var sleeps []time.Duration
	cause := errors.New("disk went away")
	f := &flakyFile{err: cause, failWrites: -1}
	l := New[int64, string](f, 0, Config{Sync: SyncAlways, Retry: recordedRetry(2, &sleeps)})

	_, err := l.Append(OpInsert, 1, "x")
	if err == nil {
		t.Fatal("append succeeded with a dead disk")
	}
	if !errors.Is(err, ErrLogFailed) || !errors.Is(err, cause) {
		t.Fatalf("err = %v, want ErrLogFailed wrapping the cause", err)
	}
	if len(sleeps) != 2 {
		t.Fatalf("sleeps = %v, want exactly MaxRetries entries", sleeps)
	}
	if serr := l.Err(); serr == nil || !errors.Is(serr, cause) {
		t.Fatalf("sticky error = %v", serr)
	}
}

func TestRetryBackoffCapped(t *testing.T) {
	var sleeps []time.Duration
	f := &flakyFile{err: errors.New("hiccup"), failWrites: -1}
	l := New[int64, string](f, 0, Config{Sync: SyncAlways, Retry: recordedRetry(6, &sleeps)})
	l.Append(OpInsert, 1, "x")
	// 1, 2, 4, 8, then capped at MaxBackoff (8ms).
	want := []time.Duration{1, 2, 4, 8, 8, 8}
	for i := range want {
		want[i] *= time.Millisecond
	}
	if len(sleeps) != len(want) {
		t.Fatalf("sleeps = %v, want %v", sleeps, want)
	}
	for i := range want {
		if sleeps[i] != want[i] {
			t.Fatalf("sleeps = %v, want %v", sleeps, want)
		}
	}
}

func TestNonTransientSkipsRetries(t *testing.T) {
	var sleeps []time.Duration
	cause := fmt.Errorf("write wal: %w", syscall.ENOSPC)
	f := &flakyFile{err: cause, failWrites: -1}
	l := New[int64, string](f, 0, Config{Sync: SyncAlways, Retry: recordedRetry(5, &sleeps)})

	_, err := l.Append(OpInsert, 1, "x")
	if err == nil || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want ENOSPC surfaced", err)
	}
	if len(sleeps) != 0 {
		t.Fatalf("slept %v for a non-transient failure", sleeps)
	}
	if c := l.Counters(); c.RetriesAttempted != 0 {
		t.Fatalf("counters = %+v, want no retries", c)
	}
}

func TestRetryResumesAfterPartialWrite(t *testing.T) {
	var sleeps []time.Duration
	// The failing write consumes 3 bytes before erroring; the retry must
	// resume after them — rewriting would duplicate the prefix and
	// corrupt the frame stream.
	f := &flakyFile{err: errors.New("hiccup"), failWrites: 1, partial: 3}
	l := New[int64, string](f, 0, Config{Sync: SyncAlways, Retry: recordedRetry(3, &sleeps)})

	if _, err := l.Append(OpInsert, 42, "answer"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(OpInsert, 43, "next"); err != nil {
		t.Fatal(err)
	}
	recs, stats := collect(t, f.Bytes(), 0)
	if len(recs) != 2 || stats.Tail != nil {
		t.Fatalf("replay: %d recs, stats %+v — partial-write resume broke the stream", len(recs), stats)
	}
	if recs[0].Val != "answer" || recs[1].Val != "next" {
		t.Fatalf("replayed %+v", recs)
	}
}

// segmentOpener collects the files a rotating log opens.
type segmentOpener struct {
	files []*flakyFile
	seqs  []uint64
	fail  error // when set, OpenSegment fails
}

func (o *segmentOpener) open(firstSeq uint64) (File, error) {
	if o.fail != nil {
		return nil, o.fail
	}
	f := &flakyFile{}
	o.files = append(o.files, f)
	o.seqs = append(o.seqs, firstSeq)
	return f, nil
}

func TestSegmentRotationSpreadsAndReplays(t *testing.T) {
	first := &flakyFile{}
	op := &segmentOpener{}
	l := New[int64, string](first, 0, Config{
		Sync: SyncAlways, SegmentBytes: 128, OpenSegment: op.open,
	})
	const n = 40
	for i := 0; i < n; i++ {
		if _, err := l.Append(OpInsert, int64(i), "payload-payload"); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if len(op.files) < 2 {
		t.Fatalf("only %d rotations for %d records at 128-byte segments", len(op.files), n)
	}
	if c := l.Counters(); c.Rotations != uint64(len(op.files)) {
		t.Fatalf("Counters.Rotations = %d, opened %d segments", c.Rotations, len(op.files))
	}

	// Every rotated-away segment was fsynced before abandonment and its
	// descriptor closed; only the last segment stays open for the log.
	segs := append([]*flakyFile{first}, op.files...)
	for i, s := range segs[:len(segs)-1] {
		if s.syncs == 0 {
			t.Fatalf("segment %d rotated away without a final fsync", i)
		}
		if !s.closed {
			t.Fatalf("segment %d rotated away without closing its file", i)
		}
	}

	// Chained replay over the segments reconstructs every record exactly
	// once, in order.
	var last uint64
	total := 0
	for i, s := range segs {
		// Replay enforces sequence contiguity within each segment itself;
		// chaining startAfter across segments checks the cross-segment
		// continuation.
		stats, err := Replay(bytes.NewReader(s.Bytes()), last, func(Record[int64, string]) error { return nil })
		if err != nil {
			t.Fatalf("segment %d: %v", i, err)
		}
		if stats.Tail != nil {
			t.Fatalf("segment %d has a tail: %v (only the last may tear, and this log closed cleanly)", i, stats.Tail)
		}
		total += stats.Applied
		last = stats.LastSeq
	}
	if total != n || last != uint64(n) {
		t.Fatalf("replayed %d records to seq %d, want %d", total, last, n)
	}
	// Segment names are contiguous: each new segment starts right after
	// the last sequence written to its predecessor.
	for i := 1; i < len(op.seqs); i++ {
		if op.seqs[i] <= op.seqs[i-1] {
			t.Fatalf("segment first-seqs not increasing: %v", op.seqs)
		}
	}
}

func TestRotationOpenerFailureIsNotPoisonous(t *testing.T) {
	first := &flakyFile{}
	op := &segmentOpener{fail: errors.New("no more files")}
	l := New[int64, string](first, 0, Config{
		Sync: SyncAlways, SegmentBytes: 64, OpenSegment: op.open,
	})
	for i := 0; i < 20; i++ {
		if _, err := l.Append(OpInsert, int64(i), "vvvvvvvv"); err != nil {
			t.Fatalf("append %d failed after rotation failure: %v", i, err)
		}
	}
	if err := l.Err(); err != nil {
		t.Fatalf("rotation failure poisoned the log: %v", err)
	}
	c := l.Counters()
	if c.RotationFailures == 0 {
		t.Fatal("no rotation failures counted")
	}
	if c.Rotations != 0 {
		t.Fatalf("counted %d rotations with a failing opener", c.Rotations)
	}
	// Everything stayed in the original segment and replays cleanly.
	recs, stats := collect(t, first.Bytes(), 0)
	if len(recs) != 20 || stats.Tail != nil {
		t.Fatalf("replay: %d recs, %+v", len(recs), stats)
	}
}

// TestStickyErrorConsistency pins the contract that every post-poison
// entry point returns the same sticky error: one failure, one story.
func TestStickyErrorConsistency(t *testing.T) {
	cause := errors.New("dead disk")
	f := &flakyFile{err: cause, failSyncs: -1}
	l := New[int64, string](f, 0, Config{Sync: SyncAlways, Retry: RetryPolicy{MaxRetries: -1}})

	_, err := l.Append(OpInsert, 1, "x")
	if err == nil {
		t.Fatal("append succeeded with a failing fsync")
	}
	sticky := l.Err()
	if sticky == nil || !errors.Is(sticky, ErrLogFailed) || !errors.Is(sticky, cause) {
		t.Fatalf("sticky = %v", sticky)
	}

	entryPoints := map[string]func() error{
		"Append": func() error { _, err := l.Append(OpInsert, 2, "y"); return err },
		"AppendBatch": func() error {
			_, err := l.AppendBatch([]int64{1, 2}, []string{"a", "b"})
			return err
		},
		"AppendBatchStart": func() error {
			_, err := l.AppendBatchStart([]int64{1, 2}, []string{"a", "b"})
			return err
		},
		"Sync":  l.Sync,
		"Flush": l.Flush,
	}
	for name, call := range entryPoints {
		if got := call(); got != sticky { // identity: the very same sticky error value
			t.Errorf("%s returned %v, want the sticky error %v", name, got, sticky)
		}
	}
	// Close also reports the poisoning (and still releases the file).
	if got := l.Close(); got != sticky {
		t.Errorf("Close returned %v, want the sticky error", got)
	}
	if !f.closed {
		t.Error("Close did not release the file of a poisoned log")
	}
}
