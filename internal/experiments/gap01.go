package experiments

import (
	"fmt"
	"runtime"
	"time"

	"github.com/quittree/quit/internal/bods"
	"github.com/quittree/quit/internal/core"
	"github.com/quittree/quit/internal/harness"
)

// Gap01Result sweeps Config.GapFraction (beyond the paper; DESIGN.md §11):
// the fraction of slots the wholesale build paths leave as interleaved gaps
// trades space for out-of-order absorption. A packed build touches the
// fewest leaves but every displaced key that lands mid-leaf must shift to
// a distant gap or split; a gapped build spends proportionally more leaves
// up front and absorbs displaced keys into nearby gaps.
type Gap01Result struct {
	Fraction  []string  // gap fraction label (packed | 0.05 | ...)
	Leaves    []int64   // leaf count right after the sorted bulk build
	FillPct   []float64 // build-time occupancy: N / (leaves * LeafCapacity)
	OpsPerSec []float64 // near-sorted (K=5%) follow-up ingest throughput
	Speedup   []float64 // vs the packed build
}

// RunGap01 bulk-builds a tree from the even keys 0,2,...,2N-2 with each gap
// fraction, then ingests the odd keys as a K=5% BoDS stream — every key
// lands inside an existing leaf, so the follow-up phase isolates how well
// the reserved gaps absorb mid-leaf traffic.
func RunGap01(p harness.Params) Gap01Result {
	n := p.N
	fractions := []struct {
		name string
		f    float64
	}{{"packed", -1}, {"0.05", 0.05}, {"0.10", 0.1}, {"0.25", 0.25}, {"0.50", 0.5}}

	base := make([]int64, n)
	vals := make([]int64, n)
	for i := range base {
		base[i] = int64(2 * i)
		vals[i] = base[i]
	}
	// Follow-up stream: every 10th key of a K=5% BoDS permutation of the
	// odd keys — near-sorted, spanning the whole keyspace, but only ~10%
	// growth per leaf, so reserved gaps can absorb it without forcing a
	// split in every leaf (a stream that doubles the data would measure
	// split timing, not absorption).
	perm := bods.Generate(bods.Spec{N: n, K: 0.05, L: 1.0, Seed: p.Seed})
	stream := make([]int64, 0, n/10)
	for i := 0; i < len(perm); i += 10 {
		stream = append(stream, 2*perm[i]+1)
	}

	var r Gap01Result
	for _, fr := range fractions {
		cfg := treeConfig(p, core.ModeQuIT)
		cfg.GapFraction = fr.f
		tr := core.New[int64, int64](cfg)
		tr.PutBatch(base, vals)
		leaves := tr.Stats().Leaves
		fill := float64(n) / float64(leaves*int64(p.LeafCapacity)) * 100

		runtime.GC()
		start := time.Now()
		for _, k := range stream {
			tr.Put(k, k)
		}
		ops := float64(len(stream)) / time.Since(start).Seconds()

		r.Fraction = append(r.Fraction, fr.name)
		r.Leaves = append(r.Leaves, leaves)
		r.FillPct = append(r.FillPct, fill)
		r.OpsPerSec = append(r.OpsPerSec, ops)
		r.Speedup = append(r.Speedup, ops/r.OpsPerSec[0])
	}
	return r
}

// Tables renders the result.
func (r Gap01Result) Tables() []harness.Table {
	t := harness.Table{
		ID:      "gap01",
		Title:   "Gap fraction sweep (beyond the paper): build occupancy vs out-of-order absorption",
		Note:    "sorted bulk build of even keys, then odd keys as a K=5% BoDS stream; speedup is vs the packed build",
		Headers: []string{"gap fraction", "leaves", "fill %", "M ops/sec", "speedup"},
	}
	for i := range r.Fraction {
		t.Rows = append(t.Rows, []string{
			r.Fraction[i],
			fmt.Sprintf("%d", r.Leaves[i]),
			harness.Fmt(r.FillPct[i]),
			harness.Fmt(r.OpsPerSec[i] / 1e6),
			harness.Fmt(r.Speedup[i]) + "x",
		})
	}
	return []harness.Table{t}
}

func init() {
	harness.Register(harness.Experiment{
		ID: "gap01", Paper: "(extension)", Title: "gap fraction: fill factor vs near-sorted ingest",
		Run: func(p harness.Params) []harness.Table { return RunGap01(p).Tables() },
	})
}
