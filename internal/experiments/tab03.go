package experiments

import (
	"github.com/quittree/quit/internal/core"
	"github.com/quittree/quit/internal/harness"
)

// Tab03Result reproduces Table 3: QuIT's scalability with data size, for
// fully sorted (K=0), nearly sorted (K=L=5%) and less sorted (K=L=25%)
// streams. Paper shape: the fast-insert fraction is flat across sizes
// (100% / ~95% / ~75%) and the speedup over the B+-tree grows slightly with
// size as trees get taller.
type Tab03Result struct {
	Sizes    []int
	Levels   []string
	K, L     []float64
	Speedup  map[string][]float64 // level -> per-size speedup
	FastFrac map[string][]float64
}

// RunTab03 executes the sweep. Sizes scale from p.N/8 to 2*p.N (the paper
// spans 0.4GB to 32GB; the trend, not the absolute span, is the claim).
func RunTab03(p harness.Params) Tab03Result {
	mults := []float64{0.125, 0.25, 0.5, 1, 2}
	if p.Quick {
		mults = []float64{0.25, 1}
	}
	r := Tab03Result{
		Levels:   []string{"fully sorted", "nearly sorted", "less sorted"},
		K:        []float64{0, 0.05, 0.25},
		L:        []float64{1.0, 0.05, 0.25},
		Speedup:  map[string][]float64{},
		FastFrac: map[string][]float64{},
	}
	for _, m := range mults {
		n := int(float64(p.N) * m)
		if n < 1000 {
			n = 1000
		}
		r.Sizes = append(r.Sizes, n)
	}
	for li, level := range r.Levels {
		for _, n := range r.Sizes {
			sp := p
			sp.N = n
			keys := genKeys(sp, r.K[li], r.L[li])
			btree := newTree(sp, core.ModeNone)
			bns := ingest(btree, keys)
			quit := newTree(sp, core.ModeQuIT)
			qns := ingest(quit, keys)
			r.Speedup[level] = append(r.Speedup[level], bns/qns)
			r.FastFrac[level] = append(r.FastFrac[level], quit.Stats().FastInsertFraction())
		}
	}
	return r
}

// Tables renders the result.
func (r Tab03Result) Tables() []harness.Table {
	t := harness.Table{
		ID:      "tab03",
		Title:   "Table 3: QuIT scales with data size",
		Note:    "speedup vs classical B+-tree; fully sorted K=0, nearly K=L=5%, less K=L=25%",
		Headers: []string{"sortedness", "metric"},
	}
	for _, n := range r.Sizes {
		t.Headers = append(t.Headers, harness.Fmt(float64(n)/1e6)+"M")
	}
	for _, level := range r.Levels {
		spRow := []string{level, "speedup"}
		ffRow := []string{"", "% fast-inserts"}
		for i := range r.Sizes {
			spRow = append(spRow, harness.Speedup(r.Speedup[level][i]))
			ffRow = append(ffRow, harness.Pct(r.FastFrac[level][i]))
		}
		t.Rows = append(t.Rows, spRow, ffRow)
	}
	return []harness.Table{t}
}

func init() {
	harness.Register(harness.Experiment{
		ID:    "tab03",
		Paper: "Table 3",
		Title: "scalability with data size",
		Run: func(p harness.Params) []harness.Table {
			return RunTab03(p).Tables()
		},
	})
}
