package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"github.com/quittree/quit"
	"github.com/quittree/quit/internal/harness"
	"github.com/quittree/quit/internal/shard"
)

// Shard01Result measures the PR 10 serving stack (beyond the paper;
// DESIGN.md §12) in three cuts:
//
//  1. Write path: 64 concurrent clients through the server-side
//     coalescer (group commit per shard) vs the same clients issuing
//     per-request DurableTree.Put, both SyncAlways on the real
//     filesystem. Reports ops/sec, fsyncs per acknowledged op, and
//     p50/p95/p99 ack latency.
//  2. Sharded ingest: a near-sorted (K=5%) BoDS stream applied as
//     PutBatch to one in-memory tree vs router-split across 4 in-memory
//     trees (durability off isolates the routing effect: smaller trees,
//     narrower sub-batches).
//  3. Read path: a 95/5 hot-key read-mostly workload through the
//     sharded LRU cache vs straight tree reads, with the write 5%
//     invalidating through the coalescer hook.
type Shard01Result struct {
	// Write path.
	WriteMode    []string
	WriteOps     []float64 // ops/sec
	FsyncsPerOp  []float64
	P50, P95, P99 []time.Duration
	WriteSpeedup float64 // coalesced vs per-request

	// Sharded in-memory ingest.
	ShardMode    []string
	ShardOps     []float64 // M ops/sec
	ShardSpeedup []float64 // 4 shards vs 1, per stream

	// Read path.
	HitRate      float64
	CachedOps    float64 // ops/sec through cache
	DirectOps    float64 // ops/sec straight to tree
	CacheSpeedup float64
}

// RunShard01 executes all three cuts.
func RunShard01(p harness.Params) Shard01Result {
	var r Shard01Result
	r.runWritePath(p)
	r.runShardedIngest(p)
	r.runReadPath(p)
	return r
}

const shard01Clients = 64

// runWritePath drives the 64-client comparison on the real filesystem.
func (r *Shard01Result) runWritePath(p harness.Params) {
	opsPerClient := 50
	if p.Quick {
		opsPerClient = 10
	}
	treeOpts := quit.Options{LeafCapacity: p.LeafCapacity, InternalFanout: p.InternalFanout}

	// Baseline: every request is its own DurableTree.Put (the WAL still
	// group-commits concurrent callers — this is the strongest
	// no-coalescer baseline, not a strawman).
	dir, err := os.MkdirTemp("", "shard01-base")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	d, err := quit.Open[int64, int64](dir, quit.DurableOptions{Options: treeOpts, Sync: quit.SyncAlways})
	if err != nil {
		panic(err)
	}
	ops, lat := driveClients(shard01Clients, opsPerClient, func(k int64) error {
		return d.Insert(k, k)
	})
	base := ops
	fsyncs := d.DurabilityStats().Fsyncs
	d.Close()
	total := float64(shard01Clients * opsPerClient)
	r.WriteMode = append(r.WriteMode, "per-request Put")
	r.WriteOps = append(r.WriteOps, ops)
	r.FsyncsPerOp = append(r.FsyncsPerOp, float64(fsyncs)/total)
	r.P50 = append(r.P50, lat.P50())
	r.P95 = append(r.P95, lat.P95())
	r.P99 = append(r.P99, lat.P99())

	// Coalesced: the quitserver write path — batch former over the
	// sharded store, acks after group commit. One shard on purpose: this
	// cut isolates group-commit amortization (fsyncs per acknowledged
	// op); the sharding effect is measured separately below. With 64
	// clients each blocking on one in-flight op, a shard's group size is
	// bounded by the clients parked on it, so fsyncs/op floors at
	// shards/clients — one shard gives the clean 1/64 reading.
	dir2, err := os.MkdirTemp("", "shard01-coal")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir2)
	st, err := shard.Open[int64, int64](dir2, quit.ShardedOptions{
		DurableOptions: quit.DurableOptions{Options: treeOpts, Sync: quit.SyncAlways},
		Shards:         1,
	}, nil)
	if err != nil {
		panic(err)
	}
	// 50us window, tuned to this host's ~100us fsync: long enough for all
	// re-submitting clients to join the group, short enough not to become
	// the cycle's dominant term (the server flag default is a
	// conservative 2ms for real disks).
	co := shard.NewCoalescer(st, 256, 50*time.Microsecond, nil)
	ops, lat = driveClients(shard01Clients, opsPerClient, func(k int64) error {
		return co.Put(k, k)
	})
	co.Close()
	fsyncs = st.DurabilityStats().Fsyncs
	st.Close()
	r.WriteMode = append(r.WriteMode, "coalesced PutBatch")
	r.WriteOps = append(r.WriteOps, ops)
	r.FsyncsPerOp = append(r.FsyncsPerOp, float64(fsyncs)/total)
	r.P50 = append(r.P50, lat.P50())
	r.P95 = append(r.P95, lat.P95())
	r.P99 = append(r.P99, lat.P99())
	r.WriteSpeedup = ops / base
}

// driveClients runs n concurrent clients issuing opsPer writes each
// through put, returning aggregate ops/sec and merged ack latencies.
// Client g writes keys g<<32|i: dense per client, spread across shards.
func driveClients(n, opsPer int, put func(int64) error) (float64, *harness.Latencies) {
	var wg sync.WaitGroup
	lats := make([]harness.Latencies, n)
	runtime.GC()
	start := time.Now()
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				k := int64(g)<<32 | int64(i)
				t0 := time.Now()
				if err := put(k); err != nil {
					panic(err)
				}
				lats[g].Record(time.Since(t0))
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	merged := &harness.Latencies{}
	for i := range lats {
		merged.Merge(&lats[i])
	}
	return float64(n*opsPer) / elapsed, merged
}

// runShardedIngest compares one in-memory tree against a router split
// across 4, durability off, on two streams: the BoDS near-sorted stream
// (K=5%, L=100%) the paper's figures use, and 4 interleaved sorted
// streams — the multi-tenant server workload range sharding exists for,
// where the split *restores* each shard's sortedness.
func (r *Shard01Result) runShardedIngest(p harness.Params) {
	near := genKeys(p, 0.05, 1.0)[:p.N]
	multi := make([]int64, p.N)
	var ctr [4]int64
	for i := range multi {
		c := i % 4 // 4 tenants appending to disjoint regions
		multi[i] = int64(c)<<40 | ctr[c]
		ctr[c]++
	}
	for _, stream := range []struct {
		name string
		keys []int64
	}{{"near (K=5%)", near}, {"4 sorted streams", multi}} {
		base := shardIngestRun(p, stream.keys, 1)
		split := shardIngestRun(p, stream.keys, 4)
		r.ShardMode = append(r.ShardMode, stream.name+" / 1 tree", stream.name+" / 4 shards")
		r.ShardOps = append(r.ShardOps, base/1e6, split/1e6)
		r.ShardSpeedup = append(r.ShardSpeedup, split/base)
	}
}

// shardIngestRun ingests keys through n range shards (n=1 is the plain
// single-tree PutBatch loop) and returns ops/sec.
func shardIngestRun(p harness.Params, keys []int64, n int) float64 {
	const bs = 8192
	opts := quit.Options{LeafCapacity: p.LeafCapacity, InternalFanout: p.InternalFanout, Design: quit.QuIT}
	router := shard.NewRouter(n, keys[:min(len(keys), 65536)])
	trees := make([]*quit.Tree[int64, int64], n)
	for i := range trees {
		trees[i] = quit.New[int64, int64](opts)
	}
	skeys := make([][]int64, n)
	runtime.GC()
	start := time.Now()
	for i := 0; i < len(keys); i += bs {
		end := min(i+bs, len(keys))
		if n == 1 {
			trees[0].PutBatch(keys[i:end], keys[i:end])
			continue
		}
		for s := range skeys {
			skeys[s] = skeys[s][:0]
		}
		for j := i; j < end; j++ {
			s := router.ShardFor(keys[j])
			skeys[s] = append(skeys[s], keys[j])
		}
		for s := range trees {
			if len(skeys[s]) > 0 {
				trees[s].PutBatch(skeys[s], skeys[s])
			}
		}
	}
	return float64(len(keys)) / time.Since(start).Seconds()
}

// runReadPath measures the 95/5 hot-key workload through the cache.
func (r *Shard01Result) runReadPath(p harness.Params) {
	n := p.N / 4
	reads := p.Lookups
	dir, err := os.MkdirTemp("", "shard01-cache")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	sample := make([]int64, 1024)
	for i := range sample {
		sample[i] = int64(i) * int64(n) / int64(len(sample))
	}
	st, err := shard.Open[int64, int64](dir, quit.ShardedOptions{
		DurableOptions: quit.DurableOptions{
			Options: quit.Options{LeafCapacity: p.LeafCapacity, InternalFanout: p.InternalFanout},
			Sync:    quit.SyncNever, // read benchmark: don't let fsyncs dominate the 5% writes
		},
		Shards: 4,
	}, sample)
	if err != nil {
		panic(err)
	}
	defer st.Close()
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i)
	}
	if _, err := st.PutBatch(keys, keys); err != nil {
		panic(err)
	}

	cache := shard.NewCache[int64, int64](8192, 16)
	co := shard.NewCoalescer(st, 256, time.Millisecond, cache.InvalidateBatch)
	defer co.Close()
	rng := rand.New(rand.NewSource(p.Seed))
	hot := keys[:max(n/100, 1)] // 1% of keys take 95% of reads
	pick := func() int64 {
		if rng.Intn(100) < 95 {
			return hot[rng.Intn(len(hot))]
		}
		return keys[rng.Intn(n)]
	}
	ops := make([]int64, reads)
	for i := range ops {
		ops[i] = pick()
	}

	direct := 1 / harness.TimeOps(reads, func(i int) {
		st.Get(ops[i])
	}) * 1e9
	cached := 1 / harness.TimeOps(reads, func(i int) {
		cache.GetOrLoad(ops[i], st.Get)
	}) * 1e9
	cc := cache.Counters()
	r.HitRate = float64(cc.CacheHits) / float64(cc.CacheHits+cc.CacheMisses)
	r.DirectOps = direct
	r.CachedOps = cached
	r.CacheSpeedup = cached / direct
}

// Tables renders the three cuts.
func (r Shard01Result) Tables() []harness.Table {
	write := harness.Table{
		ID:    "shard01",
		Title: "Serving stack (beyond the paper): coalesced group commit, 64 clients",
		Note: fmt.Sprintf("SyncAlways on the real filesystem; GOMAXPROCS=%d — on one core the\ncoalescer's gain is fewer WAL records, fewer fsync barriers and batch tree\napplication, not parallelism (caveat as in par01)", runtime.GOMAXPROCS(0)),
		Headers: []string{"write path", "ops/sec", "fsyncs/op", "p50", "p95", "p99"},
	}
	for i := range r.WriteMode {
		write.Rows = append(write.Rows, []string{
			r.WriteMode[i],
			harness.Fmt(r.WriteOps[i]),
			fmt.Sprintf("%.4f", r.FsyncsPerOp[i]),
			harness.FmtDur(r.P50[i]),
			harness.FmtDur(r.P95[i]),
			harness.FmtDur(r.P99[i]),
		})
	}
	write.Rows = append(write.Rows, []string{"speedup", harness.Speedup(r.WriteSpeedup), "", "", "", ""})

	ingest := harness.Table{
		ID:    "shard01b",
		Title: "Key-range sharding: PutBatch split by shard boundary, in-memory",
		Note: "batch=8192, same stream and total work per pair; sequential per-shard\napplication (single-core honest — see EXPERIMENTS.md for the reading):\nthe BoDS near-sorted stream gains nothing on one core (equal tree heights\nat this scale, plus a classify pass), while interleaved sorted streams —\nthe multi-tenant workload — win algorithmically: the range split restores\neach shard's sortedness and the QuIT fast path takes over",
		Headers: []string{"stream / layout", "M ops/sec", "speedup"},
	}
	for i := range r.ShardMode {
		sp := ""
		if i%2 == 1 {
			sp = harness.Speedup(r.ShardSpeedup[i/2])
		}
		ingest.Rows = append(ingest.Rows, []string{r.ShardMode[i], harness.Fmt(r.ShardOps[i]), sp})
	}

	read := harness.Table{
		ID:      "shard01c",
		Title:   "Hot-key cache: 95/5 read-mostly point lookups",
		Note:    "1% hot set takes 95% of reads; cache invalidated through the coalescer's\nAfterCommit hook (no stale read after an acknowledged write)",
		Headers: []string{"read path", "M ops/sec", "hit rate", "speedup"},
	}
	read.Rows = append(read.Rows, []string{"tree Get", harness.Fmt(r.DirectOps / 1e6), "", ""})
	read.Rows = append(read.Rows, []string{"cache GetOrLoad", harness.Fmt(r.CachedOps / 1e6), harness.Pct(r.HitRate), harness.Speedup(r.CacheSpeedup)})

	return []harness.Table{write, ingest, read}
}

func init() {
	harness.Register(harness.Experiment{
		ID: "shard01", Paper: "(extension)", Title: "serving stack: sharding, group commit, hot-key cache",
		Run: func(p harness.Params) []harness.Table { return RunShard01(p).Tables() },
	})
}
