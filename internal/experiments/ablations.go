package experiments

import (
	"github.com/quittree/quit/internal/core"
	"github.com/quittree/quit/internal/harness"
)

// Ablation experiments beyond the paper's figures, quantifying the design
// decisions called out in DESIGN.md. They run on the Fig. 8/9 workload
// (BoDS, L=100%) and report the deterministic fast-insert fraction plus
// leaf occupancy, so results are stable across hosts.

// AblCatchUpResult compares the paper's prose catch-up rule (advance pole
// into its successor only when IKR accepts the key) against Algorithm 1's
// literal unconditional rule.
type AblCatchUpResult struct {
	K       []float64
	Gated   []float64 // fast-insert fraction, IKR-gated (default)
	Literal []float64 // fast-insert fraction, unconditional
}

// RunAblCatchUp executes the comparison.
func RunAblCatchUp(p harness.Params) AblCatchUpResult {
	grid := kGridFor(p)
	r := AblCatchUpResult{K: grid}
	for _, k := range grid {
		keys := genKeys(p, k, 1.0)
		for _, uncond := range []bool{false, true} {
			cfg := treeConfig(p, core.ModeQuIT)
			cfg.UnconditionalCatchUp = uncond
			tr := core.New[int64, int64](cfg)
			ingest(tr, keys)
			f := tr.Stats().FastInsertFraction()
			if uncond {
				r.Literal = append(r.Literal, f)
			} else {
				r.Gated = append(r.Gated, f)
			}
		}
	}
	return r
}

// Tables renders the result.
func (r AblCatchUpResult) Tables() []harness.Table {
	t := harness.Table{
		ID:      "abl01",
		Title:   "Ablation: catch-up rule (IKR-gated prose vs Algorithm 1 literal)",
		Note:    "fast-insert fraction; higher is better",
		Headers: []string{"K", "IKR-gated (default)", "unconditional"},
	}
	for i, k := range r.K {
		t.Rows = append(t.Rows, []string{pctLabel(k), harness.Pct(r.Gated[i]), harness.Pct(r.Literal[i])})
	}
	return []harness.Table{t}
}

// AblResetResult sweeps the reset threshold TR around the paper's
// floor(sqrt(leaf capacity)) default.
type AblResetResult struct {
	TR   []int
	Fast []float64
}

// RunAblReset executes the sweep at K=25% (where the reset strategy
// matters most).
func RunAblReset(p harness.Params) AblResetResult {
	trs := []int{1, 2, 5, 11, 22, 45, 100, 1 << 30}
	if p.Quick {
		trs = []int{1, 22, 1 << 30}
	}
	keys := genKeys(p, 0.25, 1.0)
	r := AblResetResult{TR: trs}
	for _, tr := range trs {
		cfg := treeConfig(p, core.ModeQuIT)
		cfg.ResetThreshold = tr
		t := core.New[int64, int64](cfg)
		ingest(t, keys)
		r.Fast = append(r.Fast, t.Stats().FastInsertFraction())
	}
	return r
}

// Tables renders the result.
func (r AblResetResult) Tables() []harness.Table {
	t := harness.Table{
		ID:      "abl02",
		Title:   "Ablation: reset threshold TR at K=25%",
		Note:    "paper default TR = floor(sqrt(510)) = 22; TR=2^30 disables resets",
		Headers: []string{"TR", "% fast-inserts"},
	}
	for i, tr := range r.TR {
		label := harness.Fmt(float64(tr))
		if tr == 1<<30 {
			label = "off"
		}
		t.Rows = append(t.Rows, []string{label, harness.Pct(r.Fast[i])})
	}
	return []harness.Table{t}
}

// AblScaleResult sweeps the IKR slack scale around the paper's 1.5,
// checking the "little to no tuning" claim: performance should be flat
// across a wide band.
type AblScaleResult struct {
	Scale []float64
	Fast  []float64
	Occ   []float64
}

// RunAblScale executes the sweep at K=5% (near-sorted, the design center).
func RunAblScale(p harness.Params) AblScaleResult {
	scales := []float64{0.5, 1.0, 1.5, 2.0, 3.0, 5.0}
	if p.Quick {
		scales = []float64{1.0, 1.5, 3.0}
	}
	keys := genKeys(p, 0.05, 1.0)
	r := AblScaleResult{Scale: scales}
	for _, sc := range scales {
		cfg := treeConfig(p, core.ModeQuIT)
		cfg.IKRScale = sc
		t := core.New[int64, int64](cfg)
		ingest(t, keys)
		r.Fast = append(r.Fast, t.Stats().FastInsertFraction())
		r.Occ = append(r.Occ, t.AvgLeafOccupancy())
	}
	return r
}

// Tables renders the result.
func (r AblScaleResult) Tables() []harness.Table {
	t := harness.Table{
		ID:      "abl03",
		Title:   "Ablation: IKR scale sensitivity at K=5%",
		Note:    "the paper fixes scale=1.5 (IQR practice) and claims little tuning is needed",
		Headers: []string{"scale", "% fast-inserts", "% occupancy"},
	}
	for i, sc := range r.Scale {
		t.Rows = append(t.Rows, []string{harness.Fmt(sc), harness.Pct(r.Fast[i]), harness.Pct(r.Occ[i])})
	}
	return []harness.Table{t}
}

func init() {
	harness.Register(harness.Experiment{
		ID: "abl01", Paper: "(ablation)", Title: "catch-up rule variants",
		Run: func(p harness.Params) []harness.Table { return RunAblCatchUp(p).Tables() },
	})
	harness.Register(harness.Experiment{
		ID: "abl02", Paper: "(ablation)", Title: "reset threshold sweep",
		Run: func(p harness.Params) []harness.Table { return RunAblReset(p).Tables() },
	})
	harness.Register(harness.Experiment{
		ID: "abl03", Paper: "(ablation)", Title: "IKR scale sensitivity",
		Run: func(p harness.Params) []harness.Table { return RunAblScale(p).Tables() },
	})
}
