package experiments

import (
	"github.com/quittree/quit/internal/core"
	"github.com/quittree/quit/internal/harness"
)

// Fig05aResult reproduces Figure 5a: measured fast-insert fractions of the
// tail-B+-tree vs the lil-B+-tree for highly sorted data.
type Fig05aResult struct {
	K    []float64
	Tail []float64
	LIL  []float64
}

// RunFig05a executes the experiment.
func RunFig05a(p harness.Params) Fig05aResult {
	grid := []float64{0, 0.0001, 0.0005, 0.001, 0.005, 0.01, 0.03}
	if p.Quick {
		grid = []float64{0, 0.001, 0.01, 0.03}
	}
	r := Fig05aResult{K: grid}
	for _, k := range grid {
		keys := genKeys(p, k, 1.0)
		tail := newTree(p, core.ModeTail)
		ingest(tail, keys)
		r.Tail = append(r.Tail, tail.Stats().FastInsertFraction())
		lil := newTree(p, core.ModeLIL)
		ingest(lil, keys)
		r.LIL = append(r.LIL, lil.Stats().FastInsertFraction())
	}
	return r
}

// Tables renders Fig 5a.
func (r Fig05aResult) Tables() []harness.Table {
	t := harness.Table{
		ID:      "fig05a",
		Title:   "Figure 5a: fast-inserts, tail-B+-tree vs lil-B+-tree",
		Headers: []string{"K (% out-of-order)", "tail fast %", "lil fast %"},
	}
	for i, k := range r.K {
		t.Rows = append(t.Rows, []string{pctLabel(k), harness.Pct(r.Tail[i]), harness.Pct(r.LIL[i])})
	}
	return []harness.Table{t}
}

// Fig05bResult reproduces Figure 5b: the analytic model of Eq. (1). The
// expected fast-insert fraction of lil is (1-k)^2 — two consecutive in-order
// entries — while an ideal sortedness-aware index achieves 1-k, and the gap
// between them is the headroom QuIT targets. The simulated tail curve is
// measured on small N to keep the figure cheap.
type Fig05bResult struct {
	K     []float64
	Tail  []float64 // measured
	LIL   []float64 // (1-k)^2 model
	Ideal []float64 // 1-k
}

// RunFig05b executes the model + simulation.
func RunFig05b(p harness.Params) Fig05bResult {
	grid := []float64{0, 0.10, 0.20, 0.40, 0.60, 0.80, 1.0}
	if p.Quick {
		grid = []float64{0, 0.20, 0.60, 1.0}
	}
	r := Fig05bResult{K: grid}
	sim := p
	if sim.N > 200_000 {
		sim.N = 200_000
	}
	for _, k := range grid {
		tr := newTree(sim, core.ModeTail)
		ingest(tr, genKeys(sim, k, 1.0))
		r.Tail = append(r.Tail, tr.Stats().FastInsertFraction())
		r.LIL = append(r.LIL, (1-k)*(1-k))
		r.Ideal = append(r.Ideal, 1-k)
	}
	return r
}

// Tables renders Fig 5b.
func (r Fig05bResult) Tables() []harness.Table {
	t := harness.Table{
		ID:      "fig05b",
		Title:   "Figure 5b: expected fast-inserts model (Eq. 1)",
		Note:    "lil model = (1-k)^2; ideal = 1-k; tail measured on a scaled run",
		Headers: []string{"K", "tail (sim)", "lil model", "ideal"},
	}
	for i, k := range r.K {
		t.Rows = append(t.Rows, []string{
			pctLabel(k), harness.Pct(r.Tail[i]), harness.Pct(r.LIL[i]), harness.Pct(r.Ideal[i]),
		})
	}
	return []harness.Table{t}
}

func init() {
	harness.Register(harness.Experiment{
		ID:    "fig05a",
		Paper: "Figure 5a",
		Title: "lil-B+-tree vs tail-B+-tree fast-inserts",
		Run: func(p harness.Params) []harness.Table {
			return RunFig05a(p).Tables()
		},
	})
	harness.Register(harness.Experiment{
		ID:    "fig05b",
		Paper: "Figure 5b",
		Title: "expected fast-insert model and the ideal headroom",
		Run: func(p harness.Params) []harness.Table {
			return RunFig05b(p).Tables()
		},
	})
}
