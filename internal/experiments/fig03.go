package experiments

import (
	"github.com/quittree/quit/internal/core"
	"github.com/quittree/quit/internal/harness"
)

// Fig03Result reproduces Figure 3: the fraction of fast-inserts achieved by
// the tail-leaf optimization as the fraction of out-of-order entries grows.
// The paper's finding: the tail fast path collapses below 1% fast-inserts
// once K reaches 1%.
type Fig03Result struct {
	K    []float64
	Fast []float64 // fraction of fast inserts per K
}

// RunFig03 executes the experiment (paper: 5M integers; scaled to p.N).
func RunFig03(p harness.Params) Fig03Result {
	grid := []float64{0, 0.0001, 0.0005, 0.001, 0.005, 0.01, 0.03, 0.05, 0.10}
	if p.Quick {
		grid = []float64{0, 0.001, 0.01, 0.10}
	}
	r := Fig03Result{K: grid}
	for _, k := range grid {
		tr := newTree(p, core.ModeTail)
		ingest(tr, genKeys(p, k, 1.0))
		r.Fast = append(r.Fast, tr.Stats().FastInsertFraction())
	}
	return r
}

// Tables renders the result.
func (r Fig03Result) Tables() []harness.Table {
	t := harness.Table{
		ID:      "fig03",
		Title:   "Figure 3: tail-B+-tree fast-inserts vs out-of-order entries",
		Note:    "uniformly placed out-of-order entries (L = 100%)",
		Headers: []string{"K (% out-of-order)", "% fast-inserts"},
	}
	for i, k := range r.K {
		t.Rows = append(t.Rows, []string{pctLabel(k), harness.Pct(r.Fast[i])})
	}
	return []harness.Table{t}
}

func init() {
	harness.Register(harness.Experiment{
		ID:    "fig03",
		Paper: "Figure 3",
		Title: "tail-leaf optimization collapses beyond extreme sortedness",
		Run: func(p harness.Params) []harness.Table {
			return RunFig03(p).Tables()
		},
	})
}
