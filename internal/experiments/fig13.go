package experiments

import (
	"math/rand"
	"sync"
	"time"

	"github.com/quittree/quit/internal/bods"
	"github.com/quittree/quit/internal/core"
	"github.com/quittree/quit/internal/harness"
)

// Fig13Result reproduces Figure 13: insert and lookup throughput of QuIT vs
// the classical B+-tree under concurrent execution at three sortedness
// levels. Paper shape: inserts contend (near-sorted streams hit the same
// leaf) but QuIT's shorter critical section keeps it 1.5-2x ahead; lookups
// scale for both since the read paths are identical.
type Fig13Result struct {
	Threads []int
	Levels  []string
	K       []float64
	// InsertOps[design][level][ti] = inserts/sec; LookupOps likewise.
	InsertOps map[string]map[string][]float64
	LookupOps map[string]map[string][]float64
}

// RunFig13 executes the concurrency ladder.
func RunFig13(p harness.Params) Fig13Result {
	r := Fig13Result{
		Threads:   p.Threads,
		Levels:    []string{"fully sorted", "near-sorted", "less sorted"},
		K:         []float64{0, 0.05, 0.25},
		InsertOps: map[string]map[string][]float64{},
		LookupOps: map[string]map[string][]float64{},
	}
	designs := map[string]core.Mode{"QuIT": core.ModeQuIT, "B+-tree": core.ModeNone}
	for d := range designs {
		r.InsertOps[d] = map[string][]float64{}
		r.LookupOps[d] = map[string][]float64{}
	}

	for li, level := range r.Levels {
		keys := bods.Generate(bods.Spec{N: p.N, K: r.K[li], L: 1, Seed: p.Seed})
		for design, mode := range designs {
			for _, threads := range r.Threads {
				cfg := treeConfig(p, mode)
				cfg.Synchronized = true
				tr := core.New[int64, int64](cfg)

				// Concurrent ingestion: thread t inserts the stream's
				// positions congruent to t mod threads, preserving each
				// thread's view of the stream's sortedness while all
				// threads target the same in-order frontier (the paper's
				// contended scenario).
				start := time.Now()
				var wg sync.WaitGroup
				for t := 0; t < threads; t++ {
					wg.Add(1)
					go func(t int) {
						defer wg.Done()
						for i := t; i < len(keys); i += threads {
							tr.Put(keys[i], keys[i])
						}
					}(t)
				}
				wg.Wait()
				insElapsed := time.Since(start).Seconds()
				r.InsertOps[design][level] = append(r.InsertOps[design][level],
					float64(len(keys))/insElapsed)

				// Concurrent lookups.
				lookupsPerThread := p.Lookups / threads
				if lookupsPerThread < 1 {
					lookupsPerThread = 1
				}
				start = time.Now()
				for t := 0; t < threads; t++ {
					wg.Add(1)
					go func(t int) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(p.Seed + int64(t)))
						for i := 0; i < lookupsPerThread; i++ {
							tr.Get(int64(rng.Intn(p.N)))
						}
					}(t)
				}
				wg.Wait()
				lookElapsed := time.Since(start).Seconds()
				r.LookupOps[design][level] = append(r.LookupOps[design][level],
					float64(lookupsPerThread*threads)/lookElapsed)
			}
		}
	}
	return r
}

// Tables renders throughput ladders.
func (r Fig13Result) Tables() []harness.Table {
	mk := func(id, title string, data map[string]map[string][]float64) harness.Table {
		t := harness.Table{
			ID:      id,
			Title:   title,
			Note:    "throughput in M ops/sec",
			Headers: []string{"design", "sortedness"},
		}
		for _, th := range r.Threads {
			t.Headers = append(t.Headers, harness.Fmt(float64(th))+" thr")
		}
		for _, d := range []string{"QuIT", "B+-tree"} {
			for _, level := range r.Levels {
				row := []string{d, level}
				for ti := range r.Threads {
					row = append(row, harness.Fmt(data[d][level][ti]/1e6))
				}
				t.Rows = append(t.Rows, row)
			}
		}
		return t
	}
	return []harness.Table{
		mk("fig13a", "Figure 13a: concurrent insert throughput", r.InsertOps),
		mk("fig13b", "Figure 13b: concurrent lookup throughput", r.LookupOps),
	}
}

func init() {
	harness.Register(harness.Experiment{
		ID:    "fig13",
		Paper: "Figure 13",
		Title: "concurrent execution scaling",
		Run: func(p harness.Params) []harness.Table {
			return RunFig13(p).Tables()
		},
	})
}
