package experiments

import (
	"github.com/quittree/quit/internal/core"
	"github.com/quittree/quit/internal/harness"
	"github.com/quittree/quit/internal/stock"
	"github.com/quittree/quit/internal/sware"
)

// Fig15Result reproduces Figure 15: ingestion speedup on real-world-like
// stock price streams (NIFTY and SPXUSD stand-ins; see DESIGN.md §3 for the
// substitution), normalized to the classical B+-tree. Paper shape: every
// sortedness-aware design beats the B+-tree; tail gains the least; SWARE,
// lil and QuIT are clustered on top.
type Fig15Result struct {
	Instruments []string
	Designs     []string
	// Speedup[instrument][design]
	Speedup map[string]map[string]float64
	// FastFrac[instrument][design] is deterministic (workload-defined), so
	// tests assert on it where timing would be noise-bound.
	FastFrac map[string]map[string]float64
}

// RunFig15 executes the experiment. Series lengths scale with p.N (capped
// at the instruments' native sizes of 1.4M and 2.2M entries).
func RunFig15(p harness.Params) Fig15Result {
	series := []stock.Series{stock.NIFTYLike(), stock.SPXUSDLike()}
	for i := range series {
		if p.N < series[i].Minutes {
			series[i].Minutes = p.N
		}
	}
	r := Fig15Result{
		Designs:  []string{"tail-B+-tree", "SWARE", "lil-B+-tree", "QuIT"},
		Speedup:  map[string]map[string]float64{},
		FastFrac: map[string]map[string]float64{},
	}
	reps := 1
	if p.Quick {
		reps = 2 // short quick-scale runs are noise-prone; keep the best
	}
	for _, s := range series {
		r.Instruments = append(r.Instruments, s.Name)
		keys := s.Keys()
		sp := p
		sp.N = len(keys)

		frac := map[string]float64{}
		measure := func(name string, mode core.Mode) float64 {
			return bestLookups(reps, func() float64 {
				tr := newTreeN(sp, mode)
				ns := ingest(tr, keys)
				frac[name] = tr.Stats().FastInsertFraction()
				return ns
			})
		}
		base := measure("B+-tree", core.ModeNone)
		row := map[string]float64{}
		row["tail-B+-tree"] = base / measure("tail-B+-tree", core.ModeTail)
		row["lil-B+-tree"] = base / measure("lil-B+-tree", core.ModeLIL)
		row["QuIT"] = base / measure("QuIT", core.ModeQuIT)
		r.FastFrac[s.Name] = frac

		row["SWARE"] = base / bestLookups(reps, func() float64 {
			sw := sware.New(sware.Config{
				BufferEntries: sp.N / 100,
				Tree:          treeConfig(sp, core.ModeNone),
			})
			return ingestSware(sw, keys)
		})
		r.Speedup[s.Name] = row
	}
	return r
}

// newTreeN builds a tree (helper kept separate so fig15 reads clearly).
func newTreeN(p harness.Params, mode core.Mode) *core.Tree[int64, int64] {
	return newTree(p, mode)
}

// Tables renders the result.
func (r Fig15Result) Tables() []harness.Table {
	t := harness.Table{
		ID:      "fig15",
		Title:   "Figure 15: ingestion speedup on stock price streams",
		Note:    "synthetic NIFTY/SPXUSD stand-ins (DESIGN.md §3); speedup vs classical B+-tree",
		Headers: append([]string{"instrument"}, r.Designs...),
	}
	for _, ins := range r.Instruments {
		row := []string{ins}
		for _, d := range r.Designs {
			row = append(row, harness.Speedup(r.Speedup[ins][d]))
		}
		t.Rows = append(t.Rows, row)
	}
	return []harness.Table{t}
}

func init() {
	harness.Register(harness.Experiment{
		ID:    "fig15",
		Paper: "Figure 15",
		Title: "real-world-like data ingestion",
		Run: func(p harness.Params) []harness.Table {
			return RunFig15(p).Tables()
		},
	})
}
