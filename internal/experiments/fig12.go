package experiments

import (
	"github.com/quittree/quit/internal/bods"
	"github.com/quittree/quit/internal/core"
	"github.com/quittree/quit/internal/harness"
)

// Fig12Result reproduces Figure 12: the stress test that alternates
// near-sorted (K=10%) and fully scrambled (K=100%) segments and tracks the
// cumulative number of fast-inserts per design at every segment boundary.
// Paper shape: tail flatlines immediately; pole-B+-tree flatlines after the
// first scrambled segment (stale trap); lil and QuIT keep climbing on the
// near-sorted segments, with QuIT ahead thanks to its reset strategy.
type Fig12Result struct {
	SegmentEnds []int // cumulative insert counts at segment boundaries
	Designs     []string
	// CumFast[design][s] = cumulative fast-inserts after segment s.
	CumFast map[string][]int64
}

// RunFig12 executes the stress test: 5 segments of p.N/5 entries with K
// alternating 10%, 100%, 10%, 100%, 10% (L=100%).
func RunFig12(p harness.Params) Fig12Result {
	segN := p.N / 5
	specs := []bods.Segment{
		{N: segN, K: 0.10, L: 1},
		{N: segN, K: 1.00, L: 1},
		{N: segN, K: 0.10, L: 1},
		{N: segN, K: 1.00, L: 1},
		{N: segN, K: 0.10, L: 1},
	}
	keys := bods.GenerateSegments(specs, p.Seed)

	r := Fig12Result{
		Designs: []string{"tail-B+-tree", "lil-B+-tree", "pole-B+-tree", "QuIT"},
		CumFast: map[string][]int64{},
	}
	modes := map[string]core.Mode{
		"tail-B+-tree": core.ModeTail,
		"lil-B+-tree":  core.ModeLIL,
		"pole-B+-tree": core.ModePOLE,
		"QuIT":         core.ModeQuIT,
	}
	for s := 1; s <= len(specs); s++ {
		r.SegmentEnds = append(r.SegmentEnds, s*segN)
	}
	for _, d := range r.Designs {
		tr := newTree(p, modes[d])
		pos := 0
		for s := range specs {
			end := (s + 1) * segN
			for ; pos < end; pos++ {
				tr.Put(keys[pos], keys[pos])
			}
			r.CumFast[d] = append(r.CumFast[d], tr.Stats().FastInserts)
		}
	}
	return r
}

// Tables renders the cumulative series.
func (r Fig12Result) Tables() []harness.Table {
	t := harness.Table{
		ID:      "fig12",
		Title:   "Figure 12: cumulative fast-inserts under alternating sortedness",
		Note:    "segments of N/5 inserts with K = 10%, 100%, 10%, 100%, 10% (L=100%)",
		Headers: []string{"inserts"},
	}
	t.Headers = append(t.Headers, r.Designs...)
	for si, end := range r.SegmentEnds {
		row := []string{harness.Fmt(float64(end)/1e6) + "M"}
		for _, d := range r.Designs {
			row = append(row, harness.Fmt(float64(r.CumFast[d][si])/1e6)+"M")
		}
		t.Rows = append(t.Rows, row)
	}
	return []harness.Table{t}
}

func init() {
	harness.Register(harness.Experiment{
		ID:    "fig12",
		Paper: "Figure 12",
		Title: "stress testing the fast path",
		Run: func(p harness.Params) []harness.Table {
			return RunFig12(p).Tables()
		},
	})
}
