//go:build race

package experiments

// raceEnabled reports that the race detector is active: timing-based shape
// assertions are skipped because instrumentation overhead flattens the
// latency differences they check.
const raceEnabled = true
