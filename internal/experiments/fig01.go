package experiments

import (
	"github.com/quittree/quit/internal/core"
	"github.com/quittree/quit/internal/harness"
)

// Fig01aResult reproduces Figure 1a: average insert latency and point
// lookup latency for tail-B+-tree, SWARE, and QuIT at three sortedness
// levels (fully sorted, near-sorted, less sorted).
type Fig01aResult struct {
	Levels  []string
	K       []float64
	Insert  map[string][]float64 // design -> ns/op per level
	Lookup  map[string][]float64
	Designs []string
}

// RunFig01a executes the experiment.
func RunFig01a(p harness.Params) Fig01aResult {
	r := Fig01aResult{
		Levels:  []string{"fully", "near", "less"},
		K:       []float64{0, 0.05, 0.25},
		Insert:  map[string][]float64{},
		Lookup:  map[string][]float64{},
		Designs: []string{"tail-B+-tree", "SWARE", "QuIT"},
	}
	targets := lookupTargets(p, p.Lookups)
	for li := range r.Levels {
		keys := genKeys(p, r.K[li], 1.0)

		tail := newTree(p, core.ModeTail)
		r.Insert["tail-B+-tree"] = append(r.Insert["tail-B+-tree"], ingest(tail, keys))
		r.Lookup["tail-B+-tree"] = append(r.Lookup["tail-B+-tree"], bestLookups(3, func() float64 { return lookups(tail, targets) }))

		sw := newSware(p)
		r.Insert["SWARE"] = append(r.Insert["SWARE"], ingestSware(sw, keys))
		r.Lookup["SWARE"] = append(r.Lookup["SWARE"], bestLookups(3, func() float64 { return lookupsSware(sw, targets) }))

		quit := newTree(p, core.ModeQuIT)
		r.Insert["QuIT"] = append(r.Insert["QuIT"], ingest(quit, keys))
		r.Lookup["QuIT"] = append(r.Lookup["QuIT"], bestLookups(3, func() float64 { return lookups(quit, targets) }))
	}
	return r
}

// Tables renders the result.
func (r Fig01aResult) Tables() []harness.Table {
	ins := harness.Table{
		ID:      "fig01a",
		Title:   "Figure 1a (left): avg insert latency (ns/op) vs sortedness",
		Note:    "fully = K 0%, near = K 5%, less = K 25%; L = 100%",
		Headers: append([]string{"design"}, r.Levels...),
	}
	look := harness.Table{
		ID:      "fig01a",
		Title:   "Figure 1a (right): avg point-lookup latency (ns/op)",
		Headers: append([]string{"design"}, r.Levels...),
	}
	for _, d := range r.Designs {
		insRow := []string{d}
		lookRow := []string{d}
		for i := range r.Levels {
			insRow = append(insRow, harness.Fmt(r.Insert[d][i]))
			lookRow = append(lookRow, harness.Fmt(r.Lookup[d][i]))
		}
		ins.Rows = append(ins.Rows, insRow)
		look.Rows = append(look.Rows, lookRow)
	}
	return []harness.Table{ins, look}
}

func init() {
	harness.Register(harness.Experiment{
		ID:    "fig01a",
		Paper: "Figure 1a",
		Title: "sortedness-awareness teaser: insert and lookup latency",
		Run: func(p harness.Params) []harness.Table {
			return RunFig01a(p).Tables()
		},
	})
}
