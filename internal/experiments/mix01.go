package experiments

import (
	"math/rand"
	"runtime"
	"time"

	"github.com/quittree/quit/internal/core"
	"github.com/quittree/quit/internal/harness"
)

// Mix01Result extends the paper's §2 argument into a measurement: SWARE's
// buffering pays off for write-heavy workloads but "becomes prohibitive as
// the fraction of reads in the workload increases", while QuIT's read path
// is free of fast-path overhead. This experiment interleaves near-sorted
// inserts (K=5%) with uniform point lookups at varying read fractions and
// reports total operation throughput.
type Mix01Result struct {
	ReadFraction []float64
	// OpsPerSec[design][i]
	OpsPerSec map[string][]float64
}

// RunMix01 executes the sweep.
func RunMix01(p harness.Params) Mix01Result {
	fracs := []float64{0, 0.25, 0.50, 0.75, 0.90}
	if p.Quick {
		fracs = []float64{0, 0.50, 0.90}
	}
	r := Mix01Result{
		ReadFraction: fracs,
		OpsPerSec:    map[string][]float64{},
	}
	keys := genKeys(p, 0.05, 1.0)

	for _, frac := range fracs {
		// Operation schedule: deterministic interleave of the insert
		// stream with lookups against already-inserted keys. Every design
		// gets an identical schedule (fresh rng from the same seed).
		seed := p.Seed + int64(frac*100)

		runTree := func(mode core.Mode) float64 {
			rng := rand.New(rand.NewSource(seed))
			tr := newTree(p, mode)
			inserted := 0
			ops := 0
			runtime.GC()
			start := time.Now()
			for inserted < len(keys) {
				if inserted > 0 && rng.Float64() < frac {
					tr.Get(keys[rng.Intn(inserted)])
				} else {
					k := keys[inserted]
					tr.Put(k, k)
					inserted++
				}
				ops++
			}
			return float64(ops) / time.Since(start).Seconds()
		}
		runSware := func() float64 {
			rng := rand.New(rand.NewSource(seed))
			ix := newSware(p)
			inserted := 0
			ops := 0
			runtime.GC()
			start := time.Now()
			for inserted < len(keys) {
				if inserted > 0 && rng.Float64() < frac {
					ix.Get(keys[rng.Intn(inserted)])
				} else {
					k := keys[inserted]
					ix.Put(k, k)
					inserted++
				}
				ops++
			}
			return float64(ops) / time.Since(start).Seconds()
		}

		r.OpsPerSec["B+-tree"] = append(r.OpsPerSec["B+-tree"], runTree(core.ModeNone))
		r.OpsPerSec["SWARE"] = append(r.OpsPerSec["SWARE"], runSware())
		r.OpsPerSec["QuIT"] = append(r.OpsPerSec["QuIT"], runTree(core.ModeQuIT))
	}
	return r
}

// Tables renders the result.
func (r Mix01Result) Tables() []harness.Table {
	t := harness.Table{
		ID:      "mix01",
		Title:   "Mixed workload (beyond the paper): throughput vs read fraction",
		Note:    "near-sorted inserts (K=5%) interleaved with point lookups; M ops/sec",
		Headers: []string{"read fraction", "B+-tree", "SWARE", "QuIT"},
	}
	for i, f := range r.ReadFraction {
		t.Rows = append(t.Rows, []string{
			harness.Pct(f),
			harness.Fmt(r.OpsPerSec["B+-tree"][i] / 1e6),
			harness.Fmt(r.OpsPerSec["SWARE"][i] / 1e6),
			harness.Fmt(r.OpsPerSec["QuIT"][i] / 1e6),
		})
	}
	return []harness.Table{t}
}

func init() {
	harness.Register(harness.Experiment{
		ID: "mix01", Paper: "(extension)", Title: "read/write mix throughput",
		Run: func(p harness.Params) []harness.Table { return RunMix01(p).Tables() },
	})
}
