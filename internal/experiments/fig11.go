package experiments

import (
	"github.com/quittree/quit/internal/core"
	"github.com/quittree/quit/internal/harness"
)

// Fig11Result reproduces Figure 11: K x L heatmaps of the fast-insert
// fraction and the average leaf occupancy for the lil-B+-tree and QuIT.
// Paper findings: fast-inserts are essentially insensitive to L (panel
// a/b), lil occupancy sits at ~50% for sorted data rising with K (panel c),
// QuIT occupancy starts at 100% and declines toward parity (panel d).
type Fig11Result struct {
	K []float64
	L []float64
	// Indexed [li][ki].
	FastLIL  [][]float64
	FastQuIT [][]float64
	OccLIL   [][]float64
	OccQuIT  [][]float64
}

// RunFig11 executes the sweep.
func RunFig11(p harness.Params) Fig11Result {
	ks := []float64{0, 0.01, 0.03, 0.05, 0.25, 0.50}
	ls := []float64{0.01, 0.03, 0.05, 0.25, 0.50}
	if p.Quick {
		ks = []float64{0, 0.05, 0.50}
		ls = []float64{0.01, 0.50}
	}
	r := Fig11Result{K: ks, L: ls}
	for _, l := range ls {
		var fl, fq, ol, oq []float64
		for _, k := range ks {
			keys := genKeys(p, k, l)
			lil := newTree(p, core.ModeLIL)
			ingest(lil, keys)
			quit := newTree(p, core.ModeQuIT)
			ingest(quit, keys)
			fl = append(fl, lil.Stats().FastInsertFraction())
			fq = append(fq, quit.Stats().FastInsertFraction())
			ol = append(ol, lil.AvgLeafOccupancy())
			oq = append(oq, quit.AvgLeafOccupancy())
		}
		r.FastLIL = append(r.FastLIL, fl)
		r.FastQuIT = append(r.FastQuIT, fq)
		r.OccLIL = append(r.OccLIL, ol)
		r.OccQuIT = append(r.OccQuIT, oq)
	}
	return r
}

func (r Fig11Result) heat(id, title string, grid [][]float64) harness.Table {
	t := harness.Table{
		ID:      id,
		Title:   title,
		Headers: []string{"L \\ K"},
	}
	for _, k := range r.K {
		t.Headers = append(t.Headers, pctLabel(k))
	}
	for li, l := range r.L {
		row := []string{pctLabel(l)}
		for ki := range r.K {
			row = append(row, harness.Pct(grid[li][ki]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Tables renders the four heatmaps.
func (r Fig11Result) Tables() []harness.Table {
	return []harness.Table{
		r.heat("fig11a", "Figure 11a: lil-B+-tree fast-inserts (K x L)", r.FastLIL),
		r.heat("fig11b", "Figure 11b: QuIT fast-inserts (K x L)", r.FastQuIT),
		r.heat("fig11c", "Figure 11c: lil-B+-tree avg leaf occupancy (K x L)", r.OccLIL),
		r.heat("fig11d", "Figure 11d: QuIT avg leaf occupancy (K x L)", r.OccQuIT),
	}
}

func init() {
	harness.Register(harness.Experiment{
		ID:    "fig11",
		Paper: "Figure 11",
		Title: "K x L sensitivity heatmaps",
		Run: func(p harness.Params) []harness.Table {
			return RunFig11(p).Tables()
		},
	})
}
