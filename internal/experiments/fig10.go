package experiments

import (
	"math/rand"

	"github.com/quittree/quit/internal/core"
	"github.com/quittree/quit/internal/harness"
)

// Fig10Result reproduces Figure 10: (a) average leaf occupancy, (b)
// normalized point-lookup latency, and (c) the factor by which QuIT
// accesses fewer leaf nodes than the B+-tree during range lookups at three
// selectivities. Paper shape: QuIT occupancy 100% at K=0 trending to parity
// at K=100%; point lookups at parity (QuIT marginally faster); range scans
// touch up to 2x fewer leaves at high sortedness.
type Fig10Result struct {
	K []float64

	OccBTree []float64
	OccQuIT  []float64

	LookupBTree []float64 // ns/op
	LookupQuIT  []float64
	NormLookup  []float64 // QuIT / B+-tree

	Selectivities []float64             // fraction of key domain per range query
	FewerAccesses map[float64][]float64 // selectivity -> per-K ratio (B+-tree leaves / QuIT leaves)
}

// RunFig10 executes all three panels on shared trees per K.
func RunFig10(p harness.Params) Fig10Result {
	grid := kGridFor(p)
	r := Fig10Result{
		K:             grid,
		Selectivities: []float64{0.001, 0.01, 0.10},
		FewerAccesses: map[float64][]float64{},
	}
	targets := lookupTargets(p, p.Lookups)
	rng := rand.New(rand.NewSource(p.Seed + 7))

	for _, k := range grid {
		keys := genKeys(p, k, 1.0)

		btree := newTree(p, core.ModeNone)
		ingest(btree, keys)
		quit := newTree(p, core.ModeQuIT)
		ingest(quit, keys)

		r.OccBTree = append(r.OccBTree, btree.AvgLeafOccupancy())
		r.OccQuIT = append(r.OccQuIT, quit.AvgLeafOccupancy())

		lb := bestLookups(3, func() float64 { return lookups(btree, targets) })
		lq := bestLookups(3, func() float64 { return lookups(quit, targets) })
		r.LookupBTree = append(r.LookupBTree, lb)
		r.LookupQuIT = append(r.LookupQuIT, lq)
		r.NormLookup = append(r.NormLookup, lq/lb)

		// Range lookups: identical random ranges on both trees; compare
		// leaf accesses (RangeLeafReads).
		for _, sel := range r.Selectivities {
			width := int64(sel * float64(p.N))
			if width < 1 {
				width = 1
			}
			starts := make([]int64, p.RangeLookups)
			for i := range starts {
				starts[i] = int64(rng.Intn(p.N))
			}
			count := func(tr *core.Tree[int64, int64]) int64 {
				before := tr.Stats().RangeLeafReads
				for _, s := range starts {
					tr.Range(s, s+width, func(int64, int64) bool { return true })
				}
				return tr.Stats().RangeLeafReads - before
			}
			ab := count(btree)
			aq := count(quit)
			ratio := float64(ab) / float64(aq)
			r.FewerAccesses[sel] = append(r.FewerAccesses[sel], ratio)
		}
	}
	return r
}

// Tables renders the three panels.
func (r Fig10Result) Tables() []harness.Table {
	a := harness.Table{
		ID:      "fig10a",
		Title:   "Figure 10a: average leaf occupancy (%)",
		Headers: []string{"K", "B+-tree", "QuIT"},
	}
	b := harness.Table{
		ID:      "fig10b",
		Title:   "Figure 10b: point-lookup latency, QuIT normalized to B+-tree",
		Headers: []string{"K", "B+-tree ns", "QuIT ns", "normalized"},
	}
	c := harness.Table{
		ID:      "fig10c",
		Title:   "Figure 10c: fewer leaf accesses in range lookups (B+-tree / QuIT)",
		Headers: []string{"K", "sel 0.1%", "sel 1%", "sel 10%"},
	}
	for i, k := range r.K {
		a.Rows = append(a.Rows, []string{pctLabel(k), harness.Pct(r.OccBTree[i]), harness.Pct(r.OccQuIT[i])})
		b.Rows = append(b.Rows, []string{
			pctLabel(k), harness.Fmt(r.LookupBTree[i]), harness.Fmt(r.LookupQuIT[i]),
			harness.Fmt(r.NormLookup[i]),
		})
		row := []string{pctLabel(k)}
		for _, sel := range r.Selectivities {
			row = append(row, harness.Speedup(r.FewerAccesses[sel][i]))
		}
		c.Rows = append(c.Rows, row)
	}
	return []harness.Table{a, b, c}
}

func init() {
	harness.Register(harness.Experiment{
		ID:    "fig10",
		Paper: "Figure 10",
		Title: "occupancy, point lookups and range lookups",
		Run: func(p harness.Params) []harness.Table {
			return RunFig10(p).Tables()
		},
	})
}
