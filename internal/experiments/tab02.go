package experiments

import (
	"github.com/quittree/quit/internal/core"
	"github.com/quittree/quit/internal/harness"
)

// Tab02Result reproduces Table 2: the memory-footprint reduction of QuIT
// over the B+-tree baselines across sortedness. tail and lil are omitted in
// the paper because they split identically to the classical B+-tree. Paper
// shape: 1.96x at K=0% shrinking monotonically to 1x at K=100%.
type Tab02Result struct {
	K         []float64
	Reduction []float64 // B+-tree footprint / QuIT footprint
}

// RunTab02 executes the experiment.
func RunTab02(p harness.Params) Tab02Result {
	grid := kGridFor(p)
	r := Tab02Result{K: grid}
	for _, k := range grid {
		keys := genKeys(p, k, 1.0)
		btree := newTree(p, core.ModeNone)
		ingest(btree, keys)
		quit := newTree(p, core.ModeQuIT)
		ingest(quit, keys)
		r.Reduction = append(r.Reduction,
			float64(btree.MemoryFootprint())/float64(quit.MemoryFootprint()))
	}
	return r
}

// Tables renders the result.
func (r Tab02Result) Tables() []harness.Table {
	t := harness.Table{
		ID:      "tab02",
		Title:   "Table 2: space reduction of QuIT over the B+-tree baselines",
		Note:    "tail/lil-B+-tree footprints equal the classical B+-tree (same 50% splits)",
		Headers: []string{"K", "reduction"},
	}
	for i, k := range r.K {
		t.Rows = append(t.Rows, []string{pctLabel(k), harness.Speedup(r.Reduction[i])})
	}
	return []harness.Table{t}
}

func init() {
	harness.Register(harness.Experiment{
		ID:    "tab02",
		Paper: "Table 2",
		Title: "memory footprint reduction",
		Run: func(p harness.Params) []harness.Table {
			return RunTab02(p).Tables()
		},
	})
}
