package experiments

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"github.com/quittree/quit/internal/harness"
)

// Shape tests: run every experiment at reduced scale and assert the
// *relative* claims of the paper hold (who wins, roughly by how much).
// Absolute latencies are host-dependent and not asserted.

func quickParams() harness.Params {
	p := harness.DefaultParams()
	p.N = 150_000
	p.Lookups = 20_000
	p.RangeLookups = 20
	p.LeafCapacity = 128
	p.InternalFanout = 64
	p.Threads = []int{1, 2}
	p.Quick = true
	return p
}

func TestFig01aShape(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("timing experiment (skipped under -short and -race)")
	}
	r := RunFig01a(quickParams())
	// Near-sorted ingestion: QuIT beats tail (which has gone stale).
	if r.Insert["QuIT"][1] >= r.Insert["tail-B+-tree"][1] {
		t.Errorf("near-sorted: QuIT %.0fns not faster than tail %.0fns",
			r.Insert["QuIT"][1], r.Insert["tail-B+-tree"][1])
	}
	// Lookups: QuIT is at worst marginally slower than tail (same read
	// path); SWARE pays the buffer probe.
	if r.Lookup["QuIT"][1] > r.Lookup["tail-B+-tree"][1]*1.3 {
		t.Errorf("QuIT lookup %.0fns way above tail %.0fns",
			r.Lookup["QuIT"][1], r.Lookup["tail-B+-tree"][1])
	}
	for _, tab := range r.Tables() {
		if len(tab.Rows) != 3 {
			t.Fatalf("table %s has %d rows", tab.Title, len(tab.Rows))
		}
	}
}

func TestFig03Shape(t *testing.T) {
	r := RunFig03(quickParams())
	if r.Fast[0] < 0.999 {
		t.Errorf("fully sorted tail fast fraction = %.3f, want ~1", r.Fast[0])
	}
	last := r.Fast[len(r.Fast)-1] // K = 10%
	if last > 0.05 {
		t.Errorf("K=10%% tail fast fraction = %.3f, want near 0", last)
	}
	// Monotone non-increasing (allowing small noise).
	for i := 1; i < len(r.Fast); i++ {
		if r.Fast[i] > r.Fast[i-1]+0.02 {
			t.Errorf("tail fast fraction rose with K: %v", r.Fast)
		}
	}
}

func TestFig05aShape(t *testing.T) {
	r := RunFig05a(quickParams())
	// lil dominates tail once enough outliers have accumulated to poison
	// the tail leaf (at the quick test scale that takes K >= 0.5%; at paper
	// scale the collapse shows from K = 0.01%, Fig. 3).
	for i := range r.K {
		if r.K[i] >= 0.005 && r.LIL[i]+1e-9 < r.Tail[i] {
			t.Errorf("K=%v: lil %.3f below tail %.3f", r.K[i], r.LIL[i], r.Tail[i])
		}
	}
	k1 := -1
	for i, k := range r.K {
		if k == 0.01 {
			k1 = i
		}
	}
	if k1 >= 0 && (r.LIL[k1] < 0.90) {
		t.Errorf("K=1%%: lil fast fraction %.3f, want >= 0.90", r.LIL[k1])
	}
}

func TestFig05bShape(t *testing.T) {
	r := RunFig05b(quickParams())
	for i := range r.K {
		if r.Ideal[i] < r.LIL[i]-1e-9 {
			t.Errorf("model inversion at K=%v", r.K[i])
		}
		// Simulated tail is below the lil model for any unsorted stream.
		if r.K[i] > 0 && r.Tail[i] > r.LIL[i]+0.05 {
			t.Errorf("tail above lil model at K=%v: %.3f > %.3f", r.K[i], r.Tail[i], r.LIL[i])
		}
	}
}

func TestFig08Shape(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("timing experiment (skipped under -short and -race)")
	}
	r := RunFig08(quickParams())
	// Fully sorted: both tail and QuIT well above the B+-tree.
	if r.Speedup["QuIT"][0] < 1.5 || r.Speedup["tail-B+-tree"][0] < 1.5 {
		t.Errorf("fully sorted speedups too low: QuIT %.2f tail %.2f",
			r.Speedup["QuIT"][0], r.Speedup["tail-B+-tree"][0])
	}
	// K=5%: tail has collapsed toward 1x, QuIT keeps a clear margin.
	var k5 int
	for i, k := range r.K {
		if k == 0.05 {
			k5 = i
		}
	}
	if r.Speedup["tail-B+-tree"][k5] > 1.4 {
		t.Errorf("K=5%%: tail speedup %.2f, want ~1x", r.Speedup["tail-B+-tree"][k5])
	}
	if r.Speedup["QuIT"][k5] < r.Speedup["tail-B+-tree"][k5]*1.2 {
		t.Errorf("K=5%%: QuIT %.2f not clearly above tail %.2f",
			r.Speedup["QuIT"][k5], r.Speedup["tail-B+-tree"][k5])
	}
	// Fully scrambled: QuIT degrades gracefully toward B+-tree
	// performance. At quick scale the reset churn costs relatively more
	// than at the full 2M scale (where the measured ratio is 0.98-1.11,
	// EXPERIMENTS.md), so the floor here is loose.
	last := len(r.K) - 1
	if r.Speedup["QuIT"][last] < 0.55 {
		t.Errorf("K=100%%: QuIT speedup %.2f, want ~1x", r.Speedup["QuIT"][last])
	}
}

func TestFig09Shape(t *testing.T) {
	r := RunFig09(quickParams())
	for i, k := range r.K {
		quit := r.Fast["QuIT"][i]
		lil := r.Fast["lil-B+-tree"][i]
		tail := r.Fast["tail-B+-tree"][i]
		if k > 0 && tail > lil+0.02 {
			t.Errorf("K=%v: tail %.3f above lil %.3f", k, tail, lil)
		}
		// QuIT tracks or beats lil on less-sorted data (the paper's
		// headline): check at K=25%.
		if k == 0.25 && quit < lil {
			t.Errorf("K=25%%: QuIT %.3f below lil %.3f", quit, lil)
		}
		// QuIT approximates the ideal 1-k within a tolerance.
		if quit < (1-k)-0.25 {
			t.Errorf("K=%v: QuIT %.3f far from ideal %.3f", k, quit, 1-k)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("timing experiment (skipped under -short and -race)")
	}
	r := RunFig10(quickParams())
	// (a) Sorted data: B+-tree ~50%, QuIT ~100%.
	if r.OccBTree[0] > 0.6 {
		t.Errorf("B+-tree occupancy at K=0: %.2f, want ~0.5", r.OccBTree[0])
	}
	if r.OccQuIT[0] < 0.9 {
		t.Errorf("QuIT occupancy at K=0: %.2f, want ~1.0", r.OccQuIT[0])
	}
	// (b) No read penalty: the grid median of normalized lookups sits near
	// 1 (individual cells are noise-bound on loaded hosts).
	norm := append([]float64(nil), r.NormLookup...)
	sort.Float64s(norm)
	if med := norm[len(norm)/2]; med > 1.2 {
		t.Errorf("median normalized lookup %.2f, want ~1 (all: %v)", med, r.NormLookup)
	}
	// (c) Range scans touch fewer leaves at high sortedness.
	for _, sel := range r.Selectivities {
		if r.FewerAccesses[sel][0] < 1.3 {
			t.Errorf("sel %v at K=0: ratio %.2f, want >= 1.3", sel, r.FewerAccesses[sel][0])
		}
		last := len(r.K) - 1
		if r.FewerAccesses[sel][last] < 0.8 {
			t.Errorf("sel %v at K=100%%: ratio %.2f collapsed below parity", sel, r.FewerAccesses[sel][last])
		}
	}
}

func TestTab01Shape(t *testing.T) {
	r := RunTab01(harness.Params{})
	if !r.Has["QuIT"]["pole_fails"] || !r.Has["QuIT"]["pole_prev_min"] {
		t.Error("QuIT digest missing pole metadata")
	}
	if r.Has["B+-tree"]["fp_min"] {
		t.Error("classical B+-tree should have no fast-path metadata")
	}
	if r.Has["tail-B+-tree"]["fp_max"] {
		t.Error("tail fast path needs no upper bound")
	}
	if !r.Has["lil-B+-tree"]["fp_max"] || !r.Has["lil-B+-tree"]["fp_id"] {
		t.Error("lil digest incomplete")
	}
}

func TestTab02Shape(t *testing.T) {
	r := RunTab02(quickParams())
	if r.Reduction[0] < 1.5 {
		t.Errorf("K=0 space reduction %.2f, want >= 1.5 (paper: 1.96)", r.Reduction[0])
	}
	last := len(r.K) - 1
	if r.Reduction[last] < 0.85 || r.Reduction[last] > 1.2 {
		t.Errorf("K=100%% space reduction %.2f, want ~1", r.Reduction[last])
	}
	// Monotone non-increasing trend (tolerate noise).
	for i := 1; i < len(r.Reduction); i++ {
		if r.Reduction[i] > r.Reduction[i-1]+0.15 {
			t.Errorf("space reduction not declining: %v", r.Reduction)
		}
	}
}

func TestFig11Shape(t *testing.T) {
	r := RunFig11(quickParams())
	// Fast-inserts are insensitive to L: columns vary little across rows.
	for ki := range r.K {
		for li := 1; li < len(r.L); li++ {
			d := r.FastQuIT[li][ki] - r.FastQuIT[0][ki]
			if d < -0.15 || d > 0.15 {
				t.Errorf("QuIT fast-inserts vary with L at K=%v: %.3f vs %.3f",
					r.K[ki], r.FastQuIT[li][ki], r.FastQuIT[0][ki])
			}
		}
	}
	// lil occupancy ~50% at K=0; QuIT ~100% at K=0.
	if r.OccLIL[0][0] > 0.6 || r.OccQuIT[0][0] < 0.9 {
		t.Errorf("occupancy at K=0: lil %.2f QuIT %.2f", r.OccLIL[0][0], r.OccQuIT[0][0])
	}
}

func TestTab03Shape(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("timing experiment (skipped under -short and -race)")
	}
	r := RunTab03(quickParams())
	for _, level := range r.Levels {
		// Fast-insert fraction is stable across sizes.
		ff := r.FastFrac[level]
		for i := 1; i < len(ff); i++ {
			if ff[i] < ff[0]-0.12 || ff[i] > ff[0]+0.12 {
				t.Errorf("%s: fast fraction unstable across sizes: %v", level, ff)
			}
		}
	}
	// Fully sorted keeps 100% fast-inserts at every size.
	for _, f := range r.FastFrac["fully sorted"] {
		if f < 0.999 {
			t.Errorf("fully sorted fast fraction %.4f", f)
		}
	}
}

func TestFig12Shape(t *testing.T) {
	r := RunFig12(quickParams())
	last := len(r.SegmentEnds) - 1
	quit := r.CumFast["QuIT"][last]
	lil := r.CumFast["lil-B+-tree"][last]
	pole := r.CumFast["pole-B+-tree"][last]
	tail := r.CumFast["tail-B+-tree"][last]
	if !(quit > pole && lil > pole && pole >= tail) {
		t.Errorf("final cumulative fast-inserts out of order: QuIT=%d lil=%d pole=%d tail=%d",
			quit, lil, pole, tail)
	}
	// The pole-B+-tree gets trapped after the first scrambled segment: its
	// fast-inserts barely grow from segment 2 onward.
	growth := r.CumFast["pole-B+-tree"][last] - r.CumFast["pole-B+-tree"][1]
	segN := int64(r.SegmentEnds[0])
	if growth > segN/2 {
		t.Errorf("pole-B+-tree escaped its stale trap: grew %d after scrambled segment", growth)
	}
	// QuIT recovers on every near-sorted segment: segment 3 and 5 add
	// substantially more fast-inserts than the scrambled segments.
	s3 := r.CumFast["QuIT"][2] - r.CumFast["QuIT"][1]
	s2 := r.CumFast["QuIT"][1] - r.CumFast["QuIT"][0]
	if s3 < s2*2 {
		t.Errorf("QuIT did not recover on near-sorted segment: s2=%d s3=%d", s2, s3)
	}
}

func TestFig13Shape(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("timing experiment (skipped under -short and -race)")
	}
	p := quickParams()
	r := RunFig13(p)
	// QuIT >= B+-tree inserts on near-sorted data at every thread count.
	for ti := range r.Threads {
		q := r.InsertOps["QuIT"]["near-sorted"][ti]
		b := r.InsertOps["B+-tree"]["near-sorted"][ti]
		if q < b {
			t.Errorf("threads=%d: QuIT %.0f ops/s below B+-tree %.0f", r.Threads[ti], q, b)
		}
	}
	for _, tab := range r.Tables() {
		if len(tab.Rows) != 6 {
			t.Fatalf("fig13 table rows = %d", len(tab.Rows))
		}
	}
}

func TestFig14Shape(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("timing experiment (skipped under -short and -race)")
	}
	r := RunFig14(quickParams())
	ratios := make([]float64, 0, len(r.K))
	for i, k := range r.K {
		if k > 0 && k <= 0.10 {
			if r.InsertQuIT[i] > r.InsertSware[i] {
				t.Errorf("K=%v: QuIT insert %.0fns slower than SWARE %.0fns",
					k, r.InsertQuIT[i], r.InsertSware[i])
			}
		}
		ratios = append(ratios, r.LookupQuIT[i]/r.LookupSware[i])
	}
	// Lookups: QuIT is never meaningfully slower than SWARE. Quick-scale
	// timed windows are a few milliseconds, so scheduler hiccups inflate
	// individual cells by 2x on loaded hosts; the stable property is that
	// the best-measured cell shows parity (full-scale runs show QuIT
	// 1.04-1.25x faster on every cell, EXPERIMENTS.md).
	sort.Float64s(ratios)
	if best := ratios[0]; best > 1.15 {
		t.Errorf("best QuIT/SWARE lookup ratio %.2f, want <= 1.15 (all: %v)", best, ratios)
	}
}

func TestFig15Shape(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("timing experiment (skipped under -short and -race)")
	}
	p := quickParams()
	r := RunFig15(p)
	for _, ins := range r.Instruments {
		// The deterministic claim: the near-sortedness of price streams is
		// exploitable by lil and QuIT but not by the tail fast path.
		frac := r.FastFrac[ins]
		if frac["QuIT"] < 0.6 || frac["lil-B+-tree"] < 0.6 {
			t.Errorf("%s: fast fractions QuIT=%.2f lil=%.2f, want >= 0.6",
				ins, frac["QuIT"], frac["lil-B+-tree"])
		}
		if frac["tail-B+-tree"] > frac["QuIT"] {
			t.Errorf("%s: tail fraction %.2f above QuIT %.2f",
				ins, frac["tail-B+-tree"], frac["QuIT"])
		}
		// Timing at quick scale is noise-bound on loaded hosts; only a
		// sanity floor is asserted (EXPERIMENTS.md records full-scale runs).
		if row := r.Speedup[ins]; row["QuIT"] < 0.8 {
			t.Errorf("%s: QuIT speedup %.2f, want >= 0.8", ins, row["QuIT"])
		}
	}
}

func TestRegistryCoversAllExperiments(t *testing.T) {
	want := []string{
		"fig01a", "fig03", "fig05a", "fig05b", "fig08", "fig09", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "tab01", "tab02", "tab03",
		"abl01", "abl02", "abl03", "mix01", "dur01", "dur02", "bat01", "par01", "gap01",
		"shard01",
	}
	for _, id := range want {
		if _, ok := harness.Lookup(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if got := len(harness.All()); got != len(want) {
		t.Errorf("registry has %d experiments, want %d", got, len(want))
	}
}

func TestTablesRender(t *testing.T) {
	// Cheap structural check: the registry's non-timing tables render
	// without panicking and include headers.
	p := quickParams()
	p.N = 20_000
	for _, id := range []string{"tab01", "fig03", "fig05b"} {
		e, ok := harness.Lookup(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		var buf bytes.Buffer
		for _, tab := range e.Run(p) {
			tab.Render(&buf)
		}
		out := buf.String()
		if !strings.Contains(out, "==") || len(out) < 50 {
			t.Errorf("%s rendered suspiciously: %q", id, out[:min(len(out), 80)])
		}
	}
}

func TestBat01Shape(t *testing.T) {
	p := quickParams()
	p.N = 30_000
	r := RunBat01(p)
	if len(r.Level) != 16 { // 4 sortedness levels x (per-key + 3 batch sizes)
		t.Fatalf("bat01 produced %d rows, want 16", len(r.Level))
	}
	for i := range r.Level {
		if r.OpsPerSec[i] <= 0 {
			t.Errorf("row %d (%s/%s): non-positive throughput", i, r.Level[i], r.Method[i])
		}
		// On sorted input, batched runs should overwhelmingly resolve
		// through the fast-path metadata.
		if r.Level[i] == "sorted (K=0%)" && r.Method[i] == "batch=256" && r.FastRunPct[i] < 50 {
			t.Errorf("sorted batch=256: only %.1f%% fast runs", r.FastRunPct[i])
		}
	}
}

func TestPar01Shape(t *testing.T) {
	p := quickParams()
	p.N = 30_000
	r := RunPar01(p)
	if len(r.Level) != 12 { // 3 sortedness levels x 4 worker counts
		t.Fatalf("par01 produced %d rows, want 12", len(r.Level))
	}
	for i := range r.Level {
		if r.OpsPerSec[i] <= 0 {
			t.Errorf("row %d (%s/w=%d): non-positive throughput", i, r.Level[i], r.Workers[i])
		}
		// A sorted multi-worker run ingests almost entirely through
		// frontier splices; workers=1 is the sequential path and never
		// splices.
		if r.Level[i] == "sorted (K=0%)" {
			if r.Workers[i] == 1 && r.Splices[i] != 0 {
				t.Errorf("sorted workers=1: %d splices, want 0", r.Splices[i])
			}
			if r.Workers[i] > 1 && r.Splices[i] == 0 {
				t.Errorf("sorted workers=%d: no frontier splices", r.Workers[i])
			}
		}
	}
}

func TestGap01Shape(t *testing.T) {
	p := quickParams()
	p.N = 30_000
	r := RunGap01(p)
	if len(r.Fraction) != 5 { // packed + 4 gap fractions
		t.Fatalf("gap01 produced %d rows, want 5", len(r.Fraction))
	}
	for i := range r.Fraction {
		if r.OpsPerSec[i] <= 0 {
			t.Errorf("row %d (%s): non-positive throughput", i, r.Fraction[i])
		}
		if r.FillPct[i] <= 0 || r.FillPct[i] > 100 {
			t.Errorf("row %d (%s): fill %.1f%% out of range", i, r.Fraction[i], r.FillPct[i])
		}
		// Reserving more gaps can only spend more leaves: occupancy must
		// not rise with the gap fraction (rows sweep it in increasing
		// order, packed first).
		if i > 0 && r.FillPct[i] > r.FillPct[i-1]+0.5 {
			t.Errorf("fill %% rose from %.1f (%s) to %.1f (%s)", r.FillPct[i-1], r.Fraction[i-1], r.FillPct[i], r.Fraction[i])
		}
	}
}

func TestAblationCatchUpShape(t *testing.T) {
	r := RunAblCatchUp(quickParams())
	for i, k := range r.K {
		if k >= 0.05 && r.Gated[i] < r.Literal[i]-0.05 {
			t.Errorf("K=%v: gated %.3f well below literal %.3f", k, r.Gated[i], r.Literal[i])
		}
	}
}

func TestAblationResetShape(t *testing.T) {
	r := RunAblReset(quickParams())
	// The default band beats both extremes: TR=1 thrashes, TR=off traps.
	def, off, one := -1, -1, -1
	for i, tr := range r.TR {
		switch tr {
		case 22:
			def = i
		case 1 << 30:
			off = i
		case 1:
			one = i
		}
	}
	if def < 0 || off < 0 || one < 0 {
		t.Fatal("sweep missing sentinel thresholds")
	}
	if r.Fast[def] <= r.Fast[off] {
		t.Errorf("TR=22 (%.3f) not better than resets-off (%.3f)", r.Fast[def], r.Fast[off])
	}
	if r.Fast[def] < r.Fast[one]-0.03 {
		t.Errorf("TR=22 (%.3f) well below TR=1 (%.3f)", r.Fast[def], r.Fast[one])
	}
}

func TestAblationScaleShape(t *testing.T) {
	r := RunAblScale(quickParams())
	// "Little to no tuning": the fast-insert fraction varies by < 10 points
	// across a 3x band around the default.
	min, max := 1.0, 0.0
	for _, f := range r.Fast {
		if f < min {
			min = f
		}
		if f > max {
			max = f
		}
	}
	if max-min > 0.10 {
		t.Errorf("IKR scale sensitivity too high: fast fractions %v", r.Fast)
	}
}

func TestAblationRegistry(t *testing.T) {
	for _, id := range []string{"abl01", "abl02", "abl03"} {
		if _, ok := harness.Lookup(id); !ok {
			t.Errorf("%s not registered", id)
		}
	}
}

func TestMix01Shape(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("timing experiment (skipped under -short and -race)")
	}
	r := RunMix01(quickParams())
	// At every read fraction, QuIT's throughput at least roughly matches
	// the B+-tree (same read path, faster writes); the 0.8 floor absorbs
	// single-run noise at quick scale.
	for i, f := range r.ReadFraction {
		q := r.OpsPerSec["QuIT"][i]
		b := r.OpsPerSec["B+-tree"][i]
		if q < b*0.8 {
			t.Errorf("read frac %v: QuIT %.0f ops/s well below B+-tree %.0f", f, q, b)
		}
	}
	// Write-heavy end: QuIT clearly ahead of the B+-tree.
	if r.OpsPerSec["QuIT"][0] < r.OpsPerSec["B+-tree"][0]*1.2 {
		t.Errorf("write-only: QuIT %.0f not clearly above B+-tree %.0f",
			r.OpsPerSec["QuIT"][0], r.OpsPerSec["B+-tree"][0])
	}
}

func TestShard01Shape(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("timing experiment (skipped under -short and -race)")
	}
	r := RunShard01(quickParams())
	// Write path: the coalescer must amortize fsyncs hard (the 0.05
	// ceiling is the PR acceptance line; the structural floor at 64
	// blocking clients on one shard is 1/64) and clearly beat the
	// per-request baseline.
	if r.FsyncsPerOp[1] > 0.05 {
		t.Errorf("coalesced fsyncs/op = %.4f, want <= 0.05", r.FsyncsPerOp[1])
	}
	if r.FsyncsPerOp[0] < 0.5 {
		t.Errorf("per-request baseline fsyncs/op = %.4f, expected ~1 under SyncAlways", r.FsyncsPerOp[0])
	}
	if r.WriteSpeedup < 2 {
		t.Errorf("coalesced write speedup = %.2fx, want clearly > 1 (quick-scale floor 2x)", r.WriteSpeedup)
	}
	if r.P99[1] <= 0 || r.P50[1] <= 0 {
		t.Error("latency percentiles not recorded")
	}
	// Sharded ingest: the multi-tenant stream (second pair) must win —
	// that is the algorithmic sortedness-restoration claim; the BoDS
	// near-sorted pair is reported but makes no single-core promise.
	if len(r.ShardSpeedup) != 2 {
		t.Fatalf("ShardSpeedup = %v, want 2 stream pairs", r.ShardSpeedup)
	}
	if r.ShardSpeedup[1] < 1.2 {
		t.Errorf("multi-tenant sharded speedup = %.2fx, want >= 1.2 even at quick scale", r.ShardSpeedup[1])
	}
	// Read path: the hot-key cache must actually hit.
	if r.HitRate < 0.80 {
		t.Errorf("cache hit rate = %.2f on a 95/5 workload, want >= 0.80", r.HitRate)
	}
	if r.CachedOps <= 0 || r.DirectOps <= 0 {
		t.Error("read path throughput not recorded")
	}
}

func TestShard01Registered(t *testing.T) {
	if _, ok := harness.Lookup("shard01"); !ok {
		t.Error("shard01 not registered")
	}
}
