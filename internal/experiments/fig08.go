package experiments

import (
	"github.com/quittree/quit/internal/core"
	"github.com/quittree/quit/internal/harness"
)

// Fig08Result reproduces Figure 8: ingestion speedup of tail-B+-tree,
// lil-B+-tree and QuIT relative to the classical B+-tree across data
// sortedness. Paper shape: ~3x for QuIT/tail on fully sorted data; tail
// collapses to ~1x by K=1% while QuIT holds ~2.5x through K<25% and
// degrades gracefully to ~1x at K=100%.
type Fig08Result struct {
	K       []float64
	Designs []string
	// NsPerOp[design][i] is the raw ingest cost at K[i]; Speedup is
	// relative to the classical B+-tree.
	NsPerOp map[string][]float64
	Speedup map[string][]float64
}

var fig08Designs = []struct {
	name string
	mode core.Mode
}{
	{"B+-tree", core.ModeNone},
	{"tail-B+-tree", core.ModeTail},
	{"lil-B+-tree", core.ModeLIL},
	{"QuIT", core.ModeQuIT},
}

// RunFig08 executes the experiment.
func RunFig08(p harness.Params) Fig08Result {
	grid := kGridFor(p)
	r := Fig08Result{
		K:       grid,
		NsPerOp: map[string][]float64{},
		Speedup: map[string][]float64{},
	}
	for _, d := range fig08Designs {
		r.Designs = append(r.Designs, d.name)
	}
	for _, k := range grid {
		keys := genKeys(p, k, 1.0)
		base := 0.0
		for _, d := range fig08Designs {
			tr := newTree(p, d.mode)
			ns := ingest(tr, keys)
			r.NsPerOp[d.name] = append(r.NsPerOp[d.name], ns)
			if d.mode == core.ModeNone {
				base = ns
			}
			r.Speedup[d.name] = append(r.Speedup[d.name], base/ns)
		}
	}
	return r
}

// Tables renders the result.
func (r Fig08Result) Tables() []harness.Table {
	t := harness.Table{
		ID:      "fig08",
		Title:   "Figure 8: ingestion speedup over the classical B+-tree",
		Note:    "L = 100%; speedup = B+-tree ns/op divided by design ns/op",
		Headers: []string{"K"},
	}
	for _, d := range r.Designs {
		t.Headers = append(t.Headers, d)
	}
	for i, k := range r.K {
		row := []string{pctLabel(k)}
		for _, d := range r.Designs {
			row = append(row, harness.Speedup(r.Speedup[d][i]))
		}
		t.Rows = append(t.Rows, row)
	}
	raw := harness.Table{
		ID:      "fig08",
		Title:   "Figure 8 (raw): ingestion ns/op",
		Headers: t.Headers,
	}
	for i, k := range r.K {
		row := []string{pctLabel(k)}
		for _, d := range r.Designs {
			row = append(row, harness.Fmt(r.NsPerOp[d][i]))
		}
		raw.Rows = append(raw.Rows, row)
	}
	return []harness.Table{t, raw}
}

func init() {
	harness.Register(harness.Experiment{
		ID:    "fig08",
		Paper: "Figure 8",
		Title: "ingestion speedup vs data sortedness",
		Run: func(p harness.Params) []harness.Table {
			return RunFig08(p).Tables()
		},
	})
}
