package experiments

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/quittree/quit"
	"github.com/quittree/quit/internal/harness"
)

// Dur01Result prices the crash-safety layer (beyond the paper, DESIGN.md
// §8): the same near-sorted ingest through the in-memory tree and through
// DurableTree under each write-ahead-log sync policy, plus the cost of
// recovering the resulting log on reopen.
type Dur01Result struct {
	Policy    []string
	N         []int
	OpsPerSec []float64
	Slowdown  []float64 // vs the in-memory baseline
	// RecoverOpsPerSec is the log replay rate on reopen (0 for the
	// in-memory baseline, which has nothing to recover).
	RecoverOpsPerSec []float64
}

// RunDur01 executes the sweep.
func RunDur01(p harness.Params) Dur01Result {
	// The group-commit policies keep up with memory within a small factor,
	// so they get the full stream; SyncAlways is fsync-bound (milliseconds
	// per op on real disks) and measures fine from a short stream.
	n := p.N
	if n > 200_000 {
		n = 200_000
	}
	alwaysN := 2_000
	if p.Quick {
		n, alwaysN = 50_000, 500
	}
	keys := genKeys(p, 0.05, 1.0)

	var r Dur01Result
	record := func(policy string, n int, opsPerSec, recoverRate float64) {
		r.Policy = append(r.Policy, policy)
		r.N = append(r.N, n)
		r.OpsPerSec = append(r.OpsPerSec, opsPerSec)
		r.RecoverOpsPerSec = append(r.RecoverOpsPerSec, recoverRate)
	}

	// In-memory baseline.
	{
		tr := quit.New[int64, int64](quit.Options{LeafCapacity: p.LeafCapacity, InternalFanout: p.InternalFanout})
		runtime.GC()
		start := time.Now()
		for _, k := range keys[:n] {
			tr.Insert(k, k)
		}
		record("in-memory", n, float64(n)/time.Since(start).Seconds(), 0)
	}

	runDurable := func(name string, policy quit.SyncPolicy, n int) {
		dir, err := os.MkdirTemp("", "quit-dur01-")
		if err != nil {
			panic(fmt.Sprintf("dur01: %v", err))
		}
		defer os.RemoveAll(dir)
		opts := quit.DurableOptions{
			Options: quit.Options{LeafCapacity: p.LeafCapacity, InternalFanout: p.InternalFanout},
			Sync:    policy,
		}
		d, err := quit.Open[int64, int64](dir, opts)
		if err != nil {
			panic(fmt.Sprintf("dur01: %v", err))
		}
		runtime.GC()
		start := time.Now()
		for _, k := range keys[:n] {
			if err := d.Insert(k, k); err != nil {
				panic(fmt.Sprintf("dur01: %v", err))
			}
		}
		opsPerSec := float64(n) / time.Since(start).Seconds()
		if err := d.Close(); err != nil {
			panic(fmt.Sprintf("dur01: %v", err))
		}
		// Recovery cost: reopen and replay the full log.
		start = time.Now()
		d2, err := quit.Open[int64, int64](dir, opts)
		if err != nil {
			panic(fmt.Sprintf("dur01: reopen: %v", err))
		}
		recoverRate := float64(d2.Recovery().RecordsReplayed) / time.Since(start).Seconds()
		d2.Close()
		record(name, n, opsPerSec, recoverRate)
	}

	runDurable("wal/never", quit.SyncNever, n)
	runDurable("wal/interval", quit.SyncInterval, n)
	runDurable("wal/always", quit.SyncAlways, alwaysN)

	base := r.OpsPerSec[0]
	for _, ops := range r.OpsPerSec {
		r.Slowdown = append(r.Slowdown, base/ops)
	}
	return r
}

// Tables renders the result.
func (r Dur01Result) Tables() []harness.Table {
	t := harness.Table{
		ID:      "dur01",
		Title:   "Durability overhead (beyond the paper): WAL sync policies vs in-memory",
		Note:    "near-sorted ingest (K=5%); recovery = log replay rate on reopen",
		Headers: []string{"configuration", "ops", "M ops/sec", "slowdown", "recovery M ops/sec"},
	}
	for i := range r.Policy {
		rec := "-"
		if r.RecoverOpsPerSec[i] > 0 {
			rec = harness.Fmt(r.RecoverOpsPerSec[i] / 1e6)
		}
		t.Rows = append(t.Rows, []string{
			r.Policy[i],
			fmt.Sprintf("%d", r.N[i]),
			harness.Fmt(r.OpsPerSec[i] / 1e6),
			harness.Fmt(r.Slowdown[i]) + "x",
			rec,
		})
	}
	return []harness.Table{t}
}

func init() {
	harness.Register(harness.Experiment{
		ID: "dur01", Paper: "(extension)", Title: "durability overhead of snapshots + WAL",
		Run: func(p harness.Params) []harness.Table { return RunDur01(p).Tables() },
	})
}
