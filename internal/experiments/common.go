// Package experiments reproduces every table and figure of the paper's
// evaluation (§5). Each experiment is a typed function returning a result
// struct (so tests can assert the reported *shapes*) plus a registration
// into the harness registry (so cmd/quitbench can run it by ID).
//
// Absolute numbers depend on the host; the assertions and EXPERIMENTS.md
// track the relative claims: who wins, by roughly what factor, and where
// the crossovers fall.
package experiments

import (
	"math/rand"
	"runtime"
	"time"

	"github.com/quittree/quit/internal/bods"
	"github.com/quittree/quit/internal/core"
	"github.com/quittree/quit/internal/harness"
	"github.com/quittree/quit/internal/sware"
)

// treeConfig builds the per-experiment tree configuration.
func treeConfig(p harness.Params, mode core.Mode) core.Config {
	return core.Config{
		Mode:           mode,
		LeafCapacity:   p.LeafCapacity,
		InternalFanout: p.InternalFanout,
	}
}

// newTree builds a tree for the experiment.
func newTree(p harness.Params, mode core.Mode) *core.Tree[int64, int64] {
	return core.New[int64, int64](treeConfig(p, mode))
}

// newSware builds a SWARE index with the paper's default buffer: 1% of the
// data size (§5, "we default to a buffer size equivalent to 1% of the total
// data size").
func newSware(p harness.Params) *sware.Index {
	buf := p.N / 100
	if buf < 1024 {
		buf = 1024
	}
	return sware.New(sware.Config{
		BufferEntries: buf,
		Tree:          treeConfig(p, core.ModeNone),
	})
}

// genKeys produces the BoDS stream for an out-of-order fraction k and max
// displacement l (both fractions of N).
func genKeys(p harness.Params, k, l float64) []int64 {
	return bods.Generate(bods.Spec{N: p.N, K: k, L: l, Seed: p.Seed})
}

// ingest inserts all keys (value = key) and returns mean ns per insert.
func ingest(tr *core.Tree[int64, int64], keys []int64) float64 {
	runtime.GC()
	start := time.Now()
	for _, k := range keys {
		tr.Put(k, k)
	}
	return float64(time.Since(start).Nanoseconds()) / float64(len(keys))
}

// ingestSware inserts all keys into a SWARE index and returns mean ns per
// insert.
func ingestSware(ix *sware.Index, keys []int64) float64 {
	runtime.GC()
	start := time.Now()
	for _, k := range keys {
		ix.Put(k, k)
	}
	return float64(time.Since(start).Nanoseconds()) / float64(len(keys))
}

// lookupTargets draws count uniformly random existing keys (keys are the
// permutation 0..N-1 in every BoDS stream).
func lookupTargets(p harness.Params, count int) []int64 {
	rng := rand.New(rand.NewSource(p.Seed + 1))
	out := make([]int64, count)
	for i := range out {
		out[i] = int64(rng.Intn(p.N))
	}
	return out
}

// lookups measures mean ns per point lookup on the tree. A GC cycle and a
// short warmup run precede the timed phase so ingestion garbage and cold
// caches are not billed to the lookups.
func lookups(tr *core.Tree[int64, int64], targets []int64) float64 {
	runtime.GC()
	for _, k := range targets[:min(2000, len(targets))] {
		tr.Get(k)
	}
	start := time.Now()
	for _, k := range targets {
		tr.Get(k)
	}
	return float64(time.Since(start).Nanoseconds()) / float64(len(targets))
}

// lookupsSware measures mean ns per point lookup on a SWARE index, with
// the same GC/warmup discipline as lookups.
func lookupsSware(ix *sware.Index, targets []int64) float64 {
	runtime.GC()
	for _, k := range targets[:min(2000, len(targets))] {
		ix.Get(k)
	}
	start := time.Now()
	for _, k := range targets {
		ix.Get(k)
	}
	return float64(time.Since(start).Nanoseconds()) / float64(len(targets))
}

// bestLookups repeats a lookup measurement and keeps the fastest run, the
// standard defense against scheduler and GC interference in short phases.
func bestLookups(reps int, measure func() float64) float64 {
	best := measure()
	for i := 1; i < reps; i++ {
		if v := measure(); v < best {
			best = v
		}
	}
	return best
}

// kGrid is the out-of-order-fraction grid most figures sweep (percent
// values from the paper's x-axes).
var kGrid = []float64{0, 0.01, 0.03, 0.05, 0.10, 0.25, 0.50, 1.0}

// kGridQuick trims the grid for smoke tests.
func kGridFor(p harness.Params) []float64 {
	if p.Quick {
		return []float64{0, 0.05, 0.25, 1.0}
	}
	return kGrid
}

func pctLabel(k float64) string {
	return harness.Pct(k)
}
