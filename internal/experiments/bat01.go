package experiments

import (
	"fmt"
	"runtime"
	"time"

	"github.com/quittree/quit"
	"github.com/quittree/quit/internal/harness"
)

// Bat01Result compares per-key Put against the batched write path
// (beyond the paper; DESIGN.md §9): the same BoDS stream ingested one key
// at a time and in PutBatch groups of 16/256/4096, across sortedness
// levels. The batched path amortizes the sort, descends once per leaf
// run, and merges each run with one copy — so its advantage grows with
// both batch size and sortedness.
type Bat01Result struct {
	Level      []string // sortedness level
	Method     []string // per-key | batch=N
	OpsPerSec  []float64
	Speedup    []float64 // vs per-key at the same level
	FastRunPct []float64 // fraction of batch runs resolved via fast-path metadata
}

// RunBat01 executes the sweep.
func RunBat01(p harness.Params) Bat01Result {
	n := p.N
	levels := []struct {
		name string
		k    float64
	}{{"sorted (K=0%)", 0}, {"near (K=5%)", 0.05}, {"less (K=25%)", 0.25}, {"scrambled (K=100%)", 1.0}}
	batchSizes := []int{16, 256, 4096}

	var r Bat01Result
	record := func(level, method string, ops, speedup, fastPct float64) {
		r.Level = append(r.Level, level)
		r.Method = append(r.Method, method)
		r.OpsPerSec = append(r.OpsPerSec, ops)
		r.Speedup = append(r.Speedup, speedup)
		r.FastRunPct = append(r.FastRunPct, fastPct)
	}

	opts := quit.Options{LeafCapacity: p.LeafCapacity, InternalFanout: p.InternalFanout}
	for _, lvl := range levels {
		keys := genKeys(p, lvl.k, 1.0)[:n]

		tr := quit.New[int64, int64](opts)
		runtime.GC()
		start := time.Now()
		for _, k := range keys {
			tr.Insert(k, k)
		}
		perKey := float64(n) / time.Since(start).Seconds()
		record(lvl.name, "per-key", perKey, 1, -1)

		vals := make([]int64, len(keys))
		copy(vals, keys)
		for _, bs := range batchSizes {
			tb := quit.New[int64, int64](opts)
			runtime.GC()
			start := time.Now()
			for i := 0; i < len(keys); i += bs {
				end := i + bs
				if end > len(keys) {
					end = len(keys)
				}
				tb.PutBatch(keys[i:end], vals[i:end])
			}
			ops := float64(n) / time.Since(start).Seconds()
			st := tb.Stats()
			fastPct := 0.0
			if st.BatchRuns > 0 {
				fastPct = float64(st.BatchFastRuns) / float64(st.BatchRuns) * 100
			}
			record(lvl.name, fmt.Sprintf("batch=%d", bs), ops, ops/perKey, fastPct)
		}
	}
	return r
}

// Tables renders the result.
func (r Bat01Result) Tables() []harness.Table {
	t := harness.Table{
		ID:      "bat01",
		Title:   "Batched ingest (beyond the paper): PutBatch vs per-key Put",
		Note:    "speedup is vs per-key at the same sortedness; %fast-runs = batch runs resolved via fast-path metadata",
		Headers: []string{"sortedness", "method", "M ops/sec", "speedup", "%fast-runs"},
	}
	for i := range r.Level {
		fast := "-"
		if r.FastRunPct[i] >= 0 {
			fast = harness.Fmt(r.FastRunPct[i])
		}
		t.Rows = append(t.Rows, []string{
			r.Level[i],
			r.Method[i],
			harness.Fmt(r.OpsPerSec[i] / 1e6),
			harness.Fmt(r.Speedup[i]) + "x",
			fast,
		})
	}
	return []harness.Table{t}
}

func init() {
	harness.Register(harness.Experiment{
		ID: "bat01", Paper: "(extension)", Title: "batched write path: PutBatch vs per-key ingest",
		Run: func(p harness.Params) []harness.Table { return RunBat01(p).Tables() },
	})
}
