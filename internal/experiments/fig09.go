package experiments

import (
	"github.com/quittree/quit/internal/core"
	"github.com/quittree/quit/internal/harness"
)

// Fig09Result reproduces Figure 9: the fraction of insertions served by the
// fast path for tail-B+-tree, lil-B+-tree and QuIT across sortedness. The
// classical B+-tree is omitted (it only top-inserts), as in the paper.
// Paper shape: QuIT performs approximately only as many top-inserts as
// there are out-of-order entries, closely tracking the ideal of Fig. 5b.
type Fig09Result struct {
	K       []float64
	Designs []string
	Fast    map[string][]float64
}

// RunFig09 executes the experiment.
func RunFig09(p harness.Params) Fig09Result {
	grid := kGridFor(p)
	r := Fig09Result{
		K:       grid,
		Designs: []string{"tail-B+-tree", "lil-B+-tree", "QuIT"},
		Fast:    map[string][]float64{},
	}
	modes := map[string]core.Mode{
		"tail-B+-tree": core.ModeTail,
		"lil-B+-tree":  core.ModeLIL,
		"QuIT":         core.ModeQuIT,
	}
	for _, k := range grid {
		keys := genKeys(p, k, 1.0)
		for _, d := range r.Designs {
			tr := newTree(p, modes[d])
			ingest(tr, keys)
			r.Fast[d] = append(r.Fast[d], tr.Stats().FastInsertFraction())
		}
	}
	return r
}

// Tables renders the result.
func (r Fig09Result) Tables() []harness.Table {
	t := harness.Table{
		ID:      "fig09",
		Title:   "Figure 9: fraction of fast-inserts vs top-inserts",
		Note:    "each cell: fast% (remainder are top-inserts); L = 100%",
		Headers: []string{"K"},
	}
	t.Headers = append(t.Headers, r.Designs...)
	for i, k := range r.K {
		row := []string{pctLabel(k)}
		for _, d := range r.Designs {
			row = append(row, harness.Pct(r.Fast[d][i]))
		}
		t.Rows = append(t.Rows, row)
	}
	return []harness.Table{t}
}

func init() {
	harness.Register(harness.Experiment{
		ID:    "fig09",
		Paper: "Figure 9",
		Title: "fast-insert fraction per index design",
		Run: func(p harness.Params) []harness.Table {
			return RunFig09(p).Tables()
		},
	})
}
