package experiments

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/quittree/quit"
	"github.com/quittree/quit/internal/harness"
)

// Dur02Result prices the self-healing durability features (beyond the
// paper, DESIGN.md §8): the same near-sorted ingest through DurableTree
// with the monolithic log (rotation disabled — the prior baseline), with
// segment rotation, and with rotation plus automatic checkpoints. The
// interesting trade: rotation and auto-checkpointing cost a little ingest
// throughput but bound how much log a reopen must replay.
type Dur02Result struct {
	Config    []string
	N         []int
	OpsPerSec []float64
	Slowdown  []float64 // vs the monolithic-log baseline
	Rotations []uint64
	AutoCkpts []uint64
	// ReclaimedMB is the log volume checkpoints deleted during ingest.
	ReclaimedMB []float64
	// ReplayRecords is what a reopen actually had to replay — the number
	// auto-checkpointing exists to bound.
	ReplayRecords    []uint64
	RecoverOpsPerSec []float64
}

// RunDur02 executes the sweep.
func RunDur02(p harness.Params) Dur02Result {
	n := p.N
	if n > 200_000 {
		n = 200_000
	}
	if p.Quick {
		n = 50_000
	}
	keys := genKeys(p, 0.05, 1.0)

	// Sized so the run rotates and checkpoints many times: ~29 bytes per
	// framed record means 200k records ≈ 5.8MB of log.
	const segBytes = 512 << 10
	const ckptBytes = 1 << 20

	var r Dur02Result
	run := func(name string, segment int64, ckpt quit.CheckpointPolicy) {
		dir, err := os.MkdirTemp("", "quit-dur02-")
		if err != nil {
			panic(fmt.Sprintf("dur02: %v", err))
		}
		defer os.RemoveAll(dir)
		opts := quit.DurableOptions{
			Options:      quit.Options{LeafCapacity: p.LeafCapacity, InternalFanout: p.InternalFanout},
			Sync:         quit.SyncNever, // no fsync noise: isolate the rotation/checkpoint cost
			SegmentBytes: segment,
			Checkpoint:   ckpt,
		}
		d, err := quit.Open[int64, int64](dir, opts)
		if err != nil {
			panic(fmt.Sprintf("dur02: %v", err))
		}
		runtime.GC()
		start := time.Now()
		for _, k := range keys[:n] {
			if err := d.Insert(k, k); err != nil {
				panic(fmt.Sprintf("dur02: %v", err))
			}
		}
		opsPerSec := float64(n) / time.Since(start).Seconds()
		// The auto-checkpoint trigger runs on its own goroutine; give an
		// in-flight one a moment to land before snapshotting the counters,
		// so the table reflects the checkpoint and the bounded replay.
		if ckpt != (quit.CheckpointPolicy{}) {
			deadline := time.Now().Add(2 * time.Second)
			for d.DurabilityStats().AutoCheckpoints == 0 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
		}
		st := d.DurabilityStats()
		if err := d.Close(); err != nil {
			panic(fmt.Sprintf("dur02: %v", err))
		}
		start = time.Now()
		d2, err := quit.Open[int64, int64](dir, opts)
		if err != nil {
			panic(fmt.Sprintf("dur02: reopen: %v", err))
		}
		elapsed := time.Since(start).Seconds()
		replayed := uint64(d2.Recovery().RecordsReplayed)
		d2.Close()

		r.Config = append(r.Config, name)
		r.N = append(r.N, n)
		r.OpsPerSec = append(r.OpsPerSec, opsPerSec)
		r.Rotations = append(r.Rotations, st.SegmentsRotated)
		r.AutoCkpts = append(r.AutoCkpts, st.AutoCheckpoints)
		r.ReclaimedMB = append(r.ReclaimedMB, float64(st.WALBytesReclaimed)/(1<<20))
		r.ReplayRecords = append(r.ReplayRecords, replayed)
		r.RecoverOpsPerSec = append(r.RecoverOpsPerSec, float64(replayed)/elapsed)
	}

	run("wal/monolithic", -1, quit.CheckpointPolicy{})
	run("wal/segmented", segBytes, quit.CheckpointPolicy{})
	run("wal/seg+autockpt", segBytes, quit.CheckpointPolicy{MaxWALBytes: ckptBytes})

	base := r.OpsPerSec[0]
	for _, ops := range r.OpsPerSec {
		r.Slowdown = append(r.Slowdown, base/ops)
	}
	return r
}

// Tables renders the result.
func (r Dur02Result) Tables() []harness.Table {
	t := harness.Table{
		ID:      "dur02",
		Title:   "Self-healing durability (beyond the paper): segment rotation + auto-checkpoint",
		Note:    "near-sorted ingest (K=5%), SyncNever; replay = records a reopen had to recover",
		Headers: []string{"configuration", "ops", "M ops/sec", "slowdown", "rotations", "auto-ckpts", "reclaimed MB", "replayed", "recovery M ops/sec"},
	}
	for i := range r.Config {
		rec := "-"
		if r.RecoverOpsPerSec[i] > 0 {
			rec = harness.Fmt(r.RecoverOpsPerSec[i] / 1e6)
		}
		t.Rows = append(t.Rows, []string{
			r.Config[i],
			fmt.Sprintf("%d", r.N[i]),
			harness.Fmt(r.OpsPerSec[i] / 1e6),
			harness.Fmt(r.Slowdown[i]) + "x",
			fmt.Sprintf("%d", r.Rotations[i]),
			fmt.Sprintf("%d", r.AutoCkpts[i]),
			harness.Fmt(r.ReclaimedMB[i]),
			fmt.Sprintf("%d", r.ReplayRecords[i]),
			rec,
		})
	}
	return []harness.Table{t}
}

func init() {
	harness.Register(harness.Experiment{
		ID: "dur02", Paper: "(extension)", Title: "segmented WAL + auto-checkpoint overhead",
		Run: func(p harness.Params) []harness.Table { return RunDur02(p).Tables() },
	})
}
