package experiments

import (
	"github.com/quittree/quit/internal/harness"
)

// Tab01Result reproduces Table 1: the metadata each index design keeps.
// This is a design digest, not a measurement; the byte column quantifies
// the paper's claim that QuIT needs "less than 20 bytes of additional
// metadata" beyond the other fast-path designs (pole_prev_size 4B,
// pole_prev_min 4B for 4-byte keys, pole_prev_id 8B, pole_fails 4B).
type Tab01Result struct {
	Fields  []string
	Designs []string
	Has     map[string]map[string]bool
}

// RunTab01 builds the digest.
func RunTab01(_ harness.Params) Tab01Result {
	designs := []string{"B+-tree", "tail-B+-tree", "lil-B+-tree", "QuIT"}
	fields := []string{
		"root_id", "head_id", "tail_id",
		"fp_path[]", "fp_size", "fp_min", "fp_max", "fp_id",
		"pole_prev_size", "pole_prev_min", "pole_prev_id", "pole_fails",
	}
	has := map[string]map[string]bool{}
	mark := func(design string, fs ...string) {
		if has[design] == nil {
			has[design] = map[string]bool{}
		}
		for _, f := range fs {
			has[design][f] = true
		}
	}
	mark("B+-tree", "root_id", "head_id", "tail_id")
	mark("tail-B+-tree", "root_id", "head_id", "tail_id", "fp_path[]", "fp_size", "fp_min")
	mark("lil-B+-tree", "root_id", "head_id", "tail_id", "fp_path[]", "fp_size", "fp_min", "fp_max", "fp_id")
	mark("QuIT", fields...)
	return Tab01Result{Fields: fields, Designs: designs, Has: has}
}

// Tables renders the digest.
func (r Tab01Result) Tables() []harness.Table {
	t := harness.Table{
		ID:      "tab01",
		Title:   "Table 1: metadata used by different indexes",
		Note:    "QuIT adds <20B over lil-B+-tree: pole_prev_{size,min,id} and pole_fails",
		Headers: append([]string{"field"}, r.Designs...),
	}
	for _, f := range r.Fields {
		row := []string{f}
		for _, d := range r.Designs {
			cell := ""
			if r.Has[d][f] {
				cell = "yes"
			}
			row = append(row, cell)
		}
		t.Rows = append(t.Rows, row)
	}
	return []harness.Table{t}
}

func init() {
	harness.Register(harness.Experiment{
		ID:    "tab01",
		Paper: "Table 1",
		Title: "metadata digest per index design",
		Run: func(p harness.Params) []harness.Table {
			return RunTab01(p).Tables()
		},
	})
}
