package experiments

import (
	"fmt"
	"runtime"
	"time"

	"github.com/quittree/quit"
	"github.com/quittree/quit/internal/harness"
)

// Par01Result sweeps the parallel ingest path (beyond the paper;
// DESIGN.md §10): the same BoDS stream ingested through PutBatchParallel
// at worker counts 1/2/4/8, across sortedness levels. workers=1 is
// exactly the sequential PutBatch, so the speedup column isolates what
// the partitioned workers and the frontier splice add. On a single-core
// host the sorted-regime gain is algorithmic (one splice descent per
// batch instead of one per run); the near-sorted regime needs real cores
// to fan its outlier descents out.
type Par01Result struct {
	Level     []string // sortedness level
	Workers   []int
	OpsPerSec []float64
	Speedup   []float64 // vs workers=1 at the same level
	Splices   []int64   // frontier chains spliced past the old maximum
}

// RunPar01 executes the sweep.
func RunPar01(p harness.Params) Par01Result {
	n := p.N
	levels := []struct {
		name string
		k    float64
	}{{"sorted (K=0%)", 0}, {"near (K=5%)", 0.05}, {"scrambled (K=100%)", 1.0}}
	workerCounts := []int{1, 2, 4, 8}
	const bs = 8192

	var r Par01Result
	opts := quit.Options{
		LeafCapacity:   p.LeafCapacity,
		InternalFanout: p.InternalFanout,
		Design:         quit.QuIT,
		Synchronized:   true,
	}
	for _, lvl := range levels {
		keys := genKeys(p, lvl.k, 1.0)[:n]
		vals := make([]int64, len(keys))
		copy(vals, keys)

		base := 0.0
		for _, w := range workerCounts {
			tr := quit.New[int64, int64](opts)
			runtime.GC()
			start := time.Now()
			for i := 0; i < len(keys); i += bs {
				end := i + bs
				if end > len(keys) {
					end = len(keys)
				}
				tr.PutBatchParallel(keys[i:end], vals[i:end], quit.IngestOptions{Workers: w})
			}
			ops := float64(n) / time.Since(start).Seconds()
			if w == 1 {
				base = ops
			}
			r.Level = append(r.Level, lvl.name)
			r.Workers = append(r.Workers, w)
			r.OpsPerSec = append(r.OpsPerSec, ops)
			r.Speedup = append(r.Speedup, ops/base)
			r.Splices = append(r.Splices, tr.Stats().FrontierSplices)
		}
	}
	return r
}

// Tables renders the result.
func (r Par01Result) Tables() []harness.Table {
	t := harness.Table{
		ID:    "par01",
		Title: "Parallel ingest (beyond the paper): PutBatchParallel worker sweep",
		Note: fmt.Sprintf("batch=8192; speedup is vs workers=1 at the same sortedness; GOMAXPROCS=%d on this host",
			runtime.GOMAXPROCS(0)),
		Headers: []string{"sortedness", "workers", "M ops/sec", "speedup", "splices"},
	}
	for i := range r.Level {
		t.Rows = append(t.Rows, []string{
			r.Level[i],
			fmt.Sprintf("%d", r.Workers[i]),
			harness.Fmt(r.OpsPerSec[i] / 1e6),
			harness.Fmt(r.Speedup[i]) + "x",
			fmt.Sprintf("%d", r.Splices[i]),
		})
	}
	return []harness.Table{t}
}

func init() {
	harness.Register(harness.Experiment{
		ID: "par01", Paper: "(extension)", Title: "parallel ingest: PutBatchParallel worker sweep",
		Run: func(p harness.Params) []harness.Table { return RunPar01(p).Tables() },
	})
}
