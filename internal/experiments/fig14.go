package experiments

import (
	"github.com/quittree/quit/internal/core"
	"github.com/quittree/quit/internal/harness"
)

// Fig14Result reproduces Figure 14: insert latency (a) and point-lookup
// latency (b) of the SWARE-based SA-B+-tree vs QuIT across sortedness.
// Paper shape: QuIT ingests >=1.5x faster on near-sorted data (filter and
// Zonemap maintenance tax every SWARE insert) and converges for scrambled
// data; QuIT answers point lookups up to ~26% faster because SWARE probes
// its buffer first.
type Fig14Result struct {
	K           []float64
	InsertSware []float64
	InsertQuIT  []float64
	LookupSware []float64
	LookupQuIT  []float64
}

// RunFig14 executes the comparison.
func RunFig14(p harness.Params) Fig14Result {
	grid := kGridFor(p)
	r := Fig14Result{K: grid}
	targets := lookupTargets(p, p.Lookups)
	for _, k := range grid {
		keys := genKeys(p, k, 1.0)

		sw := newSware(p)
		r.InsertSware = append(r.InsertSware, ingestSware(sw, keys))
		r.LookupSware = append(r.LookupSware, bestLookups(3, func() float64 { return lookupsSware(sw, targets) }))

		quit := newTree(p, core.ModeQuIT)
		r.InsertQuIT = append(r.InsertQuIT, ingest(quit, keys))
		r.LookupQuIT = append(r.LookupQuIT, bestLookups(3, func() float64 { return lookups(quit, targets) }))
	}
	return r
}

// Tables renders both panels.
func (r Fig14Result) Tables() []harness.Table {
	a := harness.Table{
		ID:      "fig14a",
		Title:   "Figure 14a: insert latency, SWARE (SA-B+-tree) vs QuIT (ns/op)",
		Headers: []string{"K", "SWARE", "QuIT", "QuIT speedup"},
	}
	b := harness.Table{
		ID:      "fig14b",
		Title:   "Figure 14b: point-lookup latency, SWARE vs QuIT (ns/op)",
		Headers: []string{"K", "SWARE", "QuIT", "QuIT speedup"},
	}
	for i, k := range r.K {
		a.Rows = append(a.Rows, []string{
			pctLabel(k), harness.Fmt(r.InsertSware[i]), harness.Fmt(r.InsertQuIT[i]),
			harness.Speedup(r.InsertSware[i] / r.InsertQuIT[i]),
		})
		b.Rows = append(b.Rows, []string{
			pctLabel(k), harness.Fmt(r.LookupSware[i]), harness.Fmt(r.LookupQuIT[i]),
			harness.Speedup(r.LookupSware[i] / r.LookupQuIT[i]),
		})
	}
	return []harness.Table{a, b}
}

func init() {
	harness.Register(harness.Experiment{
		ID:    "fig14",
		Paper: "Figure 14",
		Title: "QuIT vs the SWARE SA-B+-tree",
		Run: func(p harness.Params) []harness.Table {
			return RunFig14(p).Tables()
		},
	})
}
