package harness

import (
	"testing"
	"time"
)

func TestLatenciesPercentiles(t *testing.T) {
	var l Latencies
	if l.Percentile(99) != 0 {
		t.Fatal("empty Latencies percentile != 0")
	}
	// 1..100us in shuffled-enough order: nearest-rank percentiles are
	// exactly the value matching the rank.
	for i := 100; i >= 1; i-- {
		l.Record(time.Duration(i) * time.Microsecond)
	}
	if got := l.P50(); got != 50*time.Microsecond {
		t.Errorf("P50 = %v, want 50us", got)
	}
	if got := l.P95(); got != 95*time.Microsecond {
		t.Errorf("P95 = %v, want 95us", got)
	}
	if got := l.P99(); got != 99*time.Microsecond {
		t.Errorf("P99 = %v, want 99us", got)
	}
	if got := l.Percentile(100); got != 100*time.Microsecond {
		t.Errorf("P100 = %v, want max", got)
	}
	if got := l.Percentile(0); got != time.Microsecond {
		t.Errorf("P0 = %v, want min", got)
	}

	var a, b Latencies
	a.Record(time.Millisecond)
	b.Record(3 * time.Millisecond)
	a.Merge(&b)
	if a.N() != 2 {
		t.Fatalf("merged N = %d", a.N())
	}
	if got := a.Percentile(100); got != 3*time.Millisecond {
		t.Errorf("merged max = %v", got)
	}
	// Recording after a percentile query must re-sort.
	a.Record(10 * time.Millisecond)
	if got := a.Percentile(100); got != 10*time.Millisecond {
		t.Errorf("post-query Record not reflected: max = %v", got)
	}
}
