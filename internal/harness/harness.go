// Package harness provides the shared machinery for reproducing the paper's
// tables and figures: wall-clock measurement helpers, aligned ASCII table
// rendering, and a registry that cmd/quitbench and the benchmark suite
// drive.
package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Params scales an experiment run. The zero value is not meaningful; use
// DefaultParams (laptop-scale) and override.
type Params struct {
	// N is the number of entries ingested (the paper uses 500M; the default
	// here is 2M, which preserves tree heights >= 3 and every reported
	// trend).
	N int
	// Lookups is the number of point lookups issued by query phases (the
	// paper uses 1% of N).
	Lookups int
	// RangeLookups is the number of range queries per selectivity.
	RangeLookups int
	// LeafCapacity and InternalFanout configure every tree in the
	// experiment identically (paper: 510-entry leaves).
	LeafCapacity   int
	InternalFanout int
	// Threads is the concurrency ladder for the Fig. 13 experiment.
	Threads []int
	// Seed drives all workload generation.
	Seed int64
	// Quick trims secondary dimensions (used by smoke tests).
	Quick bool
}

// DefaultParams returns the laptop-scale defaults documented in DESIGN.md.
func DefaultParams() Params {
	return Params{
		N:              2_000_000,
		Lookups:        200_000,
		RangeLookups:   200,
		LeafCapacity:   510,
		InternalFanout: 256,
		Threads:        []int{1, 2, 4, 8, 16},
		Seed:           42,
	}
}

// Table is one rendered result table (a paper figure's series or a paper
// table's rows).
type Table struct {
	ID      string // experiment id, e.g. "fig08"
	Title   string // paper reference and description
	Note    string // methodology note rendered under the title
	Headers []string
	Rows    [][]string
}

// Render writes the table in aligned ASCII form.
func (t Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		for _, line := range strings.Split(t.Note, "\n") {
			fmt.Fprintf(w, "   %s\n", line)
		}
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// RenderCSV writes the table as CSV with a leading comment line carrying
// the experiment id and title, for downstream plotting.
func (t Table) RenderCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s: %s\n", t.ID, t.Title); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Experiment is one registered table/figure reproduction.
type Experiment struct {
	ID    string // e.g. "fig08"
	Paper string // e.g. "Figure 8"
	Title string
	Run   func(Params) []Table
}

var registry = map[string]Experiment{}

// Register adds an experiment; duplicate IDs panic (a wiring bug).
func Register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("harness: duplicate experiment id " + e.ID)
	}
	registry[e.ID] = e
}

// Lookup returns the experiment registered under id.
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every registered experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TimeOps runs fn over n sequential operations and returns the mean
// nanoseconds per operation.
func TimeOps(n int, fn func(i int)) float64 {
	start := time.Now()
	for i := 0; i < n; i++ {
		fn(i)
	}
	elapsed := time.Since(start)
	if n == 0 {
		return 0
	}
	return float64(elapsed.Nanoseconds()) / float64(n)
}

// Fmt formats a float with sensible precision for table cells.
func Fmt(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Pct formats a fraction as a percentage cell.
func Pct(frac float64) string {
	return fmt.Sprintf("%.1f%%", frac*100)
}

// Speedup formats a ratio as "N.NNx".
func Speedup(v float64) string {
	return fmt.Sprintf("%.2fx", v)
}

// Latencies accumulates per-operation latency samples for percentile
// reporting (satellite of DESIGN.md §12: serving-path benchmarks report
// p50/p95/p99, not just means — group commit trades a bounded latency
// floor for fsync amortization, and only the tail shows it).
type Latencies struct {
	samples []time.Duration
	sorted  bool
}

// Record adds one sample. Not safe for concurrent use; give each worker
// its own Latencies and Merge them.
func (l *Latencies) Record(d time.Duration) {
	l.samples = append(l.samples, d)
	l.sorted = false
}

// Merge folds other's samples into l.
func (l *Latencies) Merge(other *Latencies) {
	l.samples = append(l.samples, other.samples...)
	l.sorted = false
}

// N returns the sample count.
func (l *Latencies) N() int { return len(l.samples) }

// Percentile returns the nearest-rank p-th percentile (p in [0,100]).
func (l *Latencies) Percentile(p float64) time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	if !l.sorted {
		sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
		l.sorted = true
	}
	if p <= 0 {
		return l.samples[0]
	}
	rank := int(p/100*float64(len(l.samples))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(l.samples) {
		rank = len(l.samples) - 1
	}
	return l.samples[rank]
}

// P50, P95 and P99 are the percentiles the serving tables report.
func (l *Latencies) P50() time.Duration { return l.Percentile(50) }
func (l *Latencies) P95() time.Duration { return l.Percentile(95) }
func (l *Latencies) P99() time.Duration { return l.Percentile(99) }

// FmtDur formats a duration as a microsecond table cell.
func FmtDur(d time.Duration) string {
	return fmt.Sprintf("%.1fus", float64(d.Nanoseconds())/1e3)
}
