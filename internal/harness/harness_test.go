package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := Table{
		ID:      "figX",
		Title:   "test table",
		Note:    "line one\nline two",
		Headers: []string{"col", "value"},
		Rows: [][]string{
			{"a", "1"},
			{"longer-cell", "2"},
		},
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"figX", "test table", "line one", "line two", "longer-cell"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Columns align: every data line has the header's column width.
	lines := strings.Split(out, "\n")
	var header string
	for _, l := range lines {
		if strings.Contains(l, "col") && strings.Contains(l, "value") {
			header = l
			break
		}
	}
	if header == "" {
		t.Fatal("no header line rendered")
	}
	valueCol := strings.Index(header, "value")
	for _, l := range lines {
		if strings.HasPrefix(strings.TrimSpace(l), "longer-cell") {
			if l[valueCol:valueCol+1] != "2" {
				t.Fatalf("misaligned column:\n%s", out)
			}
		}
	}
}

func TestRegistry(t *testing.T) {
	e := Experiment{ID: "zztest", Paper: "none", Title: "registry test",
		Run: func(Params) []Table { return nil }}
	Register(e)
	got, ok := Lookup("zztest")
	if !ok || got.Title != "registry test" {
		t.Fatal("lookup failed")
	}
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Fatal("All() not sorted")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
		delete(registry, "zztest")
	}()
	Register(e)
}

func TestTimeOps(t *testing.T) {
	calls := 0
	ns := TimeOps(100, func(i int) { calls++ })
	if calls != 100 {
		t.Fatalf("fn called %d times", calls)
	}
	if ns < 0 {
		t.Fatalf("negative ns/op %f", ns)
	}
	if TimeOps(0, func(int) {}) != 0 {
		t.Fatal("TimeOps(0) not zero")
	}
}

func TestFormatters(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		5.4321: "5.43",
		42.19:  "42.2",
		1234.6: "1235",
	}
	for v, want := range cases {
		if got := Fmt(v); got != want {
			t.Fatalf("Fmt(%v) = %q, want %q", v, got, want)
		}
	}
	if Pct(0.123) != "12.3%" {
		t.Fatalf("Pct = %q", Pct(0.123))
	}
	if Speedup(2.5) != "2.50x" {
		t.Fatalf("Speedup = %q", Speedup(2.5))
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.N <= 0 || p.LeafCapacity != 510 || p.InternalFanout != 256 {
		t.Fatalf("unexpected defaults: %+v", p)
	}
	if len(p.Threads) == 0 {
		t.Fatal("no default thread ladder")
	}
}

func TestTableRenderCSV(t *testing.T) {
	tab := Table{
		ID:      "figY",
		Title:   "csv test",
		Headers: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}, {"3", "with,comma"}},
	}
	var buf bytes.Buffer
	if err := tab.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# figY: csv test", "a,b", "1,2", `"with,comma"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("csv missing %q:\n%s", want, out)
		}
	}
}
