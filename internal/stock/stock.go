// Package stock synthesizes intraday stock closing-price series standing in
// for the paper's real-world datasets (§5.5: NIFTY and SPXUSD one-minute
// closing prices). The originals are GitHub-hosted market dumps we cannot
// fetch offline; what the experiment needs from them is a stream that is
// near-sorted with an upward drift but whose K-L sortedness is implicit and
// irregular. A geometric random walk with drift, mean-reverting intraday
// volatility, session gaps and occasional shocks reproduces exactly those
// properties (and the sortedness package verifies the result is near-sorted
// without being sorted).
//
// Prices are quantized to integer ticks (hundredths) and de-duplicated by a
// per-minute sequence component so they can be used directly as index keys,
// mirroring how a time-series table would index (price) with uniqueness salt
// or (price, ts) composite keys.
package stock

import (
	"math"
	"math/rand"
)

// Series parameterizes a synthetic instrument.
type Series struct {
	// Name tags the instrument in experiment output ("NIFTY-like").
	Name string
	// Minutes is the number of one-minute closes to generate.
	Minutes int
	// Open is the starting price level (e.g. 8000 for a NIFTY-like index).
	Open float64
	// AnnualDrift is the exponential drift per year of minutes (e.g. 0.12
	// for a steadily rising index).
	AnnualDrift float64
	// AnnualVol is the annualized volatility (e.g. 0.18).
	AnnualVol float64
	// SessionMinutes is the length of a trading session; a small overnight
	// gap is applied between sessions.
	SessionMinutes int
	// GapVol is the extra volatility applied across session boundaries.
	GapVol float64
	// ShockProb is the per-minute probability of a fat-tailed shock.
	ShockProb float64
	// Momentum is the AR(1) coefficient on minute returns; real intraday
	// series trend in runs (sessions rally or sell off) rather than
	// coin-flipping per minute, and the index experiments are sensitive to
	// exactly that property.
	Momentum float64
	// TrendHours sets the relaxation time (in minutes-of-trading hours) of
	// the slowly-varying drift regime superimposed on the base drift.
	TrendHours float64
	// TrendStrength scales the regime drift relative to minute volatility.
	TrendStrength float64
	// Seed drives the generator.
	Seed int64
}

// NIFTYLike mimics the shape of the paper's NIFTY dataset: ~1.4M one-minute
// entries with a strong upward trend.
func NIFTYLike() Series {
	return Series{
		Name: "NIFTY-like", Minutes: 1_400_000, Open: 8000,
		AnnualDrift: 0.16, AnnualVol: 0.08, SessionMinutes: 375,
		GapVol: 0.004, ShockProb: 0.0004, Seed: 20151,
		Momentum: 0.40, TrendHours: 60, TrendStrength: 1.6,
	}
}

// SPXUSDLike mimics the paper's SPXUSD dataset: ~2.2M one-minute entries
// with a gentler upward trend.
func SPXUSDLike() Series {
	return Series{
		Name: "SPXUSD-like", Minutes: 2_200_000, Open: 1800,
		AnnualDrift: 0.11, AnnualVol: 0.09, SessionMinutes: 1380,
		GapVol: 0.003, ShockProb: 0.0003, Seed: 500500,
		Momentum: 0.35, TrendHours: 70, TrendStrength: 1.4,
	}
}

// minutesPerYear approximates a trading year of one-minute bars.
const minutesPerYear = 252 * 390

// ClosingPrices generates the price path in float64.
func (s Series) ClosingPrices() []float64 {
	rng := rand.New(rand.NewSource(s.Seed))
	out := make([]float64, s.Minutes)
	price := s.Open
	driftPerMin := s.AnnualDrift / minutesPerYear
	volPerMin := s.AnnualVol / math.Sqrt(minutesPerYear)
	session := s.SessionMinutes
	if session <= 0 {
		session = 390
	}
	// Slowly-varying drift regime (Ornstein-Uhlenbeck around zero) plus
	// AR(1) momentum on minute returns: together they produce the sustained
	// intraday trends that make real market series near-sorted at index
	// granularity.
	tau := s.TrendHours * 60
	if tau <= 0 {
		tau = 1
	}
	regime := 0.0
	regimeVol := s.TrendStrength * volPerMin / math.Sqrt(tau)
	prevShock := 0.0
	for i := 0; i < s.Minutes; i++ {
		regime += -regime/tau + regimeVol*rng.NormFloat64()
		shock := volPerMin * rng.NormFloat64()
		shock += s.Momentum * prevShock
		prevShock = shock
		r := driftPerMin + regime + shock
		if session > 0 && i > 0 && i%session == 0 {
			r += s.GapVol * rng.NormFloat64()
		}
		if s.ShockProb > 0 && rng.Float64() < s.ShockProb {
			// Fat tail: a multi-sigma move, sign-symmetric.
			r += 8 * volPerMin * rng.NormFloat64()
		}
		price *= 1 + r
		if price < 1 {
			price = 1
		}
		out[i] = price
	}
	return out
}

// Keys generates the integer index keys for the series: each close is
// quantized to hundredths (ticks) and shifted left 22 bits with the minute
// sequence in the low bits, guaranteeing uniqueness while preserving the
// price ordering that gives the stream its near-sortedness.
func (s Series) Keys() []int64 {
	prices := s.ClosingPrices()
	keys := make([]int64, len(prices))
	for i, p := range prices {
		tick := int64(p * 100)
		keys[i] = tick<<22 | int64(i&((1<<22)-1))
	}
	return keys
}
