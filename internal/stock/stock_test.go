package stock

import (
	"testing"

	"github.com/quittree/quit/internal/sortedness"
)

func small(s Series) Series {
	s.Minutes = 50000
	return s
}

func TestNearSortedButNotSorted(t *testing.T) {
	for _, s := range []Series{small(NIFTYLike()), small(SPXUSDLike())} {
		t.Run(s.Name, func(t *testing.T) {
			keys := s.Keys()
			m := sortedness.Measure(keys)
			if sortedness.IsSorted(keys) {
				t.Fatal("price keys fully sorted: no volatility?")
			}
			// The experiment premise: an overall upward trend implies
			// near-sortedness — well below a scrambled stream.
			if m.KFraction() > 0.9 {
				t.Fatalf("K fraction %.3f: stream is scrambled, not near-sorted", m.KFraction())
			}
			if m.KFraction() < 0.05 {
				t.Fatalf("K fraction %.3f: stream suspiciously sorted", m.KFraction())
			}
		})
	}
}

func TestKeysUniqueAndOrderPreserving(t *testing.T) {
	s := small(NIFTYLike())
	keys := s.Keys()
	seen := make(map[int64]bool, len(keys))
	for _, k := range keys {
		if seen[k] {
			t.Fatalf("duplicate key %d", k)
		}
		seen[k] = true
	}
	prices := s.ClosingPrices()
	// Key order preserves price order for distinct ticks.
	for i := 1; i < len(prices); i++ {
		ti, tj := int64(prices[i-1]*100), int64(prices[i]*100)
		if ti < tj && keys[i-1] >= keys[i] {
			t.Fatalf("key order broke price order at %d", i)
		}
	}
}

func TestUpwardDrift(t *testing.T) {
	// Drift dominates the trend regimes only over long horizons; use a
	// multi-year sample.
	s := NIFTYLike()
	s.Minutes = 600000
	prices := s.ClosingPrices()
	first := prices[:len(prices)/10]
	last := prices[len(prices)-len(prices)/10:]
	if avg(last) <= avg(first) {
		t.Fatalf("no upward drift: %f -> %f", avg(first), avg(last))
	}
	for _, p := range prices {
		if p < 1 {
			t.Fatal("price floor violated")
		}
	}
}

func TestDeterministic(t *testing.T) {
	a := small(SPXUSDLike()).Keys()
	b := small(SPXUSDLike()).Keys()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("series not deterministic at %d", i)
		}
	}
}

func avg(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
