package betree

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/quittree/quit/internal/bods"
)

func tiny() Config { return Config{Fanout: 4, BufferEntries: 8, LeafEntries: 8} }

func TestPutGetRoundTrip(t *testing.T) {
	tr := New(tiny())
	rng := rand.New(rand.NewSource(1))
	n := 20000
	perm := rng.Perm(n)
	for _, k := range perm {
		tr.Put(int64(k), int64(k)*3)
	}
	if tr.Len() > n {
		t.Fatalf("materialized Len = %d exceeds inserts %d", tr.Len(), n)
	}
	tr.FlushAll()
	if tr.Len() != n {
		t.Fatalf("Len = %d after FlushAll, want %d", tr.Len(), n)
	}
	for i := 0; i < n; i += 7 {
		v, ok := tr.Get(int64(i))
		if !ok || v != int64(i)*3 {
			t.Fatalf("Get(%d) = (%d,%v)", i, v, ok)
		}
	}
	if _, ok := tr.Get(int64(n) + 1); ok {
		t.Fatal("missing key reported present")
	}
	if tr.Height() < 3 {
		t.Fatalf("height = %d with tiny nodes", tr.Height())
	}
}

func TestOverwriteNewestWins(t *testing.T) {
	tr := New(tiny())
	for i := 0; i < 200; i++ {
		tr.Put(42, int64(i))
		if v, ok := tr.Get(42); !ok || v != int64(i) {
			t.Fatalf("round %d: Get = (%d,%v)", i, v, ok)
		}
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after overwrites", tr.Len())
	}
}

func TestDeleteTombstones(t *testing.T) {
	tr := New(tiny())
	for i := int64(0); i < 5000; i++ {
		tr.Put(i, i)
	}
	for i := int64(0); i < 5000; i += 2 {
		tr.Delete(i)
	}
	for i := int64(0); i < 5000; i++ {
		_, ok := tr.Get(i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) presence = %v, want %v", i, ok, want)
		}
	}
	tr.FlushAll()
	if tr.Len() != 2500 {
		t.Fatalf("Len = %d after flush, want 2500", tr.Len())
	}
	// Deleting a missing key is harmless.
	tr.Delete(1 << 40)
	tr.FlushAll()
	if tr.Len() != 2500 {
		t.Fatal("phantom delete changed size")
	}
}

func TestScanSortedComplete(t *testing.T) {
	tr := New(tiny())
	keys := bods.Generate(bods.Spec{N: 10000, K: 0.3, L: 1, Seed: 5})
	for _, k := range keys {
		tr.Put(k, k)
	}
	var got []int64
	tr.Scan(func(k, v int64) bool {
		if k != v {
			t.Fatalf("value mismatch at %d", k)
		}
		got = append(got, k)
		return true
	})
	if len(got) != len(keys) {
		t.Fatalf("scan yielded %d, want %d", len(got), len(keys))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("scan out of order")
	}
	// Early termination.
	count := 0
	tr.Scan(func(int64, int64) bool { count++; return count < 10 })
	if count != 10 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestInterleavedOracle(t *testing.T) {
	tr := New(tiny())
	rng := rand.New(rand.NewSource(8))
	oracle := map[int64]int64{}
	for op := 0; op < 30000; op++ {
		k := int64(rng.Intn(3000))
		if rng.Intn(3) == 0 {
			tr.Delete(k)
			delete(oracle, k)
		} else {
			v := int64(op)
			tr.Put(k, v)
			oracle[k] = v
		}
		if op%5000 == 0 {
			for probe := int64(0); probe < 3000; probe += 113 {
				gv, gok := tr.Get(probe)
				wv, wok := oracle[probe]
				if gok != wok || (gok && gv != wv) {
					t.Fatalf("op %d: Get(%d) = (%d,%v), want (%d,%v)", op, probe, gv, gok, wv, wok)
				}
			}
		}
	}
	tr.FlushAll()
	if tr.Len() != len(oracle) {
		t.Fatalf("Len = %d, oracle %d", tr.Len(), len(oracle))
	}
	for k, v := range oracle {
		if gv, ok := tr.Get(k); !ok || gv != v {
			t.Fatalf("post-flush Get(%d) = (%d,%v), want %d", k, gv, ok, v)
		}
	}
}

func TestBufferingAmortizesInserts(t *testing.T) {
	// The Bε-tree's reason to exist: far fewer leaf-level operations than
	// inserted messages early on, with flushes batching work.
	tr := New(Config{Fanout: 8, BufferEntries: 512, LeafEntries: 128})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100000; i++ {
		tr.Put(int64(rng.Intn(1<<30)), 1)
	}
	st := tr.Stats()
	if st.Flushes == 0 || st.FlushedMsg == 0 {
		t.Fatal("no flush activity")
	}
	if avg := float64(st.FlushedMsg) / float64(st.Flushes); avg < 8 {
		t.Fatalf("flush batches average %.1f messages; buffering is not amortizing", avg)
	}
}

func TestConfigDefaults(t *testing.T) {
	tr := New(Config{})
	if tr.cfg.Fanout < 3 || tr.cfg.BufferEntries < 8 || tr.cfg.LeafEntries < 4 {
		t.Fatalf("defaults: %+v", tr.cfg)
	}
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatal("fresh tree not empty")
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New(tiny())
	if _, ok := tr.Get(1); ok {
		t.Fatal("Get on empty tree")
	}
	tr.Delete(1)
	tr.FlushAll()
	tr.Scan(func(int64, int64) bool { t.Fatal("scan yielded on empty"); return false })
	if tr.Len() != 0 {
		t.Fatal("size drifted")
	}
}
