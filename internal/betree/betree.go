// Package betree implements a Bε-tree, the write-optimized B-tree variant
// the paper discusses in §5.4 and §6: the SWARE artifact originally packs a
// Bε-tree as its underlying index, and the related-work section positions
// Bε-trees as the classical way to amortize ingestion cost by buffering
// messages inside internal nodes and flushing them downward in batches.
//
// This implementation exists as a comparator: it demonstrates the
// "orthogonal complexities and overheads" the paper's authors avoided by
// using a plain B+-tree under SWARE, and it gives the benchmark suite a
// second ingestion-optimized baseline that is *not* sortedness-aware —
// Bε-trees amortize all insertions equally, whereas QuIT exploits order.
//
// Design: internal nodes carry pivots, children and an append-ordered
// message buffer (upserts and delete tombstones). When a buffer overflows,
// the messages bound for the child with the most pending messages are
// flushed down one level (applied directly at leaves). Point lookups check
// buffers newest-first along the root-to-leaf path. Range scans first force
// all buffered messages down (FlushAll), then walk the leaf chain.
package betree

import "sort"

type msgKind uint8

const (
	msgPut msgKind = iota
	msgDelete
)

type message struct {
	key  int64
	val  int64
	kind msgKind
}

type node struct {
	// Internal fields; children == nil means leaf.
	pivots   []int64
	children []*node
	buf      []message

	// Leaf fields.
	keys []int64
	vals []int64
	next *node
}

func (n *node) isLeaf() bool { return n.children == nil }

// Config parameterizes the tree. The zero value selects fanout 16 with
// 256-message buffers and 256-entry leaves (a common ε≈0.5 configuration:
// small fanout, large buffers).
type Config struct {
	// Fanout is the maximum number of children of an internal node.
	Fanout int
	// BufferEntries is the message-buffer capacity per internal node.
	BufferEntries int
	// LeafEntries is the entry capacity per leaf.
	LeafEntries int
}

func (c Config) withDefaults() Config {
	if c.Fanout < 3 {
		c.Fanout = 16
	}
	if c.BufferEntries < 8 {
		c.BufferEntries = 256
	}
	if c.LeafEntries < 4 {
		c.LeafEntries = 256
	}
	return c
}

// Stats counts Bε-tree events.
type Stats struct {
	Puts       int64
	Deletes    int64
	Flushes    int64 // buffer flush operations
	FlushedMsg int64 // messages moved down
	LeafSplits int64
	Lookups    int64
	BufferHits int64 // lookups answered by a buffered message
}

// Tree is a single-goroutine Bε-tree over int64 keys and values.
type Tree struct {
	cfg    Config
	root   *node
	head   *node
	size   int
	height int
	st     Stats
}

// New creates an empty Bε-tree.
func New(cfg Config) *Tree {
	cfg = cfg.withDefaults()
	leaf := &node{
		keys: make([]int64, 0, cfg.LeafEntries),
		vals: make([]int64, 0, cfg.LeafEntries),
	}
	return &Tree{cfg: cfg, root: leaf, head: leaf, height: 1}
}

// Len returns the number of entries materialized in leaves. Messages still
// buffered in internal nodes are not counted — a Bε-tree cannot know its
// exact size without resolving them; call FlushAll first for an exact
// count. (This is one of the "orthogonal complexities" of write-optimized
// designs that the paper's lightweight QuIT avoids.)
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels.
func (t *Tree) Height() int { return t.height }

// Stats returns the operation counters.
func (t *Tree) Stats() Stats { return t.st }

// Put inserts or overwrites key.
func (t *Tree) Put(key, val int64) {
	t.st.Puts++
	t.apply(message{key: key, val: val, kind: msgPut})
}

// Delete removes key (a no-op if absent). Unlike a B+-tree delete it cannot
// report the removed value without a lookup: deletion is an asynchronous
// tombstone message.
func (t *Tree) Delete(key int64) {
	t.st.Deletes++
	t.apply(message{key: key, kind: msgDelete})
}

// apply routes one message into the root, flushing as needed.
func (t *Tree) apply(m message) {
	if t.root.isLeaf() {
		t.applyToLeaf(t.root, m)
		t.maybeSplitRootLeaf()
		return
	}
	t.root.buf = append(t.root.buf, m)
	for n := t.root; !n.isLeaf() && len(n.buf) > t.cfg.BufferEntries; {
		child := t.flush(n)
		n = child
	}
	t.maybeGrowRoot()
}

// flush moves the buffered messages bound for n's busiest child down one
// level, returning that child (so the caller can cascade).
func (t *Tree) flush(n *node) *node {
	t.st.Flushes++
	counts := make([]int, len(n.children))
	for _, m := range n.buf {
		counts[route(n.pivots, m.key)]++
	}
	best := 0
	for i, c := range counts {
		if c > counts[best] {
			best = i
		}
	}
	child := n.children[best]
	kept := n.buf[:0]
	var moving []message
	for _, m := range n.buf {
		if route(n.pivots, m.key) == best {
			moving = append(moving, m)
		} else {
			kept = append(kept, m)
		}
	}
	n.buf = kept
	t.st.FlushedMsg += int64(len(moving))

	if child.isLeaf() {
		for i, m := range moving {
			t.applyToLeaf(child, m)
			if len(child.keys) > t.cfg.LeafEntries {
				t.splitLeafChild(n, child)
				// The routing pivots changed: push the remainder back into
				// n's buffer so later messages re-route (possibly to the
				// new sibling). Progress is guaranteed — at least i+1
				// messages were applied.
				if i+1 < len(moving) {
					n.buf = append(n.buf, moving[i+1:]...)
				}
				return child
			}
		}
		return child
	}
	child.buf = append(child.buf, moving...)
	if len(child.children) > t.cfg.Fanout {
		t.splitInternalChild(n, child)
	}
	return child
}

// applyToLeaf resolves one message against a leaf.
func (t *Tree) applyToLeaf(leaf *node, m message) {
	i := sort.Search(len(leaf.keys), func(i int) bool { return leaf.keys[i] >= m.key })
	present := i < len(leaf.keys) && leaf.keys[i] == m.key
	switch m.kind {
	case msgPut:
		if present {
			leaf.vals[i] = m.val
			return
		}
		leaf.keys = append(leaf.keys, 0)
		copy(leaf.keys[i+1:], leaf.keys[i:])
		leaf.keys[i] = m.key
		leaf.vals = append(leaf.vals, 0)
		copy(leaf.vals[i+1:], leaf.vals[i:])
		leaf.vals[i] = m.val
		t.size++
	case msgDelete:
		if !present {
			return
		}
		copy(leaf.keys[i:], leaf.keys[i+1:])
		leaf.keys = leaf.keys[:len(leaf.keys)-1]
		copy(leaf.vals[i:], leaf.vals[i+1:])
		leaf.vals = leaf.vals[:len(leaf.vals)-1]
		t.size--
	}
}

func (t *Tree) maybeSplitRootLeaf() {
	if !t.root.isLeaf() || len(t.root.keys) <= t.cfg.LeafEntries {
		return
	}
	leaf := t.root
	right := t.splitLeaf(leaf)
	t.root = &node{
		pivots:   []int64{right.keys[0]},
		children: []*node{leaf, right},
	}
	t.height++
}

func (t *Tree) maybeGrowRoot() {
	if t.root.isLeaf() || len(t.root.children) <= t.cfg.Fanout {
		return
	}
	old := t.root
	mid := len(old.pivots) / 2
	up := old.pivots[mid]
	right := &node{
		pivots:   append([]int64(nil), old.pivots[mid+1:]...),
		children: append([]*node(nil), old.children[mid+1:]...),
	}
	old.pivots = old.pivots[:mid]
	old.children = old.children[:mid+1]
	// Partition the old root's buffer.
	var lbuf, rbuf []message
	for _, m := range old.buf {
		if m.key >= up {
			rbuf = append(rbuf, m)
		} else {
			lbuf = append(lbuf, m)
		}
	}
	old.buf, right.buf = lbuf, rbuf
	t.root = &node{pivots: []int64{up}, children: []*node{old, right}}
	t.height++
}

// splitLeaf splits a leaf in half and links the new right node.
func (t *Tree) splitLeaf(leaf *node) *node {
	mid := len(leaf.keys) / 2
	right := &node{
		keys: append(make([]int64, 0, t.cfg.LeafEntries), leaf.keys[mid:]...),
		vals: append(make([]int64, 0, t.cfg.LeafEntries), leaf.vals[mid:]...),
		next: leaf.next,
	}
	leaf.keys = leaf.keys[:mid]
	leaf.vals = leaf.vals[:mid]
	leaf.next = right
	t.st.LeafSplits++
	return right
}

// splitLeafChild splits parent's overflowing leaf child and wires the pivot.
func (t *Tree) splitLeafChild(parent, leaf *node) {
	right := t.splitLeaf(leaf)
	pivot := right.keys[0]
	i := route(parent.pivots, pivot)
	parent.pivots = append(parent.pivots, 0)
	copy(parent.pivots[i+1:], parent.pivots[i:])
	parent.pivots[i] = pivot
	parent.children = append(parent.children, nil)
	copy(parent.children[i+2:], parent.children[i+1:])
	parent.children[i+1] = right
}

// splitInternalChild splits parent's overflowing internal child.
func (t *Tree) splitInternalChild(parent, child *node) {
	mid := len(child.pivots) / 2
	up := child.pivots[mid]
	right := &node{
		pivots:   append([]int64(nil), child.pivots[mid+1:]...),
		children: append([]*node(nil), child.children[mid+1:]...),
	}
	child.pivots = child.pivots[:mid]
	child.children = child.children[:mid+1]
	var lbuf, rbuf []message
	for _, m := range child.buf {
		if m.key >= up {
			rbuf = append(rbuf, m)
		} else {
			lbuf = append(lbuf, m)
		}
	}
	child.buf, right.buf = lbuf, rbuf

	i := route(parent.pivots, up)
	parent.pivots = append(parent.pivots, 0)
	copy(parent.pivots[i+1:], parent.pivots[i:])
	parent.pivots[i] = up
	parent.children = append(parent.children, nil)
	copy(parent.children[i+2:], parent.children[i+1:])
	parent.children[i+1] = right
}

func route(pivots []int64, key int64) int {
	lo, hi := 0, len(pivots)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pivots[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the value for key, resolving buffered messages newest-first
// along the path — the Bε-tree's read amplification.
func (t *Tree) Get(key int64) (int64, bool) {
	t.st.Lookups++
	n := t.root
	for !n.isLeaf() {
		for i := len(n.buf) - 1; i >= 0; i-- {
			if n.buf[i].key == key {
				t.st.BufferHits++
				if n.buf[i].kind == msgDelete {
					return 0, false
				}
				return n.buf[i].val, true
			}
		}
		n = n.children[route(n.pivots, key)]
	}
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
	if i < len(n.keys) && n.keys[i] == key {
		return n.vals[i], true
	}
	return 0, false
}

// FlushAll forces every buffered message down to the leaves (needed before
// Scan; also how a Bε-tree would checkpoint). Internal nodes may be left
// temporarily wider than the fanout; they are split lazily the next time
// their parent flushes into them, which only affects node width, never
// correctness.
func (t *Tree) FlushAll() {
	var drain func(n *node)
	drain = func(n *node) {
		if n.isLeaf() {
			return
		}
		// Each flush applies or moves at least one message, so this
		// terminates even when leaf splits push remainders back.
		for len(n.buf) > 0 {
			t.flush(n)
		}
		for i := 0; i < len(n.children); i++ {
			drain(n.children[i])
		}
	}
	drain(t.root)
	t.maybeGrowRoot()
}

// Scan visits all entries in ascending key order after forcing buffers
// down. fn must not modify the tree.
func (t *Tree) Scan(fn func(k, v int64) bool) {
	t.FlushAll()
	for n := t.head; n != nil; n = n.next {
		for i := range n.keys {
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
	}
}
