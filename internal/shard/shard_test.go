package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"syscall"
	"testing"

	"github.com/quittree/quit"
	"github.com/quittree/quit/internal/faultio"
)

const storeDir = "/store"

func memOpts(fs *faultio.MemFS, shards int) quit.ShardedOptions {
	return quit.ShardedOptions{
		DurableOptions: quit.DurableOptions{
			Options: quit.Options{LeafCapacity: 16, InternalFanout: 8},
			Sync:    quit.SyncAlways,
			FS:      fs,
		},
		Shards: shards,
	}
}

func evenSample(n int, max int64) []int64 {
	s := make([]int64, n)
	for i := range s {
		s[i] = int64(i) * max / int64(n)
	}
	return s
}

func TestShardedBasic(t *testing.T) {
	fs := faultio.NewMemFS()
	st, err := Open[int64, string](storeDir, memOpts(fs, 4), evenSample(256, 1<<16))
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", st.Shards())
	}

	// A scrambled batch spanning all shards.
	rng := rand.New(rand.NewSource(3))
	n := 2000
	keys := make([]int64, n)
	vals := make([]string, n)
	for i := range keys {
		keys[i] = rng.Int63n(1 << 16)
		vals[i] = fmt.Sprintf("v%d", keys[i])
	}
	res, err := st.PutBatch(keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != n {
		t.Fatalf("len(res) = %d, want %d", len(res), n)
	}
	// Results arrive in caller order with Put's sequential semantics:
	// position i existed iff the key appeared earlier in the batch.
	seen := map[int64]bool{}
	distinct := 0
	for i, k := range keys {
		if res[i].Existed != seen[k] {
			t.Fatalf("res[%d].Existed = %v for key %d, want %v", i, res[i].Existed, k, seen[k])
		}
		if !seen[k] {
			distinct++
		}
		seen[k] = true
	}
	if st.Len() != distinct {
		t.Fatalf("Len() = %d, want %d", st.Len(), distinct)
	}
	for k := range seen {
		if v, ok := st.Get(k); !ok || v != fmt.Sprintf("v%d", k) {
			t.Fatalf("Get(%d) = %q,%v", k, v, ok)
		}
	}

	// Merged iteration: Scan yields ascending order across shard seams.
	prev := int64(-1)
	count := 0
	st.Scan(func(k int64, v string) bool {
		if k <= prev {
			t.Fatalf("Scan out of order at shard seam: %d after %d", k, prev)
		}
		prev = k
		count++
		return true
	})
	if count != distinct {
		t.Fatalf("Scan visited %d, want %d", count, distinct)
	}

	// Range straddling a shard boundary.
	bounds := st.Router().Bounds()
	lo, hi := bounds[1]-100, bounds[1]+100
	want := 0
	for k := range seen {
		if k >= lo && k < hi {
			want++
		}
	}
	got := 0
	prev = lo - 1
	st.Range(lo, hi, func(k int64, v string) bool {
		if k < lo || k >= hi || k <= prev {
			t.Fatalf("Range yielded %d outside/out-of-order for [%d,%d)", k, lo, hi)
		}
		prev = k
		got++
		return true
	})
	if got != want {
		t.Fatalf("Range visited %d, want %d", got, want)
	}
	// Early stop is honored across shards.
	visited := 0
	st.Range(0, 1<<16, func(int64, string) bool {
		visited++
		return visited < 10
	})
	if visited != 10 {
		t.Fatalf("Range visited %d after early stop, want 10", visited)
	}

	if k, _, ok := st.Min(); !ok || st.ShardFor(k) != 0 && st.Shard(0).Len() > 0 {
		t.Fatalf("Min() = %d,%v not from the first non-empty shard", k, ok)
	}
	if _, _, ok := st.Max(); !ok {
		t.Fatal("Max() reported empty store")
	}

	// Single-key routing paths.
	if _, _, err := st.Put(42, "answer"); err != nil {
		t.Fatal(err)
	}
	if v, ok := st.Get(42); !ok || v != "answer" {
		t.Fatalf("Get(42) = %q,%v", v, ok)
	}
	if _, existed, err := st.Delete(42); err != nil || !existed {
		t.Fatalf("Delete(42) = existed=%v err=%v", existed, err)
	}

	c := st.Counters()
	if c.RoutedBatches != 1 || c.RoutedKeys != uint64(n) {
		t.Fatalf("Counters = %+v, want 1 routed batch of %d keys", c, n)
	}
	if c.ShardBatches < 2 {
		t.Fatalf("ShardBatches = %d, want fan-out across shards", c.ShardBatches)
	}
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestShardedReopenManifestAuthoritative(t *testing.T) {
	fs := faultio.NewMemFS()
	st, err := Open[int64, string](storeDir, memOpts(fs, 4), evenSample(64, 1000))
	if err != nil {
		t.Fatal(err)
	}
	wantBounds := st.Router().Bounds()
	keys := []int64{1, 250, 500, 750, 999}
	vals := []string{"a", "b", "c", "d", "e"}
	if _, err := st.PutBatch(keys, vals); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen asking for a different layout: the manifest wins, or keys
	// written under the old boundaries would become unreachable.
	st2, err := Open[int64, string](storeDir, memOpts(fs, 8), evenSample(64, 5))
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Shards() != 4 {
		t.Fatalf("reopen Shards() = %d, want manifest's 4", st2.Shards())
	}
	gotBounds := st2.Router().Bounds()
	for i := range wantBounds {
		if gotBounds[i] != wantBounds[i] {
			t.Fatalf("reopen bounds = %v, want %v", gotBounds, wantBounds)
		}
	}
	for i, k := range keys {
		if v, ok := st2.Get(k); !ok || v != vals[i] {
			t.Fatalf("Get(%d) after reopen = %q,%v, want %q", k, v, ok, vals[i])
		}
	}
	for _, rec := range st2.Recovery() {
		if rec.SegmentsReplayed == 0 && rec.Snapshot == "" && st2.Len() > 0 {
			continue // empty shard: nothing to recover
		}
	}
}

func TestShardedManifestCorrupt(t *testing.T) {
	fs := faultio.NewMemFS()
	st, err := Open[int64, string](storeDir, memOpts(fs, 4), nil)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	f, err := fs.Create(storeDir + "/MANIFEST")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("quit-shard-manifest v1\nshards 3\nbound 10\nbound 5\n"))
	f.Close()
	if _, err := Open[int64, string](storeDir, memOpts(fs, 4), nil); err == nil {
		t.Fatal("Open accepted a manifest with decreasing boundaries")
	}
}

func TestShardedOptionsValidated(t *testing.T) {
	fs := faultio.NewMemFS()
	opts := memOpts(fs, 4)
	opts.GapFraction = 1.5
	if _, err := Open[int64, string](storeDir, opts, nil); !errors.Is(err, quit.ErrInvalidOptions) {
		t.Fatalf("Open with GapFraction=1.5 = %v, want ErrInvalidOptions", err)
	}
	if _, err := Open[int64, string](storeDir, memOpts(fs, 300), nil); err == nil {
		t.Fatal("Open accepted 300 shards (> MaxShards)")
	}
}

// TestShardedCrashMatrix is the single-shard fault scenario: one shard's
// WAL hits ENOSPC and degrades read-only while every other shard keeps
// serving reads AND writes; Recover() re-arms the degraded shard; and a
// crash image taken mid-degradation reopens with every acknowledged
// write on every shard.
func TestShardedCrashMatrix(t *testing.T) {
	fs := faultio.NewMemFS()
	st, err := Open[int64, string](storeDir, memOpts(fs, 4), evenSample(256, 4000))
	if err != nil {
		t.Fatal(err)
	}
	// Seed every shard.
	var seedKeys []int64
	var seedVals []string
	for k := int64(0); k < 4000; k += 10 {
		seedKeys = append(seedKeys, k)
		seedVals = append(seedVals, fmt.Sprintf("seed%d", k))
	}
	if _, err := st.PutBatch(seedKeys, seedVals); err != nil {
		t.Fatal(err)
	}

	// Kill shard 1's WAL: every fsync in its subdirectory reports
	// disk-full, forever.
	const victim = 1
	fs.FailSyncTimes(fmt.Sprintf("shard-%03d/wal-", victim), faultio.ErrNoSpace, -1)

	bounds := st.Router().Bounds()
	victimKey := bounds[0] + 1 // owned by shard 1
	if got := st.ShardFor(victimKey); got != victim {
		t.Fatalf("ShardFor(%d) = %d, want %d", victimKey, got, victim)
	}
	err = st.Insert(victimKey, "doomed")
	if !errors.Is(err, quit.ErrReadOnly) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("write to failed shard = %v, want ErrReadOnly wrapping ENOSPC", err)
	}
	if !st.DurabilityStats().ReadOnly {
		t.Fatal("aggregated DurabilityStats().ReadOnly = false with a degraded shard")
	}

	// The other shards keep accepting durable writes...
	healthy := []int64{5, bounds[1] + 5, bounds[2] + 5} // shards 0, 2, 3
	for _, k := range healthy {
		if st.ShardFor(k) == victim {
			t.Fatalf("test key %d unexpectedly routed to victim", k)
		}
		if err := st.Insert(k, "alive"); err != nil {
			t.Fatalf("write to healthy shard (key %d): %v", k, err)
		}
	}
	// ...and the degraded shard keeps serving reads of its pre-failure state.
	if v, ok := st.Get(seedKeys[len(seedKeys)/4]); !ok || v == "" {
		t.Fatalf("degraded-era read = %q,%v", v, ok)
	}

	// A batch spanning victim and healthy shards reports the failure but
	// the healthy sub-batches are applied and durable.
	mixKeys := []int64{7, victimKey + 2, bounds[2] + 7}
	mixVals := []string{"m0", "m1", "m2"}
	if _, err := st.PutBatch(mixKeys, mixVals); !errors.Is(err, quit.ErrReadOnly) {
		t.Fatalf("mixed batch = %v, want ErrReadOnly from victim sub-batch", err)
	}
	if v, ok := st.Get(mixKeys[0]); !ok || v != "m0" {
		t.Fatalf("healthy sub-batch lost: Get(%d) = %q,%v", mixKeys[0], v, ok)
	}
	if _, ok := st.Get(mixKeys[1]); ok {
		t.Fatalf("victim sub-batch visible despite failed commit")
	}

	// Crash now: the synced image must reopen with every acknowledged
	// write — seeds, healthy-era inserts, healthy sub-batches — and
	// nothing from the rejected victim writes.
	image := fs.ImageAt(faultio.Cut{Event: len(fs.Events()), SyncedOnly: true})
	fs2 := faultio.FromImage(image)
	st2, err := Open[int64, string](storeDir, memOpts(fs2, 0), nil)
	if err != nil {
		t.Fatalf("reopen from crash image: %v", err)
	}
	if st2.Shards() != 4 {
		t.Fatalf("crash image Shards() = %d, want 4", st2.Shards())
	}
	for i, k := range seedKeys {
		if v, ok := st2.Get(k); !ok || v != seedVals[i] {
			t.Fatalf("crash image lost seed %d: %q,%v", k, v, ok)
		}
	}
	for _, k := range healthy {
		if v, ok := st2.Get(k); !ok || v != "alive" {
			t.Fatalf("crash image lost acknowledged healthy write %d: %q,%v", k, v, ok)
		}
	}
	if _, ok := st2.Get(victimKey); ok {
		t.Fatal("crash image contains a write that was never acknowledged")
	}
	st2.Close()

	// Back on the live store: space frees, Recover re-arms the victim
	// (healthy shards are no-ops), and writes flow everywhere again.
	fs.ClearFaults()
	if err := st.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if st.DurabilityStats().ReadOnly {
		t.Fatal("still read-only after successful Recover")
	}
	if err := st.Insert(victimKey, "recovered"); err != nil {
		t.Fatalf("write to recovered shard: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestShardedCheckpointFansOut(t *testing.T) {
	fs := faultio.NewMemFS()
	st, err := Open[int64, string](storeDir, memOpts(fs, 2), evenSample(16, 100))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.PutBatch([]int64{1, 99}, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	before := st.DurabilityStats().Checkpoints
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after := st.DurabilityStats().Checkpoints
	if after != before+2 {
		t.Fatalf("Checkpoints %d -> %d, want +2 (one per shard)", before, after)
	}
	if st.DurabilityStats().Fsyncs == 0 {
		t.Fatal("aggregated Fsyncs = 0 after synced writes and checkpoints")
	}
}
