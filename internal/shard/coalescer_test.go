package shard

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/quittree/quit"
	"github.com/quittree/quit/internal/faultio"
)

// TestCoalescerStress drives 64 concurrent clients through the batch
// former (run under -race in CI): every Put must be durable when it
// returns, no write may be lost or duplicated, and the group former must
// actually amortize — far fewer batches than ops.
func TestCoalescerStress(t *testing.T) {
	fs := faultio.NewMemFS()
	st, err := Open[int64, string](storeDir, memOpts(fs, 4), evenSample(256, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	co := NewCoalescer(st, 128, time.Millisecond, nil)

	const clients = 64
	opsPer := 50
	if testing.Short() {
		opsPer = 10
	}
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				// Unique key per (client, op): lost or duplicated writes
				// become countable.
				k := int64(g)<<32 | int64(i)
				v := fmt.Sprintf("c%d-%d", g, i)
				if err := co.Put(k, v); err != nil {
					errCh <- fmt.Errorf("client %d put %d: %w", g, i, err)
					return
				}
				// Ack contract: the write is readable the moment Put
				// returns (it was applied before its group's ack).
				if got, ok := st.Get(k); !ok || got != v {
					errCh <- fmt.Errorf("client %d: acked write %d unreadable: %q,%v", g, i, got, ok)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	co.Close()

	total := clients * opsPer
	if st.Len() != total {
		t.Fatalf("Len() = %d, want %d (lost or duplicated writes)", st.Len(), total)
	}
	c := co.Counters()
	if c.CoalescedOps != uint64(total) {
		t.Fatalf("CoalescedOps = %d, want %d", c.CoalescedOps, total)
	}
	if c.CoalescedBatches == 0 || c.CoalescedBatches >= c.CoalescedOps {
		t.Fatalf("CoalescedBatches = %d for %d ops: no amortization", c.CoalescedBatches, c.CoalescedOps)
	}
	// Durability of the acks: a crash image taken now must hold them all.
	image := fs.ImageAt(faultio.Cut{Event: len(fs.Events()), SyncedOnly: true})
	st2, err := Open[int64, string](storeDir, memOpts(faultio.FromImage(image), 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != total {
		t.Fatalf("crash image Len() = %d, want %d acked writes", st2.Len(), total)
	}
	st2.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCoalescerErrorPropagation(t *testing.T) {
	fs := faultio.NewMemFS()
	st, err := Open[int64, string](storeDir, memOpts(fs, 2), evenSample(16, 1000))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	co := NewCoalescer(st, 64, time.Millisecond, nil)
	defer co.Close()

	if err := co.Put(1, "ok"); err != nil {
		t.Fatal(err)
	}
	// Shard 1's disk fills: its writers must be acked with the commit's
	// real error, while shard 0 writers keep succeeding.
	fs.FailSyncTimes("shard-001/wal-", faultio.ErrNoSpace, -1)
	bounds := st.Router().Bounds()
	if err := co.Put(bounds[0]+1, "doomed"); !errors.Is(err, quit.ErrReadOnly) {
		t.Fatalf("Put to failed shard = %v, want ErrReadOnly", err)
	}
	if err := co.Put(2, "still-ok"); err != nil {
		t.Fatalf("Put to healthy shard = %v", err)
	}
}

func TestCoalescerClosePutRejected(t *testing.T) {
	fs := faultio.NewMemFS()
	st, err := Open[int64, string](storeDir, memOpts(fs, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	co := NewCoalescer(st, 8, time.Millisecond, nil)
	if err := co.Put(1, "a"); err != nil {
		t.Fatal(err)
	}
	co.Close()
	if err := co.Put(2, "b"); !errors.Is(err, ErrCoalescerClosed) {
		t.Fatalf("Put after Close = %v, want ErrCoalescerClosed", err)
	}
	if _, ok := st.Get(1); !ok {
		t.Fatal("pre-Close write lost")
	}
	co.Close() // idempotent
}
