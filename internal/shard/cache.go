package shard

import (
	"container/list"
	"sync"
	"sync/atomic"

	"github.com/quittree/quit"
)

// Cache is a sharded ("way"-split) hot-key LRU read cache with write
// invalidation. Correctness depends on one ordering rule, enforced
// structurally here and by the coalescer's AfterCommit hook:
//
//   - GetOrLoad holds the key's way lock across the tree read AND the
//     cache fill, so a fill and an invalidation of the same key are
//     serialized — an invalidation either precedes the fill's tree read
//     (the fill then loads the new value) or follows the fill (and
//     removes it).
//   - Writers invalidate after their group commit applies and before
//     they are acknowledged, so once a write is acked, no later read of
//     that key can be served a pre-write cached value.
//
// Together: no stale read after an acknowledged write, without any
// global lock on the read path.
type Cache[K quit.Integer, V any] struct {
	ways  []cacheWay[K, V]
	shift uint // way = hash(key) >> shift
	cap   int  // per-way entry budget

	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64
}

type cacheWay[K quit.Integer, V any] struct {
	mu  sync.Mutex
	m   map[K]*list.Element
	lru list.List // front = most recently used
}

type cacheEntry[K quit.Integer, V any] struct {
	key K
	val V
}

// NewCache builds a cache holding about capacity entries split across
// ways independently locked segments (rounded up to a power of two;
// <=0 selects 16 ways and a 4096-entry capacity).
func NewCache[K quit.Integer, V any](capacity, ways int) *Cache[K, V] {
	if capacity <= 0 {
		capacity = 4096
	}
	if ways <= 0 {
		ways = 16
	}
	w := 1
	for w < ways {
		w <<= 1
	}
	perWay := (capacity + w - 1) / w
	if perWay < 1 {
		perWay = 1
	}
	c := &Cache[K, V]{
		ways: make([]cacheWay[K, V], w),
		cap:  perWay,
	}
	bits := uint(0)
	for 1<<bits < w {
		bits++
	}
	c.shift = 64 - bits
	for i := range c.ways {
		c.ways[i].m = make(map[K]*list.Element)
		c.ways[i].lru.Init()
	}
	return c
}

func (c *Cache[K, V]) way(key K) *cacheWay[K, V] {
	if len(c.ways) == 1 {
		return &c.ways[0]
	}
	// Fibonacci multiplicative hash: low-entropy integer keys (dense,
	// strided) still spread across ways via the top bits.
	h := uint64(key) * 0x9E3779B97F4A7C15
	return &c.ways[h>>c.shift]
}

// GetOrLoad returns the cached value for key, or loads it through load
// (a tree read) and caches the result. The way lock is held across the
// load on purpose — see the type comment for why this is load-bearing.
// A load that reports the key absent caches nothing.
func (c *Cache[K, V]) GetOrLoad(key K, load func(K) (V, bool)) (V, bool) {
	w := c.way(key)
	w.mu.Lock()
	defer w.mu.Unlock()
	if e, ok := w.m[key]; ok {
		w.lru.MoveToFront(e)
		c.hits.Add(1)
		return e.Value.(*cacheEntry[K, V]).val, true
	}
	c.misses.Add(1)
	v, ok := load(key)
	if !ok {
		var zero V
		return zero, false
	}
	w.m[key] = w.lru.PushFront(&cacheEntry[K, V]{key: key, val: v})
	if w.lru.Len() > c.cap {
		old := w.lru.Back()
		w.lru.Remove(old)
		delete(w.m, old.Value.(*cacheEntry[K, V]).key)
	}
	return v, true
}

// Invalidate drops key from the cache if present.
func (c *Cache[K, V]) Invalidate(key K) {
	w := c.way(key)
	w.mu.Lock()
	if e, ok := w.m[key]; ok {
		w.lru.Remove(e)
		delete(w.m, key)
		c.invalidations.Add(1)
	}
	w.mu.Unlock()
}

// InvalidateBatch drops every key in keys — the coalescer's AfterCommit
// hook calls this with a committed group's keys.
func (c *Cache[K, V]) InvalidateBatch(keys []K) {
	for _, k := range keys {
		c.Invalidate(k)
	}
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int {
	total := 0
	for i := range c.ways {
		c.ways[i].mu.Lock()
		total += c.ways[i].lru.Len()
		c.ways[i].mu.Unlock()
	}
	return total
}

// CacheCounters snapshots the cache's accounting.
type CacheCounters struct {
	CacheHits          uint64 // reads served from cache
	CacheMisses        uint64 // reads that went to the tree
	CacheInvalidations uint64 // entries actually removed by writes
}

// Counters snapshots the cache's accounting.
func (c *Cache[K, V]) Counters() CacheCounters {
	return CacheCounters{
		CacheHits:          c.hits.Load(),
		CacheMisses:        c.misses.Load(),
		CacheInvalidations: c.invalidations.Load(),
	}
}
