package shard

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"github.com/quittree/quit"
)

// ErrCoalescerClosed is returned by Put after Close.
var ErrCoalescerClosed = errors.New("shard: coalescer closed")

// Coalescer turns many concurrent single-key writers into per-shard
// PutBatch groups: Put enqueues onto the owning shard's queue and blocks;
// a per-shard flusher forms a time/size-bounded batch, applies it as one
// durable PutBatch (one WAL record, one fsync for the whole group), and
// only then acknowledges every writer in the group. With W concurrent
// writers the fsync cost per acknowledged write approaches 1/W — the
// classic group-commit amortization, formed here at the server rather
// than asked of clients.
//
// Error discipline: a writer is acknowledged with exactly the error its
// batch's PutBatch returned. Acks never precede the commit (this ordering
// is machine-checked by quitlint's walorder analyzer).
type Coalescer[K quit.Integer, V any] struct {
	router      Router[K]
	maxBatch    int
	maxDelay    time.Duration
	afterCommit func(keys []K)

	queues []*shardQueue[K, V]
	stop   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	ops     atomic.Uint64
	batches atomic.Uint64
}

type shardQueue[K quit.Integer, V any] struct {
	tree *quit.DurableTree[K, V]

	mu    sync.Mutex
	keys  []K
	vals  []V
	dones []chan error

	kick chan struct{} // cap 1: repeated signals coalesce
}

// NewCoalescer starts one flusher goroutine per shard of t.
//
// maxBatch flushes a shard's queue as soon as it holds that many pending
// writes (<=0 selects 256). maxDelay bounds how long the first writer in
// a group waits for company before the batch is flushed anyway (<=0
// selects 2ms), so every ack arrives within ~maxDelay + one group
// commit. afterCommit, if non-nil, runs after a batch's group commit
// succeeds and before any of its writers are acknowledged — the hook the
// server uses to invalidate cached keys, so no acknowledged write can be
// shadowed by a stale cache entry.
func NewCoalescer[K quit.Integer, V any](t *Tree[K, V], maxBatch int, maxDelay time.Duration, afterCommit func(keys []K)) *Coalescer[K, V] {
	if maxBatch <= 0 {
		maxBatch = 256
	}
	if maxDelay <= 0 {
		maxDelay = 2 * time.Millisecond
	}
	c := &Coalescer[K, V]{
		router:      t.router, // route with the tree's own boundaries
		maxBatch:    maxBatch,
		maxDelay:    maxDelay,
		afterCommit: afterCommit,
		stop:        make(chan struct{}),
	}
	for i := 0; i < t.Shards(); i++ {
		q := &shardQueue[K, V]{
			tree: t.Shard(i),
			kick: make(chan struct{}, 1),
		}
		c.queues = append(c.queues, q)
		c.wg.Add(1)
		go c.flusher(q)
	}
	return c
}

// Put enqueues one write and blocks until its group's commit is durable,
// returning that commit's error. Safe for any number of concurrent
// callers.
func (c *Coalescer[K, V]) Put(key K, val V) error {
	q := c.queues[c.router.ShardFor(key)]
	done := make(chan error, 1)
	q.mu.Lock()
	if c.closed.Load() {
		q.mu.Unlock()
		return ErrCoalescerClosed
	}
	q.keys = append(q.keys, key)
	q.vals = append(q.vals, val)
	q.dones = append(q.dones, done)
	q.mu.Unlock()
	select {
	case q.kick <- struct{}{}:
	default:
	}
	return <-done
}

// flusher owns one shard's queue: it waits for a first writer, holds the
// batch window open for up to MaxDelay (or until MaxBatch fills), then
// flushes the group.
func (c *Coalescer[K, V]) flusher(q *shardQueue[K, V]) {
	defer c.wg.Done()
	for {
		select {
		case <-q.kick:
		case <-c.stop:
			c.flush(q)
			return
		}
		if !c.full(q) {
			t := time.NewTimer(c.maxDelay)
		window:
			for {
				select {
				case <-t.C:
					break window
				case <-q.kick:
					if c.full(q) {
						t.Stop()
						break window
					}
				case <-c.stop:
					t.Stop()
					break window
				}
			}
		}
		c.flush(q)
	}
}

func (c *Coalescer[K, V]) full(q *shardQueue[K, V]) bool {
	q.mu.Lock()
	n := len(q.keys)
	q.mu.Unlock()
	return n >= c.maxBatch
}

// flush swaps out the pending group, commits it durably, invalidates,
// and only then acknowledges every writer with the commit's outcome.
func (c *Coalescer[K, V]) flush(q *shardQueue[K, V]) {
	q.mu.Lock()
	keys, vals, dones := q.keys, q.vals, q.dones
	q.keys, q.vals, q.dones = nil, nil, nil
	q.mu.Unlock()
	if len(keys) == 0 {
		return
	}
	_, err := q.tree.PutBatch(keys, vals)
	if err == nil && c.afterCommit != nil {
		c.afterCommit(keys)
	}
	c.batches.Add(1)
	c.ops.Add(uint64(len(keys)))
	for _, d := range dones {
		d <- err
	}
}

// Close flushes every queue's remaining writes and stops the flushers.
// Concurrent Puts that lost the race return ErrCoalescerClosed; Puts
// already enqueued are flushed and acknowledged normally.
func (c *Coalescer[K, V]) Close() {
	if c.closed.Swap(true) {
		return
	}
	close(c.stop)
	c.wg.Wait()
	for _, q := range c.queues {
		c.flush(q)
	}
}

// CoalescerCounters snapshots the batch-forming accounting.
type CoalescerCounters struct {
	CoalescedOps     uint64 // writes acknowledged through the coalescer
	CoalescedBatches uint64 // groups flushed (ops/batches = amortization)
}

// Counters snapshots the coalescer's accounting.
func (c *Coalescer[K, V]) Counters() CoalescerCounters {
	return CoalescerCounters{
		CoalescedOps:     c.ops.Load(),
		CoalescedBatches: c.batches.Load(),
	}
}
