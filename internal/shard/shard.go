package shard

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"

	"github.com/quittree/quit"
)

// Tree is a key-range-sharded durable store: Shards() independent
// quit.DurableTrees — each with its own segmented WAL, group commit and
// checkpoint policy — behind a Router that classifies keys once and
// applies disjoint per-shard sub-batches in parallel.
//
// Consistency contract: every operation on a single key is exactly as
// durable and atomic as the underlying DurableTree makes it. A PutBatch
// spanning shards is atomic *per shard* (one WAL record per sub-batch),
// not across shards: a crash can recover some shards' sub-batches and
// not others', exactly as interleaved single-shard batches could. The
// router itself is stateless over the manifest-pinned boundaries, so
// cross-shard recovery needs no coordination.
type Tree[K quit.Integer, V any] struct {
	dir    string
	router Router[K]
	shards []*quit.DurableTree[K, V]

	routedBatches atomic.Uint64
	shardBatches  atomic.Uint64
	routedKeys    atomic.Uint64
	routedPuts    atomic.Uint64
}

// Open recovers (or initializes) a sharded store rooted at dir. On first
// open the shard boundaries are cut from the sampled key distribution
// (see NewRouter) and pinned in a durably installed manifest; on reopen
// the manifest is authoritative — opts.Shards and sample are ignored —
// because keys already routed under the old boundaries must keep
// resolving to the same shards. Each shard lives in its own
// subdirectory (shard-000, shard-001, ...) and recovers independently
// through quit.Open.
func Open[K quit.Integer, V any](dir string, opts quit.ShardedOptions, sample []K) (*Tree[K, V], error) {
	if err := opts.Options.Validate(); err != nil {
		return nil, err
	}
	n := opts.Shards
	if n == 0 {
		n = 4
	}
	if n < 1 || n > MaxShards {
		return nil, fmt.Errorf("shard: %d shards outside [1, %d]", n, MaxShards)
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = quit.DefaultFS()
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("shard: creating store dir: %w", err)
	}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("shard: listing store dir: %w", err)
	}
	var router Router[K]
	if hasName(names, manifestName) {
		bounds, err := readManifest[K](fsys, dir)
		if err != nil {
			return nil, err
		}
		router = RouterFromBounds(bounds)
	} else {
		router = NewRouter(n, sample)
		if err := writeManifest(fsys, dir, router.bounds); err != nil {
			return nil, err
		}
	}
	t := &Tree[K, V]{dir: dir, router: router}
	for i := 0; i < router.Shards(); i++ {
		d, err := quit.Open[K, V](t.shardDir(i), opts.DurableOptions)
		if err != nil {
			for _, prev := range t.shards {
				prev.Close()
			}
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		t.shards = append(t.shards, d)
	}
	return t, nil
}

func (t *Tree[K, V]) shardDir(i int) string {
	return filepath.Join(t.dir, fmt.Sprintf("shard-%03d", i))
}

func hasName(names []string, want string) bool {
	for _, n := range names {
		if n == want {
			return true
		}
	}
	return false
}

// Shards returns the shard count.
func (t *Tree[K, V]) Shards() int { return len(t.shards) }

// Shard returns shard i for direct use (the coalescer's flush path and
// tests). Writes through it are durable per the shard's own contract but
// bypass this type's routing counters.
func (t *Tree[K, V]) Shard(i int) *quit.DurableTree[K, V] { return t.shards[i] }

// Router returns the routing table (boundaries are immutable once the
// manifest is written, so the value is safe to share).
func (t *Tree[K, V]) Router() Router[K] { return t.router }

// ShardFor returns the shard index owning key k.
func (t *Tree[K, V]) ShardFor(k K) int { return t.router.ShardFor(k) }

// Put routes a single durable write to its shard.
func (t *Tree[K, V]) Put(key K, val V) (prev V, existed bool, err error) {
	t.routedPuts.Add(1)
	return t.shards[t.router.ShardFor(key)].Put(key, val)
}

// Insert is Put discarding the previous value.
func (t *Tree[K, V]) Insert(key K, val V) error {
	_, _, err := t.Put(key, val)
	return err
}

// Delete routes a single durable delete to its shard.
func (t *Tree[K, V]) Delete(key K) (val V, existed bool, err error) {
	t.routedPuts.Add(1)
	return t.shards[t.router.ShardFor(key)].Delete(key)
}

// PutBatch splits the batch by shard boundary in one classify pass and
// applies the disjoint per-shard sub-batches in parallel, each as one
// durable unit (one WAL record, one group commit) on its shard. Results
// arrive in caller order, exactly as Tree.PutBatch reports them; the
// per-shard sub-batches preserve arrival order, so a near-sorted global
// stream yields near-sorted — over a narrower key range, *more* sorted —
// per-shard streams for the QuIT fast path.
//
// Atomicity is per shard, not per call: on error some shards' sub-batches
// may be applied and acknowledged while others failed. The returned
// results are valid for every position whose shard returned nil.
func (t *Tree[K, V]) PutBatch(keys []K, vals []V) ([]quit.PutResult, error) {
	return t.putBatch(keys, vals, nil)
}

// PutBatchParallel is PutBatch with each shard's in-memory application
// additionally fanned out over opts.Workers goroutines (see
// quit.PutBatchParallel).
func (t *Tree[K, V]) PutBatchParallel(keys []K, vals []V, opts quit.IngestOptions) ([]quit.PutResult, error) {
	return t.putBatch(keys, vals, &opts)
}

func (t *Tree[K, V]) putBatch(keys []K, vals []V, par *quit.IngestOptions) ([]quit.PutResult, error) {
	if len(keys) != len(vals) {
		return nil, fmt.Errorf("shard: batch of %d keys with %d values", len(keys), len(vals))
	}
	if len(keys) == 0 {
		return nil, nil
	}
	t.routedBatches.Add(1)
	t.routedKeys.Add(uint64(len(keys)))
	sp := splitBatch(t.router, keys, vals)
	out := make([]quit.PutResult, len(keys))
	apply := func(i int) error {
		var res []quit.PutResult
		var err error
		if par != nil {
			res, err = t.shards[i].PutBatchParallel(sp.keys[i], sp.vals[i], *par)
		} else {
			res, err = t.shards[i].PutBatch(sp.keys[i], sp.vals[i])
		}
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		for j, p := range sp.pos[i] {
			out[p] = res[j]
		}
		return nil
	}
	var active []int
	for i := range t.shards {
		if len(sp.keys[i]) > 0 {
			active = append(active, i)
		}
	}
	t.shardBatches.Add(uint64(len(active)))
	if len(active) == 1 {
		// One shard owns the whole batch: apply inline, no goroutine.
		return out, apply(active[0])
	}
	errs := make([]error, len(active))
	var wg sync.WaitGroup
	for j, i := range active {
		wg.Add(1)
		go func(j, i int) {
			defer wg.Done()
			errs[j] = apply(i)
		}(j, i)
	}
	wg.Wait()
	return out, errors.Join(errs...)
}

// Get returns the value stored under key.
func (t *Tree[K, V]) Get(key K) (V, bool) {
	return t.shards[t.router.ShardFor(key)].Get(key)
}

// Contains reports whether key is present.
func (t *Tree[K, V]) Contains(key K) bool {
	return t.shards[t.router.ShardFor(key)].Contains(key)
}

// Len returns the number of live entries across all shards.
func (t *Tree[K, V]) Len() int {
	total := 0
	for _, s := range t.shards {
		total += s.Len()
	}
	return total
}

// Min returns the smallest key and its value across shards.
func (t *Tree[K, V]) Min() (K, V, bool) {
	for _, s := range t.shards {
		if k, v, ok := s.Min(); ok {
			return k, v, ok
		}
	}
	var k K
	var v V
	return k, v, false
}

// Max returns the largest key and its value across shards.
func (t *Tree[K, V]) Max() (K, V, bool) {
	for i := len(t.shards) - 1; i >= 0; i-- {
		if k, v, ok := t.shards[i].Max(); ok {
			return k, v, ok
		}
	}
	var k K
	var v V
	return k, v, false
}

// Range visits entries with start <= key < end in ascending order until
// fn returns false; it returns the number of entries visited. Shards
// hold disjoint ascending key ranges, so the merged scan is simply the
// owning shards visited left to right — no heap merge needed.
func (t *Tree[K, V]) Range(start, end K, fn func(K, V) bool) int {
	if end <= start {
		return 0
	}
	total := 0
	stopped := false
	wrapped := func(k K, v V) bool {
		if !fn(k, v) {
			stopped = true
			return false
		}
		return true
	}
	for i := t.router.ShardFor(start); i < len(t.shards); i++ {
		if i > 0 && t.router.bounds[i-1] >= end {
			break
		}
		total += t.shards[i].Range(start, end, wrapped)
		if stopped {
			break
		}
	}
	return total
}

// Scan visits all entries in ascending order until fn returns false.
func (t *Tree[K, V]) Scan(fn func(K, V) bool) {
	stopped := false
	wrapped := func(k K, v V) bool {
		if !fn(k, v) {
			stopped = true
			return false
		}
		return true
	}
	for _, s := range t.shards {
		s.Scan(wrapped)
		if stopped {
			return
		}
	}
}

// Sync forces every shard's write-ahead log to stable storage.
func (t *Tree[K, V]) Sync() error {
	var errs []error
	for i, s := range t.shards {
		if err := s.Sync(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// Checkpoint compacts every shard's log into a snapshot. Shards
// checkpoint independently; a failure on one leaves the others'
// checkpoints installed.
func (t *Tree[K, V]) Checkpoint() error {
	var errs []error
	for i, s := range t.shards {
		if err := s.Checkpoint(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// Recover re-arms every degraded shard (see quit.DurableTree.Recover);
// healthy shards are no-ops. The router keeps serving the healthy shards
// throughout — single-shard WAL failures never take the store down.
func (t *Tree[K, V]) Recover() error {
	var errs []error
	for i, s := range t.shards {
		if err := s.Recover(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// Close syncs and releases every shard, reporting every failure.
func (t *Tree[K, V]) Close() error {
	var errs []error
	for i, s := range t.shards {
		if err := s.Close(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// Validate checks every shard's structural invariants.
func (t *Tree[K, V]) Validate() error {
	for i, s := range t.shards {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Recovery reports what each shard's Open found and recovered.
func (t *Tree[K, V]) Recovery() []quit.RecoveryInfo {
	out := make([]quit.RecoveryInfo, len(t.shards))
	for i, s := range t.shards {
		out[i] = s.Recovery()
	}
	return out
}

// Stats aggregates the in-memory tree counters across shards: counters
// and node counts sum, Height reports the tallest shard.
func (t *Tree[K, V]) Stats() quit.Stats {
	var agg quit.Stats
	for _, s := range t.shards {
		st := s.Stats()
		agg.FastInserts += st.FastInserts
		agg.TopInserts += st.TopInserts
		agg.Updates += st.Updates
		agg.LeafSplits += st.LeafSplits
		agg.InternalSplits += st.InternalSplits
		agg.VariableSplits += st.VariableSplits
		agg.Redistributions += st.Redistributions
		agg.Resets += st.Resets
		agg.CatchUps += st.CatchUps
		agg.Deletes += st.Deletes
		agg.Borrows += st.Borrows
		agg.Merges += st.Merges
		agg.NodeReads += st.NodeReads
		agg.LeafReads += st.LeafReads
		agg.RangeLeafReads += st.RangeLeafReads
		agg.OLCRestarts += st.OLCRestarts
		agg.BatchRuns += st.BatchRuns
		agg.BatchFastRuns += st.BatchFastRuns
		agg.ParallelBatches += st.ParallelBatches
		agg.FrontierSplices += st.FrontierSplices
		agg.Size += st.Size
		agg.Leaves += st.Leaves
		agg.Internals += st.Internals
		if st.Height > agg.Height {
			agg.Height = st.Height
		}
	}
	return agg
}

// ShardStats returns each shard's own counter snapshot.
func (t *Tree[K, V]) ShardStats() []quit.Stats {
	out := make([]quit.Stats, len(t.shards))
	for i, s := range t.shards {
		out[i] = s.Stats()
	}
	return out
}

// DurabilityStats aggregates the durability counters across shards;
// ReadOnly is true when *any* shard is degraded (per-shard detail via
// Shard(i).DurabilityStats()).
func (t *Tree[K, V]) DurabilityStats() quit.DurabilityStats {
	var agg quit.DurabilityStats
	for _, s := range t.shards {
		ds := s.DurabilityStats()
		agg.SegmentsRotated += ds.SegmentsRotated
		agg.RotationFailures += ds.RotationFailures
		agg.RetriesAttempted += ds.RetriesAttempted
		agg.RetriesSucceeded += ds.RetriesSucceeded
		agg.Fsyncs += ds.Fsyncs
		agg.Checkpoints += ds.Checkpoints
		agg.AutoCheckpoints += ds.AutoCheckpoints
		agg.WALBytesReclaimed += ds.WALBytesReclaimed
		agg.WALLiveBytes += ds.WALLiveBytes
		agg.WALLiveRecords += ds.WALLiveRecords
		agg.ReadOnly = agg.ReadOnly || ds.ReadOnly
	}
	return agg
}

// Counters reports the router-level accounting (the shard analog of
// DESIGN.md §12's serving counters).
type Counters struct {
	RoutedBatches uint64 // PutBatch calls accepted by the router
	ShardBatches  uint64 // per-shard sub-batches applied (the fan-out)
	RoutedKeys    uint64 // keys classified across all routed batches
	RoutedPuts    uint64 // single-key writes/deletes routed directly
}

// Counters snapshots the router-level counters.
func (t *Tree[K, V]) Counters() Counters {
	return Counters{
		RoutedBatches: t.routedBatches.Load(),
		ShardBatches:  t.shardBatches.Load(),
		RoutedKeys:    t.routedKeys.Load(),
		RoutedPuts:    t.routedPuts.Load(),
	}
}
