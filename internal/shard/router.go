// Package shard composes key-range-sharded DurableTrees into one store:
// a Router splits keys (and whole batches) across N independent shards,
// each a crash-safe quit.DurableTree with its own segmented write-ahead
// log, group commit and checkpoint policy. Batches split per shard are
// *more* locally sorted than the global stream — the sub-batch a shard
// receives preserves arrival order within a narrower key range — so the
// QuIT fast-path rate rises per shard, and the per-shard descents run on
// trees 1/N the size. On top of the sharded tree, Coalescer turns many
// concurrent single-key writers into per-shard PutBatch groups (the
// server-side batch former cmd/quitserver serves), and Cache is the
// hot-key read cache with write invalidation. See DESIGN.md §12.
package shard

import (
	"sort"

	"github.com/quittree/quit"
)

// MaxShards bounds the shard count; the router's classify pass stores
// shard indices in a byte.
const MaxShards = 256

// Router partitions a key space into contiguous shard ranges. Shard i
// owns keys k with bounds[i-1] <= k < bounds[i] (the first shard is
// unbounded below, the last unbounded above). The zero Router routes
// everything to shard 0.
type Router[K quit.Integer] struct {
	bounds []K // len = shards-1, strictly increasing
}

// NewRouter builds an n-shard router with boundaries cut from a sampled
// key distribution: the sample is sorted and the n-1 quantile points
// become shard boundaries, so each shard receives roughly equal traffic
// under the sampled distribution. An empty (or insufficiently distinct)
// sample falls back to an even split of K's whole domain — correct, but
// only balanced for keys spread across the full integer range.
func NewRouter[K quit.Integer](n int, sample []K) Router[K] {
	if n < 1 {
		n = 1
	}
	if n > MaxShards {
		n = MaxShards
	}
	if n == 1 {
		return Router[K]{}
	}
	if b, ok := sampleBounds(n, sample); ok {
		return Router[K]{bounds: b}
	}
	return Router[K]{bounds: domainBounds[K](n)}
}

// RouterFromBounds rebuilds a router from persisted boundaries (the
// manifest path); bounds must be strictly increasing.
func RouterFromBounds[K quit.Integer](bounds []K) Router[K] {
	return Router[K]{bounds: bounds}
}

// Shards returns the number of shards this router splits across.
func (r Router[K]) Shards() int { return len(r.bounds) + 1 }

// Bounds returns a copy of the shard boundaries (len Shards()-1).
func (r Router[K]) Bounds() []K {
	out := make([]K, len(r.bounds))
	copy(out, r.bounds)
	return out
}

// ShardFor returns the shard owning key k.
func (r Router[K]) ShardFor(k K) int {
	// First boundary strictly above k; small boundary arrays (<= 255)
	// make this a handful of well-predicted comparisons.
	return sort.Search(len(r.bounds), func(i int) bool { return k < r.bounds[i] })
}

// sampleBounds cuts n-1 strictly increasing boundaries from the sample's
// quantiles; ok is false when the sample has too few distinct values to
// separate n shards.
func sampleBounds[K quit.Integer](n int, sample []K) ([]K, bool) {
	if len(sample) < n {
		return nil, false
	}
	sorted := make([]K, len(sample))
	copy(sorted, sample)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	bounds := make([]K, 0, n-1)
	for i := 1; i < n; i++ {
		b := sorted[i*len(sorted)/n]
		if len(bounds) > 0 && b <= bounds[len(bounds)-1] {
			continue // duplicate quantile: skewed sample
		}
		bounds = append(bounds, b)
	}
	if len(bounds) != n-1 {
		return nil, false
	}
	return bounds, true
}

// domainBounds splits K's entire domain into n even ranges. The
// arithmetic runs in uint64 offset space (two's-complement conversion
// wraps deterministically), so it is exact for every integer kind,
// signed or unsigned, of any width.
func domainBounds[K quit.Integer](n int) []K {
	lo, hi := domain[K]()
	span := uint64(hi) - uint64(lo)
	step := span / uint64(n)
	bounds := make([]K, n-1)
	for i := range bounds {
		bounds[i] = K(uint64(lo) + step*uint64(i+1))
	}
	return bounds
}

// domain returns K's minimum and maximum values without unsafe: the
// all-ones pattern distinguishes unsigned (max) from signed (-1), and
// the signed maximum is grown bit by bit until the shift wraps.
func domain[K quit.Integer]() (lo, hi K) {
	var zero K
	ones := ^zero
	if ones > zero { // unsigned: 0 .. all-ones
		return zero, ones
	}
	hi = 1
	for hi<<1 > hi {
		hi = hi<<1 | 1
	}
	return ^hi, hi // two's complement: min = -max-1
}

// split is the router's one-pass batch classifier: each key is assigned
// its shard, then the batch is scattered into per-shard key/value
// sub-slices plus the original positions (for fanning per-shard results
// back into caller order). Within a shard the sub-batch preserves the
// input's arrival order, so per-shard streams inherit — and, over a
// narrower key range, improve on — the global stream's sortedness.
type split[K quit.Integer, V any] struct {
	keys [][]K
	vals [][]V
	pos  [][]int
}

func splitBatch[K quit.Integer, V any](r Router[K], keys []K, vals []V) split[K, V] {
	n := r.Shards()
	ids := make([]uint8, len(keys))
	counts := make([]int, n)
	for i, k := range keys {
		s := r.ShardFor(k)
		ids[i] = uint8(s)
		counts[s]++
	}
	sp := split[K, V]{
		keys: make([][]K, n),
		vals: make([][]V, n),
		pos:  make([][]int, n),
	}
	for s, c := range counts {
		if c == 0 {
			continue
		}
		sp.keys[s] = make([]K, 0, c)
		sp.vals[s] = make([]V, 0, c)
		sp.pos[s] = make([]int, 0, c)
	}
	for i, k := range keys {
		s := ids[i]
		sp.keys[s] = append(sp.keys[s], k)
		sp.vals[s] = append(sp.vals[s], vals[i])
		sp.pos[s] = append(sp.pos[s], i)
	}
	return sp
}
