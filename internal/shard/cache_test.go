package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/quittree/quit/internal/faultio"
)

func TestCacheHitMissEvict(t *testing.T) {
	c := NewCache[int64, string](4, 1) // one way, 4 entries
	loads := 0
	load := func(k int64) (string, bool) {
		loads++
		return fmt.Sprintf("v%d", k), true
	}
	for k := int64(0); k < 4; k++ {
		if v, ok := c.GetOrLoad(k, load); !ok || v != fmt.Sprintf("v%d", k) {
			t.Fatalf("GetOrLoad(%d) = %q,%v", k, v, ok)
		}
	}
	if loads != 4 || c.Len() != 4 {
		t.Fatalf("loads=%d Len=%d after cold fill, want 4,4", loads, c.Len())
	}
	// All four hit now.
	for k := int64(0); k < 4; k++ {
		c.GetOrLoad(k, load)
	}
	if loads != 4 {
		t.Fatalf("loads = %d after warm reads, want 4 (all hits)", loads)
	}
	// Key 0 was just touched; inserting key 4 evicts the LRU (key 1).
	c.GetOrLoad(0, load)
	c.GetOrLoad(4, load)
	if c.Len() != 4 {
		t.Fatalf("Len = %d after eviction, want 4", c.Len())
	}
	c.GetOrLoad(1, load)
	if loads != 6 {
		t.Fatalf("loads = %d, want 6 (key 4 fill + evicted key 1 reload)", loads)
	}
	cc := c.Counters()
	if cc.CacheHits != 5 || cc.CacheMisses != 6 {
		t.Fatalf("counters = %+v, want 5 hits / 6 misses", cc)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache[int64, int](16, 2)
	val := 1
	load := func(int64) (int, bool) { return val, true }
	if v, _ := c.GetOrLoad(7, load); v != 1 {
		t.Fatalf("first load = %d", v)
	}
	val = 2
	if v, _ := c.GetOrLoad(7, load); v != 1 {
		t.Fatalf("cached read = %d, want the cached 1", v)
	}
	c.Invalidate(7)
	if v, _ := c.GetOrLoad(7, load); v != 2 {
		t.Fatalf("post-invalidate read = %d, want reloaded 2", v)
	}
	c.Invalidate(7)
	c.Invalidate(999) // absent: not counted
	if inv := c.Counters().CacheInvalidations; inv != 2 {
		t.Fatalf("CacheInvalidations = %d, want 2 actual removals", inv)
	}
	// A load that reports the key absent caches nothing.
	miss := func(int64) (int, bool) { return 0, false }
	if _, ok := c.GetOrLoad(50, miss); ok {
		t.Fatal("absent load reported ok")
	}
	if _, ok := c.GetOrLoad(50, miss); ok || c.Len() > 1 {
		t.Fatal("negative result was cached")
	}
}

// TestCacheNoStaleReadAfterWrite is the read-your-writes race test (run
// under -race in CI): writers push monotonically increasing values per
// key through the coalescer — whose AfterCommit hook invalidates the
// cache before any ack — while readers hammer GetOrLoad on the same keys
// to force fill/invalidate interleavings. The moment a writer's Put
// returns, a read through the cache must see a value at least that new.
func TestCacheNoStaleReadAfterWrite(t *testing.T) {
	fs := faultio.NewMemFS()
	st, err := Open[int64, int64](storeDir, memOpts(fs, 4), evenSample(64, 64))
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache[int64, int64](1024, 4)
	co := NewCoalescer(st, 64, 500*time.Microsecond, cache.InvalidateBatch)

	const keys = 8
	rounds := 40
	if testing.Short() {
		rounds = 10
	}
	readThrough := func(k int64) (int64, bool) {
		return cache.GetOrLoad(k, func(k int64) (int64, bool) { return st.Get(k) })
	}

	var stop atomic.Bool
	var readers sync.WaitGroup
	// Background readers: their only job is to race fills against
	// invalidations.
	for g := 0; g < 8; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			for i := 0; !stop.Load(); i++ {
				readThrough(int64((g + i) % keys))
			}
		}(g)
	}
	// One writer per key: values are that key's private monotone clock,
	// so "stale" is directly observable.
	var writers sync.WaitGroup
	errCh := make(chan error, keys)
	for k := 0; k < keys; k++ {
		writers.Add(1)
		go func(k int64) {
			defer writers.Done()
			for v := int64(1); v <= int64(rounds); v++ {
				if err := co.Put(k, v); err != nil {
					errCh <- err
					return
				}
				got, ok := readThrough(k)
				if !ok || got < v {
					errCh <- fmt.Errorf("stale read after acked write: key %d read %d,%v after writing %d", k, got, ok, v)
					return
				}
			}
		}(int64(k))
	}
	writers.Wait()
	stop.Store(true)
	readers.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	co.Close()
	// Final state: every key's tree value is its last written clock, and
	// a cache read agrees.
	for k := int64(0); k < keys; k++ {
		if v, ok := st.Get(k); !ok || v != int64(rounds) {
			t.Fatalf("tree key %d = %d,%v, want %d", k, v, ok, rounds)
		}
		if v, ok := readThrough(k); !ok || v != int64(rounds) {
			t.Fatalf("cache key %d = %d,%v, want %d", k, v, ok, rounds)
		}
	}
	if c := cache.Counters(); c.CacheInvalidations == 0 {
		t.Fatal("no invalidations recorded: the race was never exercised")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}
