package shard

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"path/filepath"
	"strconv"

	"github.com/quittree/quit"
)

// The manifest pins a store's shard layout: boundaries are chosen once —
// from the sampled key distribution at first Open — and every later Open
// must route identically, or keys written before the reopen would become
// unreachable. It is a short line-oriented text file installed with the
// same tmp-write/fsync/rename/dir-fsync dance as a snapshot.
const (
	manifestName    = "MANIFEST"
	manifestTmp     = "manifest.tmp"
	manifestHeader  = "quit-shard-manifest v1"
	manifestMaxSize = 1 << 20 // a corrupt header must not make us slurp a WAL
)

// writeManifest durably installs the shard layout in dir.
func writeManifest[K quit.Integer](fsys quit.FS, dir string, bounds []K) error {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%s\n", manifestHeader)
	fmt.Fprintf(&buf, "shards %d\n", len(bounds)+1)
	for _, b := range bounds {
		fmt.Fprintf(&buf, "bound %s\n", formatKey(b))
	}
	tmp := filepath.Join(dir, manifestTmp)
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("shard: creating manifest: %w", err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("shard: writing manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("shard: syncing manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("shard: closing manifest: %w", err)
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("shard: installing manifest: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("shard: syncing store dir: %w", err)
	}
	return nil
}

// readManifest loads and validates the persisted shard layout.
func readManifest[K quit.Integer](fsys quit.FS, dir string) ([]K, error) {
	rc, err := fsys.Open(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("shard: opening manifest: %w", err)
	}
	defer rc.Close()
	sc := bufio.NewScanner(io.LimitReader(rc, manifestMaxSize))
	if !sc.Scan() || sc.Text() != manifestHeader {
		return nil, fmt.Errorf("shard: manifest header %q is not %q", sc.Text(), manifestHeader)
	}
	var n int
	if !sc.Scan() {
		return nil, fmt.Errorf("shard: manifest truncated before shard count")
	}
	if _, err := fmt.Sscanf(sc.Text(), "shards %d", &n); err != nil {
		return nil, fmt.Errorf("shard: bad shard count line %q: %w", sc.Text(), err)
	}
	if n < 1 || n > MaxShards {
		return nil, fmt.Errorf("shard: manifest shard count %d outside [1, %d]", n, MaxShards)
	}
	bounds := make([]K, 0, n-1)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		var s string
		if _, err := fmt.Sscanf(line, "bound %s", &s); err != nil {
			return nil, fmt.Errorf("shard: bad manifest line %q: %w", line, err)
		}
		b, err := parseKey[K](s)
		if err != nil {
			return nil, fmt.Errorf("shard: bad boundary %q: %w", s, err)
		}
		if len(bounds) > 0 && b <= bounds[len(bounds)-1] {
			return nil, fmt.Errorf("shard: manifest boundaries not strictly increasing at %q", s)
		}
		bounds = append(bounds, b)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("shard: reading manifest: %w", err)
	}
	if len(bounds) != n-1 {
		return nil, fmt.Errorf("shard: manifest has %d boundaries for %d shards", len(bounds), n)
	}
	return bounds, nil
}

// formatKey / parseKey round-trip any Integer kind through decimal text,
// picking signed or unsigned 64-bit formatting by the type's own
// arithmetic (the all-ones pattern is negative exactly for signed kinds).
func formatKey[K quit.Integer](k K) string {
	var zero K
	if ^zero > zero { // unsigned
		return strconv.FormatUint(uint64(k), 10)
	}
	return strconv.FormatInt(int64(k), 10)
}

func parseKey[K quit.Integer](s string) (K, error) {
	var zero K
	if ^zero > zero { // unsigned
		u, err := strconv.ParseUint(s, 10, 64)
		return K(u), err
	}
	i, err := strconv.ParseInt(s, 10, 64)
	return K(i), err
}
