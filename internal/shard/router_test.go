package shard

import (
	"math"
	"math/rand"
	"testing"
)

func TestRouterSampleBounds(t *testing.T) {
	sample := make([]int64, 1000)
	for i := range sample {
		sample[i] = int64(i)
	}
	rand.New(rand.NewSource(1)).Shuffle(len(sample), func(i, j int) {
		sample[i], sample[j] = sample[j], sample[i]
	})
	r := NewRouter(4, sample)
	if r.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", r.Shards())
	}
	b := r.Bounds()
	if len(b) != 3 {
		t.Fatalf("len(Bounds()) = %d, want 3", len(b))
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not strictly increasing: %v", b)
		}
	}
	// Uniform sample: quantile cuts land near 250/500/750 and traffic
	// splits roughly evenly.
	counts := make([]int, 4)
	for k := int64(0); k < 1000; k++ {
		counts[r.ShardFor(k)]++
	}
	for s, c := range counts {
		if c < 150 || c > 350 {
			t.Fatalf("shard %d owns %d of 1000 uniform keys; counts=%v", s, c, counts)
		}
	}
	// Boundary semantics: bounds[i-1] <= k < bounds[i] owned by shard i.
	for i, bound := range b {
		if got := r.ShardFor(bound); got != i+1 {
			t.Fatalf("ShardFor(bound %d) = %d, want %d", bound, got, i+1)
		}
		if got := r.ShardFor(bound - 1); got != i {
			t.Fatalf("ShardFor(bound-1 %d) = %d, want %d", bound-1, got, i)
		}
	}
}

func TestRouterDomainFallbackSigned(t *testing.T) {
	r := NewRouter[int64](4, nil)
	if r.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", r.Shards())
	}
	if got := r.ShardFor(math.MinInt64); got != 0 {
		t.Errorf("ShardFor(MinInt64) = %d, want 0", got)
	}
	if got := r.ShardFor(0); got != 2 {
		t.Errorf("ShardFor(0) = %d, want 2 (domain midpoint starts shard 2)", got)
	}
	if got := r.ShardFor(math.MaxInt64); got != 3 {
		t.Errorf("ShardFor(MaxInt64) = %d, want 3", got)
	}
	b := r.Bounds()
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not strictly increasing: %v", b)
		}
	}
}

func TestRouterDomainFallbackUnsigned(t *testing.T) {
	r := NewRouter[uint32](4, nil)
	if got := r.ShardFor(0); got != 0 {
		t.Errorf("ShardFor(0) = %d, want 0", got)
	}
	if got := r.ShardFor(math.MaxUint32); got != 3 {
		t.Errorf("ShardFor(MaxUint32) = %d, want 3", got)
	}
	if got := r.ShardFor(1 << 30); got != 1 {
		// step = MaxUint32/4, so 2^30 sits just past the first boundary.
		t.Errorf("ShardFor(2^30) = %d, want 1", got)
	}
}

func TestRouterSkewedSampleFallsBack(t *testing.T) {
	// A constant sample cannot separate 4 shards; the router must fall
	// back to the domain split rather than build duplicate bounds.
	sample := make([]int64, 100)
	r := NewRouter(4, sample)
	if r.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4 via domain fallback", r.Shards())
	}
	b := r.Bounds()
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not strictly increasing: %v", b)
		}
	}
}

func TestRouterSingleShard(t *testing.T) {
	r := NewRouter[uint64](1, nil)
	if r.Shards() != 1 {
		t.Fatalf("Shards() = %d, want 1", r.Shards())
	}
	if got := r.ShardFor(math.MaxUint64); got != 0 {
		t.Fatalf("ShardFor = %d, want 0", got)
	}
}

func TestSplitBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sample := make([]int64, 512)
	for i := range sample {
		sample[i] = rng.Int63n(1 << 20)
	}
	r := NewRouter(5, sample)
	n := 4096
	keys := make([]int64, n)
	vals := make([]string, n)
	for i := range keys {
		keys[i] = rng.Int63n(1 << 20)
		vals[i] = string(rune('a' + i%26))
	}
	sp := splitBatch(r, keys, vals)
	total := 0
	for s := 0; s < r.Shards(); s++ {
		total += len(sp.keys[s])
		if len(sp.keys[s]) != len(sp.vals[s]) || len(sp.keys[s]) != len(sp.pos[s]) {
			t.Fatalf("shard %d slices disagree: %d keys %d vals %d pos",
				s, len(sp.keys[s]), len(sp.vals[s]), len(sp.pos[s]))
		}
		prev := -1
		for j, k := range sp.keys[s] {
			if r.ShardFor(k) != s {
				t.Fatalf("key %d scattered to shard %d, ShardFor says %d", k, s, r.ShardFor(k))
			}
			p := sp.pos[s][j]
			if keys[p] != k || vals[p] != sp.vals[s][j] {
				t.Fatalf("position %d does not round-trip: key %d val %q", p, k, sp.vals[s][j])
			}
			if p <= prev {
				t.Fatalf("shard %d lost arrival order: pos %d after %d", s, p, prev)
			}
			prev = p
		}
	}
	if total != n {
		t.Fatalf("split scattered %d of %d keys", total, n)
	}
}
