package faultio

import (
	"errors"
	"io"
	"path/filepath"
	"testing"
)

func TestMemFSRoundTrip(t *testing.T) {
	fs := NewMemFS()
	if err := fs.MkdirAll("db"); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create(filepath.Join("db", "a.log"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := fs.ReadDir("db")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "a.log" {
		t.Fatalf("ReadDir = %v, want [a.log]", names)
	}
	r, err := fs.Open(filepath.Join("db", "a.log"))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(r)
	r.Close()
	if string(got) != "hello world" {
		t.Fatalf("read %q, want %q", got, "hello world")
	}
}

func TestMemFSRenameRemove(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("db/tmp")
	f.Write([]byte("x"))
	f.Close()
	if err := fs.Rename("db/tmp", "db/final"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("db/tmp"); err == nil {
		t.Fatal("old name still opens after rename")
	}
	if _, err := fs.Open("db/final"); err != nil {
		t.Fatalf("new name does not open: %v", err)
	}
	if err := fs.Remove("db/final"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("db/final"); err == nil {
		t.Fatal("file still opens after remove")
	}
	if err := fs.Remove("db/final"); err == nil {
		t.Fatal("removing a missing file should fail")
	}
}

func TestImageAtPrefixes(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("db/w")
	f.Write([]byte("aaaa")) // event 1
	f.Sync()               // event 2
	f.Write([]byte("bbbb")) // event 3
	f.Close()

	// Full schedule: everything written survives.
	img := fs.ImageAt(Cut{Event: len(fs.Events())})
	if string(img["db/w"]) != "aaaabbbb" {
		t.Fatalf("full image = %q", img["db/w"])
	}
	// Cut before the second write.
	img = fs.ImageAt(Cut{Event: 3})
	if string(img["db/w"]) != "aaaa" {
		t.Fatalf("cut-at-3 image = %q", img["db/w"])
	}
	// Torn second write.
	img = fs.ImageAt(Cut{Event: 3, MidBytes: 2})
	if string(img["db/w"]) != "aaaabb" {
		t.Fatalf("torn image = %q", img["db/w"])
	}
	// Synced-only: the unsynced second write vanishes even at full cut.
	img = fs.ImageAt(Cut{Event: len(fs.Events()), SyncedOnly: true})
	if string(img["db/w"]) != "aaaa" {
		t.Fatalf("synced-only image = %q", img["db/w"])
	}
	// Cut before the create: no file at all.
	img = fs.ImageAt(Cut{Event: 0})
	if _, ok := img["db/w"]; ok {
		t.Fatal("file exists before its create event")
	}
}

func TestImageAtRename(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("db/tmp") // event 0
	f.Write([]byte("snap"))     // event 1
	f.Sync()                    // event 2
	f.Close()
	fs.Rename("db/tmp", "db/snap-1") // event 3

	img := fs.ImageAt(Cut{Event: 3})
	if _, ok := img["db/snap-1"]; ok {
		t.Fatal("rename visible before its event")
	}
	if string(img["db/tmp"]) != "snap" {
		t.Fatalf("tmp = %q", img["db/tmp"])
	}
	img = fs.ImageAt(Cut{Event: 4, SyncedOnly: true})
	if string(img["db/snap-1"]) != "snap" {
		t.Fatalf("renamed file lost its synced bytes: %q", img["db/snap-1"])
	}
	if _, ok := img["db/tmp"]; ok {
		t.Fatal("old name survives the rename")
	}
}

func TestFromImage(t *testing.T) {
	fs := FromImage(map[string][]byte{"db/wal-1.log": []byte("abc")})
	names, err := fs.ReadDir("db")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "wal-1.log" {
		t.Fatalf("ReadDir = %v", names)
	}
	r, err := fs.Open("db/wal-1.log")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(r)
	if string(got) != "abc" {
		t.Fatalf("read %q", got)
	}
}

func TestFailWriteAt(t *testing.T) {
	fs := NewMemFS()
	fs.FailWriteAt("w", 6)
	f, _ := fs.Create("db/w")
	if n, err := f.Write([]byte("aaaa")); n != 4 || err != nil {
		t.Fatalf("first write: n=%d err=%v", n, err)
	}
	n, err := f.Write([]byte("bbbb"))
	if n != 2 || !errors.Is(err, ErrInjected) {
		t.Fatalf("crossing write: n=%d err=%v", n, err)
	}
	r, _ := fs.Open("db/w")
	got, _ := io.ReadAll(r)
	if string(got) != "aaaabb" {
		t.Fatalf("file = %q, want short write preserved", got)
	}
}

func TestFailSync(t *testing.T) {
	fs := NewMemFS()
	fs.FailSync("w")
	f, _ := fs.Create("db/w")
	f.Write([]byte("aaaa"))
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync err = %v", err)
	}
	// The failed sync must not mark bytes durable.
	img := fs.ImageAt(Cut{Event: len(fs.Events()), SyncedOnly: true})
	if len(img["db/w"]) != 0 {
		t.Fatalf("unsynced bytes survived: %q", img["db/w"])
	}
	fs.ClearFaults()
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after ClearFaults: %v", err)
	}
}

func TestErrWriter(t *testing.T) {
	var sink []byte
	w := &ErrWriter{W: writerFunc(func(p []byte) (int, error) { sink = append(sink, p...); return len(p), nil }), Limit: 5}
	if n, err := w.Write([]byte("abc")); n != 3 || err != nil {
		t.Fatalf("n=%d err=%v", n, err)
	}
	n, err := w.Write([]byte("defg"))
	if n != 2 || !errors.Is(err, ErrInjected) {
		t.Fatalf("crossing: n=%d err=%v", n, err)
	}
	if _, err := w.Write([]byte("h")); !errors.Is(err, ErrInjected) {
		t.Fatalf("past limit: err=%v", err)
	}
	if string(sink) != "abcde" {
		t.Fatalf("sink = %q", sink)
	}
}

func TestFlipBit(t *testing.T) {
	b := []byte{0x00, 0xFF}
	out := FlipBit(b, 1, 3)
	if b[1] != 0xFF {
		t.Fatal("FlipBit mutated its input")
	}
	if out[1] != 0xF7 {
		t.Fatalf("out[1] = %#x", out[1])
	}
	if got := FlipBit(b, 99, 0); got[0] != 0x00 || got[1] != 0xFF {
		t.Fatal("out-of-range flip changed bytes")
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
