// Package faultio is the fault-injection harness behind the durability
// tests: an in-memory filesystem that records every write, sync, create,
// rename and remove as an ordered schedule, reconstructs the bytes a crash
// at any point of that schedule would leave on disk, and injects write
// errors and sync failures on demand. It implements quit.FS, so tests hand
// a *MemFS straight to quit.Open.
//
// The crash model is the standard ordered-prefix one (as in ALICE-style
// checkers): data reaches the disk in write order, so a crash preserves an
// arbitrary prefix of the schedule — optionally cut mid-write — and, in
// the strict variant, only bytes that were explicitly synced survive.
// Creates, renames and removes are modeled as atomic metadata operations
// applied at their schedule position.
package faultio

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"

	"github.com/quittree/quit"
)

// MemFS plugs into DurableOptions.FS.
var _ quit.FS = (*MemFS)(nil)

// ErrInjected is the error every injected fault returns, so tests can
// assert a failure came from the harness and not from a real bug.
var ErrInjected = errors.New("faultio: injected fault")

// ErrNoSpace is an injected disk-full failure: it matches both
// ErrInjected (it came from the harness) and syscall.ENOSPC (so the
// production classifier treats it as non-transient and the durable layer
// degrades to read-only).
var ErrNoSpace = fmt.Errorf("%w: %w", ErrInjected, syscall.ENOSPC)

// EventKind labels one schedule entry.
type EventKind uint8

const (
	EvCreate EventKind = iota
	EvWrite
	EvSync
	EvRename
	EvRemove
	EvSyncDir
)

// String names the kind for test output.
func (k EventKind) String() string {
	switch k {
	case EvCreate:
		return "create"
	case EvWrite:
		return "write"
	case EvSync:
		return "sync"
	case EvRename:
		return "rename"
	case EvRemove:
		return "remove"
	case EvSyncDir:
		return "syncdir"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// Event is one recorded filesystem operation.
type Event struct {
	Kind EventKind
	Name string // file operated on (old name for renames)
	To   string // rename target
	Data []byte // write payload
}

type memFile struct {
	fs     *MemFS
	name   string
	data   []byte
	synced int // bytes guaranteed durable
	closed bool
}

// MemFS is the recording, fault-injecting filesystem. The zero value is
// not usable; construct with NewMemFS or FromImage.
type MemFS struct {
	mu     sync.Mutex
	files  map[string]*memFile
	dirs   map[string]bool
	events []Event

	// Injection configuration. Keys are matched by substring against the
	// full file path, so tests can target "wal-" or a specific name.
	writeErrAt map[string]int // fail the write that crosses this file offset
	writeErr   map[string]*fault
	syncErr    map[string]*fault
}

// fault is a countdown failure schedule: fire err for the next times
// matching operations (negative means forever), then succeed again —
// the fail-N-times-then-succeed shape transient-fault retries are
// tested against.
type fault struct {
	err   error
	times int
}

// take consumes one firing from the first fault matching name; it
// returns nil when no armed fault matches. Callers hold fs.mu.
func takeFault(m map[string]*fault, name string) error {
	for pat, f := range m {
		if !strings.Contains(name, pat) || f.times == 0 {
			continue
		}
		if f.times > 0 {
			f.times--
		}
		return f.err
	}
	return nil
}

// NewMemFS returns an empty recording filesystem.
func NewMemFS() *MemFS {
	return &MemFS{
		files:      map[string]*memFile{},
		dirs:       map[string]bool{},
		writeErrAt: map[string]int{},
		writeErr:   map[string]*fault{},
		syncErr:    map[string]*fault{},
	}
}

// FromImage seeds a fresh filesystem with the given file contents — the
// disk state a crash left behind — ready to be handed to recovery code.
// The new filesystem records its own schedule from scratch.
func FromImage(image map[string][]byte) *MemFS {
	fs := NewMemFS()
	for name, data := range image {
		fs.files[name] = &memFile{fs: fs, name: name, data: append([]byte(nil), data...), synced: len(data)}
		fs.dirs[filepath.Dir(name)] = true
	}
	return fs
}

// FailWriteAt makes the write that crosses byte offset off of any file
// whose path contains pattern stop short at the offset and return
// ErrInjected (a short write followed by an error, the os.File contract).
func (fs *MemFS) FailWriteAt(pattern string, off int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.writeErrAt[pattern] = off
}

// FailSync makes Sync return ErrInjected for any file whose path contains
// pattern, forever. Bytes written before the failed sync remain unsynced.
func (fs *MemFS) FailSync(pattern string) {
	fs.FailSyncTimes(pattern, ErrInjected, -1)
}

// FailSyncTimes makes the next times Syncs of any file whose path
// contains pattern fail with err, then succeed again; times < 0 fails
// forever. Use ErrNoSpace as err for disk-full injection.
func (fs *MemFS) FailSyncTimes(pattern string, err error, times int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.syncErr[pattern] = &fault{err: err, times: times}
}

// FailWriteTimes makes the next times Writes of any file whose path
// contains pattern fail whole — no bytes reach the file — with err,
// then succeed again; times < 0 fails forever.
func (fs *MemFS) FailWriteTimes(pattern string, err error, times int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.writeErr[pattern] = &fault{err: err, times: times}
}

// ClearFaults removes all injection configuration.
func (fs *MemFS) ClearFaults() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.writeErrAt = map[string]int{}
	fs.writeErr = map[string]*fault{}
	fs.syncErr = map[string]*fault{}
}

// Events returns a copy of the recorded schedule.
func (fs *MemFS) Events() []Event {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]Event, len(fs.events))
	copy(out, fs.events)
	return out
}

// record appends to the schedule (callers hold fs.mu).
func (fs *MemFS) record(e Event) { fs.events = append(fs.events, e) }

func (fs *MemFS) matchWriteErr(name string, cur, n int) (allowed int, fail bool) {
	for pat, off := range fs.writeErrAt {
		if strings.Contains(name, pat) && cur+n > off {
			if off > cur {
				return off - cur, true
			}
			return 0, true
		}
	}
	return n, false
}

// --- quit.FS shape ------------------------------------------------------

// MkdirAll records the directory.
func (fs *MemFS) MkdirAll(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.dirs[dir] = true
	return nil
}

// ReadDir returns the base names of files directly under dir.
func (fs *MemFS) ReadDir(dir string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var names []string
	for name := range fs.files {
		if filepath.Dir(name) == dir {
			names = append(names, filepath.Base(name))
		}
	}
	sort.Strings(names)
	return names, nil
}

// Create truncates-or-creates name for writing.
func (fs *MemFS) Create(name string) (quit.File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := &memFile{fs: fs, name: name}
	fs.files[name] = f
	fs.dirs[filepath.Dir(name)] = true
	fs.record(Event{Kind: EvCreate, Name: name})
	return f, nil
}

// Open returns a reader over a point-in-time copy of the file.
func (fs *MemFS) Open(name string) (io.ReadCloser, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("faultio: open %s: file does not exist", name)
	}
	return io.NopCloser(strings.NewReader(string(f.data))), nil
}

// Rename atomically moves oldname to newname.
func (fs *MemFS) Rename(oldname, newname string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[oldname]
	if !ok {
		return fmt.Errorf("faultio: rename %s: file does not exist", oldname)
	}
	delete(fs.files, oldname)
	f.name = newname
	fs.files[newname] = f
	fs.record(Event{Kind: EvRename, Name: oldname, To: newname})
	return nil
}

// Remove deletes a file.
func (fs *MemFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("faultio: remove %s: file does not exist", name)
	}
	delete(fs.files, name)
	fs.record(Event{Kind: EvRemove, Name: name})
	return nil
}

// SyncDir records the barrier (metadata operations are modeled as atomic,
// so it has no further effect on images).
func (fs *MemFS) SyncDir(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.record(Event{Kind: EvSyncDir, Name: dir})
	return nil
}

// --- quit.File shape ----------------------------------------------------

// Write appends p, honoring injected write faults.
func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, fmt.Errorf("faultio: write to closed file %s", f.name)
	}
	if err := takeFault(f.fs.writeErr, f.name); err != nil {
		return 0, fmt.Errorf("faultio: write %s: %w", f.name, err)
	}
	allowed, fail := f.fs.matchWriteErr(f.name, len(f.data), len(p))
	if allowed > 0 {
		f.data = append(f.data, p[:allowed]...)
		f.fs.record(Event{Kind: EvWrite, Name: f.name, Data: append([]byte(nil), p[:allowed]...)})
	}
	if fail {
		return allowed, fmt.Errorf("faultio: write %s at byte %d: %w", f.name, len(f.data), ErrInjected)
	}
	return len(p), nil
}

// Sync marks the file's bytes durable, honoring injected sync faults.
func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := takeFault(f.fs.syncErr, f.name); err != nil {
		return fmt.Errorf("faultio: sync %s: %w", f.name, err)
	}
	f.synced = len(f.data)
	f.fs.record(Event{Kind: EvSync, Name: f.name})
	return nil
}

// Close closes the handle (the file stays in the filesystem).
func (f *memFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.closed = true
	return nil
}

// --- crash-image reconstruction ----------------------------------------

// Cut selects a crash point in a recorded schedule.
type Cut struct {
	// Event is the index of the first schedule entry that does NOT fully
	// reach the disk; len(events) means the whole schedule survived.
	Event int
	// MidBytes optionally lets a prefix of the cut write event itself
	// survive (a torn write). Only meaningful when the cut event is a
	// write.
	MidBytes int
	// SyncedOnly drops all bytes that were not explicitly synced before
	// the cut — the pessimal outcome the sync policies are specified
	// against. When false, every written byte up to the cut survives
	// (write-ordered disk).
	SyncedOnly bool
}

// ImageAt replays the first cut.Event schedule entries (plus an optional
// torn prefix of the cut write) and returns the resulting disk image as a
// name → contents map.
func (fs *MemFS) ImageAt(cut Cut) map[string][]byte {
	events := fs.Events()
	type state struct {
		data   []byte
		synced int
	}
	disk := map[string]*state{}
	apply := func(e Event, limit int) {
		switch e.Kind {
		case EvCreate:
			disk[e.Name] = &state{}
		case EvWrite:
			s, ok := disk[e.Name]
			if !ok {
				s = &state{}
				disk[e.Name] = s
			}
			d := e.Data
			if limit >= 0 && limit < len(d) {
				d = d[:limit]
			}
			s.data = append(s.data, d...)
		case EvSync:
			if s, ok := disk[e.Name]; ok {
				s.synced = len(s.data)
			}
		case EvRename:
			if s, ok := disk[e.Name]; ok {
				delete(disk, e.Name)
				disk[e.To] = s
			}
		case EvRemove:
			delete(disk, e.Name)
		case EvSyncDir:
			// Metadata ops are modeled atomic; nothing to do.
		}
	}
	n := cut.Event
	if n > len(events) {
		n = len(events)
	}
	for i := 0; i < n; i++ {
		apply(events[i], -1)
	}
	if cut.MidBytes > 0 && n < len(events) && events[n].Kind == EvWrite {
		apply(events[n], cut.MidBytes)
	}
	image := map[string][]byte{}
	for name, s := range disk {
		d := s.data
		if cut.SyncedOnly {
			d = d[:s.synced]
		}
		image[name] = append([]byte(nil), d...)
	}
	return image
}

// --- plain io wrappers for stream-level tests ---------------------------

// ErrWriter passes writes through to W until Limit bytes have been
// written; the write that crosses the limit is cut short and returns
// ErrInjected, and every later write fails immediately — the behavior of
// a device that died at byte Limit.
type ErrWriter struct {
	W       io.Writer
	Limit   int
	written int
}

// Write implements io.Writer with the injected failure.
func (w *ErrWriter) Write(p []byte) (int, error) {
	if w.written >= w.Limit {
		return 0, fmt.Errorf("faultio: write past byte %d: %w", w.Limit, ErrInjected)
	}
	n := len(p)
	if w.written+n > w.Limit {
		n = w.Limit - w.written
	}
	m, err := w.W.Write(p[:n])
	w.written += m
	if err != nil {
		return m, err
	}
	if n < len(p) {
		return n, fmt.Errorf("faultio: write truncated at byte %d: %w", w.Limit, ErrInjected)
	}
	return n, nil
}

// FlipBit returns a copy of b with bit (off, bit) inverted; off addresses
// a byte, bit a position 0-7 within it.
func FlipBit(b []byte, off int, bit uint) []byte {
	out := append([]byte(nil), b...)
	if off >= 0 && off < len(out) {
		out[off] ^= 1 << (bit % 8)
	}
	return out
}
