// Package sware is a clean-room reimplementation of the SWARE
// sortedness-aware indexing paradigm (Raman et al., "Indexing for
// Near-Sorted Data", ICDE 2023 [38]) that the paper benchmarks QuIT against
// (SA-B+-tree, §5.4). The original open-source codebase is substituted by
// this implementation of the same design (see DESIGN.md §3):
//
//   - incoming entries are appended to an in-memory buffer organized in
//     pages; per-page Zonemaps [29] record min/max/sortedness;
//   - a global Bloom filter plus per-page Bloom filters [9] shortcut buffer
//     probes at query time (the "couple of layers of Bloom filters", §2);
//   - when the buffer fills, its content is sorted and the maximal prefix
//     that exceeds the tree's maximum key is opportunistically bulk loaded
//     (appended) into the underlying B+-tree; the remainder is top-inserted;
//   - every query first probes the buffer (filters, then Zonemap-qualified
//     pages), then the tree — the read penalty QuIT eliminates;
//   - unsorted pages are sorted lazily the first time a lookup scans them
//     (the query-driven partial sorting "inspired by Cracking" of §2), and
//     sorted pages are probed with interpolation search (§5.4).
//
// The underlying index is the same core.Tree used by every other design in
// this repository, per the paper's "same underlying B+-tree implementation"
// methodology.
package sware

import (
	"sort"

	"github.com/quittree/quit/internal/bloom"
	"github.com/quittree/quit/internal/core"
)

// Config parameterizes an Index.
type Config struct {
	// BufferEntries is the in-memory buffer capacity in entries. The paper
	// defaults the buffer to 1% of the total data size (§5); callers know N
	// and set this accordingly.
	BufferEntries int
	// PageEntries is the number of entries per buffer page (Zonemap/Bloom
	// granularity). Defaults to the tree's leaf capacity.
	PageEntries int
	// FalsePositiveRate configures the per-page Bloom filters; the global
	// filter is sized 4x tighter. Default 0.02.
	FalsePositiveRate float64
	// FillFactor is the leaf fill used when bulk loading into the tree.
	// Default 1.0 (SWARE packs appended leaves).
	FillFactor float64
	// Tree configures the underlying B+-tree. Mode is forced to ModeNone:
	// SWARE's buffering replaces the in-tree fast path.
	Tree core.Config
}

func (c Config) withDefaults() Config {
	if c.BufferEntries <= 0 {
		c.BufferEntries = 1 << 16
	}
	c.Tree.Mode = core.ModeNone
	if c.PageEntries <= 0 {
		if c.Tree.LeafCapacity > 0 {
			c.PageEntries = c.Tree.LeafCapacity
		} else {
			c.PageEntries = core.DefaultLeafCapacity
		}
	}
	if c.BufferEntries < c.PageEntries {
		c.BufferEntries = c.PageEntries
	}
	if c.FalsePositiveRate <= 0 || c.FalsePositiveRate >= 1 {
		c.FalsePositiveRate = 0.02
	}
	if c.FillFactor <= 0 || c.FillFactor > 1 {
		c.FillFactor = 1.0
	}
	return c
}

// page is one buffer page with its Zonemap and Bloom filter.
type page struct {
	keys   []int64
	vals   []int64
	min    int64
	max    int64
	sorted bool
	bloom  *bloom.Filter
}

// Stats counts SWARE-specific events on top of the underlying tree's stats.
type Stats struct {
	Appends        int64 // entries accepted into the buffer
	Flushes        int64 // buffer flushes
	BulkLoaded     int64 // entries that flushed through the bulk-load path
	TopInserted    int64 // entries that flushed through top-inserts
	BufferHits     int64 // point lookups answered from the buffer
	BufferProbes   int64 // page probes that passed the filters
	FilterNegative int64 // lookups short-circuited by the global filter
	Cracks         int64 // unsorted pages sorted on first probe (query-driven)
	Tree           core.Stats
}

// Index is a SWARE-buffered sortedness-aware index (the paper's SA-B+-tree).
// It is single-goroutine, like the experiments that use it.
type Index struct {
	cfg    Config
	tree   *core.Tree[int64, int64]
	pages  []*page
	active *page
	global *bloom.Filter
	size   int
	st     Stats
}

// New builds an empty SWARE index.
func New(cfg Config) *Index {
	cfg = cfg.withDefaults()
	ix := &Index{
		cfg:    cfg,
		tree:   core.New[int64, int64](cfg.Tree),
		global: bloom.NewWithEstimates(uint64(cfg.BufferEntries), cfg.FalsePositiveRate/4),
	}
	ix.startPage()
	return ix
}

// Tree exposes the underlying B+-tree (read-only use intended).
func (ix *Index) Tree() *core.Tree[int64, int64] { return ix.tree }

// Stats snapshots the SWARE counters and the underlying tree stats.
func (ix *Index) Stats() Stats {
	s := ix.st
	s.Tree = ix.tree.Stats()
	return s
}

// Len returns the number of live entries (buffer + tree).
func (ix *Index) Len() int { return ix.size + ix.tree.Len() }

// BufferedLen returns the number of entries currently in the buffer.
func (ix *Index) BufferedLen() int {
	n := 0
	for _, p := range ix.pages {
		n += len(p.keys)
	}
	return n
}

func (ix *Index) startPage() {
	p := &page{
		keys:   make([]int64, 0, ix.cfg.PageEntries),
		vals:   make([]int64, 0, ix.cfg.PageEntries),
		sorted: true,
		bloom:  bloom.NewWithEstimates(uint64(ix.cfg.PageEntries), ix.cfg.FalsePositiveRate),
	}
	ix.pages = append(ix.pages, p)
	ix.active = p
}

// Put ingests one entry. Duplicate keys overwrite (the newest wins), exactly
// like the tree's Put.
func (ix *Index) Put(key, val int64) {
	// SWARE insert path: filter maintenance on every insert (part of the
	// design's per-insert cost), then an append to the active buffer page.
	ix.global.Add(uint64(key))
	p := ix.active
	if len(p.keys) == cap(p.keys) {
		ix.startPage()
		p = ix.active
	}
	if len(p.keys) == 0 {
		p.min, p.max = key, key
	} else {
		if key < p.min {
			p.min = key
		}
		if key > p.max {
			p.max = key
		}
		if key < p.keys[len(p.keys)-1] {
			p.sorted = false
		}
	}
	p.bloom.Add(uint64(key))
	p.keys = append(p.keys, key)
	p.vals = append(p.vals, val)
	ix.size++
	ix.st.Appends++
	if ix.size >= ix.cfg.BufferEntries {
		ix.Flush()
	}
}

// Flush empties the buffer into the tree: the sorted run that extends past
// the tree's current maximum is bulk loaded (appended); everything else is
// top-inserted. Filters and Zonemaps are recalibrated (reset).
func (ix *Index) Flush() {
	if ix.size == 0 {
		return
	}
	keys := make([]int64, 0, ix.size)
	vals := make([]int64, 0, ix.size)
	for _, p := range ix.pages {
		keys = append(keys, p.keys...)
		vals = append(vals, p.vals...)
	}
	// Sort the buffered entries (pairs move together); newest duplicate wins.
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	sk := make([]int64, 0, len(keys))
	sv := make([]int64, 0, len(vals))
	for pos, i := range idx {
		if pos+1 < len(idx) && keys[idx[pos+1]] == keys[i] {
			continue // duplicate: a later append supersedes this one
		}
		sk = append(sk, keys[i])
		sv = append(sv, vals[i])
	}

	// Opportunistic bulk loading: the suffix of the sorted run whose keys
	// all exceed the tree's max key can be appended wholesale.
	cut := 0
	if max, _, ok := ix.tree.Max(); ok {
		cut = sort.Search(len(sk), func(i int) bool { return sk[i] > max })
	}
	for i := 0; i < cut; i++ {
		ix.tree.Put(sk[i], sv[i])
	}
	if cut < len(sk) {
		if err := ix.tree.BulkAppend(sk[cut:], sv[cut:], ix.cfg.FillFactor); err != nil {
			// Unreachable by construction; fall back to safety.
			for i := cut; i < len(sk); i++ {
				ix.tree.Put(sk[i], sv[i])
			}
		} else {
			ix.st.BulkLoaded += int64(len(sk) - cut)
		}
	}
	ix.st.TopInserted += int64(cut)
	ix.st.Flushes++

	ix.pages = ix.pages[:0]
	ix.startPage()
	ix.global.Reset()
	ix.size = 0
}

// Get performs a point lookup: buffer first (global filter, then
// Zonemap/Bloom qualified pages, newest page first so the latest duplicate
// wins), then the underlying tree.
func (ix *Index) Get(key int64) (int64, bool) {
	if ix.size > 0 {
		if !ix.global.MayContain(uint64(key)) {
			ix.st.FilterNegative++
		} else {
			for pi := len(ix.pages) - 1; pi >= 0; pi-- {
				p := ix.pages[pi]
				if len(p.keys) == 0 || key < p.min || key > p.max {
					continue // Zonemap prune
				}
				if !p.bloom.MayContain(uint64(key)) {
					continue
				}
				ix.st.BufferProbes++
				if !p.sorted {
					p.crack()
					ix.st.Cracks++
				}
				if v, ok := p.lookup(key); ok {
					ix.st.BufferHits++
					return v, true
				}
			}
		}
	}
	return ix.tree.Get(key)
}

// lookup searches one page: interpolation search when the page is sorted,
// newest-first linear scan otherwise (pages are cracked before point
// lookups, so the linear path only serves Range over never-probed pages).
func (p *page) lookup(key int64) (int64, bool) {
	if p.sorted {
		// Duplicates append in arrival order, so the newest occurrence of
		// key is the last one: probe the upper bound's predecessor.
		i := upperBoundInterp(p.keys, key)
		if i > 0 && p.keys[i-1] == key {
			return p.vals[i-1], true
		}
		return 0, false
	}
	for i := len(p.keys) - 1; i >= 0; i-- {
		if p.keys[i] == key {
			return p.vals[i], true
		}
	}
	return 0, false
}

// crack sorts an unsorted page in place (stable, so the newest duplicate
// stays last), making later probes logarithmic. This is SWARE's
// query-driven partial sorting: the work is only spent on pages that
// queries actually touch.
func (p *page) crack() {
	idx := make([]int, len(p.keys))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return p.keys[idx[a]] < p.keys[idx[b]] })
	nk := make([]int64, len(p.keys))
	nv := make([]int64, len(p.vals))
	for pos, i := range idx {
		nk[pos] = p.keys[i]
		nv[pos] = p.vals[i]
	}
	copy(p.keys, nk)
	copy(p.vals, nv)
	p.sorted = true
}

// upperBoundInterp returns the first index with keys[i] > key, guessing
// positions by linear interpolation over the (sorted) key range and
// falling back to plain binary steps when guesses stop converging — the
// "revenge of the interpolation search" approach the paper cites [42].
func upperBoundInterp(keys []int64, key int64) int {
	lo, hi := 0, len(keys)
	guesses := 0
	for lo < hi {
		var mid int
		if guesses < 3 && hi-lo > 16 && keys[hi-1] > keys[lo] {
			span := float64(keys[hi-1]) - float64(keys[lo])
			frac := (float64(key) - float64(keys[lo])) / span
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			mid = lo + int(frac*float64(hi-lo-1))
			guesses++
		} else {
			mid = int(uint(lo+hi) >> 1)
		}
		if keys[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Range visits entries with start <= key < end in ascending key order,
// merging the buffer contents with the tree scan. fn must not modify the
// index. Returns the number of entries visited.
func (ix *Index) Range(start, end int64, fn func(k, v int64) bool) int {
	if end <= start {
		return 0
	}
	// Collect qualifying buffered entries (newest duplicate wins).
	type kv struct{ k, v int64 }
	var buf []kv
	seen := map[int64]struct{}{}
	for pi := len(ix.pages) - 1; pi >= 0; pi-- {
		p := ix.pages[pi]
		if len(p.keys) == 0 || end <= p.min || start > p.max {
			continue
		}
		for i := len(p.keys) - 1; i >= 0; i-- {
			k := p.keys[i]
			if k < start || k >= end {
				continue
			}
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			buf = append(buf, kv{k, p.vals[i]})
		}
	}
	sort.Slice(buf, func(a, b int) bool { return buf[a].k < buf[b].k })

	visited := 0
	bi := 0
	stopped := false
	emitBuf := func(limit int64, open bool) bool {
		for bi < len(buf) && (open || buf[bi].k < limit) {
			visited++
			if !fn(buf[bi].k, buf[bi].v) {
				return false
			}
			bi++
		}
		return true
	}
	ix.tree.Range(start, end, func(k, v int64) bool {
		if !emitBuf(k, false) {
			stopped = true
			return false
		}
		if _, shadowed := seen[k]; shadowed {
			return true // buffer holds a newer version of this key
		}
		visited++
		if !fn(k, v) {
			stopped = true
			return false
		}
		return true
	})
	if !stopped {
		emitBuf(0, true)
	}
	return visited
}

// MemoryFootprint estimates bytes used: the tree's page model plus the
// buffer pages and filter bit arrays (SWARE's extra memory cost, §2).
func (ix *Index) MemoryFootprint() int64 {
	bytes := ix.tree.MemoryFootprint()
	perPage := int64(ix.cfg.PageEntries) * 16
	bytes += int64(len(ix.pages)) * perPage
	bytes += int64(ix.global.Bits() / 8)
	for _, p := range ix.pages {
		bytes += int64(p.bloom.Bits() / 8)
	}
	return bytes
}
