package sware

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/quittree/quit/internal/bods"
	"github.com/quittree/quit/internal/core"
)

func testConfig() Config {
	return Config{
		BufferEntries: 512,
		Tree:          core.Config{LeafCapacity: 32, InternalFanout: 16},
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	ix := New(testConfig())
	keys := bods.Generate(bods.Spec{N: 20000, K: 0.05, L: 1, Seed: 1})
	for _, k := range keys {
		ix.Put(k, k*3)
	}
	if ix.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", ix.Len(), len(keys))
	}
	for _, k := range keys {
		v, ok := ix.Get(k)
		if !ok || v != k*3 {
			t.Fatalf("Get(%d) = (%d,%v)", k, v, ok)
		}
	}
	if _, ok := ix.Get(int64(len(keys)) + 5); ok {
		t.Fatal("Get reported a missing key present")
	}
	if err := ix.Tree().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLookupsHitBufferBeforeFlush(t *testing.T) {
	ix := New(testConfig())
	for i := int64(0); i < 100; i++ { // below buffer capacity: no flush
		ix.Put(i, i)
	}
	if ix.BufferedLen() != 100 {
		t.Fatalf("BufferedLen = %d", ix.BufferedLen())
	}
	st := ix.Stats()
	if st.Flushes != 0 {
		t.Fatalf("unexpected flush")
	}
	if v, ok := ix.Get(50); !ok || v != 50 {
		t.Fatalf("Get(50) = (%d,%v)", v, ok)
	}
	if ix.Stats().BufferHits == 0 {
		t.Fatal("lookup did not hit the buffer")
	}
}

func TestFlushMovesEverythingToTree(t *testing.T) {
	ix := New(testConfig())
	for i := int64(0); i < 100; i++ {
		ix.Put(i, i)
	}
	ix.Flush()
	if ix.BufferedLen() != 0 {
		t.Fatalf("BufferedLen = %d after flush", ix.BufferedLen())
	}
	if ix.Tree().Len() != 100 {
		t.Fatalf("tree Len = %d", ix.Tree().Len())
	}
	st := ix.Stats()
	if st.Flushes != 1 {
		t.Fatalf("Flushes = %d", st.Flushes)
	}
	if st.BulkLoaded != 100 {
		t.Fatalf("BulkLoaded = %d, want 100 (sorted run on empty tree)", st.BulkLoaded)
	}
	if err := ix.Tree().Validate(); err != nil {
		t.Fatal(err)
	}
	// Flushing an empty buffer is a no-op.
	ix.Flush()
	if ix.Stats().Flushes != 1 {
		t.Fatal("empty flush counted")
	}
}

func TestSortedIngestionBulkLoads(t *testing.T) {
	ix := New(testConfig())
	const n = 10000
	for i := int64(0); i < n; i++ {
		ix.Put(i, i)
	}
	ix.Flush()
	st := ix.Stats()
	// Fully sorted data: every flushed run appends past the tree max.
	if st.TopInserted != 0 {
		t.Fatalf("TopInserted = %d on fully sorted stream", st.TopInserted)
	}
	if st.BulkLoaded != n {
		t.Fatalf("BulkLoaded = %d, want %d", st.BulkLoaded, n)
	}
	// Opportunistic bulk loading packs leaves tightly.
	if occ := ix.Tree().AvgLeafOccupancy(); occ < 0.9 {
		t.Fatalf("occupancy %.2f after bulk loads", occ)
	}
}

func TestDuplicateNewestWins(t *testing.T) {
	ix := New(testConfig())
	ix.Put(7, 1)
	ix.Put(7, 2) // same key, still buffered
	if v, _ := ix.Get(7); v != 2 {
		t.Fatalf("buffered duplicate: Get = %d, want 2", v)
	}
	ix.Flush()
	if v, _ := ix.Get(7); v != 2 {
		t.Fatalf("flushed duplicate: Get = %d, want 2", v)
	}
	if ix.Tree().Len() != 1 {
		t.Fatalf("tree Len = %d, want 1", ix.Tree().Len())
	}
	// Overwrite of a key already in the tree.
	ix.Put(7, 3)
	if v, _ := ix.Get(7); v != 3 {
		t.Fatalf("Get = %d, want 3 (buffer shadows tree)", v)
	}
	ix.Flush()
	if v, _ := ix.Get(7); v != 3 {
		t.Fatalf("Get = %d, want 3 after flush", v)
	}
}

func TestRangeMergesBufferAndTree(t *testing.T) {
	ix := New(testConfig())
	rng := rand.New(rand.NewSource(2))
	oracle := map[int64]int64{}
	keys := bods.Generate(bods.Spec{N: 5000, K: 0.2, L: 1, Seed: 3})
	for _, k := range keys {
		ix.Put(k, k)
		oracle[k] = k
	}
	// Leave some entries in the buffer (no explicit flush).
	for trial := 0; trial < 30; trial++ {
		lo := int64(rng.Intn(5000))
		hi := lo + int64(rng.Intn(800))
		var got []int64
		ix.Range(lo, hi, func(k, v int64) bool {
			got = append(got, k)
			if v != oracle[k] {
				t.Fatalf("Range value mismatch for %d", k)
			}
			return true
		})
		var want []int64
		for k := range oracle {
			if k >= lo && k < hi {
				want = append(want, k)
			}
		}
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		if len(got) != len(want) {
			t.Fatalf("Range(%d,%d) = %d keys, want %d (buffered=%d)",
				lo, hi, len(got), len(want), ix.BufferedLen())
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Range order mismatch at %d", i)
			}
		}
	}
	// Early termination and degenerate ranges.
	n := 0
	ix.Range(0, 5000, func(k, v int64) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
	if ix.Range(10, 10, func(int64, int64) bool { return true }) != 0 {
		t.Fatal("empty range visited entries")
	}
}

func TestBufferProbeCostExists(t *testing.T) {
	// The design premise of Fig. 14b: SWARE pays buffer probes on lookups.
	ix := New(testConfig())
	keys := bods.Generate(bods.Spec{N: 2000, K: 0.05, L: 1, Seed: 9})
	for _, k := range keys[:400] {
		ix.Put(k, k)
	}
	for _, k := range keys[:400] {
		ix.Get(k)
	}
	st := ix.Stats()
	if st.BufferProbes == 0 && st.BufferHits == 0 {
		t.Fatal("no buffer probes recorded on a hot buffer")
	}
}

func TestMemoryFootprintIncludesBufferAndFilters(t *testing.T) {
	ix := New(testConfig())
	base := ix.MemoryFootprint()
	if base <= 0 {
		t.Fatal("empty footprint not positive")
	}
	for i := int64(0); i < 400; i++ {
		ix.Put(i, i)
	}
	if ix.MemoryFootprint() <= base {
		t.Fatal("footprint did not grow with buffered pages")
	}
}

func TestConfigDefaults(t *testing.T) {
	ix := New(Config{})
	if ix.cfg.BufferEntries <= 0 || ix.cfg.PageEntries <= 0 {
		t.Fatalf("defaults not applied: %+v", ix.cfg)
	}
	if ix.cfg.Tree.Mode != core.ModeNone {
		t.Fatal("underlying tree mode not forced to ModeNone")
	}
	// Buffer never smaller than a page.
	ix2 := New(Config{BufferEntries: 3, PageEntries: 64})
	if ix2.cfg.BufferEntries < 64 {
		t.Fatalf("BufferEntries = %d < page", ix2.cfg.BufferEntries)
	}
}

func TestUnsortedPagesStillFindKeys(t *testing.T) {
	ix := New(testConfig())
	// Reverse order within one page: page goes unsorted, lookup must scan.
	for i := int64(99); i >= 0; i-- {
		ix.Put(i, i+1000)
	}
	for i := int64(0); i < 100; i++ {
		v, ok := ix.Get(i)
		if !ok || v != i+1000 {
			t.Fatalf("Get(%d) = (%d,%v)", i, v, ok)
		}
	}
	ix.Flush()
	if err := ix.Tree().Validate(); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		if v, _ := ix.Get(i); v != i+1000 {
			t.Fatalf("post-flush Get(%d) = %d", i, v)
		}
	}
}

func TestCrackingSortsProbedPages(t *testing.T) {
	ix := New(testConfig())
	// Reverse order within the active page: unsorted.
	for i := int64(99); i >= 0; i-- {
		ix.Put(i, i)
	}
	if ix.Stats().Cracks != 0 {
		t.Fatal("crack before any probe")
	}
	if v, ok := ix.Get(50); !ok || v != 50 {
		t.Fatalf("Get(50) = (%d,%v)", v, ok)
	}
	if ix.Stats().Cracks == 0 {
		t.Fatal("probe did not crack the unsorted page")
	}
	// Probing every key cracks each touched page at most once; a second
	// full probe pass must not crack anything further.
	for i := int64(0); i < 100; i++ {
		if v, ok := ix.Get(i); !ok || v != i {
			t.Fatalf("post-crack Get(%d) = (%d,%v)", i, v, ok)
		}
	}
	settled := ix.Stats().Cracks
	for i := int64(0); i < 100; i++ {
		ix.Get(i)
	}
	if ix.Stats().Cracks != settled {
		t.Fatalf("pages recracked: %d -> %d", settled, ix.Stats().Cracks)
	}
}

func TestCrackingPreservesNewestDuplicate(t *testing.T) {
	ix := New(testConfig())
	ix.Put(7, 1)
	ix.Put(3, 0) // unsort the page
	ix.Put(7, 2) // newer duplicate
	if v, _ := ix.Get(7); v != 2 {
		t.Fatalf("Get(7) = %d before crack settles, want 2", v)
	}
	// The probe cracked the page; the stable sort must keep value 2 visible.
	if v, _ := ix.Get(7); v != 2 {
		t.Fatalf("Get(7) = %d after crack, want 2", v)
	}
}

func TestUpperBoundInterp(t *testing.T) {
	// Against the plain binary search on assorted distributions.
	distros := [][]int64{
		{},
		{5},
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
		{0, 0, 0, 1, 1, 2, 100, 1000, 1000, 1000000},
	}
	rng := rand.New(rand.NewSource(13))
	long := make([]int64, 3000)
	for i := range long {
		long[i] = int64(rng.Intn(1000)) * int64(rng.Intn(1000))
	}
	sort.Slice(long, func(a, b int) bool { return long[a] < long[b] })
	distros = append(distros, long)
	for _, keys := range distros {
		for trial := 0; trial < 500; trial++ {
			var key int64
			if len(keys) > 0 && trial%2 == 0 {
				key = keys[rng.Intn(len(keys))] + int64(rng.Intn(3)-1)
			} else {
				key = int64(rng.Intn(2000000) - 1000)
			}
			want := sort.Search(len(keys), func(i int) bool { return keys[i] > key })
			if got := upperBoundInterp(keys, key); got != want {
				t.Fatalf("upperBoundInterp(%d) = %d, want %d (len %d)", key, got, want, len(keys))
			}
		}
	}
}
