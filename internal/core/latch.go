package core

// latch.go is the tree-level latching layer: every node latch acquisition
// in the package goes through the helpers here (plus the latch type in
// latch_olc.go / latch_race.go). No other file touches a node's latch
// directly.
//
// Protocol (paper §4.5, upgraded to optimistic lock coupling in the
// FB+-tree style):
//
//   - Readers (Get, Range, Scan, Min, Max, Floor, Ceiling) descend
//     optimistically: snapshot a node's version, read it, validate the
//     version, hand over to the child, and restart the whole operation from
//     the root when any validation fails. They acquire no locks and write
//     no shared memory, so read throughput scales with cores and is
//     unaffected by the fast-path metadata latch.
//   - Writers take write latches only at the nodes they mutate. A plain
//     insert or delete descends optimistically like a reader and upgrades
//     the leaf's version to a write latch with a CAS; structural changes
//     (splits, rebalances, QuIT redistributions) fall back to a pessimistic
//     descent that write-latches the path root-to-leaf with classical
//     crabbing, releasing ancestors as soon as a child is split-safe.
//   - Nodes unlinked by merges or root collapses are tagged obsolete while
//     still latched; a reader that reaches one through a stale pointer
//     fails its next validation and restarts, and a writer that blocked on
//     one (writeLatchLive) fails its acquisition and re-routes. Go's
//     garbage collector keeps such nodes alive until the last stale
//     reference drops, so no epoch reclamation is needed.
//   - New nodes are created write-latched (splits, root growth) and stay
//     latched until fully initialized and, for split-off leaves, until the
//     pending entry has been inserted. Splits publish nodes early — through
//     the leaf chain, the tail pointer, or a new root — so an unlatched
//     fresh node would be readable mid-initialization with a version that
//     never changes, defeating validation.
//
// Lock ordering: node latches root-to-leaf, left-to-right; the fast-path
// meta latch is strictly innermost (taken only while holding at most the
// latches of the nodes involved, never the other way around).
//
// Restarts are counted in Stats.OLCRestarts.
//
// When the tree is not Synchronized every helper short-circuits before
// touching the latch word, so single-goroutine trees pay no latching cost.

// readLatch opens an optimistic read section on n, returning the version to
// validate with. ok=false means n is obsolete and the caller must restart.
func (t *Tree[K, V]) readLatch(n *node[K, V]) (uint64, bool) {
	if !t.synced {
		return 0, true
	}
	return n.lt.readLockOrRestart()
}

// readCheck validates mid-section that n is unchanged; the section stays
// open.
func (t *Tree[K, V]) readCheck(n *node[K, V], v uint64) bool {
	if !t.synced {
		return true
	}
	return n.lt.checkOrRestart(v)
}

// readUnlatch closes a read section, reporting whether everything read
// inside it was consistent.
func (t *Tree[K, V]) readUnlatch(n *node[K, V], v uint64) bool {
	if !t.synced {
		return true
	}
	return n.lt.readUnlockOrRestart(v)
}

// readAbort abandons a read section on a restart path.
func (t *Tree[K, V]) readAbort(n *node[K, V]) {
	if t.synced {
		n.lt.readAbort()
	}
}

// upgradeLatch converts a read section on n into a write latch; on failure
// the section is consumed and the caller must restart.
func (t *Tree[K, V]) upgradeLatch(n *node[K, V], v uint64) bool {
	if !t.synced {
		return true
	}
	return n.lt.upgradeToWriteLockOrRestart(v)
}

// writeLatch acquires n's write latch pessimistically. Callers must know n
// cannot be unlinked while they wait — i.e. they hold a latch on n's parent
// or an ancestor that blocks every rebalance of n. When that is not
// guaranteed (the node was reached through a pointer, not a latched path),
// use writeLatchLive instead.
func (t *Tree[K, V]) writeLatch(n *node[K, V]) {
	if t.synced {
		n.lt.writeLock()
	}
}

// writeLatchLive acquires n's write latch pessimistically, failing when n
// was merged away (marked obsolete) before the latch was won. This is the
// acquisition for nodes reached outside the latched descent — the
// fast-path leaf located via fp metadata (tryFastInsert, tryFastRun) and
// the rightmost leaf located via the atomic tail pointer (tryTailTopUp) —
// where a concurrent rebalance can unlink the node while the caller
// blocks. Exactly these callers are allowlisted by quitlint's latchorder
// rule 3. On failure the caller must re-route through a fresh descent.
func (t *Tree[K, V]) writeLatchLive(n *node[K, V]) bool {
	if !t.synced {
		return true
	}
	return n.lt.writeLockOrRestart()
}

// tryWriteLatch attempts n's write latch with a single non-blocking probe.
// It is the only latch acquisition permitted while holding the meta mutex:
// since it cannot wait, holding meta across it cannot complete a
// hold-and-wait cycle with writers that take meta under a node latch.
func (t *Tree[K, V]) tryWriteLatch(n *node[K, V]) bool {
	if !t.synced {
		return true
	}
	return n.lt.tryWriteLock()
}

// writeUnlatch releases n's write latch, bumping its version.
func (t *Tree[K, V]) writeUnlatch(n *node[K, V]) {
	if t.synced {
		n.lt.writeUnlock()
	}
}

// markObsolete tags a write-latched node as unlinked from the tree.
func (t *Tree[K, V]) markObsolete(n *node[K, V]) {
	if t.synced {
		n.lt.markObsolete()
	}
}

// olcRestart records one optimistic restart in the stats.
func (t *Tree[K, V]) olcRestart() {
	t.c.olcRestarts.Add(1)
}

// readRoot opens a read section on the current root. A concurrent root swap
// between loading the pointer and reading the version is caught by
// re-loading the pointer inside the section.
func (t *Tree[K, V]) readRoot() (*node[K, V], uint64) {
	for {
		n := t.root.Load()
		v, ok := t.readLatch(n)
		if !ok {
			t.olcRestart()
			continue
		}
		if t.synced && t.root.Load() != n {
			t.readAbort(n)
			t.olcRestart()
			continue
		}
		return n, v
	}
}

// descendToLeaf optimistically descends to the leaf that owns key, handing
// version validation over parent to child, and returns the leaf with its
// still-open read section. Restarts internally on any conflict.
func (t *Tree[K, V]) descendToLeaf(key K) (*node[K, V], uint64) {
	for {
		n, v := t.readRoot()
		ok := true
		for !n.isLeaf() {
			c, cok := n.childAt(n.route(key))
			if !cok {
				t.readAbort(n)
				ok = false
				break
			}
			cv, lok := t.readLatch(c)
			if !lok {
				t.readAbort(n)
				ok = false
				break
			}
			if !t.readUnlatch(n, v) {
				t.readAbort(c)
				ok = false
				break
			}
			n, v = c, cv
		}
		if ok {
			return n, v
		}
		t.olcRestart()
	}
}

// writeLockedRoot write-latches the current root, retrying if a concurrent
// root swap moves the pointer between the load and the latch. Entry point
// of every pessimistic descent.
func (t *Tree[K, V]) writeLockedRoot() *node[K, V] {
	for {
		r := t.root.Load()
		t.writeLatch(r)
		if !t.synced || t.root.Load() == r {
			return r
		}
		t.writeUnlatch(r)
		t.olcRestart()
	}
}

// unlockPathFrom releases the write latches a pessimistic descent still
// holds (path entries lockedFrom onward).
func (t *Tree[K, V]) unlockPathFrom(path []pathEntry[K, V], lockedFrom int) {
	for i := lockedFrom; i < len(path); i++ {
		t.writeUnlatch(path[i].n)
	}
}
