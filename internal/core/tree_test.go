package core

import (
	"math/rand"
	"sort"
	"testing"
)

var allModes = []Mode{ModeNone, ModeTail, ModeLIL, ModePOLE, ModeQuIT}

func smallConfig(m Mode) Config {
	return Config{Mode: m, LeafCapacity: 8, InternalFanout: 5}
}

// workloads returns named key sequences exercising different sortedness
// shapes. Keys are unique.
func workloads(n int, seed int64) map[string][]int64 {
	rng := rand.New(rand.NewSource(seed))
	sorted := make([]int64, n)
	for i := range sorted {
		sorted[i] = int64(i) * 3 // gaps so lookups can miss
	}
	reversed := make([]int64, n)
	for i := range reversed {
		reversed[i] = sorted[n-1-i]
	}
	random := append([]int64(nil), sorted...)
	rng.Shuffle(n, func(i, j int) { random[i], random[j] = random[j], random[i] })
	near := nearSorted(sorted, 0.05, 0.5, rng)
	veryNear := nearSorted(sorted, 0.005, 1.0, rng)
	return map[string][]int64{
		"sorted":     sorted,
		"reversed":   reversed,
		"random":     random,
		"nearsorted": near,
		"verynear":   veryNear,
	}
}

// nearSorted displaces a k-fraction of entries by up to l*n positions.
func nearSorted(sorted []int64, k, l float64, rng *rand.Rand) []int64 {
	out := append([]int64(nil), sorted...)
	n := len(out)
	maxDisp := int(l * float64(n))
	if maxDisp < 1 {
		maxDisp = 1
	}
	swaps := int(k * float64(n) / 2)
	for s := 0; s < swaps; s++ {
		i := rng.Intn(n)
		d := rng.Intn(maxDisp) + 1
		j := i + d
		if j >= n {
			j = i - d
			if j < 0 {
				continue
			}
		}
		out[i], out[j] = out[j], out[i]
	}
	return out
}

func insertAll(t *testing.T, tr *Tree[int64, int64], keys []int64) {
	t.Helper()
	for _, k := range keys {
		tr.Put(k, k*10)
	}
}

func TestPutGetAllModesAllWorkloads(t *testing.T) {
	for _, mode := range allModes {
		for name, keys := range workloads(2000, 42) {
			t.Run(mode.String()+"/"+name, func(t *testing.T) {
				tr := New[int64, int64](smallConfig(mode))
				insertAll(t, tr, keys)
				if err := tr.Validate(); err != nil {
					t.Fatalf("validate: %v", err)
				}
				if tr.Len() != len(keys) {
					t.Fatalf("Len = %d, want %d", tr.Len(), len(keys))
				}
				for _, k := range keys {
					v, ok := tr.Get(k)
					if !ok || v != k*10 {
						t.Fatalf("Get(%d) = (%d,%v), want (%d,true)", k, v, ok, k*10)
					}
				}
				// Misses between the key gaps.
				for _, k := range keys[:100] {
					if _, ok := tr.Get(k + 1); ok {
						t.Fatalf("Get(%d) unexpectedly present", k+1)
					}
				}
				got := tr.Keys()
				want := append([]int64(nil), keys...)
				sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
				if len(got) != len(want) {
					t.Fatalf("Keys() has %d entries, want %d", len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("Keys()[%d] = %d, want %d", i, got[i], want[i])
					}
				}
				st := tr.Stats()
				if st.Inserts() != int64(len(keys)) {
					t.Fatalf("fast+top inserts = %d, want %d", st.Inserts(), len(keys))
				}
			})
		}
	}
}

func TestUpdateOverwrites(t *testing.T) {
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			tr := New[int64, int64](smallConfig(mode))
			for i := int64(0); i < 500; i++ {
				tr.Put(i, i)
			}
			for i := int64(0); i < 500; i++ {
				prev, existed := tr.Put(i, i+1000)
				if !existed || prev != i {
					t.Fatalf("Put(%d) = (%d,%v), want (%d,true)", i, prev, existed, i)
				}
			}
			st := tr.Stats()
			if st.Updates != 500 {
				t.Fatalf("Updates = %d, want 500", st.Updates)
			}
			if tr.Len() != 500 {
				t.Fatalf("Len = %d, want 500", tr.Len())
			}
			for i := int64(0); i < 500; i++ {
				if v, _ := tr.Get(i); v != i+1000 {
					t.Fatalf("Get(%d) = %d after update", i, v)
				}
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSortedIngestionIsAllFastInserts(t *testing.T) {
	for _, mode := range []Mode{ModeTail, ModeLIL, ModePOLE, ModeQuIT} {
		t.Run(mode.String(), func(t *testing.T) {
			tr := New[int64, int64](Config{Mode: mode, LeafCapacity: 16, InternalFanout: 8})
			for i := int64(0); i < 5000; i++ {
				tr.Put(i, i)
			}
			st := tr.Stats()
			if st.TopInserts != 0 {
				t.Fatalf("%v: %d top-inserts on fully sorted data, want 0 (fast=%d)",
					mode, st.TopInserts, st.FastInserts)
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestClassicalTreeOnlyTopInserts(t *testing.T) {
	tr := New[int64, int64](smallConfig(ModeNone))
	for i := int64(0); i < 1000; i++ {
		tr.Put(i, i)
	}
	st := tr.Stats()
	if st.FastInserts != 0 {
		t.Fatalf("ModeNone performed %d fast-inserts", st.FastInserts)
	}
	if st.TopInserts != 1000 {
		t.Fatalf("TopInserts = %d, want 1000", st.TopInserts)
	}
}

func TestQuITPacksSortedLeavesTightly(t *testing.T) {
	quit := New[int64, int64](Config{Mode: ModeQuIT, LeafCapacity: 16, InternalFanout: 8})
	btree := New[int64, int64](Config{Mode: ModeNone, LeafCapacity: 16, InternalFanout: 8})
	for i := int64(0); i < 10000; i++ {
		quit.Put(i, i)
		btree.Put(i, i)
	}
	qo := quit.AvgLeafOccupancy()
	bo := btree.AvgLeafOccupancy()
	if qo < 0.9 {
		t.Fatalf("QuIT occupancy on sorted data = %.2f, want >= 0.9", qo)
	}
	if bo > 0.6 {
		t.Fatalf("B+-tree occupancy on sorted data = %.2f, want ~0.5", bo)
	}
	if err := quit.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteRandomHalf(t *testing.T) {
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			tr := New[int64, int64](smallConfig(mode))
			n := 3000
			keys := rng.Perm(n)
			for _, k := range keys {
				tr.Put(int64(k), int64(k))
			}
			deleted := make(map[int64]bool)
			for i, k := range keys {
				if i%2 == 0 {
					v, ok := tr.Delete(int64(k))
					if !ok || v != int64(k) {
						t.Fatalf("Delete(%d) = (%d,%v)", k, v, ok)
					}
					deleted[int64(k)] = true
					if i%500 == 0 {
						if err := tr.Validate(); err != nil {
							t.Fatalf("validate after %d deletes: %v", i/2+1, err)
						}
					}
				}
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			if tr.Len() != n-len(deleted) {
				t.Fatalf("Len = %d, want %d", tr.Len(), n-len(deleted))
			}
			for _, k := range keys {
				_, ok := tr.Get(int64(k))
				if ok == deleted[int64(k)] {
					t.Fatalf("Get(%d) presence = %v, deleted = %v", k, ok, deleted[int64(k)])
				}
			}
			// Deleting a missing key is a no-op.
			if _, ok := tr.Delete(int64(n + 100)); ok {
				t.Fatal("Delete of missing key reported ok")
			}
		})
	}
}

func TestDeleteEverything(t *testing.T) {
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			tr := New[int64, int64](smallConfig(mode))
			const n = 1000
			for i := int64(0); i < n; i++ {
				tr.Put(i, i)
			}
			order := rand.New(rand.NewSource(3)).Perm(n)
			for _, k := range order {
				if _, ok := tr.Delete(int64(k)); !ok {
					t.Fatalf("Delete(%d) missed", k)
				}
			}
			if tr.Len() != 0 {
				t.Fatalf("Len = %d after deleting all", tr.Len())
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			// The tree remains usable.
			for i := int64(0); i < 100; i++ {
				tr.Put(i, i)
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			if tr.Len() != 100 {
				t.Fatalf("Len = %d after reuse", tr.Len())
			}
		})
	}
}

func TestRangeAgainstOracle(t *testing.T) {
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			tr := New[int64, int64](smallConfig(mode))
			keys := workloads(3000, 5)["nearsorted"]
			insertAll(t, tr, keys)
			sorted := append([]int64(nil), keys...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

			for trial := 0; trial < 50; trial++ {
				lo := sorted[rng.Intn(len(sorted))] - int64(rng.Intn(3))
				hi := lo + int64(rng.Intn(2000))
				var got []int64
				tr.Range(lo, hi, func(k, v int64) bool {
					got = append(got, k)
					return true
				})
				var want []int64
				from := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= lo })
				for i := from; i < len(sorted) && sorted[i] < hi; i++ {
					want = append(want, sorted[i])
				}
				if len(got) != len(want) {
					t.Fatalf("Range(%d,%d) returned %d keys, want %d", lo, hi, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("Range(%d,%d)[%d] = %d, want %d", lo, hi, i, got[i], want[i])
					}
				}
			}
			// Early termination.
			count := 0
			tr.Range(sorted[0], sorted[len(sorted)-1]+1, func(k, v int64) bool {
				count++
				return count < 10
			})
			if count != 10 {
				t.Fatalf("early-terminated Range visited %d, want 10", count)
			}
			// Empty and inverted ranges.
			if n := tr.Range(10, 10, func(int64, int64) bool { return true }); n != 0 {
				t.Fatalf("empty range visited %d", n)
			}
			if n := tr.Range(100, 50, func(int64, int64) bool { return true }); n != 0 {
				t.Fatalf("inverted range visited %d", n)
			}
		})
	}
}

func TestMinMax(t *testing.T) {
	tr := New[int64, int64](smallConfig(ModeQuIT))
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree reported ok")
	}
	if _, _, ok := tr.Max(); ok {
		t.Fatal("Max on empty tree reported ok")
	}
	keys := workloads(1000, 9)["random"]
	insertAll(t, tr, keys)
	k, _, ok := tr.Min()
	if !ok || k != 0 {
		t.Fatalf("Min = (%d,%v), want (0,true)", k, ok)
	}
	k, _, ok = tr.Max()
	if !ok || k != int64(999)*3 {
		t.Fatalf("Max = (%d,%v)", k, ok)
	}
}

func TestEmptyTreeOperations(t *testing.T) {
	tr := New[int64, int64](smallConfig(ModeQuIT))
	if _, ok := tr.Get(5); ok {
		t.Fatal("Get on empty tree reported ok")
	}
	if _, ok := tr.Delete(5); ok {
		t.Fatal("Delete on empty tree reported ok")
	}
	if n := tr.Range(0, 100, func(int64, int64) bool { return true }); n != 0 {
		t.Fatalf("Range on empty tree visited %d", n)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() != 1 {
		t.Fatalf("Height = %d, want 1", tr.Height())
	}
}

func TestSingleLeafLifecycle(t *testing.T) {
	tr := New[int64, int64](smallConfig(ModeQuIT))
	tr.Put(1, 10)
	tr.Put(2, 20)
	if v, ok := tr.Get(1); !ok || v != 10 {
		t.Fatalf("Get(1) = (%d,%v)", v, ok)
	}
	if _, ok := tr.Delete(1); !ok {
		t.Fatal("Delete(1) missed")
	}
	if _, ok := tr.Delete(2); !ok {
		t.Fatal("Delete(2) missed")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInterleavedInsertDelete(t *testing.T) {
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(21))
			tr := New[int64, int64](smallConfig(mode))
			oracle := make(map[int64]int64)
			for op := 0; op < 20000; op++ {
				k := int64(rng.Intn(2000))
				switch rng.Intn(3) {
				case 0, 1:
					v := int64(op)
					tr.Put(k, v)
					oracle[k] = v
				case 2:
					_, gotOK := tr.Delete(k)
					_, wantOK := oracle[k]
					if gotOK != wantOK {
						t.Fatalf("op %d: Delete(%d) ok=%v, oracle=%v", op, k, gotOK, wantOK)
					}
					delete(oracle, k)
				}
				if op%2500 == 0 {
					if err := tr.Validate(); err != nil {
						t.Fatalf("op %d: %v", op, err)
					}
				}
			}
			if tr.Len() != len(oracle) {
				t.Fatalf("Len = %d, oracle %d", tr.Len(), len(oracle))
			}
			for k, v := range oracle {
				got, ok := tr.Get(k)
				if !ok || got != v {
					t.Fatalf("Get(%d) = (%d,%v), want (%d,true)", k, got, ok, v)
				}
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestConfigDefaults(t *testing.T) {
	tr := New[int64, int64](Config{Mode: ModeQuIT})
	cfg := tr.Config()
	if cfg.LeafCapacity != DefaultLeafCapacity {
		t.Fatalf("LeafCapacity = %d", cfg.LeafCapacity)
	}
	if cfg.InternalFanout != DefaultInternalFanout {
		t.Fatalf("InternalFanout = %d", cfg.InternalFanout)
	}
	if cfg.IKRScale != 1.5 {
		t.Fatalf("IKRScale = %v", cfg.IKRScale)
	}
	// floor(sqrt(510)) = 22, the paper's TR.
	if cfg.ResetThreshold != 22 {
		t.Fatalf("ResetThreshold = %d, want 22", cfg.ResetThreshold)
	}
	if got := tr.Mode(); got != ModeQuIT {
		t.Fatalf("Mode = %v", got)
	}
}

func TestModeString(t *testing.T) {
	want := map[Mode]string{
		ModeNone: "B+-tree", ModeTail: "tail-B+-tree", ModeLIL: "lil-B+-tree",
		ModePOLE: "pole-B+-tree", ModeQuIT: "QuIT", Mode(99): "unknown",
	}
	for m, s := range want {
		if m.String() != s {
			t.Fatalf("Mode(%d).String() = %q, want %q", m, m.String(), s)
		}
	}
}

func TestHeightGrowsAndShrinks(t *testing.T) {
	tr := New[int64, int64](Config{Mode: ModeNone, LeafCapacity: 4, InternalFanout: 4})
	if tr.Height() != 1 {
		t.Fatal("fresh tree height != 1")
	}
	for i := int64(0); i < 500; i++ {
		tr.Put(i, i)
	}
	grown := tr.Height()
	if grown < 4 {
		t.Fatalf("height after 500 inserts = %d, want >= 4", grown)
	}
	for i := int64(0); i < 490; i++ {
		tr.Delete(i)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() >= grown {
		t.Fatalf("height did not shrink: %d -> %d", grown, tr.Height())
	}
}

func TestStatsShapeCounters(t *testing.T) {
	tr := New[int64, int64](Config{Mode: ModeQuIT, LeafCapacity: 8, InternalFanout: 5})
	for i := int64(0); i < 1000; i++ {
		tr.Put(i, i)
	}
	st := tr.Stats()
	if st.Size != 1000 {
		t.Fatalf("Size = %d", st.Size)
	}
	if st.Leaves < 100 {
		t.Fatalf("Leaves = %d, want >= 100 with capacity 8", st.Leaves)
	}
	if st.Internals == 0 {
		t.Fatal("no internal nodes after 1000 inserts")
	}
	if st.LeafSplits == 0 {
		t.Fatal("no leaf splits recorded")
	}
	if st.Height < 3 {
		t.Fatalf("Height = %d", st.Height)
	}
	if tr.MemoryFootprint() <= 0 {
		t.Fatal("MemoryFootprint not positive")
	}
	tr.ResetCounters()
	st = tr.Stats()
	if st.FastInserts != 0 || st.LeafSplits != 0 {
		t.Fatal("ResetCounters did not zero counters")
	}
	if st.Size != 1000 {
		t.Fatal("ResetCounters changed Size")
	}
}
