package core

// bound is an optionally-open range endpoint for a leaf's key range.
type bound[K Integer] struct {
	key K
	ok  bool
}

func closed[K Integer](k K) bound[K] { return bound[K]{key: k, ok: true} }

// fpContains reports whether key routes to the current fast-path leaf,
// i.e. lies within [fp.min, fp.max). An unset max (the leaf is the
// rightmost) imposes no upper bound — this is also how the paper's "omit
// the upper bound check when pole is the tail leaf" rule falls out.
// Callers must hold the meta latch in synchronized mode.
func (t *Tree[K, V]) fpContains(key K) bool {
	fp := &t.fp
	if fp.hasMin && key < fp.min {
		return false
	}
	if fp.hasMax && key >= fp.max {
		return false
	}
	return true
}

// setFP repoints the fast path at leaf with the given routing bounds and
// cached path. Callers must hold the meta latch in synchronized mode.
func (t *Tree[K, V]) setFP(leaf *node[K, V], lo, hi bound[K], path []*node[K, V]) {
	fp := &t.fp
	fp.leaf = leaf
	fp.min, fp.hasMin = lo.key, lo.ok
	fp.max, fp.hasMax = hi.key, hi.ok
	fp.size = leaf.leafCount()
	if cap(fp.path) < len(path) {
		fp.path = make([]*node[K, V], len(path))
	}
	fp.path = fp.path[:len(path)]
	copy(fp.path, path)
}

// fpPathValid checks that the cached root-to-leaf path still describes the
// true ancestry of the fast-path leaf. The cache is best-effort: splits
// elsewhere in the tree may have restructured ancestors, in which case the
// caller re-descends (and refreshes the cache). Callers must hold the meta
// latch in synchronized mode; in unsynchronized trees this is exact.
func (t *Tree[K, V]) fpPathValid() bool {
	fp := &t.fp
	if fp.leaf == nil || len(fp.path) == 0 {
		return false
	}
	if fp.path[0] != t.root.Load() || fp.path[len(fp.path)-1] != fp.leaf {
		return false
	}
	if fp.leaf.leafCount() == 0 {
		return false
	}
	routeKey := fp.leaf.minKey()
	for i := 0; i < len(fp.path)-1; i++ {
		n := fp.path[i]
		if n.isLeaf() {
			return false
		}
		if n.children[n.route(routeKey)] != fp.path[i+1] {
			return false
		}
	}
	return true
}

// afterTopInsert applies the mode-specific fast-path maintenance that
// follows a successful top-insert of key into target (paper Fig. 4b for
// lil; Algorithm 1 lines 11-14 and the §4.3 reset strategy for pole).
// target is still locked by the caller; lo/hi are its routing bounds and
// path its root..leaf descent path.
func (t *Tree[K, V]) afterTopInsert(target *node[K, V], key K, lo, hi bound[K], path []*node[K, V]) {
	switch t.cfg.Mode {
	case ModeNone:
		return
	case ModeTail:
		// The tail pointer is maintained by splits; a top-insert never
		// changes which leaf is rightmost. It can still land in the tail
		// leaf (a key below fp_min but within the leaf's true range), so
		// keep fp_size honest.
		t.lockMeta()
		if target == t.fp.leaf {
			t.fp.size++
		}
		t.unlockMeta()
		return
	case ModeLIL:
		t.lockMeta()
		t.setFP(target, lo, hi, path)
		t.unlockMeta()
		return
	}

	// ModePOLE / ModeQuIT.
	t.lockMeta()
	defer t.unlockMeta()
	fp := &t.fp

	if target == fp.leaf {
		// The entry landed in pole through the slow path (possible in
		// synchronized fallbacks); treat it as pole growth.
		fp.size++
		fp.fails = 0
		return
	}
	if target == fp.prev && fp.prevValid {
		fp.prevSize++
		if key < fp.prevMin {
			fp.prevMin = key
		}
	}

	// Catch-up to predicted outliers (§4.2, Algorithm 1 lines 11-14): a
	// top-insert into pole_next — the pole's chain successor (Fig. 6) —
	// that IKR no longer judges an outlier moves the fast path forward.
	// This is also how pole follows the in-order frontier when it crosses
	// into a pre-existing leaf without splitting.
	if target.prev.Load() == fp.leaf && fp.prevValid && fp.prevSize > 0 && fp.size > 0 {
		x := t.est.Bound(float64(fp.prevMin), float64(fp.min), fp.prevSize, fp.size)
		if t.cfg.UnconditionalCatchUp || float64(key) <= x {
			oldPole := fp.leaf
			oldMin := fp.min
			oldSize := fp.size
			t.setFP(target, lo, hi, path)
			fp.prev = oldPole
			fp.prevMin = oldMin
			fp.prevSize = oldSize
			fp.prevValid = true
			fp.fails = 0
			t.c.catchUps.Add(1)
			return
		}
	}

	if t.cfg.Mode != ModeQuIT {
		return // pole-B+-tree has no reset strategy
	}
	fp.fails++
	if fp.fails < t.cfg.ResetThreshold {
		return
	}
	// Reset: repoint pole at the leaf that accepted the latest insert
	// (§4.3). pole_prev metadata is rebuilt from the left neighbor when we
	// can read it race-free; otherwise IKR stays disabled until the next
	// split re-establishes it.
	t.setFP(target, lo, hi, path)
	fp.fails = 0
	fp.prevValid = false
	if prev := target.prev.Load(); !t.synced && prev != nil && prev.leafCount() > 0 {
		fp.prev = prev
		fp.prevMin = prev.minKey()
		fp.prevSize = prev.leafCount()
		fp.prevValid = true
	}
	t.c.resets.Add(1)
}

// resetFPToTail repoints the fast path at the rightmost leaf, used as a
// conservative recovery after deletes restructure nodes the fast-path
// metadata refers to. Caller must hold the meta latch in synchronized mode.
func (t *Tree[K, V]) resetFPToTail() {
	if t.cfg.Mode == ModeNone {
		return
	}
	fp := &t.fp
	fp.prevValid = false
	fp.prev = nil
	fp.fails = 0
	leaf := t.tail.Load()
	fp.leaf = leaf
	fp.hasMax = false
	fp.size = leaf.leafCount()
	if fp.size > 0 {
		fp.min, fp.hasMin = leaf.minKey(), true
	} else {
		fp.hasMin = false
	}
	fp.path = fp.path[:0] // force re-descent before the next fast split
}
