package core

// Put inserts key with value val, or overwrites the existing value if key
// is already present. It returns the previous value and whether the key
// existed. New keys are ingested through the mode's fast path whenever the
// fast-path predictor admits them, and through a classical top-insert
// otherwise.
func (t *Tree[K, V]) Put(key K, val V) (prev V, existed bool) {
	if t.cfg.Mode != ModeNone {
		if p, ex, handled := t.tryFastInsert(key, val); handled {
			return p, ex
		}
	}
	return t.topInsert(key, val)
}

// Insert is a convenience wrapper around Put that discards the previous
// value.
func (t *Tree[K, V]) Insert(key K, val V) { t.Put(key, val) }

// tryFastInsert attempts the fast-path insertion routine. handled is false
// when the entry must go through a top-insert instead (key outside the
// fast-path range, revalidation failure under concurrency, or a
// synchronized full-leaf case that requires a latched descent).
func (t *Tree[K, V]) tryFastInsert(key K, val V) (prev V, existed, handled bool) {
	t.lockMeta()
	leaf := t.fp.leaf
	if leaf == nil || !t.fpContains(key) {
		t.unlockMeta()
		return prev, false, false
	}
	if !t.tryWriteLatch(leaf) {
		// Contended leaf. Blocking on it while holding meta would invert
		// the lock order, so release meta, latch pessimistically, and
		// revalidate the metadata snapshot latch-first. The blocking
		// acquisition must fail on an obsolete node: a rebalance can merge
		// the leaf away, unlatch it, and reset the fast path only
		// afterwards — so winning the latch race and re-reading fp.leaf is
		// not enough to prove the leaf is still linked.
		t.unlockMeta()
		if !t.writeLatchLive(leaf) {
			return prev, false, false
		}
		t.lockMeta()
		if t.fp.leaf != leaf || !t.fpContains(key) {
			// A concurrent operation moved the fast path between the
			// snapshot and the leaf latch; retry through the top path.
			t.unlockMeta()
			t.writeUnlatch(leaf)
			return prev, false, false
		}
	}

	ins, i, ok := leaf.probe(key)
	if ok {
		prev = leaf.vals[i]
		leaf.vals[i] = val
		t.c.updates.Add(1)
		t.unlockMeta()
		t.writeUnlatch(leaf)
		return prev, true, true
	}

	if leaf.leafCount() < t.cfg.LeafCapacity {
		slot, moved := leaf.gapInsertAt(ins, key, val)
		if leaf.regapWorthwhile(moved) {
			// The pole's in-order stream just paid a long shift — its gap
			// placement has degenerated (e.g. a redistribution drained the
			// bottom slots). Rebuild the frontier shape around the stream's
			// insertion point so the following inserts are O(1) again.
			leaf.refrontierAt(slot + 1)
		}
		t.fp.size++
		t.fp.fails = 0
		t.c.fastInserts.Add(1)
		t.size.Add(1)
		t.unlockMeta()
		t.writeUnlatch(leaf)
		return prev, false, true
	}

	// The fast-path leaf is full and must split (or, for QuIT,
	// redistribute). In synchronized mode this needs ancestor latches, so
	// it goes through the latched descent; unsynchronized trees split in
	// place through the cached fp_path, avoiding the traversal entirely.
	if t.synced {
		t.unlockMeta()
		t.writeUnlatch(leaf)
		return prev, false, false
	}
	path := t.fastSplitPath(key)
	if path == nil {
		// Unsynchronized-only from here on (t.synced returned above), so
		// lockMeta/writeUnlatch were no-ops: there is nothing to release.
		//quitlint:allow latchflow unsynchronized-only path; latch helpers are no-ops when !t.synced
		return prev, false, false
	}

	lo, hi := t.leafBoundsFromFP()
	// Unsynchronized-only path, so the whole tree is logically latched
	// (fullPath) and the returned sibling needs no unlatching.
	target, _, _, _ := t.splitForInsert(path, key, lo, hi, true)
	//quitlint:allow gapwrite unsynchronized-only path; latch helpers are no-ops when !t.synced
	slot, moved := target.gapInsert(key, val)
	if target.regapWorthwhile(moved) {
		if target == t.fp.leaf {
			//quitlint:allow gapwrite unsynchronized-only path; latch helpers are no-ops when !t.synced
			target.refrontierAt(slot + 1)
		} else {
			//quitlint:allow gapwrite unsynchronized-only path; latch helpers are no-ops when !t.synced
			target.respread()
		}
	}
	if target == t.fp.leaf {
		t.fp.size++
	} else if target == t.fp.prev && t.fp.prevValid {
		t.fp.prevSize++
	}
	t.fp.fails = 0
	t.c.fastInserts.Add(1)
	t.size.Add(1)
	//quitlint:allow latchflow unsynchronized-only path; latch helpers are no-ops when !t.synced
	return prev, false, true
}

// leafBoundsFromFP returns the fast-path leaf's routing bounds from the
// metadata (unsynchronized fast-split path only).
func (t *Tree[K, V]) leafBoundsFromFP() (bound[K], bound[K]) {
	var lo, hi bound[K]
	if t.fp.hasMin {
		lo = closed(t.fp.min)
	}
	if t.fp.hasMax {
		hi = closed(t.fp.max)
	}
	return lo, hi
}

// fastSplitPath returns a root-to-leaf path for the fast-path leaf, using
// the cached fp_path when it is still exact and re-descending (and
// refreshing the cache) otherwise. Unsynchronized trees only. Returns nil
// if the fast path is unusable.
func (t *Tree[K, V]) fastSplitPath(key K) []*node[K, V] {
	if t.fpPathValid() {
		return t.fp.path
	}
	path := make([]*node[K, V], 0, t.height.Load())
	n := t.root.Load()
	for {
		path = append(path, n)
		if n.isLeaf() {
			break
		}
		n = n.children[n.route(key)]
	}
	if path[len(path)-1] != t.fp.leaf {
		// The metadata bounds admitted a key the tree routes elsewhere;
		// treat the fast path as stale.
		return nil
	}
	t.fp.path = append(t.fp.path[:0], path...)
	return t.fp.path
}

// pathEntry records one step of a latched descent.
type pathEntry[K Integer, V any] struct {
	n   *node[K, V]
	idx int // child index taken (internal nodes only)
}

// topInsert performs a classical root-to-leaf insertion. The common case —
// the leaf has room — descends optimistically and write-latches only the
// leaf; splits (and pole-region inserts that may redistribute) fall back to
// a pessimistic crabbing descent.
func (t *Tree[K, V]) topInsert(key K, val V) (prev V, existed bool) {
	holdAll := false
	if t.synced && (t.cfg.Mode == ModePOLE || t.cfg.Mode == ModeQuIT) {
		// A top-insert that lands in pole may trigger a QuIT
		// redistribution, which rewrites the separator pivot between
		// pole_prev and pole; that pivot can live arbitrarily high, so the
		// whole path stays latched.
		t.lockMeta()
		holdAll = t.fp.leaf != nil && t.fpContains(key)
		t.unlockMeta()
	}
	if !holdAll {
		if p, ex, handled := t.tryOptimisticInsert(key, val); handled {
			return p, ex
		}
	}
	return t.pessimisticInsert(key, val, holdAll)
}

// tryOptimisticInsert descends without latches and upgrades only the leaf
// to a write latch. handled is false when the leaf is full (a split needs
// the pessimistic descent). Version conflicts retry the descent, counted in
// Stats.OLCRestarts; the upgrade succeeding proves the leaf's key range was
// stable since the parent routed to it, so the insert lands correctly.
func (t *Tree[K, V]) tryOptimisticInsert(key K, val V) (prev V, existed, handled bool) {
	for {
		n, v := t.readRoot()
		var lo, hi bound[K]
		path := make([]*node[K, V], 0, 8)
		path = append(path, n)
		bad := false
		for !n.isLeaf() {
			idx := n.route(key)
			l, h := lo, hi
			if idx > 0 {
				l = closed(n.keys[idx-1])
			}
			if idx < len(n.keys) {
				h = closed(n.keys[idx])
			}
			c, cok := n.childAt(idx)
			if !cok {
				t.readAbort(n)
				bad = true
				break
			}
			cv, ok := t.readLatch(c)
			if !ok {
				t.readAbort(n)
				bad = true
				break
			}
			if !t.readUnlatch(n, v) {
				t.readAbort(c)
				bad = true
				break
			}
			lo, hi = l, h
			path = append(path, c)
			n, v = c, cv
		}
		if bad {
			t.olcRestart()
			continue
		}
		leaf := n
		if leaf.leafCount() >= t.cfg.LeafCapacity {
			// Full: a split is needed; hand over to the pessimistic path.
			if !t.readUnlatch(leaf, v) {
				t.olcRestart()
				continue
			}
			return prev, false, false
		}
		// probe runs under the optimistic read; a successful upgradeLatch
		// proves the leaf version did not change, so both slots stay valid.
		ins, i, found := leaf.probe(key)
		if !t.upgradeLatch(leaf, v) {
			t.olcRestart()
			continue
		}
		if found {
			prev = leaf.vals[i]
			leaf.vals[i] = val
			t.c.updates.Add(1)
			t.writeUnlatch(leaf)
			return prev, true, true
		}
		slot, moved := leaf.gapInsertAt(ins, key, val)
		if leaf.regapWorthwhile(moved) {
			t.lockMeta()
			isPole := leaf == t.fp.leaf
			t.unlockMeta()
			if isPole {
				// The pole reached via descent (fast-path miss): restore
				// the frontier shape around the stream's insertion point.
				leaf.refrontierAt(slot + 1)
			} else {
				// Scattered arrivals: spread the gaps evenly instead.
				leaf.respread()
			}
		}
		t.c.topInserts.Add(1)
		t.size.Add(1)
		t.afterTopInsert(leaf, key, lo, hi, path)
		t.writeUnlatch(leaf)
		return prev, false, true
	}
}

// descendForWrite walks from the root to the leaf for key, recording the
// path and the leaf's routing bounds. In synchronized mode it lock-crabs:
// ancestors are released as soon as a child is guaranteed not to split;
// when holdAll is set every node on the path stays write-latched (needed
// when a QuIT redistribution may rewrite a separator pivot high up, and
// when a batch run or frontier splice may promote several pivots at
// once). lockedFrom is the index of the shallowest still-latched path
// entry.
func (t *Tree[K, V]) descendForWrite(key K, holdAll bool) (path []pathEntry[K, V], lockedFrom int, lo, hi bound[K]) {
	r := t.writeLockedRoot()
	path = make([]pathEntry[K, V], 0, 8)
	path = append(path, pathEntry[K, V]{n: r})
	n := r
	for !n.isLeaf() {
		idx := n.route(key)
		path[len(path)-1].idx = idx
		if idx > 0 {
			lo = closed(n.keys[idx-1])
		}
		if idx < len(n.keys) {
			hi = closed(n.keys[idx])
		}
		c := n.children[idx]
		t.writeLatch(c)
		if !holdAll && t.insertSafe(c) {
			for i := lockedFrom; i < len(path); i++ {
				t.writeUnlatch(path[i].n)
			}
			lockedFrom = len(path)
		}
		path = append(path, pathEntry[K, V]{n: c})
		n = c
	}
	return path, lockedFrom, lo, hi
}

// insertSafe reports whether n cannot split on insert (crabbing release
// rule).
func (t *Tree[K, V]) insertSafe(n *node[K, V]) bool {
	if n.isLeaf() {
		return n.leafCount() < t.cfg.LeafCapacity
	}
	return len(n.children) < t.cfg.InternalFanout
}

// pessimisticInsert is the latched-descent top-insert: it handles splits
// (and, with holdAll, QuIT redistributions), then lets the mode's fast-path
// policy react.
func (t *Tree[K, V]) pessimisticInsert(key K, val V, holdAll bool) (prev V, existed bool) {
	path, lockedFrom, lo, hi := t.descendForWrite(key, holdAll)
	leaf := path[len(path)-1].n

	if i, ok := leaf.find(key); ok {
		prev = leaf.vals[i]
		leaf.vals[i] = val
		t.c.updates.Add(1)
		t.unlockPathFrom(path, lockedFrom)
		return prev, true
	}

	target, tlo, thi := leaf, lo, hi
	var newSib *node[K, V]
	if leaf.leafCount() >= t.cfg.LeafCapacity {
		nodes := make([]*node[K, V], len(path))
		for i := range path {
			nodes[i] = path[i].n
		}
		// holdAll == fullPath: with it the descent latched every node on
		// the path; without it only the crabbed suffix is held and
		// splitForInsert must not redistribute into pole_prev.
		target, newSib, tlo, thi = t.splitForInsert(nodes, key, lo, hi, holdAll)
	}
	//quitlint:allow gapwrite target is the crabbed-descent leaf (write-latched in path) or the write-latched sibling splitForInsert returned
	slot, moved := target.gapInsert(key, val)
	if target.regapWorthwhile(moved) {
		t.lockMeta()
		isPole := target == t.fp.leaf
		t.unlockMeta()
		if isPole {
			//quitlint:allow gapwrite target is the crabbed-descent leaf (write-latched in path) or the write-latched sibling splitForInsert returned
			target.refrontierAt(slot + 1)
		} else {
			//quitlint:allow gapwrite target is the crabbed-descent leaf (write-latched in path) or the write-latched sibling splitForInsert returned
			target.respread()
		}
	}
	t.c.topInserts.Add(1)
	t.size.Add(1)

	pathNodes := make([]*node[K, V], 0, len(path))
	for _, e := range path {
		pathNodes = append(pathNodes, e.n)
	}
	if target != leaf {
		// The entry went to the freshly split-off sibling; swap it in as
		// the path's leaf for fast-path bookkeeping.
		pathNodes[len(pathNodes)-1] = target
	}
	t.afterTopInsert(target, key, tlo, thi, pathNodes)
	if newSib != nil {
		// The split-off sibling was created write-latched (it is reachable
		// through the leaf chain and new ancestors from the moment the
		// split published it); only now, with the insert complete, may
		// optimistic readers see it.
		t.writeUnlatch(newSib)
	}
	t.unlockPathFrom(path, lockedFrom)
	return prev, false
}
