// Package core implements the Quick Insertion Tree (QuIT) and the B+-tree
// baselines it is evaluated against in the EDBT 2025 paper "QuIT your
// B+-tree for the Quick Insertion Tree".
//
// A single parameterized tree implements five index designs that share the
// exact same node layout, lookup path, split machinery and delete path, and
// differ only in their fast-path insertion policy:
//
//   - ModeNone: a classical (textbook) B+-tree that only performs top-inserts.
//   - ModeTail: the PostgreSQL-style tail-leaf fast path (§2 of the paper).
//   - ModeLIL:  the last-insertion-leaf fast path (§3, Fig. 4).
//   - ModePOLE: the predicted-ordered-leaf fast path with the IKR update
//     policy (§4.1-4.2, Algorithm 1) but without QuIT's space optimizations.
//   - ModeQuIT: the full Quick Insertion Tree: pole + IKR-guided variable
//     split, leaf redistribution, and the stale fast-path reset strategy
//     (§4.3, Algorithm 2).
//
// Keys are any integer type (the IKR estimator needs key arithmetic); values
// are arbitrary. The tree is in-memory, with sorted-slice nodes and
// interlinked leaves, following the in-memory B+-tree design the paper
// builds on.
package core

import "math"

// Integer is the key constraint: the IKR estimator (Eq. 2) extrapolates key
// density, so keys must support arithmetic. All built-in integer types and
// their derivatives qualify.
type Integer interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 | ~uintptr
}

// Mode selects the fast-path insertion policy of a Tree.
type Mode uint8

const (
	// ModeNone disables the fast path entirely: every insertion is a
	// top-insert, as in a textbook B+-tree.
	ModeNone Mode = iota
	// ModeTail keeps a pointer to the rightmost (tail) leaf and fast-inserts
	// keys that fall within its range, as production systems do for fully
	// sorted ingestion.
	ModeTail
	// ModeLIL keeps a pointer to the leaf that received the most recent
	// insertion and fast-inserts keys that fall within its range.
	ModeLIL
	// ModePOLE keeps a pointer to the predicted-ordered-leaf. The pointer is
	// updated only on splits, guided by the IKR outlier estimator
	// (Algorithm 1). Splits remain classical 50/50 splits.
	ModePOLE
	// ModeQuIT is ModePOLE plus the IKR-guided variable split strategy,
	// redistribution into an underfull pole_prev, and the reset strategy
	// that recovers from a stale fast path (Algorithm 2).
	ModeQuIT
)

// String returns the name the paper uses for each index design.
func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "B+-tree"
	case ModeTail:
		return "tail-B+-tree"
	case ModeLIL:
		return "lil-B+-tree"
	case ModePOLE:
		return "pole-B+-tree"
	case ModeQuIT:
		return "QuIT"
	default:
		return "unknown"
	}
}

// Default geometry: a 4KB logical page holding up to 510 8-byte entries, the
// paper's default setup (§5, "Index Design and Default Setup").
const (
	DefaultLeafCapacity   = 510
	DefaultInternalFanout = 256
)

// Config parameterizes a Tree. The zero value selects the paper defaults
// with ModeNone (classical B+-tree).
type Config struct {
	// Mode selects the fast-path policy (see Mode constants).
	Mode Mode
	// LeafCapacity is the maximum number of entries per leaf node.
	// Defaults to DefaultLeafCapacity. Must be >= 4 if set.
	LeafCapacity int
	// InternalFanout is the maximum number of children per internal node.
	// Defaults to DefaultInternalFanout. Must be >= 4 if set.
	InternalFanout int
	// IKRScale is the slack multiplier of the In-order Key estimatoR.
	// Defaults to 1.5, the paper's (and standard IQR) setting.
	IKRScale float64
	// ResetThreshold is the number of consecutive top-inserts after which a
	// stale pole fast path is reset to the leaf of the latest insertion
	// (QuIT only). Defaults to floor(sqrt(LeafCapacity)) per §4.3.
	ResetThreshold int
	// MaxFill caps how full the variable split may leave a node, as a
	// fraction of LeafCapacity in [0.5, 1]. The paper's default packs
	// in-order runs completely (1.0); §5.2.1 notes QuIT "can also be tuned
	// to avoid being 100% full for the fully-sorted data if we anticipate
	// out-of-order entries in the future and we want to avoid propagating
	// splits" — set e.g. 0.9 for that headroom. Zero selects 1.0.
	MaxFill float64
	// GapFraction is the fraction of each leaf's slots the wholesale build
	// paths (batch multi-way splits, parallel frontier chains, BulkAppend
	// spine leaves) leave as interleaved gaps, in [0, 0.5). Gaps let
	// subsequent near-sorted ingest absorb displaced outliers with an
	// O(gap distance) shift instead of splitting dense leaves; the price is
	// proportionally more leaves on fully-sorted ingest (the gap01
	// experiment sweeps this trade-off). Point-insert splits always spread
	// their halves across the full slot array regardless of this setting.
	// Zero selects the default 0.1; a negative value requests fully packed
	// leaves (no reserved gaps); values above 0.5 clamp to 0.5.
	GapFraction float64
	// UnconditionalCatchUp applies Algorithm 1's literal catch-up rule
	// (advance pole on any top-insert into its successor leaf) instead of
	// the paper's prose rule (advance only when IKR accepts the key).
	// Measurably worse on the BoDS workloads; kept as an ablation toggle.
	UnconditionalCatchUp bool
	// Synchronized enables internal latching (optimistic lock coupling on
	// versioned node latches plus a fast-path metadata latch, §4.5) so the
	// tree can be used from multiple goroutines. Reads acquire no locks;
	// writes latch only the nodes they mutate. When false every latch
	// helper short-circuits and the tree is single-goroutine.
	Synchronized bool
}

// withDefaults normalizes a Config, applying paper defaults and clamping
// degenerate settings.
func (c Config) withDefaults() Config {
	if c.LeafCapacity <= 0 {
		c.LeafCapacity = DefaultLeafCapacity
	}
	if c.LeafCapacity < 4 {
		c.LeafCapacity = 4
	}
	if c.InternalFanout <= 0 {
		c.InternalFanout = DefaultInternalFanout
	}
	if c.InternalFanout < 4 {
		c.InternalFanout = 4
	}
	if c.IKRScale <= 0 {
		c.IKRScale = 1.5
	}
	if c.MaxFill <= 0 || c.MaxFill > 1 {
		c.MaxFill = 1
	}
	if c.MaxFill < 0.5 {
		c.MaxFill = 0.5
	}
	switch {
	case c.GapFraction == 0:
		c.GapFraction = 0.1
	case c.GapFraction < 0:
		c.GapFraction = 0
	case c.GapFraction > 0.5:
		c.GapFraction = 0.5
	}
	if c.ResetThreshold <= 0 {
		c.ResetThreshold = int(math.Sqrt(float64(c.LeafCapacity)))
		if c.ResetThreshold < 1 {
			c.ResetThreshold = 1
		}
	}
	return c
}
