package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestFloorCeiling(t *testing.T) {
	for _, mode := range []Mode{ModeNone, ModeQuIT} {
		t.Run(mode.String(), func(t *testing.T) {
			tr := New[int64, int64](smallConfig(mode))
			// Keys: 0, 10, 20, ..., 9990.
			for i := int64(0); i < 1000; i++ {
				tr.Put(i*10, i)
			}
			cases := []struct {
				target          int64
				floorK, ceilK   int64
				floorOK, ceilOK bool
			}{
				{55, 50, 60, true, true},
				{50, 50, 50, true, true},
				{0, 0, 0, true, true},
				{-1, 0, 0, false, true},
				{9990, 9990, 9990, true, true},
				{9991, 9990, 0, true, false},
				{12345, 9990, 0, true, false},
			}
			for _, c := range cases {
				k, _, ok := tr.Floor(c.target)
				if ok != c.floorOK || (ok && k != c.floorK) {
					t.Fatalf("Floor(%d) = (%d,%v), want (%d,%v)", c.target, k, ok, c.floorK, c.floorOK)
				}
				k, _, ok = tr.Ceiling(c.target)
				if ok != c.ceilOK || (ok && k != c.ceilK) {
					t.Fatalf("Ceiling(%d) = (%d,%v), want (%d,%v)", c.target, k, ok, c.ceilK, c.ceilOK)
				}
			}
		})
	}
}

func TestFloorCeilingRandomizedOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tr := New[int64, int64](Config{Mode: ModeQuIT, LeafCapacity: 4, InternalFanout: 4})
	present := map[int64]bool{}
	for i := 0; i < 3000; i++ {
		k := int64(rng.Intn(10000))
		tr.Put(k, k)
		present[k] = true
	}
	for trial := 0; trial < 2000; trial++ {
		target := int64(rng.Intn(11000)) - 500
		var wantFloor int64
		foundFloor := false
		for k := target; k >= -500; k-- {
			if present[k] {
				wantFloor, foundFloor = k, true
				break
			}
		}
		gotK, gotV, gotOK := tr.Floor(target)
		if gotOK != foundFloor || (gotOK && (gotK != wantFloor || gotV != wantFloor)) {
			t.Fatalf("Floor(%d) = (%d,%v), want (%d,%v)", target, gotK, gotOK, wantFloor, foundFloor)
		}
		var wantCeil int64
		foundCeil := false
		for k := target; k <= 10500; k++ {
			if present[k] {
				wantCeil, foundCeil = k, true
				break
			}
		}
		gotK, _, gotOK = tr.Ceiling(target)
		if gotOK != foundCeil || (gotOK && gotK != wantCeil) {
			t.Fatalf("Ceiling(%d) = (%d,%v), want (%d,%v)", target, gotK, gotOK, wantCeil, foundCeil)
		}
	}
}

func TestFloorCeilingEmptyAndUnsigned(t *testing.T) {
	tr := New[int64, int64](smallConfig(ModeQuIT))
	if _, _, ok := tr.Floor(5); ok {
		t.Fatal("Floor on empty tree")
	}
	if _, _, ok := tr.Ceiling(5); ok {
		t.Fatal("Ceiling on empty tree")
	}
	// Unsigned keys: Floor(target) with nothing at or below 0 must not wrap.
	u := New[uint64, int](smallConfig(ModeQuIT))
	u.Put(10, 1)
	if _, _, ok := u.Floor(5); ok {
		t.Fatal("Floor(5) with min key 10 reported ok")
	}
	if k, _, ok := u.Ceiling(5); !ok || k != 10 {
		t.Fatalf("Ceiling(5) = (%d,%v)", k, ok)
	}
}

func TestIterator(t *testing.T) {
	tr := New[int64, int64](Config{Mode: ModeQuIT, LeafCapacity: 4, InternalFanout: 4})
	n := int64(500)
	for i := n - 1; i >= 0; i-- {
		tr.Put(i*3, i)
	}
	it := tr.Iter()
	if it.Valid() {
		t.Fatal("fresh iterator claims validity")
	}
	count := int64(0)
	for it.Next() {
		if it.Key() != count*3 || it.Value() != count {
			t.Fatalf("iter at %d: (%d,%d)", count, it.Key(), it.Value())
		}
		count++
	}
	if count != n {
		t.Fatalf("iterated %d entries, want %d", count, n)
	}
	if it.Next() || it.Valid() {
		t.Fatal("exhausted iterator advanced")
	}

	// Seek to an existing key, a missing key, and past the end.
	it = tr.Seek(300)
	if !it.Next() || it.Key() != 300 {
		t.Fatalf("Seek(300) first = %d", it.Key())
	}
	it = tr.Seek(301)
	if !it.Next() || it.Key() != 303 {
		t.Fatalf("Seek(301) first = %d", it.Key())
	}
	it = tr.Seek(n * 3)
	if it.Next() {
		t.Fatal("Seek past end yielded an entry")
	}
	// Seek before the beginning.
	it = tr.Seek(-100)
	if !it.Next() || it.Key() != 0 {
		t.Fatalf("Seek(-100) first = %d", it.Key())
	}
}

func TestIteratorEmptyTree(t *testing.T) {
	tr := New[int64, int64](smallConfig(ModeQuIT))
	if tr.Iter().Next() {
		t.Fatal("iterator over empty tree yielded an entry")
	}
	if tr.Seek(0).Next() {
		t.Fatal("seek over empty tree yielded an entry")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	for _, mode := range []Mode{ModeNone, ModeQuIT} {
		t.Run(mode.String(), func(t *testing.T) {
			src := New[int64, int64](Config{Mode: mode, LeafCapacity: 32, InternalFanout: 8})
			keys := workloads(40000, 3)["nearsorted"]
			for _, k := range keys {
				src.Put(k, k*7)
			}
			var buf bytes.Buffer
			if err := src.Save(&buf); err != nil {
				t.Fatal(err)
			}
			got, err := Load[int64, int64](&buf, Config{})
			if err != nil {
				t.Fatal(err)
			}
			if got.Len() != src.Len() {
				t.Fatalf("Len %d, want %d", got.Len(), src.Len())
			}
			if got.Mode() != mode {
				t.Fatalf("mode %v, want %v", got.Mode(), mode)
			}
			if err := got.Validate(); err != nil {
				t.Fatal(err)
			}
			for _, k := range keys[:2000] {
				v, ok := got.Get(k)
				if !ok || v != k*7 {
					t.Fatalf("Get(%d) = (%d,%v)", k, v, ok)
				}
			}
			// A loaded tree is compact and immediately writable.
			if occ := got.AvgLeafOccupancy(); occ < 0.8 {
				t.Fatalf("loaded occupancy %.2f", occ)
			}
			got.Put(int64(len(keys))*3+100, 1)
			got.Delete(keys[0])
			if err := got.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSaveLoadEmptyAndStringValues(t *testing.T) {
	src := New[int64, string](Config{Mode: ModeQuIT, LeafCapacity: 8, InternalFanout: 5})
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load[int64, string](&buf, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("empty round trip Len = %d", got.Len())
	}

	src.Put(1, "one")
	src.Put(2, "two")
	buf.Reset()
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err = Load[int64, string](&buf, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Get(2); v != "two" {
		t.Fatalf("Get(2) = %q", v)
	}
}

func TestLoadConfigOverride(t *testing.T) {
	src := New[int64, int64](Config{Mode: ModeNone, LeafCapacity: 32, InternalFanout: 8})
	for i := int64(0); i < 5000; i++ {
		src.Put(i, i)
	}
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load[int64, int64](&buf, Config{Mode: ModeQuIT, Synchronized: true, LeafCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	if got.Mode() != ModeQuIT || got.Config().LeafCapacity != 16 || !got.Config().Synchronized {
		t.Fatalf("override not applied: %+v", got.Config())
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load[int64, int64](strings.NewReader("not a snapshot"), Config{}); err == nil {
		t.Fatal("garbage accepted")
	}
	// A valid gob stream that is not a snapshot header.
	var buf bytes.Buffer
	buf.WriteString("\x00\x01")
	if _, err := Load[int64, int64](&buf, Config{}); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestLoadRejectsTruncatedStream(t *testing.T) {
	src := New[int64, int64](Config{Mode: ModeQuIT, LeafCapacity: 8, InternalFanout: 5})
	for i := int64(0); i < 50000; i++ {
		src.Put(i, i)
	}
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()*2/3]
	if _, err := Load[int64, int64](bytes.NewReader(cut), Config{}); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

func TestIteratorReverse(t *testing.T) {
	tr := New[int64, int64](Config{Mode: ModeQuIT, LeafCapacity: 4, InternalFanout: 4})
	const n = 200
	for i := int64(0); i < n; i++ {
		tr.Put(i*2, i)
	}
	// Full backward walk.
	it := tr.SeekLast()
	want := int64(n-1) * 2
	count := 0
	for it.Prev() {
		if it.Key() != want {
			t.Fatalf("Prev yielded %d, want %d", it.Key(), want)
		}
		want -= 2
		count++
	}
	if count != n {
		t.Fatalf("backward walk visited %d, want %d", count, n)
	}
	if it.Prev() || it.Valid() {
		t.Fatal("exhausted backward iterator advanced")
	}
	// Parked at the front: Next yields the first entry.
	if !it.Next() || it.Key() != 0 {
		t.Fatalf("Next after front parking = (%d,%v)", it.Key(), it.Valid())
	}

	// Alternating Next/Prev walks one entry per call, no repeats.
	it = tr.Seek(100)
	if !it.Next() || it.Key() != 100 {
		t.Fatalf("Seek(100).Next() = %d", it.Key())
	}
	if !it.Prev() || it.Key() != 98 {
		t.Fatalf("Prev after Next = %d, want 98", it.Key())
	}
	if !it.Next() || it.Key() != 100 {
		t.Fatalf("Next after Prev = %d, want 100", it.Key())
	}
	// Seek positions Prev at the last entry below target.
	it = tr.Seek(101)
	if !it.Prev() || it.Key() != 100 {
		t.Fatalf("Seek(101).Prev() = %d, want 100", it.Key())
	}
	// Prev from an empty tree.
	empty := New[int64, int64](smallConfig(ModeQuIT))
	if empty.SeekLast().Prev() {
		t.Fatal("Prev on empty tree yielded an entry")
	}
}

func TestIteratorReverseMatchesForward(t *testing.T) {
	tr := New[int64, int64](Config{Mode: ModeQuIT, LeafCapacity: 8, InternalFanout: 5})
	keys := workloads(3000, 17)["random"]
	for _, k := range keys {
		tr.Put(k, k)
	}
	var fwd []int64
	for it := tr.Iter(); it.Next(); {
		fwd = append(fwd, it.Key())
	}
	var bwd []int64
	for it := tr.SeekLast(); it.Prev(); {
		bwd = append(bwd, it.Key())
	}
	if len(fwd) != len(bwd) {
		t.Fatalf("forward %d vs backward %d", len(fwd), len(bwd))
	}
	for i := range fwd {
		if fwd[i] != bwd[len(bwd)-1-i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}
