package core

// Floor returns the largest entry with key <= target (ok=false if none).
// Safe for concurrent use in synchronized mode: the descent is a latch-free
// optimistic read, and a miss in the target's leaf restarts the descent at
// the predecessor range instead of chasing prev pointers against the lock
// order.
func (t *Tree[K, V]) Floor(target K) (k K, v V, ok bool) {
	key := target
restart:
	for {
		n, ver := t.readRoot()
		var lo bound[K]
		for !n.isLeaf() {
			idx := n.route(key)
			l := lo
			if idx > 0 {
				l = closed(n.keys[idx-1])
			}
			c, cok := n.childAt(idx)
			if !cok {
				t.readAbort(n)
				t.olcRestart()
				continue restart
			}
			cv, lok := t.readLatch(c)
			if !lok {
				t.readAbort(n)
				t.olcRestart()
				continue restart
			}
			if !t.readUnlatch(n, ver) {
				t.readAbort(c)
				t.olcRestart()
				continue restart
			}
			lo = l
			n, ver = c, cv
		}
		// Largest live slot below the upper-bound landing index: slot values
		// at lower indexes never exceed key, so its live key is <= key.
		s := n.prevPresent(upperBound(n.keys, key) - 1)
		if s >= 0 {
			if s >= len(n.keys) || s >= len(n.vals) {
				t.readAbort(n)
				t.olcRestart()
				continue restart
			}
			kk, vv := n.keys[s], n.vals[s]
			if !t.readUnlatch(n, ver) {
				t.olcRestart()
				continue restart
			}
			return kk, vv, true
		}
		if !t.readUnlatch(n, ver) {
			t.olcRestart()
			continue restart
		}
		if !lo.ok {
			return k, v, false // leftmost range: nothing <= target
		}
		// Every key <= target lives strictly below this leaf's lower bound;
		// restart the descent just under it (integer keys, so lo.key-1 is
		// the predecessor range). Guard against wrapping at the domain min.
		next := lo.key - 1
		if next >= lo.key {
			return k, v, false
		}
		key = next
	}
}

// Ceiling returns the smallest entry with key >= target (ok=false if none).
// Concurrency-safe in synchronized mode (see Floor).
func (t *Tree[K, V]) Ceiling(target K) (k K, v V, ok bool) {
	key := target
restart:
	for {
		n, ver := t.readRoot()
		var hi bound[K]
		for !n.isLeaf() {
			idx := n.route(key)
			h := hi
			if idx < len(n.keys) {
				h = closed(n.keys[idx])
			}
			c, cok := n.childAt(idx)
			if !cok {
				t.readAbort(n)
				t.olcRestart()
				continue restart
			}
			cv, lok := t.readLatch(c)
			if !lok {
				t.readAbort(n)
				t.olcRestart()
				continue restart
			}
			if !t.readUnlatch(n, ver) {
				t.readAbort(c)
				t.olcRestart()
				continue restart
			}
			hi = h
			n, ver = c, cv
		}
		// First live slot at or after the lower-bound landing index: the
		// smallest live key >= key (a gap copy equal to key can only shadow
		// a live key at or before it).
		s := n.nextPresent(lowerBound(n.keys, key))
		if s >= 0 && s < len(n.keys) {
			if s >= len(n.vals) {
				t.readAbort(n)
				t.olcRestart()
				continue restart
			}
			kk, vv := n.keys[s], n.vals[s]
			if !t.readUnlatch(n, ver) {
				t.olcRestart()
				continue restart
			}
			return kk, vv, true
		}
		if !t.readUnlatch(n, ver) {
			t.olcRestart()
			continue restart
		}
		if !hi.ok {
			return k, v, false // rightmost range: nothing >= target
		}
		// The successor range starts exactly at the upper bound pivot.
		key = hi.key
	}
}

// Iterator is a bidirectional cursor over the tree's entries in key
// order. Obtain one with Iter, Seek or SeekLast. The cursor sits *between*
// entries: Next yields the entry after the cursor and Prev the entry
// before it, so alternating Next/Prev walks one entry per call in each
// direction without repeats.
//
// An Iterator must not be used while the tree is being modified (even in
// synchronized mode): like most ordered Go containers, cursor stability
// across writes is the caller's job — use Range for callback-style
// iteration that validates versions correctly.
type Iterator[K Integer, V any] struct {
	leaf *node[K, V]
	pos  int // slot of the entry last yielded; -1/len() at the edges
	// between marks a freshly Seek-ed cursor sitting in the gap at index
	// pos: Next yields pos itself, Prev yields pos-1. After any yield the
	// cursor is "at" an entry and the usual +-1 stepping applies.
	between bool
	key     K
	val     V
	ok      bool
}

// Iter returns an iterator positioned before the first entry.
func (t *Tree[K, V]) Iter() *Iterator[K, V] {
	return &Iterator[K, V]{leaf: t.head.Load(), pos: -1}
}

// Seek returns an iterator positioned just before the first entry with
// key >= target (Prev yields the last entry with key < target).
func (t *Tree[K, V]) Seek(target K) *Iterator[K, V] {
	n := t.root.Load()
	for !n.isLeaf() {
		n = n.children[n.route(target)]
	}
	return &Iterator[K, V]{leaf: n, pos: lowerBound(n.keys, target), between: true}
}

// SeekLast returns an iterator positioned after the last entry, for
// backward iteration with Prev.
func (t *Tree[K, V]) SeekLast() *Iterator[K, V] {
	tail := t.tail.Load()
	return &Iterator[K, V]{leaf: tail, pos: len(tail.keys)}
}

// Next advances to the next entry, returning false when the end is
// reached.
func (it *Iterator[K, V]) Next() bool {
	if it.leaf == nil {
		it.ok = false
		return false
	}
	start := it.pos
	if it.between {
		it.between = false
	} else {
		start++
	}
	for {
		if s := it.leaf.nextPresent(start); s >= 0 && s < len(it.leaf.keys) {
			it.pos = s
			it.key = it.leaf.keys[s]
			it.val = it.leaf.vals[s]
			it.ok = true
			return true
		}
		next := it.leaf.next.Load()
		if next == nil {
			it.pos = len(it.leaf.keys) // park at the end
			it.ok = false
			return false
		}
		it.leaf = next
		start = 0
	}
}

// Prev steps backward to the previous entry, returning false when the
// front is reached.
func (it *Iterator[K, V]) Prev() bool {
	if it.leaf == nil {
		it.ok = false
		return false
	}
	it.between = false
	start := it.pos - 1
	for {
		if start >= 0 {
			if s := it.leaf.prevPresent(start); s >= 0 {
				it.pos = s
				it.key = it.leaf.keys[s]
				it.val = it.leaf.vals[s]
				it.ok = true
				return true
			}
		}
		prev := it.leaf.prev.Load()
		if prev == nil {
			it.pos = -1 // park at the front
			it.ok = false
			return false
		}
		it.leaf = prev
		start = len(it.leaf.keys) - 1
	}
}

// Key returns the current entry's key; valid after a true Next or Prev.
func (it *Iterator[K, V]) Key() K { return it.key }

// Value returns the current entry's value; valid after a true Next or Prev.
func (it *Iterator[K, V]) Value() V { return it.val }

// Valid reports whether the iterator currently points at an entry.
func (it *Iterator[K, V]) Valid() bool { return it.ok }
