package core

import (
	"fmt"
	"math/bits"
)

// Validate checks the structural invariants of the tree and returns the
// first violation found, or nil. It is intended for tests and debugging;
// it takes no latches and must not run concurrently with writers.
//
// Checked invariants:
//   - live keys strictly increase within every leaf and across the leaf
//     chain; internal pivots strictly increase within every node;
//   - gapped-leaf slot invariants: the presence bitmap's popcount equals
//     the leaf's live count, no bit is set at or above the high-water mark,
//     slot keys are non-decreasing over the whole used prefix (gap copies
//     included), and key/val slot arrays agree in length;
//   - every internal pivot is the lower bound of its right subtree and an
//     upper bound (exclusive) of its left subtree;
//   - all leaves sit at the same depth, matching Height();
//   - node arities: leaves hold 1..LeafCapacity live entries (root may be
//     empty), internal nodes hold 2..InternalFanout children;
//   - the leaf chain (head..tail) is doubly linked and complete;
//   - Len() equals the number of live entries reachable from the root;
//   - fast-path metadata points at a live leaf, its bounds admit exactly
//     that leaf's key range, and pole_prev metadata mirrors the true left
//     neighbor when marked valid.
//
// Occupancy minimums (half-full leaves) are deliberately not enforced:
// QuIT's variable split legally produces underfull leaves (§4.3), and
// deletes rebalance the pole lazily.
func (t *Tree[K, V]) Validate() error {
	type job struct {
		n      *node[K, V]
		lo, hi bound[K]
		depth  int
	}
	var (
		leaves  []*node[K, V]
		entries int
	)
	var walk func(j job) error
	walk = func(j job) error {
		n := j.n
		if n.isLeaf() {
			if err := t.validateLeaf(n, j.lo, j.hi); err != nil {
				return err
			}
			if j.depth+1 != t.Height() {
				return fmt.Errorf("leaf %d at depth %d, want %d", n.id, j.depth, t.Height()-1)
			}
			leaves = append(leaves, n)
			entries += n.leafCount()
			return nil
		}
		for i := 1; i < len(n.keys); i++ {
			if n.keys[i] <= n.keys[i-1] {
				return fmt.Errorf("node %d: keys not strictly increasing at %d", n.id, i)
			}
		}
		if len(n.keys) > 0 {
			if j.lo.ok && n.keys[0] < j.lo.key {
				return fmt.Errorf("node %d: key %v below lower bound %v", n.id, n.keys[0], j.lo.key)
			}
			if j.hi.ok && n.keys[len(n.keys)-1] >= j.hi.key {
				return fmt.Errorf("node %d: key %v at or above upper bound %v", n.id, n.keys[len(n.keys)-1], j.hi.key)
			}
		}
		if len(n.children) != len(n.keys)+1 {
			return fmt.Errorf("internal %d: %d children vs %d keys", n.id, len(n.children), len(n.keys))
		}
		if len(n.children) < 2 {
			return fmt.Errorf("internal %d: only %d children", n.id, len(n.children))
		}
		if len(n.children) > t.cfg.InternalFanout {
			return fmt.Errorf("internal %d overflows: %d > %d children", n.id, len(n.children), t.cfg.InternalFanout)
		}
		for i, c := range n.children {
			lo, hi := j.lo, j.hi
			if i > 0 {
				lo = closed(n.keys[i-1])
			}
			if i < len(n.keys) {
				hi = closed(n.keys[i])
			}
			if err := walk(job{n: c, lo: lo, hi: hi, depth: j.depth + 1}); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(job{n: t.root.Load()}); err != nil {
		return err
	}

	if entries != t.Len() {
		return fmt.Errorf("size mismatch: reachable %d, Len() %d", entries, t.Len())
	}
	if int64(len(leaves)) != t.nLeaves.Load() {
		return fmt.Errorf("leaf count mismatch: reachable %d, counter %d", len(leaves), t.nLeaves.Load())
	}

	// Leaf chain consistency.
	if head := t.head.Load(); head != leaves[0] {
		return fmt.Errorf("head is node %d, want leftmost leaf %d", head.id, leaves[0].id)
	}
	if tail := t.tail.Load(); tail != leaves[len(leaves)-1] {
		return fmt.Errorf("tail is node %d, want rightmost leaf %d", tail.id, leaves[len(leaves)-1].id)
	}
	for i, n := range leaves {
		var wantPrev, wantNext *node[K, V]
		if i > 0 {
			wantPrev = leaves[i-1]
		}
		if i+1 < len(leaves) {
			wantNext = leaves[i+1]
		}
		if n.prev.Load() != wantPrev {
			return fmt.Errorf("leaf %d: bad prev link", n.id)
		}
		if n.next.Load() != wantNext {
			return fmt.Errorf("leaf %d: bad next link", n.id)
		}
		if i > 0 && n.count > 0 && leaves[i-1].count > 0 {
			if n.minKey() <= leaves[i-1].maxKey() {
				return fmt.Errorf("leaf %d: chain not increasing", n.id)
			}
		}
	}

	return t.validateFP(leaves)
}

// validateLeaf checks one leaf's gapped-layout invariants (see node.go) and
// its key-range bounds.
func (t *Tree[K, V]) validateLeaf(n *node[K, V], lo, hi bound[K]) error {
	used := len(n.keys)
	if used != len(n.vals) {
		return fmt.Errorf("leaf %d: %d key slots vs %d val slots", n.id, used, len(n.vals))
	}
	if want := bitmapWords(used); len(n.present) < want {
		return fmt.Errorf("leaf %d: bitmap has %d words, need %d for %d slots", n.id, len(n.present), want, used)
	}
	// The bitmap must describe exactly the used prefix: popcount == count
	// and no stray bit at or above the high-water mark (a stale bit there
	// would resurrect an uninitialized slot).
	pop := 0
	for w, word := range n.present {
		pop += bits.OnesCount64(word)
		base := w * 64
		if base+64 > used {
			over := word
			if base < used {
				over &= ^uint64(0) << (used - base)
			}
			if over != 0 {
				return fmt.Errorf("leaf %d: bitmap bit set at or above high-water mark %d (word %d = %#x)", n.id, used, w, word)
			}
		}
	}
	if pop != int(n.count) {
		return fmt.Errorf("leaf %d: bitmap popcount %d, count %d", n.id, pop, n.count)
	}
	if int(n.count) == 0 && n != t.root.Load() {
		return fmt.Errorf("leaf %d is empty", n.id)
	}
	if int(n.count) > t.cfg.LeafCapacity {
		return fmt.Errorf("leaf %d overflows: %d > %d", n.id, n.count, t.cfg.LeafCapacity)
	}
	// Slot keys are non-decreasing across the whole used prefix (gap copies
	// included) — searchKeys' branchless probe depends on this — and live
	// keys are strictly increasing.
	for i := 1; i < used; i++ {
		if n.keys[i] < n.keys[i-1] {
			return fmt.Errorf("leaf %d: slot keys decrease at %d", n.id, i)
		}
	}
	prev, havePrev := K(0), false
	for i := n.nextPresent(0); i >= 0 && i < used; i = n.nextPresent(i + 1) {
		if havePrev && n.keys[i] <= prev {
			return fmt.Errorf("leaf %d: live keys not strictly increasing at slot %d", n.id, i)
		}
		prev, havePrev = n.keys[i], true
	}
	if n.count > 0 {
		if lo.ok && n.minKey() < lo.key {
			return fmt.Errorf("leaf %d: key %v below lower bound %v", n.id, n.minKey(), lo.key)
		}
		if hi.ok && n.maxKey() >= hi.key {
			return fmt.Errorf("leaf %d: key %v at or above upper bound %v", n.id, n.maxKey(), hi.key)
		}
	}
	return nil
}

// validateFP cross-checks the fast-path metadata against the real tree.
func (t *Tree[K, V]) validateFP(leaves []*node[K, V]) error {
	if t.cfg.Mode == ModeNone {
		return nil
	}
	fp := &t.fp
	if fp.leaf == nil {
		return fmt.Errorf("fast path: nil leaf in mode %v", t.cfg.Mode)
	}
	idx := -1
	for i, n := range leaves {
		if n == fp.leaf {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("fast path: leaf %d not reachable", fp.leaf.id)
	}
	if t.cfg.Mode == ModeTail && fp.leaf != t.tail.Load() {
		return fmt.Errorf("fast path: tail mode points at leaf %d, tail is %d", fp.leaf.id, t.tail.Load().id)
	}
	if fp.size != fp.leaf.leafCount() {
		return fmt.Errorf("fast path: fp_size %d, leaf has %d", fp.size, fp.leaf.leafCount())
	}
	if fp.leaf.leafCount() > 0 {
		if fp.hasMin && fp.leaf.minKey() < fp.min {
			return fmt.Errorf("fast path: leaf min %v below fp_min %v", fp.leaf.minKey(), fp.min)
		}
		if fp.hasMax && fp.leaf.maxKey() >= fp.max {
			return fmt.Errorf("fast path: leaf max %v at or above fp_max %v", fp.leaf.maxKey(), fp.max)
		}
	}
	if fp.hasMax && fp.leaf == t.tail.Load() {
		return fmt.Errorf("fast path: rightmost leaf %d has an upper bound", fp.leaf.id)
	}
	if fp.prevValid {
		if fp.prev == nil {
			return fmt.Errorf("fast path: prevValid with nil prev")
		}
		if fp.prev != fp.leaf.prev.Load() {
			return fmt.Errorf("fast path: pole_prev %d is not the left neighbor %v", fp.prev.id, leafID(fp.leaf.prev.Load()))
		}
		if fp.prevSize != fp.prev.leafCount() {
			return fmt.Errorf("fast path: pole_prev_size %d, node has %d", fp.prevSize, fp.prev.leafCount())
		}
		// pole_prev_min may be the separator below the node's smallest key.
		if fp.prev.leafCount() == 0 {
			return fmt.Errorf("fast path: pole_prev %d is empty", fp.prev.id)
		}
		if fp.prev.minKey() < fp.prevMin {
			return fmt.Errorf("fast path: pole_prev_min %v above node min %v", fp.prevMin, fp.prev.minKey())
		}
	}
	return nil
}

func leafID[K Integer, V any](n *node[K, V]) any {
	if n == nil {
		return "<nil>"
	}
	return n.id
}
