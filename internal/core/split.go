package core

// splitForInsert makes room for key in the full leaf at the end of path,
// either by splitting it (policy depends on the tree mode and on whether
// the leaf is the fast-path leaf) or, in QuIT mode, by redistributing
// entries into an underfull pole_prev (Algorithm 2). It returns the leaf
// that should receive key together with that leaf's routing bounds, plus
// the freshly created sibling (nil when a redistribution avoided the
// split). The sibling is still write-latched; the caller releases it after
// the pending insert so optimistic readers — who can already reach it
// through the leaf chain, the tail pointer, or new ancestors — never
// observe it mid-mutation.
//
// path is the root..leaf ancestry. fullPath reports that every node on it
// is write-latched (a holdAll descent, or an unsynchronized tree); without
// it the caller holds only the crabbed suffix that plain splits can touch.
// isPole is recomputed here, after the descent, so it can be true even
// when the pre-descent check that decides holdAll said otherwise — the
// fast path may have moved onto this leaf in between. Redistribution
// rewrites a separator pivot that can live arbitrarily high on path
// (updateSeparator), so it is only attempted under fullPath; the split
// policies below stay within the latched suffix via propagateSplit's
// overflow induction and are safe either way.
func (t *Tree[K, V]) splitForInsert(path []*node[K, V], key K, lo, hi bound[K], fullPath bool) (*node[K, V], *node[K, V], bound[K], bound[K]) {
	leaf := path[len(path)-1]
	mode := t.cfg.Mode

	t.lockMeta()
	isPole := (mode == ModePOLE || mode == ModeQuIT) && leaf == t.fp.leaf
	prevValid := t.fp.prevValid && t.fp.prev != nil && t.fp.prev == leaf.prev.Load()
	prevMin := t.fp.prevMin
	prevSize := t.fp.prevSize
	t.unlockMeta()

	if isPole && mode == ModeQuIT && prevValid {
		if prevSize >= t.minLeaf {
			return t.variableSplit(path, leaf, key, lo, hi, prevMin, prevSize)
		}
		if fullPath {
			if target, tlo, thi, ok := t.redistributeIntoPrev(path, leaf, key, lo, hi); ok {
				return target, nil, tlo, thi
			}
		}
		// Redistribution was not applicable (the incoming key would have to
		// move with the redistributed prefix, or only a crabbed suffix of
		// the path is latched); fall back to the default pole split below.
	}
	if isPole {
		return t.splitPoleDefault(path, leaf, key, lo, hi, prevValid, prevMin, prevSize)
	}
	return t.splitOther(path, leaf, key, lo, hi)
}

// variableSplit implements Algorithm 2 lines 3-8: IKR locates the first
// outlier position l in the full pole and the node is split there instead
// of at 50%, packing in-order entries tightly.
func (t *Tree[K, V]) variableSplit(path []*node[K, V], leaf *node[K, V], key K, lo, hi bound[K], prevMin K, prevSize int) (*node[K, V], *node[K, V], bound[K], bound[K]) {
	q := leaf.minKey()
	cnt := leaf.leafCount()
	x := t.est.Bound(float64(prevMin), float64(q), prevSize, cnt)
	// outlierIndex lands on a slot (possibly a gap copy); its rank is the
	// number of live keys at or below the IKR bound — the paper's
	// leaf.position(x).
	l := leaf.rankOf(outlierIndex(leaf.keys, x))

	if l > t.minLeaf {
		// Few outliers: split at l-1, carrying one non-outlier into the new
		// node, and move the pole pointer forward (Fig. 7a). MaxFill caps
		// how packed the kept node may be left (§5.2.1's tuning note).
		pos := l - 1
		if pos >= cnt {
			pos = cnt - 1
		}
		if capFill := int(t.cfg.MaxFill * float64(t.cfg.LeafCapacity)); pos > capFill {
			pos = capFill
		}
		if pos < t.minLeaf {
			pos = t.minLeaf
		}
		// The pole advances to the new right node. When the cut landed
		// exactly at l-1, the moved suffix is one non-outlier plus the
		// early-arrived outlier block, and the in-order append stream will
		// keep landing *between* them: the frontier layout parks the
		// outliers at the top of the slot array with the gap run in the
		// middle, so every in-order insert claims a gap slot in O(1)
		// instead of shifting the whole outlier block (the mid-leaf
		// memmove this layout exists to kill). When MaxFill or minLeaf
		// moved the cut, the suffix tail is in-order keys — future appends
		// land above them, so dense with open tail room is right.
		layout := layoutDense
		if pos == l-1 && cnt-pos >= 2 {
			layout = layoutFrontier
		}
		right := t.splitLeafAt(leaf, pos, layout)
		splitKey := right.minKey()
		t.propagateSplit(path, splitKey, right)
		t.c.variableSplits.Add(1)

		t.lockMeta()
		t.fp.prev = leaf
		t.fp.prevMin = q
		t.fp.prevSize = leaf.leafCount()
		t.fp.prevValid = true
		t.setFP(right, closed(splitKey), hi, pathWithLeaf(path, right))
		t.unlockMeta()
		target, tlo, thi := routeAfterSplit(leaf, right, key, lo, hi)
		return target, right, tlo, thi
	}

	// Mostly outliers: split at l, moving every outlier to the new node and
	// keeping the pole pointer (and its newfound space) in place (Fig. 7b).
	// The outlier node expects more displaced keys: spread it with gaps.
	pos := l
	if pos < 1 {
		pos = 1
	}
	right := t.splitLeafAt(leaf, pos, layoutSpread)
	splitKey := right.minKey()
	t.propagateSplit(path, splitKey, right)
	t.c.variableSplits.Add(1)

	t.lockMeta()
	t.fp.max, t.fp.hasMax = splitKey, true
	t.fp.size = leaf.leafCount()
	t.unlockMeta()
	target, tlo, thi := routeAfterSplit(leaf, right, key, lo, hi)
	return target, right, tlo, thi
}

// redistributeIntoPrev implements Algorithm 2 line 10 / Fig. 7c: when
// pole_prev is less than half full, entries flow from the full pole into
// pole_prev until the latter is exactly half full, the separator pivot is
// rewritten, and no split happens at all. Returns ok=false when the move
// would displace the incoming key or there is nothing to move.
func (t *Tree[K, V]) redistributeIntoPrev(path []*node[K, V], leaf *node[K, V], key K, lo, hi bound[K]) (*node[K, V], bound[K], bound[K], bool) {
	prev := leaf.prev.Load()
	if prev == nil {
		return nil, lo, hi, false
	}

	// Reacquire in left-to-right order to stay deadlock-free with forward
	// scans. Descending writers are quiescent: the caller holds the entire
	// path including the root (splitForInsert only calls this under
	// fullPath), so prev cannot be split or merged underneath us. The one
	// writer that bypasses the descent — a fast-path insert latching
	// fp.leaf via metadata — can grab leaf during the window, but leaf is
	// full (count >= LeafCapacity), so it can only overwrite values, never
	// insert; every size below is re-read after the latches are back.
	t.writeUnlatch(leaf)
	t.writeLatch(prev)
	t.writeLatch(leaf)

	m := t.minLeaf - prev.leafCount()
	if m <= 0 || m >= leaf.leafCount() {
		t.writeUnlatch(prev)
		return nil, lo, hi, false
	}
	// Never move the slot the incoming key belongs to: cap the transfer so
	// the new pole minimum stays <= key, keeping the insert target stable.
	// The rank of the first live slot >= key counts the live keys below it.
	if limit := leaf.rankOf(lowerBound(leaf.keys, key)); m > limit {
		m = limit
	}
	if m <= 0 {
		t.writeUnlatch(prev)
		return nil, lo, hi, false
	}

	oldMin := leaf.minKey()
	// Append leaf's first m live entries at prev's high-water mark (all are
	// greater than every slot value in prev). Compact prev first if its
	// tail room was consumed by earlier appends around interior gaps.
	if cap(prev.keys)-len(prev.keys) < m {
		prev.compact()
	}
	var zv V
	s := leaf.minSlot()
	for j := 0; j < m; j++ {
		prev.keys = append(prev.keys, leaf.keys[s])
		prev.vals = append(prev.vals, leaf.vals[s])
		prev.setBit(len(prev.keys) - 1)
		leaf.vals[s] = zv
		leaf.clearBit(s)
		s = leaf.nextPresent(s + 1)
	}
	prev.count += int32(m)
	leaf.count -= int32(m)

	// The new separator must stay above every key now in prev and at or
	// below the incoming key (which the caller inserts into this leaf).
	newMin := leaf.minKey()
	if key < newMin {
		newMin = key
	}
	t.updateSeparator(path, oldMin, newMin)
	t.writeUnlatch(prev)
	t.c.redistributions.Add(1)

	t.lockMeta()
	t.fp.min, t.fp.hasMin = newMin, true
	t.fp.size = leaf.leafCount()
	t.fp.prevSize = prev.leafCount()
	t.unlockMeta()
	return leaf, closed(newMin), hi, true
}

// updateSeparator rewrites the pivot that forms the lower bound of the
// fast-path leaf's range after a redistribution shifted the leaf's minimum
// from oldMin to newMin. The pivot lives at the deepest ancestor on path
// where the descent turned right.
func (t *Tree[K, V]) updateSeparator(path []*node[K, V], oldMin, newMin K) {
	for i := len(path) - 2; i >= 0; i-- {
		n := path[i]
		idx := upperBound(n.keys, oldMin)
		if idx > 0 {
			n.keys[idx-1] = newMin
			return
		}
	}
	panic("core: redistribution on a leaf with no separator pivot")
}

// splitPoleDefault is the ModePOLE split (Algorithm 1) and the QuIT
// fallback: a classical 50% split followed by the IKR-guided pole update
// policy (Fig. 6), or the initialization rule when pole_prev metadata is
// not yet established.
func (t *Tree[K, V]) splitPoleDefault(path []*node[K, V], leaf *node[K, V], key K, lo, hi bound[K], prevValid bool, prevMin K, prevSize int) (*node[K, V], *node[K, V], bound[K], bound[K]) {
	q := leaf.minKey()
	sizeBefore := leaf.leafCount()
	pos := sizeBefore / 2
	// Decide the pole-update policy before splitting so the new right node
	// can be packed dense when the pole (the append stream) advances onto
	// it, and spread with gaps when it is left behind to absorb outliers.
	splitKey := leaf.keys[leaf.selectRank(pos)]
	advance := false
	if prevValid && prevSize > 0 {
		x := t.est.Bound(float64(prevMin), float64(q), prevSize, sizeBefore)
		advance = float64(splitKey) <= x
	} else {
		// Initialization (§4.2): mark the half that receives the incoming
		// entry as pole.
		advance = key >= splitKey
	}
	layout := layoutSpread
	if advance {
		layout = layoutDense
	}
	right := t.splitLeafAt(leaf, pos, layout)
	t.propagateSplit(path, splitKey, right)

	t.lockMeta()
	if advance {
		t.fp.prev = leaf
		t.fp.prevMin = q
		t.fp.prevSize = leaf.leafCount()
		t.fp.prevValid = true
		t.setFP(right, closed(splitKey), hi, pathWithLeaf(path, right))
	} else {
		t.fp.max, t.fp.hasMax = splitKey, true
		t.fp.size = leaf.leafCount()
	}
	t.unlockMeta()
	target, tlo, thi := routeAfterSplit(leaf, right, key, lo, hi)
	return target, right, tlo, thi
}

// splitOther is the classical 50% split for any leaf that is not the pole,
// plus the mode-specific fast-path fixups it may imply. The right half is
// packed dense when the incoming key routes to it (it is the likely append
// target — e.g. the new tail in ModeTail) and spread with gaps otherwise.
func (t *Tree[K, V]) splitOther(path []*node[K, V], leaf *node[K, V], key K, lo, hi bound[K]) (*node[K, V], *node[K, V], bound[K], bound[K]) {
	pos := leaf.leafCount() / 2
	splitKey := leaf.keys[leaf.selectRank(pos)]
	layout := layoutDense
	if key < splitKey {
		layout = layoutSpread
	}
	right := t.splitLeafAt(leaf, pos, layout)
	t.propagateSplit(path, splitKey, right)

	t.lockMeta()
	fp := &t.fp
	switch t.cfg.Mode {
	case ModeTail:
		if right.next.Load() == nil {
			// The old tail split: the fast path follows the new rightmost
			// leaf, as in the PostgreSQL optimization.
			t.setFP(right, closed(splitKey), bound[K]{}, pathWithLeaf(path, right))
		}
	case ModeLIL:
		if leaf == fp.leaf {
			// Fig. 4c-e: lil follows the half that receives the key.
			if key >= splitKey {
				t.setFP(right, closed(splitKey), hi, pathWithLeaf(path, right))
			} else {
				fp.max, fp.hasMax = splitKey, true
				fp.size = leaf.leafCount()
			}
		}
	case ModePOLE, ModeQuIT:
		if fp.prevValid && fp.prev == leaf {
			// pole_prev split: the new right half becomes pole's neighbor.
			fp.prev = right
			fp.prevMin = splitKey
			fp.prevSize = right.leafCount()
		}
	}
	t.unlockMeta()
	target, tlo, thi := routeAfterSplit(leaf, right, key, lo, hi)
	return target, right, tlo, thi
}

// leafLayout selects how splitLeafAt arranges the moved suffix in the new
// right sibling's slot array.
type leafLayout uint8

const (
	// layoutDense packs the entries as a dense prefix with all tail room
	// open — for append targets (the advancing pole, the tail).
	layoutDense leafLayout = iota
	// layoutSpread interleaves gaps evenly across the full slot capacity —
	// for outlier absorbers, where mid-leaf inserts arrive at scattered
	// positions and should find a gap within a couple of slots.
	layoutSpread
	// layoutFrontier is the variable-split pole layout: entry 0 (the one
	// carried non-outlier) at slot 0, the remaining entries (the
	// early-arrived outlier block) packed dense against the TOP of the
	// slot array, and the run of slots between them all gaps holding
	// copies of the block's first key. The in-order append stream lands
	// strictly between slot 0 and the block; because the gap copies are
	// *successor* copies, searchKeys sends each such key to the lowest
	// free gap slot and the insert is an O(1) landing-gap write — no
	// shifting of the outlier block, ever, until the gap run is consumed
	// and the leaf splits again.
	layoutFrontier
)

// splitLeafAt moves the live entries of rank pos and up into a fresh right
// sibling and links it into the leaf chain, updating the tree tail if
// needed. The left half stays exactly in place (bits above the cut are
// cleared and the high-water mark trimmed — no key moves). The right
// half's slot arrangement is chosen by layout (see leafLayout). The caller
// holds leaf's write latch in synchronized mode; the neighbor's prev
// pointer and the tail pointer are atomics, so no further latches are
// needed.
//
// The new sibling is returned write-latched: linking it into the chain (and
// into t.tail) publishes it to optimistic readers — Max through the tail
// pointer, iterators walking the chain — before the caller has finished
// mutating it, and a fresh node's version never changes during those
// mutations, so validation alone cannot protect readers. The caller must
// writeUnlatch it once the split (and any pending insert into it) is done.
func (t *Tree[K, V]) splitLeafAt(leaf *node[K, V], pos int, layout leafLayout) *node[K, V] {
	right := t.newLeaf()
	t.writeLatch(right) // uncontended: not yet published
	m := leaf.leafCount() - pos
	s := leaf.selectRank(pos)
	if m < 2 && layout == layoutFrontier {
		layout = layoutDense // no block to park: dense is strictly better
	}
	// The moved suffix is usually gap-free (append-target leaves are dense,
	// and spread leaves keep their fully-live run against the high-water
	// mark): detect that and walk it by direct indexing — the per-element
	// nextPresent chase is only needed when interior gaps survive in the
	// suffix. For the dense destination layout the gap-free case collapses
	// to two bulk copies, which is what the frontier split (one per ~leafCap
	// appends on sorted ingest) actually pays.
	contig := len(leaf.keys)-s == m
	switch {
	case layout == layoutFrontier:
		// [non-outlier][gap run][outlier block at top]; gaps hold copies
		// of the block's first key so in-order keys land at the run's low
		// end (see leafLayout). The fresh node's value slots are zero, the
		// legal state for gap slots.
		slotCap := cap(right.keys)
		right.keys = right.keys[:slotCap]
		right.vals = right.vals[:slotCap]
		right.keys[0] = leaf.keys[s]
		right.vals[0] = leaf.vals[s]
		right.setBit(0)
		base := slotCap - (m - 1)
		for j := 1; j < m; j++ {
			if contig {
				s++
			} else {
				s = leaf.nextPresent(s + 1)
			}
			right.keys[base+j-1] = leaf.keys[s]
			right.vals[base+j-1] = leaf.vals[s]
		}
		right.setBitRange(base, slotCap)
		fill := right.keys[base]
		for i := 1; i < base; i++ {
			right.keys[i] = fill
		}
	case layout == layoutSpread:
		slotCap := cap(right.keys)
		used := (m-1)*slotCap/m + 1
		right.keys = right.keys[:used]
		right.vals = right.vals[:used]
		for j := 0; j < m; j++ {
			dst := j * slotCap / m
			right.keys[dst] = leaf.keys[s]
			right.vals[dst] = leaf.vals[s]
			right.setBit(dst)
			if contig {
				s++
			} else {
				s = leaf.nextPresent(s + 1)
			}
		}
		// Fill gap slots with the preceding live key (slot 0 is live), so
		// the whole array stays non-decreasing for searchKeys.
		var last K
		for i := 0; i < used; i++ {
			if right.hasSlot(i) {
				last = right.keys[i]
			} else {
				right.keys[i] = last
			}
		}
	case contig:
		right.keys = append(right.keys, leaf.keys[s:]...)
		right.vals = append(right.vals, leaf.vals[s:]...)
		right.setBitRange(0, m)
	default:
		for j := 0; j < m; j++ {
			right.keys = append(right.keys, leaf.keys[s])
			right.vals = append(right.vals, leaf.vals[s])
			s = leaf.nextPresent(s + 1)
		}
		right.setBitRange(0, m)
	}
	right.count = int32(m)
	leaf.truncateLive(pos)

	next := leaf.next.Load()
	right.prev.Store(leaf)
	right.next.Store(next)
	if next != nil {
		next.prev.Store(right)
	} else {
		t.tail.Store(right)
	}
	leaf.next.Store(right)

	t.c.leafSplits.Add(1)
	return right
}

// propagateSplit inserts the (splitKey, right) pivot produced by a leaf
// split into the ancestors on path, splitting overflowing internal nodes
// and growing a new root if the split reaches the top. In synchronized
// mode crabbing guarantees every ancestor that can overflow is latched.
//
// Internal siblings minted by splitInternal arrive write-latched and are
// released here as soon as they are wired into a parent (nothing mutates
// them afterwards). The incoming right — a split-off leaf, also latched —
// is left for the caller to release after the pending insert.
func (t *Tree[K, V]) propagateSplit(path []*node[K, V], splitKey K, right *node[K, V]) {
	for i := len(path) - 2; i >= 0; i-- {
		p := path[i]
		idx := upperBound(p.keys, splitKey)
		p.insertChildAt(idx, splitKey, right)
		if !right.isLeaf() {
			t.writeUnlatch(right)
		}
		if len(p.children) <= t.cfg.InternalFanout {
			return
		}
		splitKey, right = t.splitInternal(p)
	}
	// Root split: the caller holds the old root's latch (crabbing never
	// released it, or the whole path ends here), so the swap is atomic for
	// optimistic readers — they re-check the root pointer inside their read
	// section and restart if it moved. The new root is published latched and
	// released once fully wired, so a reader arriving through the fresh
	// pointer waits rather than observing it mid-initialization.
	old := path[0]
	newRoot := t.newInternal()
	t.writeLatch(newRoot) // uncontended: not yet published
	newRoot.keys = append(newRoot.keys, splitKey)
	newRoot.children = append(newRoot.children, old, right)
	if !right.isLeaf() {
		t.writeUnlatch(right)
	}
	t.root.Store(newRoot)
	t.height.Add(1)
	t.writeUnlatch(newRoot)
}

// splitInternal splits an overflowing internal node in half, promoting the
// middle pivot. Returns the promoted pivot and the new right node, which is
// write-latched (propagateSplit releases it once it is wired into a parent).
func (t *Tree[K, V]) splitInternal(p *node[K, V]) (K, *node[K, V]) {
	m := len(p.keys) / 2
	up := p.keys[m]
	right := t.newInternal()
	t.writeLatch(right) // uncontended: not yet published
	right.keys = append(right.keys, p.keys[m+1:]...)
	right.children = append(right.children, p.children[m+1:]...)
	for i := m + 1; i < len(p.children); i++ {
		p.children[i] = nil
	}
	p.keys = p.keys[:m]
	p.children = p.children[:m+1]
	t.c.internalSplits.Add(1)
	return up, right
}

// outlierIndex returns the first index whose key exceeds the IKR bound x
// (len(keys) if none): the paper's leaf.position(x) (Algorithm 2, line 4).
// Over a gapped slot array the result is a slot index; rankOf converts it
// to a live-entry rank (gap copies never exceed the first live outlier).
func outlierIndex[K Integer](keys []K, x float64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if float64(keys[mid]) <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// routeAfterSplit picks which half of a split receives key and returns its
// routing bounds.
func routeAfterSplit[K Integer, V any](left, right *node[K, V], key K, lo, hi bound[K]) (*node[K, V], bound[K], bound[K]) {
	splitKey := right.minKey()
	if key >= splitKey {
		return right, closed(splitKey), hi
	}
	return left, lo, closed(splitKey)
}

// pathWithLeaf returns path with its final element replaced by leaf,
// without mutating path.
func pathWithLeaf[K Integer, V any](path []*node[K, V], leaf *node[K, V]) []*node[K, V] {
	out := make([]*node[K, V], len(path))
	copy(out, path[:len(path)-1])
	out[len(out)-1] = leaf
	return out
}
