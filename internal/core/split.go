package core

// splitForInsert makes room for key in the full leaf at the end of path,
// either by splitting it (policy depends on the tree mode and on whether
// the leaf is the fast-path leaf) or, in QuIT mode, by redistributing
// entries into an underfull pole_prev (Algorithm 2). It returns the leaf
// that should receive key together with that leaf's routing bounds, plus
// the freshly created sibling (nil when a redistribution avoided the
// split). The sibling is still write-latched; the caller releases it after
// the pending insert so optimistic readers — who can already reach it
// through the leaf chain, the tail pointer, or new ancestors — never
// observe it mid-mutation.
//
// path is the root..leaf ancestry. fullPath reports that every node on it
// is write-latched (a holdAll descent, or an unsynchronized tree); without
// it the caller holds only the crabbed suffix that plain splits can touch.
// isPole is recomputed here, after the descent, so it can be true even
// when the pre-descent check that decides holdAll said otherwise — the
// fast path may have moved onto this leaf in between. Redistribution
// rewrites a separator pivot that can live arbitrarily high on path
// (updateSeparator), so it is only attempted under fullPath; the split
// policies below stay within the latched suffix via propagateSplit's
// overflow induction and are safe either way.
func (t *Tree[K, V]) splitForInsert(path []*node[K, V], key K, lo, hi bound[K], fullPath bool) (*node[K, V], *node[K, V], bound[K], bound[K]) {
	leaf := path[len(path)-1]
	mode := t.cfg.Mode

	t.lockMeta()
	isPole := (mode == ModePOLE || mode == ModeQuIT) && leaf == t.fp.leaf
	prevValid := t.fp.prevValid && t.fp.prev != nil && t.fp.prev == leaf.prev.Load()
	prevMin := t.fp.prevMin
	prevSize := t.fp.prevSize
	t.unlockMeta()

	if isPole && mode == ModeQuIT && prevValid {
		if prevSize >= t.minLeaf {
			return t.variableSplit(path, leaf, key, lo, hi, prevMin, prevSize)
		}
		if fullPath {
			if target, tlo, thi, ok := t.redistributeIntoPrev(path, leaf, key, lo, hi); ok {
				return target, nil, tlo, thi
			}
		}
		// Redistribution was not applicable (the incoming key would have to
		// move with the redistributed prefix, or only a crabbed suffix of
		// the path is latched); fall back to the default pole split below.
	}
	if isPole {
		return t.splitPoleDefault(path, leaf, key, lo, hi, prevValid, prevMin, prevSize)
	}
	return t.splitOther(path, leaf, key, lo, hi)
}

// variableSplit implements Algorithm 2 lines 3-8: IKR locates the first
// outlier position l in the full pole and the node is split there instead
// of at 50%, packing in-order entries tightly.
func (t *Tree[K, V]) variableSplit(path []*node[K, V], leaf *node[K, V], key K, lo, hi bound[K], prevMin K, prevSize int) (*node[K, V], *node[K, V], bound[K], bound[K]) {
	q := leaf.keys[0]
	x := t.est.Bound(float64(prevMin), float64(q), prevSize, len(leaf.keys))
	l := outlierIndex(leaf.keys, x)

	if l > t.minLeaf {
		// Few outliers: split at l-1, carrying one non-outlier into the new
		// node, and move the pole pointer forward (Fig. 7a). MaxFill caps
		// how packed the kept node may be left (§5.2.1's tuning note).
		pos := l - 1
		if pos >= len(leaf.keys) {
			pos = len(leaf.keys) - 1
		}
		if capFill := int(t.cfg.MaxFill * float64(t.cfg.LeafCapacity)); pos > capFill {
			pos = capFill
		}
		if pos < t.minLeaf {
			pos = t.minLeaf
		}
		right := t.splitLeafAt(leaf, pos)
		splitKey := right.keys[0]
		t.propagateSplit(path, splitKey, right)
		t.c.variableSplits.Add(1)

		t.lockMeta()
		t.fp.prev = leaf
		t.fp.prevMin = q
		t.fp.prevSize = len(leaf.keys)
		t.fp.prevValid = true
		t.setFP(right, closed(splitKey), hi, pathWithLeaf(path, right))
		t.unlockMeta()
		target, tlo, thi := routeAfterSplit(leaf, right, key, lo, hi)
		return target, right, tlo, thi
	}

	// Mostly outliers: split at l, moving every outlier to the new node and
	// keeping the pole pointer (and its newfound space) in place (Fig. 7b).
	pos := l
	if pos < 1 {
		pos = 1
	}
	right := t.splitLeafAt(leaf, pos)
	splitKey := right.keys[0]
	t.propagateSplit(path, splitKey, right)
	t.c.variableSplits.Add(1)

	t.lockMeta()
	t.fp.max, t.fp.hasMax = splitKey, true
	t.fp.size = len(leaf.keys)
	t.unlockMeta()
	target, tlo, thi := routeAfterSplit(leaf, right, key, lo, hi)
	return target, right, tlo, thi
}

// redistributeIntoPrev implements Algorithm 2 line 10 / Fig. 7c: when
// pole_prev is less than half full, entries flow from the full pole into
// pole_prev until the latter is exactly half full, the separator pivot is
// rewritten, and no split happens at all. Returns ok=false when the move
// would displace the incoming key or there is nothing to move.
func (t *Tree[K, V]) redistributeIntoPrev(path []*node[K, V], leaf *node[K, V], key K, lo, hi bound[K]) (*node[K, V], bound[K], bound[K], bool) {
	prev := leaf.prev.Load()
	if prev == nil {
		return nil, lo, hi, false
	}

	// Reacquire in left-to-right order to stay deadlock-free with forward
	// scans. Descending writers are quiescent: the caller holds the entire
	// path including the root (splitForInsert only calls this under
	// fullPath), so prev cannot be split or merged underneath us. The one
	// writer that bypasses the descent — a fast-path insert latching
	// fp.leaf via metadata — can grab leaf during the window, but leaf is
	// full, so it can only overwrite values, never change lengths; every
	// size below is re-read after the latches are back.
	t.writeUnlatch(leaf)
	t.writeLatch(prev)
	t.writeLatch(leaf)

	m := t.minLeaf - len(prev.keys)
	if m <= 0 || m >= len(leaf.keys) {
		t.writeUnlatch(prev)
		return nil, lo, hi, false
	}
	// Never move the slot the incoming key belongs to: cap the transfer so
	// the new pole minimum stays <= key, keeping the insert target stable.
	if limit := lowerBound(leaf.keys, key); m > limit {
		m = limit
	}
	if m <= 0 {
		t.writeUnlatch(prev)
		return nil, lo, hi, false
	}

	oldMin := leaf.keys[0]
	prev.keys = append(prev.keys, leaf.keys[:m]...)
	prev.vals = append(prev.vals, leaf.vals[:m]...)
	copy(leaf.keys, leaf.keys[m:])
	leaf.keys = leaf.keys[:len(leaf.keys)-m]
	copy(leaf.vals, leaf.vals[m:])
	var zv V
	for i := len(leaf.vals) - m; i < len(leaf.vals); i++ {
		leaf.vals[i] = zv
	}
	leaf.vals = leaf.vals[:len(leaf.vals)-m]

	// The new separator must stay above every key now in prev and at or
	// below the incoming key (which the caller inserts into this leaf).
	newMin := leaf.keys[0]
	if key < newMin {
		newMin = key
	}
	t.updateSeparator(path, oldMin, newMin)
	t.writeUnlatch(prev)
	t.c.redistributions.Add(1)

	t.lockMeta()
	t.fp.min, t.fp.hasMin = newMin, true
	t.fp.size = len(leaf.keys)
	t.fp.prevSize = len(prev.keys)
	t.unlockMeta()
	return leaf, closed(newMin), hi, true
}

// updateSeparator rewrites the pivot that forms the lower bound of the
// fast-path leaf's range after a redistribution shifted the leaf's minimum
// from oldMin to newMin. The pivot lives at the deepest ancestor on path
// where the descent turned right.
func (t *Tree[K, V]) updateSeparator(path []*node[K, V], oldMin, newMin K) {
	for i := len(path) - 2; i >= 0; i-- {
		n := path[i]
		idx := upperBound(n.keys, oldMin)
		if idx > 0 {
			n.keys[idx-1] = newMin
			return
		}
	}
	panic("core: redistribution on a leaf with no separator pivot")
}

// splitPoleDefault is the ModePOLE split (Algorithm 1) and the QuIT
// fallback: a classical 50% split followed by the IKR-guided pole update
// policy (Fig. 6), or the initialization rule when pole_prev metadata is
// not yet established.
func (t *Tree[K, V]) splitPoleDefault(path []*node[K, V], leaf *node[K, V], key K, lo, hi bound[K], prevValid bool, prevMin K, prevSize int) (*node[K, V], *node[K, V], bound[K], bound[K]) {
	q := leaf.keys[0]
	sizeBefore := len(leaf.keys)
	right := t.splitLeafAt(leaf, sizeBefore/2)
	splitKey := right.keys[0]
	t.propagateSplit(path, splitKey, right)

	advance := false
	if prevValid && prevSize > 0 {
		x := t.est.Bound(float64(prevMin), float64(q), prevSize, sizeBefore)
		advance = float64(splitKey) <= x
	} else {
		// Initialization (§4.2): mark the half that receives the incoming
		// entry as pole.
		advance = key >= splitKey
	}

	t.lockMeta()
	if advance {
		t.fp.prev = leaf
		t.fp.prevMin = q
		t.fp.prevSize = len(leaf.keys)
		t.fp.prevValid = true
		t.setFP(right, closed(splitKey), hi, pathWithLeaf(path, right))
	} else {
		t.fp.max, t.fp.hasMax = splitKey, true
		t.fp.size = len(leaf.keys)
	}
	t.unlockMeta()
	target, tlo, thi := routeAfterSplit(leaf, right, key, lo, hi)
	return target, right, tlo, thi
}

// splitOther is the classical 50% split for any leaf that is not the pole,
// plus the mode-specific fast-path fixups it may imply.
func (t *Tree[K, V]) splitOther(path []*node[K, V], leaf *node[K, V], key K, lo, hi bound[K]) (*node[K, V], *node[K, V], bound[K], bound[K]) {
	right := t.splitLeafAt(leaf, len(leaf.keys)/2)
	splitKey := right.keys[0]
	t.propagateSplit(path, splitKey, right)

	t.lockMeta()
	fp := &t.fp
	switch t.cfg.Mode {
	case ModeTail:
		if right.next.Load() == nil {
			// The old tail split: the fast path follows the new rightmost
			// leaf, as in the PostgreSQL optimization.
			t.setFP(right, closed(splitKey), bound[K]{}, pathWithLeaf(path, right))
		}
	case ModeLIL:
		if leaf == fp.leaf {
			// Fig. 4c-e: lil follows the half that receives the key.
			if key >= splitKey {
				t.setFP(right, closed(splitKey), hi, pathWithLeaf(path, right))
			} else {
				fp.max, fp.hasMax = splitKey, true
				fp.size = len(leaf.keys)
			}
		}
	case ModePOLE, ModeQuIT:
		if fp.prevValid && fp.prev == leaf {
			// pole_prev split: the new right half becomes pole's neighbor.
			fp.prev = right
			fp.prevMin = splitKey
			fp.prevSize = len(right.keys)
		}
	}
	t.unlockMeta()
	target, tlo, thi := routeAfterSplit(leaf, right, key, lo, hi)
	return target, right, tlo, thi
}

// splitLeafAt moves leaf.keys[pos:] into a fresh right sibling and links it
// into the leaf chain, updating the tree tail if needed. The caller holds
// leaf's write latch in synchronized mode; the neighbor's prev pointer and
// the tail pointer are atomics, so no further latches are needed.
//
// The new sibling is returned write-latched: linking it into the chain (and
// into t.tail) publishes it to optimistic readers — Max through the tail
// pointer, iterators walking the chain — before the caller has finished
// mutating it, and a fresh node's version never changes during those
// mutations, so validation alone cannot protect readers. The caller must
// writeUnlatch it once the split (and any pending insert into it) is done.
func (t *Tree[K, V]) splitLeafAt(leaf *node[K, V], pos int) *node[K, V] {
	right := t.newLeaf()
	t.writeLatch(right) // uncontended: not yet published
	right.keys = append(right.keys, leaf.keys[pos:]...)
	right.vals = append(right.vals, leaf.vals[pos:]...)
	var zv V
	for i := pos; i < len(leaf.vals); i++ {
		leaf.vals[i] = zv
	}
	leaf.keys = leaf.keys[:pos]
	leaf.vals = leaf.vals[:pos]

	next := leaf.next.Load()
	right.prev.Store(leaf)
	right.next.Store(next)
	if next != nil {
		next.prev.Store(right)
	} else {
		t.tail.Store(right)
	}
	leaf.next.Store(right)

	t.c.leafSplits.Add(1)
	return right
}

// propagateSplit inserts the (splitKey, right) pivot produced by a leaf
// split into the ancestors on path, splitting overflowing internal nodes
// and growing a new root if the split reaches the top. In synchronized
// mode crabbing guarantees every ancestor that can overflow is latched.
//
// Internal siblings minted by splitInternal arrive write-latched and are
// released here as soon as they are wired into a parent (nothing mutates
// them afterwards). The incoming right — a split-off leaf, also latched —
// is left for the caller to release after the pending insert.
func (t *Tree[K, V]) propagateSplit(path []*node[K, V], splitKey K, right *node[K, V]) {
	for i := len(path) - 2; i >= 0; i-- {
		p := path[i]
		idx := upperBound(p.keys, splitKey)
		p.insertChildAt(idx, splitKey, right)
		if !right.isLeaf() {
			t.writeUnlatch(right)
		}
		if len(p.children) <= t.cfg.InternalFanout {
			return
		}
		splitKey, right = t.splitInternal(p)
	}
	// Root split: the caller holds the old root's latch (crabbing never
	// released it, or the whole path ends here), so the swap is atomic for
	// optimistic readers — they re-check the root pointer inside their read
	// section and restart if it moved. The new root is published latched and
	// released once fully wired, so a reader arriving through the fresh
	// pointer waits rather than observing it mid-initialization.
	old := path[0]
	newRoot := t.newInternal()
	t.writeLatch(newRoot) // uncontended: not yet published
	newRoot.keys = append(newRoot.keys, splitKey)
	newRoot.children = append(newRoot.children, old, right)
	if !right.isLeaf() {
		t.writeUnlatch(right)
	}
	t.root.Store(newRoot)
	t.height.Add(1)
	t.writeUnlatch(newRoot)
}

// splitInternal splits an overflowing internal node in half, promoting the
// middle pivot. Returns the promoted pivot and the new right node, which is
// write-latched (propagateSplit releases it once it is wired into a parent).
func (t *Tree[K, V]) splitInternal(p *node[K, V]) (K, *node[K, V]) {
	m := len(p.keys) / 2
	up := p.keys[m]
	right := t.newInternal()
	t.writeLatch(right) // uncontended: not yet published
	right.keys = append(right.keys, p.keys[m+1:]...)
	right.children = append(right.children, p.children[m+1:]...)
	for i := m + 1; i < len(p.children); i++ {
		p.children[i] = nil
	}
	p.keys = p.keys[:m]
	p.children = p.children[:m+1]
	t.c.internalSplits.Add(1)
	return up, right
}

// outlierIndex returns the first index whose key exceeds the IKR bound x
// (len(keys) if none): the paper's leaf.position(x) (Algorithm 2, line 4).
func outlierIndex[K Integer](keys []K, x float64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if float64(keys[mid]) <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// routeAfterSplit picks which half of a split receives key and returns its
// routing bounds.
func routeAfterSplit[K Integer, V any](left, right *node[K, V], key K, lo, hi bound[K]) (*node[K, V], bound[K], bound[K]) {
	splitKey := right.keys[0]
	if key >= splitKey {
		return right, closed(splitKey), hi
	}
	return left, lo, closed(splitKey)
}

// pathWithLeaf returns path with its final element replaced by leaf,
// without mutating path.
func pathWithLeaf[K Integer, V any](path []*node[K, V], leaf *node[K, V]) []*node[K, V] {
	out := make([]*node[K, V], len(path))
	copy(out, path[:len(path)-1])
	out[len(out)-1] = leaf
	return out
}
