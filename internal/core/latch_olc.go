//go:build !race

package core

import (
	"runtime"
	"sync/atomic"
)

// latch is a versioned optimistic latch in the optimistic-lock-coupling
// (OLC) style used by ART and the FB+-tree: a single atomic word packing
//
//	bit 0      obsolete flag (the node was unlinked from the tree)
//	bit 1      write-lock bit
//	bits 2..63 version counter, bumped by every write unlock
//
// Readers never modify the word: they snapshot the version, read the node
// optimistically, and re-validate the version afterwards, restarting the
// whole operation if a writer intervened. Writers spin on the lock bit.
//
// This is the production variant. The race-detector build (latch_race.go)
// swaps in a shared-pin implementation with the same API so `go test -race`
// can observe the happens-before edges the version protocol provides
// implicitly; see that file for the rationale.
type latch struct {
	w atomic.Uint64
}

const (
	latchObsolete uint64 = 1 << 0
	latchLocked   uint64 = 1 << 1
	latchInc      uint64 = 1 << 2 // version increment step
)

// latchSpinBudget is how many failed probes awaitUnlocked burns before
// yielding. On a single-processor runtime the lock holder cannot progress
// while we spin, so the only useful move is to yield immediately; with real
// parallelism a short spin usually outlasts the holder's critical section.
var latchSpinBudget = func() int {
	if runtime.GOMAXPROCS(0) > 1 {
		return 64
	}
	return 1
}()

// awaitUnlocked spins until the lock bit clears, yielding the processor
// after a burst of failed probes, and returns the observed word.
func (l *latch) awaitUnlocked() uint64 {
	for spins := 0; ; spins++ {
		v := l.w.Load()
		if v&latchLocked == 0 {
			return v
		}
		if spins >= latchSpinBudget {
			runtime.Gosched()
			spins = 0
		}
	}
}

// readLockOrRestart opens an optimistic read section and returns the
// version to validate against. ok is false when the node is obsolete (the
// caller must restart its operation from the root).
func (l *latch) readLockOrRestart() (uint64, bool) {
	v := l.awaitUnlocked()
	if v&latchObsolete != 0 {
		return 0, false
	}
	return v, true
}

// checkOrRestart validates mid-section that no writer has intervened since
// the version was read. The section stays open either way.
func (l *latch) checkOrRestart(v uint64) bool {
	return l.w.Load() == v
}

// readUnlockOrRestart closes a read section; it returns true iff every read
// performed inside the section was consistent. On false the caller must
// discard what it read and restart.
func (l *latch) readUnlockOrRestart(v uint64) bool {
	return l.w.Load() == v
}

// readAbort abandons a read section on a restart path without validating.
// Optimistic readers hold nothing, so this is a no-op (the race-build
// variant releases its shared pin here).
func (l *latch) readAbort() {}

// upgradeToWriteLockOrRestart atomically converts a validated read section
// into the write lock. On failure (a writer intervened) the read section is
// consumed and the caller must restart.
func (l *latch) upgradeToWriteLockOrRestart(v uint64) bool {
	return l.w.CompareAndSwap(v, v|latchLocked)
}

// writeLock acquires the write lock pessimistically, spinning until it wins.
func (l *latch) writeLock() {
	for {
		v := l.awaitUnlocked()
		if l.w.CompareAndSwap(v, v|latchLocked) {
			return
		}
	}
}

// writeLockOrRestart acquires the write lock pessimistically but fails —
// without acquiring — when the node is obsolete. A caller that blocked on a
// node latch may wake up after a concurrent rebalance merged the node away;
// acquiring it anyway would let the caller mutate an unlinked node (e.g. a
// fast-path insert landing in a dead leaf and silently losing the key).
// The obsolete flag is only ever set while the write lock is held, so the
// pre-CAS check cannot race with a concurrent markObsolete.
func (l *latch) writeLockOrRestart() bool {
	for {
		v := l.awaitUnlocked()
		if v&latchObsolete != 0 {
			return false
		}
		if l.w.CompareAndSwap(v, v|latchLocked) {
			return true
		}
	}
}

// tryWriteLock attempts the write lock with a single probe, never blocking.
// It fails on contention or when the node is obsolete. Because it cannot
// wait, it is the one latch operation that may run while holding the meta
// mutex without inverting the meta-innermost lock order.
func (l *latch) tryWriteLock() bool {
	v := l.w.Load()
	return v&(latchLocked|latchObsolete) == 0 && l.w.CompareAndSwap(v, v|latchLocked)
}

// writeUnlock releases the write lock and bumps the version so concurrent
// optimistic readers notice the modification. An obsolete flag set while
// the lock was held survives the unlock.
func (l *latch) writeUnlock() {
	l.w.Add(latchInc - latchLocked)
}

// markObsolete tags a write-locked node as unlinked from the tree. Readers
// that reach it through stale pointers fail readLockOrRestart and restart
// from the root; the garbage collector reclaims the node once the last such
// reader drops its reference (no epoch machinery needed in Go).
func (l *latch) markObsolete() {
	l.w.Add(latchObsolete)
}
