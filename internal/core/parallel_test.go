package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// collect drains a tree into a key->value map via Scan.
func collect(tr *Tree[int64, int64]) map[int64]int64 {
	got := make(map[int64]int64, tr.Len())
	tr.Scan(func(k, v int64) bool {
		got[k] = v
		return true
	})
	return got
}

// TestPutBatchParallelMatchesSequential drives every mode, synchronized
// and not, across the sortedness workloads, and requires PutBatchParallel
// to produce exactly the tree and results PutBatch does.
func TestPutBatchParallelMatchesSequential(t *testing.T) {
	for _, mode := range []Mode{ModeNone, ModeTail, ModeLIL, ModePOLE, ModeQuIT} {
		for _, synced := range []bool{false, true} {
			for name, keys := range workloads(6000, 77) {
				t.Run(fmt.Sprintf("%v/synced=%v/%s", mode, synced, name), func(t *testing.T) {
					cfg := smallConfig(mode)
					cfg.Synchronized = synced
					vals := make([]int64, len(keys))
					for i := range vals {
						vals[i] = keys[i] * 10
					}
					seqTree := New[int64, int64](cfg)
					parTree := New[int64, int64](cfg)
					var wantRes, gotRes []PutResult
					for pos := 0; pos < len(keys); pos += 2500 {
						end := min(pos+2500, len(keys))
						wantRes = append(wantRes, seqTree.PutBatch(keys[pos:end], vals[pos:end])...)
						gotRes = append(gotRes, parTree.PutBatchParallel(keys[pos:end], vals[pos:end], IngestOptions{Workers: 4})...)
					}
					if err := parTree.Validate(); err != nil {
						t.Fatalf("Validate: %v", err)
					}
					for i := range wantRes {
						if wantRes[i] != gotRes[i] {
							t.Fatalf("result[%d] = %+v, want %+v", i, gotRes[i], wantRes[i])
						}
					}
					if parTree.Len() != seqTree.Len() {
						t.Fatalf("Len = %d, want %d", parTree.Len(), seqTree.Len())
					}
					want, got := collect(seqTree), collect(parTree)
					for k, v := range want {
						if got[k] != v {
							t.Fatalf("key %d = %d, want %d", k, got[k], v)
						}
					}
				})
			}
		}
	}
}

// TestPutBatchParallelDuplicates pins last-write-wins and Existed
// reporting through the parallel path, including duplicates that straddle
// the frontier boundary.
func TestPutBatchParallelDuplicates(t *testing.T) {
	cfg := syncConfig(ModeQuIT)
	keys := make([]int64, 0, 3*parallelMinBatch)
	vals := make([]int64, 0, 3*parallelMinBatch)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < cap(keys); i++ {
		keys = append(keys, int64(rng.Intn(parallelMinBatch*2)))
		vals = append(vals, int64(i))
	}
	seqTree := New[int64, int64](cfg)
	parTree := New[int64, int64](cfg)
	want := seqTree.PutBatch(keys, vals)
	got := parTree.PutBatchParallel(keys, vals, IngestOptions{Workers: 4})
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("result[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	if err := parTree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	w, g := collect(seqTree), collect(parTree)
	if len(w) != len(g) {
		t.Fatalf("len = %d, want %d", len(g), len(w))
	}
	for k, v := range w {
		if g[k] != v {
			t.Fatalf("key %d = %d, want %d", k, g[k], v)
		}
	}
}

// TestPutBatchParallelFrontierSplice checks that an all-beyond-the-maximum
// batch takes the packed-chain splice (observable in Stats) and leaves a
// valid tree with every key present.
func TestPutBatchParallelFrontierSplice(t *testing.T) {
	for _, mode := range []Mode{ModeNone, ModeTail, ModeQuIT} {
		t.Run(mode.String(), func(t *testing.T) {
			tr := New[int64, int64](syncConfig(mode))
			for i := int64(0); i < 100; i++ {
				tr.Insert(i, i)
			}
			n := int64(4 * parallelMinBatch)
			keys := make([]int64, n)
			vals := make([]int64, n)
			for i := range keys {
				keys[i] = 100 + int64(i)
				vals[i] = int64(i)
			}
			tr.PutBatchParallel(keys, vals, IngestOptions{Workers: 4})
			if err := tr.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if got, want := tr.Len(), int(n)+100; got != want {
				t.Fatalf("Len = %d, want %d", got, want)
			}
			st := tr.Stats()
			if st.FrontierSplices == 0 {
				t.Fatalf("FrontierSplices = 0, want > 0 (stats: %+v)", st)
			}
			if st.ParallelBatches != 1 {
				t.Fatalf("ParallelBatches = %d, want 1", st.ParallelBatches)
			}
			// Spot-check both ends of the spliced chain.
			for _, k := range []int64{100, 100 + n/2, 99 + n} {
				if _, ok := tr.Get(k); !ok {
					t.Fatalf("Get(%d) missing after splice", k)
				}
			}
			// The fast path must track the new tail: a subsequent append run
			// should hit it.
			tr.ResetCounters()
			tail := []int64{100 + n, 101 + n, 102 + n}
			tr.PutBatch(tail, tail)
			if mode != ModeNone && tr.Stats().BatchFastRuns == 0 {
				t.Fatalf("append after splice missed the fast path: %+v", tr.Stats())
			}
		})
	}
}

// TestBuildFromSortedParallelShape requires the parallel bulk load to
// produce exactly the tree BuildFromSorted does — same shape, same
// contents — and to reject the same bad inputs.
func TestBuildFromSortedParallelShape(t *testing.T) {
	for _, fill := range []float64{0.5, 0.9, 1.0} {
		t.Run(fmt.Sprintf("fill=%.1f", fill), func(t *testing.T) {
			n := 10000
			keys := make([]int64, n)
			vals := make([]int64, n)
			for i := range keys {
				keys[i] = int64(i) * 2
				vals[i] = int64(i)
			}
			seqTree := New[int64, int64](smallConfig(ModeQuIT))
			parTree := New[int64, int64](smallConfig(ModeQuIT))
			if err := seqTree.BuildFromSorted(keys, vals, fill); err != nil {
				t.Fatalf("BuildFromSorted: %v", err)
			}
			if err := parTree.BuildFromSortedParallel(keys, vals, fill, 4); err != nil {
				t.Fatalf("BuildFromSortedParallel: %v", err)
			}
			if err := parTree.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			ss, ps := seqTree.Stats(), parTree.Stats()
			if ps.Size != ss.Size || ps.Height != ss.Height || ps.Leaves != ss.Leaves || ps.Internals != ss.Internals {
				t.Fatalf("shape mismatch: parallel %+v vs sequential %+v", ps, ss)
			}
			want, got := collect(seqTree), collect(parTree)
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("key %d = %d, want %d", k, got[k], v)
				}
			}
			if err := New[int64, int64](smallConfig(ModeQuIT)).BuildFromSortedParallel([]int64{3, 1}, []int64{0, 0}, fill, 4); err != ErrNotSorted {
				t.Fatalf("unsorted input: err = %v, want ErrNotSorted", err)
			}
			if err := parTree.BuildFromSortedParallel(keys, vals, fill, 4); err != ErrNotEmpty {
				t.Fatalf("non-empty tree: err = %v, want ErrNotEmpty", err)
			}
		})
	}
}

// TestStressParallelIngest is the parallel-ingest round of the stress
// suite: one goroutine streams PutBatchParallel batches up the key space
// while OLC readers scan and point-read and a deleter chews on already-
// ingested prefixes. Between rounds everything quiesces and the
// structural validator (leaf chain, separators, fast-path metadata)
// sweeps the tree.
func TestStressParallelIngest(t *testing.T) {
	const readers = 3
	batch := 2 * parallelMinBatch
	nBatches := max(1, stressOpsPerRound/700) // per round; scaled like the other stress tests
	for _, mode := range []Mode{ModeNone, ModeQuIT} {
		t.Run(mode.String(), func(t *testing.T) {
			tr := New[int64, int64](syncConfig(mode))
			var next atomic.Int64 // high-water mark of ingested keys
			var liveMu sync.Mutex
			live := make(map[int64]int64)
			for round := 0; round < stressRounds; round++ {
				var writers, readerWG sync.WaitGroup
				errs := make(chan error, readers+2)
				stop := make(chan struct{})

				// Ingester: near-sorted batches marching up the key space,
				// with a scattered minority reaching back into ingested
				// territory so the interior partitions see real work.
				writers.Add(1)
				go func(round int) {
					defer writers.Done()
					rng := rand.New(rand.NewSource(int64(9000 + round)))
					keys := make([]int64, batch)
					vals := make([]int64, batch)
					for b := 0; b < nBatches; b++ {
						base := next.Load()
						for i := range keys {
							if i%17 == 0 && base > 0 {
								keys[i] = rng.Int63n(base) // interior rewrite
							} else {
								keys[i] = base + int64(i)
							}
							vals[i] = keys[i]*2 + int64(round)
						}
						res := tr.PutBatchParallel(keys, vals, IngestOptions{Workers: 4})
						if len(res) != batch {
							errs <- fmt.Errorf("round %d: %d results for batch of %d", round, len(res), batch)
							return
						}
						liveMu.Lock()
						for i := range keys {
							live[keys[i]] = vals[i]
						}
						liveMu.Unlock()
						next.Store(base + int64(batch))
					}
				}(round)

				// Readers: monotone Range order under concurrent splices.
				for r := 0; r < readers; r++ {
					readerWG.Add(1)
					go func(r int) {
						defer readerWG.Done()
						rng := rand.New(rand.NewSource(int64(100*round + r)))
						for {
							select {
							case <-stop:
								return
							default:
							}
							hi := next.Load()
							if hi == 0 {
								continue
							}
							lo := rng.Int63n(hi)
							prev := lo - 1
							bad := false
							tr.Range(lo, lo+500, func(k, _ int64) bool {
								if k <= prev {
									bad = true
									return false
								}
								prev = k
								return true
							})
							if bad {
								errs <- fmt.Errorf("round %d: Range out of order near %d", round, lo)
								return
							}
							tr.Get(rng.Int63n(hi))
						}
					}(r)
				}

				// Deleter: chews one residue class of already-ingested keys.
				writers.Add(1)
				go func(round int) {
					defer writers.Done()
					rng := rand.New(rand.NewSource(int64(7000 + round)))
					for i := 0; i < stressOpsPerRound; i++ {
						hi := next.Load()
						if hi == 0 {
							continue
						}
						if k := rng.Int63n(hi); k%5 == 3 {
							if _, existed := tr.Delete(k); existed {
								liveMu.Lock()
								delete(live, k)
								liveMu.Unlock()
							}
						}
					}
				}(round)

				// Let the writers finish, then stop the readers.
				writers.Wait()
				close(stop)
				readerWG.Wait()

				select {
				case err := <-errs:
					t.Fatal(err)
				default:
				}
				if err := tr.Validate(); err != nil {
					t.Fatalf("round %d: Validate: %v", round, err)
				}
			}
			// Keys in the deleter's residue may have raced a rewrite (tree
			// op and map update are not atomic together); every other
			// residue has a single writer and must match exactly.
			checked := 0
			for k, v := range live {
				if k%5 == 3 {
					continue
				}
				if got, ok := tr.Get(k); !ok || got != v {
					t.Fatalf("Get(%d) = (%d,%v), want (%d,true)", k, got, ok, v)
				}
				if checked++; checked > 4000 {
					break
				}
			}
		})
	}
}
