package core

import "sync"

// parallel.go is the parallel ingest pipeline (DESIGN.md §10): PutBatch's
// run engine fanned out over a bounded worker pool. The batch is classified
// and deduplicated once on the calling goroutine (reusing the adaptive sort
// of batch.go), then split at the tree's current maximum key:
//
//   - Keys beyond the maximum — the frontier, which is the bulk of a
//     near-sorted batch — are guaranteed absent, so workers build fully
//     packed leaves for them concurrently without touching the tree at
//     all, and the coordinator splices the finished chain after the
//     rightmost leaf under one latched descent.
//   - The remaining interior keys are partitioned into contiguous chunks
//     aligned to separator keys sampled from the root, so each worker's
//     runs land in a disjoint subtree and writers rarely meet on a leaf.
//     Workers apply their runs through the existing OLC write-latch
//     protocol (topRun/tryOptimisticRun are already safe under concurrent
//     writers); only the fast-path policy is withheld from them.
//
// Worker latch discipline: exactly one actor per batch may race the shared
// fast-path metadata — the coordinator when a frontier exists (its tail
// top-up and splice), otherwise the worker owning the rightmost interior
// chunk, which runs the full applyRuns policy including tryFastRun. Every
// other worker runs sweepRunsPolicy(policy=false): no fast-path probes,
// and only the mandatory metadata repairs after an install. fp-meta stays
// strictly innermost throughout, exactly as in the sequential path.

// IngestOptions tunes PutBatchParallel.
type IngestOptions struct {
	// Workers bounds the worker pool. Values <= 1 (or batches too small to
	// amortize goroutine dispatch) run the sequential PutBatch.
	Workers int
}

// parallelMinBatch is the batch size below which PutBatchParallel falls
// back to the sequential path: goroutine dispatch and the partitioning
// pass cost more than they save on small batches.
const parallelMinBatch = 2048

// PutBatchParallel is PutBatch with the run installation fanned out over
// opts.Workers goroutines. Semantics are identical to PutBatch (sequential
// Put per pair, last-write-wins duplicates, one PutResult per position);
// only the installation order of disjoint runs differs, which is
// unobservable. It panics if the slices have different lengths.
//
// Concurrency: safe with concurrent readers and writers when the tree is
// Synchronized — workers use the same OLC write-latch protocol as
// concurrent PutBatch callers would. On an unsynchronized tree the caller
// must still provide external synchronization; the frontier leaf build is
// then the only part that fans out (it touches no shared structure until
// the single-threaded splice).
func (t *Tree[K, V]) PutBatchParallel(keys []K, vals []V, opts IngestOptions) []PutResult {
	if len(keys) != len(vals) {
		panic(errBatchLenMismatch(len(keys), len(vals)).Error())
	}
	if opts.Workers <= 1 || len(keys) < parallelMinBatch {
		return t.PutBatch(keys, vals)
	}
	results := make([]PutResult, len(keys))
	s := t.getScratch()
	sk, sv, ord, dup := t.sortedView(keys, vals, s)
	uk, uv, first := dedupSorted(sk, sv, results, ord, dup, s)
	existed := grow(&s.existed, len(uk))
	clear(existed)
	t.applyParallel(uk, uv, existed, opts.Workers)
	mapExisted(existed, results, ord, first)
	t.scratch.Put(s)
	t.c.parallelBatches.Add(1)
	return results
}

// applyParallel installs the sorted, unique batch with up to `workers`
// concurrent goroutines. Workers write disjoint index ranges of existed
// and share nothing else but the tree itself.
func (t *Tree[K, V]) applyParallel(keys []K, vals []V, existed []bool, workers int) {
	// The frontier boundary: keys beyond the current maximum are absent by
	// definition and buildable as a packed chain. The snapshot is
	// optimistic — the splice revalidates under its latches and falls back
	// to the general sweep if a concurrent writer advanced the maximum.
	frontier := 0
	if maxK, _, ok := t.Max(); ok {
		frontier = upperBound(keys, maxK)
	}
	ends := t.partitionKeys(keys[:frontier], workers)

	var wg sync.WaitGroup
	if t.synced {
		start := 0
		for ci, end := range ends {
			ks, vs, ex := keys[start:end], vals[start:end], existed[start:end]
			// The rightmost interior chunk is the designated tail worker
			// when no frontier exists: it alone runs the full fast-path
			// policy (tryFastRun probes, pole bookkeeping).
			policy := ci == len(ends)-1 && frontier == len(keys)
			wg.Add(1)
			go func() {
				defer wg.Done()
				if policy {
					t.applyRuns(ks, vs, ex)
				} else {
					t.sweepRunsPolicy(ks, vs, ex, false)
				}
			}()
			start = end
		}
	}
	if frontier < len(keys) {
		t.ingestFrontier(keys[frontier:], vals[frontier:], existed[frontier:], workers)
	}
	if !t.synced && frontier > 0 {
		// Without latches, interior runs cannot fan out; they still benefit
		// from the frontier having been peeled off and built in parallel.
		t.applyRuns(keys[:frontier], vals[:frontier], existed[:frontier])
	}
	wg.Wait()
}

// partitionKeys cuts the sorted interior keys into at most `parts`
// contiguous chunks of roughly equal size, aligning each cut to a
// separator key sampled from the root when one lies nearby, so chunks map
// onto disjoint subtrees and workers rarely contend for the same leaves.
// Returns the chunk end offsets (the last is len(keys)); an empty input
// yields no chunks. Sampling is optimistic and only affects balance —
// correctness rests entirely on the latch protocol — so a stale or failed
// sample just degrades to even cuts.
func (t *Tree[K, V]) partitionKeys(keys []K, parts int) []int {
	if len(keys) == 0 {
		return nil
	}
	ends := make([]int, 0, parts)
	seps := t.sampleSeparators()
	slack := len(keys) / (2 * parts)
	for w := 1; w < parts; w++ {
		ideal := len(keys) * w / parts
		pos := ideal
		if len(seps) > 0 {
			// Snap to the separator whose cut position lies closest to the
			// even cut, if any falls within half a chunk of it.
			j := searchKeys(seps, keys[ideal])
			best, bestDist := -1, slack+1
			for _, c := range []int{j - 1, j} {
				if c < 0 || c >= len(seps) {
					continue
				}
				p := searchKeys(keys, seps[c])
				d := p - ideal
				if d < 0 {
					d = -d
				}
				if d < bestDist {
					best, bestDist = p, d
				}
			}
			if best >= 0 {
				pos = best
			}
		}
		if pos <= 0 || pos >= len(keys) {
			continue
		}
		if len(ends) > 0 && pos <= ends[len(ends)-1] {
			continue
		}
		ends = append(ends, pos)
	}
	return append(ends, len(keys))
}

// sampleSeparators snapshots the root's separator keys under an optimistic
// read latch. A failed validation returns nil (even partitioning); a
// sample that goes stale immediately after is equally harmless.
func (t *Tree[K, V]) sampleSeparators() []K {
	n, v := t.readRoot()
	var seps []K
	if !n.isLeaf() { // a leaf root has no separators
		seps = make([]K, len(n.keys))
		copy(seps, n.keys)
	}
	if !t.readUnlatch(n, v) {
		return nil
	}
	return seps
}

// capFillTarget is the packed-chunk size shared by the frontier builder
// and leafCuts: MaxFill of a leaf, clamped to [1, capacity].
func (t *Tree[K, V]) capFillTarget() int {
	c := t.cfg.LeafCapacity
	capFill := int(t.cfg.MaxFill * float64(c))
	if capFill < 1 {
		capFill = 1
	}
	if capFill > c {
		capFill = c
	}
	return capFill
}

// ingestFrontier installs the strictly-beyond-the-maximum suffix of the
// batch: top up the current tail leaf, build fully packed leaves for the
// rest with `workers` goroutines (the leaves touch no shared structure
// until published), and splice the finished chain after the rightmost
// leaf in one latched descent. Races with concurrent writers are detected
// under the latches and degrade to the general run sweep.
func (t *Tree[K, V]) ingestFrontier(keys []K, vals []V, existed []bool, workers int) {
	if n := t.tryTailTopUp(keys, vals); n > 0 {
		keys, vals, existed = keys[n:], vals[n:], existed[n:]
		if len(keys) == 0 {
			return
		}
	}
	pack := t.packTarget(t.capFillTarget())
	if len(keys) < pack {
		// Less than one packed leaf left: the run sweep handles it with a
		// single descent (full policy — this is the tail region).
		t.sweepRuns(keys, vals, existed)
		return
	}

	// Build the chain: leaf i holds keys[i*pack : (i+1)*pack], packed to the
	// fill ceiling less the configured gap fraction. Interior leaves spread
	// their free slots as interleaved gaps for later near-sorted inserts;
	// the last leaf stays dense — it becomes the new open tail. Workers own
	// disjoint leaf index ranges; newLeaf is safe concurrently (the slab
	// allocator locks, ids and counters are atomic) and the fresh leaves
	// are created write-latched so readers reached through the published
	// chain validate against them, exactly as split-off leaves are.
	nLeaves := (len(keys) + pack - 1) / pack
	chain := make([]*node[K, V], nLeaves)
	per := (nLeaves + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < nLeaves; lo += per {
		hi := min(lo+per, nLeaves)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for li := lo; li < hi; li++ {
				start := li * pack
				end := min(start+pack, len(keys))
				lf := t.newLeaf()
				t.writeLatch(lf) // uncontended: not yet published
				fillLeaf(lf, keys[start:end], vals[start:end], li < nLeaves-1 && end-start < t.cfg.LeafCapacity)
				chain[li] = lf
			}
		}(lo, hi)
	}
	wg.Wait()
	for i := 1; i < nLeaves; i++ {
		chain[i].prev.Store(chain[i-1])
		chain[i-1].next.Store(chain[i])
	}
	pivots := make([]K, nLeaves)
	for i, lf := range chain {
		pivots[i] = lf.minKey()
	}

	if !t.spliceFrontier(chain, pivots) {
		// A concurrent writer advanced the maximum past the chain's first
		// key. Nothing was published: unlatch and discard the chain (the
		// leaf counter must not count unreachable nodes) and fall back.
		for _, lf := range chain {
			t.writeUnlatch(lf)
		}
		t.nLeaves.Add(int64(-nLeaves))
		t.sweepRuns(keys, vals, existed)
		return
	}
	t.c.fastInserts.Add(int64(len(keys)))
	t.c.batchRuns.Add(1)
	t.c.frontierSplices.Add(1)
	t.size.Add(int64(len(keys)))
}

// tryTailTopUp appends the longest prefix of a strictly-frontier run (all
// keys beyond the tree maximum) into the tail leaf's spare packed
// capacity under a single leaf latch. Like tryFastRun it reaches its leaf
// through metadata — the atomic tail pointer — rather than a latched
// descent, so it must use the obsolete-failing writeLatchLive and
// revalidate after acquiring: the leaf may have been split past or merged
// away in the window. Returns the number of keys consumed (0 on any lost
// race; the caller's splice or sweep revalidates from scratch anyway).
func (t *Tree[K, V]) tryTailTopUp(keys []K, vals []V) int {
	tail := t.tail.Load()
	if !t.writeLatchLive(tail) {
		return 0
	}
	if tail.next.Load() != nil || (tail.leafCount() > 0 && keys[0] <= tail.maxKey()) {
		// No longer the rightmost leaf, or a concurrent writer advanced the
		// maximum to or past the run's first key.
		t.writeUnlatch(tail)
		return 0
	}
	n := min(t.capFillTarget()-tail.leafCount(), len(keys))
	if n <= 0 {
		t.writeUnlatch(tail)
		return 0
	}
	if cap(tail.keys)-len(tail.keys) < n {
		// Interior gaps consumed the tail room; squeeze them out so the
		// top-up is a straight high-water-mark append.
		tail.compact()
	}
	tail.appendDense(keys[:n], vals[:n])
	if t.cfg.Mode != ModeNone {
		t.lockMeta()
		if t.fp.leaf == tail {
			t.fp.size = tail.leafCount()
		}
		t.unlockMeta()
	}
	t.writeUnlatch(tail)
	t.c.fastInserts.Add(int64(n))
	t.c.batchRuns.Add(1)
	t.c.batchFastRuns.Add(1)
	t.size.Add(int64(n))
	return n
}

// spliceFrontier links a pre-built packed chain after the rightmost leaf:
// one pessimistic full-path descent (a splice promotes len(chain) pivots
// at once, the same reason topRun holds the path for a multi-way split),
// the chain wired into the leaf chain and handed to propagateMultiSplit
// as one pivot group, and the fast path repointed at the new tail — all
// before any latch is released, so no reader or fast-path writer can
// observe the old metadata against the new chain. Returns false, having
// published nothing, when the rightmost leaf no longer sits below the
// chain's first key.
func (t *Tree[K, V]) spliceFrontier(chain []*node[K, V], pivots []K) bool {
	path, lockedFrom, _, hi := t.descendForWrite(pivots[0], true)
	leaf := path[len(path)-1].n
	if hi.ok || leaf.leafCount() == 0 || leaf.maxKey() >= pivots[0] {
		// Not the open rightmost leaf anymore — or an empty root leaf,
		// which must absorb keys before it may grow a chain (an empty leaf
		// inside a non-empty tree is invalid). The caller falls back.
		t.unlockPathFrom(path, lockedFrom)
		return false
	}
	nodes := make([]*node[K, V], len(path))
	for i := range path {
		nodes[i] = path[i].n
	}
	last := chain[len(chain)-1]
	chain[0].prev.Store(leaf)
	leaf.next.Store(chain[0])
	t.tail.Store(last)
	t.propagateMultiSplit(nodes, pivots, chain)
	if t.cfg.Mode != ModeNone {
		// Repoint the fast path at the new tail before any latch drops:
		// the old rightmost leaf is latched on the path, so no fast-path
		// writer can slip a key through the stale unbounded metadata.
		t.lockMeta()
		t.resetFPToTail()
		if t.cfg.Mode == ModePOLE || t.cfg.Mode == ModeQuIT {
			// The new tail's left neighbor is ours and still latched, so
			// pole_prev is exact and the IKR estimator stays armed.
			if prev := last.prev.Load(); prev != nil && prev.leafCount() > 0 {
				t.fp.prev = prev
				t.fp.prevMin = prev.minKey()
				t.fp.prevSize = prev.leafCount()
				t.fp.prevValid = true
			}
		}
		t.unlockMeta()
	}
	for _, lf := range chain {
		t.writeUnlatch(lf)
	}
	t.unlockPathFrom(path, lockedFrom)
	return true
}
