package core

import (
	"math/bits"
	"sync/atomic"
)

// node is a B+-tree node. Internal nodes hold len(keys)+1 children, where
// children[i] covers keys in [keys[i-1], keys[i]) (with the usual open
// bounds at the edges), and use keys densely exactly as a textbook B+-tree.
//
// Leaves use a *gapped* slot layout (BS-tree style). The keys/vals slices
// are carved from fixed-capacity backing arrays of slotCap = LeafCapacity+1
// slots; len(keys) is a high-water mark ("used"): slots [0,used) are
// initialized, slots [used,cap) are untouched tail room. Within the used
// region a presence bitmap distinguishes live entries from gaps, and count
// tracks the number of live entries. The slot invariants are:
//
//   - keys[0:used] is non-decreasing over ALL slots, live or gap;
//   - the live keys (present bits set) are strictly increasing;
//   - every gap slot holds a copy of a neighboring key (so the whole array
//     stays sorted and the branchless searchKeys probe needs no per-slot
//     presence branch), and its value slot is zeroed so deleted values are
//     not retained from the garbage collector's point of view;
//   - count = popcount(present) <= LeafCapacity < slotCap.
//
// A point probe is searchKeys over the full slot array (branchless, exactly
// as for a dense leaf) followed by a word-at-a-time bitmap scan to the
// first live slot at or after the landing index; the key is present iff
// that slot holds it (gaps only ever hold copies of live neighbors, so a
// gap can never alias a key that is not live). A mid-leaf insert shifts the
// fully-live run between the insertion point and the *nearest* gap by one
// slot — O(gap distance) instead of the old memmove of half the node — and
// a delete just clears a presence bit and zeroes the value: O(1), the slot
// key itself remains as a legal gap copy. Appends at the high-water mark
// (the sorted-ingest hot path) are exactly the old dense append.
//
// The versioned latch (lt) is only exercised when the tree was configured
// with Synchronized=true; unsynchronized trees never touch it. All latch
// traffic goes through the tree-level helpers in latch.go.
//
// Concurrency-critical layout invariant: the keys/vals/children/present
// backing arrays are allocated once at node construction with enough
// capacity for every legal transient state (see newLeaf/newInternal) and
// are never reallocated. Optimistic readers may observe a node
// mid-mutation; because only slice lengths, slot contents, bitmap words and
// count change in place, every such read stays inside the original
// allocation and is discarded by version validation, never a memory-safety
// hazard. Readers must still bounds-guard slot indexes derived from the
// bitmap against their own snapshot of len(keys): a torn bitmap word can
// briefly advertise a live slot past an already-read high-water mark.
// next/prev are atomic because neighbors update each other's links while
// holding only their own latch.
type node[K Integer, V any] struct {
	lt   latch
	id   uint64
	keys []K

	// Leaf fields.
	vals    []V
	present []uint64 // live-slot bitmap over [0, cap(keys))
	count   int32    // live entries; mutated only under the write latch
	next    atomic.Pointer[node[K, V]]
	prev    atomic.Pointer[node[K, V]]

	// Internal field. nil for leaves.
	children []*node[K, V]
}

func (n *node[K, V]) isLeaf() bool { return n.children == nil }

// leafCount returns the number of live entries in a leaf. Optimistic
// readers may see a torn value; version validation rejects such reads.
func (n *node[K, V]) leafCount() int { return int(n.count) }

// childAt returns children[idx] for an optimistic reader. ok=false flags a
// torn observation — the index past the current length, or a nil slot mid
// shift — which the caller must treat as a failed validation and restart.
// Writers mutate keys and children in separate steps, so an optimistic
// routing index computed from keys can momentarily disagree with children;
// this guard keeps such reads from faulting before version validation
// rejects them.
func (n *node[K, V]) childAt(idx int) (*node[K, V], bool) {
	ch := n.children
	if idx >= len(ch) {
		return nil, false
	}
	c := ch[idx]
	return c, c != nil
}

// searchKeys returns the first index i with keys[i] >= k (len(keys) if
// none): the shared binary search behind find, lowerBound and every hot
// lookup/insert probe. For gapped leaves it runs over the full slot array —
// gap copies keep it sorted, so no presence test is needed inside the loop.
// The halving loop keeps the search range as a (base, length) pair so its
// only data-dependent branch is a comparison feeding a conditional add,
// which the compiler lowers to a conditional move — no per-probe branch
// mispredictions, unlike the classic lo/hi loop (see BenchmarkSearchKeys).
func searchKeys[K Integer](keys []K, k K) int {
	lo, n := 0, len(keys)
	for n > 1 {
		half := n >> 1
		if keys[lo+half-1] < k {
			lo += half
		}
		n -= half
	}
	if n == 1 && keys[lo] < k {
		lo++
	}
	return lo
}

// upperBound returns the first index i with keys[i] > k (len(keys) if none).
// This is the child-routing function for internal nodes. Branchless-shaped
// like searchKeys.
func upperBound[K Integer](keys []K, k K) int {
	lo, n := 0, len(keys)
	for n > 1 {
		half := n >> 1
		if keys[lo+half-1] <= k {
			lo += half
		}
		n -= half
	}
	if n == 1 && keys[lo] <= k {
		lo++
	}
	return lo
}

// lowerBound returns the first index i with keys[i] >= k (len(keys) if none).
func lowerBound[K Integer](keys []K, k K) int { return searchKeys(keys, k) }

// route returns the child index an internal node uses for key k.
func (n *node[K, V]) route(k K) int { return upperBound(n.keys, k) }

// bitmapWords returns the number of uint64 words covering `slots` slots.
func bitmapWords(slots int) int { return (slots + 63) / 64 }

func (n *node[K, V]) setBit(i int)       { n.present[i>>6] |= 1 << uint(i&63) }
func (n *node[K, V]) clearBit(i int)     { n.present[i>>6] &^= 1 << uint(i&63) }
func (n *node[K, V]) hasSlot(i int) bool { return n.present[i>>6]&(1<<uint(i&63)) != 0 }

// setBitRange sets bits [lo, hi) word-at-a-time (bulk append / rebuild).
func (n *node[K, V]) setBitRange(lo, hi int) {
	for lo < hi {
		w := lo >> 6
		b := uint(lo & 63)
		span := 64 - int(b)
		if lo+span > hi {
			span = hi - lo
		}
		n.present[w] |= (^uint64(0) >> uint(64-span)) << b
		lo += span
	}
}

// clearBits zeroes the whole bitmap.
func (n *node[K, V]) clearBits() {
	for i := range n.present {
		n.present[i] = 0
	}
}

// nextPresent returns the first live slot >= i, or -1 if none. This is the
// word-at-a-time half of the data-parallel probe: one masked word test
// covers up to 64 slots per iteration.
func (n *node[K, V]) nextPresent(i int) int {
	if i < 0 {
		i = 0
	}
	w := i >> 6
	if w >= len(n.present) {
		return -1
	}
	word := n.present[w] & (^uint64(0) << uint(i&63))
	for {
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
		w++
		if w >= len(n.present) {
			return -1
		}
		word = n.present[w]
	}
}

// prevPresent returns the last live slot <= i, or -1 if none.
func (n *node[K, V]) prevPresent(i int) int {
	if i >= len(n.present)<<6 {
		i = len(n.present)<<6 - 1
	}
	if i < 0 {
		return -1
	}
	w := i >> 6
	word := n.present[w] & (^uint64(0) >> uint(63-i&63))
	for {
		if word != 0 {
			return w<<6 + 63 - bits.LeadingZeros64(word)
		}
		w--
		if w < 0 {
			return -1
		}
		word = n.present[w]
	}
}

// nextGapIn returns the first gap slot in [i, used), or -1 if that run is
// fully live. Word-at-a-time over the inverted bitmap.
func (n *node[K, V]) nextGapIn(i, used int) int {
	if i < 0 {
		i = 0
	}
	for i < used {
		w := i >> 6
		word := ^n.present[w] & (^uint64(0) << uint(i&63))
		if word != 0 {
			g := w<<6 + bits.TrailingZeros64(word)
			if g < used {
				return g
			}
			return -1
		}
		i = (w + 1) << 6
	}
	return -1
}

// prevGap returns the last gap slot <= i, or -1 if slots [0, i] are fully
// live.
func (n *node[K, V]) prevGap(i int) int {
	if i < 0 {
		return -1
	}
	w := i >> 6
	word := ^n.present[w] & (^uint64(0) >> uint(63-i&63))
	for {
		if word != 0 {
			return w<<6 + 63 - bits.LeadingZeros64(word)
		}
		w--
		if w < 0 {
			return -1
		}
		word = ^n.present[w]
	}
}

// minSlot / maxSlot return the slot of the smallest / largest live key, or
// -1 for an empty leaf.
func (n *node[K, V]) minSlot() int { return n.nextPresent(0) }
func (n *node[K, V]) maxSlot() int { return n.prevPresent(len(n.keys) - 1) }

// minKey returns the smallest live key of a non-empty leaf.
func (n *node[K, V]) minKey() K { return n.keys[n.minSlot()] }

// maxKey returns the largest live key of a non-empty leaf.
func (n *node[K, V]) maxKey() K { return n.keys[n.maxSlot()] }

// rankOf returns the number of live slots strictly below slot.
func (n *node[K, V]) rankOf(slot int) int {
	if slot <= 0 {
		return 0
	}
	w := slot >> 6
	r := 0
	for j := 0; j < w; j++ {
		r += bits.OnesCount64(n.present[j])
	}
	if w < len(n.present) {
		r += bits.OnesCount64(n.present[w] & (1<<uint(slot&63) - 1))
	}
	return r
}

// selectRank returns the slot of the m-th (0-based) live entry. The caller
// guarantees m < count.
func (n *node[K, V]) selectRank(m int) int {
	for w, word := range n.present {
		c := bits.OnesCount64(word)
		if m < c {
			for ; ; m-- {
				t := bits.TrailingZeros64(word)
				if m == 0 {
					return w<<6 + t
				}
				word &^= 1 << uint(t)
			}
		}
		m -= c
	}
	return -1
}

// probe is the write-side leaf probe: one searchKeys over the slot array
// yields both the raw insertion slot ins (what gapInsertAt consumes) and
// the first live slot at or after it. On ok=true that live slot holds
// exactly k. Insert paths use probe so the duplicate check and the
// following gapInsertAt share a single binary search.
func (n *node[K, V]) probe(k K) (ins, live int, ok bool) {
	ins = searchKeys(n.keys, k)
	live = n.nextPresent(ins)
	if live < 0 || live >= len(n.keys) || n.keys[live] != k {
		if live >= len(n.keys) {
			live = -1
		}
		return ins, live, false
	}
	return ins, live, true
}

// find locates k in a leaf: searchKeys over the slot array, then a bitmap
// skip to the first live slot at or after the landing index. On ok=true,
// the returned slot holds k. On ok=false, the returned slot is the first
// live slot with a key > k, or -1 if none — the natural seed for ceiling
// queries and forward iteration. Optimistic readers get torn-read safety
// from the j < len(keys) guard plus version validation.
func (n *node[K, V]) find(k K) (int, bool) {
	_, j, ok := n.probe(k)
	return j, ok
}

// gapAppend extends the high-water mark with k, the new maximum. When the
// tail is at slot capacity it reclaims the nearest interior gap first:
// slots (g, used) are fully live by gap-nearness, so the bitmap only gains
// bit g.
func (n *node[K, V]) gapAppend(k K, v V) {
	used := len(n.keys)
	if used < cap(n.keys) {
		n.keys = append(n.keys, k)
		n.vals = append(n.vals, v)
		n.setBit(used)
		n.count++
		return
	}
	g := n.prevGap(used - 1)
	copy(n.keys[g:used-1], n.keys[g+1:used])
	copy(n.vals[g:used-1], n.vals[g+1:used])
	n.keys[used-1] = k
	n.vals[used-1] = v
	n.setBit(g)
	n.count++
}

// gapInsert places (k, v) into its sorted position in a gapped leaf. The
// caller guarantees k is not live in the leaf and count < cap(keys) (the
// tree splits at count >= LeafCapacity < slotCap, so a free slot always
// exists). The cost is O(distance to the nearest gap): an append at the
// high-water mark or a write straight into a gap slot is O(1); otherwise
// the fully-live run between the insertion point and the nearest gap
// shifts by one slot. It returns the slot k landed in and the length of
// that shifted run (0 for the O(1) cases) — the signal the insert paths
// use to detect a degenerated layout and re-gap the leaf (refrontierAt /
// respread).
func (n *node[K, V]) gapInsert(k K, v V) (slot, moved int) {
	used := len(n.keys)
	if used == 0 || k > n.keys[used-1] {
		n.gapAppend(k, v)
		return len(n.keys) - 1, 0
	}
	return n.gapInsertAt(searchKeys(n.keys, k), k, v)
}

// gapInsertAt is gapInsert with the binary search hoisted out: i is the
// searchKeys lower bound over the slot array (probe's ins), which insert
// paths already computed for their duplicate check.
func (n *node[K, V]) gapInsertAt(i int, k K, v V) (slot, moved int) {
	used := len(n.keys)
	if i == used {
		n.gapAppend(k, v)
		return len(n.keys) - 1, 0
	}
	if !n.hasSlot(i) {
		// Landing slot is a gap: keys[i-1] < k (searchKeys) and the old
		// gap copy keys[i] >= k bounds keys[i+1], so writing k in place
		// preserves slot order.
		n.keys[i] = k
		n.vals[i] = v
		n.setBit(i)
		n.count++
		return i, 0
	}
	gl := n.prevGap(i - 1)
	gr := n.nextGapIn(i+1, used)
	if gr < 0 && used < cap(n.keys) {
		gr = used // virtual gap: extend the high-water mark
	}
	if gr >= 0 && (gl < 0 || gr-i <= i-1-gl) {
		// Shift the live run [i, gr) right by one into the gap at gr.
		if gr == used {
			n.keys = n.keys[:used+1]
			n.vals = n.vals[:used+1]
		}
		copy(n.keys[i+1:gr+1], n.keys[i:gr])
		copy(n.vals[i+1:gr+1], n.vals[i:gr])
		n.keys[i] = k
		n.vals[i] = v
		n.setBit(gr)
		n.count++
		return i, gr - i
	}
	// Shift the live run (gl, i) left by one into the gap at gl; k lands
	// at slot i-1 (still < old keys[i] which stays put).
	copy(n.keys[gl:i-1], n.keys[gl+1:i])
	copy(n.vals[gl:i-1], n.vals[gl+1:i])
	n.keys[i-1] = k
	n.vals[i-1] = v
	n.setBit(gl)
	n.count++
	return i - 1, i - 1 - gl
}

// regapShift and regapMargin tune the adaptive re-gap heuristics. A shifted
// run of regapShift or more slots signals that the leaf's gap placement has
// degenerated for its insert pattern (e.g. a redistribution drained the
// pole's bottom slots, leaving the append point pressed flat against the
// outlier block): the insert paths then rebuild the layout — an O(slotCap)
// pass that replaces an O(slotCap) memmove *per insert*. The rebuild only
// pays for itself while free slots remain to re-gap, so leaves within
// regapMargin of splitting are left alone.
const (
	regapShift  = 32
	regapMargin = 16
)

// regapWorthwhile reports whether an insert that shifted `moved` slots
// should trigger a layout rebuild of this leaf.
func (n *node[K, V]) regapWorthwhile(moved int) bool {
	return moved >= regapShift && int(n.count) <= cap(n.keys)-regapMargin
}

// refrontierAt rebuilds the leaf around insertion point p (a slot index)
// into the frontier shape: live entries below p packed dense from slot 0,
// live entries at or above p packed dense against the top of the slot
// array, and every slot in between a gap holding a copy of the top block's
// first key. Because the gap copies are *successor* copies, searchKeys
// sends the next in-order key to the lowest free gap slot — so the pole's
// append stream, which inserts just below the early-arrived outlier block,
// regains its O(1) landing-gap writes no matter how the layout degenerated
// (redistributions drain slots from the bottom, MaxFill-capped splits pack
// the pole dense). Falls back to compact (dense prefix, open tail) when no
// live entry sits at or above p. The caller holds the write latch;
// optimistic readers are rejected by version validation.
func (n *node[K, V]) refrontierAt(p int) {
	used := len(n.keys)
	slotCap := cap(n.keys)
	if p >= used || n.nextPresent(p) < 0 {
		n.compact()
		return
	}
	n.keys = n.keys[:slotCap]
	n.vals = n.vals[:slotCap]
	var zero V
	// Pack live slots >= p against the top, walking down. The k-th live
	// slot from the top moves to slotCap-1-k >= its source, and sources
	// are visited top-first, so no unprocessed slot is overwritten.
	dst := slotCap - 1
	for i := n.prevPresent(used - 1); i >= p; i = n.prevPresent(i - 1) {
		if dst != i {
			n.keys[dst] = n.keys[i]
			n.vals[dst] = n.vals[i]
		}
		dst--
	}
	blockStart := dst + 1
	// Pack live slots < p into a dense prefix, walking up (dst <= src).
	w := 0
	for i := n.nextPresent(0); i >= 0 && i < p; i = n.nextPresent(i + 1) {
		if w != i {
			n.keys[w] = n.keys[i]
			n.vals[w] = n.vals[i]
		}
		w++
	}
	// The middle becomes the gap run: successor copies, zeroed values.
	fill := n.keys[blockStart]
	for i := w; i < blockStart; i++ {
		n.keys[i] = fill
		n.vals[i] = zero
	}
	n.clearBits()
	n.setBitRange(0, w)
	n.setBitRange(blockStart, slotCap)
}

// respread re-gaps a leaf whose inserts arrive at scattered positions:
// compact, then redistribute the live entries evenly across the full slot
// capacity so the next descent insert finds a gap within a couple of
// slots. The caller holds the write latch.
func (n *node[K, V]) respread() {
	if int(n.count) != len(n.keys) {
		n.compact()
	}
	n.spreadInPlace()
}

// gapRemove deletes the live entry at slot: O(1). The slot's key remains as
// a legal gap copy (it is sandwiched by its former neighbors); the value is
// zeroed so the collector can reclaim it.
func (n *node[K, V]) gapRemove(slot int) {
	var zero V
	n.vals[slot] = zero
	n.clearBit(slot)
	n.count--
}

// appendEntries appends the leaf's live entries, in order, to ks/vs and
// returns the extended slices. This is the dense-extraction primitive the
// rebuild paths (splits, merges, batch multi-splits) use.
func (n *node[K, V]) appendEntries(ks []K, vs []V) ([]K, []V) {
	used := len(n.keys)
	for w, word := range n.present {
		base := w << 6
		for word != 0 {
			t := bits.TrailingZeros64(word)
			i := base + t
			if i >= used {
				return ks, vs
			}
			ks = append(ks, n.keys[i])
			vs = append(vs, n.vals[i])
			word &^= 1 << uint(t)
		}
	}
	return ks, vs
}

// setSpread replaces the leaf's contents with the m entries ks/vs (sorted,
// strictly increasing), spread evenly across the full slot capacity with
// interleaved gaps so future mid-leaf inserts find a gap nearby. Gap slots
// are filled with a copy of the preceding live key (slot 0 is always live),
// keeping the array non-decreasing. ks/vs must not alias the leaf's own
// storage. Vacated value slots above the new high-water mark are zeroed.
func (n *node[K, V]) setSpread(ks []K, vs []V) {
	slotCap := cap(n.keys)
	m := len(ks)
	oldUsed := len(n.keys)
	used := 0
	if m > 0 {
		used = (m-1)*slotCap/m + 1
	}
	n.keys = n.keys[:slotCap][:used]
	n.vals = n.vals[:slotCap][:used]
	n.clearBits()
	var zero V
	var last K
	j := 0
	for i := 0; i < used; i++ {
		if j < m && i == j*slotCap/m {
			n.keys[i] = ks[j]
			n.vals[i] = vs[j]
			n.setBit(i)
			last = ks[j]
			j++
		} else {
			n.keys[i] = last
			n.vals[i] = zero
		}
	}
	for i := used; i < oldUsed; i++ {
		n.vals[:oldUsed][i] = zero
	}
	n.count = int32(m)
}

// setDense replaces the leaf's contents with the m entries ks/vs packed as
// a dense prefix with all tail room open — the layout for leaves expected
// to absorb in-order appends (the open frontier/tail chunk). ks/vs must not
// alias the leaf's own storage.
func (n *node[K, V]) setDense(ks []K, vs []V) {
	m := len(ks)
	oldUsed := len(n.keys)
	n.keys = n.keys[:cap(n.keys)][:m]
	n.vals = n.vals[:cap(n.vals)][:m]
	copy(n.keys, ks)
	copy(n.vals, vs)
	n.clearBits()
	n.setBitRange(0, m)
	var zero V
	for i := m; i < oldUsed; i++ {
		n.vals[:oldUsed][i] = zero
	}
	n.count = int32(m)
}

// spreadInPlace redistributes a dense leaf (count == len(keys)) across the
// full slot capacity with interleaved gaps, in place — setSpread without the
// staging copy, for freshly built chunks whose entries are already a dense
// prefix of their own storage. Entries move right-to-left (dst >= src for
// every rank), then a forward pass fills gap slots with copies of the
// preceding live key and zeroes their values. No-op on an empty or
// non-dense leaf.
func (n *node[K, V]) spreadInPlace() {
	m := len(n.keys)
	if m == 0 || int(n.count) != m {
		return
	}
	slotCap := cap(n.keys)
	used := (m-1)*slotCap/m + 1
	n.keys = n.keys[:slotCap][:used]
	n.vals = n.vals[:slotCap][:used]
	for j := m - 1; j >= 0; j-- {
		if dst := j * slotCap / m; dst != j {
			n.keys[dst] = n.keys[j]
			n.vals[dst] = n.vals[j]
		}
	}
	n.clearBits()
	var zero V
	var last K
	j := 0
	for i := 0; i < used; i++ {
		if j < m && i == j*slotCap/m {
			last = n.keys[i]
			n.setBit(i)
			j++
		} else {
			n.keys[i] = last
			n.vals[i] = zero
		}
	}
}

// appendDense appends entries (sorted, all strictly greater than the
// leaf's max key) at the high-water mark: the bulk version of the append
// fast path. The caller guarantees tail room (len+n <= cap).
func (n *node[K, V]) appendDense(ks []K, vs []V) {
	old := len(n.keys)
	n.keys = append(n.keys, ks...)
	n.vals = append(n.vals, vs...)
	n.setBitRange(old, old+len(ks))
	n.count += int32(len(ks))
}

// compact squeezes all gaps out of the leaf in place, leaving the live
// entries as a dense prefix (count == len(keys)) with every tail slot free.
// Used before bulk appends into a leaf whose tail room has been consumed by
// the high-water mark.
func (n *node[K, V]) compact() {
	used := len(n.keys)
	w := 0
	for i := n.nextPresent(0); i >= 0 && i < used; i = n.nextPresent(i + 1) {
		if w != i {
			n.keys[w] = n.keys[i]
			n.vals[w] = n.vals[i]
		}
		w++
	}
	var zero V
	for i := w; i < used; i++ {
		n.vals[i] = zero
	}
	n.keys = n.keys[:w]
	n.vals = n.vals[:w]
	n.clearBits()
	n.setBitRange(0, w)
	n.count = int32(w)
}

// truncateLive drops every live entry from rank m upward (keeping ranks
// [0, m)), trimming the high-water mark to just past the last kept live
// slot and zeroing vacated values. The left half of a split uses this: the
// kept prefix stays exactly in place, no key moves.
func (n *node[K, V]) truncateLive(m int) {
	used := len(n.keys)
	var cut int // new high-water mark
	if m == 0 {
		cut = 0
	} else {
		cut = n.selectRank(m-1) + 1
	}
	var zero V
	for i := cut; i < used; i++ {
		n.vals[i] = zero
	}
	// Clear presence above the cut.
	for i := n.nextPresent(cut); i >= 0 && i < used; i = n.nextPresent(i + 1) {
		n.clearBit(i)
	}
	n.keys = n.keys[:cut]
	n.vals = n.vals[:cut]
	n.count = int32(m)
}

// insertAt places (k, v) at slot i in a dense leaf prefix, shifting the
// tail right. Retained for the dense-prefix build paths; the point-insert
// paths use gapInsert.
func (n *node[K, V]) insertAt(i int, k K, v V) {
	n.keys = append(n.keys, k)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = k
	var zero V
	n.vals = append(n.vals, zero)
	copy(n.vals[i+1:], n.vals[i:])
	n.vals[i] = v
	n.setBit(len(n.keys) - 1)
	n.count++
}

// insertChildAt inserts pivot k and child c at pivot position i of an
// internal node, so that c becomes children[i+1].
func (n *node[K, V]) insertChildAt(i int, k K, c *node[K, V]) {
	n.keys = append(n.keys, k)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = k
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = c
}

// insertChildrenAt inserts a contiguous group of pivots and their
// right-hand children at pivot position i of an internal node, so that
// rights[0] becomes children[i+1] — insertChildAt generalized to the
// k-way groups a multi-way split promotes. The caller guarantees the
// result fits the node's backing capacity (len(children)+len(rights) <=
// fanout).
func (n *node[K, V]) insertChildrenAt(i int, pivots []K, rights []*node[K, V]) {
	k := len(pivots)
	n.keys = n.keys[:len(n.keys)+k]
	copy(n.keys[i+k:], n.keys[i:])
	copy(n.keys[i:], pivots)
	n.children = n.children[:len(n.children)+k]
	copy(n.children[i+1+k:], n.children[i+1:])
	copy(n.children[i+1:], rights)
}

// removeChildAt removes pivot i and children[i+1] from an internal node
// (used when the right-hand node of a merge disappears).
func (n *node[K, V]) removeChildAt(i int) {
	copy(n.keys[i:], n.keys[i+1:])
	n.keys = n.keys[:len(n.keys)-1]
	copy(n.children[i+1:], n.children[i+2:])
	n.children[len(n.children)-1] = nil
	n.children = n.children[:len(n.children)-1]
}
