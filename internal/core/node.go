package core

import "sync/atomic"

// node is a B+-tree node. Leaves hold parallel keys/vals slices and are
// interlinked through next/prev; internal nodes hold len(keys)+1 children,
// where children[i] covers keys in [keys[i-1], keys[i]) (with the usual
// open bounds at the edges).
//
// The versioned latch (lt) is only exercised when the tree was configured
// with Synchronized=true; unsynchronized trees never touch it. All latch
// traffic goes through the tree-level helpers in latch.go.
//
// Concurrency-critical layout invariant: the keys/vals/children backing
// arrays are allocated once at node construction with enough capacity for
// every legal transient state (see newLeaf/newInternal) and are never
// reallocated. Optimistic readers may observe a node mid-mutation; because
// only the slice length changes — a single word — every such read stays
// inside the original allocation and is discarded by version validation,
// never a memory-safety hazard. next/prev are atomic because neighbors
// update each other's links while holding only their own latch.
type node[K Integer, V any] struct {
	lt   latch
	id   uint64
	keys []K

	// Leaf fields.
	vals []V
	next atomic.Pointer[node[K, V]]
	prev atomic.Pointer[node[K, V]]

	// Internal field. nil for leaves.
	children []*node[K, V]
}

func (n *node[K, V]) isLeaf() bool { return n.children == nil }

// childAt returns children[idx] for an optimistic reader. ok=false flags a
// torn observation — the index past the current length, or a nil slot mid
// shift — which the caller must treat as a failed validation and restart.
// Writers mutate keys and children in separate steps, so an optimistic
// routing index computed from keys can momentarily disagree with children;
// this guard keeps such reads from faulting before version validation
// rejects them.
func (n *node[K, V]) childAt(idx int) (*node[K, V], bool) {
	ch := n.children
	if idx >= len(ch) {
		return nil, false
	}
	c := ch[idx]
	return c, c != nil
}

// searchKeys returns the first index i with keys[i] >= k (len(keys) if
// none): the shared leaf binary search behind find, lowerBound and every
// hot lookup/insert probe. The halving loop keeps the search range as a
// (base, length) pair so its only data-dependent branch is a comparison
// feeding a conditional add, which the compiler lowers to a conditional
// move — no per-probe branch mispredictions, unlike the classic lo/hi
// loop (see BenchmarkSearchKeys).
func searchKeys[K Integer](keys []K, k K) int {
	lo, n := 0, len(keys)
	for n > 1 {
		half := n >> 1
		if keys[lo+half-1] < k {
			lo += half
		}
		n -= half
	}
	if n == 1 && keys[lo] < k {
		lo++
	}
	return lo
}

// upperBound returns the first index i with keys[i] > k (len(keys) if none).
// This is the child-routing function for internal nodes. Branchless-shaped
// like searchKeys.
func upperBound[K Integer](keys []K, k K) int {
	lo, n := 0, len(keys)
	for n > 1 {
		half := n >> 1
		if keys[lo+half-1] <= k {
			lo += half
		}
		n -= half
	}
	if n == 1 && keys[lo] <= k {
		lo++
	}
	return lo
}

// lowerBound returns the first index i with keys[i] >= k (len(keys) if none).
func lowerBound[K Integer](keys []K, k K) int { return searchKeys(keys, k) }

// route returns the child index an internal node uses for key k.
func (n *node[K, V]) route(k K) int { return upperBound(n.keys, k) }

// find locates k in a leaf, returning its index and whether it is present.
func (n *node[K, V]) find(k K) (int, bool) {
	i := lowerBound(n.keys, k)
	return i, i < len(n.keys) && n.keys[i] == k
}

// insertAt places (k, v) at position i in a leaf, shifting the tail right.
// The caller guarantees capacity.
func (n *node[K, V]) insertAt(i int, k K, v V) {
	n.keys = append(n.keys, k)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = k
	var zero V
	n.vals = append(n.vals, zero)
	copy(n.vals[i+1:], n.vals[i:])
	n.vals[i] = v
}

// removeAt deletes the entry at position i from a leaf.
func (n *node[K, V]) removeAt(i int) {
	copy(n.keys[i:], n.keys[i+1:])
	n.keys = n.keys[:len(n.keys)-1]
	copy(n.vals[i:], n.vals[i+1:])
	var zero V
	n.vals[len(n.vals)-1] = zero
	n.vals = n.vals[:len(n.vals)-1]
}

// insertChildAt inserts pivot k and child c at pivot position i of an
// internal node, so that c becomes children[i+1].
func (n *node[K, V]) insertChildAt(i int, k K, c *node[K, V]) {
	n.keys = append(n.keys, k)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = k
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = c
}

// insertChildrenAt inserts a contiguous group of pivots and their
// right-hand children at pivot position i of an internal node, so that
// rights[0] becomes children[i+1] — insertChildAt generalized to the
// k-way groups a multi-way split promotes. The caller guarantees the
// result fits the node's backing capacity (len(children)+len(rights) <=
// fanout).
func (n *node[K, V]) insertChildrenAt(i int, pivots []K, rights []*node[K, V]) {
	k := len(pivots)
	n.keys = n.keys[:len(n.keys)+k]
	copy(n.keys[i+k:], n.keys[i:])
	copy(n.keys[i:], pivots)
	n.children = n.children[:len(n.children)+k]
	copy(n.children[i+1+k:], n.children[i+1:])
	copy(n.children[i+1:], rights)
}

// removeChildAt removes pivot i and children[i+1] from an internal node
// (used when the right-hand node of a merge disappears).
func (n *node[K, V]) removeChildAt(i int) {
	copy(n.keys[i:], n.keys[i+1:])
	n.keys = n.keys[:len(n.keys)-1]
	copy(n.children[i+1:], n.children[i+2:])
	n.children[len(n.children)-1] = nil
	n.children = n.children[:len(n.children)-1]
}
