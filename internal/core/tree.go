package core

import (
	"sync"
	"sync/atomic"
	"unsafe"

	"github.com/quittree/quit/internal/ikr"
)

// Tree is an in-memory B+-tree with a pluggable sortedness-aware fast path.
// Construct with New; the zero value is not usable.
//
// Unless Config.Synchronized is set, a Tree must not be used from multiple
// goroutines concurrently. With Synchronized set, Put, Get, Range, Scan and
// Delete may be called concurrently; reads are latch-free optimistic
// descents over versioned node latches and writes latch only the nodes they
// mutate (see latch.go for the full protocol).
type Tree[K Integer, V any] struct {
	cfg    Config
	est    ikr.Estimator
	synced bool

	minLeaf     int // rebalance threshold: leafCapacity/2
	minChildren int // internal underflow threshold: ceil(fanout/2)

	// meta guards only the fast-path metadata (fp) in synchronized mode.
	// It is the innermost latch: taken while holding node latches, never
	// around node latch acquisition. Reads never touch it.
	meta sync.Mutex

	root   atomic.Pointer[node[K, V]]
	height atomic.Int32
	head   atomic.Pointer[node[K, V]]
	tail   atomic.Pointer[node[K, V]]

	fp fastPath[K, V]

	nextID    atomic.Uint64
	size      atomic.Int64
	nLeaves   atomic.Int64
	nInternal atomic.Int64

	// scratch recycles the batched write path's per-call working memory
	// (sort buffers, merge scratch); slab hands out leaf backing arrays in
	// blocks. Both are GC-transparent: sync.Pool drains every cycle, so
	// recycled value slices pin dead values for at most one GC period.
	scratch sync.Pool
	slab    leafSlab[K, V]

	c counters
}

// leafSlab carves leaf backing arrays out of block allocations: one
// make() per slabLeaves leaves instead of two per leaf. Splits are the
// only caller, so the mutex is uncontended in practice. Slices handed out
// are capacity-clipped, so the never-reallocate invariant of the
// optimistic read protocol holds exactly as with individual allocations.
type leafSlab[K Integer, V any] struct {
	mu sync.Mutex
	k  []K
	v  []V
	b  []uint64 // presence-bitmap words
}

const slabLeaves = 32

// fastPath is the per-tree fast-path metadata (Table 1 in the paper). The
// same struct backs all modes; pole-specific fields are used only by
// ModePOLE and ModeQuIT.
type fastPath[K Integer, V any] struct {
	leaf *node[K, V]   // fp_id: the fast-path leaf
	path []*node[K, V] // fp_path: cached root..leaf path (validated at use)

	min    K // fp_min: smallest key routed to leaf
	max    K // fp_max: upper bound (exclusive) of leaf's range
	hasMin bool
	hasMax bool
	size   int // fp_size: entry count of the fast-path leaf

	// pole metadata (ModePOLE / ModeQuIT).
	// pole_next (Fig. 6) is not stored: it is always the pole leaf's chain
	// successor, which is also why Table 1 lists no pole_next field.
	prev      *node[K, V] // pole_prev_id
	prevMin   K           // pole_prev_min (the paper's p)
	prevSize  int         // pole_prev_size
	prevValid bool
	fails     int // pole_fails: consecutive top-inserts since last fast-insert
}

// counters aggregates operation statistics; all fields are atomics so reads
// never block the synchronized hot path.
type counters struct {
	fastInserts     atomic.Int64
	topInserts      atomic.Int64
	updates         atomic.Int64
	leafSplits      atomic.Int64
	internalSplits  atomic.Int64
	variableSplits  atomic.Int64
	redistributions atomic.Int64
	resets          atomic.Int64
	catchUps        atomic.Int64
	deletes         atomic.Int64
	borrows         atomic.Int64
	merges          atomic.Int64
	nodeReads       atomic.Int64
	leafReads       atomic.Int64
	rangeLeafReads  atomic.Int64
	olcRestarts     atomic.Int64
	batchRuns       atomic.Int64
	batchFastRuns   atomic.Int64
	parallelBatches atomic.Int64
	frontierSplices atomic.Int64
}

// Stats is a point-in-time snapshot of a Tree's operation counters and
// shape. FastInserts and TopInserts partition successful insertions of new
// keys; Updates counts overwrites of existing keys.
type Stats struct {
	FastInserts     int64
	TopInserts      int64
	Updates         int64
	LeafSplits      int64
	InternalSplits  int64
	VariableSplits  int64
	Redistributions int64
	Resets          int64
	CatchUps        int64
	Deletes         int64
	Borrows         int64
	Merges          int64
	NodeReads       int64 // internal-node accesses during point lookups
	LeafReads       int64 // leaf accesses during point lookups
	RangeLeafReads  int64 // leaf accesses during range scans
	OLCRestarts     int64 // optimistic descents restarted by a version conflict
	BatchRuns       int64 // per-leaf runs installed by the batched write path
	BatchFastRuns   int64 // batch runs resolved through the fast-path metadata
	ParallelBatches int64 // batches ingested through PutBatchParallel
	FrontierSplices int64 // pre-built frontier chains spliced past the old maximum

	Size      int64 // live entries
	Height    int   // levels (1 = root is a leaf)
	Leaves    int64
	Internals int64
}

// Inserts returns the total number of new-key insertions.
func (s Stats) Inserts() int64 { return s.FastInserts + s.TopInserts }

// FastInsertFraction returns the fraction of insertions that used the fast
// path, in [0,1]. Returns 0 for an empty tree.
func (s Stats) FastInsertFraction() float64 {
	total := s.Inserts()
	if total == 0 {
		return 0
	}
	return float64(s.FastInserts) / float64(total)
}

// New constructs a Tree with the given configuration (zero-value Config
// selects the paper defaults and ModeNone).
func New[K Integer, V any](cfg Config) *Tree[K, V] {
	cfg = cfg.withDefaults()
	t := &Tree[K, V]{
		cfg:         cfg,
		est:         ikr.New(cfg.IKRScale),
		synced:      cfg.Synchronized,
		minLeaf:     cfg.LeafCapacity / 2,
		minChildren: (cfg.InternalFanout + 1) / 2,
	}
	leaf := t.newLeaf()
	t.root.Store(leaf)
	t.height.Store(1)
	t.head.Store(leaf)
	t.tail.Store(leaf)
	// The initial leaf is the fast path for every mode: all keys route to it.
	if cfg.Mode != ModeNone {
		t.fp.leaf = leaf
		t.fp.path = []*node[K, V]{leaf}
	}
	return t
}

// Config returns the normalized configuration the tree runs with.
func (t *Tree[K, V]) Config() Config { return t.cfg }

// Mode returns the fast-path policy of the tree.
func (t *Tree[K, V]) Mode() Mode { return t.cfg.Mode }

// Len returns the number of live entries.
func (t *Tree[K, V]) Len() int { return int(t.size.Load()) }

// Height returns the number of levels in the tree (1 when the root is a leaf).
func (t *Tree[K, V]) Height() int { return int(t.height.Load()) }

// Stats snapshots the tree's counters and shape.
func (t *Tree[K, V]) Stats() Stats {
	return Stats{
		FastInserts:     t.c.fastInserts.Load(),
		TopInserts:      t.c.topInserts.Load(),
		Updates:         t.c.updates.Load(),
		LeafSplits:      t.c.leafSplits.Load(),
		InternalSplits:  t.c.internalSplits.Load(),
		VariableSplits:  t.c.variableSplits.Load(),
		Redistributions: t.c.redistributions.Load(),
		Resets:          t.c.resets.Load(),
		CatchUps:        t.c.catchUps.Load(),
		Deletes:         t.c.deletes.Load(),
		Borrows:         t.c.borrows.Load(),
		Merges:          t.c.merges.Load(),
		NodeReads:       t.c.nodeReads.Load(),
		LeafReads:       t.c.leafReads.Load(),
		RangeLeafReads:  t.c.rangeLeafReads.Load(),
		OLCRestarts:     t.c.olcRestarts.Load(),
		BatchRuns:       t.c.batchRuns.Load(),
		BatchFastRuns:   t.c.batchFastRuns.Load(),
		ParallelBatches: t.c.parallelBatches.Load(),
		FrontierSplices: t.c.frontierSplices.Load(),
		Size:            t.size.Load(),
		Height:          int(t.height.Load()),
		Leaves:          t.nLeaves.Load(),
		Internals:       t.nInternal.Load(),
	}
}

// ResetCounters zeroes the operation counters (shape fields are derived and
// unaffected). Useful between experiment phases.
func (t *Tree[K, V]) ResetCounters() {
	c := &t.c
	for _, a := range []*atomic.Int64{
		&c.fastInserts, &c.topInserts, &c.updates, &c.leafSplits,
		&c.internalSplits, &c.variableSplits, &c.redistributions, &c.resets,
		&c.catchUps, &c.deletes, &c.borrows, &c.merges, &c.nodeReads,
		&c.leafReads, &c.rangeLeafReads, &c.olcRestarts, &c.batchRuns,
		&c.batchFastRuns, &c.parallelBatches, &c.frontierSplices,
	} {
		a.Store(0)
	}
}

// AvgLeafOccupancy returns mean entries-per-leaf as a fraction of leaf
// capacity, the paper's space-utilization metric (Fig. 10a, Fig. 11c-d).
// Concurrency-safe: the leaf chain is walked optimistically and the walk
// restarts from the head if a leaf is merged away underneath it.
func (t *Tree[K, V]) AvgLeafOccupancy() float64 {
	leaves := 0
	entries := 0
	n := t.head.Load()
	for n != nil {
		v, ok := t.readLatch(n)
		if !ok {
			// The leaf was unlinked mid-walk; restart the whole walk.
			t.olcRestart()
			leaves, entries = 0, 0
			n = t.head.Load()
			continue
		}
		cnt := n.leafCount()
		next := n.next.Load()
		if !t.readUnlatch(n, v) {
			t.olcRestart()
			continue // re-read this leaf
		}
		leaves++
		entries += cnt
		n = next
	}
	if leaves == 0 {
		return 0
	}
	return float64(entries) / float64(leaves) / float64(t.cfg.LeafCapacity)
}

// MemoryFootprint estimates the index's memory consumption in bytes, using
// the paper's page model: every node reserves a full page regardless of how
// many slots are occupied (half-full leaves waste half a page). Internal
// nodes charge one key plus one pointer per fanout slot.
func (t *Tree[K, V]) MemoryFootprint() int64 {
	var k K
	var v V
	keySize := int64(unsafe.Sizeof(k))             //quitlint:allow unsafeuse audited: compile-time Sizeof for the paper's page-model accounting; no pointers formed
	entrySize := keySize + int64(unsafe.Sizeof(v)) //quitlint:allow unsafeuse audited: compile-time Sizeof for the paper's page-model accounting; no pointers formed
	ptrSize := int64(unsafe.Sizeof(uintptr(0)))    //quitlint:allow unsafeuse audited: compile-time Sizeof for the paper's page-model accounting; no pointers formed
	leafPage := int64(t.cfg.LeafCapacity) * entrySize
	internalPage := int64(t.cfg.InternalFanout) * (keySize + ptrSize)
	return t.nLeaves.Load()*leafPage + t.nInternal.Load()*internalPage
}

// newLeaf allocates a leaf. Capacity covers the one-over-full transient an
// insert-then-split produces, so the backing arrays are never reallocated —
// a prerequisite of the optimistic read protocol (see node docs).
func (t *Tree[K, V]) newLeaf() *node[K, V] {
	t.nLeaves.Add(1)
	c := t.cfg.LeafCapacity + 1
	w := bitmapWords(c)
	t.slab.mu.Lock()
	if len(t.slab.k) < c {
		t.slab.k = make([]K, slabLeaves*c)
		t.slab.v = make([]V, slabLeaves*c)
		t.slab.b = make([]uint64, slabLeaves*w)
	}
	k, v := t.slab.k[:0:c], t.slab.v[:0:c]
	b := t.slab.b[:w:w]
	t.slab.k, t.slab.v = t.slab.k[c:], t.slab.v[c:]
	t.slab.b = t.slab.b[w:]
	t.slab.mu.Unlock()
	return &node[K, V]{
		id:      t.nextID.Add(1),
		keys:    k,
		vals:    v,
		present: b,
	}
}

// newInternal allocates an internal node. Capacity covers the transient
// fanout+1 children (fanout keys) state propagateSplit creates before
// splitting the node, so the backing arrays are never reallocated.
func (t *Tree[K, V]) newInternal() *node[K, V] {
	t.nInternal.Add(1)
	return &node[K, V]{
		id:       t.nextID.Add(1),
		keys:     make([]K, 0, t.cfg.InternalFanout+1),
		children: make([]*node[K, V], 0, t.cfg.InternalFanout+2),
	}
}

// lockMeta/unlockMeta guard the fast-path metadata; no-ops for
// unsynchronized trees. Node latches are never acquired while holding meta.
func (t *Tree[K, V]) lockMeta() {
	if t.synced {
		t.meta.Lock()
	}
}

func (t *Tree[K, V]) unlockMeta() {
	if t.synced {
		t.meta.Unlock()
	}
}
