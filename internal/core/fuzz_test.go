package core

import (
	"sort"
	"testing"
)

// FuzzTreeOps drives a QuIT tree (tiny nodes, maximum structural churn)
// with a byte-coded operation stream and cross-checks it against a map
// oracle plus the structural validator after every few operations.
//
// Encoding: each operation consumes 3 bytes: opcode (put/delete/get by
// modulo), then a 2-byte key. Runs with `go test -fuzz=FuzzTreeOps`.
func FuzzTreeOps(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 0, 2, 1, 0, 1})
	f.Add([]byte{0, 1, 0, 0, 2, 0, 0, 3, 0, 1, 2, 0, 2, 1, 0})
	seed := make([]byte, 0, 300)
	for i := 0; i < 100; i++ {
		seed = append(seed, byte(i%3), byte(i), byte(i/2))
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr := New[int64, int64](Config{Mode: ModeQuIT, LeafCapacity: 4, InternalFanout: 4})
		oracle := map[int64]int64{}
		step := 0
		for i := 0; i+2 < len(data); i += 3 {
			op := data[i] % 3
			key := int64(data[i+1])<<8 | int64(data[i+2])
			switch op {
			case 0:
				v := int64(step)
				tr.Put(key, v)
				oracle[key] = v
			case 1:
				_, gotOK := tr.Delete(key)
				_, wantOK := oracle[key]
				if gotOK != wantOK {
					t.Fatalf("step %d: Delete(%d) ok=%v oracle=%v", step, key, gotOK, wantOK)
				}
				delete(oracle, key)
			case 2:
				gv, gok := tr.Get(key)
				wv, wok := oracle[key]
				if gok != wok || (gok && gv != wv) {
					t.Fatalf("step %d: Get(%d) = (%d,%v), want (%d,%v)", step, key, gv, gok, wv, wok)
				}
			}
			step++
			if step%64 == 0 {
				if err := tr.Validate(); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
			}
		}
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		if tr.Len() != len(oracle) {
			t.Fatalf("Len = %d, oracle %d", tr.Len(), len(oracle))
		}
		keys := tr.Keys()
		want := make([]int64, 0, len(oracle))
		for k := range oracle {
			want = append(want, k)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range keys {
			if keys[i] != want[i] {
				t.Fatalf("key stream diverges at %d: %d vs %d", i, keys[i], want[i])
			}
		}
	})
}
