package core

import (
	"sort"
	"testing"
)

// structuralOps sums the counters that change only when the tree's shape
// changes; a delta since the previous operation means a split, merge,
// borrow, or QuIT redistribution just ran and the invariants are worth
// re-checking immediately (that is where shape bugs are born).
func structuralOps(s Stats) int64 {
	return s.LeafSplits + s.InternalSplits + s.VariableSplits +
		s.Redistributions + s.Borrows + s.Merges
}

// FuzzTreeOps drives a QuIT tree (tiny nodes, maximum structural churn)
// with a byte-coded operation stream and cross-checks it against a map
// oracle. The structural validator runs right after every operation that
// split, merged, borrowed, or redistributed — plus a coarse every-64-steps
// sweep as a backstop.
//
// Encoding: each operation consumes 3 bytes: opcode (put/delete/get/range
// by modulo), then a 2-byte big-endian key. The committed corpus lives in
// testdata/fuzz/FuzzTreeOps. Runs with `go test -fuzz=FuzzTreeOps`.
func FuzzTreeOps(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 0, 2, 1, 0, 1})
	f.Add([]byte{0, 1, 0, 0, 2, 0, 0, 3, 0, 1, 2, 0, 2, 1, 0})
	seed := make([]byte, 0, 300)
	for i := 0; i < 100; i++ {
		seed = append(seed, byte(i%4), byte(i), byte(i/2))
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr := New[int64, int64](Config{Mode: ModeQuIT, LeafCapacity: 4, InternalFanout: 4})
		oracle := map[int64]int64{}
		step := 0
		lastShape := int64(0)
		for i := 0; i+2 < len(data); i += 3 {
			op := data[i] % 4
			key := int64(data[i+1])<<8 | int64(data[i+2])
			switch op {
			case 0:
				v := int64(step)
				tr.Put(key, v)
				oracle[key] = v
			case 1:
				_, gotOK := tr.Delete(key)
				_, wantOK := oracle[key]
				if gotOK != wantOK {
					t.Fatalf("step %d: Delete(%d) ok=%v oracle=%v", step, key, gotOK, wantOK)
				}
				delete(oracle, key)
			case 2:
				gv, gok := tr.Get(key)
				wv, wok := oracle[key]
				if gok != wok || (gok && gv != wv) {
					t.Fatalf("step %d: Get(%d) = (%d,%v), want (%d,%v)", step, key, gv, gok, wv, wok)
				}
			case 3: // Range [key, key+256): exact contents, ascending order
				hi := key + 256
				got := make([][2]int64, 0, 16)
				tr.Range(key, hi, func(k, v int64) bool {
					got = append(got, [2]int64{k, v})
					return true
				})
				want := make([][2]int64, 0, 16)
				for k, v := range oracle {
					if k >= key && k < hi {
						want = append(want, [2]int64{k, v})
					}
				}
				sort.Slice(want, func(a, b int) bool { return want[a][0] < want[b][0] })
				if len(got) != len(want) {
					t.Fatalf("step %d: Range[%d,%d) returned %d entries, oracle has %d", step, key, hi, len(got), len(want))
				}
				for j := range got {
					if got[j] != want[j] {
						t.Fatalf("step %d: Range[%d,%d) entry %d = %v, want %v", step, key, hi, j, got[j], want[j])
					}
				}
			}
			step++
			shape := structuralOps(tr.Stats())
			if shape != lastShape || step%64 == 0 {
				lastShape = shape
				if err := tr.Validate(); err != nil {
					t.Fatalf("step %d (structural ops %d): %v", step, shape, err)
				}
			}
		}
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		if tr.Len() != len(oracle) {
			t.Fatalf("Len = %d, oracle %d", tr.Len(), len(oracle))
		}
		keys := tr.Keys()
		want := make([]int64, 0, len(oracle))
		for k := range oracle {
			want = append(want, k)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range keys {
			if keys[i] != want[i] {
				t.Fatalf("key stream diverges at %d: %d vs %d", i, keys[i], want[i])
			}
		}
	})
}
