package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Snapshot format v2: a raw magic string followed by self-delimiting frames,
// each a gob-encoded section wrapped in a length prefix and a CRC32C. Every
// frame is an independent gob stream, so a corrupt or torn frame never
// poisons the decoding of its neighbours — Load can detect exactly where a
// stream went bad, and Salvage can rebuild the longest valid prefix.
//
//	magic   "QUITSNAP2\n"                      (10 raw bytes)
//	frame   kind(1) | len(4 LE) | crc32c(4 LE) | payload(len bytes)
//
// The CRC covers kind||payload, so a flipped kind byte is detected too.
// Frame kinds, in stream order: one header frame (gob snapshotHeader), zero
// or more chunk frames (gob snapshotChunkRec, ascending keys), one tail
// frame (gob snapshotTail) after which the stream must end — trailing bytes
// are rejected.
//
// Version 1 (a bare gob stream: header record then chunk records, no
// checksums) is still readable; Save always writes v2.
const (
	snapshotMagicV2 = "QUITSNAP2\n"
	snapshotMagic   = "quit-tree-snapshot" // v1 header magic (gob field)
	snapshotVersion = 2
	snapshotChunk   = 1 << 14
	snapshotFill    = 0.9 // leave headroom so post-load inserts don't cascade splits

	frameHeader = byte(1)
	frameChunk  = byte(2)
	frameTail   = byte(3)

	// maxFramePayload bounds a frame's declared length so a corrupted
	// length field cannot demand an absurd allocation. Payloads are read
	// incrementally regardless, so even within the bound a truncated
	// stream only allocates what is actually present.
	maxFramePayload = 1 << 30

	// Geometry sanity bounds for snapshot headers (see validateHeader).
	maxSnapshotGeometry = 1 << 24
	maxSnapshotCount    = int64(1) << 48
)

// crcTable is the Castagnoli polynomial table shared by snapshot framing
// and the write-ahead log.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrBadSnapshot is returned by Load when the stream is not a snapshot or
// is from an incompatible version. ErrCorruptSnapshot and
// ErrTruncatedSnapshot wrap it, so errors.Is(err, ErrBadSnapshot) matches
// any snapshot failure.
var ErrBadSnapshot = errors.New("core: not a quit tree snapshot (or incompatible version)")

// ErrCorruptSnapshot is returned (wrapped) by Load when the stream frames
// as a snapshot but fails a checksum, declares impossible geometry, or
// carries trailing or malformed data. errors.Is(err, ErrBadSnapshot) also
// holds for it.
var ErrCorruptSnapshot = &snapshotError{msg: "core: corrupt snapshot (checksum, framing or header mismatch)"}

// ErrTruncatedSnapshot is returned (wrapped) by Load when the stream ends
// before its tail frame — the signature of a torn write or partial copy.
// errors.Is(err, ErrBadSnapshot) also holds for it.
var ErrTruncatedSnapshot = &snapshotError{msg: "core: truncated snapshot"}

// snapshotError is a sentinel that chains to ErrBadSnapshot, so the
// specific failure modes stay matchable individually and collectively.
type snapshotError struct{ msg string }

func (e *snapshotError) Error() string { return e.msg }
func (e *snapshotError) Unwrap() error { return ErrBadSnapshot }

type snapshotHeader struct {
	Magic   string
	Version int
	Count   int64
	// The geometry the tree was saved with; Load reuses it unless the
	// caller overrides the config.
	Mode           uint8
	LeafCapacity   int
	InternalFanout int
	IKRScale       float64
	ResetThreshold int
}

type snapshotChunkRec[K Integer, V any] struct {
	Keys []K
	Vals []V
}

// snapshotTail closes a v2 stream: Count must equal the entries streamed,
// re-detecting a header/body mismatch that slipped past per-frame CRCs.
type snapshotTail struct {
	Count int64
}

// validateHeader bounds-checks a decoded header before any allocation is
// sized from it: a corrupt header must fail fast, not cause a huge
// allocation or a later panic.
func validateHeader(hdr snapshotHeader) error {
	switch {
	case hdr.Count < 0 || hdr.Count > maxSnapshotCount:
		return fmt.Errorf("core: snapshot header entry count %d out of range: %w", hdr.Count, ErrCorruptSnapshot)
	case hdr.Mode > uint8(ModeQuIT):
		return fmt.Errorf("core: snapshot header mode %d unknown: %w", hdr.Mode, ErrCorruptSnapshot)
	case hdr.LeafCapacity < 4 || hdr.LeafCapacity > maxSnapshotGeometry:
		return fmt.Errorf("core: snapshot header leaf capacity %d out of range: %w", hdr.LeafCapacity, ErrCorruptSnapshot)
	case hdr.InternalFanout < 4 || hdr.InternalFanout > maxSnapshotGeometry:
		return fmt.Errorf("core: snapshot header internal fanout %d out of range: %w", hdr.InternalFanout, ErrCorruptSnapshot)
	case math.IsNaN(hdr.IKRScale) || math.IsInf(hdr.IKRScale, 0) || hdr.IKRScale < 0 || hdr.IKRScale > 1e9:
		return fmt.Errorf("core: snapshot header IKR scale %v out of range: %w", hdr.IKRScale, ErrCorruptSnapshot)
	case hdr.ResetThreshold < 0 || hdr.ResetThreshold > 1<<30:
		return fmt.Errorf("core: snapshot header reset threshold %d out of range: %w", hdr.ResetThreshold, ErrCorruptSnapshot)
	}
	return nil
}

// writeFrame emits one framed section. payload is gob bytes produced by an
// independent encoder.
func writeFrame(w io.Writer, kind byte, payload []byte) error {
	var pre [9]byte
	pre[0] = kind
	binary.LittleEndian.PutUint32(pre[1:5], uint32(len(payload)))
	crc := crc32.Update(crc32.Checksum([]byte{kind}, crcTable), crcTable, payload)
	binary.LittleEndian.PutUint32(pre[5:9], crc)
	if _, err := w.Write(pre[:]); err != nil {
		return fmt.Errorf("core: writing snapshot frame: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("core: writing snapshot frame: %w", err)
	}
	return nil
}

// readFrame reads and checksum-verifies one frame. io.EOF at a frame
// boundary is returned as io.EOF; any mid-frame end of stream maps to
// ErrTruncatedSnapshot and any checksum or bound violation to
// ErrCorruptSnapshot.
func readFrame(r io.Reader) (kind byte, payload []byte, err error) {
	var pre [9]byte
	if _, err := io.ReadFull(r, pre[:1]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("core: snapshot frame prefix: %w", ErrTruncatedSnapshot)
	}
	if _, err := io.ReadFull(r, pre[1:]); err != nil {
		return 0, nil, fmt.Errorf("core: snapshot frame prefix: %w", ErrTruncatedSnapshot)
	}
	kind = pre[0]
	n := binary.LittleEndian.Uint32(pre[1:5])
	want := binary.LittleEndian.Uint32(pre[5:9])
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("core: snapshot frame declares %d payload bytes: %w", n, ErrCorruptSnapshot)
	}
	// Read incrementally so a corrupted length plus a truncated stream
	// allocates only the bytes actually present.
	var buf bytes.Buffer
	if _, err := io.CopyN(&buf, r, int64(n)); err != nil {
		return 0, nil, fmt.Errorf("core: snapshot frame payload: %w", ErrTruncatedSnapshot)
	}
	payload = buf.Bytes()
	crc := crc32.Update(crc32.Checksum([]byte{kind}, crcTable), crcTable, payload)
	if crc != want {
		return 0, nil, fmt.Errorf("core: snapshot frame checksum mismatch: %w", ErrCorruptSnapshot)
	}
	return kind, payload, nil
}

// encodeFrame gob-encodes v with a fresh encoder and frames it to w.
func encodeFrame(w io.Writer, kind byte, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return fmt.Errorf("core: encoding snapshot section: %w", err)
	}
	return writeFrame(w, kind, buf.Bytes())
}

// Save writes a v2 snapshot of the tree to w. The value type must be
// encodable by encoding/gob. Save requires external synchronization (no
// concurrent writers). Every write error — including errors surfaced only
// at the final frame — is propagated, so a caller that sees a nil return
// holds a complete, checksummed stream (durability additionally needs the
// caller to sync its file).
func (t *Tree[K, V]) Save(w io.Writer) error {
	if _, err := io.WriteString(w, snapshotMagicV2); err != nil {
		return fmt.Errorf("core: writing snapshot magic: %w", err)
	}
	cfg := t.cfg
	hdr := snapshotHeader{
		Magic:   snapshotMagic,
		Version: snapshotVersion,
		Count:   t.size.Load(),
		Mode:    uint8(cfg.Mode), LeafCapacity: cfg.LeafCapacity,
		InternalFanout: cfg.InternalFanout, IKRScale: cfg.IKRScale,
		ResetThreshold: cfg.ResetThreshold,
	}
	if err := encodeFrame(w, frameHeader, hdr); err != nil {
		return err
	}
	chunk := snapshotChunkRec[K, V]{
		Keys: make([]K, 0, snapshotChunk),
		Vals: make([]V, 0, snapshotChunk),
	}
	var total int64
	flush := func() error {
		if len(chunk.Keys) == 0 {
			return nil
		}
		if err := encodeFrame(w, frameChunk, chunk); err != nil {
			return err
		}
		total += int64(len(chunk.Keys))
		chunk.Keys = chunk.Keys[:0]
		chunk.Vals = chunk.Vals[:0]
		return nil
	}
	var ferr error
	t.Scan(func(k K, v V) bool {
		chunk.Keys = append(chunk.Keys, k)
		chunk.Vals = append(chunk.Vals, v)
		if len(chunk.Keys) == snapshotChunk {
			ferr = flush()
		}
		return ferr == nil
	})
	if ferr != nil {
		return ferr
	}
	if err := flush(); err != nil {
		return err
	}
	return encodeFrame(w, frameTail, snapshotTail{Count: total})
}

// Load reads a snapshot written by Save (v2, or the unchecksummed v1
// format of earlier releases) and builds a tree from it. The returned tree
// uses the snapshot's configuration with cfg's Mode and Synchronized
// applied on top when cfg is non-zero (pass a zero Config to restore the
// saved configuration wholesale).
//
// Failures are typed: errors.Is(err, ErrTruncatedSnapshot) for a stream
// that ends early, errors.Is(err, ErrCorruptSnapshot) for checksum or
// structural damage, and errors.Is(err, ErrBadSnapshot) for either (or for
// a stream that was never a snapshot).
func Load[K Integer, V any](r io.Reader, cfg Config) (*Tree[K, V], error) {
	t, err := load[K, V](r, cfg)
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Salvage reads as much of a damaged snapshot as possible: it rebuilds a
// working tree from the longest checksum-valid prefix of the stream and
// returns it together with the error that stopped the read (nil when the
// stream is intact — then Salvage equals Load). The tree is non-nil, and
// passes Validate, whenever the header frame was readable; a stream whose
// header is unrecoverable yields (nil, err), since without geometry there
// is nothing to build.
func Salvage[K Integer, V any](r io.Reader, cfg Config) (*Tree[K, V], error) {
	return load[K, V](r, cfg)
}

// load is the shared implementation: it always returns the best tree it
// could build (nil only when the header never decoded) plus the first
// error. Load discards the partial tree on error; Salvage keeps it.
func load[K Integer, V any](r io.Reader, cfg Config) (*Tree[K, V], error) {
	magic := make([]byte, len(snapshotMagicV2))
	n, _ := io.ReadFull(r, magic)
	magic = magic[:n]
	if string(magic) == snapshotMagicV2 {
		return loadV2[K, V](r, cfg)
	}
	// Not the v2 magic: either a v1 gob stream or garbage; the v1 decoder
	// distinguishes. Re-attach the consumed prefix.
	return loadV1[K, V](io.MultiReader(bytes.NewReader(magic), r), cfg)
}

// restoredConfig merges the header geometry with the caller's overrides.
func restoredConfig(hdr snapshotHeader, cfg Config) Config {
	restored := Config{
		Mode:           Mode(hdr.Mode),
		LeafCapacity:   hdr.LeafCapacity,
		InternalFanout: hdr.InternalFanout,
		IKRScale:       hdr.IKRScale,
		ResetThreshold: hdr.ResetThreshold,
	}
	if cfg != (Config{}) {
		restored.Mode = cfg.Mode
		restored.Synchronized = cfg.Synchronized
		if cfg.LeafCapacity > 0 {
			restored.LeafCapacity = cfg.LeafCapacity
		}
		if cfg.InternalFanout > 0 {
			restored.InternalFanout = cfg.InternalFanout
		}
	}
	return restored
}

func loadV2[K Integer, V any](r io.Reader, cfg Config) (*Tree[K, V], error) {
	kind, payload, err := readFrame(r)
	if err != nil {
		if err == io.EOF {
			err = fmt.Errorf("core: snapshot ends before header: %w", ErrTruncatedSnapshot)
		}
		return nil, err
	}
	if kind != frameHeader {
		return nil, fmt.Errorf("core: snapshot opens with frame kind %d, want header: %w", kind, ErrCorruptSnapshot)
	}
	var hdr snapshotHeader
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&hdr); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot header: %w", ErrCorruptSnapshot)
	}
	if hdr.Magic != snapshotMagic || hdr.Version != snapshotVersion {
		return nil, ErrBadSnapshot
	}
	if err := validateHeader(hdr); err != nil {
		return nil, err
	}
	t := New[K, V](restoredConfig(hdr, cfg))
	var total int64
	for {
		kind, payload, err := readFrame(r)
		if err != nil {
			if err == io.EOF {
				err = fmt.Errorf("core: snapshot ends at entry %d without tail frame: %w", total, ErrTruncatedSnapshot)
			}
			return t, err
		}
		switch kind {
		case frameChunk:
			var chunk snapshotChunkRec[K, V]
			if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&chunk); err != nil {
				return t, fmt.Errorf("core: decoding snapshot chunk at entry %d: %w", total, ErrCorruptSnapshot)
			}
			if len(chunk.Keys) != len(chunk.Vals) || len(chunk.Keys) == 0 {
				return t, fmt.Errorf("core: malformed snapshot chunk at entry %d: %w", total, ErrCorruptSnapshot)
			}
			if total+int64(len(chunk.Keys)) > hdr.Count {
				return t, fmt.Errorf("core: snapshot streams more entries than header count %d: %w", hdr.Count, ErrCorruptSnapshot)
			}
			if err := t.BulkAppend(chunk.Keys, chunk.Vals, snapshotFill); err != nil {
				// Keys out of order across CRC-valid frames: structural
				// corruption (e.g. frames reordered or spliced).
				return t, fmt.Errorf("core: rebuilding from snapshot: %v: %w", err, ErrCorruptSnapshot) //quitlint:allow errwrap mapping cause onto the typed sentinel
			}
			total += int64(len(chunk.Keys))
		case frameTail:
			var tail snapshotTail
			if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&tail); err != nil {
				return t, fmt.Errorf("core: decoding snapshot tail: %w", ErrCorruptSnapshot)
			}
			if tail.Count != total || total != hdr.Count {
				return t, fmt.Errorf("core: snapshot count mismatch: header %d, stream %d, tail %d: %w",
					hdr.Count, total, tail.Count, ErrCorruptSnapshot)
			}
			// The tail closes the stream; anything after it is garbage.
			var one [1]byte
			if n, _ := io.ReadFull(r, one[:]); n != 0 {
				return t, fmt.Errorf("core: trailing data after snapshot tail: %w", ErrCorruptSnapshot)
			}
			return t, nil
		default:
			return t, fmt.Errorf("core: unknown snapshot frame kind %d at entry %d: %w", kind, total, ErrCorruptSnapshot)
		}
	}
}

// loadV1 reads the version-1 format: a bare gob stream with no checksums.
// Kept so snapshots written by earlier releases stay loadable; structural
// failures map onto the same typed errors as v2.
func loadV1[K Integer, V any](r io.Reader, cfg Config) (*Tree[K, V], error) {
	dec := gob.NewDecoder(r)
	var hdr snapshotHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot header: %v: %w", err, ErrBadSnapshot) //quitlint:allow errwrap mapping cause onto the typed sentinel
	}
	if hdr.Magic != snapshotMagic || hdr.Version != 1 {
		return nil, ErrBadSnapshot
	}
	if err := validateHeader(hdr); err != nil {
		return nil, err
	}
	t := New[K, V](restoredConfig(hdr, cfg))
	var total int64
	for total < hdr.Count {
		var chunk snapshotChunkRec[K, V]
		if err := dec.Decode(&chunk); err != nil {
			if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
				return t, fmt.Errorf("core: snapshot ends at entry %d of %d: %w", total, hdr.Count, ErrTruncatedSnapshot)
			}
			return t, fmt.Errorf("core: decoding snapshot chunk at entry %d: %v: %w", total, err, ErrCorruptSnapshot) //quitlint:allow errwrap mapping cause onto the typed sentinel
		}
		if len(chunk.Keys) != len(chunk.Vals) || len(chunk.Keys) == 0 {
			return t, fmt.Errorf("core: malformed snapshot chunk at entry %d: %w", total, ErrCorruptSnapshot)
		}
		if total+int64(len(chunk.Keys)) > hdr.Count {
			return t, fmt.Errorf("core: snapshot streams more entries than header count %d: %w", hdr.Count, ErrCorruptSnapshot)
		}
		if err := t.BulkAppend(chunk.Keys, chunk.Vals, snapshotFill); err != nil {
			return t, fmt.Errorf("core: rebuilding from snapshot: %v: %w", err, ErrCorruptSnapshot) //quitlint:allow errwrap mapping cause onto the typed sentinel
		}
		total += int64(len(chunk.Keys))
	}
	// The header count delimits the v1 stream; reject trailing garbage
	// after the final chunk instead of silently ignoring it.
	var extra snapshotChunkRec[K, V]
	if err := dec.Decode(&extra); err != io.EOF {
		return t, fmt.Errorf("core: trailing data after final snapshot chunk: %w", ErrCorruptSnapshot)
	}
	return t, nil
}
