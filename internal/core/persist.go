package core

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
)

// Snapshot format: a gob stream with a header followed by fixed-size entry
// chunks in ascending key order. Loading rebuilds the tree with bulk
// loading, so a loaded tree is compact (leaves packed to snapshotFill)
// regardless of the occupancy it was saved with.
const (
	snapshotMagic   = "quit-tree-snapshot"
	snapshotVersion = 1
	snapshotChunk   = 1 << 14
	snapshotFill    = 0.9 // leave headroom so post-load inserts don't cascade splits
)

// ErrBadSnapshot is returned by Load when the stream is not a snapshot or
// is from an incompatible version.
var ErrBadSnapshot = errors.New("core: not a quit tree snapshot (or incompatible version)")

type snapshotHeader struct {
	Magic   string
	Version int
	Count   int64
	// The geometry the tree was saved with; Load reuses it unless the
	// caller overrides the config.
	Mode           uint8
	LeafCapacity   int
	InternalFanout int
	IKRScale       float64
	ResetThreshold int
}

type snapshotChunkRec[K Integer, V any] struct {
	Keys []K
	Vals []V
}

// Save writes a snapshot of the tree to w. The value type must be
// encodable by encoding/gob. Save requires external synchronization (no
// concurrent writers).
func (t *Tree[K, V]) Save(w io.Writer) error {
	enc := gob.NewEncoder(w)
	cfg := t.cfg
	hdr := snapshotHeader{
		Magic:   snapshotMagic,
		Version: snapshotVersion,
		Count:   t.size.Load(),
		Mode:    uint8(cfg.Mode), LeafCapacity: cfg.LeafCapacity,
		InternalFanout: cfg.InternalFanout, IKRScale: cfg.IKRScale,
		ResetThreshold: cfg.ResetThreshold,
	}
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("core: encoding snapshot header: %w", err)
	}
	chunk := snapshotChunkRec[K, V]{
		Keys: make([]K, 0, snapshotChunk),
		Vals: make([]V, 0, snapshotChunk),
	}
	flush := func() error {
		if len(chunk.Keys) == 0 {
			return nil
		}
		if err := enc.Encode(chunk); err != nil {
			return fmt.Errorf("core: encoding snapshot chunk: %w", err)
		}
		chunk.Keys = chunk.Keys[:0]
		chunk.Vals = chunk.Vals[:0]
		return nil
	}
	var ferr error
	t.Scan(func(k K, v V) bool {
		chunk.Keys = append(chunk.Keys, k)
		chunk.Vals = append(chunk.Vals, v)
		if len(chunk.Keys) == snapshotChunk {
			ferr = flush()
		}
		return ferr == nil
	})
	if ferr != nil {
		return ferr
	}
	return flush()
}

// Load reads a snapshot written by Save and builds a tree from it. The
// returned tree uses the snapshot's configuration with cfg's Mode and
// Synchronized applied on top when cfg is non-zero (pass a zero Config to
// restore the saved configuration wholesale).
func Load[K Integer, V any](r io.Reader, cfg Config) (*Tree[K, V], error) {
	dec := gob.NewDecoder(r)
	var hdr snapshotHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot header: %w", err)
	}
	if hdr.Magic != snapshotMagic || hdr.Version != snapshotVersion {
		return nil, ErrBadSnapshot
	}
	restored := Config{
		Mode:           Mode(hdr.Mode),
		LeafCapacity:   hdr.LeafCapacity,
		InternalFanout: hdr.InternalFanout,
		IKRScale:       hdr.IKRScale,
		ResetThreshold: hdr.ResetThreshold,
	}
	if cfg != (Config{}) {
		restored.Mode = cfg.Mode
		restored.Synchronized = cfg.Synchronized
		if cfg.LeafCapacity > 0 {
			restored.LeafCapacity = cfg.LeafCapacity
		}
		if cfg.InternalFanout > 0 {
			restored.InternalFanout = cfg.InternalFanout
		}
	}
	t := New[K, V](restored)
	var total int64
	for total < hdr.Count {
		var chunk snapshotChunkRec[K, V]
		if err := dec.Decode(&chunk); err != nil {
			return nil, fmt.Errorf("core: decoding snapshot chunk at entry %d: %w", total, err)
		}
		if len(chunk.Keys) != len(chunk.Vals) || len(chunk.Keys) == 0 {
			return nil, fmt.Errorf("core: corrupt snapshot chunk at entry %d", total)
		}
		if err := t.BulkAppend(chunk.Keys, chunk.Vals, snapshotFill); err != nil {
			return nil, fmt.Errorf("core: rebuilding from snapshot: %w", err)
		}
		total += int64(len(chunk.Keys))
	}
	if total != hdr.Count {
		return nil, fmt.Errorf("core: snapshot count mismatch: header %d, stream %d", hdr.Count, total)
	}
	return t, nil
}
