package core

// Get returns the value stored for key. Lookups are identical to a
// classical B+-tree in every mode: the fast path is write-side only, which
// is how QuIT avoids any read penalty (§4.4).
func (t *Tree[K, V]) Get(key K) (V, bool) {
	var zero V
	n := t.rlockedRoot()
	reads := int64(0)
	for !n.isLeaf() {
		reads++
		c := n.children[n.route(key)]
		t.rlock(c)
		t.runlock(n)
		n = c
	}
	t.c.nodeReads.Add(reads)
	t.c.leafReads.Add(1)
	i, ok := n.find(key)
	if !ok {
		t.runlock(n)
		return zero, false
	}
	v := n.vals[i]
	t.runlock(n)
	return v, true
}

// Contains reports whether key is present.
func (t *Tree[K, V]) Contains(key K) bool {
	_, ok := t.Get(key)
	return ok
}

// Min returns the smallest key and its value; ok is false for an empty tree.
func (t *Tree[K, V]) Min() (k K, v V, ok bool) {
	t.lockMeta()
	n := t.head
	t.unlockMeta()
	t.rlock(n)
	defer t.runlock(n)
	if len(n.keys) == 0 {
		return k, v, false
	}
	return n.keys[0], n.vals[0], true
}

// Max returns the largest key and its value; ok is false for an empty tree.
func (t *Tree[K, V]) Max() (k K, v V, ok bool) {
	t.lockMeta()
	n := t.tail
	t.unlockMeta()
	t.rlock(n)
	defer t.runlock(n)
	if len(n.keys) == 0 {
		return k, v, false
	}
	return n.keys[len(n.keys)-1], n.vals[len(n.vals)-1], true
}

// Range visits every entry with start <= key < end in ascending key order,
// stopping early if fn returns false. It returns the number of entries
// visited. fn must not modify the tree. Leaf accesses are tallied in
// Stats.RangeLeafReads, the metric behind the paper's Fig. 10c.
func (t *Tree[K, V]) Range(start, end K, fn func(K, V) bool) int {
	if end <= start {
		return 0
	}
	n := t.rlockedRoot()
	for !n.isLeaf() {
		c := n.children[n.route(start)]
		t.rlock(c)
		t.runlock(n)
		n = c
	}
	visited := 0
	leaves := int64(1)
	i := lowerBound(n.keys, start)
	for {
		for ; i < len(n.keys); i++ {
			if n.keys[i] >= end {
				t.runlock(n)
				t.c.rangeLeafReads.Add(leaves)
				return visited
			}
			visited++
			if !fn(n.keys[i], n.vals[i]) {
				t.runlock(n)
				t.c.rangeLeafReads.Add(leaves)
				return visited
			}
		}
		next := n.next
		if next == nil {
			t.runlock(n)
			break
		}
		t.rlock(next)
		t.runlock(n)
		n = next
		leaves++
		i = 0
	}
	t.c.rangeLeafReads.Add(leaves)
	return visited
}

// Scan visits every entry in ascending key order, stopping early if fn
// returns false. fn must not modify the tree.
func (t *Tree[K, V]) Scan(fn func(K, V) bool) {
	t.lockMeta()
	n := t.head
	t.unlockMeta()
	t.rlock(n)
	for {
		for i := 0; i < len(n.keys); i++ {
			if !fn(n.keys[i], n.vals[i]) {
				t.runlock(n)
				return
			}
		}
		next := n.next
		if next == nil {
			t.runlock(n)
			return
		}
		t.rlock(next)
		t.runlock(n)
		n = next
	}
}

// Keys returns all keys in ascending order. Intended for tests and small
// trees; it allocates the full result.
func (t *Tree[K, V]) Keys() []K {
	out := make([]K, 0, t.Len())
	t.Scan(func(k K, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}
