package core

import "unsafe"

// Get returns the value stored for key. Lookups are identical to a
// classical B+-tree in every mode: the fast path is write-side only, which
// is how QuIT avoids any read penalty (§4.4). In synchronized mode the
// descent is a latch-free optimistic read — no locks are taken, and a
// version conflict with a concurrent writer restarts the descent
// (Stats.OLCRestarts).
func (t *Tree[K, V]) Get(key K) (V, bool) {
	var zero V
restart:
	for {
		n, v := t.readRoot()
		reads := int64(0)
		for !n.isLeaf() {
			reads++
			c, cok := n.childAt(n.route(key))
			if !cok {
				t.readAbort(n)
				t.olcRestart()
				continue restart
			}
			cv, ok := t.readLatch(c)
			if !ok {
				t.readAbort(n)
				t.olcRestart()
				continue restart
			}
			if !t.readUnlatch(n, v) {
				t.readAbort(c)
				t.olcRestart()
				continue restart
			}
			n, v = c, cv
		}
		i, found := n.find(key)
		var val V
		if found {
			vs := n.vals
			if i >= len(vs) {
				// Torn leaf: keys grew before vals did. Validation below
				// would reject it anyway; bail before faulting.
				t.readAbort(n)
				t.olcRestart()
				continue restart
			}
			val = vs[i]
		}
		if !t.readUnlatch(n, v) {
			t.olcRestart()
			continue restart
		}
		t.c.nodeReads.Add(reads)
		t.c.leafReads.Add(1)
		if !found {
			return zero, false
		}
		return val, true
	}
}

// Contains reports whether key is present.
func (t *Tree[K, V]) Contains(key K) bool {
	_, ok := t.Get(key)
	return ok
}

// Min returns the smallest key and its value; ok is false for an empty tree.
func (t *Tree[K, V]) Min() (k K, v V, ok bool) {
	for {
		n := t.head.Load()
		ver, lok := t.readLatch(n)
		if !lok {
			t.olcRestart()
			continue
		}
		var kk K
		var vv V
		// Slot bounds checked against both lengths: a torn leaf can have a
		// bitmap bit ahead of the observed keys/vals high-water marks.
		s := n.minSlot()
		has := s >= 0 && s < len(n.keys) && s < len(n.vals)
		if has {
			kk, vv = n.keys[s], n.vals[s]
		}
		if !t.readUnlatch(n, ver) {
			t.olcRestart()
			continue
		}
		return kk, vv, has
	}
}

// Max returns the largest key and its value; ok is false for an empty tree.
func (t *Tree[K, V]) Max() (k K, v V, ok bool) {
	for {
		n := t.tail.Load()
		ver, lok := t.readLatch(n)
		if !lok {
			t.olcRestart()
			continue
		}
		if t.synced && t.tail.Load() != n {
			// The tail advanced (or merged) between the load and the latch.
			t.readAbort(n)
			t.olcRestart()
			continue
		}
		var kk K
		var vv V
		s := n.maxSlot()
		has := s >= 0 && s < len(n.keys) && s < len(n.vals)
		if has {
			kk, vv = n.keys[s], n.vals[s]
		}
		if !t.readUnlatch(n, ver) {
			t.olcRestart()
			continue
		}
		return kk, vv, has
	}
}

// Range visits every entry with start <= key < end in ascending key order,
// stopping early if fn returns false. It returns the number of entries
// visited. Leaf accesses are tallied in Stats.RangeLeafReads, the metric
// behind the paper's Fig. 10c.
//
// In synchronized mode each leaf is snapshotted and version-validated
// before fn sees it, so fn runs with no latches held; a conflict with a
// concurrent writer re-descends to the first unvisited key, giving
// per-leaf (not whole-scan) atomicity, with every key visited exactly once.
func (t *Tree[K, V]) Range(start, end K, fn func(K, V) bool) int {
	if end <= start {
		return 0
	}
	visited, leaves := t.scanLeaves(start, true, end, fn)
	t.c.rangeLeafReads.Add(leaves)
	return visited
}

// Scan visits every entry in ascending key order, stopping early if fn
// returns false. Concurrency follows Range's per-leaf snapshot semantics.
func (t *Tree[K, V]) Scan(fn func(K, V) bool) {
	var unbounded K
	t.scanLeaves(minKeyValue[K](), false, unbounded, fn)
}

// scanLeaves walks leaves left-to-right visiting entries with key >= start
// (and key < end when bounded), returning the number of entries visited and
// leaves read. The synchronized walk snapshots each leaf into a buffer,
// validates the version, then emits the snapshot; restarts resume at the
// first unvisited key.
func (t *Tree[K, V]) scanLeaves(start K, bounded bool, end K, fn func(K, V) bool) (visited int, leaves int64) {
	if !t.synced {
		return t.scanLeavesUnsync(start, bounded, end, fn)
	}
	var bk []K
	var bv []V
restart:
	for {
		n, v := t.descendToLeaf(start)
		for {
			if bk == nil {
				bk = make([]K, 0, t.cfg.LeafCapacity)
				bv = make([]V, 0, t.cfg.LeafCapacity)
			}
			bk, bv = bk[:0], bv[:0]
			done := false
			ks, vs := n.keys, n.vals
			m := len(ks)
			if len(vs) < m {
				m = len(vs) // torn leaf; validation below rejects the snapshot
			}
			// Walk live slots only: searchKeys lands on the first slot >= start
			// (possibly a gap copy), the bitmap scan skips to live entries.
			for i := n.nextPresent(lowerBound(ks, start)); i >= 0 && i < m; i = n.nextPresent(i + 1) {
				if bounded && ks[i] >= end {
					done = true
					break
				}
				bk = append(bk, ks[i])
				bv = append(bv, vs[i])
			}
			next := n.next.Load()
			if !t.readUnlatch(n, v) {
				t.olcRestart()
				continue restart
			}
			leaves++
			for j := range bk {
				visited++
				if !fn(bk[j], bv[j]) {
					return visited, leaves
				}
			}
			if len(bk) > 0 {
				last := bk[len(bk)-1]
				start = last + 1
				if start <= last {
					return visited, leaves // key domain exhausted
				}
			}
			if done || next == nil {
				return visited, leaves
			}
			nv, ok := t.readLatch(next)
			if !ok {
				t.olcRestart()
				continue restart
			}
			n, v = next, nv
		}
	}
}

// scanLeavesUnsync is the zero-overhead single-goroutine walk.
func (t *Tree[K, V]) scanLeavesUnsync(start K, bounded bool, end K, fn func(K, V) bool) (visited int, leaves int64) {
	n := t.root.Load()
	for !n.isLeaf() {
		n = n.children[n.route(start)]
	}
	i := n.nextPresent(lowerBound(n.keys, start))
	for {
		leaves++
		for ; i >= 0 && i < len(n.keys); i = n.nextPresent(i + 1) {
			if bounded && n.keys[i] >= end {
				return visited, leaves
			}
			visited++
			if !fn(n.keys[i], n.vals[i]) {
				return visited, leaves
			}
		}
		n = n.next.Load()
		if n == nil {
			return visited, leaves
		}
		i = n.nextPresent(0)
	}
}

// Keys returns all keys in ascending order. Intended for tests and small
// trees; it allocates the full result.
func (t *Tree[K, V]) Keys() []K {
	out := make([]K, 0, t.Len())
	t.Scan(func(k K, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}

// minKeyValue returns the smallest value of the key type: zero for unsigned
// kinds, the most negative value for signed kinds.
func minKeyValue[K Integer]() K {
	var zero K
	ones := ^zero // -1 for signed kinds, the maximum for unsigned kinds
	if ones > zero {
		return zero
	}
	return ones << (8*unsafe.Sizeof(zero) - 1) //quitlint:allow unsafeuse audited: compile-time Sizeof of the key type to build the signed minimum sentinel; no pointers formed
}
