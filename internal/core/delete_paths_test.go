package core

import (
	"math/rand"
	"testing"
)

// Targeted coverage for the delete rebalance paths: borrows in both
// directions at both levels, cascading merges, and root collapse, each
// verified structurally.

func TestDeleteBorrowFromRightLeaf(t *testing.T) {
	tr := New[int64, int64](Config{Mode: ModeNone, LeafCapacity: 4, InternalFanout: 4})
	for i := int64(0); i < 8; i++ {
		tr.Put(i*10, i)
	}
	// Leaves after sorted fill (cap 4): [0,10], [20,30], [40..70]. Fatten
	// the middle leaf so it can lend: [20,25,30].
	tr.Put(25, 0)
	// Delete 0: the head leaf underflows (1 < 2) and borrows from the
	// right sibling, which has 3 > minLeaf entries.
	before := tr.Stats().Borrows
	tr.Delete(0)
	if tr.Stats().Borrows != before+1 {
		t.Fatalf("expected one borrow, got %d", tr.Stats().Borrows-before)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := liveKeys(tr.head.Load()); len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Fatalf("head leaf after right borrow: %v", got)
	}
}

func TestDeleteBorrowFromLeftLeaf(t *testing.T) {
	tr := New[int64, int64](Config{Mode: ModeNone, LeafCapacity: 4, InternalFanout: 4})
	for i := int64(0); i < 8; i++ {
		tr.Put(i, i)
	}
	// Rightmost leaf [4,5,6,7]; shrink it to force a left borrow: delete
	// 5,6,7 -> [4] underflows; left sibling [2,3] has only minLeaf, so it
	// merges instead. To see a borrow, first fatten the left sibling.
	tr.Put(8, 8) // [4..7] splits -> [4,5], [6,7,8]
	tr.Delete(8)
	tr.Delete(7) // [6] underflows; left sibling [4,5] has exactly minLeaf=2 -> merge
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Construct the borrow-from-left case directly: [0,1,2] and [3,4]
	tr2 := New[int64, int64](Config{Mode: ModeNone, LeafCapacity: 4, InternalFanout: 4})
	for i := int64(0); i < 6; i++ {
		tr2.Put(i, i)
	}
	// Leaves: [0,1], [2,3,4,5]. Fill left more: insert -1, -2 -> split.
	tr2.Put(-1, -1)
	tr2.Put(-2, -2) // left leaf [-2,-1,0,1] full
	// Delete from the RIGHTMOST leaf down to underflow; its left sibling
	// is full enough to lend.
	tr2.Delete(5)
	tr2.Delete(4)
	tr2.Delete(3) // [2] underflows; left sibling state decides borrow/merge
	if err := tr2.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, k := range []int64{-2, -1, 0, 1, 2} {
		if !tr2.Contains(k) {
			t.Fatalf("key %d lost", k)
		}
	}
}

func TestDeleteCascadingMergeShrinksHeight(t *testing.T) {
	tr := New[int64, int64](Config{Mode: ModeNone, LeafCapacity: 4, InternalFanout: 4})
	const n = 2000
	for i := int64(0); i < n; i++ {
		tr.Put(i, i)
	}
	h := tr.Height()
	if h < 5 {
		t.Fatalf("height %d too small for cascade test", h)
	}
	// Delete everything except a handful, in a stride pattern so merges
	// happen all over the tree rather than only at the right edge.
	rng := rand.New(rand.NewSource(2))
	perm := rng.Perm(n)
	for _, k := range perm[:n-5] {
		if _, ok := tr.Delete(int64(k)); !ok {
			t.Fatalf("Delete(%d) missed", k)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() >= h {
		t.Fatalf("height did not shrink: %d -> %d", h, tr.Height())
	}
	if tr.Len() != 5 {
		t.Fatalf("Len = %d", tr.Len())
	}
	st := tr.Stats()
	if st.Merges == 0 || st.Borrows == 0 {
		t.Fatalf("expected both merges (%d) and borrows (%d)", st.Merges, st.Borrows)
	}
}

func TestDeleteInternalRotations(t *testing.T) {
	// Drive enough structured deletes through a tall skinny tree that
	// internal nodes rotate from both siblings (covered via counters).
	tr := New[int64, int64](Config{Mode: ModeNone, LeafCapacity: 4, InternalFanout: 4})
	const n = 4096
	for i := int64(0); i < n; i++ {
		tr.Put(i, i)
	}
	// Delete left-to-right then right-to-left in interleaved halves.
	for i := int64(0); i < n/2; i++ {
		tr.Delete(i)
		tr.Delete(n - 1 - i)
		if i%512 == 0 {
			if err := tr.Validate(); err != nil {
				t.Fatalf("at %d: %v", i, err)
			}
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadStatsAccounting(t *testing.T) {
	tr := New[int64, int64](Config{Mode: ModeQuIT, LeafCapacity: 8, InternalFanout: 5})
	for i := int64(0); i < 1000; i++ {
		tr.Put(i, i)
	}
	tr.ResetCounters()
	for i := int64(0); i < 100; i++ {
		tr.Get(i * 10)
	}
	st := tr.Stats()
	if st.LeafReads != 100 {
		t.Fatalf("LeafReads = %d, want 100", st.LeafReads)
	}
	wantNode := int64(100 * (tr.Height() - 1))
	if st.NodeReads != wantNode {
		t.Fatalf("NodeReads = %d, want %d", st.NodeReads, wantNode)
	}
	// Range accounting: a scan over m leaves adds m to RangeLeafReads.
	tr.ResetCounters()
	visited := tr.Range(0, 1000, func(int64, int64) bool { return true })
	if visited != 1000 {
		t.Fatalf("visited %d", visited)
	}
	st = tr.Stats()
	if st.RangeLeafReads != tr.Stats().Leaves {
		t.Fatalf("RangeLeafReads = %d, leaves = %d", st.RangeLeafReads, tr.Stats().Leaves)
	}
}

func TestUpdateSeparatorPanicsWithoutSeparator(t *testing.T) {
	// A redistribution on a leftmost leaf would corrupt the tree; the
	// invariant violation must fail loudly.
	tr := New[int64, int64](Config{Mode: ModeQuIT, LeafCapacity: 8, InternalFanout: 5})
	for i := int64(0); i < 64; i++ {
		tr.Put(i, i)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("updateSeparator on leftmost path did not panic")
		}
	}()
	// Path to the head leaf, whose descent never turns right for key 0.
	path := []*node[int64, int64]{tr.root.Load()}
	n := tr.root.Load()
	for !n.isLeaf() {
		n = n.children[0]
		path = append(path, n)
	}
	tr.updateSeparator(path, 0, 1)
}
