//go:build race

package core

// Stress sizing under -race: the detector costs roughly an order of
// magnitude, so rounds are smaller — but there are more of them, because
// each round boundary is a quiescent point where the structural validator
// runs over the tree the racing workers just built. More rounds means the
// validator sees more intermediate shapes under instrumentation.
const (
	stressRounds      = 6
	stressOpsPerRound = 500
)
