//go:build race

package core

import (
	"sync"
	"sync/atomic"
)

// Race-detector build of the versioned node latch (see latch_olc.go for the
// production variant and the word layout it validates).
//
// True optimistic reads are invisible to the race detector: a reader's plain
// loads race with a writer's plain stores by design, and the version
// validation that makes the protocol correct does not create the
// happens-before edges TSan needs, so every optimistic read would be
// reported. Under `-race` the latch therefore degrades optimistic read
// sections to shared pins on a sync.RWMutex: readers exclude writers for
// the duration of a section, which gives the detector real edges while
// keeping the exact same call sites, restart surface (obsolete nodes,
// failed upgrades, contended write locks) and lock ordering. Version
// numbers are still maintained so post-section rechecks behave identically.
//
// The production build is the one that exercises torn-read validation; the
// non-race `go test ./...` run covers it with the same concurrent tests.
type latch struct {
	mu  sync.RWMutex
	ver atomic.Uint64 // bit 0: obsolete flag; bits 1..63: version counter
}

const (
	latchObsolete uint64 = 1 << 0
	latchInc      uint64 = 1 << 1
)

// readLockOrRestart opens a (shared-pinned) read section. ok is false when
// the node is obsolete.
func (l *latch) readLockOrRestart() (uint64, bool) {
	l.mu.RLock()
	v := l.ver.Load()
	if v&latchObsolete != 0 {
		l.mu.RUnlock()
		return 0, false
	}
	return v, true
}

// checkOrRestart validates mid-section. Readers exclude writers here, so
// nothing can have changed.
func (l *latch) checkOrRestart(uint64) bool { return true }

// readUnlockOrRestart closes a read section; always consistent under pins.
func (l *latch) readUnlockOrRestart(uint64) bool {
	l.mu.RUnlock()
	return true
}

// readAbort abandons a read section on a restart path.
func (l *latch) readAbort() { l.mu.RUnlock() }

// upgradeToWriteLockOrRestart converts a read section into the write lock.
// RWMutex cannot upgrade in place, so the pin is dropped and the version
// re-checked under the exclusive lock; a concurrent writer fails the check
// exactly as a failed CAS does in the production build.
func (l *latch) upgradeToWriteLockOrRestart(v uint64) bool {
	l.mu.RUnlock()
	l.mu.Lock()
	if l.ver.Load() != v {
		l.mu.Unlock()
		return false
	}
	return true
}

// writeLock acquires the write lock pessimistically.
func (l *latch) writeLock() { l.mu.Lock() }

// writeLockOrRestart acquires the write lock pessimistically but fails —
// releasing the lock again — when the node is obsolete; see the production
// variant for why blocked writers must not acquire merged-away nodes.
func (l *latch) writeLockOrRestart() bool {
	l.mu.Lock()
	if l.ver.Load()&latchObsolete != 0 {
		l.mu.Unlock()
		return false
	}
	return true
}

// tryWriteLock attempts the write lock without blocking; see the production
// variant for why this is the one latch call allowed under the meta mutex.
func (l *latch) tryWriteLock() bool {
	if !l.mu.TryLock() {
		return false
	}
	if l.ver.Load()&latchObsolete != 0 {
		l.mu.Unlock()
		return false
	}
	return true
}

// writeUnlock releases the write lock, bumping the version.
func (l *latch) writeUnlock() {
	l.ver.Add(latchInc)
	l.mu.Unlock()
}

// markObsolete tags a write-locked node as unlinked from the tree.
func (l *latch) markObsolete() { l.ver.Add(latchObsolete) }
