package core

import (
	"sync"
	"testing"
)

// The latch protocol tests below are written to hold for both
// implementations: the production versioned latch (latch_olc.go) and the
// race-detector shared-pin shim (latch_race.go). They assert the contract
// the tree relies on, not implementation details like bit layouts.

func TestLatchVersionAdvancesAcrossWrites(t *testing.T) {
	var l latch
	v1, ok := l.readLockOrRestart()
	if !ok {
		t.Fatal("fresh latch reported obsolete")
	}
	if !l.readUnlockOrRestart(v1) {
		t.Fatal("read section invalidated with no writer")
	}
	l.writeLock()
	l.writeUnlock()
	v2, ok := l.readLockOrRestart()
	if !ok {
		t.Fatal("latch reported obsolete after plain write")
	}
	if v2 == v1 {
		t.Fatal("version did not advance across a write")
	}
	if !l.readUnlockOrRestart(v2) {
		t.Fatal("read section invalidated with no writer")
	}
}

func TestLatchObsoleteSurvivesUnlockAndRejectsAll(t *testing.T) {
	var l latch
	l.writeLock()
	l.markObsolete()
	l.writeUnlock()
	if _, ok := l.readLockOrRestart(); ok {
		t.Fatal("readLockOrRestart succeeded on an obsolete latch")
	}
	if l.tryWriteLock() {
		t.Fatal("tryWriteLock succeeded on an obsolete latch")
	}
	if l.writeLockOrRestart() {
		t.Fatal("writeLockOrRestart succeeded on an obsolete latch")
	}
	// The failed acquisition must not leave the lock held: a live latch
	// acquired through the same entry point must still work.
	var live latch
	if !live.writeLockOrRestart() {
		t.Fatal("writeLockOrRestart failed on an idle latch")
	}
	live.writeUnlock()
}

// TestLatchWriteLockOrRestartBlocksThenFails models the merged-away
// fast-path leaf: a writer blocks on a latched node, the holder marks it
// obsolete before releasing, and the blocked acquisition must fail rather
// than hand out a dead node.
func TestLatchWriteLockOrRestartBlocksThenFails(t *testing.T) {
	var l latch
	l.writeLock()
	got := make(chan bool)
	go func() { got <- l.writeLockOrRestart() }()
	l.markObsolete()
	l.writeUnlock()
	if <-got {
		t.Fatal("writeLockOrRestart acquired a node marked obsolete before release")
	}
}

func TestLatchTryWriteLockNonBlocking(t *testing.T) {
	var l latch
	if !l.tryWriteLock() {
		t.Fatal("tryWriteLock failed on an idle latch")
	}
	l.writeUnlock()
	l.writeLock()
	if l.tryWriteLock() {
		t.Fatal("tryWriteLock succeeded while the write lock was held")
	}
	l.writeUnlock()
	if !l.tryWriteLock() {
		t.Fatal("tryWriteLock failed after the write lock was released")
	}
	l.writeUnlock()
}

// TestLatchUpgradeExclusive has N goroutines open read sections on the same
// version and race to upgrade: exactly one upgrade may win (the others must
// observe the intervening write and restart). This is the guarantee that
// makes the optimistic leaf-upgrade insert path linearizable.
func TestLatchUpgradeExclusive(t *testing.T) {
	const goroutines = 8
	var l latch
	start := make(chan struct{})
	wins := make(chan bool, goroutines)
	var ready, wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		ready.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, ok := l.readLockOrRestart()
			ready.Done()
			if !ok {
				wins <- false
				return
			}
			<-start
			if l.upgradeToWriteLockOrRestart(v) {
				l.writeUnlock()
				wins <- true
				return
			}
			wins <- false
		}()
	}
	ready.Wait() // every goroutine holds the same version snapshot
	close(start)
	wg.Wait()
	close(wins)
	won := 0
	for w := range wins {
		if w {
			won++
		}
	}
	if won != 1 {
		t.Fatalf("%d upgrades won, want exactly 1", won)
	}
}

// TestLatchReaderSeesConsistentPair is the seqlock litmus test: a writer
// mutates two fields only under the write lock, keeping them equal; a
// validated read section must never observe them mid-update.
func TestLatchReaderSeesConsistentPair(t *testing.T) {
	type guarded struct {
		lt   latch
		x, y int
	}
	g := &guarded{}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			g.lt.writeLock()
			g.x = i
			g.y = i
			g.lt.writeUnlock()
		}
	}()
	const reads = 20000
	validated := 0
	for validated < reads {
		v, ok := g.lt.readLockOrRestart()
		if !ok {
			t.Fatal("latch reported obsolete")
		}
		x, y := g.x, g.y
		if !g.lt.readUnlockOrRestart(v) {
			continue // writer intervened; snapshot discarded
		}
		if x != y {
			t.Fatalf("validated read section saw torn pair (%d, %d)", x, y)
		}
		validated++
	}
	close(stop)
	wg.Wait()
}
