package core

import (
	"math/rand"
	"sync"
	"testing"
)

func syncConfig(m Mode) Config {
	return Config{Mode: m, LeafCapacity: 16, InternalFanout: 8, Synchronized: true}
}

func TestConcurrentInsertDisjointRanges(t *testing.T) {
	for _, mode := range []Mode{ModeNone, ModeQuIT} {
		t.Run(mode.String(), func(t *testing.T) {
			tr := New[int64, int64](syncConfig(mode))
			const goroutines = 8
			const perG = 3000
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					base := int64(g) * perG
					for i := int64(0); i < perG; i++ {
						tr.Put(base+i, base+i)
					}
				}(g)
			}
			wg.Wait()
			if tr.Len() != goroutines*perG {
				t.Fatalf("Len = %d, want %d", tr.Len(), goroutines*perG)
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			for i := int64(0); i < goroutines*perG; i++ {
				if v, ok := tr.Get(i); !ok || v != i {
					t.Fatalf("Get(%d) = (%d,%v)", i, v, ok)
				}
			}
		})
	}
}

func TestConcurrentInsertSameRegion(t *testing.T) {
	// All goroutines hammer an interleaved ascending stream: maximum
	// contention on the fast-path leaf, the scenario of Fig. 13a.
	for _, mode := range []Mode{ModeNone, ModeTail, ModeLIL, ModePOLE, ModeQuIT} {
		t.Run(mode.String(), func(t *testing.T) {
			tr := New[int64, int64](syncConfig(mode))
			const goroutines = 8
			const perG = 2000
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						k := int64(i*goroutines + g)
						tr.Put(k, k)
					}
				}(g)
			}
			wg.Wait()
			if tr.Len() != goroutines*perG {
				t.Fatalf("Len = %d, want %d", tr.Len(), goroutines*perG)
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestConcurrentMixedReadWrite(t *testing.T) {
	tr := New[int64, int64](syncConfig(ModeQuIT))
	for i := int64(0); i < 10000; i++ {
		tr.Put(i*2, i)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers: point lookups and range scans while writers append.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := int64(rng.Intn(10000)) * 2
				if _, ok := tr.Get(k); !ok {
					t.Errorf("Get(%d) lost a pre-inserted key", k)
					return
				}
				tr.Range(k, k+200, func(kk, _ int64) bool { return true })
			}
		}(int64(r))
	}
	// Writers: near-sorted appends beyond the preloaded region.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(100000 + w*50000)
			for i := int64(0); i < 5000; i++ {
				tr.Put(base+i, i)
			}
		}(w)
	}
	// One deleter on its own region.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(0); i < 2000; i++ {
			tr.Delete(i*2 + 1) // misses: exercise the delete descent
		}
	}()
	// Let writers finish, then stop readers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	// Writers terminate on their own; readers need the signal. Wait for the
	// writer count via polling Len.
	for tr.Len() < 10000+4*5000 {
		if t.Failed() {
			break
		}
	}
	close(stop)
	<-done
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentDeleteAndInsert(t *testing.T) {
	tr := New[int64, int64](syncConfig(ModeQuIT))
	for i := int64(0); i < 20000; i++ {
		tr.Put(i, i)
	}
	var wg sync.WaitGroup
	// Deleters on even keys, inserters on a fresh region.
	for d := 0; d < 2; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			for i := int64(d); i < 20000; i += 2 {
				tr.Delete(i)
			}
		}(d)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(1000000 + w*100000)
			for i := int64(0); i < 5000; i++ {
				tr.Put(base+i, i)
			}
		}(w)
	}
	wg.Wait()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 10000 {
		t.Fatalf("Len = %d, want 10000", tr.Len())
	}
}

func TestConcurrentScanSeesSortedKeys(t *testing.T) {
	tr := New[int64, int64](syncConfig(ModeQuIT))
	for i := int64(0); i < 5000; i++ {
		tr.Put(i, i)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var last int64 = -1
			tr.Scan(func(k, _ int64) bool {
				if k <= last {
					t.Errorf("scan out of order: %d after %d", k, last)
					return false
				}
				last = k
				return true
			})
		}
	}()
	for i := int64(5000); i < 30000; i++ {
		tr.Put(i, i)
	}
	close(stop)
	wg.Wait()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSynchronizedMatchesUnsynchronized(t *testing.T) {
	// Same single-threaded workload through both paths must build
	// observably identical trees.
	keys := workloads(5000, 77)["nearsorted"]
	for _, mode := range allModes {
		a := New[int64, int64](Config{Mode: mode, LeafCapacity: 16, InternalFanout: 8})
		b := New[int64, int64](Config{Mode: mode, LeafCapacity: 16, InternalFanout: 8, Synchronized: true})
		for _, k := range keys {
			a.Put(k, k)
			b.Put(k, k)
		}
		if a.Len() != b.Len() {
			t.Fatalf("%v: Len %d vs %d", mode, a.Len(), b.Len())
		}
		ka, kb := a.Keys(), b.Keys()
		for i := range ka {
			if ka[i] != kb[i] {
				t.Fatalf("%v: key divergence at %d", mode, i)
			}
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("%v unsync: %v", mode, err)
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("%v sync: %v", mode, err)
		}
	}
}

func TestConcurrentRedistributionAgainstScans(t *testing.T) {
	// QuIT's redistribution locks pole_prev via the release-reacquire
	// protocol while forward scans crab through the same leaves; this
	// stress aims traffic at exactly that interaction.
	tr := New[int64, int64](Config{Mode: ModeQuIT, LeafCapacity: 8, InternalFanout: 5, Synchronized: true})
	for i := int64(0); i < 4000; i++ {
		tr.Put(i*10, i)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := int64(rng.Intn(40000)) * 10
				last := int64(-1)
				tr.Range(s, s+5000, func(k, _ int64) bool {
					if k <= last {
						t.Errorf("scan order violation: %d after %d", k, last)
						return false
					}
					last = k
					return true
				})
			}
		}(int64(r))
	}
	// Writer: in-order bursts with occasional outliers, maximizing
	// variable splits and redistributions at small leaf capacity.
	rng := rand.New(rand.NewSource(99))
	key := int64(40000)
	for burst := 0; burst < 3000; burst++ {
		if rng.Intn(5) == 0 {
			base := key + 100000
			for i := int64(0); i < int64(rng.Intn(5)+2); i++ {
				tr.Put(base+i, 0)
			}
		}
		for i := 0; i < rng.Intn(8)+2; i++ {
			tr.Put(key, key)
			key += int64(rng.Intn(3) + 1)
		}
	}
	close(stop)
	wg.Wait()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentDeleteBorrowsAgainstScans(t *testing.T) {
	// Deletes that borrow from the LEFT sibling use the release-reacquire
	// trick; scans move left-to-right. Run them against each other.
	tr := New[int64, int64](Config{Mode: ModeNone, LeafCapacity: 8, InternalFanout: 5, Synchronized: true})
	const n = 20000
	for i := int64(0); i < n; i++ {
		tr.Put(i, i)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := int64(rng.Intn(n))
				tr.Range(s, s+500, func(int64, int64) bool { return true })
			}
		}(int64(r))
	}
	// Delete every other key right-to-left so rightmost-child cases (which
	// need the left sibling) occur constantly.
	for i := int64(n - 1); i >= 0; i -= 2 {
		tr.Delete(i)
	}
	close(stop)
	wg.Wait()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != n/2 {
		t.Fatalf("Len = %d, want %d", tr.Len(), n/2)
	}
}

// TestConcurrentGapFillInserts drives the gap-fill insert path under the
// optimistic latch protocol: the tree is bulk-built from the even keys with
// spread interior leaves (every live slot has an interleaved gap nearby),
// then writers concurrently insert the interleaving odd keys — each one a
// mid-leaf insert that lands in or shifts toward a gap — while readers run
// point lookups and range scans through the optimistic path. Between-phase
// validation checks the bitmap/count/slot-order invariants the gap layout
// adds (see validateLeaf).
func TestConcurrentGapFillInserts(t *testing.T) {
	for _, mode := range []Mode{ModeNone, ModeQuIT} {
		t.Run(mode.String(), func(t *testing.T) {
			const (
				n       = 8000 // even keys in the prebuilt tree
				writers = 4
				readers = 4
			)
			cfg := syncConfig(mode)
			cfg.GapFraction = 0.25
			tr := New[int64, int64](cfg)
			evens := make([]int64, n)
			vals := make([]int64, n)
			for i := range evens {
				evens[i] = int64(2 * i)
				vals[i] = evens[i]
			}
			if err := tr.BuildFromSorted(evens, vals, 0.7); err != nil {
				t.Fatal(err)
			}

			var wg sync.WaitGroup
			stop := make(chan struct{})
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(77 + r)))
					for {
						select {
						case <-stop:
							return
						default:
						}
						k := int64(rng.Intn(2 * n))
						if v, ok := tr.Get(k); ok && v != k {
							panic("torn read: wrong value")
						}
						if k2, v2, ok := tr.Ceiling(k); ok && (v2 != k2 || k2 < k) {
							panic("torn ceiling probe")
						}
						prev, seen := int64(-1), 0
						tr.Scan(func(k, _ int64) bool {
							if k <= prev {
								panic("scan out of order")
							}
							prev = k
							seen++
							return seen < 256
						})
					}
				}(r)
			}
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					// Writer w owns odd keys with (i % writers) == w; shuffled
					// so neighbors in the same leaf race on the same gaps.
					idx := make([]int, 0, n/writers+1)
					for i := w; i < n; i += writers {
						idx = append(idx, i)
					}
					rng := rand.New(rand.NewSource(int64(177 + w)))
					rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
					for _, i := range idx {
						k := int64(2*i + 1)
						tr.Put(k, k)
					}
				}(w)
			}
			// Writers finish, then readers are told to stop.
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			go func() {
				// Stop readers once all writers have drained: writers are the
				// first `writers` wg entries; simplest is to wait for the full
				// key count to appear.
				for tr.Len() < 2*n {
				}
				close(stop)
			}()
			<-done

			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			if tr.Len() != 2*n {
				t.Fatalf("Len = %d, want %d", tr.Len(), 2*n)
			}
			for k := int64(0); k < 2*n; k++ {
				if v, ok := tr.Get(k); !ok || v != k {
					t.Fatalf("Get(%d) = (%d,%v)", k, v, ok)
				}
			}
		})
	}
}
