package core

import (
	"errors"
	"fmt"
	"sync"
)

// ErrNotSorted is returned by bulk operations when the input violates the
// strictly-increasing key requirement.
var ErrNotSorted = errors.New("core: bulk input keys must be strictly increasing")

// ErrNotAppend is returned by BulkAppend when the first input key does not
// exceed the tree's current maximum.
var ErrNotAppend = errors.New("core: bulk append keys must exceed the current maximum")

// ErrNotEmpty is returned by BuildFromSorted on a non-empty tree.
var ErrNotEmpty = errors.New("core: BuildFromSorted requires an empty tree")

// BulkAppend appends strictly-increasing entries whose keys all exceed the
// tree's current maximum, packing leaves to fill (a fraction of leaf
// capacity, clamped to [0.1, 1]; 1 packs leaves completely). This is the
// bulk-loading API the SWARE baseline uses for its opportunistic on-the-fly
// flushes. It requires external synchronization: bulk loads restructure the
// right spine wholesale.
func (t *Tree[K, V]) BulkAppend(keys []K, vals []V, fill float64) error {
	if len(keys) == 0 {
		return nil
	}
	if len(keys) != len(vals) {
		return fmt.Errorf("core: BulkAppend keys/vals length mismatch: %d vs %d", len(keys), len(vals))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			return ErrNotSorted
		}
	}
	if max, _, ok := t.Max(); ok && keys[0] <= max {
		return ErrNotAppend
	}
	if fill <= 0 {
		fill = 1
	}
	target := int(fill * float64(t.cfg.LeafCapacity))
	if target < t.cfg.LeafCapacity/10 {
		target = t.cfg.LeafCapacity / 10
	}
	if target < 1 {
		target = 1
	}
	if target > t.cfg.LeafCapacity {
		target = t.cfg.LeafCapacity
	}

	pos := 0
	// Top up the current tail leaf first.
	if tail := t.tail.Load(); target-tail.leafCount() > 0 {
		n := min(target-tail.leafCount(), len(keys))
		if cap(tail.keys)-len(tail.keys) < n {
			// Interior gaps consumed the tail room; squeeze them out so the
			// top-up is a straight append.
			//quitlint:allow gapwrite BulkAppend requires external synchronization (see doc comment); no concurrent readers exist
			tail.compact()
		}
		//quitlint:allow gapwrite BulkAppend requires external synchronization (see doc comment); no concurrent readers exist
		tail.appendDense(keys[:n], vals[:n])
		pos = n
		if tail == t.fp.leaf {
			t.fp.size = tail.leafCount()
		}
	}
	// Then chain fresh leaves onto the right spine. Interior leaves spread
	// their free slots as interleaved gaps (out-of-order keys arriving later
	// shift O(gap distance)); the final leaf — the new tail — stays dense so
	// subsequent appends extend its high-water mark.
	for pos < len(keys) {
		n := min(target, len(keys)-pos)
		leaf := t.newLeaf()
		if pos+n < len(keys) && n < t.cfg.LeafCapacity {
			leaf.setSpread(keys[pos:pos+n], vals[pos:pos+n])
		} else {
			leaf.setDense(keys[pos:pos+n], vals[pos:pos+n])
		}
		pos += n
		path := t.rightSpine()
		tail := path[len(path)-1]
		leaf.prev.Store(tail)
		tail.next.Store(leaf)
		t.tail.Store(leaf)
		t.propagateSplit(path, leaf.minKey(), leaf)
	}
	t.size.Add(int64(len(keys)))
	if t.cfg.Mode != ModeNone {
		t.resetFPToTail()
	}
	return nil
}

// rightSpine returns the root..tail path.
func (t *Tree[K, V]) rightSpine() []*node[K, V] {
	path := make([]*node[K, V], 0, t.height.Load())
	n := t.root.Load()
	for {
		path = append(path, n)
		if n.isLeaf() {
			return path
		}
		n = n.children[len(n.children)-1]
	}
}

// BuildFromSorted bulk-loads an empty tree bottom-up from strictly
// increasing entries, packing leaves to fill (see BulkAppend). It is the
// classical offline bulk-loading the paper contrasts with incremental
// ingestion (§1). Requires external synchronization.
func (t *Tree[K, V]) BuildFromSorted(keys []K, vals []V, fill float64) error {
	target, err := t.checkBuildInput(keys, vals, fill)
	if err != nil || len(keys) == 0 {
		return err
	}

	// Build the leaf level. The pre-existing empty root leaf is reused as
	// the first leaf.
	leaves := make([]*node[K, V], 0, len(keys)/target+1)
	first := t.head.Load()
	for pos := 0; pos < len(keys); {
		n := min(target, len(keys)-pos)
		var leaf *node[K, V]
		if len(leaves) == 0 {
			leaf = first
		} else {
			leaf = t.newLeaf()
			prev := leaves[len(leaves)-1]
			prev.next.Store(leaf)
			leaf.prev.Store(prev)
		}
		fillLeaf(leaf, keys[pos:pos+n], vals[pos:pos+n], pos+n < len(keys) && n < t.cfg.LeafCapacity)
		leaves = append(leaves, leaf)
		pos += n
	}
	t.finishBuild(leaves, len(keys))
	return nil
}

// checkBuildInput validates a BuildFromSorted input and resolves the
// per-leaf fill target (see BulkAppend for the fill semantics).
func (t *Tree[K, V]) checkBuildInput(keys []K, vals []V, fill float64) (target int, err error) {
	if t.Len() != 0 {
		return 0, ErrNotEmpty
	}
	if len(keys) != len(vals) {
		return 0, fmt.Errorf("core: BuildFromSorted keys/vals length mismatch: %d vs %d", len(keys), len(vals))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			return 0, ErrNotSorted
		}
	}
	if fill <= 0 {
		fill = 1
	}
	target = int(fill * float64(t.cfg.LeafCapacity))
	if target < 1 {
		target = 1
	}
	if target > t.cfg.LeafCapacity {
		target = t.cfg.LeafCapacity
	}
	return target, nil
}

// finishBuild installs a fully linked leaf level: head/tail pointers, the
// internal levels built bottom-up, and the fast-path reset.
func (t *Tree[K, V]) finishBuild(leaves []*node[K, V], total int) {
	t.head.Store(leaves[0])
	t.tail.Store(leaves[len(leaves)-1])

	// Build internal levels bottom-up until one node remains.
	level := leaves
	height := 1
	for len(level) > 1 {
		fanout := t.cfg.InternalFanout
		next := make([]*node[K, V], 0, len(level)/fanout+1)
		for pos := 0; pos < len(level); {
			n := min(fanout, len(level)-pos)
			// Avoid a dangling single-child node at the end of the level.
			if rem := len(level) - pos - n; rem == 1 {
				n--
			}
			in := t.newInternal()
			in.children = append(in.children, level[pos:pos+n]...)
			for i := pos + 1; i < pos+n; i++ {
				in.keys = append(in.keys, minKeyOf(level[i]))
			}
			next = append(next, in)
			pos += n
		}
		level = next
		height++
	}
	t.root.Store(level[0])
	t.height.Store(int32(height))
	t.size.Store(int64(total))
	if t.cfg.Mode != ModeNone {
		t.resetFPToTail()
	}
}

// BuildFromSortedParallel is BuildFromSorted with the leaf level
// constructed by `workers` goroutines. Each worker owns a contiguous range
// of leaf indices and fills its leaves independently (leaf i always holds
// entries [i*target, (i+1)*target)); the chain links, internal levels, and
// tree header are stitched single-threaded afterwards, so the resulting
// tree is byte-for-byte the shape BuildFromSorted produces. Requires
// external synchronization, like all bulk loads.
func (t *Tree[K, V]) BuildFromSortedParallel(keys []K, vals []V, fill float64, workers int) error {
	target, err := t.checkBuildInput(keys, vals, fill)
	if err != nil || len(keys) == 0 {
		return err
	}
	nLeaves := (len(keys) + target - 1) / target
	if workers <= 1 || nLeaves < 2*workers {
		return t.BuildFromSorted(keys, vals, fill)
	}

	leaves := make([]*node[K, V], nLeaves)
	first := t.head.Load()
	per := (nLeaves + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < nLeaves; lo += per {
		hi := min(lo+per, nLeaves)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for li := lo; li < hi; li++ {
				start := li * target
				end := min(start+target, len(keys))
				leaf := first
				if li > 0 {
					leaf = t.newLeaf() // slab-locked; safe concurrently
				}
				fillLeaf(leaf, keys[start:end], vals[start:end], li < nLeaves-1 && end-start < t.cfg.LeafCapacity)
				leaves[li] = leaf
			}
		}(lo, hi)
	}
	wg.Wait()
	for i := 1; i < nLeaves; i++ {
		leaves[i].prev.Store(leaves[i-1])
		leaves[i-1].next.Store(leaves[i])
	}
	t.finishBuild(leaves, len(keys))
	return nil
}

// fillLeaf populates a bulk-built leaf: interior leaves with free room are
// spread with interleaved gaps (mirroring BulkAppend's spine layout), the
// rightmost — and any completely full — leaf is packed dense. Both
// BuildFromSorted and BuildFromSortedParallel route through this so the
// parallel build stays shape-identical to the sequential one.
func fillLeaf[K Integer, V any](leaf *node[K, V], ks []K, vs []V, spread bool) {
	if spread {
		leaf.setSpread(ks, vs)
	} else {
		leaf.setDense(ks, vs)
	}
}

// minKeyOf returns the smallest key in n's subtree.
func minKeyOf[K Integer, V any](n *node[K, V]) K {
	for !n.isLeaf() {
		n = n.children[0]
	}
	return n.minKey()
}
