//go:build !race

package core

// Stress sizing for the plain build: more operations per round, since there
// is no race-detector slowdown to absorb.
const (
	stressRounds      = 4
	stressOpsPerRound = 2000
)
