package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// Property-based tests (testing/quick) over the core invariants.

// TestQuickModeEquivalence: for any operation sequence, all five designs
// hold exactly the same key-value contents — the fast path is a pure
// performance optimization.
func TestQuickModeEquivalence(t *testing.T) {
	type op struct {
		Key    int16
		Val    int32
		Delete bool
	}
	prop := func(ops []op) bool {
		trees := make([]*Tree[int64, int64], 0, len(allModes))
		for _, m := range allModes {
			trees = append(trees, New[int64, int64](Config{Mode: m, LeafCapacity: 4, InternalFanout: 4}))
		}
		oracle := map[int64]int64{}
		for _, o := range ops {
			k, v := int64(o.Key), int64(o.Val)
			for _, tr := range trees {
				if o.Delete {
					tr.Delete(k)
				} else {
					tr.Put(k, v)
				}
			}
			if o.Delete {
				delete(oracle, k)
			} else {
				oracle[k] = v
			}
		}
		want := make([]int64, 0, len(oracle))
		for k := range oracle {
			want = append(want, k)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for _, tr := range trees {
			if tr.Validate() != nil {
				return false
			}
			got := tr.Keys()
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
				if v, ok := tr.Get(got[i]); !ok || v != oracle[got[i]] {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(12))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInsertPermutation: any permutation of a key set yields a valid
// tree containing exactly that set, for the QuIT design with tiny nodes
// (maximum structural churn).
func TestQuickInsertPermutation(t *testing.T) {
	prop := func(seed int64, sizeRaw uint16) bool {
		n := int(sizeRaw)%3000 + 1
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(n)
		tr := New[int64, int64](Config{Mode: ModeQuIT, LeafCapacity: 4, InternalFanout: 4})
		for _, k := range perm {
			tr.Put(int64(k), int64(k))
		}
		if tr.Len() != n || tr.Validate() != nil {
			return false
		}
		keys := tr.Keys()
		for i, k := range keys {
			if k != int64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRangeMatchesScan: Range(lo,hi) always equals the filtered Scan.
func TestQuickRangeMatchesScan(t *testing.T) {
	tr := New[int64, int64](Config{Mode: ModeQuIT, LeafCapacity: 8, InternalFanout: 5})
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5000; i++ {
		tr.Put(int64(rng.Intn(20000)), int64(i))
	}
	prop := func(a, b int16) bool {
		lo, hi := int64(a), int64(b)
		var fromRange []int64
		tr.Range(lo, hi, func(k, _ int64) bool {
			fromRange = append(fromRange, k)
			return true
		})
		var fromScan []int64
		tr.Scan(func(k, _ int64) bool {
			if k >= lo && k < hi {
				fromScan = append(fromScan, k)
			}
			return true
		})
		if len(fromRange) != len(fromScan) {
			return false
		}
		for i := range fromRange {
			if fromRange[i] != fromScan[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeleteReinsert: deleting and reinserting any subset leaves the
// tree equal to the original contents.
func TestQuickDeleteReinsert(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New[int64, int64](Config{Mode: ModeQuIT, LeafCapacity: 4, InternalFanout: 4})
		const n = 800
		for i := int64(0); i < n; i++ {
			tr.Put(i, i)
		}
		subset := rng.Perm(n)[:n/3]
		for _, k := range subset {
			if _, ok := tr.Delete(int64(k)); !ok {
				return false
			}
		}
		if tr.Validate() != nil {
			return false
		}
		for _, k := range subset {
			tr.Put(int64(k), int64(k))
		}
		if tr.Len() != n || tr.Validate() != nil {
			return false
		}
		keys := tr.Keys()
		for i := range keys {
			if keys[i] != int64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickExtremeKeyDomains: keys near the int64 extremes must not break
// the IKR float math or the split policies.
func TestQuickExtremeKeyDomains(t *testing.T) {
	bases := []int64{
		0, 1 << 40, -(1 << 40), 1<<62 - 100000, -(1 << 62),
	}
	for _, base := range bases {
		tr := New[int64, int64](Config{Mode: ModeQuIT, LeafCapacity: 8, InternalFanout: 5})
		for i := int64(0); i < 2000; i++ {
			tr.Put(base+i*3, i)
		}
		// A few far outliers within the domain.
		tr.Put(base+1<<30, 0)
		for i := int64(2000); i < 2500; i++ {
			tr.Put(base+i*3, i)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("base %d: %v", base, err)
		}
		if tr.Len() != 2501 {
			t.Fatalf("base %d: Len = %d", base, tr.Len())
		}
	}
}

// TestQuickUnsignedKeys exercises the uint64 instantiation, including keys
// above 2^63 (where float64 conversion rounds).
func TestQuickUnsignedKeys(t *testing.T) {
	tr := New[uint64, uint64](Config{Mode: ModeQuIT, LeafCapacity: 8, InternalFanout: 5})
	base := uint64(1) << 63
	for i := uint64(0); i < 3000; i++ {
		tr.Put(base+i*5, i)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 3000; i += 117 {
		if v, ok := tr.Get(base + i*5); !ok || v != i {
			t.Fatalf("Get: (%d,%v)", v, ok)
		}
	}
	st := tr.Stats()
	if st.FastInsertFraction() < 0.99 {
		t.Fatalf("sorted uint64 fast fraction %.3f", st.FastInsertFraction())
	}
}
