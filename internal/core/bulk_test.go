package core

import (
	"math/rand"
	"testing"
)

func TestBuildFromSorted(t *testing.T) {
	for _, fill := range []float64{0.5, 0.8, 1.0} {
		tr := New[int64, int64](Config{Mode: ModeQuIT, LeafCapacity: 16, InternalFanout: 8})
		n := 10000
		keys := make([]int64, n)
		vals := make([]int64, n)
		for i := range keys {
			keys[i] = int64(i) * 2
			vals[i] = int64(i)
		}
		if err := tr.BuildFromSorted(keys, vals, fill); err != nil {
			t.Fatalf("fill %v: %v", fill, err)
		}
		if tr.Len() != n {
			t.Fatalf("Len = %d", tr.Len())
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("fill %v: %v", fill, err)
		}
		occ := tr.AvgLeafOccupancy()
		if occ < fill-0.1 || occ > fill+0.1 {
			t.Fatalf("fill %v: occupancy %.2f", fill, occ)
		}
		for i := 0; i < n; i += 97 {
			if v, ok := tr.Get(keys[i]); !ok || v != vals[i] {
				t.Fatalf("Get(%d) = (%d,%v)", keys[i], v, ok)
			}
		}
		if _, ok := tr.Get(1); ok {
			t.Fatal("odd key present")
		}
		// The tree remains fully usable for inserts and deletes.
		tr.Put(1, 100)
		tr.Delete(keys[n/2])
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBuildFromSortedErrors(t *testing.T) {
	tr := New[int64, int64](smallConfig(ModeQuIT))
	if err := tr.BuildFromSorted([]int64{1, 1}, []int64{1, 1}, 1); err != ErrNotSorted {
		t.Fatalf("duplicate keys: err = %v", err)
	}
	if err := tr.BuildFromSorted([]int64{1, 2}, []int64{1}, 1); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := tr.BuildFromSorted(nil, nil, 1); err != nil {
		t.Fatalf("empty build: %v", err)
	}
	tr.Put(5, 5)
	if err := tr.BuildFromSorted([]int64{1}, []int64{1}, 1); err != ErrNotEmpty {
		t.Fatalf("non-empty tree: err = %v", err)
	}
}

func TestBulkAppend(t *testing.T) {
	tr := New[int64, int64](Config{Mode: ModeQuIT, LeafCapacity: 16, InternalFanout: 8})
	for i := int64(0); i < 500; i++ {
		tr.Put(i, i)
	}
	keys := make([]int64, 2000)
	vals := make([]int64, 2000)
	for i := range keys {
		keys[i] = 500 + int64(i)
		vals[i] = int64(i)
	}
	if err := tr.BulkAppend(keys, vals, 1.0); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(keys); i += 53 {
		if v, ok := tr.Get(keys[i]); !ok || v != vals[i] {
			t.Fatalf("Get(%d) = (%d,%v)", keys[i], v, ok)
		}
	}
	// Fast path keeps working after a bulk append.
	tr.ResetCounters()
	for i := int64(2500); i < 3000; i++ {
		tr.Put(i, i)
	}
	if f := tr.Stats().FastInsertFraction(); f < 0.99 {
		t.Fatalf("post-bulk fast fraction %.3f", f)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkAppendErrors(t *testing.T) {
	tr := New[int64, int64](smallConfig(ModeQuIT))
	tr.Put(100, 1)
	if err := tr.BulkAppend([]int64{50}, []int64{1}, 1); err != ErrNotAppend {
		t.Fatalf("non-append keys: err = %v", err)
	}
	if err := tr.BulkAppend([]int64{200, 150}, []int64{1, 2}, 1); err != ErrNotSorted {
		t.Fatalf("unsorted keys: err = %v", err)
	}
	if err := tr.BulkAppend([]int64{200}, nil, 1); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := tr.BulkAppend(nil, nil, 1); err != nil {
		t.Fatalf("empty append: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkAppendOnEmptyTree(t *testing.T) {
	tr := New[int64, int64](Config{Mode: ModeQuIT, LeafCapacity: 8, InternalFanout: 5})
	keys := make([]int64, 300)
	vals := make([]int64, 300)
	for i := range keys {
		keys[i] = int64(i)
		vals[i] = int64(i) * 7
	}
	if err := tr.BulkAppend(keys, vals, 0.7); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 300 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestBulkAppendInterleavedWithInserts(t *testing.T) {
	// SWARE's usage pattern: alternating top-inserts and bulk appends.
	tr := New[int64, int64](Config{Mode: ModeNone, LeafCapacity: 16, InternalFanout: 8})
	rng := rand.New(rand.NewSource(6))
	next := int64(0)
	total := 0
	for round := 0; round < 50; round++ {
		if round%2 == 0 {
			n := rng.Intn(200) + 1
			keys := make([]int64, n)
			vals := make([]int64, n)
			for i := range keys {
				keys[i] = next
				vals[i] = next
				next++
			}
			if err := tr.BulkAppend(keys, vals, 0.9); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			total += n
		} else {
			for i := 0; i < 50; i++ {
				tr.Put(next, next)
				next++
				total++
			}
		}
	}
	if tr.Len() != total {
		t.Fatalf("Len = %d, want %d", tr.Len(), total)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDescribeShape(t *testing.T) {
	tr := New[int64, int64](Config{Mode: ModeQuIT, LeafCapacity: 8, InternalFanout: 5})
	for i := int64(0); i < 1000; i++ {
		tr.Put(i, i)
	}
	s := tr.DescribeShape()
	if s.Height != tr.Height() {
		t.Fatalf("shape height %d, tree %d", s.Height, tr.Height())
	}
	if len(s.NodesPerLevel) != s.Height {
		t.Fatalf("levels %d, height %d", len(s.NodesPerLevel), s.Height)
	}
	if s.NodesPerLevel[0] != 1 {
		t.Fatalf("root level has %d nodes", s.NodesPerLevel[0])
	}
	if int64(s.LeafCount) != tr.Stats().Leaves {
		t.Fatalf("leaf count %d vs %d", s.LeafCount, tr.Stats().Leaves)
	}
	sum := 0
	for _, c := range s.LeafOccupancy {
		sum += c
	}
	if sum != s.LeafCount {
		t.Fatalf("histogram sums to %d, want %d", sum, s.LeafCount)
	}
	if s.AvgOccupancy < 0.8 {
		t.Fatalf("sorted QuIT shape occupancy %.2f", s.AvgOccupancy)
	}
	if s.MinLeafEntries < 1 || s.MaxLeafEntries > 8 {
		t.Fatalf("min/max leaf entries %d/%d", s.MinLeafEntries, s.MaxLeafEntries)
	}
}

func TestDumpShapeWrites(t *testing.T) {
	tr := New[int64, int64](Config{Mode: ModeQuIT, LeafCapacity: 8, InternalFanout: 5})
	for i := int64(0); i < 200; i++ {
		tr.Put(i, i)
	}
	var buf testWriter
	tr.DumpShape(&buf)
	out := string(buf)
	for _, want := range []string{"QuIT", "level 0", "fast path", "inserts:"} {
		if !contains(out, want) {
			t.Fatalf("DumpShape output missing %q:\n%s", want, out)
		}
	}
}

type testWriter []byte

func (w *testWriter) Write(p []byte) (int, error) {
	*w = append(*w, p...)
	return len(p), nil
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
