package core

import (
	"math/rand"
	"testing"
)

// Fast-path policy tests. These are white-box: they inspect t.fp and the
// policy counters to pin the behaviors of §3 and §4 of the paper.

func TestTailFastPathTracksRightmostLeaf(t *testing.T) {
	tr := New[int64, int64](Config{Mode: ModeTail, LeafCapacity: 8, InternalFanout: 5})
	for i := int64(0); i < 100; i++ {
		tr.Put(i, i)
	}
	if tr.fp.leaf != tr.tail.Load() {
		t.Fatal("tail fast path does not point at the tail leaf")
	}
	if tr.fp.hasMax {
		t.Fatal("tail fast path has an upper bound")
	}
	// An out-of-order insert must be a top-insert and must not move fp.
	before := tr.fp.leaf
	tr.Put(-5, 0)
	if tr.fp.leaf != before {
		t.Fatal("top-insert moved the tail fast path")
	}
	st := tr.Stats()
	if st.TopInserts != 1 {
		t.Fatalf("TopInserts = %d, want 1", st.TopInserts)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTailGoesStaleOnOutliers(t *testing.T) {
	// Fig. 3: once one leaf's worth of outliers is in the tail, near-sorted
	// keys can no longer use the tail fast path.
	tr := New[int64, int64](Config{Mode: ModeTail, LeafCapacity: 8, InternalFanout: 5})
	for i := int64(0); i < 64; i++ {
		tr.Put(i, i)
	}
	// A full leaf of far-away outliers captures the tail.
	for i := int64(0); i < 10; i++ {
		tr.Put(100000+i, i)
	}
	tr.ResetCounters()
	for i := int64(64); i < 128; i++ {
		tr.Put(i, i)
	}
	st := tr.Stats()
	if st.FastInserts != 0 {
		t.Fatalf("stale tail still served %d fast-inserts", st.FastInserts)
	}
	if st.TopInserts != 64 {
		t.Fatalf("TopInserts = %d, want 64", st.TopInserts)
	}
}

func TestLILRecoversAfterOutlier(t *testing.T) {
	// Fig. 4b: after a top-insert, lil follows the last insertion leaf, so
	// an in-order run after a single outlier costs exactly two top-inserts
	// (one for the outlier, one to come back).
	tr := New[int64, int64](Config{Mode: ModeLIL, LeafCapacity: 8, InternalFanout: 5})
	for i := int64(0); i < 64; i++ {
		tr.Put(i, i)
	}
	tr.ResetCounters()
	// The outlier must be out of lil's range: lil is the tail here (open
	// upper bound), so send it far left.
	tr.Put(-100000, 0) // outlier: top-insert, lil moves to the outlier leaf
	tr.Put(64, 64)     // in-order: top-insert, lil comes back
	for i := int64(65); i < 96; i++ {
		tr.Put(i, i) // in-order run rides the fast path again
	}
	st := tr.Stats()
	if st.TopInserts != 2 {
		t.Fatalf("TopInserts = %d, want 2", st.TopInserts)
	}
	if st.FastInserts != 31 {
		t.Fatalf("FastInserts = %d, want 31", st.FastInserts)
	}
}

func TestLILSplitFollowsInsertedKey(t *testing.T) {
	// Fig. 4c-e: when the lil leaf splits, lil follows the half that
	// received the key.
	tr := New[int64, int64](Config{Mode: ModeLIL, LeafCapacity: 8, InternalFanout: 5})
	for i := int64(0); i < 8; i++ {
		tr.Put(i*10, i)
	}
	// Leaf [0..70] is full; key 75 >= split key 40 goes right.
	tr.Put(75, 0)
	if tr.fp.leaf.keys[0] != 40 {
		t.Fatalf("lil leaf starts at %d, want 40", tr.fp.leaf.keys[0])
	}
	// Fill the right leaf, then split with a key that stays left.
	for _, k := range []int64{76, 77, 78} {
		tr.Put(k, 0)
	}
	// Right leaf is [40,50,60,70,75,76,77,78]; key 41 < split key 75 stays.
	tr.Put(41, 0)
	if got := tr.fp.leaf.keys[0]; got != 40 {
		t.Fatalf("lil leaf starts at %d after left-staying split, want 40", got)
	}
	if !tr.fp.hasMax || tr.fp.max != 75 {
		t.Fatalf("lil max = (%v,%v), want (75,true)", tr.fp.max, tr.fp.hasMax)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPoleSurvivesOutlierBurst(t *testing.T) {
	// The core QuIT behavior (§4.2): a burst of outliers splits off into
	// pole_next, the pole pointer stays, and subsequent in-order keys keep
	// fast-inserting — unlike lil, which would chase the outliers.
	tr := New[int64, int64](Config{Mode: ModeQuIT, LeafCapacity: 8, InternalFanout: 5, ResetThreshold: 1000})
	for i := int64(0); i < 20; i++ {
		tr.Put(i, i)
	}
	// Outlier burst fills the pole (it is the tail, so they fast-insert).
	for i := int64(0); i < 8; i++ {
		tr.Put(100000+i*10, i)
	}
	if tr.fp.leaf.keys[0] >= 100000 {
		t.Fatalf("pole followed the outliers: min key %d", tr.fp.leaf.keys[0])
	}
	if !tr.fp.hasMax {
		t.Fatal("outlier split left the pole unbounded")
	}
	tr.ResetCounters()
	// In-order keys continue to ride the fast path.
	for i := int64(20); i < 40; i++ {
		tr.Put(i, i)
	}
	st := tr.Stats()
	if st.TopInserts != 0 {
		t.Fatalf("in-order keys after outlier burst: %d top-inserts, want 0", st.TopInserts)
	}
	if st.VariableSplits == 0 {
		t.Fatal("no variable splits recorded")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPoleCatchUpToPredictedOutliers(t *testing.T) {
	// §4.2 "Catching Up": a top-insert into the pole's successor leaf that
	// IKR no longer judges an outlier advances the pole without a split.
	// Near-sorted ingestion exercises this whenever the in-order frontier
	// crosses into a leaf created earlier by displaced entries.
	rng := rand.New(rand.NewSource(3))
	sorted := make([]int64, 20000)
	for i := range sorted {
		sorted[i] = int64(i)
	}
	keys := nearSorted(sorted, 0.10, 1.0, rng)
	tr := New[int64, int64](Config{Mode: ModeQuIT, LeafCapacity: 32, InternalFanout: 16})
	for _, k := range keys {
		tr.Put(k, k)
	}
	st := tr.Stats()
	if st.CatchUps == 0 {
		t.Fatal("pole never caught up to its successor leaf")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}

	// The ablation toggle changes behavior but must stay correct.
	tr2 := New[int64, int64](Config{Mode: ModeQuIT, LeafCapacity: 32, InternalFanout: 16, UnconditionalCatchUp: true})
	for _, k := range keys {
		tr2.Put(k, k)
	}
	if tr2.Stats().CatchUps == 0 {
		t.Fatal("unconditional catch-up never fired")
	}
	if err := tr2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestQuITResetRecoversStalePole(t *testing.T) {
	// §4.3: consecutive top-inserts beyond TR reset the pole to the leaf of
	// the latest insert. pole-B+-tree (ModePOLE) never resets.
	run := func(mode Mode) Stats {
		tr := New[int64, int64](Config{Mode: mode, LeafCapacity: 8, InternalFanout: 5})
		// Establish a pole far to the right.
		for i := int64(0); i < 64; i++ {
			tr.Put(1000000+i, i)
		}
		// Dense in-order stream far below: the pole is permanently stale.
		for i := int64(0); i < 512; i++ {
			tr.Put(i, i)
		}
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		return tr.Stats()
	}
	quit := run(ModeQuIT)
	pole := run(ModePOLE)
	if quit.Resets == 0 {
		t.Fatal("QuIT never reset its stale pole")
	}
	if pole.Resets != 0 {
		t.Fatalf("pole-B+-tree reset %d times, want 0", pole.Resets)
	}
	if quit.FastInserts <= pole.FastInserts {
		t.Fatalf("reset gave no benefit: QuIT %d fast-inserts vs pole %d",
			quit.FastInserts, pole.FastInserts)
	}
}

func TestFastInsertOrderingAcrossModes(t *testing.T) {
	// Fig. 9 shape: fraction of fast-inserts should order
	// QuIT >= lil >= tail for near-sorted data.
	frac := func(mode Mode, keys []int64) float64 {
		tr := New[int64, int64](Config{Mode: mode, LeafCapacity: 32, InternalFanout: 16})
		for _, k := range keys {
			tr.Put(k, k)
		}
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		return tr.Stats().FastInsertFraction()
	}
	rng := rand.New(rand.NewSource(1))
	sorted := make([]int64, 20000)
	for i := range sorted {
		sorted[i] = int64(i)
	}
	keys := nearSorted(sorted, 0.25, 1.0, rng)

	tail := frac(ModeTail, keys)
	lil := frac(ModeLIL, keys)
	quit := frac(ModeQuIT, keys)
	if !(quit > lil && lil > tail) {
		t.Fatalf("fast-insert fractions out of order: QuIT=%.3f lil=%.3f tail=%.3f", quit, lil, tail)
	}
	// Eq. 1: lil ~= (1-k)^2 = 0.5625 for k=25% (the swap-based generator
	// produces ~2 out-of-order entries per swap, so k here is approximate).
	if lil < 0.30 || lil > 0.80 {
		t.Fatalf("lil fraction %.3f outside plausible (1-k)^2 band", lil)
	}
	if quit < lil+0.02 {
		t.Fatalf("QuIT %.3f not meaningfully above lil %.3f", quit, lil)
	}
}

func TestRedistributionIntoUnderfullPrev(t *testing.T) {
	// Fig. 7c: when pole_prev is under half full at pole-split time,
	// entries flow backward instead of splitting.
	found := false
	for seed := int64(0); seed < 30 && !found; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := New[int64, int64](Config{Mode: ModeQuIT, LeafCapacity: 8, InternalFanout: 5})
		key := int64(0)
		for burst := 0; burst < 400; burst++ {
			if rng.Intn(4) == 0 {
				// Outlier burst far ahead.
				base := key + 10000
				for i := int64(0); i < int64(rng.Intn(6)+3); i++ {
					tr.Put(base+i, 0)
				}
			}
			for i := 0; i < rng.Intn(12)+4; i++ {
				tr.Put(key, key)
				key += int64(rng.Intn(3) + 1)
			}
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if tr.Stats().Redistributions > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no workload triggered a redistribution in 30 seeds")
	}
}

func TestFPPathValidation(t *testing.T) {
	tr := New[int64, int64](Config{Mode: ModeQuIT, LeafCapacity: 8, InternalFanout: 5})
	for i := int64(0); i < 1000; i++ {
		tr.Put(i, i)
	}
	// The cached path may legitimately go stale (internal splits during
	// propagation restructure ancestors); fastSplitPath must then repair it.
	repaired := tr.fastSplitPath(tr.fp.leaf.keys[0])
	if repaired == nil || repaired[len(repaired)-1] != tr.fp.leaf || repaired[0] != tr.root.Load() {
		t.Fatal("fastSplitPath did not produce a valid path")
	}
	if !tr.fpPathValid() {
		t.Fatal("fp path invalid right after repair")
	}
	// Splits far from the pole restructure ancestors; the cached path must
	// either stay exact or be detected as stale — never silently wrong.
	for i := int64(0); i < 500; i++ {
		tr.Put(-i, i)
	}
	if tr.fpPathValid() {
		p := tr.fp.path
		if p[0] != tr.root.Load() || p[len(p)-1] != tr.fp.leaf {
			t.Fatal("fpPathValid accepted a wrong path")
		}
	}
	for i := int64(1000); i < 2000; i++ {
		tr.Put(i, i)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPoleDeleteLazyRebalance(t *testing.T) {
	tr := New[int64, int64](Config{Mode: ModeQuIT, LeafCapacity: 8, InternalFanout: 5})
	for i := int64(0); i < 64; i++ {
		tr.Put(i, i)
	}
	pole := tr.fp.leaf
	// Delete from the pole down to one entry: no eager rebalance.
	keys := append([]int64(nil), pole.keys...)
	for _, k := range keys[1:] {
		tr.Delete(k)
	}
	if tr.fp.leaf != pole {
		t.Fatal("pole moved during lazy deletes")
	}
	if tr.Stats().Merges != 0 {
		t.Fatal("pole deletes triggered eager merges")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Deleting the last entry forces recovery.
	tr.Delete(keys[0])
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestVariableSplitKeepsLeafAtLeastHalfFullOnSorted(t *testing.T) {
	// Fig. 7a: the split leaf (left) stays at least half full; occupancy on
	// fully sorted data approaches 100%.
	tr := New[int64, int64](Config{Mode: ModeQuIT, LeafCapacity: 16, InternalFanout: 8})
	for i := int64(0); i < 4096; i++ {
		tr.Put(i, i)
	}
	n := tr.head.Load()
	for n != nil && n.next.Load() != nil { // all but the tail
		if len(n.keys) < 8 {
			t.Fatalf("leaf with %d < 8 entries on fully sorted ingestion", len(n.keys))
		}
		n = n.next.Load()
	}
	if occ := tr.AvgLeafOccupancy(); occ < 0.9 {
		t.Fatalf("occupancy %.2f, want >= 0.9", occ)
	}
}

func TestBoundsRejectOutOfRangeFastInserts(t *testing.T) {
	// Keys outside [fp_min, fp_max) must take the top path even when the
	// fast-path leaf has room.
	tr := New[int64, int64](Config{Mode: ModeLIL, LeafCapacity: 8, InternalFanout: 5})
	for i := int64(0); i < 32; i++ {
		tr.Put(i*2, i)
	}
	tr.ResetCounters()
	tr.Put(3, 3) // far left of the current lil leaf
	st := tr.Stats()
	if st.TopInserts != 1 || st.FastInserts != 0 {
		t.Fatalf("out-of-range key: top=%d fast=%d, want 1/0", st.TopInserts, st.FastInserts)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMaxFillLeavesHeadroom(t *testing.T) {
	// §5.2.1's tuning note: cap the variable split so sorted ingestion
	// leaves headroom for future out-of-order entries.
	packed := New[int64, int64](Config{Mode: ModeQuIT, LeafCapacity: 20, InternalFanout: 8})
	capped := New[int64, int64](Config{Mode: ModeQuIT, LeafCapacity: 20, InternalFanout: 8, MaxFill: 0.8})
	for i := int64(0); i < 20000; i++ {
		packed.Put(i*4, i)
		capped.Put(i*4, i)
	}
	po, co := packed.AvgLeafOccupancy(), capped.AvgLeafOccupancy()
	if po < 0.9 {
		t.Fatalf("packed occupancy %.2f", po)
	}
	if co < 0.70 || co > 0.88 {
		t.Fatalf("capped occupancy %.2f, want ~0.8", co)
	}
	// Scatter out-of-order entries into the packed region: the capped tree
	// absorbs them with fewer splits.
	packed.ResetCounters()
	capped.ResetCounters()
	for i := int64(0); i < 5000; i++ {
		k := (i*16807)%20000*4 + 1
		packed.Put(k, i)
		capped.Put(k, i)
	}
	if err := packed.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := capped.Validate(); err != nil {
		t.Fatal(err)
	}
	ps, cs := packed.Stats().LeafSplits, capped.Stats().LeafSplits
	if cs >= ps {
		t.Fatalf("MaxFill headroom did not reduce splits: capped %d vs packed %d", cs, ps)
	}
}

func TestMaxFillClamping(t *testing.T) {
	cfg := Config{Mode: ModeQuIT, MaxFill: 0.2}.withDefaults()
	if cfg.MaxFill != 0.5 {
		t.Fatalf("MaxFill = %v, want clamp to 0.5", cfg.MaxFill)
	}
	cfg = Config{Mode: ModeQuIT, MaxFill: 1.7}.withDefaults()
	if cfg.MaxFill != 1 {
		t.Fatalf("MaxFill = %v, want clamp to 1", cfg.MaxFill)
	}
	cfg = Config{}.withDefaults()
	if cfg.MaxFill != 1 {
		t.Fatalf("default MaxFill = %v", cfg.MaxFill)
	}
}
