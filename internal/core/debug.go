package core

import (
	"fmt"
	"io"
)

// Shape describes the tree's structure for inspection tools.
type Shape struct {
	Height         int
	NodesPerLevel  []int // root level first
	LeafCount      int
	LeafOccupancy  []int // histogram over 10 buckets of fill fraction
	AvgOccupancy   float64
	MinLeafEntries int
	MaxLeafEntries int
}

// DescribeShape walks the tree and summarizes its structure. Not safe to
// run concurrently with writers.
func (t *Tree[K, V]) DescribeShape() Shape {
	s := Shape{Height: t.Height(), MinLeafEntries: int(^uint(0) >> 1)}
	level := []*node[K, V]{t.root.Load()}
	for len(level) > 0 {
		s.NodesPerLevel = append(s.NodesPerLevel, len(level))
		var next []*node[K, V]
		for _, n := range level {
			if n.isLeaf() {
				continue
			}
			next = append(next, n.children...)
		}
		level = next
	}
	s.LeafOccupancy = make([]int, 10)
	entries := 0
	for n := t.head.Load(); n != nil; n = n.next.Load() {
		s.LeafCount++
		cnt := n.leafCount()
		entries += cnt
		if cnt < s.MinLeafEntries {
			s.MinLeafEntries = cnt
		}
		if cnt > s.MaxLeafEntries {
			s.MaxLeafEntries = cnt
		}
		b := cnt * 10 / t.cfg.LeafCapacity
		if b > 9 {
			b = 9
		}
		s.LeafOccupancy[b]++
	}
	if s.LeafCount > 0 {
		s.AvgOccupancy = float64(entries) / float64(s.LeafCount) / float64(t.cfg.LeafCapacity)
	} else {
		s.MinLeafEntries = 0
	}
	return s
}

// DumpShape renders DescribeShape plus the fast-path state to w.
func (t *Tree[K, V]) DumpShape(w io.Writer) {
	s := t.DescribeShape()
	fmt.Fprintf(w, "%s: %d entries, height %d\n", t.cfg.Mode, t.Len(), s.Height)
	for i, c := range s.NodesPerLevel {
		kind := "internal"
		if i == len(s.NodesPerLevel)-1 {
			kind = "leaf"
		}
		fmt.Fprintf(w, "  level %d: %6d %s nodes\n", i, c, kind)
	}
	fmt.Fprintf(w, "  leaf occupancy: avg %.1f%%, min %d, max %d of %d\n",
		s.AvgOccupancy*100, s.MinLeafEntries, s.MaxLeafEntries, t.cfg.LeafCapacity)
	fmt.Fprintf(w, "  histogram (0-100%% fill):")
	for _, c := range s.LeafOccupancy {
		fmt.Fprintf(w, " %d", c)
	}
	fmt.Fprintln(w)
	if t.cfg.Mode != ModeNone && t.fp.leaf != nil {
		fp := &t.fp
		fmt.Fprintf(w, "  fast path: leaf id=%d size=%d", fp.leaf.id, fp.size)
		if fp.hasMin {
			fmt.Fprintf(w, " min=%v", fp.min)
		}
		if fp.hasMax {
			fmt.Fprintf(w, " max=%v", fp.max)
		}
		if fp.prevValid {
			fmt.Fprintf(w, " prev(id=%d size=%d min=%v)", fp.prev.id, fp.prevSize, fp.prevMin)
		}
		fmt.Fprintf(w, " fails=%d\n", fp.fails)
	}
	st := t.Stats()
	fmt.Fprintf(w, "  inserts: fast=%d top=%d (%.1f%% fast) updates=%d\n",
		st.FastInserts, st.TopInserts, st.FastInsertFraction()*100, st.Updates)
	fmt.Fprintf(w, "  splits: leaf=%d internal=%d variable=%d redistributions=%d resets=%d catchups=%d\n",
		st.LeafSplits, st.InternalSplits, st.VariableSplits, st.Redistributions, st.Resets, st.CatchUps)
}
