package core

import (
	"fmt"
	"slices"
)

// batch.go is the batched write path: PutBatch / ApplySorted ingest a group
// of entries with per-run rather than per-key overhead. The batch is sorted
// once, split into per-leaf runs (one descent per run boundary, with the
// fast-path metadata short-circuiting the descent for the in-order run the
// same way it does for single-key inserts), and each run is installed under
// a single latch acquisition with one merged memmove into the leaf slice.
// An overfull leaf is carved into k leaves in one pass by a multi-way split
// that generalizes splitForInsert; pivots propagate upward level by level,
// splitting overfull internal nodes multi-way too.
//
// Semantics are exactly those of calling Put sequentially in the input
// order: later duplicates overwrite earlier ones, and results[i] reports
// whether keys[i] found an existing entry (a prior occurrence in the same
// batch counts).

// PutResult reports the outcome of one position of a batched insertion:
// whether the key already existed (in the tree, or earlier in the same
// batch) and was overwritten.
type PutResult struct {
	Existed bool
}

// PutBatch inserts the given entries, overwriting existing keys, and
// returns one PutResult per input position with Put's sequential
// semantics. It panics if the slices have different lengths. The batch is
// sorted internally (the input slices are not modified); pre-sorted input
// skips the sort — use ApplySorted when sortedness is guaranteed.
//
// Concurrency matches Put: safe with concurrent readers and writers when
// the tree is Synchronized. A run that needs structural changes latches
// its full descent path, so very large batches serialize against other
// writers for the duration of a run; readers stay lock-free throughout.
func (t *Tree[K, V]) PutBatch(keys []K, vals []V) []PutResult {
	if len(keys) != len(vals) {
		panic(errBatchLenMismatch(len(keys), len(vals)).Error())
	}
	if len(keys) == 0 {
		return nil
	}
	results := make([]PutResult, len(keys))
	s := t.getScratch()
	sk, sv, ord, dup := t.sortedView(keys, vals, s)
	t.applySortedBatch(sk, sv, results, ord, dup, s)
	t.scratch.Put(s)
	return results
}

// sortedView produces the batch in sorted key order with one adaptive
// classification scan: it peels the ascending backbone from the displaced
// outliers. A fully sorted batch (no outliers) skips the sort machinery
// outright; a near-sorted one sorts only its outliers and merges them back
// in one linear pass — the O(n log n) term shrinks to O(outliers log
// outliers). A batch that is not actually near-sorted (backbone shorter
// than 3/4) falls back to the full pair sort. Dup detection rides along on
// whichever pass runs, so the dedup stage never rescans. ord maps sorted
// positions back to input positions (nil when the input was already
// sorted); the returned slices alias s (or the input) and die with it.
func (t *Tree[K, V]) sortedView(keys []K, vals []V, s *batchScratch[K, V]) ([]K, []V, []int, bool) {
	outliers, dup := classifyOutliers(keys, s)
	switch {
	case len(outliers) == 0:
		return keys, vals, nil, dup
	case len(outliers) <= len(keys)/4:
		// classify's dup covers backbone-adjacent equals; the merge reports
		// pairs an outlier participates in. Together they cover every
		// adjacent pair of the merged sequence.
		sk, sv, ord, mdup := mergeOutliers(keys, vals, outliers, s)
		return sk, sv, ord, dup || mdup
	default:
		// Sort (key, origin) pairs, stably, so equal keys keep input order
		// and last-write-wins falls out of taking the final element of each
		// group. The pair sort keeps comparisons monomorphic (no
		// reflection-based swapping, unlike sort.SliceStable) — this is the
		// whole batch's O(n log n) term, so it has to be cheap.
		ents := growEnts(&s.ents, len(keys))
		for i, k := range keys {
			ents[i] = batchEnt[K]{k, int32(i)}
		}
		sortEnts(ents)
		ord := grow(&s.ord, len(keys))
		sk := grow(&s.sk, len(keys))
		sv := grow(&s.sv, len(keys))
		dup = false
		for i, e := range ents {
			ord[i] = int(e.o)
			sk[i] = e.k
			sv[i] = vals[e.o]
			dup = dup || (i > 0 && e.k == ents[i-1].k)
		}
		return sk, sv, ord, dup
	}
}

// batchScratch is the recycled working memory of one PutBatch call: the
// permutation-sort buffers, the sorted key/value/order views, and the
// dedup/existence arrays. Everything in it is dead the moment PutBatch
// returns — installed runs copy out of these slices, never alias them —
// so recycling through the tree's sync.Pool is safe, and the pool's
// per-GC drain bounds how long stale values stay pinned.
type batchScratch[K Integer, V any] struct {
	ents    []batchEnt[K]
	out     []int
	sk      []K
	sv      []V
	ord     []int
	uk      []K
	uv      []V
	first   []int
	existed []bool
	tk      []K // multi-way split merge scratch
	tv      []V
	xk      []K // multi-way split live-suffix extraction scratch
	xv      []V
}

func (t *Tree[K, V]) getScratch() *batchScratch[K, V] {
	if s, ok := t.scratch.Get().(*batchScratch[K, V]); ok {
		return s
	}
	return &batchScratch[K, V]{}
}

// grow returns (*sp)[:n], reallocating only when capacity is short.
// Contents are unspecified; callers overwrite every position.
func grow[E any](sp *[]E, n int) []E {
	if cap(*sp) < n {
		*sp = make([]E, n, n+n/2)
	}
	*sp = (*sp)[:n]
	return *sp
}

func growEnts[K Integer](sp *[]batchEnt[K], n int) []batchEnt[K] {
	if cap(*sp) < n {
		*sp = make([]batchEnt[K], n, n+n/2)
	}
	*sp = (*sp)[:n]
	return *sp
}

// sortEnts stably sorts (key, origin) pairs. Batches sort either a
// handful of displaced outliers or fall back to the full pair sort, so
// the small-n regime is the hot one: a branch-light insertion sort beats
// the generic stable sort's symmerge machinery there (see
// BenchmarkBatchIngest). Strict > comparison keeps equal keys in input
// order, preserving stability.
func sortEnts[K Integer](ents []batchEnt[K]) {
	if len(ents) <= 32 {
		for i := 1; i < len(ents); i++ {
			e := ents[i]
			j := i - 1
			for j >= 0 && ents[j].k > e.k {
				ents[j+1] = ents[j]
				j--
			}
			ents[j+1] = e
		}
		return
	}
	slices.SortStableFunc(ents, func(a, b batchEnt[K]) int {
		switch {
		case a.k < b.k:
			return -1
		case a.k > b.k:
			return 1
		default:
			return 0
		}
	})
}

// classifyOutliers returns the input positions that are NOT part of the
// ascending backbone, in position order; empty means the batch is already
// non-decreasing — dup then reports whether it contains adjacent equal
// keys (= any duplicates, since it is sorted; meaningless otherwise, the
// merge recomputes it). Position i joins the backbone when its key
// extends the backbone (>= the last accepted key) and does not
// immediately invert against its successor — the lookahead rejects a
// displaced future key (large, dropped early) that would otherwise poison
// the backbone and sweep everything after it into the outlier pile.
// Misclassification is correctness-free: an outlier is merely sorted
// instead of streamed.
func classifyOutliers[K Integer, V any](keys []K, s *batchScratch[K, V]) ([]int, bool) {
	out := s.out[:0]
	var last K
	started := false
	dup := false
	for i, k := range keys {
		if started && k < last {
			out = append(out, i)
			continue
		}
		if i+1 < len(keys) && k > keys[i+1] {
			out = append(out, i)
			continue
		}
		dup = dup || (started && k == last)
		last = k
		started = true
	}
	s.out = out
	return out, dup
}

// mergeOutliers builds the sorted view of the batch from its ascending
// backbone and sorted outliers: one tiny sort plus one segment merge. The
// backbone is ascending across its contiguous input stretches, so the
// merge is driven by the few outliers — each backbone stretch between two
// outlier insertion points lands with one bulk copy rather than a
// per-element loop, keeping the cost proportional to the outlier count
// plus pure memmove. Equal keys order by original position (matching the
// stable pair sort), so last-write-wins downstream is preserved exactly.
// dup reports whether the merged sequence contains equal neighbors.
func mergeOutliers[K Integer, V any](keys []K, vals []V, outliers []int, s *batchScratch[K, V]) ([]K, []V, []int, bool) {
	oe := growEnts(&s.ents, len(outliers))
	for x, i := range outliers {
		oe[x] = batchEnt[K]{keys[i], int32(i)}
	}
	sortEnts(oe)
	sk := grow(&s.sk, len(keys))
	sv := grow(&s.sv, len(keys))
	ord := grow(&s.ord, len(keys))
	dup := false
	w, oi := 0, 0
	// emit copies the backbone input range [i, j) (which skips no outlier
	// positions by construction), interleaving any pending sorted outliers
	// that belong below its elements.
	emit := func(i, j int) {
		for i < j {
			// Bulk-copy the backbone prefix that precedes the next outlier.
			stop := j
			if oi < len(oe) {
				k := oe[oi].k
				// Gallop: backbone keys in [i,j) ascend, so binary-search the
				// first position whose key sorts at or above the outlier.
				lo, hi := i, j
				for lo < hi {
					mid := int(uint(lo+hi) >> 1)
					if keys[mid] < k || (keys[mid] == k && mid < int(oe[oi].o)) {
						lo = mid + 1
					} else {
						hi = mid
					}
				}
				stop = lo
			}
			if stop > i {
				copy(sk[w:], keys[i:stop])
				copy(sv[w:], vals[i:stop])
				for x := i; x < stop; x++ {
					ord[w] = x
					w++
				}
				dup = dup || (w-(stop-i) > 0 && sk[w-(stop-i)-1] == sk[w-(stop-i)])
				i = stop
				continue
			}
			sk[w], sv[w], ord[w] = oe[oi].k, vals[oe[oi].o], int(oe[oi].o)
			dup = dup || (w > 0 && sk[w-1] == sk[w])
			w++
			oi++
		}
	}
	prev := 0
	for _, op := range outliers {
		emit(prev, op)
		prev = op + 1
	}
	emit(prev, len(keys))
	for ; oi < len(oe); oi++ {
		sk[w], sv[w], ord[w] = oe[oi].k, vals[oe[oi].o], int(oe[oi].o)
		dup = dup || (w > 0 && sk[w-1] == sk[w])
		w++
	}
	return sk, sv, ord, dup
}

// batchEnt pairs a key with its original batch position for the
// permutation sort.
type batchEnt[K Integer] struct {
	k K
	o int32
}

// ApplySorted is PutBatch for input already sorted by key (non-decreasing;
// equal keys apply in order, so the last occurrence wins). It skips the
// sort and returns ErrNotSorted without modifying the tree when the order
// does not hold.
func (t *Tree[K, V]) ApplySorted(keys []K, vals []V) ([]PutResult, error) {
	if len(keys) != len(vals) {
		return nil, errBatchLenMismatch(len(keys), len(vals))
	}
	if !isNonDecreasing(keys) {
		return nil, ErrNotSorted
	}
	if len(keys) == 0 {
		return nil, nil
	}
	results := make([]PutResult, len(keys))
	s := t.getScratch()
	t.applySortedBatch(keys, vals, results, nil, hasAdjacentDup(keys), s)
	t.scratch.Put(s)
	return results, nil
}

func errBatchLenMismatch(k, v int) error {
	return fmt.Errorf("core: batch length mismatch: %d keys, %d vals", k, v)
}

func isNonDecreasing[K Integer](keys []K) bool {
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			return false
		}
	}
	return true
}

// applySortedBatch collapses duplicate keys (last occurrence wins), runs
// the unique entries through the run engine, and maps per-unique existence
// back to per-position results. ord maps sorted positions to original
// result positions (nil when the input order was already sorted); dup says
// whether keys contains equal neighbors — the classification/merge pass
// that produced the sorted view already knows, so no rescan here.
func (t *Tree[K, V]) applySortedBatch(keys []K, vals []V, results []PutResult, ord []int, dup bool, s *batchScratch[K, V]) {
	uk, uv, first := dedupSorted(keys, vals, results, ord, dup, s)
	existed := grow(&s.existed, len(uk))
	clear(existed)
	t.applyRuns(uk, uv, existed)
	mapExisted(existed, results, ord, first)
}

// dedupSorted collapses duplicate keys of the sorted view (last occurrence
// wins), marking every later occurrence Existed in results, and returns the
// unique keys/values plus first[u] = the sorted position of unique key u
// (first == nil when the view had no duplicates and uk/uv alias keys/vals).
func dedupSorted[K Integer, V any](keys []K, vals []V, results []PutResult, ord []int, dup bool, s *batchScratch[K, V]) (uk []K, uv []V, first []int) {
	uk, uv = keys, vals
	if !dup {
		return uk, uv, nil
	}
	uk = grow(&s.uk, len(keys))[:0]
	uv = grow(&s.uv, len(keys))[:0]
	first = grow(&s.first, len(keys))[:0]
	for i := 0; i < len(keys); {
		j := i + 1
		for j < len(keys) && keys[j] == keys[i] {
			j++
		}
		uk = append(uk, keys[i])
		uv = append(uv, vals[j-1]) // last write wins
		first = append(first, i)
		// Every occurrence after the first found the key present.
		for d := i + 1; d < j; d++ {
			results[sortedPos(ord, d)].Existed = true
		}
		i = j
	}
	return uk, uv, first
}

// sortedPos maps a sorted-view position back to the input position.
func sortedPos(ord []int, i int) int {
	if ord == nil {
		return i
	}
	return ord[i]
}

// mapExisted folds the per-unique-key existence flags back onto the
// per-input-position results, through the dedup (first) and sort (ord)
// mappings.
func mapExisted(existed []bool, results []PutResult, ord, first []int) {
	for u, ex := range existed {
		if !ex {
			continue
		}
		if first == nil {
			results[sortedPos(ord, u)].Existed = true
		} else {
			results[sortedPos(ord, first[u])].Existed = true
		}
	}
}

func hasAdjacentDup[K Integer](keys []K) bool {
	for i := 1; i < len(keys); i++ {
		if keys[i] == keys[i-1] {
			return true
		}
	}
	return false
}

// applyRuns is the run engine: it resolves the leaf owning each maximal
// run of batch keys (through the fast-path metadata when it applies, a
// latched descent otherwise) and installs the run in one shot.
//
// The run covered by the fast-path metadata installs FIRST, before the
// left-to-right sweep. A near-sorted batch lists its outliers ahead of the
// in-order frontier run; sweeping in order would process every outlier
// against a pole that has not absorbed this batch's frontier yet.
// Disjoint runs commute, so installation order is unobservable.
//
// Pole miss accounting: an off-pole run of k additions charges fp.fails
// by k — the batched restatement of k consecutive per-key top-inserts.
// Installing the fp-covered run first keeps a healthy pole's counter
// pinned at zero (its fast hit precedes the outlier charges), while a
// large run landing off-pole crosses ResetThreshold immediately and
// repoints the pole at its frontier chunk, exactly as the per-key reset
// would mid-stream.
func (t *Tree[K, V]) applyRuns(keys []K, vals []V, existed []bool) {
	a, b := t.fpCovered(keys)
	if a < b {
		if n := t.tryFastRun(keys[a:b], vals[a:b], existed[a:b]); n > 0 {
			t.sweepRuns(keys[:a], vals[:a], existed[:a])
			pos := a + n
			t.sweepRuns(keys[pos:], vals[pos:], existed[pos:])
			return
		}
	}
	t.sweepRuns(keys, vals, existed)
}

// sweepRuns walks a segment of the batch left to right, installing one
// run per iteration. The descent frame of the previous run seeds the next
// one: consecutive runs of a sorted batch land in nearby leaves, so most
// descents resume one level above the leaf instead of at the root.
func (t *Tree[K, V]) sweepRuns(keys []K, vals []V, existed []bool) {
	t.sweepRunsPolicy(keys, vals, existed, true)
}

// sweepRunsPolicy is sweepRuns with the fast-path policy made explicit.
// policy=false is the parallel-worker discipline (DESIGN.md §10): no
// fast-path probes (the designated tail worker is the only one allowed to
// race the pole metadata) and, after each install, only the mandatory
// metadata repairs — never resets, catch-up, or fail charging — so
// concurrent workers cannot fight over pole placement.
func (t *Tree[K, V]) sweepRunsPolicy(keys []K, vals []V, existed []bool, policy bool) {
	var hint descentHint[K, V]
	for pos := 0; pos < len(keys); {
		if policy {
			if n := t.tryFastRun(keys[pos:], vals[pos:], existed[pos:]); n > 0 {
				pos += n
				continue
			}
		}
		pos += t.topRun(keys[pos:], vals[pos:], existed[pos:], &hint, policy)
	}
}

// descentHint caches one frame of the previous run's descent — the
// parent of the leaf it resolved, with that parent's routing bounds — so
// the next run can skip the upper levels when its first key lands under
// the same parent (consecutive runs of a sorted batch usually do). Only
// unsynchronized trees use it: between two runs of one PutBatch nothing
// mutates the tree but the batch itself, and any structural change (a
// split) conservatively drops the hint. Synchronized trees always descend
// from the root under the OLC protocol — a cached frame cannot be
// revalidated against concurrent restructures.
type descentHint[K Integer, V any] struct {
	parent *node[K, V]
	lo, hi bound[K]
	// prefix is the root..parent descent that reached parent, reused to
	// rebuild the full path expected by afterRunInstall.
	prefix []*node[K, V]
}

func (h *descentHint[K, V]) drop() {
	h.parent = nil
	h.prefix = h.prefix[:0]
}

// covers reports whether the cached parent's subtree contains k.
func (h *descentHint[K, V]) covers(k K) bool {
	return h.parent != nil &&
		(!h.lo.ok || k >= h.lo.key) && (!h.hi.ok || k < h.hi.key)
}

// fpCovered returns the half-open index range of the sorted batch that the
// fast-path metadata currently routes to fp.leaf. The snapshot may go
// stale the moment meta unlocks; tryFastRun revalidates under its own
// latch, so staleness only costs the shortcut.
func (t *Tree[K, V]) fpCovered(keys []K) (int, int) {
	if t.cfg.Mode == ModeNone {
		return 0, 0
	}
	t.lockMeta()
	defer t.unlockMeta()
	if t.fp.leaf == nil {
		return 0, 0
	}
	a := 0
	if t.fp.hasMin {
		a = searchKeys(keys, t.fp.min)
	}
	b := len(keys)
	if t.fp.hasMax {
		b = searchKeys(keys, t.fp.max)
	}
	if b < a {
		b = a
	}
	return a, b
}

// tryFastRun installs the longest prefix of the batch that the fast-path
// metadata routes to fp.leaf AND that fits its remaining capacity, under a
// single leaf latch — the batched analogue of tryFastInsert. It returns
// the number of keys consumed, or 0 when the fast path does not apply,
// the leaf latch race is lost to a rebalance, or the leaf is full (the
// top path handles the split with the ancestors latched and then
// repoints the fast path at the run's frontier).
func (t *Tree[K, V]) tryFastRun(keys []K, vals []V, existed []bool) int {
	if t.cfg.Mode == ModeNone {
		return 0
	}
	t.lockMeta()
	leaf := t.fp.leaf
	if leaf == nil || !t.fpContains(keys[0]) {
		t.unlockMeta()
		return 0
	}
	if !t.tryWriteLatch(leaf) {
		// Same protocol as tryFastInsert: blocking on the leaf while meta
		// is held would invert the lock order, so release meta, latch with
		// the obsolete-failing blocking primitive, and revalidate the
		// metadata snapshot latch-first.
		t.unlockMeta()
		if !t.writeLatchLive(leaf) {
			return 0
		}
		t.lockMeta()
		if t.fp.leaf != leaf || !t.fpContains(keys[0]) {
			t.unlockMeta()
			t.writeUnlatch(leaf)
			return 0
		}
	}
	n := len(keys)
	if t.fp.hasMax {
		n = searchKeys(keys, t.fp.max) // keys[:n] route to fp.leaf
	}
	if budget := t.cfg.LeafCapacity - leaf.leafCount(); n > budget {
		// Only a run longer than the remaining capacity needs the probe —
		// a shorter one fits even if every key is absent.
		n, _ = leaf.prefixWithinBudget(keys[:n], budget)
	}
	if n == 0 {
		t.unlockMeta()
		t.writeUnlatch(leaf)
		return 0
	}
	ups := t.mergeRunIntoLeaf(leaf, keys[:n], vals[:n], existed[:n])
	t.fp.size = leaf.leafCount()
	t.fp.fails = 0
	t.unlockMeta()
	t.writeUnlatch(leaf)
	t.c.fastInserts.Add(int64(n - ups))
	t.c.updates.Add(int64(ups))
	t.c.batchRuns.Add(1)
	t.c.batchFastRuns.Add(1)
	t.size.Add(int64(n - ups))
	return n
}

// skipTo returns the first index >= i with keys[idx] >= k, galloping
// forward from i: O(log gap) for a scattered probe, O(1) when the next
// probe lands nearby. The merge passes below use it so a short run into a
// full leaf costs O(run * log leaf), not O(leaf) — matching the binary
// search a single-key insert would do. Over a gapped leaf's slot array it
// returns the slot-level lower bound (gap copies keep the slots sorted);
// presence still needs the bitmap skip, as in find.
func skipTo[K Integer](keys []K, i int, k K) int {
	if i >= len(keys) || keys[i] >= k {
		return i
	}
	step := 1
	for i+step < len(keys) && keys[i+step] < k {
		i += step
		step <<= 1
	}
	end := i + step
	if end > len(keys) {
		end = len(keys)
	}
	return i + 1 + searchKeys(keys[i+1:end], k)
}

// prefixWithinBudget returns the longest prefix of the sorted, unique
// probe keys whose installation adds at most budget new entries to the
// leaf, along with the number of additions in that prefix (present keys
// are free: they overwrite in place). Presence is the slot-level skipTo
// followed by the bitmap skip: a stale gap copy equal to a probe key must
// not count as present.
func (n *node[K, V]) prefixWithinBudget(probe []K, budget int) (cnt, adds int) {
	i := 0
	for j, k := range probe {
		i = skipTo(n.keys, i, k)
		s := n.nextPresent(i)
		if s < 0 || s >= len(n.keys) || n.keys[s] != k {
			if adds == budget {
				return j, adds
			}
			adds++
		}
	}
	return len(probe), adds
}

// countAbsent returns how many of the sorted, unique probe keys are not
// live in the leaf (one merge pass over the slot array).
func (n *node[K, V]) countAbsent(probe []K) int {
	absent := 0
	i := 0
	for _, k := range probe {
		i = skipTo(n.keys, i, k)
		s := n.nextPresent(i)
		if s < 0 || s >= len(n.keys) || n.keys[s] != k {
			absent++
		}
	}
	return absent
}

// mergeRunIntoLeaf merges a sorted run that fits the leaf: live keys are
// overwritten in place, absent keys drop into the gapped layout one
// gapInsert each — O(distance to the nearest gap) per key instead of the
// dense era's backward memmove over the leaf tail. A run landing entirely
// above the leaf's max (the frontier append that dominates sorted ingest)
// is two bulk copies at the high-water mark, compacting first only when
// interior gaps have consumed the tail room. Returns the number of
// overwrites. The caller holds the leaf's write latch and has verified
// capacity (count + additions <= LeafCapacity).
func (t *Tree[K, V]) mergeRunIntoLeaf(leaf *node[K, V], keys []K, vals []V, existed []bool) int {
	if leaf.count == 0 || keys[0] > leaf.maxKey() {
		if cap(leaf.keys)-len(leaf.keys) < len(keys) {
			leaf.compact()
		}
		leaf.appendDense(keys, vals)
		return 0
	}
	ups := 0
	i := 0
	for j, k := range keys {
		// i stays a valid slot-level search floor across gapInserts: a shift
		// only moves keys < k (or k itself) below slot i, never a key that a
		// later, strictly larger probe could land on.
		i = skipTo(leaf.keys, i, k)
		if s := leaf.nextPresent(i); s >= 0 && s < len(leaf.keys) && leaf.keys[s] == k {
			leaf.vals[s] = vals[j]
			existed[j] = true
			ups++
			continue
		}
		slot, moved := leaf.gapInsert(k, vals[j])
		if len(keys)-j > regapMargin && leaf.regapWorthwhile(moved) {
			// The leaf's gaps have drifted away from the run's landing zone
			// and this key paid a long shift; the rest of the ascending run
			// would pay the same. Rebuild with every free slot concentrated
			// right at the landing point — the remaining keys then fill the
			// gap run in order, O(1) each — and restart the slot floor (the
			// ascending probe re-seeks past the rebuilt prefix once).
			leaf.refrontierAt(slot + 1)
			i = 0
		}
	}
	return ups
}

// topRun installs the run owned by the leaf the descent resolves for the
// first unconsumed key. The common case — the run fits its leaf — descends
// optimistically and write-latches only the leaf; a run that may split
// takes the pessimistic descent, where the full path stays latched (a run
// may split multi-way, which can touch every ancestor) — one
// latch-acquisition sequence per run instead of one per key either way.
// Returns the number of keys consumed (>= 1). policy=false restricts the
// after-install bookkeeping to the mandatory metadata repairs (parallel
// workers; see sweepRunsPolicy).
func (t *Tree[K, V]) topRun(keys []K, vals []V, existed []bool, hint *descentHint[K, V], policy bool) int {
	if n, ok := t.tryOptimisticRun(keys, vals, existed, hint, policy); ok {
		return n
	}
	// The pessimistic path may restructure any level, which invalidates
	// cached descent frames wholesale.
	hint.drop()
	path, lockedFrom, lo, hi := t.descendForWrite(keys[0], true)
	leaf := path[len(path)-1].n
	n := len(keys)
	if hi.ok {
		n = searchKeys(keys, hi.key) // keys[:n] route to this leaf
	}
	run, runVals, runExisted := keys[:n], vals[:n], existed[:n]

	nodes := make([]*node[K, V], len(path))
	for i := range path {
		nodes[i] = path[i].n
	}

	// Probe the leaf only when the run might overflow it: a wholesale fit
	// needs no absence count, and the merge discovers overwrites itself.
	var ups int
	var rights []*node[K, V]
	fits := leaf.leafCount()+n <= t.cfg.LeafCapacity
	if !fits {
		fits = leaf.leafCount()+leaf.countAbsent(run) <= t.cfg.LeafCapacity
	}
	if fits {
		ups = t.mergeRunIntoLeaf(leaf, run, runVals, runExisted)
	} else {
		ups, rights = t.multiWaySplitInstall(nodes, leaf, run, runVals, runExisted, hi)
	}
	adds := n - ups
	if policy {
		t.afterRunInstall(nodes, leaf, rights, run, lo, hi, adds)
	} else {
		t.afterRunMandatory(nodes, leaf, rights, run, adds)
	}
	for _, r := range rights {
		// Split-off leaves were published write-latched (leaf chain, tail,
		// new ancestors); release them only now that the run install and
		// fast-path bookkeeping are complete.
		t.writeUnlatch(r)
	}
	t.c.topInserts.Add(int64(adds))
	t.c.updates.Add(int64(ups))
	t.c.batchRuns.Add(1)
	t.size.Add(int64(adds))
	t.unlockPathFrom(path, lockedFrom)
	return n
}

// tryOptimisticRun installs a run that fits its leaf without structural
// changes: an optimistic read-validated descent resolves the leaf and its
// routing bounds and only the leaf is write-latched — the batched analogue
// of tryOptimisticInsert, and the same protocol. ok=false sends the caller
// to the pessimistic descent: the run may overflow the leaf (a multi-way
// split latches the whole path), or in synchronized POLE/QuIT mode it may
// land in the pole region, where a redistribution can rewrite a separator
// pivot arbitrarily high up.
func (t *Tree[K, V]) tryOptimisticRun(keys []K, vals []V, existed []bool, hint *descentHint[K, V], policy bool) (int, bool) {
	if t.synced && (t.cfg.Mode == ModePOLE || t.cfg.Mode == ModeQuIT) {
		t.lockMeta()
		inPole := t.fp.leaf != nil && t.fpContains(keys[0])
		t.unlockMeta()
		if inPole {
			return 0, false
		}
	}
	useHint := !t.synced // cached frames cannot be revalidated under OLC
	for {
		var (
			n      *node[K, V]
			v      uint64
			lo, hi bound[K]
		)
		path := make([]*node[K, V], 0, 8)
		if useHint && hint.covers(keys[0]) {
			if hv, lok := t.readLatch(hint.parent); lok {
				n, v, lo, hi = hint.parent, hv, hint.lo, hint.hi
				path = append(path, hint.prefix...)
			} else {
				hint.drop()
			}
		}
		if n == nil {
			n, v = t.readRoot()
			path = append(path, n)
		}
		// pLo/pHi trail one level behind lo/hi: after the loop they hold
		// the routing bounds of the leaf's parent, recorded into the hint.
		var pLo, pHi bound[K]
		bad := false
		for !n.isLeaf() {
			idx := n.route(keys[0])
			l, h := lo, hi
			if idx > 0 {
				l = closed(n.keys[idx-1])
			}
			if idx < len(n.keys) {
				h = closed(n.keys[idx])
			}
			c, cok := n.childAt(idx)
			if !cok {
				t.readAbort(n)
				bad = true
				break
			}
			cv, ok := t.readLatch(c)
			if !ok {
				t.readAbort(n)
				bad = true
				break
			}
			if !t.readUnlatch(n, v) {
				t.readAbort(c)
				bad = true
				break
			}
			pLo, pHi = lo, hi
			lo, hi = l, h
			path = append(path, c)
			n, v = c, cv
		}
		if bad {
			if useHint {
				hint.drop()
			}
			t.olcRestart()
			continue
		}
		if useHint && len(path) >= 2 {
			hint.parent = path[len(path)-2]
			hint.lo, hint.hi = pLo, pHi
			hint.prefix = append(hint.prefix[:0], path[:len(path)-1]...)
		}
		leaf := n
		rn := len(keys)
		if hi.ok {
			rn = searchKeys(keys, hi.key) // keys[:rn] route to this leaf
		}
		if leaf.leafCount()+rn > t.cfg.LeafCapacity {
			// Might overflow (or needs a dedup count to prove otherwise):
			// the pessimistic descent sorts it out.
			if !t.readUnlatch(leaf, v) {
				t.olcRestart()
				continue
			}
			return 0, false
		}
		if !t.upgradeLatch(leaf, v) {
			t.olcRestart()
			continue
		}
		ups := t.mergeRunIntoLeaf(leaf, keys[:rn], vals[:rn], existed[:rn])
		adds := rn - ups
		if policy {
			t.afterRunInstall(path, leaf, nil, keys[:rn], lo, hi, adds)
		} else {
			t.afterRunMandatory(path, leaf, nil, keys[:rn], adds)
		}
		t.writeUnlatch(leaf)
		t.c.topInserts.Add(int64(adds))
		t.c.updates.Add(int64(ups))
		t.c.batchRuns.Add(1)
		t.size.Add(int64(adds))
		return rn, true
	}
}

// multiWaySplitInstall merges the run with the overfull leaf and carves
// the combined sequence into k+1 leaves in one pass: the original leaf
// keeps the first chunk and k freshly allocated right siblings take the
// rest, linked into the chain and handed to the ancestors as one
// contiguous pivot group. This is splitForInsert generalized from one
// split to k. Returns the number of overwrites and the new (still
// write-latched) leaves.
//
// The live leaf prefix below the run's first key is untouched by the
// merge, so it is never materialized: only the live suffix from the run's
// insertion point onward is extracted and merged into scratch (for sorted
// ingest that suffix is just the few out-of-order keys parked above the
// frontier), and a run that strictly appends borrows the caller's slices
// outright. Positions below the cut refer to the leaf's live ranks through
// the bitmap; chunks that are not expected to absorb in-order appends are
// re-spread with interleaved gaps so later mid-leaf inserts stay cheap.
func (t *Tree[K, V]) multiWaySplitInstall(path []*node[K, V], leaf *node[K, V], keys []K, vals []V, existed []bool, hi bound[K]) (int, []*node[K, V]) {
	nl := leaf.leafCount()
	p := leaf.rankOf(lowerBound(leaf.keys, keys[0])) // live ranks [0,p) < keys[0]: stable prefix
	ups := 0
	var tk []K // merged sequence from live rank p onward
	var tv []V
	var ss *batchScratch[K, V]
	if p == nl {
		tk, tv = keys, vals
	} else {
		ss = t.getScratch()
		// Extract the live suffix densely, then one merge pass with the run;
		// on equal keys the run's value wins. The pass walks the (short)
		// suffix and bulk-copies the run range below each suffix element, so
		// a 200-key run parked against a handful of out-of-order keys costs a
		// handful of memmoves, not 200 appends.
		sfk := grow(&ss.xk, nl-p)[:0]
		sfv := grow(&ss.xv, nl-p)[:0]
		for s := leaf.selectRank(p); s >= 0 && s < len(leaf.keys); s = leaf.nextPresent(s + 1) {
			sfk = append(sfk, leaf.keys[s])
			sfv = append(sfv, leaf.vals[s])
		}
		tk = grow(&ss.tk, len(sfk)+len(keys))[:0]
		tv = grow(&ss.tv, len(sfk)+len(keys))[:0]
		j := 0
		for i := 0; i < len(sfk); i++ {
			nj := skipTo(keys, j, sfk[i])
			tk = append(tk, keys[j:nj]...)
			tv = append(tv, vals[j:nj]...)
			j = nj
			if j < len(keys) && keys[j] == sfk[i] {
				existed[j] = true
				ups++
				tk = append(tk, keys[j])
				tv = append(tv, vals[j])
				j++
				continue
			}
			tk = append(tk, sfk[i])
			tv = append(tv, sfv[i])
		}
		tk = append(tk, keys[j:]...)
		tv = append(tv, vals[j:]...)
	}
	total := p + len(tk)
	at := func(i int) K {
		if i < p {
			return leaf.keys[leaf.selectRank(i)]
		}
		return tk[i-p]
	}
	// seg copies merged positions [s,e) out of the two segments: live leaf
	// ranks below p, merged scratch above.
	seg := func(dk []K, dv []V, s, e int) ([]K, []V) {
		if s < p {
			stop := e
			if stop > p {
				stop = p
			}
			for x, slot := s, leaf.selectRank(s); x < stop; x, slot = x+1, leaf.nextPresent(slot+1) {
				dk = append(dk, leaf.keys[slot])
				dv = append(dv, leaf.vals[slot])
			}
			s = stop
		}
		if e > s {
			dk = append(dk, tk[s-p:e-p]...)
			dv = append(dv, tv[s-p:e-p]...)
		}
		return dk, dv
	}
	// installFirst rewrites the original leaf as merged chunk [0,c0), in
	// place: the backing arrays were sized for every legal transient and are
	// never reallocated, so concurrent optimistic readers stay memory-safe
	// and are rejected by version validation. The kept live prefix never
	// moves; merged entries above it append at the high-water mark.
	installFirst := func(c0 int) {
		if c0 <= p {
			leaf.truncateLive(c0)
			return
		}
		leaf.truncateLive(p)
		if cap(leaf.keys)-len(leaf.keys) < c0-p {
			leaf.compact()
		}
		leaf.appendDense(tk[:c0-p], tv[:c0-p])
	}

	cuts, frontier := t.leafCuts(leaf, total, at, hi)
	rights := make([]*node[K, V], 0, len(cuts))
	pivots := make([]K, 0, len(cuts))
	prev := leaf
	next := leaf.next.Load()
	for ci := 0; ci < len(cuts); ci++ {
		start := cuts[ci]
		end := total
		if ci+1 < len(cuts) {
			end = cuts[ci+1]
		}
		r := t.newLeaf()
		t.writeLatch(r) // uncontended: not yet published
		r.keys, r.vals = seg(r.keys, r.vals, start, end)
		r.setBitRange(0, len(r.keys))
		r.count = int32(len(r.keys))
		// Spread every chunk except the frontier chunk (it absorbs the next
		// in-order runs as pure high-water-mark appends) and, when the leaf
		// was rightmost, the new tail.
		if start != frontier && !(ci == len(cuts)-1 && next == nil) {
			r.spreadInPlace()
		}
		r.prev.Store(prev)
		prev.next.Store(r)
		prev = r
		rights = append(rights, r)
		pivots = append(pivots, r.minKey())
	}
	installFirst(cuts[0]) // after seg reads: the leaf tail may move out
	prev.next.Store(next)
	if next != nil {
		next.prev.Store(prev)
	} else {
		t.tail.Store(prev)
	}
	t.c.leafSplits.Add(int64(len(rights)))

	t.propagateMultiSplit(path, pivots, rights)
	if ss != nil {
		t.scratch.Put(ss) // all segments copied out; the merge scratch is dead
	}
	return ups, rights
}

// leafCuts picks the chunk boundaries (indices into the merged sequence
// where each new leaf starts) for a multi-way leaf split, and the merged
// position where the frontier chunk starts (-1 when no chunk is designated
// the open frontier). A rightmost leaf packs chunks to MaxFill less the
// configured gap fraction — the batched analogue of QuIT's variable split,
// leaving the open-ended tail chunk to absorb the next in-order run — with
// the first cut IKR-guided when pole metadata is live, exactly as
// variableSplit places its single split point. Interior leaves split into
// balanced chunks, preserving the classical >= 50% occupancy. Packed
// chunks are sized to (1-GapFraction) of the fill ceiling so that, once
// spread, they keep interleaved gaps for later near-sorted inserts.
func (t *Tree[K, V]) leafCuts(leaf *node[K, V], total int, at func(int) K, hi bound[K]) ([]int, int) {
	c := t.cfg.LeafCapacity
	// Packing applies wherever the pole is, not only at the rightmost
	// leaf: Algorithm 2's variable split follows fp.leaf even when earlier
	// outliers landed above the frontier and made it an interior leaf
	// (splitForInsert keys on isPole the same way). The rightmost leaf
	// packs in every mode — its open tail absorbs in-order ingest.
	isPole := false
	ikr := -1
	if t.cfg.Mode == ModePOLE || t.cfg.Mode == ModeQuIT {
		t.lockMeta()
		if leaf == t.fp.leaf {
			isPole = true
			if t.fp.prevValid && t.fp.prev == leaf.prev.Load() && t.fp.prevSize > 0 {
				x := t.est.Bound(float64(t.fp.prevMin), float64(at(0)), t.fp.prevSize, total)
				ikr = outlierIndexAt(total, at, x)
			}
		}
		t.unlockMeta()
	}
	if !hi.ok || isPole {
		capFill := int(t.cfg.MaxFill * float64(c))
		if capFill < 1 {
			capFill = 1
		}
		if capFill > c {
			capFill = c
		}
		capFill = t.packTarget(capFill)
		floor := t.minLeaf
		if floor < 1 {
			floor = 1
		}
		// Everything below the outlier boundary packs into capFill chunks;
		// the tail above it becomes the frontier chunk, which therefore
		// starts nearly empty and absorbs the next several in-order runs
		// latch-only. This is variableSplit's cut generalized to k chunks,
		// including its l-1 detail: the frontier chunk keeps the topmost
		// in-order key so its pivot is the backbone max — the next in-order
		// run routes INTO the open chunk rather than into the packed-full
		// one below it.
		left := total - 1
		if ikr >= 1 && ikr-1 < left {
			left = ikr - 1
		}
		if left < floor {
			left = floor
		}
		var cuts []int
		for pos := capFill; pos < left; pos += capFill {
			cuts = append(cuts, pos)
		}
		cuts = append(cuts, left)
		for pos := left + capFill; pos < total; pos += capFill {
			cuts = append(cuts, pos)
		}
		return cuts, left
	}
	pack := t.packTarget(c)
	m := (total + pack - 1) / pack
	return chunkBounds(total, m), -1
}

// packTarget reduces a chunk-fill ceiling by the configured gap fraction,
// so wholesale-built chunks leave interleaved gap room (clamped to >= 1).
func (t *Tree[K, V]) packTarget(fill int) int {
	p := fill - int(t.cfg.GapFraction*float64(fill))
	if p < 1 {
		return 1
	}
	return p
}

// outlierIndexAt is outlierIndex over a virtual merged sequence exposed
// through random access.
func outlierIndexAt[K Integer](total int, at func(int) K, x float64) int {
	lo, hi := 0, total
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if float64(at(mid)) <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// chunkBounds carves n items into m nearly-equal chunks (sizes differing
// by at most one, larger chunks first) and returns the m-1 interior
// boundaries.
func chunkBounds(n, m int) []int {
	base, extra := n/m, n%m
	cuts := make([]int, 0, m-1)
	pos := 0
	for i := 0; i < m-1; i++ {
		pos += base
		if i < extra {
			pos++
		}
		cuts = append(cuts, pos)
	}
	return cuts
}

// propagateMultiSplit inserts a contiguous group of (pivot, right-child)
// pairs — all replacements of a single split child, or a frontier chain
// spliced after the rightmost leaf (spliceFrontier) — into the ancestors
// on path, carving overfull internal nodes into balanced multi-way chunks
// and growing as many new root levels as the promoted pivots require. The
// caller holds write latches on the entire path (topRun and the splice
// descend with holdAll). Incoming leaf-level rights stay latched for the caller;
// internal nodes minted here are released once they are wired into a
// parent or, for new root levels, once the root pointer is published.
func (t *Tree[K, V]) propagateMultiSplit(path []*node[K, V], pivots []K, rights []*node[K, V]) {
	fanout := t.cfg.InternalFanout
	for level := len(path) - 2; level >= 0; level-- {
		p := path[level]
		idx := upperBound(p.keys, pivots[0])
		if len(p.children)+len(rights) <= fanout {
			p.insertChildrenAt(idx, pivots, rights)
			t.unlatchWiredInternals(rights)
			return
		}
		pivots, rights = t.splitInternalMulti(p, idx, pivots, rights)
	}
	// Root overflow: build new levels bottom-up until one node holds them.
	children := make([]*node[K, V], 0, len(rights)+1)
	children = append(children, path[0])
	children = append(children, rights...)
	keys := pivots
	t.unlatchWiredInternals(rights) // fully built; unreachable until the root swap
	var fresh []*node[K, V]         // unpublished internals, released after the swap
	for len(children) > fanout {
		m := (len(children) + fanout - 1) / fanout
		bounds := append(chunkBounds(len(children), m), len(children))
		nk := make([]K, 0, m-1)
		nc := make([]*node[K, V], 0, m)
		start := 0
		for _, end := range bounds {
			in := t.newInternal()
			t.writeLatch(in) // uncontended: not yet published
			in.keys = append(in.keys, keys[start:end-1]...)
			in.children = append(in.children, children[start:end]...)
			fresh = append(fresh, in)
			if start > 0 {
				nk = append(nk, keys[start-1])
			}
			nc = append(nc, in)
			t.c.internalSplits.Add(1)
			start = end
		}
		children, keys = nc, nk
		t.height.Add(1)
	}
	newRoot := t.newInternal()
	t.writeLatch(newRoot) // uncontended: not yet published
	newRoot.keys = append(newRoot.keys, keys...)
	newRoot.children = append(newRoot.children, children...)
	t.root.Store(newRoot)
	t.height.Add(1)
	t.writeUnlatch(newRoot)
	for _, in := range fresh {
		t.writeUnlatch(in)
	}
}

// unlatchWiredInternals releases the write latches of freshly minted
// internal nodes once nothing will mutate them further; split-off leaves
// stay latched until the caller finishes the run install.
func (t *Tree[K, V]) unlatchWiredInternals(nodes []*node[K, V]) {
	for _, n := range nodes {
		if !n.isLeaf() {
			t.writeUnlatch(n)
		}
	}
}

// splitInternalMulti rebuilds the overfull internal node p — its current
// pivots/children with the incoming contiguous group spliced in at pivot
// position idx — as balanced chunks of at most fanout children: p keeps
// the first chunk in place and each further chunk becomes a fresh latched
// internal node. Returns the promoted pivots and new nodes for the level
// above. This is splitInternal generalized the same way
// multiWaySplitInstall generalizes splitLeafAt.
func (t *Tree[K, V]) splitInternalMulti(p *node[K, V], idx int, pivots []K, rights []*node[K, V]) ([]K, []*node[K, V]) {
	t.unlatchWiredInternals(rights) // wired into the combined sequence below
	n := len(p.children) + len(rights)
	ck := make([]K, 0, n-1)
	cc := make([]*node[K, V], 0, n)
	cc = append(cc, p.children[:idx+1]...)
	ck = append(ck, p.keys[:idx]...)
	ck = append(ck, pivots...)
	cc = append(cc, rights...)
	ck = append(ck, p.keys[idx:]...)
	cc = append(cc, p.children[idx+1:]...)

	fanout := t.cfg.InternalFanout
	m := (n + fanout - 1) / fanout
	bounds := append(chunkBounds(n, m), n)
	first := bounds[0]

	oldLen := len(p.children)
	p.keys = append(p.keys[:0], ck[:first-1]...)
	p.children = append(p.children[:0], cc[:first]...)
	if first < oldLen {
		stale := p.children[first:oldLen]
		for z := range stale {
			stale[z] = nil
		}
	}

	up := make([]K, 0, m-1)
	news := make([]*node[K, V], 0, m-1)
	start := first
	for _, end := range bounds[1:] {
		in := t.newInternal()
		t.writeLatch(in) // uncontended: not yet published
		in.keys = append(in.keys, ck[start:end-1]...)
		in.children = append(in.children, cc[start:end]...)
		up = append(up, ck[start-1])
		news = append(news, in)
		t.c.internalSplits.Add(1)
		start = end
	}
	return up, news
}

// afterRunInstall is the fast-path bookkeeping after a top-path run: the
// coarse-grained analogue of afterTopInsert and splitForInsert's per-key
// policies. The fast path follows the run's frontier — it repoints at the
// chunk that received the run's last key — because a sorted batch's next
// run overwhelmingly continues where this one ended (the batched
// restatement of Algorithm 1's catch-up and the §4.3 reset). When the
// pole itself split, pole_prev is rebuilt exactly from the preceding
// chunk, keeping the IKR estimator armed; when an unrelated leaf absorbed
// the run, the usual fails/reset policy applies with the whole run
// counting as one miss.
//
// path is the root..leaf descent (leaf last), rights the chunks a
// multi-way split created (nil when the run fit in place), all still
// write-latched by the caller; lo/hi are the pre-split routing bounds of
// leaf.
func (t *Tree[K, V]) afterRunInstall(path []*node[K, V], leaf *node[K, V], rights []*node[K, V], run []K, lo, hi bound[K], adds int) {
	if t.cfg.Mode == ModeNone || (adds == 0 && len(rights) == 0) {
		return
	}
	// Locate the chunk holding the run's last key and its routing bounds.
	lastKey := run[len(run)-1]
	target, tlo, thi := leaf, lo, hi
	ti := 0 // chunk index: 0 = leaf, i > 0 = rights[i-1]
	if len(rights) > 0 {
		thi = closed(rights[0].minKey())
		for i, r := range rights {
			if lastKey < r.minKey() {
				break
			}
			target, ti = r, i+1
			tlo = closed(r.minKey())
			if i+1 < len(rights) {
				thi = closed(rights[i+1].minKey())
			} else {
				thi = hi
			}
		}
	}

	switch t.cfg.Mode {
	case ModeTail:
		t.lockMeta()
		if len(rights) > 0 {
			if last := rights[len(rights)-1]; last.next.Load() == nil {
				// The old tail split: follow the new rightmost leaf.
				t.setFP(last, closed(last.minKey()), bound[K]{}, pathWithLeaf(path, last))
			}
		} else if target == t.fp.leaf {
			t.fp.size = target.leafCount()
		}
		t.unlockMeta()
		return
	case ModeLIL:
		// Fig. 4: lil follows the leaf that received the latest insert.
		t.lockMeta()
		t.setFP(target, tlo, thi, pathWithLeaf(path, target))
		t.unlockMeta()
		return
	}

	// ModePOLE / ModeQuIT.
	t.lockMeta()
	defer t.unlockMeta()
	fp := &t.fp

	if len(rights) > 0 && leaf == fp.leaf {
		// The pole split multi-way. Advance to the frontier chunk; its left
		// neighbor chunk is latched, so pole_prev metadata is exact — the
		// multi-way analogue of variableSplit's advance (Fig. 7a).
		if ti == 0 {
			fp.max, fp.hasMax = rights[0].minKey(), true
			fp.size = leaf.leafCount()
			fp.fails = 0
			return
		}
		prevChunk := leaf
		if ti > 1 {
			prevChunk = rights[ti-2]
		}
		t.setFP(target, tlo, thi, pathWithLeaf(path, target))
		fp.prev = prevChunk
		fp.prevMin = prevChunk.minKey()
		fp.prevSize = prevChunk.leafCount()
		fp.prevValid = true
		fp.fails = 0
		return
	}
	if len(rights) > 0 && fp.prevValid && fp.prev == leaf {
		// pole_prev split: the chunk that is now pole's left neighbor takes
		// over, as in splitOther.
		last := rights[len(rights)-1]
		fp.prev = last
		fp.prevMin = last.minKey()
		fp.prevSize = last.leafCount()
		return
	}

	if len(rights) == 0 {
		if target == fp.leaf {
			// The run landed in pole through the slow path (synchronized
			// fallbacks); treat it as pole growth.
			fp.size = target.leafCount()
			fp.fails = 0
			return
		}
		if target == fp.prev && fp.prevValid {
			fp.prevSize = target.leafCount()
			if run[0] < fp.prevMin {
				fp.prevMin = run[0]
			}
		}
		// Catch-up (§4.2, Algorithm 1 lines 11-14), with the run's first
		// key standing in for the single inserted key.
		if target.prev.Load() == fp.leaf && fp.prevValid && fp.prevSize > 0 && fp.size > 0 {
			x := t.est.Bound(float64(fp.prevMin), float64(fp.min), fp.prevSize, fp.size)
			if t.cfg.UnconditionalCatchUp || float64(run[0]) <= x {
				oldPole := fp.leaf
				oldMin := fp.min
				oldSize := fp.size
				t.setFP(target, tlo, thi, pathWithLeaf(path, target))
				fp.prev = oldPole
				fp.prevMin = oldMin
				fp.prevSize = oldSize
				fp.prevValid = true
				fp.fails = 0
				t.c.catchUps.Add(1)
				return
			}
		}
	}

	if t.cfg.Mode != ModeQuIT {
		return // pole-B+-tree has no reset strategy
	}
	// A run of k additions is k consecutive top-inserts in per-key terms,
	// so it charges the fail counter by k: scattered outliers nudge it
	// (and the pole's own fast hit zeroes it each batch), while a dense
	// off-pole run crosses the threshold at once and resets the pole onto
	// the run's frontier — just as the per-key reset would mid-stream.
	fp.fails += adds
	if fp.fails < t.cfg.ResetThreshold {
		return
	}
	// Reset (§4.3): repoint pole at the frontier chunk. When the run split
	// a leaf, the chunk's left neighbor is also ours and still latched, so
	// pole_prev can be rebuilt race-free even in synchronized mode;
	// otherwise it re-arms at the next split, as after a single-key reset.
	t.setFP(target, tlo, thi, pathWithLeaf(path, target))
	fp.fails = 0
	fp.prevValid = false
	prev := target.prev.Load()
	if prev != nil && prev.leafCount() > 0 && (!t.synced || ti > 0) {
		fp.prev = prev
		fp.prevMin = prev.minKey()
		fp.prevSize = prev.leafCount()
		fp.prevValid = true
	}
	t.c.resets.Add(1)
}

// afterRunMandatory is the policy-free subset of afterRunInstall run by
// parallel workers (sweepRunsPolicy with policy=false): only the fast-path
// metadata repairs the structural validator demands — fp bounds clamped
// when fp.leaf splits, exact fp.size / pole_prev sizes, ModeTail's
// fp-follows-tail invariant, and pole_prev chain identity when the leaf
// left of the pole splits. No resets, no catch-up, no fail charging: pole
// placement stays with the designated tail worker, so concurrent workers
// never tug the pole around. The caller holds the same latches
// afterRunInstall expects (leaf and any split-off rights write-latched).
func (t *Tree[K, V]) afterRunMandatory(path []*node[K, V], leaf *node[K, V], rights []*node[K, V], run []K, adds int) {
	if t.cfg.Mode == ModeNone || (adds == 0 && len(rights) == 0) {
		return
	}
	t.lockMeta()
	defer t.unlockMeta()
	fp := &t.fp
	if leaf == fp.leaf {
		if len(rights) > 0 {
			fp.max, fp.hasMax = rights[0].minKey(), true
		}
		fp.size = leaf.leafCount()
	}
	if t.cfg.Mode == ModeTail && len(rights) > 0 {
		// The rightmost leaf split: tail mode's metadata must follow the new
		// tail (Validate enforces fp.leaf == tail), and the new tail's left
		// neighbors are ours and latched, so the repointing is race-free.
		if last := rights[len(rights)-1]; last.next.Load() == nil {
			t.setFP(last, closed(last.minKey()), bound[K]{}, pathWithLeaf(path, last))
		}
	}
	if fp.prevValid && fp.prev == leaf {
		if len(rights) > 0 {
			// pole_prev split: the chunk that is now the pole's left neighbor
			// takes over, exactly as in afterRunInstall / splitOther.
			last := rights[len(rights)-1]
			fp.prev, fp.prevMin, fp.prevSize = last, last.minKey(), last.leafCount()
		} else {
			fp.prevSize = leaf.leafCount()
			if run[0] < fp.prevMin {
				fp.prevMin = run[0]
			}
		}
	}
}
