package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestStressMixedWorkload drives concurrent Put/Get/Range/Delete through the
// optimistic read path and every restart surface (leaf upgrades, splits,
// borrows, merges, obsolete nodes). Workers own disjoint key residues
// (key % workers == w), so each can check its own reads against a private
// reference map without synchronization.
//
// The workload runs in stressRounds rounds (sized per build tag in
// stress_race_test.go / stress_norace_test.go): between rounds all workers
// quiesce and the structural validator sweeps the tree, so invariant
// corruption is caught within one round of the operations that caused it
// rather than only at the very end. Under -race the latch degrades to
// shared pins (latch_race.go) but the call sites and restart paths are
// identical — and the between-round validation is the point where the
// detector's happens-before log meets the whole-tree walk.
func TestStressMixedWorkload(t *testing.T) {
	const (
		workers = 8
		space   = 2000 // per-worker key indexes: key = idx*workers + w
	)
	for _, mode := range []Mode{ModeNone, ModeQuIT} {
		t.Run(mode.String(), func(t *testing.T) {
			tr := New[int64, int64](syncConfig(mode))
			refs := make([]map[int64]int64, workers)
			for w := range refs {
				refs[w] = make(map[int64]int64, space)
			}

			for round := 0; round < stressRounds; round++ {
				var wg sync.WaitGroup
				errs := make(chan error, workers)
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(int64(1000 + round*workers + w)))
						ref := refs[w]
						key := func(idx int64) int64 { return idx*workers + int64(w) }
						for i := 0; i < stressOpsPerRound; i++ {
							idx := int64(rng.Intn(space))
							k := key(idx)
							switch op := rng.Intn(10); {
							case op < 5: // Put
								v := int64(round*stressOpsPerRound + i)
								tr.Put(k, v)
								ref[k] = v
							case op < 7: // Delete
								_, existed := tr.Delete(k)
								_, want := ref[k]
								if existed != want {
									errs <- fmt.Errorf("worker %d: Delete(%d) existed=%v, want %v", w, k, existed, want)
									return
								}
								delete(ref, k)
							case op < 9: // Get on an owned key: exact answer required
								v, ok := tr.Get(k)
								want, wantOK := ref[k]
								if ok != wantOK || (ok && v != want) {
									errs <- fmt.Errorf("worker %d: Get(%d) = (%d,%v), want (%d,%v)", w, k, v, ok, want, wantOK)
									return
								}
							default: // Range across all workers' keys: order only
								lo := key(idx)
								prev := lo - 1
								count := 0
								var rangeErr error
								tr.Range(lo, lo+200, func(k2, _ int64) bool {
									if k2 <= prev {
										rangeErr = fmt.Errorf("worker %d: Range out of order: %d after %d", w, k2, prev)
										return false
									}
									prev = k2
									count++
									return count < 64
								})
								if rangeErr != nil {
									errs <- rangeErr
									return
								}
							}
						}
					}(w)
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					t.Fatal(err)
				}

				// Quiescent point: every worker is done, so the validator
				// sees a stable tree that must satisfy all invariants.
				if err := tr.Validate(); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				want := 0
				for _, ref := range refs {
					want += len(ref)
				}
				if got := tr.Stats().Size; got != int64(want) {
					t.Fatalf("round %d: Stats().Size = %d, want %d", round, got, want)
				}
			}

			for w := 0; w < workers; w++ {
				for k, v := range refs[w] {
					got, ok := tr.Get(k)
					if !ok || got != v {
						t.Fatalf("final Get(%d) = (%d,%v), want (%d,true)", k, got, ok, v)
					}
				}
			}
		})
	}
}
