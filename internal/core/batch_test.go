package core

import (
	"errors"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// checkAgainstModel verifies the tree holds exactly the model's entries and
// validates structurally.
func checkAgainstModel(t *testing.T, tr *Tree[int64, int64], model map[int64]int64) {
	t.Helper()
	if err := tr.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if tr.Len() != len(model) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(model))
	}
	for k, want := range model {
		v, ok := tr.Get(k)
		if !ok || v != want {
			t.Fatalf("Get(%d) = (%d,%v), want (%d,true)", k, v, ok, want)
		}
	}
}

func TestPutBatchAllModesAllWorkloads(t *testing.T) {
	for _, mode := range allModes {
		for name, keys := range workloads(2000, 7) {
			for _, bs := range []int{1, 16, 256, 4096} {
				t.Run(mode.String()+"/"+name, func(t *testing.T) {
					tr := New[int64, int64](smallConfig(mode))
					model := make(map[int64]int64, len(keys))
					for pos := 0; pos < len(keys); pos += bs {
						end := pos + bs
						if end > len(keys) {
							end = len(keys)
						}
						chunk := keys[pos:end]
						vals := make([]int64, len(chunk))
						for i, k := range chunk {
							vals[i] = k * 10
							model[k] = k * 10
						}
						results := tr.PutBatch(chunk, vals)
						for i, r := range results {
							if r.Existed {
								t.Fatalf("batch %d: results[%d] (key %d) unexpectedly existed", pos/bs, i, chunk[i])
							}
						}
					}
					checkAgainstModel(t, tr, model)
					st := tr.Stats()
					if st.Inserts() != int64(len(keys)) {
						t.Fatalf("fast+top inserts = %d, want %d", st.Inserts(), len(keys))
					}
					if st.BatchRuns == 0 {
						t.Fatalf("BatchRuns = 0 after batched ingest")
					}
				})
			}
		}
	}
}

// TestPutBatchMatchesSequentialPut is the differential test: a PutBatch
// must be indistinguishable from the same entries applied with Put in
// input order, including per-position results for duplicates.
func TestPutBatchMatchesSequentialPut(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			batched := New[int64, int64](smallConfig(mode))
			serial := New[int64, int64](smallConfig(mode))
			model := make(map[int64]int64)
			for round := 0; round < 40; round++ {
				n := rng.Intn(300)
				keys := make([]int64, n)
				vals := make([]int64, n)
				for i := range keys {
					keys[i] = int64(rng.Intn(2000)) // dense: many dups and updates
					vals[i] = rng.Int63n(1 << 30)
				}
				want := make([]PutResult, n)
				for i := range keys {
					_, existed := serial.Put(keys[i], vals[i])
					want[i] = PutResult{Existed: existed}
					model[keys[i]] = vals[i]
				}
				got := batched.PutBatch(keys, vals)
				if len(got) != n {
					t.Fatalf("round %d: got %d results, want %d", round, len(got), n)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("round %d: results[%d] = %+v, want %+v (key %d)", round, i, got[i], want[i], keys[i])
					}
				}
			}
			checkAgainstModel(t, batched, model)
			if serialLen := serial.Len(); batched.Len() != serialLen {
				t.Fatalf("batched Len = %d, serial Len = %d", batched.Len(), serialLen)
			}
		})
	}
}

func TestPutBatchEmptyAndMismatch(t *testing.T) {
	tr := New[int64, int64](smallConfig(ModeQuIT))
	if res := tr.PutBatch(nil, nil); res != nil {
		t.Fatalf("PutBatch(nil, nil) = %v, want nil", res)
	}
	if res, err := tr.ApplySorted(nil, nil); err != nil || res != nil {
		t.Fatalf("ApplySorted(nil, nil) = (%v, %v), want (nil, nil)", res, err)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after empty batches", tr.Len())
	}
	if _, err := tr.ApplySorted([]int64{1, 2}, []int64{1}); err == nil {
		t.Fatal("ApplySorted length mismatch did not error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("PutBatch length mismatch did not panic")
		}
	}()
	tr.PutBatch([]int64{1, 2}, []int64{1})
}

func TestPutBatchDuplicatesLastWins(t *testing.T) {
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			tr := New[int64, int64](smallConfig(mode))
			tr.Put(5, 50)
			keys := []int64{9, 5, 9, 1, 9}
			vals := []int64{901, 51, 902, 10, 903}
			res := tr.PutBatch(keys, vals)
			wantExisted := []bool{false, true, true, false, true}
			for i, r := range res {
				if r.Existed != wantExisted[i] {
					t.Fatalf("results[%d].Existed = %v, want %v", i, r.Existed, wantExisted[i])
				}
			}
			for k, want := range map[int64]int64{1: 10, 5: 51, 9: 903} {
				if v, ok := tr.Get(k); !ok || v != want {
					t.Fatalf("Get(%d) = (%d,%v), want (%d,true)", k, v, ok, want)
				}
			}
			if tr.Len() != 3 {
				t.Fatalf("Len = %d, want 3", tr.Len())
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("validate: %v", err)
			}
		})
	}
}

func TestApplySorted(t *testing.T) {
	tr := New[int64, int64](smallConfig(ModeQuIT))
	keys := []int64{1, 2, 2, 5, 8}
	vals := []int64{10, 20, 21, 50, 80}
	res, err := tr.ApplySorted(keys, vals)
	if err != nil {
		t.Fatalf("ApplySorted: %v", err)
	}
	want := []bool{false, false, true, false, false}
	for i, r := range res {
		if r.Existed != want[i] {
			t.Fatalf("results[%d].Existed = %v, want %v", i, r.Existed, want[i])
		}
	}
	if v, _ := tr.Get(2); v != 21 {
		t.Fatalf("Get(2) = %d, want 21 (last write wins)", v)
	}
	if _, err := tr.ApplySorted([]int64{3, 1}, []int64{0, 0}); !errors.Is(err, ErrNotSorted) {
		t.Fatalf("unsorted ApplySorted error = %v, want ErrNotSorted", err)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d after rejected batch, want 4", tr.Len())
	}
}

// TestPutBatchMultiWaySplit drives single huge batches through tiny nodes
// so one run carves a leaf into many chunks and root growth spans multiple
// new levels in one propagation.
func TestPutBatchMultiWaySplit(t *testing.T) {
	for _, mode := range allModes {
		for _, sortedInput := range []bool{true, false} {
			name := mode.String() + "/random"
			if sortedInput {
				name = mode.String() + "/sorted"
			}
			t.Run(name, func(t *testing.T) {
				cfg := Config{Mode: mode, LeafCapacity: 4, InternalFanout: 4}
				tr := New[int64, int64](cfg)
				n := 3000
				keys := make([]int64, n)
				vals := make([]int64, n)
				model := make(map[int64]int64, n)
				for i := range keys {
					keys[i] = int64(i) * 2
					vals[i] = int64(i)
					model[keys[i]] = int64(i)
				}
				if !sortedInput {
					rng := rand.New(rand.NewSource(3))
					rng.Shuffle(n, func(i, j int) {
						keys[i], keys[j] = keys[j], keys[i]
						vals[i], vals[j] = vals[j], vals[i]
					})
				}
				tr.PutBatch(keys, vals)
				checkAgainstModel(t, tr, model)

				// A second overlapping batch exercises splits of interior
				// (bounded) leaves and in-batch updates.
				for i := range keys {
					keys[i]++
					model[keys[i]] = vals[i]
				}
				tr.PutBatch(keys, vals)
				checkAgainstModel(t, tr, model)
			})
		}
	}
}

// TestPutBatchAfterMerges batches across a region that deletes have carved
// up (underfull leaves, fresh merges) — the "batch spanning a leaf merge
// window" edge case, single-threaded flavor.
func TestPutBatchAfterMerges(t *testing.T) {
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			tr := New[int64, int64](smallConfig(mode))
			model := make(map[int64]int64)
			for i := int64(0); i < 2000; i++ {
				tr.Put(i, i)
				model[i] = i
			}
			// Delete most of a middle band to force merges/borrows.
			for i := int64(400); i < 1600; i++ {
				if i%5 != 0 {
					tr.Delete(i)
					delete(model, i)
				}
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("validate after deletes: %v", err)
			}
			// Re-ingest the band (plus updates on survivors) in one batch.
			var keys, vals []int64
			for i := int64(300); i < 1700; i++ {
				keys = append(keys, i)
				vals = append(vals, i*7)
				model[i] = i * 7
			}
			tr.PutBatch(keys, vals)
			checkAgainstModel(t, tr, model)
		})
	}
}

// TestPutBatchConcurrentStress mixes batched writers with OLC readers and
// deleters on a synchronized tree (run under -race in CI).
func TestPutBatchConcurrentStress(t *testing.T) {
	rounds := 3
	perWriter := 12
	if testing.Short() {
		rounds = 1
	}
	for _, mode := range []Mode{ModeNone, ModeQuIT} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := Config{Mode: mode, LeafCapacity: 16, InternalFanout: 8, Synchronized: true}
			tr := New[int64, int64](cfg)
			const keySpace = 1 << 16
			for round := 0; round < rounds; round++ {
				var wg sync.WaitGroup
				start := make(chan struct{})
				// Batched writers: one appends near-sorted runs, one sprays
				// random batches.
				for w := 0; w < 2; w++ {
					wg.Add(1)
					go func(w, round int) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(int64(round*10 + w)))
						<-start
						for b := 0; b < perWriter; b++ {
							n := 64 + rng.Intn(192)
							keys := make([]int64, n)
							vals := make([]int64, n)
							base := int64(rng.Intn(keySpace))
							for i := range keys {
								if w == 0 {
									keys[i] = (base + int64(i)) % keySpace // sorted run
								} else {
									keys[i] = int64(rng.Intn(keySpace))
								}
								vals[i] = keys[i] * 3
							}
							tr.PutBatch(keys, vals)
						}
					}(w, round)
				}
				// Deleter.
				wg.Add(1)
				go func(round int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(round*10 + 7)))
					<-start
					for i := 0; i < perWriter*100; i++ {
						tr.Delete(int64(rng.Intn(keySpace)))
					}
				}(round)
				// OLC readers: point gets and short scans; values are always
				// key*3, so torn reads are detectable.
				for r := 0; r < 2; r++ {
					wg.Add(1)
					go func(r, round int) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(int64(round*100 + r)))
						<-start
						for i := 0; i < perWriter*200; i++ {
							k := int64(rng.Intn(keySpace))
							if v, ok := tr.Get(k); ok && v != k*3 {
								t.Errorf("Get(%d) = %d, want %d", k, v, k*3)
								return
							}
							if i%50 == 0 {
								cnt := 0
								tr.Range(k, k+100, func(rk, rv int64) bool {
									if rv != rk*3 {
										t.Errorf("Range saw (%d,%d)", rk, rv)
										return false
									}
									cnt++
									return cnt < 64
								})
							}
						}
					}(r, round)
				}
				close(start)
				wg.Wait()
				if t.Failed() {
					return
				}
				// Quiescent structural check between rounds.
				if err := tr.Validate(); err != nil {
					t.Fatalf("round %d validate: %v", round, err)
				}
			}
		})
	}
}

// TestBatchStatsCounters checks the new BatchRuns/BatchFastRuns counters:
// a near-sorted batched ingest on QuIT should resolve most runs through
// the fast-path metadata.
func TestBatchStatsCounters(t *testing.T) {
	tr := New[int64, int64](smallConfig(ModeQuIT))
	keys := make([]int64, 4096)
	vals := make([]int64, 4096)
	for i := range keys {
		keys[i] = int64(i)
		vals[i] = int64(i)
	}
	for pos := 0; pos < len(keys); pos += 256 {
		tr.PutBatch(keys[pos:pos+256], vals[pos:pos+256])
	}
	st := tr.Stats()
	if st.BatchRuns == 0 || st.BatchFastRuns == 0 {
		t.Fatalf("BatchRuns = %d, BatchFastRuns = %d; want both > 0", st.BatchRuns, st.BatchFastRuns)
	}
	if st.BatchFastRuns > st.BatchRuns {
		t.Fatalf("BatchFastRuns = %d > BatchRuns = %d", st.BatchFastRuns, st.BatchRuns)
	}
	tr.ResetCounters()
	st = tr.Stats()
	if st.BatchRuns != 0 || st.BatchFastRuns != 0 {
		t.Fatalf("counters not reset: %+v", st)
	}
}

// TestSearchKeys pins the branchless shared search against the spec (first
// index i with keys[i] >= k) across sizes and probe positions.
func TestSearchKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for size := 0; size <= 64; size++ {
		keys := make([]int64, size)
		last := int64(0)
		for i := range keys {
			last += int64(rng.Intn(3) + 1)
			keys[i] = last
		}
		probes := append([]int64{-1, 0, last, last + 1}, keys...)
		for _, k := range keys {
			probes = append(probes, k-1, k+1)
		}
		for _, k := range probes {
			want := sort.Search(len(keys), func(i int) bool { return keys[i] >= k })
			if got := searchKeys(keys, k); got != want {
				t.Fatalf("searchKeys(size %d, key %d) = %d, want %d", size, k, got, want)
			}
			wantUB := sort.Search(len(keys), func(i int) bool { return keys[i] > k })
			if got := upperBound(keys, k); got != wantUB {
				t.Fatalf("upperBound(size %d, key %d) = %d, want %d", size, k, got, wantUB)
			}
		}
	}
}
