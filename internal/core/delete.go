package core

// Delete removes key, returning its value and whether it was present.
// Underfull nodes are rebalanced (borrow, then merge) exactly as in a
// classical B+-tree, with one exception from the paper (§4.4): the pole
// leaf is rebalanced lazily — deletions from pole never trigger an eager
// borrow/merge while it still holds entries.
//
// In synchronized mode Delete write-latches the whole descent path: deletes
// are rare in the paper's workloads, so simplicity wins over crabbing here.
func (t *Tree[K, V]) Delete(key K) (V, bool) {
	var zero V
	path, _, _, _ := t.descendForWrite(key, true)
	leaf := path[len(path)-1].n
	i, ok := leaf.find(key)
	if !ok {
		t.unlockPathFrom(path, 0)
		return zero, false
	}
	val := leaf.vals[i]
	leaf.removeAt(i)
	t.c.deletes.Add(1)
	t.size.Add(-1)

	t.lockMeta()
	isFP := t.cfg.Mode != ModeNone && leaf == t.fp.leaf
	if isFP {
		t.fp.size--
	} else if t.fp.prevValid && leaf == t.fp.prev {
		t.fp.prevSize--
	}
	lazy := (t.cfg.Mode == ModePOLE || t.cfg.Mode == ModeQuIT) && isFP && len(leaf.keys) > 0
	t.unlockMeta()

	if len(leaf.keys) >= t.minLeaf || lazy || len(path) == 1 {
		// No rebalance needed: the leaf is healthy, or it is the pole
		// (lazy), or it is the root leaf (exempt from minimums).
		t.unlockPathFrom(path, 0)
		return val, true
	}

	t.rebalance(path)
	t.unlockPathFrom(path, 0)
	return val, true
}

// rebalance restores occupancy minimums from the leaf upward after a
// deletion. path is fully write-latched in synchronized mode.
func (t *Tree[K, V]) rebalance(path []pathEntry[K, V]) {
	touchedFP := false
	for level := len(path) - 1; level >= 1; level-- {
		n := path[level].n
		parent := path[level-1].n
		idx := path[level-1].idx
		if n.isLeaf() {
			if len(n.keys) >= t.minLeaf {
				break
			}
			touchedFP = true // borrows resize neighbors the fp metadata may mirror
			if !t.rebalanceLeaf(n, parent, idx) {
				break // borrowed: parent unchanged beyond a pivot
			}
		} else {
			if len(n.children) >= t.minChildren {
				break
			}
			touchedFP = true
			if !t.rebalanceInternal(n, parent, idx) {
				break
			}
		}
		// A merge shrank parent; loop continues to check it.
	}

	// Root collapse: an internal root with a single child loses a level.
	root := path[0].n
	for !root.isLeaf() && len(root.children) == 1 {
		child := root.children[0]
		t.nInternal.Add(-1)
		t.lockMeta()
		t.root = child
		t.height--
		t.unlockMeta()
		// The old root stays latched (it is in path and will be unlocked
		// by the caller); nobody can reach it anymore.
		root = child
		touchedFP = true
	}

	if touchedFP && t.cfg.Mode != ModeNone {
		// Structural changes may have freed or resized nodes the fast-path
		// metadata refers to; recover conservatively (§4.3 reset spirit).
		t.lockMeta()
		t.resetFPToTail()
		t.unlockMeta()
	}
}

// rebalanceLeaf fixes an underfull leaf via borrow or merge. It returns
// true when a merge removed a child from parent (parent may now be
// underfull), false when a borrow sufficed.
func (t *Tree[K, V]) rebalanceLeaf(n, parent *node[K, V], idx int) bool {
	// Try borrowing from the right sibling.
	if idx+1 < len(parent.children) {
		sib := parent.children[idx+1]
		t.wlock(sib)
		if len(sib.keys) > t.minLeaf {
			n.keys = append(n.keys, sib.keys[0])
			n.vals = append(n.vals, sib.vals[0])
			sib.removeAt(0)
			parent.keys[idx] = sib.keys[0]
			t.wunlock(sib)
			t.c.borrows.Add(1)
			return false
		}
		t.wunlock(sib)
	}
	// Try borrowing from the left sibling. Lock order: left before n, so
	// release and reacquire; the subtree is writer-quiescent because the
	// whole path is latched.
	if idx > 0 {
		sib := parent.children[idx-1]
		if t.synced {
			t.wunlock(n)
			t.wlock(sib)
			t.wlock(n)
		}
		if len(sib.keys) > t.minLeaf {
			last := len(sib.keys) - 1
			k, v := sib.keys[last], sib.vals[last]
			sib.removeAt(last)
			n.insertAt(0, k, v)
			parent.keys[idx-1] = k
			if t.synced {
				t.wunlock(sib)
			}
			t.c.borrows.Add(1)
			return false
		}
		if t.synced {
			t.wunlock(sib)
		}
	}
	// Merge. Prefer absorbing the right sibling into n; otherwise merge n
	// into its left sibling.
	if idx+1 < len(parent.children) {
		sib := parent.children[idx+1]
		t.wlock(sib)
		t.mergeLeaves(n, sib)
		parent.removeChildAt(idx)
		t.wunlock(sib)
		return true
	}
	sib := parent.children[idx-1]
	if t.synced {
		t.wunlock(n)
		t.wlock(sib)
		t.wlock(n)
	}
	t.mergeLeaves(sib, n)
	parent.removeChildAt(idx - 1)
	if t.synced {
		t.wunlock(sib)
	}
	return true
}

// mergeLeaves appends right's entries into left and unlinks right from the
// leaf chain. Caller holds both latches in synchronized mode.
func (t *Tree[K, V]) mergeLeaves(left, right *node[K, V]) {
	left.keys = append(left.keys, right.keys...)
	left.vals = append(left.vals, right.vals...)
	t.lockMeta()
	left.next = right.next
	if right.next != nil {
		right.next.prev = left
	} else {
		t.tail = left
	}
	t.unlockMeta()
	right.next, right.prev = nil, nil
	right.keys, right.vals = nil, nil
	t.nLeaves.Add(-1)
	t.c.merges.Add(1)
}

// rebalanceInternal fixes an underfull internal node via rotation or merge.
// Returns true when a merge removed a child from parent.
func (t *Tree[K, V]) rebalanceInternal(n, parent *node[K, V], idx int) bool {
	// Rotate from the right sibling.
	if idx+1 < len(parent.children) {
		sib := parent.children[idx+1]
		t.wlock(sib)
		if len(sib.children) > t.minChildren {
			n.keys = append(n.keys, parent.keys[idx])
			n.children = append(n.children, sib.children[0])
			parent.keys[idx] = sib.keys[0]
			copy(sib.keys, sib.keys[1:])
			sib.keys = sib.keys[:len(sib.keys)-1]
			copy(sib.children, sib.children[1:])
			sib.children[len(sib.children)-1] = nil
			sib.children = sib.children[:len(sib.children)-1]
			t.wunlock(sib)
			t.c.borrows.Add(1)
			return false
		}
		t.wunlock(sib)
	}
	// Rotate from the left sibling (internal nodes are only reached through
	// the latched parent, so direct locking is deadlock-free).
	if idx > 0 {
		sib := parent.children[idx-1]
		t.wlock(sib)
		if len(sib.children) > t.minChildren {
			lastK := len(sib.keys) - 1
			lastC := len(sib.children) - 1
			n.keys = append(n.keys, *new(K))
			copy(n.keys[1:], n.keys)
			n.keys[0] = parent.keys[idx-1]
			n.children = append(n.children, nil)
			copy(n.children[1:], n.children)
			n.children[0] = sib.children[lastC]
			parent.keys[idx-1] = sib.keys[lastK]
			sib.keys = sib.keys[:lastK]
			sib.children[lastC] = nil
			sib.children = sib.children[:lastC]
			t.wunlock(sib)
			t.c.borrows.Add(1)
			return false
		}
		t.wunlock(sib)
	}
	// Merge with a sibling, pulling the separating pivot down.
	if idx+1 < len(parent.children) {
		sib := parent.children[idx+1]
		t.wlock(sib)
		n.keys = append(n.keys, parent.keys[idx])
		n.keys = append(n.keys, sib.keys...)
		n.children = append(n.children, sib.children...)
		sib.keys, sib.children = nil, nil
		parent.removeChildAt(idx)
		t.wunlock(sib)
		t.nInternal.Add(-1)
		t.c.merges.Add(1)
		return true
	}
	sib := parent.children[idx-1]
	t.wlock(sib)
	sib.keys = append(sib.keys, parent.keys[idx-1])
	sib.keys = append(sib.keys, n.keys...)
	sib.children = append(sib.children, n.children...)
	n.keys, n.children = nil, nil
	parent.removeChildAt(idx - 1)
	t.wunlock(sib)
	t.nInternal.Add(-1)
	t.c.merges.Add(1)
	return true
}
