package core

// Delete removes key, returning its value and whether it was present.
// Underfull nodes are rebalanced (borrow, then merge) exactly as in a
// classical B+-tree, with one exception from the paper (§4.4): the pole
// leaf is rebalanced lazily — deletions from pole never trigger an eager
// borrow/merge while it still holds entries.
//
// In synchronized mode the common case (the leaf stays at or above its
// minimum, or is exempt) descends optimistically and write-latches only the
// leaf; deletions that need a rebalance fall back to a descent that
// write-latches the whole path — deletes are rare in the paper's workloads,
// so simplicity wins over crabbing there.
func (t *Tree[K, V]) Delete(key K) (V, bool) {
	if v, ok, handled := t.tryOptimisticDelete(key); handled {
		return v, ok
	}
	return t.pessimisticDelete(key)
}

// tryOptimisticDelete handles misses and removals that cannot underflow the
// leaf. handled is false when the removal would trigger a rebalance (or a
// QuIT lazy-pole decision says otherwise after latching); version conflicts
// retry the descent, counted in Stats.OLCRestarts.
func (t *Tree[K, V]) tryOptimisticDelete(key K) (val V, existed, handled bool) {
	for {
		leaf, v := t.descendToLeaf(key)
		i, found := leaf.find(key)
		if !found {
			if !t.readUnlatch(leaf, v) {
				t.olcRestart()
				continue
			}
			return val, false, true
		}
		if !t.upgradeLatch(leaf, v) {
			t.olcRestart()
			continue
		}
		// The latch is held: state is now stable and the version check
		// proved it unchanged since find, so i is still key's slot.
		isRoot := t.root.Load() == leaf

		t.lockMeta()
		isFP := t.cfg.Mode != ModeNone && leaf == t.fp.leaf
		isPrev := !isFP && t.fp.prevValid && leaf == t.fp.prev
		// Lazy pole rule: pre-removal count > 1 means the pole still holds
		// entries afterwards, so no rebalance regardless of occupancy.
		lazy := (t.cfg.Mode == ModePOLE || t.cfg.Mode == ModeQuIT) && isFP && leaf.leafCount() > 1
		healthy := leaf.leafCount() > t.minLeaf // post-removal >= minLeaf
		if !healthy && !lazy && !isRoot {
			t.unlockMeta()
			t.writeUnlatch(leaf)
			return val, false, false
		}
		if isFP {
			t.fp.size--
		} else if isPrev {
			t.fp.prevSize--
		}
		t.unlockMeta()

		val = leaf.vals[i]
		leaf.gapRemove(i)
		t.c.deletes.Add(1)
		t.size.Add(-1)
		t.writeUnlatch(leaf)
		return val, true, true
	}
}

// pessimisticDelete write-latches the full descent path, removes key, and
// rebalances upward as needed.
func (t *Tree[K, V]) pessimisticDelete(key K) (V, bool) {
	var zero V
	path, _, _, _ := t.descendForWrite(key, true)
	leaf := path[len(path)-1].n
	i, ok := leaf.find(key)
	if !ok {
		t.unlockPathFrom(path, 0)
		return zero, false
	}
	val := leaf.vals[i]
	//quitlint:allow gapwrite leaf arrives write-latched in the path slice from descendForWrite's crabbed descent
	leaf.gapRemove(i)
	t.c.deletes.Add(1)
	t.size.Add(-1)

	t.lockMeta()
	isFP := t.cfg.Mode != ModeNone && leaf == t.fp.leaf
	if isFP {
		t.fp.size--
	} else if t.fp.prevValid && leaf == t.fp.prev {
		t.fp.prevSize--
	}
	lazy := (t.cfg.Mode == ModePOLE || t.cfg.Mode == ModeQuIT) && isFP && leaf.leafCount() > 0
	t.unlockMeta()

	if leaf.leafCount() >= t.minLeaf || lazy || len(path) == 1 {
		// No rebalance needed: the leaf is healthy, or it is the pole
		// (lazy), or it is the root leaf (exempt from minimums).
		t.unlockPathFrom(path, 0)
		return val, true
	}

	t.rebalance(path)
	t.unlockPathFrom(path, 0)
	return val, true
}

// rebalance restores occupancy minimums from the leaf upward after a
// deletion. path is fully write-latched in synchronized mode.
func (t *Tree[K, V]) rebalance(path []pathEntry[K, V]) {
	touchedFP := false
	for level := len(path) - 1; level >= 1; level-- {
		n := path[level].n
		parent := path[level-1].n
		idx := path[level-1].idx
		if n.isLeaf() {
			if n.leafCount() >= t.minLeaf {
				break
			}
			touchedFP = true // borrows resize neighbors the fp metadata may mirror
			if !t.rebalanceLeaf(n, parent, idx) {
				break // borrowed: parent unchanged beyond a pivot
			}
		} else {
			if len(n.children) >= t.minChildren {
				break
			}
			touchedFP = true
			if !t.rebalanceInternal(n, parent, idx) {
				break
			}
		}
		// A merge shrank parent; loop continues to check it.
	}

	// Root collapse: an internal root with a single child loses a level.
	// The child is on path (write-latched), so the swap is atomic for
	// optimistic readers: readRoot re-checks the pointer inside its section.
	root := path[0].n
	for !root.isLeaf() && len(root.children) == 1 {
		child := root.children[0]
		t.nInternal.Add(-1)
		t.root.Store(child)
		t.height.Add(-1)
		// The old root stays latched (it is in path and will be unlocked by
		// the caller); mark it so readers holding a stale pointer restart.
		t.markObsolete(root)
		root = child
		touchedFP = true
	}

	if touchedFP && t.cfg.Mode != ModeNone {
		// Structural changes may have freed or resized nodes the fast-path
		// metadata refers to; recover conservatively (§4.3 reset spirit).
		t.lockMeta()
		t.resetFPToTail()
		t.unlockMeta()
	}
}

// rebalanceLeaf fixes an underfull leaf via borrow or merge. It returns
// true when a merge removed a child from parent (parent may now be
// underfull), false when a borrow sufficed or the leaf recovered on its
// own.
//
// Latching the left sibling requires releasing n and reacquiring both in
// left-to-right order (deadlock-freedom with forward scans). Descending
// writers cannot slip in — the whole path is latched — but a fast-path
// insert reaches fp.leaf through the metadata, not the latched path, and
// can grow n during that window. Deciding borrow-vs-merge from sizes read
// before the window could then merge leaves whose combined size exceeds
// the fixed leaf capacity, reallocating the backing arrays and breaking
// the no-reallocation invariant optimistic readers depend on. So: open the
// window once, up front, and make every decision from sizes read while all
// latches are held (fast inserts only ever grow n, so the underflow
// re-check is the only direction needed).
func (t *Tree[K, V]) rebalanceLeaf(n, parent *node[K, V], idx int) bool {
	var left, right *node[K, V]
	if idx > 0 {
		left = parent.children[idx-1]
		t.writeUnlatch(n)
		t.writeLatch(left)
		t.writeLatch(n)
	}
	if idx+1 < len(parent.children) {
		right = parent.children[idx+1]
		t.writeLatch(right)
	}
	unlatchSibs := func() {
		if left != nil {
			t.writeUnlatch(left)
		}
		if right != nil {
			t.writeUnlatch(right)
		}
	}

	if n.leafCount() >= t.minLeaf {
		// A fast-path insert refilled n during the reacquire window.
		unlatchSibs()
		return false
	}
	// Try borrowing from the right sibling.
	if right != nil && right.leafCount() > t.minLeaf {
		s := right.minSlot()
		n.gapInsert(right.keys[s], right.vals[s])
		right.gapRemove(s)
		parent.keys[idx] = right.minKey()
		unlatchSibs()
		t.c.borrows.Add(1)
		return false
	}
	// Try borrowing from the left sibling.
	if left != nil && left.leafCount() > t.minLeaf {
		s := left.maxSlot()
		k, v := left.keys[s], left.vals[s]
		left.gapRemove(s)
		n.gapInsert(k, v)
		parent.keys[idx-1] = k
		unlatchSibs()
		t.c.borrows.Add(1)
		return false
	}
	// Merge. Both sides are at most minLeaf and n is below it, so the
	// merged leaf fits capacity. Prefer absorbing the right sibling into n;
	// otherwise merge n into its left sibling.
	if right != nil {
		t.mergeLeaves(n, right)
		parent.removeChildAt(idx)
		t.markObsolete(right)
		unlatchSibs()
		return true
	}
	t.mergeLeaves(left, n)
	parent.removeChildAt(idx - 1)
	// n was absorbed; it stays latched until the caller unwinds path, and
	// the obsolete tag survives the unlatch.
	t.markObsolete(n)
	unlatchSibs()
	return true
}

// mergeLeaves appends right's live entries into left and unlinks right from
// the leaf chain. Caller holds both latches in synchronized mode and marks
// right obsolete. left is compacted first if interior gaps have consumed
// its tail room (both counts sum to at most LeafCapacity, so the entries
// always fit the fixed backing). The absorbed node's slices are truncated,
// never nil-ed: an optimistic reader still inside right must only ever
// observe the original backing arrays with a shorter length, so its reads
// stay in bounds until version validation rejects them.
func (t *Tree[K, V]) mergeLeaves(left, right *node[K, V]) {
	m := right.leafCount()
	if cap(left.keys)-len(left.keys) < m {
		left.compact()
	}
	for s := right.minSlot(); s >= 0; s = right.nextPresent(s + 1) {
		left.keys = append(left.keys, right.keys[s])
		left.vals = append(left.vals, right.vals[s])
		left.setBit(len(left.keys) - 1)
	}
	left.count += int32(m)
	next := right.next.Load()
	left.next.Store(next)
	if next != nil {
		next.prev.Store(left)
	} else {
		t.tail.Store(left)
	}
	right.truncateLive(0)
	t.nLeaves.Add(-1)
	t.c.merges.Add(1)
}

// rebalanceInternal fixes an underfull internal node via rotation or merge.
// Returns true when a merge removed a child from parent.
func (t *Tree[K, V]) rebalanceInternal(n, parent *node[K, V], idx int) bool {
	// Rotate from the right sibling.
	if idx+1 < len(parent.children) {
		sib := parent.children[idx+1]
		t.writeLatch(sib)
		if len(sib.children) > t.minChildren {
			n.keys = append(n.keys, parent.keys[idx])
			n.children = append(n.children, sib.children[0])
			parent.keys[idx] = sib.keys[0]
			copy(sib.keys, sib.keys[1:])
			sib.keys = sib.keys[:len(sib.keys)-1]
			copy(sib.children, sib.children[1:])
			sib.children[len(sib.children)-1] = nil
			sib.children = sib.children[:len(sib.children)-1]
			t.writeUnlatch(sib)
			t.c.borrows.Add(1)
			return false
		}
		t.writeUnlatch(sib)
	}
	// Rotate from the left sibling (internal nodes are only reached through
	// the latched parent, so direct locking is deadlock-free).
	if idx > 0 {
		sib := parent.children[idx-1]
		t.writeLatch(sib)
		if len(sib.children) > t.minChildren {
			lastK := len(sib.keys) - 1
			lastC := len(sib.children) - 1
			n.keys = append(n.keys, *new(K))
			copy(n.keys[1:], n.keys)
			n.keys[0] = parent.keys[idx-1]
			n.children = append(n.children, nil)
			copy(n.children[1:], n.children)
			n.children[0] = sib.children[lastC]
			parent.keys[idx-1] = sib.keys[lastK]
			sib.keys = sib.keys[:lastK]
			sib.children[lastC] = nil
			sib.children = sib.children[:lastC]
			t.writeUnlatch(sib)
			t.c.borrows.Add(1)
			return false
		}
		t.writeUnlatch(sib)
	}
	// Merge with a sibling, pulling the separating pivot down. The absorbed
	// node's slices are truncated (not nil-ed) for the same torn-reader
	// reason as mergeLeaves; note children stays non-nil so a stale reader
	// never misclassifies the node as a leaf.
	if idx+1 < len(parent.children) {
		sib := parent.children[idx+1]
		t.writeLatch(sib)
		n.keys = append(n.keys, parent.keys[idx])
		n.keys = append(n.keys, sib.keys...)
		n.children = append(n.children, sib.children...)
		sib.keys = sib.keys[:0]
		sib.children = sib.children[:0]
		parent.removeChildAt(idx)
		t.markObsolete(sib)
		t.writeUnlatch(sib)
		t.nInternal.Add(-1)
		t.c.merges.Add(1)
		return true
	}
	sib := parent.children[idx-1]
	t.writeLatch(sib)
	sib.keys = append(sib.keys, parent.keys[idx-1])
	sib.keys = append(sib.keys, n.keys...)
	sib.children = append(sib.children, n.children...)
	n.keys = n.keys[:0]
	n.children = n.children[:0]
	parent.removeChildAt(idx - 1)
	t.markObsolete(n)
	t.writeUnlatch(sib)
	t.nInternal.Add(-1)
	t.c.merges.Add(1)
	return true
}
