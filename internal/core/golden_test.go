package core

import (
	"reflect"
	"testing"
)

// Golden traces: exact leaf layouts for hand-derived workloads pin the
// split policies (Algorithms 1 and 2) against regressions. Capacity 8,
// fanout 5, so arithmetic stays checkable by hand.

func goldenConfig(mode Mode) Config {
	return Config{Mode: mode, LeafCapacity: 8, InternalFanout: 5}
}

func liveKeys[K Integer, V any](n *node[K, V]) []K {
	out := make([]K, 0, n.leafCount())
	for s := n.nextPresent(0); s >= 0 && s < len(n.keys); s = n.nextPresent(s + 1) {
		out = append(out, n.keys[s])
	}
	return out
}

func goldenLeafKeys(t *Tree[int64, int64]) [][]int64 {
	var out [][]int64
	for n := t.head.Load(); n != nil; n = n.next.Load() {
		out = append(out, liveKeys(n))
	}
	return out
}

func seq(lo, hi int64) []int64 { // inclusive
	out := make([]int64, 0, hi-lo+1)
	for k := lo; k <= hi; k++ {
		out = append(out, k)
	}
	return out
}

func TestGoldenQuITSortedTrace(t *testing.T) {
	// Inserts 0..19 into QuIT (cap 8):
	//  - 0..7 fill the root leaf; 8 forces the first split. pole_prev is
	//    not established, so Algorithm 1's default 50% split applies:
	//    [0..3] | [4..7], and the initialization rule marks the half that
	//    received key 8 (the right) as pole.
	//  - 9..11 fill pole to [4..11]; 12 triggers the variable split with
	//    p=0, q=4, prev_size=4, pole_size=8: x = 4 + (4/4)*8*1.5 = 16, so
	//    no key is an outlier (l=8) and the split lands at l-1=7:
	//    [4..10] | [11], pole moves right.
	//  - 13..18 fill pole to [11..18]; 19 repeats the pattern with
	//    x = 11 + (7/7)*8*1.5 = 23: split [11..17] | [18].
	tr := New[int64, int64](goldenConfig(ModeQuIT))
	for i := int64(0); i < 20; i++ {
		tr.Put(i, i)
	}
	want := [][]int64{seq(0, 3), seq(4, 10), seq(11, 17), {18, 19}}
	if got := goldenLeafKeys(tr); !reflect.DeepEqual(got, want) {
		t.Fatalf("leaf layout:\n got %v\nwant %v", got, want)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("gap invariants: %v", err)
	}
	if tr.fp.leaf != tr.tail.Load() {
		t.Fatal("pole is not the tail after sorted ingestion")
	}
	if !tr.fp.prevValid || tr.fp.prevMin != 11 || tr.fp.prevSize != 7 {
		t.Fatalf("pole_prev metadata: min=%d size=%d valid=%v",
			tr.fp.prevMin, tr.fp.prevSize, tr.fp.prevValid)
	}
}

func TestGoldenQuITOutlierBurstTrace(t *testing.T) {
	// Continue the sorted trace with an outlier burst. The pole ([18,19])
	// is the tail, so outliers 100000,100010,...,100050 fast-insert into
	// it until it is full; the next outlier forces Algorithm 2 with
	// x = 18 + (18-11)/7 * 8 * 1.5 = 30, so l=2 (the first outlier's
	// position): a keep split [18,19] | [outliers], the pole keeps its
	// place with fp_max = 100000, and the burst continues into the new
	// node through top-inserts (its keys exceed fp_max).
	tr := New[int64, int64](Config{Mode: ModeQuIT, LeafCapacity: 8, InternalFanout: 5, ResetThreshold: 1000})
	for i := int64(0); i < 20; i++ {
		tr.Put(i, i)
	}
	for i := int64(0); i < 8; i++ {
		tr.Put(100000+i*10, i)
	}
	want := [][]int64{
		seq(0, 3), seq(4, 10), seq(11, 17), {18, 19},
		{100000, 100010, 100020, 100030, 100040, 100050, 100060, 100070},
	}
	if got := goldenLeafKeys(tr); !reflect.DeepEqual(got, want) {
		t.Fatalf("leaf layout:\n got %v\nwant %v", got, want)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("gap invariants: %v", err)
	}
	if tr.fp.leaf.minKey() != 18 {
		t.Fatalf("pole moved to %v", liveKeys(tr.fp.leaf))
	}
	if !tr.fp.hasMax || tr.fp.max != 100000 {
		t.Fatalf("fp_max = (%d,%v), want (100000,true)", tr.fp.max, tr.fp.hasMax)
	}
	st := tr.Stats()
	if st.VariableSplits != 3 {
		t.Fatalf("VariableSplits = %d, want 3 (two keep-right, one keep-left)", st.VariableSplits)
	}
	// In-order keys keep fast-inserting into the kept pole.
	tr.ResetCounters()
	for i := int64(20); i < 26; i++ {
		tr.Put(i, i)
	}
	if st := tr.Stats(); st.TopInserts != 0 {
		t.Fatalf("post-burst in-order keys: %d top-inserts", st.TopInserts)
	}
}

func TestGoldenClassical5050Trace(t *testing.T) {
	// The classical B+-tree always splits at 50%: sorted 0..19 leaves the
	// textbook half-full cascade (the rightmost leaf is full but splits
	// only when the next insert arrives).
	tr := New[int64, int64](goldenConfig(ModeNone))
	for i := int64(0); i < 20; i++ {
		tr.Put(i, i)
	}
	want := [][]int64{seq(0, 3), seq(4, 7), seq(8, 11), seq(12, 19)}
	if got := goldenLeafKeys(tr); !reflect.DeepEqual(got, want) {
		t.Fatalf("leaf layout:\n got %v\nwant %v", got, want)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("gap invariants: %v", err)
	}
}

func TestGoldenLILSplitTrace(t *testing.T) {
	// Fig. 4 mechanics: lil follows the half that received the key.
	tr := New[int64, int64](goldenConfig(ModeLIL))
	for i := int64(0); i < 8; i++ {
		tr.Put(i*10, i) // [0,10,...,70] full
	}
	tr.Put(35, 0) // split [0..30] | [40..70]; 35 goes left, lil = left
	if tr.fp.leaf.minKey() != 0 {
		t.Fatalf("lil leaf = %v, want the left half", liveKeys(tr.fp.leaf))
	}
	if !tr.fp.hasMax || tr.fp.max != 40 {
		t.Fatalf("lil fp_max = (%d,%v), want (40,true)", tr.fp.max, tr.fp.hasMax)
	}
	want := [][]int64{{0, 10, 20, 30, 35}, {40, 50, 60, 70}}
	if got := goldenLeafKeys(tr); !reflect.DeepEqual(got, want) {
		t.Fatalf("leaf layout:\n got %v\nwant %v", got, want)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("gap invariants: %v", err)
	}
}

func TestGoldenRedistributionTrace(t *testing.T) {
	// Fig. 7c: engineer pole_prev under half full, then fill pole and
	// watch entries flow backward instead of splitting.
	tr := New[int64, int64](Config{Mode: ModeQuIT, LeafCapacity: 8, InternalFanout: 5, ResetThreshold: 1000})
	// Sorted ramp: pole=[18,19], prev=[11..17] (7 entries, >= half).
	for i := int64(0); i < 20; i++ {
		tr.Put(i, i)
	}
	// Outlier burst far ahead: keep split leaves pole=[18,19] with the
	// outliers quarantined to the right.
	for i := int64(0); i < 8; i++ {
		tr.Put(1000+i, i)
	}
	// In-order keys fill the kept pole [18,19] -> [18..25]; the next split
	// has prev=[11..17] (>= half), so it is a variable split:
	// x = 18 + 1*8*1.5 = 30 -> l = 8, keep-right at pos 7.
	for i := int64(20); i < 27; i++ {
		tr.Put(i, i)
	}
	// Now pole=[25,26], prev=[18..24]. Manufacture an underfull prev by
	// deleting from it (deletes outside pole rebalance, so take just two,
	// leaving 5 >= minLeaf=4 — no merge).
	tr.Delete(20)
	tr.Delete(21)
	// Deletion resets the fast path to the tail conservatively; bring the
	// pole back to the frontier with in-order inserts (reset threshold is
	// high, so it comes back via a split/catch-up chain).
	for i := int64(27); i < 40; i++ {
		tr.Put(i, i)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// The exact layout here depends on the recovery path; the invariant we
	// pin is that every key survived.
	wantKeys := map[int64]bool{}
	for i := int64(0); i < 40; i++ {
		if i == 20 || i == 21 {
			continue
		}
		wantKeys[i] = true
	}
	for i := int64(0); i < 8; i++ {
		wantKeys[1000+i] = true
	}
	if tr.Len() != len(wantKeys) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(wantKeys))
	}
	for k := range wantKeys {
		if !tr.Contains(k) {
			t.Fatalf("key %d lost", k)
		}
	}
}
