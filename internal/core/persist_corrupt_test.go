package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"testing"
)

// snapshotBytes saves a tree with n sequential entries and returns the raw
// v2 stream.
func snapshotBytes(t *testing.T, n int) []byte {
	t.Helper()
	tr := New[int64, int64](Config{LeafCapacity: 8, InternalFanout: 8})
	for i := 0; i < n; i++ {
		tr.Insert(int64(i), int64(i)*10)
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// frameBoundaries returns the stream offsets at which a v2 frame starts or
// the stream validly ends: [len(magic), after frame 1, after frame 2, ...].
func frameBoundaries(t *testing.T, snap []byte) []int {
	t.Helper()
	off := len(snapshotMagicV2)
	bounds := []int{off}
	for off < len(snap) {
		if off+9 > len(snap) {
			t.Fatalf("stream ends inside a frame prefix at %d", off)
		}
		n := int(binary.LittleEndian.Uint32(snap[off+1 : off+5]))
		off += 9 + n
		bounds = append(bounds, off)
	}
	if off != len(snap) {
		t.Fatalf("frame walk overshoots: %d != %d", off, len(snap))
	}
	return bounds
}

func loadSnap(snap []byte) (*Tree[int64, int64], error) {
	return Load[int64, int64](bytes.NewReader(snap), Config{})
}

func TestLoadTruncationAtEveryFrameBoundary(t *testing.T) {
	// Enough entries for several chunk frames.
	snap := snapshotBytes(t, 3*snapshotChunk+17)
	bounds := frameBoundaries(t, snap)
	if len(bounds) < 4 { // magic + header + >=2 chunks is the point of the test
		t.Fatalf("expected multiple frames, got boundaries %v", bounds)
	}
	for _, cut := range bounds[:len(bounds)-1] { // last boundary = intact stream
		tr, err := loadSnap(snap[:cut])
		if tr != nil || err == nil {
			t.Fatalf("cut at boundary %d: Load = (%v, %v), want typed error", cut, tr, err)
		}
		if !errors.Is(err, ErrTruncatedSnapshot) {
			t.Errorf("cut at boundary %d: err = %v, want ErrTruncatedSnapshot", cut, err)
		}
		if !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("cut at boundary %d: err = %v does not match ErrBadSnapshot", cut, err)
		}
	}
	// Mid-frame cuts: inside the prefix and inside the payload.
	for _, delta := range []int{1, 5, 9, 10} {
		cut := bounds[1] + delta // inside the first chunk frame
		if _, err := loadSnap(snap[:cut]); !errors.Is(err, ErrTruncatedSnapshot) {
			t.Errorf("mid-frame cut at %d: err = %v, want ErrTruncatedSnapshot", cut, err)
		}
	}
	// Truncated magic.
	for _, cut := range []int{0, 1, len(snapshotMagicV2) - 1} {
		if _, err := loadSnap(snap[:cut]); !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("magic cut at %d: err = %v, want ErrBadSnapshot", cut, err)
		}
	}
}

func TestLoadFlippedBytes(t *testing.T) {
	snap := snapshotBytes(t, 2*snapshotChunk+5)
	bounds := frameBoundaries(t, snap)
	// One offset inside every frame's payload, plus prefix bytes (kind,
	// length, CRC) of the first chunk frame.
	offs := []int{}
	for i := 0; i+1 < len(bounds); i++ {
		offs = append(offs, bounds[i]+9+2) // payload byte of frame i
	}
	start := bounds[1]
	offs = append(offs, start, start+1, start+5) // kind, length, crc of chunk 1
	for _, off := range offs {
		bad := append([]byte(nil), snap...)
		bad[off] ^= 0x40
		tr, err := loadSnap(bad)
		if err == nil {
			t.Errorf("flip at %d: Load accepted a corrupt stream", off)
			continue
		}
		if tr != nil {
			t.Errorf("flip at %d: Load returned a tree alongside %v", off, err)
		}
		if !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("flip at %d: err = %v does not match ErrBadSnapshot", off, err)
		}
	}
	// A flip in the raw magic makes the stream not-a-v2-snapshot.
	bad := append([]byte(nil), snap...)
	bad[3] ^= 0x01
	if _, err := loadSnap(bad); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("magic flip: err = %v, want ErrBadSnapshot", err)
	}
}

func TestLoadRejectsTrailingGarbage(t *testing.T) {
	snap := snapshotBytes(t, 100)
	for _, extra := range [][]byte{{0x00}, []byte("junk"), snap} {
		tr, err := loadSnap(append(append([]byte(nil), snap...), extra...))
		if tr != nil || !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("trailing %d bytes: Load = (%v, %v), want ErrCorruptSnapshot", len(extra), tr, err)
		}
	}
}

// corruptHeaderStream builds a v2 stream whose header frame is valid at the
// framing layer but carries the given header.
func corruptHeaderStream(t *testing.T, hdr snapshotHeader) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString(snapshotMagicV2)
	if err := encodeFrame(&buf, frameHeader, hdr); err != nil {
		t.Fatal(err)
	}
	if err := encodeFrame(&buf, frameTail, snapshotTail{Count: hdr.Count}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLoadRejectsBadGeometry(t *testing.T) {
	good := snapshotHeader{
		Magic: snapshotMagic, Version: snapshotVersion, Count: 0,
		Mode: uint8(ModeQuIT), LeafCapacity: 510, InternalFanout: 256,
		IKRScale: 1.5, ResetThreshold: 22,
	}
	mutate := func(fn func(*snapshotHeader)) snapshotHeader {
		h := good
		fn(&h)
		return h
	}
	cases := []struct {
		name string
		hdr  snapshotHeader
	}{
		{"negative count", mutate(func(h *snapshotHeader) { h.Count = -1 })},
		{"absurd count", mutate(func(h *snapshotHeader) { h.Count = maxSnapshotCount + 1 })},
		{"unknown mode", mutate(func(h *snapshotHeader) { h.Mode = 200 })},
		{"zero leaf capacity", mutate(func(h *snapshotHeader) { h.LeafCapacity = 0 })},
		{"negative leaf capacity", mutate(func(h *snapshotHeader) { h.LeafCapacity = -510 })},
		{"absurd leaf capacity", mutate(func(h *snapshotHeader) { h.LeafCapacity = maxSnapshotGeometry + 1 })},
		{"zero fanout", mutate(func(h *snapshotHeader) { h.InternalFanout = 0 })},
		{"absurd fanout", mutate(func(h *snapshotHeader) { h.InternalFanout = maxSnapshotGeometry + 1 })},
		{"NaN ikr", mutate(func(h *snapshotHeader) { h.IKRScale = nan() })},
		{"negative ikr", mutate(func(h *snapshotHeader) { h.IKRScale = -1 })},
		{"huge ikr", mutate(func(h *snapshotHeader) { h.IKRScale = 1e12 })},
		{"negative reset", mutate(func(h *snapshotHeader) { h.ResetThreshold = -1 })},
		{"absurd reset", mutate(func(h *snapshotHeader) { h.ResetThreshold = 1<<30 + 1 })},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr, err := loadSnap(corruptHeaderStream(t, tc.hdr))
			if tr != nil || !errors.Is(err, ErrCorruptSnapshot) {
				t.Fatalf("Load = (%v, %v), want ErrCorruptSnapshot", tr, err)
			}
		})
	}
	// The unmutated header must pass, proving the cases fail for the
	// mutated field and not something else.
	if tr, err := loadSnap(corruptHeaderStream(t, good)); err != nil || tr == nil {
		t.Fatalf("control header failed: (%v, %v)", tr, err)
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

func TestLoadRejectsCountMismatch(t *testing.T) {
	// Tail disagrees with header: header says 5, stream carries 3.
	var buf bytes.Buffer
	buf.WriteString(snapshotMagicV2)
	hdr := snapshotHeader{
		Magic: snapshotMagic, Version: snapshotVersion, Count: 5,
		Mode: uint8(ModeQuIT), LeafCapacity: 8, InternalFanout: 8,
		IKRScale: 1.5, ResetThreshold: 2,
	}
	if err := encodeFrame(&buf, frameHeader, hdr); err != nil {
		t.Fatal(err)
	}
	chunk := snapshotChunkRec[int64, int64]{Keys: []int64{1, 2, 3}, Vals: []int64{10, 20, 30}}
	if err := encodeFrame(&buf, frameChunk, chunk); err != nil {
		t.Fatal(err)
	}
	if err := encodeFrame(&buf, frameTail, snapshotTail{Count: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := loadSnap(buf.Bytes()); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("count mismatch: err = %v, want ErrCorruptSnapshot", err)
	}
}

func TestLoadV1Compat(t *testing.T) {
	// Replicate the v1 on-disk encoding: one gob stream, header record then
	// chunk records, no magic, no checksums, no tail.
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	const n = 1000
	hdr := snapshotHeader{
		Magic: snapshotMagic, Version: 1, Count: n,
		Mode: uint8(ModeQuIT), LeafCapacity: 16, InternalFanout: 8,
		IKRScale: 1.5, ResetThreshold: 4,
	}
	if err := enc.Encode(hdr); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 256 {
		chunk := snapshotChunkRec[int64, int64]{}
		for j := i; j < i+256 && j < n; j++ {
			chunk.Keys = append(chunk.Keys, int64(j))
			chunk.Vals = append(chunk.Vals, int64(j)*3)
		}
		if err := enc.Encode(chunk); err != nil {
			t.Fatal(err)
		}
	}
	v1 := buf.Bytes()

	tr, err := loadSnap(v1)
	if err != nil {
		t.Fatalf("v1 stream failed to load: %v", err)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	if v, ok := tr.Get(999); !ok || v != 999*3 {
		t.Fatalf("Get(999) = (%d, %v)", v, ok)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}

	// Truncated v1 stream → ErrTruncatedSnapshot.
	if _, err := loadSnap(v1[:len(v1)/2]); !errors.Is(err, ErrTruncatedSnapshot) {
		t.Fatalf("truncated v1: err = %v, want ErrTruncatedSnapshot", err)
	}
	// Trailing garbage after the last v1 chunk → ErrCorruptSnapshot.
	if _, err := loadSnap(append(append([]byte(nil), v1...), 1, 2, 3)); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("v1 trailing garbage: err = %v, want ErrCorruptSnapshot", err)
	}
}

func TestSalvageRecoversValidPrefix(t *testing.T) {
	const n = 3*snapshotChunk + 100
	snap := snapshotBytes(t, n)
	bounds := frameBoundaries(t, snap)
	// bounds[1] = end of header, bounds[2] = end of chunk 1, ...
	type tc struct {
		name    string
		cut     int
		minLen  int // entries guaranteed recovered
		maxLen  int
		wantErr error
	}
	cases := []tc{
		{"torn after header", bounds[1], 0, 0, ErrTruncatedSnapshot},
		{"torn after chunk 1", bounds[2], snapshotChunk, snapshotChunk, ErrTruncatedSnapshot},
		{"torn after chunk 2", bounds[3], 2 * snapshotChunk, 2 * snapshotChunk, ErrTruncatedSnapshot},
		{"torn mid chunk 2", bounds[2] + 100, snapshotChunk, snapshotChunk, ErrTruncatedSnapshot},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tr, err := Salvage[int64, int64](bytes.NewReader(snap[:c.cut]), Config{})
			if !errors.Is(err, c.wantErr) {
				t.Fatalf("err = %v, want %v", err, c.wantErr)
			}
			if tr == nil {
				t.Fatal("Salvage returned no tree despite readable header")
			}
			if got := tr.Len(); got < c.minLen || got > c.maxLen {
				t.Fatalf("recovered %d entries, want in [%d, %d]", got, c.minLen, c.maxLen)
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("salvaged tree invalid: %v", err)
			}
			// The recovered entries are the stream prefix, byte for byte.
			i := int64(0)
			tr.Scan(func(k, v int64) bool {
				if k != i || v != i*10 {
					t.Fatalf("entry %d = (%d, %d), want (%d, %d)", i, k, v, i, i*10)
				}
				i++
				return true
			})
		})
	}

	// Corrupt chunk 2: salvage keeps chunk 1 and reports corruption.
	bad := append([]byte(nil), snap...)
	bad[bounds[2]+9+4] ^= 0xFF
	tr, err := Salvage[int64, int64](bytes.NewReader(bad), Config{})
	if !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("err = %v, want ErrCorruptSnapshot", err)
	}
	if tr == nil || tr.Len() != snapshotChunk {
		t.Fatalf("salvaged %v entries, want %d", tr.Len(), snapshotChunk)
	}

	// Unreadable header: nothing to build.
	tr, err = Salvage[int64, int64](bytes.NewReader(snap[:bounds[0]+3]), Config{})
	if tr != nil || !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("Salvage = (%v, %v), want (nil, ErrBadSnapshot)", tr, err)
	}

	// Intact stream: Salvage equals Load.
	tr, err = Salvage[int64, int64](bytes.NewReader(snap), Config{})
	if err != nil || tr.Len() != n {
		t.Fatalf("intact salvage = (%d entries, %v)", tr.Len(), err)
	}
}

func TestSavePropagatesWriteErrors(t *testing.T) {
	tr := New[int64, int64](Config{LeafCapacity: 8, InternalFanout: 8})
	for i := 0; i < 2000; i++ {
		tr.Insert(int64(i), int64(i))
	}
	var full bytes.Buffer
	if err := tr.Save(&full); err != nil {
		t.Fatal(err)
	}
	// Fail the write at every region of the stream: magic, header, chunks,
	// tail. Save must report the error — not silently produce a short file.
	for _, limit := range []int{0, 5, 30, full.Len() / 2, full.Len() - 3} {
		w := &limitWriter{limit: limit}
		if err := tr.Save(w); err == nil {
			t.Errorf("limit %d: Save returned nil on a failing writer", limit)
		}
	}
}

// limitWriter fails the write that crosses limit.
type limitWriter struct {
	limit   int
	written int
}

func (w *limitWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.limit {
		n := w.limit - w.written
		if n < 0 {
			n = 0
		}
		w.written += n
		return n, fmt.Errorf("limitWriter: full at %d", w.limit)
	}
	w.written += len(p)
	return len(p), nil
}
