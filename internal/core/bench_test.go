package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// Micro-benchmarks for the tree's primitive operations, complementing the
// figure-level benchmarks at the repository root.

func benchWorkload(b *testing.B, shape string) []int64 {
	b.Helper()
	b.StopTimer()
	keys := make([]int64, b.N)
	for i := range keys {
		keys[i] = int64(i)
	}
	switch shape {
	case "sorted":
	case "reverse":
		for i, j := 0, len(keys)-1; i < j; i, j = i+1, j-1 {
			keys[i], keys[j] = keys[j], keys[i]
		}
	case "nearsorted":
		rng := rand.New(rand.NewSource(1))
		keys = nearSorted(keys, 0.05, 1.0, rng)
	case "random":
		rng := rand.New(rand.NewSource(1))
		rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	}
	b.StartTimer()
	return keys
}

func BenchmarkPut(b *testing.B) {
	for _, mode := range allModes {
		for _, shape := range []string{"sorted", "nearsorted", "random", "reverse"} {
			b.Run(fmt.Sprintf("%s/%s", mode, shape), func(b *testing.B) {
				keys := benchWorkload(b, shape)
				tr := New[int64, int64](Config{Mode: mode})
				b.ReportAllocs()
				for _, k := range keys {
					tr.Put(k, k)
				}
			})
		}
	}
}

func BenchmarkPutSynchronizedSingleThread(b *testing.B) {
	// The latching overhead a single-threaded caller pays for
	// Synchronized=true.
	for _, synced := range []bool{false, true} {
		b.Run(fmt.Sprintf("synced=%v", synced), func(b *testing.B) {
			keys := benchWorkload(b, "nearsorted")
			tr := New[int64, int64](Config{Mode: ModeQuIT, Synchronized: synced})
			for _, k := range keys {
				tr.Put(k, k)
			}
		})
	}
}

func BenchmarkGet(b *testing.B) {
	const n = 1 << 20
	tr := New[int64, int64](Config{Mode: ModeQuIT})
	for i := int64(0); i < n; i++ {
		tr.Put(i, i)
	}
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Get(int64(rng.Intn(n)))
	}
}

// BenchmarkGetParallel measures point-lookup throughput on a synchronized
// tree with 1/2/4/8 reader goroutines while one background writer keeps
// appending: the scenario the optimistic read path exists for. Readers
// share b.N lookups so ns/op stays comparable across goroutine counts.
func BenchmarkGetParallel(b *testing.B) {
	const n = 1 << 16
	tr := New[int64, int64](Config{Mode: ModeQuIT, Synchronized: true})
	for i := int64(0); i < n; i++ {
		tr.Put(i, i)
	}
	for _, readers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("readers=%d", readers), func(b *testing.B) {
			stop := make(chan struct{})
			writerDone := make(chan struct{})
			go func() {
				defer close(writerDone)
				k := int64(n)
				for {
					select {
					case <-stop:
						return
					default:
					}
					tr.Put(k, k)
					k++
				}
			}()
			b.ResetTimer()
			b.SetParallelism(1)
			perG := b.N / readers
			if perG < 1 {
				perG = 1
			}
			done := make(chan struct{}, readers)
			for g := 0; g < readers; g++ {
				go func(seed int64) {
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < perG; i++ {
						tr.Get(int64(rng.Intn(n)))
					}
					done <- struct{}{}
				}(int64(g + 7))
			}
			for g := 0; g < readers; g++ {
				<-done
			}
			b.StopTimer()
			close(stop)
			<-writerDone
		})
	}
}

func BenchmarkFloorCeiling(b *testing.B) {
	const n = 1 << 20
	tr := New[int64, int64](Config{Mode: ModeQuIT})
	for i := int64(0); i < n; i++ {
		tr.Put(i*2, i)
	}
	rng := rand.New(rand.NewSource(3))
	b.Run("Floor", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr.Floor(int64(rng.Intn(2 * n)))
		}
	})
	b.Run("Ceiling", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr.Ceiling(int64(rng.Intn(2 * n)))
		}
	})
}

func BenchmarkRangeScan100(b *testing.B) {
	const n = 1 << 20
	tr := New[int64, int64](Config{Mode: ModeQuIT})
	for i := int64(0); i < n; i++ {
		tr.Put(i, i)
	}
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := int64(rng.Intn(n - 200))
		tr.Range(s, s+100, func(int64, int64) bool { return true })
	}
}

func BenchmarkDelete(b *testing.B) {
	b.StopTimer()
	tr := New[int64, int64](Config{Mode: ModeQuIT})
	for i := 0; i < b.N; i++ {
		tr.Put(int64(i), int64(i))
	}
	order := rand.New(rand.NewSource(5)).Perm(b.N)
	b.StartTimer()
	for _, k := range order {
		tr.Delete(int64(k))
	}
}

func BenchmarkBulkAppend(b *testing.B) {
	b.StopTimer()
	keys := make([]int64, b.N)
	vals := make([]int64, b.N)
	for i := range keys {
		keys[i] = int64(i)
		vals[i] = int64(i)
	}
	tr := New[int64, int64](Config{Mode: ModeQuIT})
	b.StartTimer()
	if err := tr.BulkAppend(keys, vals, 1.0); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkBuildFromSorted(b *testing.B) {
	b.StopTimer()
	keys := make([]int64, b.N)
	vals := make([]int64, b.N)
	for i := range keys {
		keys[i] = int64(i)
		vals[i] = int64(i)
	}
	tr := New[int64, int64](Config{Mode: ModeQuIT})
	b.StartTimer()
	if err := tr.BuildFromSorted(keys, vals, 1.0); err != nil {
		b.Fatal(err)
	}
}

// branchyLowerBound is the classic lo/hi binary search: one conditionally
// taken branch per probe. It exists only as the baseline BenchmarkSearchKeys
// compares the branchless (base, length) searchKeys loop against.
func branchyLowerBound(keys []int64, k int64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// BenchmarkSearchKeys measures the shared leaf probe against the branchy
// baseline at the configured leaf width and at a small width where the
// whole array is in L1. Probes are precomputed so the rng stays out of the
// measured loop; random probes make every branch in the baseline a coin
// flip, which is where the conditional-move lowering pays off.
func BenchmarkSearchKeys(b *testing.B) {
	for _, width := range []int{16, 510} {
		keys := make([]int64, width)
		for i := range keys {
			keys[i] = int64(i) * 3
		}
		rng := rand.New(rand.NewSource(7))
		probes := make([]int64, 4096)
		for i := range probes {
			probes[i] = int64(rng.Intn(3*width + 2))
		}
		b.Run(fmt.Sprintf("branchless/width=%d", width), func(b *testing.B) {
			var sink int
			for i := 0; i < b.N; i++ {
				sink += searchKeys(keys, probes[i&4095])
			}
			sinkInt = sink
		})
		b.Run(fmt.Sprintf("branchy/width=%d", width), func(b *testing.B) {
			var sink int
			for i := 0; i < b.N; i++ {
				sink += branchyLowerBound(keys, probes[i&4095])
			}
			sinkInt = sink
		})

		// Gapped-probe variants: the full leaf probe (searchKeys over every
		// slot + word-at-a-time bitmap skip + one equality check) against the
		// same live entries in the dense layout (live prefix, empty tail) and
		// the spread layout (live slots interleaved with gap copies across
		// the whole slot array). Half-full leaves, so the spread probe scans
		// roughly twice the slots the dense one does.
		tr := New[int64, int64](Config{LeafCapacity: width, InternalFanout: 16})
		live := keys[: width/2 : width/2]
		vals := make([]int64, len(live))
		dense := tr.newLeaf()
		dense.setDense(live, vals)
		spread := tr.newLeaf()
		spread.setSpread(live, vals)
		for _, lf := range []struct {
			name string
			n    *node[int64, int64]
		}{{"find-dense", dense}, {"find-gapped", spread}} {
			b.Run(fmt.Sprintf("%s/width=%d", lf.name, width), func(b *testing.B) {
				var sink int
				for i := 0; i < b.N; i++ {
					s, _ := lf.n.find(probes[i&4095])
					sink += s
				}
				sinkInt = sink
			})
		}
	}
}

// BenchmarkMidLeafInsert isolates what a leaf pays to absorb an
// out-of-order key between two live neighbors: the dense layout shifts the
// suffix to the high-water mark (O(used/2) memmove), the spread layout
// shifts only to the nearest interleaved gap (O(gap distance), usually one
// slot). Each iteration inserts one key from a shuffled interleaving
// sequence; when the leaf reaches capacity it is rebuilt from the
// half-full template — amortized across leafCap/2 inserts and identical
// for both layouts.
func BenchmarkMidLeafInsert(b *testing.B) {
	const leafCap = 510
	tr := New[int64, int64](Config{LeafCapacity: leafCap, InternalFanout: 16})
	half := leafCap / 2
	ks := make([]int64, half)
	vs := make([]int64, half)
	for i := range ks {
		ks[i] = int64(i) * 4
	}
	ins := make([]int64, half)
	for i := range ins {
		ins[i] = int64(i)*4 + 2
	}
	rng := rand.New(rand.NewSource(9))
	rng.Shuffle(len(ins), func(i, j int) { ins[i], ins[j] = ins[j], ins[i] })
	for _, layout := range []string{"dense", "spread"} {
		leaf := tr.newLeaf()
		b.Run(layout, func(b *testing.B) {
			j := half // forces a rebuild on the first iteration
			for i := 0; i < b.N; i++ {
				if j == half {
					if layout == "dense" {
						leaf.setDense(ks, vs)
					} else {
						leaf.setSpread(ks, vs)
					}
					j = 0
				}
				leaf.gapInsert(ins[j], 0)
				j++
			}
		})
	}
}

// sinkInt defeats dead-code elimination of the benchmark loop bodies.
var sinkInt int

func BenchmarkUpperBound(b *testing.B) {
	keys := make([]int64, 510)
	for i := range keys {
		keys[i] = int64(i) * 3
	}
	rng := rand.New(rand.NewSource(6))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		upperBound(keys, int64(rng.Intn(1600)))
	}
}

func BenchmarkOutlierIndex(b *testing.B) {
	keys := make([]int64, 510)
	for i := range keys {
		keys[i] = int64(i) * 3
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outlierIndex(keys, float64(i%1600))
	}
}
