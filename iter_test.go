package quit_test

import (
	"bytes"
	"testing"

	quit "github.com/quittree/quit"
)

func TestPublicIteratorAndSeek(t *testing.T) {
	idx := quit.New[int64, string](quit.Options{LeafCapacity: 8, InternalFanout: 4})
	for i := int64(0); i < 100; i++ {
		idx.Insert(i*2, "v")
	}
	it := idx.Seek(50)
	var got []int64
	for it.Next() && len(got) < 5 {
		got = append(got, it.Key())
	}
	want := []int64{50, 52, 54, 56, 58}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("seek walk: %v", got)
		}
	}
	n := 0
	for it2 := idx.Iter(); it2.Next(); n++ {
	}
	if n != 100 {
		t.Fatalf("full iteration: %d", n)
	}
}

func TestPublicFloorCeiling(t *testing.T) {
	idx := quit.New[int64, int64](quit.Options{LeafCapacity: 8, InternalFanout: 4})
	for i := int64(0); i < 50; i++ {
		idx.Insert(i*10, i)
	}
	if k, _, ok := idx.Floor(45); !ok || k != 40 {
		t.Fatalf("Floor(45) = (%d,%v)", k, ok)
	}
	if k, _, ok := idx.Ceiling(45); !ok || k != 50 {
		t.Fatalf("Ceiling(45) = (%d,%v)", k, ok)
	}
	if _, _, ok := idx.Floor(-1); ok {
		t.Fatal("Floor below min reported ok")
	}
	if _, _, ok := idx.Ceiling(1000); ok {
		t.Fatal("Ceiling above max reported ok")
	}
}

func TestPublicSaveLoad(t *testing.T) {
	src := quit.New[int64, string](quit.Options{LeafCapacity: 16, InternalFanout: 8})
	for i := int64(0); i < 10000; i++ {
		src.Insert(i, "x")
	}
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := quit.Load[int64, string](&buf, quit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 10000 {
		t.Fatalf("Len = %d", got.Len())
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	// Override to a synchronized classical B+-tree on load.
	buf.Reset()
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got2, err := quit.Load[int64, string](&buf, quit.Options{Design: quit.BPlusTree, Synchronized: true})
	if err != nil {
		t.Fatal(err)
	}
	if got2.Len() != 10000 {
		t.Fatalf("override Len = %d", got2.Len())
	}
}
