package quit_test

import (
	"bytes"
	"fmt"
	"log"

	quit "github.com/quittree/quit"
)

// Demonstrates choosing a baseline design and reading the fast-path stats.
func ExampleOptions() {
	idx := quit.New[int64, int64](quit.Options{Design: quit.TailBPlusTree})
	for i := int64(0); i < 1000; i++ {
		idx.Insert(i, i)
	}
	st := idx.Stats()
	fmt.Printf("%s: %.0f%% fast inserts\n", quit.TailBPlusTree, st.FastInsertFraction()*100)
	// Output:
	// tail-B+-tree: 100% fast inserts
}

// Demonstrates half-open range scans.
func ExampleTree_Range() {
	idx := quit.New[int64, string](quit.Options{})
	idx.Put(10, "ten")
	idx.Put(20, "twenty")
	idx.Put(30, "thirty")
	n := idx.Range(10, 30, func(k int64, v string) bool {
		fmt.Println(k, v)
		return true
	})
	fmt.Println("visited:", n)
	// Output:
	// 10 ten
	// 20 twenty
	// visited: 2
}

// Demonstrates ordered predecessor/successor queries.
func ExampleTree_Floor() {
	idx := quit.New[int64, string](quit.Options{})
	idx.Put(100, "v1")
	idx.Put(200, "v2")
	if k, _, ok := idx.Floor(150); ok {
		fmt.Println("floor:", k)
	}
	if k, _, ok := idx.Ceiling(150); ok {
		fmt.Println("ceiling:", k)
	}
	// Output:
	// floor: 100
	// ceiling: 200
}

// Demonstrates cursor iteration from a seek position.
func ExampleTree_Seek() {
	idx := quit.New[int64, int64](quit.Options{})
	for i := int64(0); i < 10; i++ {
		idx.Insert(i, i*i)
	}
	it := idx.Seek(7)
	for it.Next() {
		fmt.Println(it.Key(), it.Value())
	}
	// Output:
	// 7 49
	// 8 64
	// 9 81
}

// Demonstrates snapshotting a tree and restoring it.
func ExampleLoad() {
	src := quit.New[int64, string](quit.Options{})
	src.Put(1, "alpha")
	src.Put(2, "beta")

	var snap bytes.Buffer
	if err := src.Save(&snap); err != nil {
		log.Fatal(err)
	}
	restored, err := quit.Load[int64, string](&snap, quit.Options{})
	if err != nil {
		log.Fatal(err)
	}
	v, _ := restored.Get(2)
	fmt.Println(restored.Len(), v)
	// Output:
	// 2 beta
}

// Demonstrates generating a BoDS workload and measuring its sortedness.
func ExampleGenerateWorkload() {
	keys := quit.GenerateWorkload(quit.WorkloadSpec{N: 100000, K: 0.05, L: 0.5, Seed: 7})
	m := quit.MeasureSortedness(keys)
	fmt.Printf("N=%d, K within [4%%, 7%%]: %v\n", m.N, m.KFraction() > 0.04 && m.KFraction() < 0.07)
	// Output:
	// N=100000, K within [4%, 7%]: true
}

// Demonstrates backward iteration.
func ExampleIterator_Prev() {
	idx := quit.New[int64, string](quit.Options{})
	idx.Put(1, "a")
	idx.Put(2, "b")
	idx.Put(3, "c")
	for it := idx.SeekLast(); it.Prev(); {
		fmt.Println(it.Key(), it.Value())
	}
	// Output:
	// 3 c
	// 2 b
	// 1 a
}
