package quit_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/quittree/quit"
)

func durableOpts() quit.DurableOptions {
	return quit.DurableOptions{
		Options: quit.Options{LeafCapacity: 16, InternalFanout: 8},
		Sync:    quit.SyncAlways,
	}
}

func treeContents(d *quit.DurableTree[int64, string]) map[int64]string {
	m := map[int64]string{}
	d.Scan(func(k int64, v string) bool { m[k] = v; return true })
	return m
}

func TestDurableOpenEmptyAndReplay(t *testing.T) {
	dir := t.TempDir()
	d, err := quit.Open[int64, string](dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Fatalf("fresh tree has %d entries", d.Len())
	}
	rec := d.Recovery()
	if rec.Snapshot != "" || rec.RecordsReplayed != 0 || rec.WALTail != nil {
		t.Fatalf("fresh recovery: %+v", rec)
	}
	want := map[int64]string{}
	for i := int64(0); i < 500; i++ {
		if err := d.Insert(i, fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
		want[i] = fmt.Sprintf("v%d", i)
	}
	if v, ok := d.Get(42); !ok || v != "v42" {
		t.Fatalf("Get(42) = (%q, %v)", v, ok)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything comes back from the log alone (no checkpoint ran).
	d2, err := quit.Open[int64, string](dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	rec = d2.Recovery()
	if rec.Snapshot != "" || rec.RecordsReplayed != 500 || rec.WALTail != nil {
		t.Fatalf("replay recovery: %+v", rec)
	}
	if got := treeContents(d2); len(got) != 500 || got[7] != "v7" {
		t.Fatalf("recovered %d entries", len(got))
	}
	if err := d2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDurableCheckpointAndRecovery(t *testing.T) {
	dir := t.TempDir()
	d, err := quit.Open[int64, string](dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64]string{}
	put := func(k int64, v string) {
		t.Helper()
		if err := d.Insert(k, v); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	for i := int64(0); i < 300; i++ {
		put(i, "pre")
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := int64(300); i < 350; i++ {
		put(i, "post")
	}
	if _, existed, err := d.Delete(5); err != nil || !existed {
		t.Fatalf("delete: (%v, %v)", existed, err)
	}
	delete(want, 5)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// The checkpoint must have compacted: exactly one snapshot, one log.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var snaps, wals int
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "snap-") {
			snaps++
		}
		if strings.HasPrefix(e.Name(), "wal-") {
			wals++
		}
	}
	if snaps != 1 || wals != 1 {
		t.Fatalf("after checkpoint: %d snapshots, %d logs, want 1 each", snaps, wals)
	}

	d2, err := quit.Open[int64, string](dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	rec := d2.Recovery()
	if rec.Snapshot == "" || rec.SnapshotSeq != 300 {
		t.Fatalf("recovery snapshot: %+v", rec)
	}
	if rec.RecordsReplayed != 51 { // 50 posts + 1 delete
		t.Fatalf("RecordsReplayed = %d, want 51", rec.RecordsReplayed)
	}
	if got := treeContents(d2); len(got) != len(want) {
		t.Fatalf("recovered %d entries, want %d", len(got), len(want))
	} else {
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("key %d = %q, want %q", k, got[k], v)
			}
		}
	}
	if err := d2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDurableClearSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	d, err := quit.Open[int64, string](dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		d.Insert(i, "x")
	}
	if err := d.Clear(); err != nil {
		t.Fatal(err)
	}
	d.Insert(7, "seven")
	d.Close()

	d2, err := quit.Open[int64, string](dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := treeContents(d2); len(got) != 1 || got[7] != "seven" {
		t.Fatalf("recovered %v, want only 7→seven", got)
	}
}

func TestDurablePutSemantics(t *testing.T) {
	dir := t.TempDir()
	d, err := quit.Open[int64, string](dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if prev, existed, err := d.Put(1, "a"); err != nil || existed || prev != "" {
		t.Fatalf("first put: (%q, %v, %v)", prev, existed, err)
	}
	if prev, existed, err := d.Put(1, "b"); err != nil || !existed || prev != "a" {
		t.Fatalf("second put: (%q, %v, %v)", prev, existed, err)
	}
	if v, existed, err := d.Delete(1); err != nil || !existed || v != "b" {
		t.Fatalf("delete: (%q, %v, %v)", v, existed, err)
	}
	if _, existed, err := d.Delete(1); err != nil || existed {
		t.Fatalf("double delete: (%v, %v)", existed, err)
	}
	if k, v, ok := d.Min(); ok {
		t.Fatalf("Min on empty = (%d, %q, true)", k, v)
	}
}

func TestDurableClosedOperations(t *testing.T) {
	dir := t.TempDir()
	d, err := quit.Open[int64, string](dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	d.Insert(1, "a")
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(2, "b"); !errors.Is(err, quit.ErrClosed) {
		t.Fatalf("insert after close: %v", err)
	}
	if err := d.Checkpoint(); !errors.Is(err, quit.ErrClosed) {
		t.Fatalf("checkpoint after close: %v", err)
	}
	if err := d.Sync(); !errors.Is(err, quit.ErrClosed) {
		t.Fatalf("sync after close: %v", err)
	}
	if err := d.Close(); !errors.Is(err, quit.ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
}

func TestDurableRefusesAllCorruptSnapshots(t *testing.T) {
	dir := t.TempDir()
	d, err := quit.Open[int64, string](dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 50; i++ {
		d.Insert(i, "x")
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	snap := d.Recovery().Snapshot
	d.Close()

	// Flip a byte deep in the only snapshot: Open must refuse to silently
	// restart empty and must surface a typed snapshot error.
	path := filepath.Join(dir, snap)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = quit.Open[int64, string](dir, durableOpts())
	if err == nil {
		t.Fatal("Open accepted a corrupt sole snapshot")
	}
	if !errors.Is(err, quit.ErrBadSnapshot) {
		t.Fatalf("err = %v, want ErrBadSnapshot in chain", err)
	}
}

func TestDurableFallsBackToOlderSnapshot(t *testing.T) {
	dir := t.TempDir()
	d, err := quit.Open[int64, string](dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 40; i++ {
		d.Insert(i, "gen1")
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	gen1 := d.Recovery().Snapshot
	saved, err := os.ReadFile(filepath.Join(dir, gen1))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(40); i < 60; i++ {
		d.Insert(i, "gen2")
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	gen2 := d.Recovery().Snapshot
	d.Close()

	// Resurrect generation 1 (checkpoint removed it) and corrupt
	// generation 2: Open must degrade to generation 1.
	if err := os.WriteFile(filepath.Join(dir, gen1), saved, 0o644); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, gen2))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0xFF
	if err := os.WriteFile(filepath.Join(dir, gen2), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := quit.Open[int64, string](dir, durableOpts())
	if err != nil {
		t.Fatalf("fallback open failed: %v", err)
	}
	defer d2.Close()
	rec := d2.Recovery()
	if rec.Snapshot != gen1 {
		t.Fatalf("recovered from %q, want %q", rec.Snapshot, gen1)
	}
	if len(rec.SkippedSnapshots) != 1 || !errors.Is(rec.SkippedSnapshots[0], quit.ErrBadSnapshot) {
		t.Fatalf("SkippedSnapshots = %v", rec.SkippedSnapshots)
	}
	// Generation 2's log segment was garbage-collected, so the recovered
	// state is generation 1 and the sequence break is flagged.
	if got := treeContents(d2); len(got) != 40 {
		t.Fatalf("recovered %d entries, want 40 (generation 1)", len(got))
	}
	if err := d2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDurableTornWALTail(t *testing.T) {
	dir := t.TempDir()
	d, err := quit.Open[int64, string](dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 20; i++ {
		d.Insert(i, "x")
	}
	d.Close()

	// Append half a record's worth of junk to the log, as a crashed writer
	// would leave.
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "wal-") {
			f, err := os.OpenFile(filepath.Join(dir, e.Name()), os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			f.Write([]byte{9, 0, 0})
			f.Close()
		}
	}

	d2, err := quit.Open[int64, string](dir, durableOpts())
	if err != nil {
		t.Fatalf("torn tail failed open: %v", err)
	}
	defer d2.Close()
	rec := d2.Recovery()
	if rec.WALTail == nil {
		t.Fatal("torn tail not reported in RecoveryInfo")
	}
	if rec.RecordsReplayed != 20 || d2.Len() != 20 {
		t.Fatalf("replayed %d, Len %d, want 20", rec.RecordsReplayed, d2.Len())
	}
	// And the tree accepts new writes afterwards.
	if err := d2.Insert(100, "new"); err != nil {
		t.Fatal(err)
	}
}

func TestDurableSalvage(t *testing.T) {
	tr := quit.New[int64, string](quit.Options{LeafCapacity: 16, InternalFanout: 8})
	for i := int64(0); i < 1000; i++ {
		tr.Insert(i, "v")
	}
	var buf strings.Builder
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.String()

	// Intact: Salvage == Load.
	got, err := quit.Salvage[int64, string](strings.NewReader(full), quit.Options{})
	if err != nil || got.Len() != 1000 {
		t.Fatalf("intact salvage: (%d, %v)", got.Len(), err)
	}
	// Truncated: a working prefix plus the typed error.
	got, err = quit.Salvage[int64, string](strings.NewReader(full[:len(full)/2]), quit.Options{})
	if !errors.Is(err, quit.ErrTruncatedSnapshot) {
		t.Fatalf("truncated salvage err = %v", err)
	}
	if got == nil {
		t.Fatal("truncated salvage returned no tree")
	}
	if got.Len() >= 1000 {
		t.Fatalf("salvaged %d entries from half a stream", got.Len())
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Salvage must also accept a DurableTree's on-disk checkpoint file, whose
// snapshot stream sits behind the checkpoint preamble — including when the
// damage is in the preamble itself.
func TestDurableSalvageCheckpointFile(t *testing.T) {
	dir := t.TempDir()
	d, err := quit.Open[int64, string](dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 500; i++ {
		if err := d.Insert(i, "v"); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.quit"))
	if err != nil || len(snaps) != 1 {
		t.Fatalf("snapshots on disk: %v, %v", snaps, err)
	}
	raw, err := os.ReadFile(snaps[0])
	if err != nil {
		t.Fatal(err)
	}

	// Intact checkpoint file: the preamble is skipped transparently.
	got, err := quit.Salvage[int64, string](bytes.NewReader(raw), quit.Options{})
	if err != nil || got == nil || got.Len() != 500 {
		t.Fatalf("intact checkpoint salvage: (%v, %v)", got, err)
	}

	// Damage inside the preamble's lastSeq/crc: still salvages in full —
	// the preamble is skipped, not verified.
	flipped := append([]byte(nil), raw...)
	flipped[12] ^= 0x01
	got, err = quit.Salvage[int64, string](bytes.NewReader(flipped), quit.Options{})
	if err != nil || got == nil || got.Len() != 500 {
		t.Fatalf("damaged-preamble salvage: (%v, %v)", got, err)
	}

	// Damage in the snapshot body: a valid prefix plus the typed error.
	flipped = append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0x40
	got, err = quit.Salvage[int64, string](bytes.NewReader(flipped), quit.Options{})
	if !errors.Is(err, quit.ErrBadSnapshot) {
		t.Fatalf("damaged-body salvage err = %v", err)
	}
	if got == nil || got.Len() >= 500 {
		t.Fatalf("damaged-body salvage recovered %v", got)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDurableConcurrentUse(t *testing.T) {
	dir := t.TempDir()
	opts := durableOpts()
	opts.Sync = quit.SyncNever // keep the race test fast
	d, err := quit.Open[int64, string](dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := int64(g*1000 + i)
				if err := d.Insert(k, "v"); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				d.Get(k)
				d.Len()
			}
		}(g)
	}
	wg.Wait()
	if d.Len() != 800 {
		t.Fatalf("Len = %d, want 800", d.Len())
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := quit.Open[int64, string](dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Len() != 800 {
		t.Fatalf("recovered Len = %d, want 800", d2.Len())
	}
	if err := d2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDurablePutBatchReplay(t *testing.T) {
	dir := t.TempDir()
	d, err := quit.Open[int64, string](dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(1000, "pre"); err != nil {
		t.Fatal(err)
	}
	// Unsorted with an in-batch duplicate and an overwrite of key 1000.
	keys := []int64{7, 3, 1000, 3, 11}
	vals := []string{"seven", "three", "thousand", "three-final", "eleven"}
	res, err := d.PutBatch(keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	wantExisted := []bool{false, false, true, true, false}
	for i, w := range wantExisted {
		if res[i].Existed != w {
			t.Fatalf("result %d: Existed=%v, want %v", i, res[i].Existed, w)
		}
	}
	// Empty batch: durable no-op.
	if res, err := d.PutBatch(nil, nil); err != nil || res != nil {
		t.Fatalf("empty batch: (%v, %v)", res, err)
	}
	// Mismatch: error, nothing logged.
	if _, err := d.PutBatch([]int64{1}, []string{"a", "b"}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := quit.Open[int64, string](dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	want := map[int64]string{1000: "thousand", 7: "seven", 3: "three-final", 11: "eleven"}
	if got := treeContents(d2); len(got) != len(want) {
		t.Fatalf("recovered %d entries, want %d", len(got), len(want))
	} else {
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("recovered [%d]=%q, want %q", k, got[k], v)
			}
		}
	}
	if err := d2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDurableApplySorted(t *testing.T) {
	dir := t.TempDir()
	d, err := quit.Open[int64, string](dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.ApplySorted([]int64{1, 2, 2, 5}, []string{"a", "b", "b2", "c"}); err != nil {
		t.Fatal(err)
	}
	// Out of order: rejected before anything reaches the log or tree.
	if _, err := d.ApplySorted([]int64{9, 8}, []string{"x", "y"}); !errors.Is(err, quit.ErrNotSorted) {
		t.Fatalf("unsorted batch: %v", err)
	}
	if _, err := d.ApplySorted([]int64{1}, []string{"a", "b"}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if got := treeContents(d); len(got) != 3 || got[2] != "b2" {
		t.Fatalf("contents after rejected batches: %v", got)
	}
	// The rejected batches left no log records: reopen sees only the good one.
	d.Close()
	d2, err := quit.Open[int64, string](dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Len() != 3 {
		t.Fatalf("recovered %d entries, want 3", d2.Len())
	}
	if _, ok := d2.Get(9); ok {
		t.Fatal("rejected batch leaked into the log")
	}
}
