// Package quit provides the Quick Insertion Tree (QuIT), a sortedness-aware
// in-memory B+-tree from the EDBT 2025 paper "QuIT your B+-tree for the
// Quick Insertion Tree", together with the fast-path baselines the paper
// evaluates (tail-leaf, last-insertion-leaf, predicted-ordered-leaf).
//
// QuIT ingests near-sorted key streams through a fast path that predicts
// the leaf the next in-order key belongs to, skipping root-to-leaf
// traversals for the overwhelming majority of insertions while remaining a
// correct general-purpose ordered index: scrambled inserts, point lookups,
// range scans and deletes behave exactly like a classical B+-tree, with no
// read penalty.
//
// Quick start:
//
//	idx := quit.New[int64, string](quit.Options{})
//	idx.Put(42, "answer")
//	v, ok := idx.Get(42)
//	idx.Range(0, 100, func(k int64, v string) bool { return true })
//
// Choose a baseline design with Options.Design; tune node geometry with
// Options.LeafCapacity / Options.InternalFanout; set Options.Synchronized
// for concurrent use.
package quit

import (
	"errors"
	"fmt"

	"github.com/quittree/quit/internal/core"
)

// Integer constrains key types: QuIT's In-order Key estimatoR extrapolates
// key density, so keys must support integer arithmetic.
type Integer interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 | ~uintptr
}

// Design selects the index design (fast-path insertion policy).
type Design uint8

const (
	// QuIT is the paper's full design: predicted-ordered-leaf fast path,
	// IKR-guided variable splits, redistribution and stale-path reset.
	// This is the default.
	QuIT Design = iota
	// BPlusTree is a classical B+-tree with no fast path.
	BPlusTree
	// TailBPlusTree adds the PostgreSQL-style rightmost-leaf fast path.
	TailBPlusTree
	// LILBPlusTree adds the last-insertion-leaf fast path (paper §3).
	LILBPlusTree
	// POLEBPlusTree adds the predicted-ordered-leaf fast path without
	// QuIT's space optimizations and reset strategy (paper §4.1-4.2).
	POLEBPlusTree
)

// String names the design as the paper does.
func (d Design) String() string { return d.mode().String() }

func (d Design) mode() core.Mode {
	switch d {
	case BPlusTree:
		return core.ModeNone
	case TailBPlusTree:
		return core.ModeTail
	case LILBPlusTree:
		return core.ModeLIL
	case POLEBPlusTree:
		return core.ModePOLE
	default:
		return core.ModeQuIT
	}
}

// Options configures a Tree. The zero value selects the paper's defaults:
// the QuIT design, 510-entry leaves (a 4KB page of 8-byte entries), fanout
// 256, IKR scale 1.5 and reset threshold floor(sqrt(leaf capacity)).
type Options struct {
	// Design selects the index design; defaults to QuIT.
	Design Design
	// LeafCapacity is the maximum number of entries per leaf (default 510).
	LeafCapacity int
	// InternalFanout is the maximum children per internal node (default 256).
	InternalFanout int
	// IKRScale is the In-order Key estimatoR slack (default 1.5, Eq. 2).
	IKRScale float64
	// ResetThreshold is the number of consecutive top-inserts that resets a
	// stale fast path (QuIT only; default floor(sqrt(LeafCapacity))).
	ResetThreshold int
	// MaxFill caps how full QuIT's variable split leaves a node, in
	// [0.5, 1]. 1 (the default) packs in-order runs completely; lower it to
	// keep headroom for future out-of-order entries at the cost of some
	// space (paper §5.2.1's tuning note).
	MaxFill float64
	// GapFraction is the fraction of each leaf's slots the wholesale build
	// paths (PutBatch multi-way splits, parallel frontier chains,
	// BulkAppend) reserve as interleaved gaps, in [0, 0.5]. Gaps absorb
	// later out-of-order keys with an O(gap distance) shift instead of a
	// split; the price is proportionally more leaves on bulk builds. Zero
	// selects the default 0.1; PackedLeaves requests fully packed leaves;
	// values in (0.5, 1) clamp to 0.5. Anything negative or >= 1 is
	// invalid: New panics and the opening constructors (Open, Load,
	// Salvage, shard.Open) return the Validate error instead of silently
	// reinterpreting it.
	//
	// Warning: per the gap01 sweep in EXPERIMENTS.md, small non-zero
	// fractions (0 < f < 0.10) are measurably *worse* than packed leaves —
	// too little headroom for the adaptive re-gap margin, while still
	// paying the extra leaves. Use PackedLeaves or >= 0.10.
	GapFraction float64
	// Synchronized enables internal latching (optimistic lock coupling,
	// paper §4.5 upgraded; see DESIGN.md §6) for concurrent use from
	// multiple goroutines. Reads stay lock-free: they validate per-node
	// versions and restart on conflict (counted in Stats.OLCRestarts).
	Synchronized bool
}

// PackedLeaves is the GapFraction value that requests fully packed
// bulk-build leaves (no reserved gap slots). It replaces the old
// "any negative value" convention, which Validate now rejects.
const PackedLeaves float64 = -1

// ErrInvalidOptions marks a configuration rejected by Options.Validate;
// every validation failure matches it via errors.Is.
var ErrInvalidOptions = errors.New("quit: invalid options")

// Validate checks an Options value for fields that cannot be clamped to a
// sensible default. Currently that is GapFraction: values below zero
// (other than the exact PackedLeaves sentinel) or at/above one are
// programming errors, not tunings — a fraction of a leaf cannot be
// negative or consume the whole leaf. New panics on an invalid Options;
// the error-returning constructors (Open, Load, Salvage, shard.Open)
// propagate the error.
func (o Options) Validate() error {
	if o.GapFraction == PackedLeaves {
		return nil
	}
	if o.GapFraction < 0 || o.GapFraction >= 1 {
		return fmt.Errorf("%w: GapFraction %v outside [0, 1) (use quit.PackedLeaves for fully packed leaves)",
			ErrInvalidOptions, o.GapFraction)
	}
	return nil
}

func (o Options) config() core.Config {
	return core.Config{
		Mode:           o.Design.mode(),
		LeafCapacity:   o.LeafCapacity,
		InternalFanout: o.InternalFanout,
		IKRScale:       o.IKRScale,
		ResetThreshold: o.ResetThreshold,
		MaxFill:        o.MaxFill,
		GapFraction:    o.GapFraction,
		Synchronized:   o.Synchronized,
	}
}

// Tree is an ordered in-memory index from K to V. Construct with New.
//
// Without Options.Synchronized a Tree must be confined to one goroutine;
// with it, Put, Get, Range, Scan, Delete, Len and Stats may be used
// concurrently.
type Tree[K Integer, V any] struct {
	t *core.Tree[K, V]
}

// New creates an empty Tree with the given options. Invalid options —
// see Options.Validate — are programming errors and panic; use Validate
// first when the configuration comes from untrusted input.
func New[K Integer, V any](opts Options) *Tree[K, V] {
	if err := opts.Validate(); err != nil {
		panic(err)
	}
	return &Tree[K, V]{t: core.New[K, V](opts.config())}
}

// Put inserts key with value val, overwriting and returning any previous
// value.
func (tr *Tree[K, V]) Put(key K, val V) (prev V, existed bool) {
	return tr.t.Put(key, val)
}

// Insert is Put discarding the previous value.
func (tr *Tree[K, V]) Insert(key K, val V) { tr.t.Insert(key, val) }

// PutResult reports the outcome of one key in a batched write: Existed is
// true when the key was already present and its value was overwritten.
type PutResult = core.PutResult

// ErrNotSorted is returned by ApplySorted (and the bulk-loading methods)
// when the input keys violate the required ordering.
var ErrNotSorted = core.ErrNotSorted

// PutBatch inserts a group of entries in one operation, returning one
// PutResult per input position. Semantically equivalent to calling Put for
// each pair in order — duplicate keys within the batch resolve last-write-
// wins, and later occurrences report Existed — but much faster: the batch
// is sorted once, split into per-leaf runs, and each run is installed with
// a single tree descent, one merged copy, and (when the leaf overflows) a
// single multi-way split. Near-sorted batches resolve through the same
// sortedness-aware fast path as single-key Put. Panics if the slices
// differ in length; an empty batch returns nil.
//
// With Options.Synchronized, PutBatch may run concurrently with readers
// and other writers; each per-leaf run is atomic with respect to them, the
// whole batch is not.
func (tr *Tree[K, V]) PutBatch(keys []K, vals []V) []PutResult {
	return tr.t.PutBatch(keys, vals)
}

// ApplySorted is PutBatch for input already in non-decreasing key order:
// it skips the sort and returns ErrNotSorted — without modifying the tree
// — when the order does not hold.
func (tr *Tree[K, V]) ApplySorted(keys []K, vals []V) ([]PutResult, error) {
	return tr.t.ApplySorted(keys, vals)
}

// IngestOptions tunes PutBatchParallel; the zero value (or Workers <= 1)
// selects the sequential PutBatch.
type IngestOptions = core.IngestOptions

// PutBatchParallel is PutBatch with the run installation fanned out over
// opts.Workers goroutines. Semantics are identical to PutBatch; only the
// installation order of disjoint per-leaf runs differs, which is
// unobservable. With Options.Synchronized the workers coordinate through
// the same latch protocol as any concurrent writers; without it the
// caller must still provide external synchronization, and only the
// beyond-the-maximum suffix of the batch is built in parallel.
func (tr *Tree[K, V]) PutBatchParallel(keys []K, vals []V, opts IngestOptions) []PutResult {
	return tr.t.PutBatchParallel(keys, vals, opts)
}

// Get returns the value stored under key.
func (tr *Tree[K, V]) Get(key K) (V, bool) { return tr.t.Get(key) }

// Contains reports whether key is present.
func (tr *Tree[K, V]) Contains(key K) bool { return tr.t.Contains(key) }

// Delete removes key, returning its value and whether it was present.
func (tr *Tree[K, V]) Delete(key K) (V, bool) { return tr.t.Delete(key) }

// Min returns the smallest key and its value (ok=false when empty).
func (tr *Tree[K, V]) Min() (K, V, bool) { return tr.t.Min() }

// Max returns the largest key and its value (ok=false when empty).
func (tr *Tree[K, V]) Max() (K, V, bool) { return tr.t.Max() }

// Range visits entries with start <= key < end in ascending order until fn
// returns false; it returns the number of entries visited. fn must not
// modify the tree.
func (tr *Tree[K, V]) Range(start, end K, fn func(K, V) bool) int {
	return tr.t.Range(start, end, fn)
}

// Scan visits all entries in ascending order until fn returns false. fn
// must not modify the tree.
func (tr *Tree[K, V]) Scan(fn func(K, V) bool) { tr.t.Scan(fn) }

// Len returns the number of live entries.
func (tr *Tree[K, V]) Len() int { return tr.t.Len() }

// Clear removes every entry, resetting the tree to its freshly-constructed
// state under the same configuration: it swaps in a brand-new core tree
// (operation counters included), so nodes of the old tree are simply
// dropped for the garbage collector rather than unlinked one by one.
//
// Contract: Clear requires external synchronization even when
// Options.Synchronized is set — the swap is a plain pointer store, and
// concurrent operations may straddle the old and new trees. Clear on a
// bare Tree also has no durability meaning; DurableTree.Clear is the
// logged, crash-safe variant.
func (tr *Tree[K, V]) Clear() { tr.t = core.New[K, V](tr.t.Config()) }

// Height returns the number of tree levels (1 = root is a leaf).
func (tr *Tree[K, V]) Height() int { return tr.t.Height() }

// BulkAppend appends strictly increasing entries whose keys exceed the
// current maximum, packing leaves to fill (0 < fill <= 1). Requires
// external synchronization.
func (tr *Tree[K, V]) BulkAppend(keys []K, vals []V, fill float64) error {
	return tr.t.BulkAppend(keys, vals, fill)
}

// BuildFromSorted bulk-loads an empty tree from strictly increasing
// entries. Requires external synchronization.
func (tr *Tree[K, V]) BuildFromSorted(keys []K, vals []V, fill float64) error {
	return tr.t.BuildFromSorted(keys, vals, fill)
}

// BuildFromSortedParallel is BuildFromSorted with the leaf level built by
// `workers` goroutines; the resulting tree shape is identical. Requires
// external synchronization.
func (tr *Tree[K, V]) BuildFromSortedParallel(keys []K, vals []V, fill float64, workers int) error {
	return tr.t.BuildFromSortedParallel(keys, vals, fill, workers)
}

// AvgLeafOccupancy reports the mean leaf fill fraction in [0,1], the
// paper's space-utilization metric.
func (tr *Tree[K, V]) AvgLeafOccupancy() float64 { return tr.t.AvgLeafOccupancy() }

// MemoryFootprint estimates the index memory in bytes under the paper's
// page model (every node reserves a full page).
func (tr *Tree[K, V]) MemoryFootprint() int64 { return tr.t.MemoryFootprint() }

// Stats snapshots operation counters and tree shape.
func (tr *Tree[K, V]) Stats() Stats { return Stats(tr.t.Stats()) }

// ResetCounters zeroes the operation counters.
func (tr *Tree[K, V]) ResetCounters() { tr.t.ResetCounters() }

// Validate checks the tree's structural invariants (for tests and
// debugging; must not run concurrently with writers).
func (tr *Tree[K, V]) Validate() error { return tr.t.Validate() }

// ShardedOptions configures a key-range-sharded store (internal/shard,
// served by cmd/quitserver): Shards independent DurableTrees, each with
// its own segmented write-ahead log and checkpoint policy, behind a
// router that splits batches by key range. DurableOptions applies to
// every shard identically.
type ShardedOptions struct {
	DurableOptions
	// Shards is the number of key-range shards (default 4, max 256). An
	// existing store's manifest is authoritative: on reopen the on-disk
	// shard count wins and this field is ignored.
	Shards int
}

// Stats mirrors the internal counters; see the field comments on
// FastInserts/TopInserts in particular: they partition new-key insertions
// between the sortedness-aware fast path and classical top-inserts.
type Stats core.Stats

// Inserts returns the total number of new-key insertions.
func (s Stats) Inserts() int64 { return s.FastInserts + s.TopInserts }

// FastInsertFraction returns the fraction of insertions that used the fast
// path, in [0,1].
func (s Stats) FastInsertFraction() float64 {
	return core.Stats(s).FastInsertFraction()
}
