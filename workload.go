package quit

import (
	"github.com/quittree/quit/internal/bods"
	"github.com/quittree/quit/internal/sortedness"
)

// WorkloadSpec describes a BoDS workload (Benchmark on Data Sortedness):
// a permutation of 0..N-1 whose sortedness is controlled by the K-L metric
// the paper evaluates under.
type WorkloadSpec struct {
	// N is the number of entries.
	N int
	// K is the fraction of out-of-order entries in [0,1].
	K float64
	// L is the maximum displacement of an out-of-order entry as a fraction
	// of N in (0,1].
	L float64
	// Alpha and Beta skew where the out-of-order entries land in the stream
	// (Beta distribution; 1,1 = uniform, the default).
	Alpha, Beta float64
	// Seed makes the workload reproducible.
	Seed int64
}

// GenerateWorkload produces the key stream for spec. Keys are the integers
// 0..N-1, each exactly once.
func GenerateWorkload(spec WorkloadSpec) []int64 {
	return bods.Generate(bods.Spec{
		N: spec.N, K: spec.K, L: spec.L,
		Alpha: spec.Alpha, Beta: spec.Beta, Seed: spec.Seed,
	})
}

// Sortedness summarizes how far a key stream deviates from sorted order
// under the K-L metric.
type Sortedness struct {
	// N is the stream length.
	N int
	// K is the number of out-of-order entries (N minus the longest
	// non-decreasing subsequence).
	K int
	// L is the maximum displacement of an entry from its sorted position.
	L int
	// AdjacentInversions counts entries smaller than their predecessor.
	AdjacentInversions int
}

// KFraction returns K/N.
func (s Sortedness) KFraction() float64 {
	if s.N == 0 {
		return 0
	}
	return float64(s.K) / float64(s.N)
}

// LFraction returns L/N.
func (s Sortedness) LFraction() float64 {
	if s.N == 0 {
		return 0
	}
	return float64(s.L) / float64(s.N)
}

// MeasureSortedness computes the K-L metrics of a key stream.
func MeasureSortedness(stream []int64) Sortedness {
	m := sortedness.Measure(stream)
	return Sortedness{N: m.N, K: m.K, L: m.L, AdjacentInversions: m.AdjacentInversions}
}
