module github.com/quittree/quit

go 1.23
