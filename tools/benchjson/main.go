// Command benchjson converts `go test -bench` text output (stdin) into a
// stable JSON document (stdout), so the bench trajectory can be committed
// and diffed without scraping the free-form bench format downstream.
//
// The output groups every benchmark line with the package it came from and
// keeps all reported metrics — ns/op as well as custom b.ReportMetric units
// like %fast, %fast-runs and syncs/op:
//
//	{
//	  "env": {"goos": "linux", "goarch": "amd64", "cpu": "..."},
//	  "benchmarks": [
//	    {"pkg": "...", "name": "BenchmarkBatchIngest/batch=256/near-8",
//	     "iterations": 500000, "metrics": {"ns/op": 71.2, "%fast-runs": 96.3}}
//	  ]
//	}
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

func main() {
	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(r io.Reader) (*document, error) {
	doc := &document{Env: map[string]string{}, Benchmarks: []benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case hasKey(line, "goos"), hasKey(line, "goarch"), hasKey(line, "cpu"):
			k, v := cutKey(line)
			doc.Env[k] = v
		case hasKey(line, "pkg"):
			_, pkg = cutKey(line)
		default:
			if bm, ok := parseBenchLine(line, pkg); ok {
				doc.Benchmarks = append(doc.Benchmarks, bm)
			}
		}
	}
	return doc, sc.Err()
}
