package main

import (
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: github.com/quittree/quit
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkBatchIngest/batch=256/near-8         	  500000	        71.2 ns/op	        96.3 %fast-runs
BenchmarkDurableBatchPut/perkey-8             	   20000	     41235 ns/op	         1.000 syncs/op
PASS
ok  	github.com/quittree/quit	12.3s
pkg: github.com/quittree/quit/internal/core
BenchmarkSearchKeys/branchless/width=510-8    	 5000000	        53.2 ns/op
`
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Env["goos"] != "linux" || !strings.Contains(doc.Env["cpu"], "Xeon") {
		t.Fatalf("env = %v", doc.Env)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3: %v", len(doc.Benchmarks), doc.Benchmarks)
	}
	b0 := doc.Benchmarks[0]
	if b0.Name != "BenchmarkBatchIngest/batch=256/near-8" || b0.Iterations != 500000 {
		t.Fatalf("b0 = %+v", b0)
	}
	if b0.Metrics["ns/op"] != 71.2 || b0.Metrics["%fast-runs"] != 96.3 {
		t.Fatalf("b0 metrics = %v", b0.Metrics)
	}
	if doc.Benchmarks[1].Metrics["syncs/op"] != 1.0 {
		t.Fatalf("b1 metrics = %v", doc.Benchmarks[1].Metrics)
	}
	if got := doc.Benchmarks[2].Pkg; got != "github.com/quittree/quit/internal/core" {
		t.Fatalf("b2 pkg = %q", got)
	}
}

func TestParseSkipsMalformed(t *testing.T) {
	in := `BenchmarkOdd-8	  100	 1.0 ns/op	 trailing
Benchmark-NoIters	abc	1.0 ns/op
some test log line mentioning BenchmarkX
`
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// The odd-field line still parses its complete (value, unit) pairs; the
	// other two are skipped outright.
	if len(doc.Benchmarks) != 1 || doc.Benchmarks[0].Metrics["ns/op"] != 1.0 {
		t.Fatalf("benchmarks = %+v", doc.Benchmarks)
	}
}
