package main

import (
	"strconv"
	"strings"
)

type document struct {
	Env        map[string]string `json:"env"`
	Benchmarks []benchmark       `json:"benchmarks"`
}

type benchmark struct {
	Pkg        string             `json:"pkg"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// hasKey reports whether line is a "key: value" header line for key.
func hasKey(line, key string) bool {
	return strings.HasPrefix(line, key+":")
}

func cutKey(line string) (string, string) {
	k, v, _ := strings.Cut(line, ":")
	return k, strings.TrimSpace(v)
}

// parseBenchLine parses one result line of the bench format:
//
//	BenchmarkName-8   500000   71.2 ns/op   96.3 %fast-runs
//
// i.e. the name, the iteration count, then (value, unit) pairs. Lines that
// do not have that shape (PASS, ok, blank, test log output) are skipped.
func parseBenchLine(line, pkg string) (benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return benchmark{}, false
	}
	metrics := map[string]float64{}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return benchmark{}, false
		}
		metrics[f[i+1]] = v
	}
	return benchmark{Pkg: pkg, Name: f[0], Iterations: iters, Metrics: metrics}, true
}
