package analyzers

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"github.com/quittree/quit/tools/quitlint/internal/lintkit"
)

// ErrWrap flags fmt.Errorf calls that format an error-typed argument with
// a value verb (%v, %s, %q, ...) instead of %w. The durability layer's
// contract depends on error chains staying matchable — callers select
// recovery behavior with errors.Is(err, ErrBadSnapshot) and friends — and
// a %v silently flattens the chain, so every wrapped error must travel
// through %w. Sites that intentionally flatten (e.g. embedding an error's
// text inside a message that already wraps a sentinel) annotate with
// `//quitlint:allow errwrap <reason>`.
var ErrWrap = &lintkit.Analyzer{
	Name: "errwrap",
	Doc:  "flag fmt.Errorf formatting an error-typed argument with %v/%s/%q instead of %w, which breaks errors.Is matching",
	Run:  runErrWrap,
}

func runErrWrap(pass *lintkit.Pass) error {
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Name() != "Errorf" || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
				return true
			}
			format, ok := constantString(pass.Info, call.Args[0])
			if !ok {
				return true // dynamic format string: nothing to check
			}
			verbs, ok := formatVerbs(format)
			if !ok || len(verbs) != len(call.Args)-1 {
				// Indexed/starred verbs or an arity mismatch (vet's
				// territory): bail rather than misattribute verbs.
				return true
			}
			for i, verb := range verbs {
				if verb == 'w' {
					continue
				}
				arg := call.Args[i+1]
				tv, ok := pass.Info.Types[arg]
				if !ok || tv.Type == nil {
					continue
				}
				if !types.Implements(tv.Type, errType) && !types.Implements(types.NewPointer(tv.Type), errType) {
					continue
				}
				pass.Reportf(arg.Pos(), "error formatted with %%%c loses its chain for errors.Is/errors.As; wrap with %%w (or annotate //quitlint:allow errwrap if flattening is intended)", verb)
			}
			return true
		})
	}
	return nil
}

// constantString resolves expr to a compile-time string constant.
func constantString(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// formatVerbs extracts the verb letter consuming each successive argument
// of a Printf-style format. It returns ok=false for features that break
// the one-verb-one-argument correspondence: explicit argument indexes
// ("%[1]v") and star width/precision ("%*d").
func formatVerbs(format string) ([]byte, bool) {
	var verbs []byte
	for i := 0; i < len(format); {
		if format[i] != '%' {
			i++
			continue
		}
		i++ // past '%'
		if i < len(format) && format[i] == '%' {
			i++
			continue
		}
		// Skip flags, width and precision.
		for i < len(format) && strings.IndexByte("+-# 0.123456789", format[i]) >= 0 {
			i++
		}
		if i >= len(format) {
			return nil, false // trailing bare '%'
		}
		if format[i] == '[' || format[i] == '*' {
			return nil, false
		}
		verbs = append(verbs, format[i])
		i++
	}
	return verbs, true
}
