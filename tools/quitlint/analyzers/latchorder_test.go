package analyzers_test

import (
	"testing"

	"github.com/quittree/quit/tools/quitlint/analyzers"
	"github.com/quittree/quit/tools/quitlint/internal/linttest"
)

func TestLatchOrderFires(t *testing.T) {
	linttest.Run(t, "testdata/src", "latchorder/bad", analyzers.LatchOrder)
}

func TestLatchOrderSilent(t *testing.T) {
	linttest.ExpectClean(t, "testdata/src", "latchorder/good", analyzers.LatchOrder)
}
