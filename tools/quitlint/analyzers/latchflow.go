package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/quittree/quit/tools/quitlint/internal/lintkit"
)

// LatchFlow is the path-sensitive companion to LatchOrder: it tracks latch
// ownership through the control-flow graph of every function and reports
// paths that leave the function still holding an acquisition. Where
// LatchOrder checks ordering between acquisitions in source order,
// LatchFlow checks pairing across branches, loops and early returns — the
// leak class the PR 1 review caught by hand in the split paths.
//
// Tracked acquisitions, per function:
//
//   - the fp-meta mutex: lockMeta generates a token, unlockMeta (inline or
//     deferred) releases every meta token;
//   - write latches on local node variables: writeLatch(x) generates
//     unconditionally; tryWriteLatch(x) / writeLatchLive(x) /
//     upgradeLatch(x, v) generate with the failure branch edge refined
//     away (directly in a condition, or through a bool local tested in the
//     same block); x := t.writeLockedRoot() generates for x;
//   - optimistic read sections on local node variables: readLatch(x) (ok
//     result refined), x, v := t.readRoot() and x, v := t.descendToLeaf(k).
//     readUnlatch(x, v) and readAbort(x) close the section on both edges —
//     a failed validation is itself a closed section; upgradeLatch closes
//     the read section and opens a write token on its success edge.
//
// A token dies when it is released, deferred-released, or *handed over*:
// the variable appearing as a bare value outside this function's control —
// passed to a non-helper call, stored through an assignment, placed in a
// composite literal or return value, sent on a channel, or captured by a
// function literal — transfers release responsibility elsewhere, which is
// how the split paths publish still-latched siblings. Plain reads (field
// or method access, pointer comparisons) do not hand a token over.
//
// The analysis is a may-analysis over the lintkit CFG: a token set on some
// path into an exit is reported at that exit. Tokens are only tracked for
// variables declared inside the function body — parameters and receivers
// may legitimately arrive or leave latched by caller contract (e.g. the
// rebalance helpers). Function literals are analyzed as functions of
// their own. Functions in latch*.go (the helper implementations) are
// exempt.
var LatchFlow = &lintkit.Analyzer{
	Name: "latchflow",
	Doc:  "check that every latch acquisition is released, handed over, or deferred on all paths out of the function (DESIGN.md §6)",
	Run:  runLatchFlow,
}

type latchKind uint8

const (
	metaTok latchKind = iota
	writeTok
	readTok
)

func (k latchKind) String() string {
	switch k {
	case metaTok:
		return "fp-meta mutex"
	case writeTok:
		return "write latch"
	default:
		return "read section"
	}
}

// latchGens generate a token on their first argument; the bool maps the
// helper to whether the acquisition is conditional (refinable on the
// failure edge of its result).
var latchGens = map[string]bool{
	"writeLatch":     false,
	"tryWriteLatch":  true,
	"writeLatchLive": true,
	"upgradeLatch":   true,
	"readLatch":      true,
}

// latchResultGens generate a token on the first left-hand side of their
// enclosing assignment.
var latchResultGens = map[string]latchKind{
	"writeLockedRoot": writeTok,
	"readRoot":        readTok,
	"descendToLeaf":   readTok,
}

// latchNoEscape are latch-protocol helpers whose arguments are not
// handovers: they operate on the latch in place.
var latchNoEscape = map[string]bool{
	"lockMeta": true, "unlockMeta": true,
	"writeLatch": true, "tryWriteLatch": true, "writeLatchLive": true,
	"writeUnlatch": true, "upgradeLatch": true,
	"readLatch": true, "readCheck": true, "readUnlatch": true, "readAbort": true,
	"markObsolete": true,
}

// latchSite is one acquisition site, owning one fact bit.
type latchSite struct {
	bit  lintkit.Fact
	kind latchKind
	obj  types.Object // latched variable; nil for the meta mutex
	pos  token.Pos
}

func runLatchFlow(pass *lintkit.Pass) error {
	if latchType(pass.Pkg) == nil {
		return nil
	}
	for _, f := range pass.Files {
		if latchFiles[lintkit.Filename(pass.Fset, f.Pos())] {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLatchFlow(pass, fd.Body)
			for _, lit := range lintkit.FuncLits(fd.Body) {
				checkLatchFlow(pass, lit.Body)
			}
		}
	}
	return nil
}

type lfChecker struct {
	pass  *lintkit.Pass
	body  *ast.BlockStmt
	sites map[token.Pos]*latchSite // keyed by the generating call's Pos
	all   []*latchSite
	bind  map[types.Object]*latchSite // bool local -> gated site (per block)
}

func checkLatchFlow(pass *lintkit.Pass, body *ast.BlockStmt) {
	c := &lfChecker{pass: pass, body: body, sites: map[token.Pos]*latchSite{}}
	c.collectSites()
	if len(c.all) == 0 || len(c.all) > 64 {
		// Nothing acquired here, or too many sites to bit-encode (no such
		// function exists in the tree; bail rather than mis-track).
		return
	}
	cfg := lintkit.BuildCFG(body)
	flow := &lintkit.Flow{
		CFG:        cfg,
		BlockStart: func(*lintkit.Block) { c.bind = map[types.Object]*latchSite{} },
		Transfer:   c.transfer,
		Branch:     c.branch,
	}
	flow.Run(nil, func(b *lintkit.Block, f lintkit.Fact) {
		if b.Panics || f == 0 {
			return
		}
		c.reportLeaks(b, f)
	})
}

// trackableObj returns the variable object behind e when e is a simple
// identifier declared inside this function body; nil otherwise. Parameters,
// receivers and captured outer variables are deliberately excluded: they
// may arrive or leave latched by contract.
func (c *lfChecker) trackableObj(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := c.pass.Info.ObjectOf(id)
	if obj == nil {
		return nil
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return nil
	}
	if obj.Pos() < c.body.Pos() || obj.Pos() >= c.body.End() {
		return nil
	}
	return obj
}

// helperName resolves the latch-helper name a call invokes, or "".
func (c *lfChecker) helperName(call *ast.CallExpr) string {
	callee := calleeFunc(c.pass.Info, call)
	if callee == nil {
		return ""
	}
	name := callee.Name()
	if latchNoEscape[name] {
		return name
	}
	if _, ok := latchResultGens[name]; ok {
		return name
	}
	return ""
}

func (c *lfChecker) newSite(kind latchKind, obj types.Object, pos token.Pos) {
	s := &latchSite{bit: 1 << uint(len(c.all)), kind: kind, obj: obj, pos: pos}
	c.all = append(c.all, s)
	c.sites[pos] = s
}

// collectSites enumerates the acquisition sites of the function, assigning
// one fact bit each. The traversal mirrors the transfer function's: nested
// function literals are opaque.
func (c *lfChecker) collectSites() {
	ast.Inspect(c.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			if call, name := c.specialAssignCall(n); call != nil {
				if kind, ok := latchResultGens[name]; ok {
					if obj := c.trackableObj(n.Lhs[0]); obj != nil {
						c.newSite(kind, obj, call.Pos())
					}
					return false // the call is fully handled
				}
			}
		case *ast.CallExpr:
			if c.sites[n.Pos()] != nil {
				return true
			}
			name := c.helperName(n)
			if name == "lockMeta" {
				c.newSite(metaTok, nil, n.Pos())
				return true
			}
			if _, ok := latchGens[name]; ok && len(n.Args) > 0 {
				if obj := c.trackableObj(n.Args[0]); obj != nil {
					kind := writeTok
					if name == "readLatch" {
						kind = readTok
					}
					c.newSite(kind, obj, n.Pos())
				}
			}
		}
		return true
	})
}

// specialAssignCall returns the single helper call on the right-hand side
// of an assignment, with its name, when the assignment is one of the
// token-producing forms; (nil, "") otherwise.
func (c *lfChecker) specialAssignCall(a *ast.AssignStmt) (*ast.CallExpr, string) {
	if len(a.Rhs) != 1 {
		return nil, ""
	}
	call, ok := ast.Unparen(a.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	name := c.helperName(call)
	if name == "" {
		return nil, ""
	}
	if _, ok := latchResultGens[name]; ok {
		return call, name
	}
	if latchGens[name] {
		return call, name
	}
	return nil, ""
}

// killObj clears every bit owned by obj with one of the given kinds.
func (c *lfChecker) killObj(f lintkit.Fact, obj types.Object, kinds ...latchKind) lintkit.Fact {
	for _, s := range c.all {
		if s.obj != obj || s.obj == nil {
			continue
		}
		for _, k := range kinds {
			if s.kind == k {
				f &^= s.bit
			}
		}
	}
	return f
}

func (c *lfChecker) killMeta(f lintkit.Fact) lintkit.Fact {
	for _, s := range c.all {
		if s.kind == metaTok {
			f &^= s.bit
		}
	}
	return f
}

// transfer maps the token set across one statement or condition.
func (c *lfChecker) transfer(n ast.Node, f lintkit.Fact) lintkit.Fact {
	switch n := n.(type) {
	case *ast.DeferStmt:
		return c.deferTransfer(n, f)
	case *ast.GoStmt:
		return c.escapeWalk(n.Call, f)
	case *ast.AssignStmt:
		return c.assignTransfer(n, f)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			f = c.escapeWalk(r, f)
		}
		return f
	case *ast.SendStmt:
		f = c.escapeWalk(n.Chan, f)
		return c.escapeWalk(n.Value, f)
	case *ast.ExprStmt:
		return c.escapeWalk(n.X, f)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						f = c.escapeWalk(v, f)
					}
				}
			}
		}
		return f
	case *ast.IncDecStmt, *ast.BranchStmt:
		return f
	case ast.Expr:
		return c.escapeWalk(n, f)
	default:
		return f
	}
}

// deferTransfer applies a deferred release immediately — it is guaranteed
// to run on every path out of the function — and treats any other deferred
// call as a handover of its arguments.
func (c *lfChecker) deferTransfer(d *ast.DeferStmt, f lintkit.Fact) lintkit.Fact {
	name := c.helperName(d.Call)
	switch name {
	case "unlockMeta":
		return c.killMeta(f)
	case "writeUnlatch", "markObsolete":
		if obj := c.trackableObj(arg0(d.Call)); obj != nil {
			return c.killObj(f, obj, writeTok)
		}
		return f
	case "readUnlatch", "readAbort":
		if obj := c.trackableObj(arg0(d.Call)); obj != nil {
			return c.killObj(f, obj, readTok)
		}
		return f
	}
	return c.escapeWalk(d.Call, f)
}

// assignTransfer handles token-producing assignments, handover through the
// right-hand side, and reassignment of tracked variables.
func (c *lfChecker) assignTransfer(a *ast.AssignStmt, f lintkit.Fact) lintkit.Fact {
	if call, name := c.specialAssignCall(a); call != nil {
		if _, isResult := latchResultGens[name]; isResult {
			if s := c.sites[call.Pos()]; s != nil {
				f = c.killObj(f, s.obj, readTok, writeTok) // x, v := ... redefines x
				f |= s.bit
			}
			return f
		}
		// Gated helper assigned to locals: apply its gen/kill, then bind
		// the bool result so a same-block `if !ok` can refine the edges.
		f = c.applyHelper(call, name, f)
		var boolLHS ast.Expr
		if name == "readLatch" && len(a.Lhs) == 2 {
			boolLHS = a.Lhs[1]
		} else if len(a.Lhs) == 1 {
			boolLHS = a.Lhs[0]
		}
		if boolLHS != nil {
			if obj := c.trackableObj(boolLHS); obj != nil {
				if s := c.sites[call.Pos()]; s != nil {
					c.bind[obj] = s
				}
			}
		}
		return f
	}
	for _, r := range a.Rhs {
		f = c.escapeWalk(r, f)
	}
	for _, l := range a.Lhs {
		if obj := c.trackableObj(l); obj != nil {
			f = c.killObj(f, obj, readTok, writeTok)
		} else {
			// Stores through non-ident targets (fields, slices, maps) walk
			// the target too: x[i] reads x, s.f = v reads s.
			f = c.escapeWalk(l, f)
		}
	}
	return f
}

// applyHelper performs the gen/kill of one latch-helper call.
func (c *lfChecker) applyHelper(call *ast.CallExpr, name string, f lintkit.Fact) lintkit.Fact {
	obj := c.trackableObj(arg0(call))
	switch name {
	case "lockMeta":
		if s := c.sites[call.Pos()]; s != nil {
			f |= s.bit
		}
	case "unlockMeta":
		f = c.killMeta(f)
	case "writeLatch", "tryWriteLatch", "writeLatchLive":
		if s := c.sites[call.Pos()]; s != nil {
			f |= s.bit
		}
	case "upgradeLatch":
		if obj != nil {
			f = c.killObj(f, obj, readTok)
		}
		if s := c.sites[call.Pos()]; s != nil {
			f |= s.bit
		}
	case "readLatch":
		if s := c.sites[call.Pos()]; s != nil {
			f |= s.bit
		}
	case "writeUnlatch", "markObsolete":
		if obj != nil {
			f = c.killObj(f, obj, writeTok)
		}
	case "readUnlatch", "readAbort":
		if obj != nil {
			f = c.killObj(f, obj, readTok)
		}
	}
	return f
}

// escapeWalk walks an expression applying helper gen/kills and treating
// every other bare occurrence of a tracked variable as a handover.
// Comparisons only read pointer identity and are skipped; field and method
// access through a tracked variable is a read, not a handover.
func (c *lfChecker) escapeWalk(e ast.Expr, f lintkit.Fact) lintkit.Fact {
	switch e := ast.Unparen(e).(type) {
	case nil:
		return f
	case *ast.Ident:
		if obj := c.trackableObj(e); obj != nil {
			f = c.killObj(f, obj, readTok, writeTok)
		}
		return f
	case *ast.SelectorExpr:
		if _, isIdent := ast.Unparen(e.X).(*ast.Ident); isIdent {
			return f // x.field / x.method: a read of x
		}
		return c.escapeWalk(e.X, f)
	case *ast.CallExpr:
		if name := c.helperName(e); name != "" {
			return c.applyHelper(e, name, f)
		}
		for _, a := range e.Args {
			f = c.escapeWalk(a, f)
		}
		return f
	case *ast.FuncLit:
		return c.captureKill(e, f)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
			return f // comparison: reads only
		}
		f = c.escapeWalk(e.X, f)
		return c.escapeWalk(e.Y, f)
	case *ast.UnaryExpr:
		return c.escapeWalk(e.X, f)
	case *ast.StarExpr:
		return c.escapeWalk(e.X, f)
	case *ast.IndexExpr:
		f = c.escapeWalk(e.X, f)
		return c.escapeWalk(e.Index, f)
	case *ast.SliceExpr:
		return c.escapeWalk(e.X, f)
	case *ast.TypeAssertExpr:
		return c.escapeWalk(e.X, f)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			f = c.escapeWalk(el, f)
		}
		return f
	case *ast.KeyValueExpr:
		return c.escapeWalk(e.Value, f)
	default:
		return f
	}
}

// captureKill hands over every tracked variable a function literal
// captures: the literal may release (or keep) the latch on its own
// schedule.
func (c *lfChecker) captureKill(lit *ast.FuncLit, f lintkit.Fact) lintkit.Fact {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := c.trackableObj(id); obj != nil {
				f = c.killObj(f, obj, readTok, writeTok)
			}
		}
		return true
	})
	return f
}

// branch refines the fact along the edges of a conditional whose condition
// is (possibly negated) a gated acquisition — directly, or through a bool
// local bound in this block.
func (c *lfChecker) branch(cond ast.Expr, takenTrue bool, f lintkit.Fact) lintkit.Fact {
	e := ast.Unparen(cond)
	neg := false
	for {
		u, ok := e.(*ast.UnaryExpr)
		if !ok || u.Op != token.NOT {
			break
		}
		neg = !neg
		e = ast.Unparen(u.X)
	}
	var site *latchSite
	switch e := e.(type) {
	case *ast.CallExpr:
		if name := c.helperName(e); latchGens[name] {
			site = c.sites[e.Pos()]
		}
	case *ast.Ident:
		if obj := c.pass.Info.ObjectOf(e); obj != nil {
			site = c.bind[obj]
		}
	}
	if site == nil {
		return f
	}
	success := takenTrue != neg
	if !success {
		f &^= site.bit // the acquisition failed along this edge
	}
	return f
}

// reportLeaks emits one diagnostic per leaked (kind, variable) pair at an
// exit block.
func (c *lfChecker) reportLeaks(b *lintkit.Block, f lintkit.Fact) {
	pos := c.body.End()
	where := "end of function"
	if b.Return != nil {
		pos = b.Return.Pos()
		where = "return"
	}
	type group struct {
		kind latchKind
		obj  types.Object
	}
	leaks := map[group][]*latchSite{}
	var order []group
	for _, s := range c.all {
		if f&s.bit == 0 {
			continue
		}
		g := group{kind: s.kind, obj: s.obj}
		if _, seen := leaks[g]; !seen {
			order = append(order, g)
		}
		leaks[g] = append(leaks[g], s)
	}
	for _, g := range order {
		sites := leaks[g]
		lines := make([]string, 0, len(sites))
		for _, s := range sites {
			p := c.pass.Fset.Position(s.pos)
			lines = append(lines, fmt.Sprintf("%s:%d", lintkit.Filename(c.pass.Fset, s.pos), p.Line))
		}
		sort.Strings(lines)
		if g.kind == metaTok {
			c.pass.Reportf(pos, "fp-meta mutex locked at %s may still be held at this %s; unlockMeta on every path or defer it (DESIGN.md §6)",
				strings.Join(lines, ", "), where)
			continue
		}
		c.pass.Reportf(pos, "%s on %s acquired at %s may still be held at this %s; release it, hand it over, or defer the release on every path",
			g.kind, g.obj.Name(), strings.Join(lines, ", "), where)
	}
}

func arg0(call *ast.CallExpr) ast.Expr {
	if len(call.Args) == 0 {
		return nil
	}
	return call.Args[0]
}
