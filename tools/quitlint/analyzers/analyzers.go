// Package analyzers holds quitlint's nine checks over the OLC latch
// protocol, atomics discipline, error-wrapping hygiene, fast-path
// invariants, and the WAL durability contract documented in DESIGN.md
// §6–§10 and §12 of the main module. They are written against the lintkit
// framework (a stdlib-only mirror of go/analysis) and are keyed to the
// naming conventions of internal/core: the versioned latch type is named
// `latch`, the tree-level wrappers readLatch / readCheck / readUnlatch /
// upgradeLatch / writeLatch / writeLatchLive / tryWriteLatch live in
// latch.go, and the fast-path metadata mutex is taken via lockMeta /
// unlockMeta. Packages that do not declare a `latch` struct only get the
// convention-free checks (atomic field hygiene, unsafe confinement).
//
// Six of the checks (atomicfield, errwrap, gapwrite, latchorder,
// olcvalidate, unsafeuse) are syntactic / call-graph analyses over the
// raw AST. The other three (latchflow, walorder, stickypoison) are
// flow-sensitive:
// they run a forward may-analysis over lintkit's basic-block CFG, so a
// latch leaked on one early-return path — or a WAL ack reachable without
// a commit — is reported even when every other path is correct.
package analyzers

import (
	"go/ast"
	"go/types"

	"github.com/quittree/quit/tools/quitlint/internal/lintkit"
)

// All returns the quitlint analyzer suite.
func All() []*lintkit.Analyzer {
	return []*lintkit.Analyzer{
		AtomicField,
		ErrWrap,
		GapWrite,
		LatchFlow,
		LatchOrder,
		OLCValidate,
		StickyPoison,
		UnsafeUse,
		WalOrder,
	}
}

// latchFiles are the only files allowed to touch a node's latch field, per
// the protocol comment at the top of internal/core/latch.go.
var latchFiles = map[string]bool{
	"latch.go":      true,
	"latch_olc.go":  true,
	"latch_race.go": true,
}

// latchImplFiles are the only files allowed to touch the latch's internal
// word (the atomic version word, or the RWMutex of the race build).
var latchImplFiles = map[string]bool{
	"latch_olc.go":  true,
	"latch_race.go": true,
}

// latchType returns the package's `latch` struct type, or nil when the
// package does not participate in the latch protocol.
func latchType(pkg *types.Package) *types.Named {
	obj := pkg.Scope().Lookup("latch")
	if obj == nil {
		return nil
	}
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}

// isAtomicType reports whether t is (an instantiation of) a named type
// from sync/atomic.
func isAtomicType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

// isLatchTyped reports whether t is the package's latch type.
func isLatchTyped(t types.Type, latch *types.Named) bool {
	if latch == nil {
		return false
	}
	named, ok := types.Unalias(t).(*types.Named)
	return ok && named.Obj() == latch.Obj()
}

// calleeFunc resolves the function or method a call expression invokes,
// or nil for indirect calls and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.IndexExpr: // explicit instantiation: f[T](...)
		if id, ok := fun.X.(*ast.Ident); ok {
			if f, ok := info.Uses[id].(*types.Func); ok {
				return f
			}
		}
	}
	return nil
}

// recvBaseNamed returns the named type of a method's receiver with
// pointers stripped, or nil for plain functions.
func recvBaseNamed(f *types.Func) *types.Named {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := types.Unalias(t).(*types.Named)
	return named
}

// isLatchMethod reports whether f is a method declared on the latch type.
func isLatchMethod(f *types.Func, latch *types.Named) bool {
	if latch == nil {
		return false
	}
	named := recvBaseNamed(f)
	return named != nil && named.Obj() == latch.Obj()
}
