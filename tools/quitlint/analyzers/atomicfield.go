package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/quittree/quit/tools/quitlint/internal/lintkit"
)

// AtomicField enforces the atomics discipline of DESIGN.md §6:
//
//  1. Shared pointer/counter fields published to optimistic readers —
//     root, head, tail, height on the tree, and the leaf-chain next/prev
//     on latch-bearing nodes — must be declared with sync/atomic types.
//     (Heuristic gate: the rule applies to structs that already carry at
//     least one atomic or latch field, i.e. concurrency-bearing structs;
//     plain value snapshots like Stats are exempt.)
//  2. A sync/atomic-typed field may only be used as the receiver of an
//     atomic method call (Load/Store/Add/Swap/CompareAndSwap/...) or have
//     its address taken. Copying it, assigning it, or reading it as a
//     value bypasses the atomic API (and go vet's copylocks only catches a
//     subset of these).
//  3. The node latch field (type latch) may only be touched in latch.go,
//     latch_olc.go and latch_race.go — every other file must go through
//     the tree-level wrappers. The latch's own internals (the version
//     word / race-build mutex) are confined to latch_olc.go and
//     latch_race.go.
var AtomicField = &lintkit.Analyzer{
	Name: "atomicfield",
	Doc:  "check that DESIGN.md §6 atomic fields are declared atomic and only touched through atomic accessors, and that latch words stay confined to latch*.go",
	Run:  runAtomicField,
}

// atomicDeclNames are the field names rule 1 covers; next/prev additionally
// require the struct to carry a latch field (they are only chain links on
// nodes).
var atomicDeclNames = map[string]bool{
	"root":   true,
	"head":   true,
	"tail":   true,
	"height": true,
	"next":   true,
	"prev":   true,
}

func runAtomicField(pass *lintkit.Pass) error {
	latch := latchType(pass.Pkg)

	if latch != nil {
		checkAtomicDecls(pass, latch)
	}

	// Fields of the latch struct itself (confinement rule 3b).
	latchInternalFields := map[*types.Var]bool{}
	if latch != nil {
		st := latch.Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			latchInternalFields[st.Field(i)] = true
		}
	}

	lintkit.Inspect(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		field, ok := selection.Obj().(*types.Var)
		if !ok {
			return true
		}

		switch {
		case latchInternalFields[field]:
			if !latchImplFiles[lintkit.Filename(pass.Fset, sel.Pos())] {
				pass.Reportf(sel.Pos(), "latch-internal field %s may only be touched in latch_olc.go/latch_race.go; use the latch API", field.Name())
			}
		case isLatchTyped(field.Type(), latch):
			if !latchFiles[lintkit.Filename(pass.Fset, sel.Pos())] {
				pass.Reportf(sel.Pos(), "node latch field %s may only be touched in latch.go/latch_olc.go/latch_race.go; use the tree-level latch helpers", field.Name())
			}
		case isAtomicType(field.Type()):
			if !atomicUseOK(stack) {
				pass.Reportf(sel.Pos(), "atomic field %s used without an atomic accessor (copying or reassigning it tears the protocol); call its Load/Store/Add/CAS methods", field.Name())
			}
		}
		return true
	})
	return nil
}

// atomicUseOK reports whether the selector whose ancestor stack is given is
// a legitimate use of an atomic field: the receiver of a method call, or an
// address-of operand.
func atomicUseOK(stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	parent := stack[len(stack)-1]
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		// field.Method(...) — the method selector must itself be called.
		if len(stack) >= 2 {
			if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == p {
				return true
			}
		}
		// Deeper selection into the atomic value (e.g. lt.w.Load) is
		// handled when the inner selector is visited; treat the chain
		// itself as fine here.
		return true
	case *ast.UnaryExpr:
		return p.Op == token.AND
	}
	return false
}

// checkAtomicDecls applies rule 1 to every struct declared in the package.
func checkAtomicDecls(pass *lintkit.Pass, latch *types.Named) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				checkStructDecl(pass, latch, ts, st)
			}
		}
	}
}

func checkStructDecl(pass *lintkit.Pass, latch *types.Named, ts *ast.TypeSpec, st *ast.StructType) {
	if ts.Name.Name == "latch" {
		return // the latch implements the protocol, it is not subject to it
	}
	concurrencyBearing := false
	hasLatchField := false
	for _, fl := range st.Fields.List {
		t := pass.Info.Types[fl.Type].Type
		if t == nil {
			continue
		}
		if isAtomicType(t) {
			concurrencyBearing = true
		}
		if isLatchTyped(t, latch) {
			concurrencyBearing = true
			hasLatchField = true
		}
	}
	if !concurrencyBearing {
		return
	}
	for _, fl := range st.Fields.List {
		t := pass.Info.Types[fl.Type].Type
		if t == nil || isAtomicType(t) || isLatchTyped(t, latch) {
			continue
		}
		for _, name := range fl.Names {
			if !atomicDeclNames[name.Name] {
				continue
			}
			if (name.Name == "next" || name.Name == "prev") && !hasLatchField {
				continue
			}
			pass.Reportf(name.Pos(), "field %s of %s is shared with optimistic readers and must use a sync/atomic type (DESIGN.md §6)", name.Name, ts.Name.Name)
		}
	}
}
