package analyzers_test

import (
	"testing"

	"github.com/quittree/quit/tools/quitlint/analyzers"
	"github.com/quittree/quit/tools/quitlint/internal/linttest"
)

func TestOLCValidateFires(t *testing.T) {
	linttest.Run(t, "testdata/src", "olcvalidate/bad", analyzers.OLCValidate)
}

func TestOLCValidateSilent(t *testing.T) {
	linttest.ExpectClean(t, "testdata/src", "olcvalidate/good", analyzers.OLCValidate)
}
