package fixture

// Tree-level latch wrappers: the only non-implementation file allowed to
// touch a node's latch field.

func (t *Tree) writeLatch(n *node)   { n.lt.writeLock() }
func (t *Tree) writeUnlatch(n *node) { n.lt.writeUnlock() }
