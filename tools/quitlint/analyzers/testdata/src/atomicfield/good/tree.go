package fixture

import "sync/atomic"

type node struct {
	lt   latch
	keys []int
	next atomic.Pointer[node]
	prev atomic.Pointer[node]
}

type Tree struct {
	size   atomic.Int64
	root   atomic.Pointer[node]
	height atomic.Int32
}

// Stats is a plain value snapshot; non-atomic height here is fine.
type Stats struct {
	height int
	size   int64
}

func (t *Tree) stats() Stats {
	return Stats{height: int(t.height.Load()), size: t.size.Load()}
}

func (t *Tree) grow(r *node) {
	t.root.Store(r)
	t.height.Add(1)
}

func reset(counters []*atomic.Int64) {
	for _, c := range counters {
		c.Store(0)
	}
}

// addressOf exercises the &-operand allowance (ResetCounters-style code).
func (t *Tree) addressOf() {
	reset([]*atomic.Int64{&t.size})
}
