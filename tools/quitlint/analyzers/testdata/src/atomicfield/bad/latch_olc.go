package fixture

import "sync/atomic"

type latch struct{ w atomic.Uint64 }

func (l *latch) readLockOrRestart() (uint64, bool) { return l.w.Load(), true }
func (l *latch) writeLock()                        { l.w.Add(1) }
func (l *latch) writeUnlock()                      { l.w.Add(1) }
