package fixture

import "sync/atomic"

type node struct {
	lt   latch
	keys []int
	next *node // want "field next of node is shared with optimistic readers and must use a sync/atomic type"
}

type Tree struct {
	size   atomic.Int64
	root   *node // want "field root of Tree is shared with optimistic readers and must use a sync/atomic type"
	height atomic.Int32
}

// Stats carries no atomics or latches: a plain snapshot, exempt from the
// declaration rule even though its field names collide.
type Stats struct {
	height int
	root   *node
}

func (t *Tree) badCopy() int32 {
	h := t.height // want "atomic field height used without an atomic accessor"
	_ = h
	return t.height.Load()
}

func (t *Tree) badLatchTouch(n *node) {
	n.lt.writeLock() // want "node latch field lt may only be touched in latch.go/latch_olc.go/latch_race.go"
}

func (t *Tree) badLatchWord(n *node) uint64 {
	return n.lt.w.Load() // want "node latch field lt may only be touched" "latch-internal field w may only be touched in latch_olc.go/latch_race.go"
}
