package fixture

type node struct {
	lt   latch
	keys []int
	kids []*node
}

func (n *node) isLeaf() bool { return len(n.kids) == 0 }

type Tree struct{ rootN *node }

func (t *Tree) readLatch(n *node) (uint64, bool)    { return n.lt.readLockOrRestart() }
func (t *Tree) readCheck(n *node, v uint64) bool    { return n.lt.checkOrRestart(v) }
func (t *Tree) readUnlatch(n *node, v uint64) bool  { return n.lt.readUnlockOrRestart(v) }
func (t *Tree) readAbort(n *node)                   { n.lt.readAbort() }
func (t *Tree) upgradeLatch(n *node, v uint64) bool { return n.lt.upgradeToWriteLockOrRestart(v) }

// readRoot and descendToLeaf are compliant: versions escape by return or
// are handed over parent-to-child before validation.
func (t *Tree) readRoot() (*node, uint64) {
	for {
		n := t.rootN
		v, ok := t.readLatch(n)
		if !ok {
			continue
		}
		return n, v
	}
}

func (t *Tree) descendToLeaf(key int) (*node, uint64) {
	for {
		n, v := t.readRoot()
		ok := true
		for !n.isLeaf() {
			c := n.kids[0]
			cv, lok := t.readLatch(c)
			if !lok {
				t.readAbort(n)
				ok = false
				break
			}
			if !t.readUnlatch(n, v) {
				t.readAbort(c)
				ok = false
				break
			}
			n, v = c, cv
		}
		if ok {
			return n, v
		}
	}
}
