package fixture

func (t *Tree) getNoVersion(key int) int {
	n, _ := t.descendToLeaf(key) // want "version returned by descendToLeaf discarded with _"
	return n.keys[0]
}

func (t *Tree) getNeverChecked(key int) int {
	n, v := t.descendToLeaf(key) // want "optimistic read version v is never validated, handed over, or returned"
	_ = v
	return n.keys[0]
}

func (t *Tree) ignoredObsolete(n *node) uint64 {
	v, _ := t.readLatch(n) // want "obsolete-flag of readLatch discarded with _"
	return v
}

func (t *Tree) statementOpen(n *node) {
	t.readLatch(n) // want "optimistic open used as a statement"
}

func (t *Tree) uncheckedValidation(n *node) int {
	v, ok := t.readLatch(n)
	if !ok {
		return 0
	}
	x := n.keys[0]
	t.readUnlatch(n, v) // want "result of readUnlatch discarded: an unchecked validation is no validation"
	return x
}

func (t *Tree) blankValidation(n *node) int {
	v, ok := t.readLatch(n)
	if !ok {
		return 0
	}
	x := n.keys[0]
	_ = t.readUnlatch(n, v) // want "result of readUnlatch discarded with _"
	return x
}
