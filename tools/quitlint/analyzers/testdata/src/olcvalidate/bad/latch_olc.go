package fixture

import "sync/atomic"

type latch struct{ w atomic.Uint64 }

func (l *latch) readLockOrRestart() (uint64, bool)         { return l.w.Load(), true }
func (l *latch) checkOrRestart(v uint64) bool              { return l.w.Load() == v }
func (l *latch) readUnlockOrRestart(v uint64) bool         { return l.w.Load() == v }
func (l *latch) readAbort()                                {}
func (l *latch) upgradeToWriteLockOrRestart(v uint64) bool { return l.w.CompareAndSwap(v, v+1) }
