package fixture

// get validates before returning the value read under the section.
func (t *Tree) get(key int) (int, bool) {
	for {
		n, v := t.descendToLeaf(key)
		val := n.keys[0]
		if t.readUnlatch(n, v) {
			return val, true
		}
	}
}

// midCheck revalidates mid-section and keeps reading.
func (t *Tree) midCheck(n *node) (int, bool) {
	v, ok := t.readLatch(n)
	if !ok {
		return 0, false
	}
	a := n.keys[0]
	if !t.readCheck(n, v) {
		return 0, false
	}
	b := n.keys[0]
	if !t.readUnlatch(n, v) {
		return 0, false
	}
	return a + b, true
}

// upgrade consumes the version by converting the section to a write latch.
func (t *Tree) upgrade(n *node) bool {
	v, ok := t.readLatch(n)
	if !ok {
		return false
	}
	return t.upgradeLatch(n, v)
}

// handover re-aliases the version across a chain hop before validating.
func (t *Tree) handover(key int) (int, bool) {
	n, v := t.readRoot()
	for !n.isLeaf() {
		c := n.kids[0]
		cv, ok := t.readLatch(c)
		if !ok {
			return 0, false
		}
		if !t.readUnlatch(n, v) {
			return 0, false
		}
		n, v = c, cv
	}
	val := n.keys[0]
	if !t.readUnlatch(n, v) {
		return 0, false
	}
	return val, true
}
