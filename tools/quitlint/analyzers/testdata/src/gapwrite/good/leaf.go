package fixture

// The gapped-node protocol: slot/bitmap mutators only run on latched,
// fresh, or caller-latched nodes.

type node struct {
	keys    []int
	present []uint64
	count   int32
}

func (n *node) gapInsert(k, v int)       {}
func (n *node) gapRemove(slot int)       {}
func (n *node) setBit(i int)             { n.present[i>>6] |= 1 << uint(i&63) }
func (n *node) compact()                 {}
func (n *node) setSpread(ks, vs []int)   {}
func (n *node) appendDense(ks, vs []int) {}
func (n *node) refrontierAt(p int)       {}
func (n *node) respread()                {}

type Tree struct {
	root *node
}

func (t *Tree) newLeaf() *node              { return &node{} }
func (t *Tree) writeLatch(n *node)          {}
func (t *Tree) tryWriteLatch(n *node) bool  { return true }
func (t *Tree) writeLatchLive(n *node) bool { return true }
func (t *Tree) writeUnlatch(n *node)        {}

// latchedMutation latches the leaf before filling a gap.
func (t *Tree) latchedMutation(k int) {
	leaf := t.root
	if !t.tryWriteLatch(leaf) {
		return
	}
	leaf.gapInsert(k, k)
	t.writeUnlatch(leaf)
}

// freshMutation builds an unpublished node: no readers, no latch needed.
func (t *Tree) freshMutation(ks, vs []int) *node {
	right := t.newLeaf()
	right.appendDense(ks, vs)
	right.compact()
	return right
}

// paramMutation receives the leaf latched by caller contract.
func (t *Tree) paramMutation(leaf *node, k int) {
	leaf.gapInsert(k, k)
	leaf.gapRemove(0)
}

// blockingLatch uses the unconditional acquisition.
func (t *Tree) blockingLatch(k int) {
	leaf := t.root
	t.writeLatch(leaf)
	leaf.setSpread(nil, nil)
	t.writeUnlatch(leaf)
}

// latchedRegap rebuilds the gap layout while holding the write latch: the
// adaptive re-gap paths fire right after a long shift, still inside the
// insert's latched region.
func (t *Tree) latchedRegap(p int) {
	leaf := t.root
	t.writeLatch(leaf)
	leaf.refrontierAt(p)
	leaf.respread()
	t.writeUnlatch(leaf)
}
