package fixture

type node struct {
	keys    []int
	present []uint64
	count   int32
}

func (n *node) gapInsert(k, v int)     {}
func (n *node) gapRemove(slot int)     {}
func (n *node) setBit(i int)           { n.present[i>>6] |= 1 << uint(i&63) }
func (n *node) compact()               {}
func (n *node) setSpread(ks, vs []int) {}
func (n *node) refrontierAt(p int)     {}
func (n *node) respread()              {}

type Tree struct {
	root *node
}

func (t *Tree) newLeaf() *node             { return &node{} }
func (t *Tree) writeLatch(n *node)         {}
func (t *Tree) tryWriteLatch(n *node) bool { return true }
func (t *Tree) writeUnlatch(n *node)       {}

// unlatchedGapWrite mutates the slot layout of a published node with no
// latch at all: an optimistic reader scanning the bitmap would see the
// count and the presence words move out from under its version check.
func (t *Tree) unlatchedGapWrite(k int) {
	leaf := t.root
	leaf.gapInsert(k, k) // want "gap mutator gapInsert on leaf without the write latch"
}

// mutateAfterRelease reopens the leaf after dropping the latch.
func (t *Tree) mutateAfterRelease(k int) {
	leaf := t.root
	t.writeLatch(leaf)
	leaf.gapInsert(k, k)
	t.writeUnlatch(leaf)
	leaf.gapRemove(0) // want "gap mutator gapRemove on leaf without the write latch"
}

// rawBitFlip touches the presence bitmap directly without a latch.
func (t *Tree) rawBitFlip(i int) {
	leaf := t.root
	leaf.setBit(i) // want "gap mutator setBit on leaf without the write latch"
}

// unlatchedRegap rebuilds the gap layout of a published node without a
// latch: the wholesale slot rewrite would tear under an optimistic reader.
func (t *Tree) unlatchedRegap(p int) {
	leaf := t.root
	leaf.refrontierAt(p) // want "gap mutator refrontierAt on leaf without the write latch"
	leaf.respread()      // want "gap mutator respread on leaf without the write latch"
}
