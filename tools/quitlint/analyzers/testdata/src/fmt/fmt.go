// Package fmt is a hermetic stub of fmt for quitlint fixtures: the errwrap
// analyzer keys on the package path and the Errorf name, so a trivial body
// suffices and the golden tests need no export data or GOROOT access.
package fmt

type stubError struct{ s string }

func (e *stubError) Error() string { return e.s }

func Errorf(format string, args ...any) error { return &stubError{s: format} }

func Sprintf(format string, args ...any) string { return format }
