package fixture

import (
	"errors"
	"fmt"
)

var errSentinel = errors.New("sentinel")

func wrapVerb(err error) error {
	return fmt.Errorf("load failed: %w", err)
}

func doubleWrap(a, b error) error {
	return fmt.Errorf("%w: %w", a, b)
}

func nonErrorArgs(path string, n int) error {
	return fmt.Errorf("reading %s: offset %d out of range: %v", path, n, n)
}

func mixedWrapAndValues(path string, err error) error {
	return fmt.Errorf("reading %s: %w", path, err)
}

func percentLiteral(err error) error {
	return fmt.Errorf("99%% done: %w", err)
}

func intentionalFlatten(err error) error {
	// Flattening err's text while chaining the sentinel is the documented
	// pattern for mapping causes onto typed errors.
	return fmt.Errorf("rebuilding: %v: %w", err, errSentinel) //quitlint:allow errwrap mapping cause onto sentinel
}

func dynamicFormat(f string, err error) error {
	return fmt.Errorf(f, err) // dynamic format: out of scope
}

func indexedVerbs(err error) error {
	return fmt.Errorf("%[1]v", err) // indexed verbs: out of scope
}

func notErrorf(err error) string {
	return fmt.Sprintf("log line: %v", err) // Sprintf never wraps; fine
}
