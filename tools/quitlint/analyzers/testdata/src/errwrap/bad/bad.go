package fixture

import (
	"errors"
	"fmt"
)

var errSentinel = errors.New("sentinel")

type opError struct{ msg string }

func (e *opError) Error() string { return e.msg }

func valueVerb(err error) error {
	return fmt.Errorf("load failed: %v", err) // want "error formatted with %v"
}

func stringVerb(err error) error {
	return fmt.Errorf("load failed: %s", err) // want "error formatted with %s"
}

func quoteVerb(err error) error {
	return fmt.Errorf("load failed: %q", err) // want "error formatted with %q"
}

func sentinelValue() error {
	return fmt.Errorf("opening snapshot: %v", errSentinel) // want "error formatted with %v"
}

func concreteErrorType(e *opError) error {
	return fmt.Errorf("apply: %v", e) // want "error formatted with %v"
}

func mixedArgs(path string, err error) error {
	// The non-error argument is fine; the error one is not.
	return fmt.Errorf("reading %s: %v", path, err) // want "error formatted with %v"
}

func secondOfTwoErrors(a, b error) error {
	return fmt.Errorf("%w then %v", a, b) // want "error formatted with %v"
}

func flaggedVerb(err error) error {
	return fmt.Errorf("detail: %+v", err) // want "error formatted with %v"
}
