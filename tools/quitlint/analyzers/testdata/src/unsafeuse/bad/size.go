package fixture

import "unsafe"

func entrySize() uintptr {
	return unsafe.Sizeof(int64(0)) // want "use of unsafe.Sizeof"
}

func alignment() uintptr {
	return unsafe.Alignof(int32(0)) // want "use of unsafe.Alignof"
}

func fieldOffset() uintptr {
	var s struct{ a, b int64 }
	return unsafe.Offsetof(s.b) // want "use of unsafe.Offsetof"
}
