package fixture

import "unsafe"

// Findings in *_test.go files are exempt: this naked use must stay silent.
func testOnlySize() uintptr {
	return unsafe.Sizeof(uint64(0))
}
