package fixture

import "unsafe"

func entrySize() uintptr {
	return unsafe.Sizeof(int64(0)) //quitlint:allow unsafeuse audited: compile-time size accounting, no pointers formed
}

func alignment() uintptr {
	//quitlint:allow unsafeuse audited: the allow comment may sit on the line above
	return unsafe.Alignof(int32(0))
}
