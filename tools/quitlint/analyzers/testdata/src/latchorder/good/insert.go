package fixture

// tryFastInsert is the sanctioned shape: meta held only across the
// non-blocking probe; the blocking writeLatchLive acquisition happens after
// meta is released, and this function is the writeLatchLive allowlist.
func (t *Tree) tryFastInsert(k int) bool {
	t.lockMeta()
	n := t.fpLeaf
	if !t.tryWriteLatch(n) {
		t.unlockMeta()
		if !t.writeLatchLive(n) {
			return false
		}
		t.writeUnlatch(n)
		return true
	}
	t.unlockMeta()
	t.writeUnlatch(n)
	return true
}

// tryFastRun is the batched twin of tryFastInsert and follows the same
// protocol: the probe under meta is non-blocking, and the blocking
// writeLatchLive acquisition only happens after meta is released, followed
// by a latch-first revalidation of the metadata snapshot.
func (t *Tree) tryFastRun(keys []int) int {
	t.lockMeta()
	n := t.fpLeaf
	if !t.tryWriteLatch(n) {
		t.unlockMeta()
		if !t.writeLatchLive(n) {
			return 0
		}
		t.lockMeta()
		if t.fpLeaf != n {
			t.unlockMeta()
			t.writeUnlatch(n)
			return 0
		}
	}
	t.unlockMeta()
	t.writeUnlatch(n)
	return len(keys)
}

// tryTailTopUp is the parallel-ingest allowlist entry: it reaches the
// rightmost leaf through the atomic tail pointer (metadata, not a latched
// descent), so the obsolete-failing writeLatchLive is sanctioned, and its
// meta acquisition is innermost — taken only after the leaf latch is held
// and released before the latch is.
func (t *Tree) tryTailTopUp(keys []int) int {
	n := t.fpLeaf
	if !t.writeLatchLive(n) {
		return 0
	}
	t.lockMeta()
	t.fpLeaf = n
	t.unlockMeta()
	t.writeUnlatch(n)
	return len(keys)
}

// pessimisticInsert blocks on latches freely: meta is not held.
func (t *Tree) pessimisticInsert(n *node) {
	t.writeLatch(n)
	t.writeUnlatch(n)
}

// updateMeta holds meta to the end of the function via defer, touching no
// latches underneath it.
func (t *Tree) updateMeta(n *node) {
	t.lockMeta()
	defer t.unlockMeta()
	t.fpLeaf = n
}
