package fixture

import "sync"

type node struct{ lt latch }

type Tree struct {
	meta   sync.Mutex
	fpLeaf *node
}

func (t *Tree) lockMeta()   { t.meta.Lock() }
func (t *Tree) unlockMeta() { t.meta.Unlock() }

func (t *Tree) writeLatch(n *node)          { n.lt.writeLock() }
func (t *Tree) writeLatchLive(n *node) bool { return n.lt.writeLockOrRestart() }
func (t *Tree) tryWriteLatch(n *node) bool  { return n.lt.tryWriteLock() }
func (t *Tree) writeUnlatch(n *node)        { n.lt.writeUnlock() }
