package fixture

func (t *Tree) blockedUnderMeta(n *node) {
	t.lockMeta()
	t.writeLatch(n) // want "blocking latch acquisition via writeLatch while holding the fp-meta mutex"
	t.writeUnlatch(n)
	t.unlockMeta()
}

func (t *Tree) transitiveBlockUnderMeta(n *node) {
	t.lockMeta()
	defer t.unlockMeta()
	t.latchIndirect(n) // want "blocking latch acquisition via latchIndirect while holding the fp-meta mutex"
}

func (t *Tree) latchIndirect(n *node) {
	t.writeLatch(n)
	t.writeUnlatch(n)
}

func (t *Tree) recursiveMeta() {
	t.lockMeta()
	t.metaHelper() // want "call to metaHelper while holding the fp-meta mutex can re-enter lockMeta"
	t.unlockMeta()
}

func (t *Tree) metaHelper() {
	t.lockMeta()
	t.unlockMeta()
}

func (t *Tree) strayLive(n *node) bool {
	return t.writeLatchLive(n) // want "writeLatchLive acquires a possibly-unlinked node and is reserved for metadata-reached leaves"
}

// sweepRuns stands in for a batch descent helper: it is not on the rule-3
// allowlist, so reaching a leaf through writeLatchLive instead of a
// latched descent is flagged even from the batched write path.
func (t *Tree) sweepRuns(keys []int, n *node) int {
	if !t.writeLatchLive(n) { // want "writeLatchLive acquires a possibly-unlinked node and is reserved for metadata-reached leaves"
		return 0
	}
	t.writeUnlatch(n)
	return len(keys)
}

func (t *Tree) rawLatch(n *node) {
	n.lt.writeLock() // want "raw latch call writeLock outside latch.go/latch_olc.go/latch_race.go"
}

// spliceFrontier stands in for a parallel-ingest worker entry point: only
// tryTailTopUp is allowlisted for the tail shortcut, so a splice or
// worker helper grabbing a metadata-reached node with writeLatchLive is
// flagged — it must take a latched descent like any other writer.
func (t *Tree) spliceFrontier(chain []*node) bool {
	if !t.writeLatchLive(chain[0]) { // want "writeLatchLive acquires a possibly-unlinked node and is reserved for metadata-reached leaves"
		return false
	}
	t.writeUnlatch(chain[0])
	return true
}
