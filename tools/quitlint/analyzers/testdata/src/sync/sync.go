// Package sync is a hermetic stub of sync for quitlint fixtures; only the
// shapes the fixtures mention are provided.
package sync

type Mutex struct{ state int32 }

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}

type RWMutex struct{ state int32 }

func (m *RWMutex) Lock()    {}
func (m *RWMutex) Unlock()  {}
func (m *RWMutex) RLock()   {}
func (m *RWMutex) RUnlock() {}

// Locker matches the shape sync.Cond wants.
type Locker interface {
	Lock()
	Unlock()
}

type Cond struct{ L Locker }

func NewCond(l Locker) *Cond { return &Cond{L: l} }

func (c *Cond) Wait()      {}
func (c *Cond) Signal()    {}
func (c *Cond) Broadcast() {}
