// Package atomic is a hermetic stub of sync/atomic for quitlint fixtures:
// the analyzers key on the *names* of these types (package path
// "sync/atomic"), not their behavior, so empty method bodies suffice and
// the golden tests need no export data or GOROOT access.
package atomic

type Int32 struct{ v int32 }

func (x *Int32) Load() int32                        { return x.v }
func (x *Int32) Store(v int32)                      { x.v = v }
func (x *Int32) Add(d int32) int32                  { x.v += d; return x.v }
func (x *Int32) CompareAndSwap(old, new int32) bool { return true }

type Int64 struct{ v int64 }

func (x *Int64) Load() int64                        { return x.v }
func (x *Int64) Store(v int64)                      { x.v = v }
func (x *Int64) Add(d int64) int64                  { x.v += d; return x.v }
func (x *Int64) CompareAndSwap(old, new int64) bool { return true }

type Uint64 struct{ v uint64 }

func (x *Uint64) Load() uint64                        { return x.v }
func (x *Uint64) Store(v uint64)                      { x.v = v }
func (x *Uint64) Add(d uint64) uint64                 { x.v += d; return x.v }
func (x *Uint64) CompareAndSwap(old, new uint64) bool { return true }

type Bool struct{ v bool }

func (x *Bool) Load() bool   { return x.v }
func (x *Bool) Store(v bool) { x.v = v }

type Pointer[T any] struct{ v *T }

func (x *Pointer[T]) Load() *T                        { return x.v }
func (x *Pointer[T]) Store(v *T)                      { x.v = v }
func (x *Pointer[T]) CompareAndSwap(old, new *T) bool { return true }
