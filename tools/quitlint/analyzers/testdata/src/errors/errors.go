// Package errors is a hermetic stub of errors for quitlint fixtures (see
// the fmt stub for why).
package errors

type stubError struct{ s string }

func (e *stubError) Error() string { return e.s }

func New(text string) error { return &stubError{s: text} }

func Is(err, target error) bool { return err == target }
