package fixture

// splitClean is the corrected split shape: every path either unlatches the
// fresh sibling or hands it over (publishing transfers release duty).
func (t *Tree) splitClean(full *node, k int) *node {
	sib := t.newNode()
	t.writeLatch(sib)
	if len(full.keys) == 0 {
		t.writeUnlatch(sib)
		return nil
	}
	t.publish(sib)
	return sib
}

// metaDefer releases the fp-meta mutex by defer: every exit is covered.
func (t *Tree) metaDefer(k int) bool {
	t.lockMeta()
	defer t.unlockMeta()
	return k > 0
}

// metaBothPaths releases inline on each path.
func (t *Tree) metaBothPaths(k int) bool {
	t.lockMeta()
	if k == 0 {
		t.unlockMeta()
		return false
	}
	t.unlockMeta()
	return true
}

// gateBound binds the gated acquisition to a bool; the failure edge is
// refined away, the success path unlatches.
func (t *Tree) gateBound(k int) bool {
	leaf := t.root()
	ok := t.tryWriteLatch(leaf)
	if !ok {
		return false
	}
	leaf.keys = append(leaf.keys, k)
	t.writeUnlatch(leaf)
	return true
}

// readSection closes the optimistic section on every path: abort on bail,
// validate on exit (a failed validation is itself a closed section).
func (t *Tree) readSection(k int) int {
	c, v := t.descendToLeaf(k)
	if len(c.keys) == 0 {
		t.readAbort(c)
		return 0
	}
	if !t.readUnlatch(c, v) {
		return -1
	}
	return 1
}

// upgradePath converts a read section into a write latch; the failed
// upgrade closes the section, the successful one is unlatched.
func (t *Tree) upgradePath(k int) bool {
	c, v := t.readRoot()
	if !t.upgradeLatch(c, v) {
		return false
	}
	c.keys = append(c.keys, k)
	t.writeUnlatch(c)
	return true
}

// obsoletePath releases a latched node by marking it obsolete (the delete
// path's unlatch).
func (t *Tree) obsoletePath() {
	n := t.writeLockedRoot()
	if len(n.keys) > 0 {
		t.writeUnlatch(n)
		return
	}
	t.markObsolete(n)
}

// loopClean pairs the latch inside every iteration.
func (t *Tree) loopClean(ns []*node) int {
	total := 0
	for i := 0; i < len(ns); i++ {
		cur := ns[i]
		if !t.tryWriteLatch(cur) {
			continue
		}
		total += len(cur.keys)
		t.writeUnlatch(cur)
	}
	return total
}

// handoverToClosure captures the latched node in a function literal: the
// closure owns the release (the unlatchSibs pattern).
func (t *Tree) handoverToClosure() func() {
	n := t.writeLockedRoot()
	return func() { t.writeUnlatch(n) }
}

// callerContract mutates a node the caller latched: parameters are exempt,
// arriving and leaving latched by contract (the rebalance helpers).
func (t *Tree) callerContract(n *node, k int) {
	n.keys = append(n.keys, k)
}
