package fixture

import "sync"

type node struct {
	lt   latch
	keys []int
}

type Tree struct {
	meta   sync.Mutex
	fpLeaf *node
	sibs   []*node
}

func (t *Tree) lockMeta()   { t.meta.Lock() }
func (t *Tree) unlockMeta() { t.meta.Unlock() }

func (t *Tree) writeLatch(n *node)          { n.lt.writeLock() }
func (t *Tree) writeLatchLive(n *node) bool { return n.lt.writeLockOrRestart() }
func (t *Tree) tryWriteLatch(n *node) bool  { return n.lt.tryWriteLock() }
func (t *Tree) writeUnlatch(n *node)        { n.lt.writeUnlock() }

func (t *Tree) readLatch(n *node) (uint64, bool)    { return n.lt.readLockOrRestart() }
func (t *Tree) readCheck(n *node, v uint64) bool    { return n.lt.checkOrRestart(v) }
func (t *Tree) readUnlatch(n *node, v uint64) bool  { return n.lt.checkOrRestart(v) }
func (t *Tree) readAbort(n *node)                   {}
func (t *Tree) upgradeLatch(n *node, v uint64) bool { return n.lt.upgradeOrRestart(v) }
func (t *Tree) markObsolete(n *node)                { n.lt.writeUnlockObsolete() }

func (t *Tree) writeLockedRoot() *node {
	t.writeLatch(t.fpLeaf)
	return t.fpLeaf
}

func (t *Tree) readRoot() (*node, uint64) {
	v, _ := t.readLatch(t.fpLeaf)
	return t.fpLeaf, v
}

func (t *Tree) descendToLeaf(k int) (*node, uint64) { return t.readRoot() }

func (t *Tree) newNode() *node     { return &node{} }
func (t *Tree) root() *node        { return t.fpLeaf }
func (t *Tree) publish(n *node)    { t.sibs = append(t.sibs, n) }
func (t *Tree) afterSplit(n *node) {}
