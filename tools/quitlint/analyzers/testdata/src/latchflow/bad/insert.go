package fixture

// splitLeak reproduces the split-off-node leak shape from the PR 1 review:
// a freshly split-off sibling is write-latched, but the bail path returns
// before the sibling is either unlatched or published into the tree.
func (t *Tree) splitLeak(full *node, k int) *node {
	sib := t.newNode()
	t.writeLatch(sib)
	if len(full.keys) == 0 {
		// Bail: restartable state, but sib is still latched.
		return nil // want "write latch on sib acquired at insert.go:[0-9]+ may still be held at this return"
	}
	t.publish(sib)
	t.afterSplit(sib)
	return sib
}

// metaLeak takes the fp-meta mutex but only releases it on the happy path.
func (t *Tree) metaLeak(k int) bool {
	t.lockMeta()
	if k == 0 {
		return false // want "fp-meta mutex locked at insert.go:[0-9]+ may still be held at this return"
	}
	t.unlockMeta()
	return true
}

// tryLeak releases the failure edge correctly but forgets the latch on one
// of the success-path returns.
func (t *Tree) tryLeak(k int) bool {
	leaf := t.root()
	if !t.tryWriteLatch(leaf) {
		return false
	}
	if k > 0 {
		return true // want "write latch on leaf acquired at insert.go:[0-9]+ may still be held at this return"
	}
	t.writeUnlatch(leaf)
	return true
}

// gateLeak binds the gated acquisition to a bool but tests it only for the
// early bail; the fall-through to the end of the function leaks.
func (t *Tree) gateLeak(k int) int {
	leaf := t.root()
	ok := t.writeLatchLive(leaf)
	if !ok {
		return -1
	}
	leaf.keys = append(leaf.keys, k)
	return len(leaf.keys) // want "write latch on leaf acquired at insert.go:[0-9]+ may still be held at this return"
}

// readLeak opens an optimistic read section and forgets to close it on the
// empty-leaf path — a restart loop would spin on a stale version.
func (t *Tree) readLeak(k int) int {
	c, v := t.descendToLeaf(k)
	if len(c.keys) == 0 {
		return 0 // want "read section on c acquired at insert.go:[0-9]+ may still be held at this return"
	}
	if !t.readUnlatch(c, v) {
		return -1
	}
	return len(c.keys)
}

// loopLeak latches inside a loop and breaks out while still holding the
// last iteration's latch.
func (t *Tree) loopLeak(ns []*node) int {
	total := 0
	for i := 0; i < len(ns); i++ {
		cur := ns[i]
		if !t.tryWriteLatch(cur) {
			continue
		}
		if len(cur.keys) > 8 {
			break
		}
		total += len(cur.keys)
		t.writeUnlatch(cur)
	}
	return total // want "write latch on cur acquired at insert.go:[0-9]+ may still be held at this return"
}
