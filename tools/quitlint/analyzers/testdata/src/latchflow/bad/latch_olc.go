package fixture

import "sync/atomic"

type latch struct{ w atomic.Uint64 }

func (l *latch) readLockOrRestart() (uint64, bool) { return l.w.Load(), true }
func (l *latch) checkOrRestart(v uint64) bool      { return l.w.Load() == v }
func (l *latch) writeLock()                        { l.w.Add(1) }
func (l *latch) writeLockOrRestart() bool          { l.w.Add(1); return true }
func (l *latch) tryWriteLock() bool                { return l.w.CompareAndSwap(0, 1) }
func (l *latch) upgradeOrRestart(v uint64) bool    { return l.w.CompareAndSwap(v, v+1) }
func (l *latch) writeUnlock()                      { l.w.Add(1) }
func (l *latch) writeUnlockObsolete()              { l.w.Add(3) }
