package fixture

// Append buffers a record without ever looking at the sticky error: a
// poisoned log keeps accepting writes and acking them.
func (l *Log) Append(k, v int) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	l.buf.Write(encode(k, v)) // want "WAL I/O on a path that has not re-checked the sticky error"
	return l.seq, nil         // want "nil-error return without re-checking the sticky error"
}

// Sync checks the sticky error, but the check goes stale across the
// unlock: another goroutine may poison the log before the fsync runs.
func (l *Log) Sync() error {
	l.mu.Lock()
	if l.err != nil {
		l.mu.Unlock()
		return l.err
	}
	l.mu.Unlock()
	return l.f.Sync() // want "WAL I/O on a path that has not re-checked the sticky error"
}

// Commit waits for a leader but never re-checks the error after waking:
// a follower of a failed leader acks a commit that never happened.
func (l *Log) Commit(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.syncedSeq < seq {
		l.commitC.Wait()
	}
	return nil // want "nil-error return without re-checking the sticky error"
}

// syncAfterWait checks once up front, then sleeps on the cond: every
// wakeup invalidates the check (the group-commit leader may have poisoned
// the log while the mutex was released), so the fsync after the loop runs
// unchecked.
func (l *Log) syncAfterWait(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	for l.syncedSeq < seq {
		l.commitC.Wait()
	}
	return l.f.Sync() // want "WAL I/O on a path that has not re-checked the sticky error"
}

// flushInto hands the live buffer to an encoder without a check: the
// aliasing form of unchecked I/O.
func (l *Log) flushInto(k, v int) error {
	appendRecord(l.buf, k, v) // want "WAL I/O on a path that has not re-checked the sticky error"
	return l.err
}

// retryForever spins on the file with no bound at all: a dead disk would
// be retried until the end of time.
func (l *Log) retryForever(data []byte, pol policy) error {
	for {
		_, err := l.f.Write(data) // want "WAL I/O retried in a loop that is not a sanctioned bounded retry loop"
		if err == nil {
			return l.err
		}
		pol.Sleep(1)
	}
}

// retryBlind bounds and backs off but never classifies: a non-transient
// failure (disk full) would be retried as if time could fix it.
func (l *Log) retryBlind(pol policy) error {
	var err error
	for attempt := 0; attempt <= pol.max; attempt++ {
		if attempt > 0 {
			pol.Sleep(attempt)
		}
		if err = l.f.Sync(); err == nil { // want "WAL I/O retried in a loop that is not a sanctioned bounded retry loop"
			return err
		}
	}
	return err
}

// retryRewound resets the counter on partial progress: the "bound" no
// longer bounds the number of attempts.
func (l *Log) retryRewound(data []byte, pol policy) error {
	var err error
	for attempt := 0; attempt <= pol.max; attempt++ {
		if attempt > 0 {
			pol.Sleep(attempt)
		}
		var m int
		m, err = l.f.Write(data) // want "WAL I/O retried in a loop that is not a sanctioned bounded retry loop"
		if err == nil {
			return err
		}
		if !pol.Transient(err) {
			break
		}
		if m > 0 {
			attempt = 0
		}
	}
	return err
}
