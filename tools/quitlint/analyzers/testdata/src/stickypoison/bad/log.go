package fixture

// Append buffers a record without ever looking at the sticky error: a
// poisoned log keeps accepting writes and acking them.
func (l *Log) Append(k, v int) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	l.buf.Write(encode(k, v)) // want "WAL I/O on a path that has not re-checked the sticky error"
	return l.seq, nil         // want "nil-error return without re-checking the sticky error"
}

// Sync checks the sticky error, but the check goes stale across the
// unlock: another goroutine may poison the log before the fsync runs.
func (l *Log) Sync() error {
	l.mu.Lock()
	if l.err != nil {
		l.mu.Unlock()
		return l.err
	}
	l.mu.Unlock()
	return l.f.Sync() // want "WAL I/O on a path that has not re-checked the sticky error"
}

// Commit waits for a leader but never re-checks the error after waking:
// a follower of a failed leader acks a commit that never happened.
func (l *Log) Commit(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.syncedSeq < seq {
		l.commitC.Wait()
	}
	return nil // want "nil-error return without re-checking the sticky error"
}

// flushInto hands the live buffer to an encoder without a check: the
// aliasing form of unchecked I/O.
func (l *Log) flushInto(k, v int) error {
	appendRecord(l.buf, k, v) // want "WAL I/O on a path that has not re-checked the sticky error"
	return l.err
}
