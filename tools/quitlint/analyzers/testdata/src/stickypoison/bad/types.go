package fixture

import "sync"

// file stands in for the log's *os.File.
type file struct{}

func (f *file) Write(p []byte) (int, error) { return len(p), nil }
func (f *file) Sync() error                 { return nil }
func (f *file) Close() error                { return nil }

// buffer stands in for the log's batch buffer.
type buffer struct{ b []byte }

func (b *buffer) Write(p []byte) (int, error) { b.b = append(b.b, p...); return len(p), nil }
func (b *buffer) Len() int                    { return len(b.b) }
func (b *buffer) Bytes() []byte               { return b.b }
func (b *buffer) Reset()                      { b.b = b.b[:0] }

// Log carries the sticky error; stickypoison checks its methods.
type Log struct {
	mu        sync.Mutex
	commitC   *sync.Cond
	f         *file
	buf       *buffer
	spare     *buffer
	err       error
	seq       uint64
	syncedSeq uint64
}

func (l *Log) fail(err error) {
	if l.err == nil {
		l.err = err
	}
}

// policy stands in for the retry policy: an injectable backoff sleeper,
// a transience classifier, and a retry bound.
type policy struct{ max int }

func (policy) Sleep(d int)              {}
func (policy) Transient(err error) bool { return true }

func encode(k, v int) []byte { return []byte{byte(k), byte(v)} }

func appendRecord(b *buffer, k, v int) {
	b.Write(encode(k, v))
}
