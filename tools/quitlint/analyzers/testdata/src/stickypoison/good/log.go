package fixture

// Append gates on the sticky error before touching the buffer: a poisoned
// log refuses writes.
func (l *Log) Append(k, v int) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	l.seq++
	l.buf.Write(encode(k, v))
	return l.seq, nil
}

// Commit carries the sanctioned syncedSeq-before-error carve-out: a record
// that reached the disk is committed even if the log failed afterwards.
// Every other path re-checks after the cond wait.
func (l *Log) Commit(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.syncedSeq >= seq {
			//quitlint:allow stickypoison syncedSeq-before-error carve-out: a durable record is committed even if the log failed later
			return nil
		}
		if l.err != nil {
			return l.err
		}
		l.commitC.Wait()
	}
}

// Flush delegates the sticky check to Err — calling another Log method
// counts as checking, because the callee gates itself.
func (l *Log) Flush() error {
	if err := l.Err(); err != nil {
		return err
	}
	return l.f.Sync()
}

// Err surfaces the sticky error.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// writeAll is the sanctioned bounded retry loop: a counter defined from
// a literal, bounded by an expression the counter does not appear in,
// incremented only by the post statement, with a Transient classifier
// and a Sleep backoff in the body. Inside it, file I/O and the success
// return need no sticky re-check — the commit leader owns the file and
// the loop's own outcome decides the poisoning.
func (l *Log) writeAll(data []byte, pol policy) error {
	written := 0
	var err error
	for attempt := 0; attempt <= pol.max; attempt++ {
		if attempt > 0 {
			pol.Sleep(attempt)
		}
		m, werr := l.f.Write(data[written:])
		written += m
		if werr == nil && written >= len(data) {
			return nil
		}
		if werr != nil {
			err = werr
			if !pol.Transient(werr) {
				break
			}
		}
	}
	return err
}

// appendIf reads the sticky error in the branch condition itself: a
// condition read is a check like any other, so the I/O it guards is
// sanctioned on the branch it dominates.
func (l *Log) appendIf(k, v int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err == nil {
		l.seq++
		l.buf.Write(encode(k, v))
	}
	return l.err
}

// Close may always release the descriptor: f.Close is exempt I/O.
func (l *Log) Close() error {
	l.mu.Lock()
	err := l.err
	l.mu.Unlock()
	l.f.Close()
	return err
}
