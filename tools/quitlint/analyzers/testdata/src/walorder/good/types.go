package fixture

import "sync"

// Tree stands in for the in-memory core tree.
type Tree struct{ n int }

func (t *Tree) Put(k, v int) (int, bool)    { t.n++; return 0, false }
func (t *Tree) PutBatch(ks, vs []int) []int { t.n += len(ks); return nil }
func (t *Tree) Len() int                    { return t.n }

// Log stands in for the write-ahead log.
type Log struct {
	mu  sync.Mutex
	seq uint64
}

func (l *Log) Append(op byte, k, v int) (uint64, error)      { l.seq++; return l.seq, nil }
func (l *Log) AppendBatchStart(ks, vs []int) (uint64, error) { l.seq++; return l.seq, nil }
func (l *Log) Commit(seq uint64) error                       { return nil }
func (l *Log) Sync() error                                   { return nil }
func (l *Log) Close() error                                  { return nil }

// DurableTree pairs the two under one mutex; walorder checks its methods.
type DurableTree struct {
	mu  sync.Mutex
	t   *Tree
	log *Log
}
