package fixture

// Coalescer stands in for the serving layer's group-commit batcher
// (DESIGN.md §12): writers block on per-write error channels, and
// walorder checks that no path acknowledges one (a send on a chan error)
// before the group's committing DurableTree call has run.
type Coalescer struct {
	tree  *DurableTree
	keys  []int
	vals  []int
	dones []chan error
}

// flush is the correct ack ordering: swap the pending group out, commit
// it as one durable batch, and only then acknowledge every writer with
// the commit's own outcome.
func (c *Coalescer) flush() {
	keys, vals, dones := c.keys, c.vals, c.dones
	c.keys, c.vals, c.dones = nil, nil, nil
	if len(keys) == 0 {
		return
	}
	_, err := c.tree.PutBatch(keys, vals)
	for _, d := range dones {
		d <- err
	}
}

// enqueue only signals the flusher: a send on a non-error channel is not
// a writer acknowledgement, so no commit needs to precede the kick.
func (c *Coalescer) enqueue(k, v int, done chan error, kick chan struct{}) {
	c.keys = append(c.keys, k)
	c.vals = append(c.vals, v)
	c.dones = append(c.dones, done)
	select {
	case kick <- struct{}{}:
	default:
	}
}
