package fixture

import "errors"

var errInval = errors.New("length mismatch")

// Put is the correct pipelined write shape: frame and apply under d.mu,
// commit outside it, ack only after the commit succeeded.
func (d *DurableTree) Put(k, v int) (int, error) {
	d.mu.Lock()
	seq, err := d.log.Append(1, k, v)
	if err != nil {
		d.mu.Unlock()
		return 0, err
	}
	prev, _ := d.t.Put(k, v)
	d.mu.Unlock()
	if err := d.log.Commit(seq); err != nil {
		return 0, err
	}
	return prev, nil
}

// PutBatch shows the sanctioned empty-batch ack: nothing was framed, so
// the nil ack is a no-op and carries an explicit waiver.
func (d *DurableTree) PutBatch(ks, vs []int) ([]int, error) {
	d.mu.Lock()
	if len(ks) != len(vs) {
		d.mu.Unlock()
		return nil, errInval
	}
	if len(ks) == 0 {
		d.mu.Unlock()
		//quitlint:allow walorder empty batch acks without committing; nothing was framed
		return nil, nil
	}
	seq, err := d.log.AppendBatchStart(ks, vs)
	if err != nil {
		d.mu.Unlock()
		return nil, err
	}
	res := d.t.PutBatch(ks, vs)
	d.mu.Unlock()
	if err := d.log.Commit(seq); err != nil {
		return nil, err
	}
	return res, nil
}

// SyncAll commits everything outstanding; the ack rides on Sync's error.
func (d *DurableTree) SyncAll() error {
	return d.log.Sync()
}

// CloseChecked tears down with every log error propagated.
func (d *DurableTree) CloseChecked() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.log.Sync(); err != nil {
		return err
	}
	return d.log.Close()
}
