package fixture

// Coalescer mirrors the serving layer's group-commit batcher; the methods
// below acknowledge writers before the group's commit.
type Coalescer struct {
	tree  *DurableTree
	keys  []int
	vals  []int
	dones []chan error
}

// Sync delegates to the log; present so the coalescer cases below have a
// committing DurableTree call to order against.
func (d *DurableTree) Sync() error { return d.log.Sync() }

// flushAckFirst acknowledges every writer in the group before anything
// was committed: a crash after the acks loses acknowledged writes.
func (c *Coalescer) flushAckFirst() {
	keys, vals, dones := c.keys, c.vals, c.dones
	c.keys, c.vals, c.dones = nil, nil, nil
	for _, d := range dones {
		d <- nil // want "writer acknowledged .error-channel send. on a path where the group's DurableTree commit has not run"
	}
	_, _ = keys, vals
}

// ackBeforeCommit acks first and commits after — the commit's error can
// no longer reach the writer it belongs to.
func (c *Coalescer) ackBeforeCommit(done chan error) error {
	done <- nil // want "writer acknowledged .error-channel send. on a path where the group's DurableTree commit has not run"
	return c.tree.Sync()
}

// flushSkipsCommit commits on only one branch; the union meet reports the
// ack because the other path reaches it with nothing committed.
func (c *Coalescer) flushSkipsCommit(retry bool, done chan error) {
	var err error
	if !retry {
		err = c.tree.Sync()
	}
	done <- err // want "writer acknowledged .error-channel send. on a path where the group's DurableTree commit has not run"
}
