package fixture

// PutUnframed applies the mutation to the tree before the WAL has framed
// it: a crash between apply and frame loses the write from replay.
func (d *DurableTree) PutUnframed(k, v int) error {
	d.mu.Lock()
	d.t.Put(k, v) // want "tree apply via Put before the mutation is framed to the WAL"
	seq, err := d.log.Append(1, k, v)
	if err != nil {
		d.mu.Unlock()
		return err
	}
	d.mu.Unlock()
	return d.log.Commit(seq)
}

// PutOutsideLock releases d.mu before applying: a concurrent writer can
// interleave, so apply order no longer matches log order.
func (d *DurableTree) PutOutsideLock(k, v int) error {
	d.mu.Lock()
	seq, err := d.log.Append(1, k, v)
	if err != nil {
		d.mu.Unlock()
		return err
	}
	d.mu.Unlock()
	d.t.Put(k, v) // want "tree apply via Put outside the d.mu critical section"
	return d.log.Commit(seq)
}

// FrameOutsideLock frames before taking the lock that serializes framing.
func (d *DurableTree) FrameOutsideLock(k, v int) error {
	seq, err := d.log.Append(1, k, v) // want "WAL framing via Append outside the d.mu critical section"
	if err != nil {
		return err
	}
	d.mu.Lock()
	d.t.Put(k, v)
	d.mu.Unlock()
	return d.log.Commit(seq)
}

// PutNoCommit acknowledges the write without ever committing the framed
// record: the caller believes it is durable, replay may not have it.
func (d *DurableTree) PutNoCommit(k, v int) error {
	d.mu.Lock()
	_, err := d.log.AppendBatchStart([]int{k}, []int{v})
	if err != nil {
		d.mu.Unlock()
		return err
	}
	d.t.Put(k, v)
	d.mu.Unlock()
	return nil // want "nil-error return acknowledges a write on a path that never reached Commit/Sync"
}

// PutDropsCommit discards the commit error: a failed fsync would be
// silently swallowed and the acked prefix would lie.
func (d *DurableTree) PutDropsCommit(k, v int) {
	d.mu.Lock()
	seq, _ := d.log.Append(1, k, v)
	d.t.Put(k, v)
	d.mu.Unlock()
	d.log.Commit(seq) // want "WAL Commit result discarded"
}
