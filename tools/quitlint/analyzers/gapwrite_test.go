package analyzers_test

import (
	"testing"

	"github.com/quittree/quit/tools/quitlint/analyzers"
	"github.com/quittree/quit/tools/quitlint/internal/linttest"
)

func TestGapWriteFires(t *testing.T) {
	linttest.Run(t, "testdata/src", "gapwrite/bad", analyzers.GapWrite)
}

func TestGapWriteSilent(t *testing.T) {
	linttest.ExpectClean(t, "testdata/src", "gapwrite/good", analyzers.GapWrite)
}
