package analyzers_test

import (
	"testing"

	"github.com/quittree/quit/tools/quitlint/analyzers"
	"github.com/quittree/quit/tools/quitlint/internal/linttest"
)

func TestAtomicFieldFires(t *testing.T) {
	linttest.Run(t, "testdata/src", "atomicfield/bad", analyzers.AtomicField)
}

func TestAtomicFieldSilent(t *testing.T) {
	linttest.ExpectClean(t, "testdata/src", "atomicfield/good", analyzers.AtomicField)
}
