package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/quittree/quit/tools/quitlint/internal/lintkit"
)

// StickyPoison enforces the WAL's sticky-error discipline (DESIGN.md §8):
// once a Log method has failed, the log is poisoned — l.err is set and
// every later operation must observe it before touching the file again or
// acknowledging anything. Concretely, inside methods of the Log type:
//
//  1. No file or buffer I/O (l.f.Write / l.f.Sync, writes into l.buf or
//     l.spare, or passing those buffers to an encoder) may run on a path
//     where the sticky error has not been re-checked since it could last
//     have changed.
//  2. No path may `return nil` in the error position without a sticky
//     check: a poisoned log must refuse acknowledgements.
//
// "Checked" means the path read l.err (statement or condition), called
// l.fail (which publishes the poison), or called another Log method —
// delegated checking: the callee performs its own gate. The check goes
// stale — the bit is re-set — after l.mu.Unlock() or a sync.Cond Wait(),
// because another goroutine may poison the log while the mutex is
// released; group-commit followers looping on l.commitC must re-check
// after every wakeup.
//
// The PR 5 syncedSeq-before-error exception (a follower whose sequence is
// already durable returns nil even if a later batch poisoned the log) is
// a sanctioned carve-out: those returns carry "quitlint:allow" waivers,
// turning tribal knowledge into machine-checked annotations. l.f.Close is
// exempt — closing a poisoned log's file is how teardown works.
//
// Bounded retry loops (PR 7) are recognized structurally, not waived by
// annotation: inside a loop of the shape
//
//	for attempt := 0; attempt <= bound; attempt++ { ... }
//
// whose counter starts at an integer literal, is never reassigned in the
// body, whose bound does not mention the counter, and whose body calls
// both a Transient/transient classifier and a Sleep/sleep backoff, WAL
// I/O and success returns are sanctioned: the commit leader owns the
// file exclusively there, and the loop's own outcome — not the sticky
// error, which the leader itself publishes afterwards — decides whether
// the log poisons. I/O retried in any *other* loop is reported with a
// dedicated diagnostic: an unbounded or unclassified retry can spin on a
// dead disk forever.
var StickyPoison = &lintkit.Analyzer{
	Name: "stickypoison",
	Doc:  "check that Log methods re-check the sticky error before WAL I/O or nil-error acknowledgements (DESIGN.md §8)",
	Run:  runStickyPoison,
}

const spUnchecked lintkit.Fact = 1

// logIOFields are the Log fields whose use constitutes WAL I/O.
var logIOFields = map[string]bool{"f": true, "buf": true, "spare": true}

// logIOMethods are the I/O-performing methods on those fields; Close is
// deliberately absent (teardown must work on a poisoned log).
var logIOMethods = map[string]bool{"Write": true, "WriteString": true, "WriteByte": true, "Sync": true}

func runStickyPoison(pass *lintkit.Pass) error {
	logType := stickyLogType(pass.Pkg)
	if logType == nil {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			recv := recvBaseNamed(obj)
			if recv == nil || recv.Obj() != logType.Obj() {
				continue
			}
			checkStickyPoison(pass, fd, obj, logType)
		}
	}
	return nil
}

// stickyLogType finds the package-scope Log type carrying a sticky
// `err error` field, or nil if this package has no such type.
func stickyLogType(pkg *types.Package) *types.Named {
	named := scopeNamed(pkg, "Log")
	if named == nil {
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		fld := st.Field(i)
		if fld.Name() == "err" && types.Identical(fld.Type(), types.Universe.Lookup("error").Type()) {
			return named
		}
	}
	return nil
}

type spChecker struct {
	pass       *lintkit.Pass
	logType    *types.Named
	recv       types.Object // the receiver variable of the method under analysis
	returnsErr bool

	// retryRanges are the body spans of sanctioned bounded retry loops;
	// loopRanges are the spans of every for/range statement. Both are
	// collected lexically before the dataflow pass.
	retryRanges []spRange
	loopRanges  []spRange
}

// spRange is a half-open source span.
type spRange struct{ from, to token.Pos }

func (r spRange) contains(p token.Pos) bool { return r.from <= p && p < r.to }

func inRanges(rs []spRange, p token.Pos) bool {
	for _, r := range rs {
		if r.contains(p) {
			return true
		}
	}
	return false
}

func checkStickyPoison(pass *lintkit.Pass, fd *ast.FuncDecl, obj *types.Func, logType *types.Named) {
	names := fd.Recv.List[0].Names
	if len(names) == 0 || names[0].Name == "_" {
		return
	}
	c := &spChecker{pass: pass, logType: logType, recv: pass.Info.Defs[names[0]]}
	if c.recv == nil {
		return
	}
	sig := obj.Type().(*types.Signature)
	if n := sig.Results().Len(); n > 0 {
		last := sig.Results().At(n - 1).Type()
		c.returnsErr = types.Identical(last, types.Universe.Lookup("error").Type())
	}

	// Collect loop spans: every loop, and the sanctioned retry loops
	// whose bodies may perform I/O without a sticky re-check.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch loop := n.(type) {
		case *ast.ForStmt:
			c.loopRanges = append(c.loopRanges, spRange{loop.Pos(), loop.End()})
			if c.sanctionedRetryLoop(loop) {
				c.retryRanges = append(c.retryRanges, spRange{loop.Body.Pos(), loop.Body.End()})
			}
		case *ast.RangeStmt:
			c.loopRanges = append(c.loopRanges, spRange{loop.Pos(), loop.End()})
		}
		return true
	})

	flow := &lintkit.Flow{
		CFG:      lintkit.BuildCFG(fd.Body),
		Entry:    spUnchecked,
		Transfer: c.transfer,
	}
	flow.Run(c.visit, nil)
}

// sanctionedRetryLoop reports whether loop is a bounded retry loop the
// sticky-error discipline sanctions (DESIGN.md §8): a counter defined
// from an integer literal, compared < or <= against a bound that does
// not move with it, incremented only by the loop post statement, with a
// body that consults a Transient/transient classifier and backs off via
// a Sleep/sleep call. Everything is checked structurally, so the loop
// cannot be "allowlisted away" — change any of it and the sanction is
// withdrawn.
func (c *spChecker) sanctionedRetryLoop(loop *ast.ForStmt) bool {
	init, ok := loop.Init.(*ast.AssignStmt)
	if !ok || init.Tok != token.DEFINE || len(init.Lhs) != 1 || len(init.Rhs) != 1 {
		return false
	}
	id, ok := init.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	if lit, ok := ast.Unparen(init.Rhs[0]).(*ast.BasicLit); !ok || lit.Kind != token.INT {
		return false
	}
	ctr := c.pass.Info.ObjectOf(id)
	if ctr == nil {
		return false
	}
	cond, ok := loop.Cond.(*ast.BinaryExpr)
	if !ok || (cond.Op != token.LSS && cond.Op != token.LEQ) {
		return false
	}
	if cid, ok := ast.Unparen(cond.X).(*ast.Ident); !ok || c.pass.Info.ObjectOf(cid) != ctr {
		return false
	}
	if mentionsObj(c.pass.Info, cond.Y, ctr) {
		return false // a bound moving with the counter is not a bound
	}
	post, ok := loop.Post.(*ast.IncDecStmt)
	if !ok || post.Tok != token.INC {
		return false
	}
	if pid, ok := ast.Unparen(post.X).(*ast.Ident); !ok || c.pass.Info.ObjectOf(pid) != ctr {
		return false
	}
	var hasSleep, hasTransient, mutatesCtr bool
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch m := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(m.Fun).(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Sleep", "sleep":
					hasSleep = true
				case "Transient", "transient":
					hasTransient = true
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range m.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && c.pass.Info.ObjectOf(id) == ctr {
					mutatesCtr = true
				}
			}
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(m.X).(*ast.Ident); ok && c.pass.Info.ObjectOf(id) == ctr {
				mutatesCtr = true
			}
		}
		return true
	})
	return hasSleep && hasTransient && !mutatesCtr
}

// mentionsObj reports whether expression e references obj.
func mentionsObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return true
	})
	return found
}

// recvField returns the field name if e is a selector recv.<field>.
func (c *spChecker) recvField(e ast.Expr) string {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok || c.pass.Info.ObjectOf(id) != c.recv {
		return ""
	}
	return sel.Sel.Name
}

// spEvent classifies the effect of one expression node on the fact.
type spEvent uint8

const (
	spNone  spEvent = iota
	spCheck         // sticky error observed (or delegated)
	spStale         // check invalidated: mutex released / cond wait
	spIO            // file or buffer I/O
)

func (c *spChecker) classifyExpr(n ast.Node) spEvent {
	switch e := n.(type) {
	case *ast.SelectorExpr:
		if c.recvField(e) == "err" {
			return spCheck
		}
	case *ast.CallExpr:
		// Method on the same Log receiver: delegated check (the callee
		// gates on l.err itself, or is l.fail publishing the poison).
		if callee := calleeFunc(c.pass.Info, e); callee != nil {
			if pkg := callee.Pkg(); pkg != nil && pkg.Path() == "sync" {
				switch callee.Name() {
				case "Unlock", "Wait":
					return spStale
				}
				return spNone
			}
			if recv := recvBaseNamed(callee); recv != nil && recv.Obj() == c.logType.Obj() {
				if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
					if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && c.pass.Info.ObjectOf(id) == c.recv {
						return spCheck
					}
				}
			}
		}
		// I/O: l.f.Write(...) / l.buf.Write(...) / l.f.Sync() ...
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			if fld := c.recvField(sel.X); logIOFields[fld] && logIOMethods[sel.Sel.Name] {
				return spIO
			}
		}
		// I/O by aliasing: handing l.buf / l.spare to an encoder.
		for _, arg := range e.Args {
			if fld := c.recvField(arg); fld == "buf" || fld == "spare" {
				return spIO
			}
		}
	}
	return spNone
}

// forEachEvent walks one statement or condition in source order, feeding
// events to fn. Function literals are opaque values; deferred calls run
// at function exit, not in flow order.
func (c *spChecker) forEachEvent(n ast.Node, fn func(pos ast.Node, ev spEvent)) {
	if _, ok := n.(*ast.DeferStmt); ok {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if m == nil {
			return false
		}
		if ev := c.classifyExpr(m); ev != spNone {
			fn(m, ev)
			// A classified call's children were already accounted for
			// (the arg scan); still descend so nested calls are seen.
		}
		return true
	})
}

func (c *spChecker) transfer(n ast.Node, f lintkit.Fact) lintkit.Fact {
	c.forEachEvent(n, func(_ ast.Node, ev spEvent) {
		switch ev {
		case spCheck:
			f &^= spUnchecked
		case spStale:
			f |= spUnchecked
		}
	})
	return f
}

func (c *spChecker) visit(n ast.Node, f lintkit.Fact) {
	// Replay the statement's events in order so an I/O that follows a
	// check inside the same statement is not flagged; this also covers
	// I/O and checks inside return results (`return l.f.Sync()`).
	c.forEachEvent(n, func(pos ast.Node, ev spEvent) {
		switch ev {
		case spCheck:
			f &^= spUnchecked
		case spStale:
			f |= spUnchecked
		case spIO:
			if inRanges(c.retryRanges, pos.Pos()) {
				// Sanctioned bounded retry loop: the leader owns the
				// file and its own outcome sets the sticky error.
				break
			}
			if inRanges(c.loopRanges, pos.Pos()) {
				c.pass.Reportf(pos.Pos(), "WAL I/O retried in a loop that is not a sanctioned bounded retry loop; retries need a literal-bounded counter never reassigned in the body, a Transient classifier, and a Sleep backoff (DESIGN.md §8)")
				break
			}
			if f&spUnchecked != 0 {
				c.pass.Reportf(pos.Pos(), "WAL I/O on a path that has not re-checked the sticky error; a poisoned log must not touch the file again — check l.err first (DESIGN.md §8)")
			}
		}
	})
	if ret, ok := n.(*ast.ReturnStmt); ok {
		c.checkAck(ret, f)
	}
}

// checkAck flags nil acknowledgements; f already includes the effects of
// the return's own result expressions.
func (c *spChecker) checkAck(ret *ast.ReturnStmt, f lintkit.Fact) {
	if !c.returnsErr || len(ret.Results) == 0 {
		return
	}
	last := ast.Unparen(ret.Results[len(ret.Results)-1])
	id, ok := last.(*ast.Ident)
	if !ok || id.Name != "nil" {
		return
	}
	if inRanges(c.retryRanges, ret.Pos()) {
		// The success return of a sanctioned retry loop: the I/O's own
		// nil result, observed moments before, is the freshness proof.
		return
	}
	if f&spUnchecked != 0 {
		c.pass.Reportf(ret.Pos(), "nil-error return without re-checking the sticky error; a poisoned log must refuse acknowledgements (DESIGN.md §8)")
	}
}
