package analyzers

import (
	"go/ast"
	"go/types"

	"github.com/quittree/quit/tools/quitlint/internal/lintkit"
)

// LatchOrder machine-checks the lock-ordering rules of DESIGN.md §6 with a
// small intra-package call-graph walk:
//
//  1. Meta is innermost. Between lockMeta and unlockMeta (or to the end of
//     the function when the unlock is deferred) no blocking latch
//     acquisition may happen — not directly, and not through any callee
//     that transitively blocks on a node latch. Blocking acquisitions are
//     the latch methods readLockOrRestart / writeLock / writeLockOrRestart
//     and everything that reaches them (readLatch, readRoot, descendToLeaf,
//     writeLatch, writeLatchLive, writeLockedRoot, descendForWrite, ...).
//     tryWriteLatch (single non-blocking probe) is the one permitted
//     acquisition while meta is held.
//  2. No recursive meta. While meta is held, calling lockMeta — or any
//     function that transitively calls lockMeta — self-deadlocks a
//     sync.Mutex.
//  3. writeLockOrRestart is reserved for metadata-reached nodes. The
//     obsolete-failing blocking acquisition exists for exactly one shape of
//     caller: one that found the node through the fast-path metadata rather
//     than a latched descent — tryFastInsert for single keys, tryFastRun
//     for batched runs. Everywhere else writeLatch (under a latched
//     ancestor) is the correct primitive, and spraying writeLatchLive
//     around would paper over descent bugs.
//  4. Raw latch calls are confined. Methods on the latch type may only be
//     invoked from latch.go / latch_olc.go / latch_race.go; everything else
//     goes through the tree-level helpers, which carry the Synchronized
//     short-circuit and the restart accounting.
//
// The held-region analysis walks each function body in source order. It is
// an approximation (a lockMeta/unlockMeta pair split across branches is
// tracked linearly), which matches how latch.go is written: acquire and
// release are always paired within a straight-line region or deferred.
var LatchOrder = &lintkit.Analyzer{
	Name: "latchorder",
	Doc:  "check DESIGN.md §6 lock ordering: fp-meta innermost, no blocking node-latch acquisition under meta, writeLockOrRestart only on metadata-reached nodes, raw latch calls confined to latch*.go",
	Run:  runLatchOrder,
}

// latchBlockingMethods are the latch primitives that can wait for another
// goroutine (spin on the version word, or block on the race-build mutex).
var latchBlockingMethods = map[string]bool{
	"readLockOrRestart":  true,
	"writeLock":          true,
	"writeLockOrRestart": true,
}

// writeLatchLiveAllowed names the functions that may acquire a node latch
// through writeLatchLive / writeLockOrRestart (rule 3): the per-key and
// batched fast-path entry points, which reach the leaf through fp
// metadata rather than a latched descent, and the parallel-ingest tail
// top-up, which reaches the rightmost leaf through the atomic tail
// pointer the same way.
var writeLatchLiveAllowed = map[string]bool{
	"tryFastInsert": true,
	"tryFastRun":    true,
	"tryTailTopUp":  true,
}

func runLatchOrder(pass *lintkit.Pass) error {
	latch := latchType(pass.Pkg)
	if latch == nil {
		return nil
	}

	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
		}
	}

	// Transitive closures over the intra-package call graph.
	blocking := closure(pass, decls, func(callee *types.Func) bool {
		return isLatchMethod(callee, latch) && latchBlockingMethods[callee.Name()]
	})
	metaLockers := closure(pass, decls, func(callee *types.Func) bool {
		return callee.Name() == "lockMeta"
	})

	for obj, fd := range decls {
		checkFuncOrder(pass, latch, fd, obj, blocking, metaLockers)
	}
	return nil
}

// closure returns the set of declared functions that (transitively) call a
// function matching seed.
func closure(pass *lintkit.Pass, decls map[*types.Func]*ast.FuncDecl, seed func(*types.Func) bool) map[*types.Func]bool {
	// Direct call edges.
	calls := map[*types.Func][]*types.Func{}
	for obj, fd := range decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if callee := calleeFunc(pass.Info, call); callee != nil {
					calls[obj] = append(calls[obj], callee)
				}
			}
			return true
		})
	}
	in := map[*types.Func]bool{}
	for changed := true; changed; {
		changed = false
		for obj := range decls {
			if in[obj] {
				continue
			}
			for _, callee := range calls[obj] {
				if seed(callee) || in[callee] {
					in[obj] = true
					changed = true
					break
				}
			}
		}
	}
	return in
}

// checkFuncOrder applies rules 1-4 to one function body, walking statements
// in source order and tracking whether the fp-meta mutex is held.
func checkFuncOrder(pass *lintkit.Pass, latch *types.Named, fd *ast.FuncDecl, self *types.Func, blocking, metaLockers map[*types.Func]bool) {
	metaHeld := false
	lintkit.Inspect([]*ast.File{wrapBody(fd)}, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pass.Info, call)
		if callee == nil {
			return true
		}
		name := callee.Name()

		// Rule 4: raw latch calls outside the latch files.
		if isLatchMethod(callee, latch) && !latchFiles[lintkit.Filename(pass.Fset, call.Pos())] {
			pass.Reportf(call.Pos(), "raw latch call %s outside latch.go/latch_olc.go/latch_race.go; go through the tree-level latch helpers", name)
		}

		// Rule 3: writeLatchLive / writeLockOrRestart only from the
		// metadata-reached path (and the wrapper itself in latch.go).
		if (name == "writeLatchLive" || (name == "writeLockOrRestart" && isLatchMethod(callee, latch))) &&
			!writeLatchLiveAllowed[fd.Name.Name] &&
			!latchFiles[lintkit.Filename(pass.Fset, call.Pos())] {
			pass.Reportf(call.Pos(), "%s acquires a possibly-unlinked node and is reserved for metadata-reached leaves (tryFastInsert, tryFastRun, tryTailTopUp); latched descents must use writeLatch", name)
		}

		switch name {
		case "lockMeta":
			if metaHeld {
				pass.Reportf(call.Pos(), "lockMeta while the fp-meta mutex is already held: sync.Mutex self-deadlocks")
			}
			metaHeld = true
			return true
		case "unlockMeta":
			if !isDeferred(call, stack) {
				metaHeld = false
			}
			return true
		}

		if metaHeld {
			if callee.Name() == "tryWriteLatch" || callee.Name() == "tryWriteLock" {
				return true // the one sanctioned probe: cannot wait
			}
			if blocking[callee] || (isLatchMethod(callee, latch) && latchBlockingMethods[name]) {
				pass.Reportf(call.Pos(), "blocking latch acquisition via %s while holding the fp-meta mutex; meta is strictly innermost (DESIGN.md §6) — release meta first or use tryWriteLatch", name)
			}
			if metaLockers[callee] || name == "lockMeta" {
				pass.Reportf(call.Pos(), "call to %s while holding the fp-meta mutex can re-enter lockMeta and self-deadlock", name)
			}
		}
		return true
	})
}

// isDeferred reports whether call is the call of an enclosing DeferStmt.
func isDeferred(call *ast.CallExpr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	ds, ok := stack[len(stack)-1].(*ast.DeferStmt)
	return ok && ds.Call == call
}

// wrapBody lets lintkit.Inspect (which takes files) walk one function: the
// declaration is wrapped in a synthetic single-decl file.
func wrapBody(fd *ast.FuncDecl) *ast.File {
	return &ast.File{Name: ast.NewIdent("body"), Decls: []ast.Decl{fd}}
}
