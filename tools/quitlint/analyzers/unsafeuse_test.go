package analyzers_test

import (
	"testing"

	"github.com/quittree/quit/tools/quitlint/analyzers"
	"github.com/quittree/quit/tools/quitlint/internal/linttest"
)

func TestUnsafeUseFires(t *testing.T) {
	linttest.Run(t, "testdata/src", "unsafeuse/bad", analyzers.UnsafeUse)
}

// TestUnsafeUseSilent also covers the suppression machinery end to end:
// trailing allow, line-above allow, and the *_test.go exemption.
func TestUnsafeUseSilent(t *testing.T) {
	linttest.ExpectClean(t, "testdata/src", "unsafeuse/good", analyzers.UnsafeUse)
}
