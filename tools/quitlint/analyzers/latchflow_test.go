package analyzers_test

import (
	"testing"

	"github.com/quittree/quit/tools/quitlint/analyzers"
	"github.com/quittree/quit/tools/quitlint/internal/linttest"
)

func TestLatchFlowFires(t *testing.T) {
	linttest.Run(t, "testdata/src", "latchflow/bad", analyzers.LatchFlow)
}

func TestLatchFlowSilent(t *testing.T) {
	linttest.ExpectClean(t, "testdata/src", "latchflow/good", analyzers.LatchFlow)
}
