package analyzers_test

import (
	"testing"

	"github.com/quittree/quit/tools/quitlint/analyzers"
	"github.com/quittree/quit/tools/quitlint/internal/linttest"
)

func TestErrWrapFires(t *testing.T) {
	linttest.Run(t, "testdata/src", "errwrap/bad", analyzers.ErrWrap)
}

// TestErrWrapSilent covers %w wrapping, non-error arguments, %% literals,
// the allow suppression, and the dynamic/indexed-format escape hatches.
func TestErrWrapSilent(t *testing.T) {
	linttest.ExpectClean(t, "testdata/src", "errwrap/good", analyzers.ErrWrap)
}
