package analyzers_test

import (
	"testing"

	"github.com/quittree/quit/tools/quitlint/analyzers"
	"github.com/quittree/quit/tools/quitlint/internal/linttest"
)

func TestStickyPoisonFires(t *testing.T) {
	linttest.Run(t, "testdata/src", "stickypoison/bad", analyzers.StickyPoison)
}

func TestStickyPoisonSilent(t *testing.T) {
	linttest.ExpectClean(t, "testdata/src", "stickypoison/good", analyzers.StickyPoison)
}
