package analyzers

import (
	"go/ast"
	"go/types"

	"github.com/quittree/quit/tools/quitlint/internal/lintkit"
)

// OLCValidate checks the validation discipline of optimistic reads
// (DESIGN.md §6): every version obtained from an optimistic open —
//
//	v, ok := t.readLatch(n)        // version at result 0, ok at result 1
//	n, v  := t.readRoot()          // version at result 1
//	n, v  := t.descendToLeaf(key)  // version at result 1
//
// must flow into a validation (readCheck / readUnlatch / upgradeLatch),
// be handed over to another version variable (parent-to-child handover,
// `n, v = c, cv`), or escape through a return (the caller then owns the
// still-open section). A version that is produced and never consumed means
// the data read under it is used without ever being checked against a
// concurrent writer — the canonical torn-read bug.
//
// Additionally:
//
//   - discarding a version or the obsolete-flag with `_` at the open is a
//     finding (the section can never be validated / the obsolete restart is
//     skipped), and
//   - discarding the boolean of a validation call (expression statement or
//     `_ =`) is a finding: an unchecked validation is no validation.
//
// The analysis is per-function and flow-insensitive: one consumption
// anywhere in the function counts. That is deliberate — the restart loops
// in latch.go consume on some paths and abort on others, and a
// path-sensitive checker would need to understand the whole restart
// protocol to avoid false positives.
var OLCValidate = &lintkit.Analyzer{
	Name: "olcvalidate",
	Doc:  "check that optimistic read versions are validated (readCheck/readUnlatch/upgradeLatch), handed over, or returned before the section's data is used",
	Run:  runOLCValidate,
}

// versionProducers maps an open-call name to the result index holding the
// version. readLatch additionally returns the obsolete-flag at index 1.
var versionProducers = map[string]int{
	"readLatch":     0,
	"readRoot":      1,
	"descendToLeaf": 1,
}

// versionValidators are the calls that consume a version (any argument
// position) and whose boolean result must not be discarded.
var versionValidators = map[string]bool{
	"readCheck":    true,
	"readUnlatch":  true,
	"upgradeLatch": true,
}

func runOLCValidate(pass *lintkit.Pass) error {
	if latchType(pass.Pkg) == nil {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFuncVersions(pass, fd)
			}
		}
	}
	return nil
}

// producerCall returns the version result index if call opens an optimistic
// section, or -1.
func producerCall(pass *lintkit.Pass, call *ast.CallExpr) int {
	callee := calleeFunc(pass.Info, call)
	if callee == nil || callee.Pkg() != pass.Pkg {
		return -1
	}
	if idx, ok := versionProducers[callee.Name()]; ok {
		return idx
	}
	return -1
}

// validatorCall reports whether call is a version validation.
func validatorCall(pass *lintkit.Pass, call *ast.CallExpr) bool {
	callee := calleeFunc(pass.Info, call)
	return callee != nil && callee.Pkg() == pass.Pkg && versionValidators[callee.Name()]
}

func checkFuncVersions(pass *lintkit.Pass, fd *ast.FuncDecl) {
	// First sweep: find every version variable produced by an open, and
	// flag opens whose version (or obsolete-flag) is discarded outright.
	produced := map[*types.Var]ast.Node{} // version var -> producing stmt
	lintkit.Inspect([]*ast.File{wrapBody(fd)}, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && producerCall(pass, call) >= 0 {
				pass.Reportf(call.Pos(), "optimistic open used as a statement: its version is discarded and the section can never be validated")
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			idx := producerCall(pass, call)
			if idx < 0 || len(n.Lhs) <= idx {
				return true
			}
			name := calleeFunc(pass.Info, call).Name()
			vid, ok := n.Lhs[idx].(*ast.Ident)
			if !ok {
				return true
			}
			if vid.Name == "_" {
				pass.Reportf(vid.Pos(), "version returned by %s discarded with _: the optimistic section can never be validated", name)
				return true
			}
			if name == "readLatch" && len(n.Lhs) > 1 {
				if okID, ok := n.Lhs[1].(*ast.Ident); ok && okID.Name == "_" {
					pass.Reportf(okID.Pos(), "obsolete-flag of readLatch discarded with _: readers reaching an unlinked node must restart")
				}
			}
			if obj := identVar(pass.Info, vid); obj != nil {
				if _, seen := produced[obj]; !seen {
					produced[obj] = n
				}
			}
		}
		return true
	})

	// Second sweep: record consumption — validator arguments, returns, and
	// handover assignments (which also extend tracking to the destination).
	consumed := map[*types.Var]bool{}
	for changed := true; changed; { // handover chains: iterate to fixpoint
		changed = false
		lintkit.Inspect([]*ast.File{wrapBody(fd)}, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if !validatorCall(pass, n) {
					return true
				}
				for _, arg := range n.Args {
					if obj := identVar(pass.Info, unparenIdent(arg)); obj != nil {
						if _, tracked := produced[obj]; tracked && !consumed[obj] {
							consumed[obj] = true
							changed = true
						}
					}
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					if obj := identVar(pass.Info, unparenIdent(res)); obj != nil {
						if _, tracked := produced[obj]; tracked && !consumed[obj] {
							consumed[obj] = true
							changed = true
						}
					}
				}
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i := range n.Rhs {
					src := identVar(pass.Info, unparenIdent(n.Rhs[i]))
					if src == nil {
						continue
					}
					if _, tracked := produced[src]; !tracked {
						continue
					}
					dst, _ := n.Lhs[i].(*ast.Ident)
					if dst == nil || dst.Name == "_" {
						continue // `_ = v` is not a handover
					}
					if dstObj := identVar(pass.Info, dst); dstObj != nil {
						if !consumed[src] {
							consumed[src] = true
							changed = true
						}
						if _, seen := produced[dstObj]; !seen {
							produced[dstObj] = n // destination now carries the section
							changed = true
						}
					}
				}
			}
			return true
		})
	}

	for obj, site := range produced {
		if !consumed[obj] {
			pass.Reportf(site.Pos(), "optimistic read version %s is never validated, handed over, or returned: data read under it is unchecked against concurrent writers", obj.Name())
		}
	}

	// Third sweep: validation booleans must be observed.
	lintkit.Inspect([]*ast.File{wrapBody(fd)}, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && validatorCall(pass, call) {
				pass.Reportf(call.Pos(), "result of %s discarded: an unchecked validation is no validation — branch on it and restart on failure", calleeFunc(pass.Info, call).Name())
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !validatorCall(pass, call) || len(n.Lhs) != len(n.Rhs) {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
					pass.Reportf(call.Pos(), "result of %s discarded with _: branch on it and restart on failure", calleeFunc(pass.Info, call).Name())
				}
			}
		}
		return true
	})
}

// identVar resolves an identifier to the variable it names, or nil.
func identVar(info *types.Info, id *ast.Ident) *types.Var {
	if id == nil {
		return nil
	}
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

// unparenIdent unwraps parens around a bare identifier expression.
func unparenIdent(e ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(e).(*ast.Ident)
	return id
}
