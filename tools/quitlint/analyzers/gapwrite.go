package analyzers

import (
	"go/ast"
	"go/types"
	"sort"

	"github.com/quittree/quit/tools/quitlint/internal/lintkit"
)

// GapWrite guards the gapped-leaf slot layout (DESIGN.md §11): the slot
// array, the presence bitmap and the live count move together, and a
// mutation that interleaves with an optimistic reader must be rejected by
// that reader's version check — which only happens when the writer holds
// the node's write latch. The rule: a call to one of the slot/bitmap
// mutators (gapInsert, gapRemove, setBit, setSpread, compact, ...) on a
// gapped node — any struct carrying a `present` bitmap field — is only
// legal when the receiver is
//
//   - the enclosing method's own receiver or a parameter (nodes arrive
//     latched by caller contract, the same convention latchflow uses), or
//   - a local freshly minted in this function (newLeaf/newInternal or a
//     composite literal: unpublished nodes have no readers), or
//   - a local write-latched earlier in the function (writeLatch /
//     tryWriteLatch / writeLatchLive / upgradeLatch / writeLockedRoot)
//     and not yet released (writeUnlatch / markObsolete kill the
//     acquisition in source order).
//
// Like latchorder, the held-region tracking is a source-order
// approximation, which matches how the write paths are written: latch,
// mutate, unlatch within one region. One refinement keeps the bail paths
// honest: a release whose enclosing block exits afterwards (return, break,
// continue, goto) never rejoins the fall-through path, so it does not kill
// the held state for the code below it. Paths whose latches arrive through
// channels the analyzer cannot see — a crabbed descent handing back a
// latched path slice, or unsynchronized-only fast splits where the latch
// helpers are no-ops — carry a `//quitlint:allow gapwrite` comment at the
// call site, the same convention the latchflow allowances use.
var GapWrite = &lintkit.Analyzer{
	Name: "gapwrite",
	Doc:  "check that gapped-leaf slot/bitmap mutators run under the receiver's write latch, on a fresh node, or on a caller-latched parameter (DESIGN.md §11)",
	Run:  runGapWrite,
}

// gapMutators are the node methods that rewrite the slot array, the
// presence bitmap, or the live count.
var gapMutators = map[string]bool{
	"gapInsert":     true,
	"gapInsertAt":   true,
	"gapAppend":     true,
	"gapRemove":     true,
	"setBit":        true,
	"clearBit":      true,
	"setBitRange":   true,
	"clearBits":     true,
	"setSpread":     true,
	"setDense":      true,
	"spreadInPlace": true,
	"refrontierAt":  true,
	"respread":      true,
	"appendDense":   true,
	"compact":       true,
	"truncateLive":  true,
	"insertAt":      true,
}

// gapWriteAcquires generate a held write latch on their first argument;
// gapWriteReleases drop it.
var gapWriteAcquires = map[string]bool{
	"writeLatch":     true,
	"tryWriteLatch":  true,
	"writeLatchLive": true,
	"upgradeLatch":   true,
}

var gapWriteReleases = map[string]bool{
	"writeUnlatch": true,
	"markObsolete": true,
}

// gapWriteFresh name the allocators whose results are unpublished nodes.
var gapWriteFresh = map[string]bool{
	"newLeaf":         true,
	"newInternal":     true,
	"writeLockedRoot": true, // arrives latched, same effect
}

type gapEvent struct {
	pos  int // file offset, for source ordering
	node ast.Node
	obj  *types.Var
	kind int // 0 fresh/acquire, 1 release, 2 mutate
	name string
}

func runGapWrite(pass *lintkit.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if recvIsGappedNode(pass, fn) {
				// Methods of the node type itself compose the primitives;
				// the protocol applies to their callers.
				continue
			}
			checkGapWrites(pass, fn)
		}
	}
	return nil
}

// recvIsGappedNode reports whether fn is a method whose receiver type
// carries a `present` bitmap field.
func recvIsGappedNode(pass *lintkit.Pass, fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return false
	}
	t := pass.Info.Types[fn.Recv.List[0].Type].Type
	return hasPresentField(t)
}

// hasPresentField reports whether t (pointer stripped) is a struct with a
// field named `present` — the structural signature of a gapped node.
func hasPresentField(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == "present" {
			return true
		}
	}
	return false
}

// checkGapWrites collects the fresh/latch/mutate events of one function in
// source order and replays them against the held-set.
func checkGapWrites(pass *lintkit.Pass, fn *ast.FuncDecl) {
	exempt := map[*types.Var]bool{} // receiver and parameters
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if v, ok := pass.Info.Defs[name].(*types.Var); ok {
					exempt[v] = true
				}
			}
		}
	}
	collect(fn.Recv)
	collect(fn.Type.Params)

	// bailRelease reports whether the statement stack encloses the release
	// in a block that exits (return/branch) after it: such a release sits
	// on a path that never rejoins the fall-through code, so it must not
	// kill the held state for the statements below the block.
	bailRelease := func(stack []ast.Node, call *ast.CallExpr) bool {
		for i := len(stack) - 1; i >= 0; i-- {
			var stmts []ast.Stmt
			switch b := stack[i].(type) {
			case *ast.BlockStmt:
				stmts = b.List
			case *ast.CaseClause:
				stmts = b.Body
			case *ast.CommClause:
				stmts = b.Body
			default:
				continue
			}
			after := false
			for _, s := range stmts {
				if !after {
					if s.Pos() <= call.Pos() && call.End() <= s.End() {
						after = true
					}
					continue
				}
				switch s.(type) {
				case *ast.ReturnStmt, *ast.BranchStmt:
					return true
				}
			}
			return false
		}
		return false
	}

	var events []gapEvent
	argVar := func(e ast.Expr) *types.Var {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		v, _ := pass.Info.Uses[id].(*types.Var)
		if v == nil {
			v, _ = pass.Info.Defs[id].(*types.Var)
		}
		return v
	}

	var stack []ast.Node
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		// A function literal runs on its own schedule (deferred cleanup
		// closures, goroutines): its acquires/releases do not belong to this
		// function's source-order region, and its own mutations are checked
		// when the literal's body is replayed by the enclosing declaration
		// with the closure's captures exempt — conservatively skip it here.
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		defer func() { stack = append(stack, n) }()
		switch n := n.(type) {
		case *ast.AssignStmt:
			// x := t.newLeaf() — fresh, unpublished.
			if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
					if f := calleeFunc(pass.Info, call); f != nil && gapWriteFresh[f.Name()] {
						if v := argVar(n.Lhs[0]); v != nil {
							events = append(events, gapEvent{pos: int(n.Pos()), obj: v, kind: 0})
						}
					}
				}
				// x := &node{...} or x := node{...}
				rhs := ast.Unparen(n.Rhs[0])
				if u, ok := rhs.(*ast.UnaryExpr); ok {
					rhs = ast.Unparen(u.X)
				}
				if cl, ok := rhs.(*ast.CompositeLit); ok && hasPresentField(pass.Info.Types[cl].Type) {
					if v := argVar(n.Lhs[0]); v != nil {
						events = append(events, gapEvent{pos: int(n.Pos()), obj: v, kind: 0})
					}
				}
			}
		case *ast.CallExpr:
			f := calleeFunc(pass.Info, n)
			if f == nil {
				return true
			}
			switch {
			case gapWriteAcquires[f.Name()] && len(n.Args) > 0:
				if v := argVar(n.Args[0]); v != nil {
					events = append(events, gapEvent{pos: int(n.Pos()), obj: v, kind: 0})
				}
			case gapWriteReleases[f.Name()] && len(n.Args) > 0:
				if v := argVar(n.Args[0]); v != nil && !bailRelease(stack, n) {
					events = append(events, gapEvent{pos: int(n.Pos()), obj: v, kind: 1})
				}
			case gapMutators[f.Name()]:
				sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				recv := argVar(sel.X)
				if recv == nil || !hasPresentField(recv.Type()) {
					return true
				}
				events = append(events, gapEvent{pos: int(n.Pos()), node: n, obj: recv, kind: 2, name: f.Name()})
			}
		}
		return true
	})

	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	held := map[*types.Var]bool{}
	for _, ev := range events {
		switch ev.kind {
		case 0:
			held[ev.obj] = true
		case 1:
			delete(held, ev.obj)
		case 2:
			if exempt[ev.obj] || held[ev.obj] {
				continue
			}
			pass.Reportf(ev.node.Pos(),
				"gap mutator %s on %s without the write latch: latch it, mint it fresh, or receive it latched as a parameter (DESIGN.md §11)",
				ev.name, ev.obj.Name())
		}
	}
}
