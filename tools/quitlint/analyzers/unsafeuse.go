package analyzers

import (
	"go/ast"
	"go/types"

	"github.com/quittree/quit/tools/quitlint/internal/lintkit"
)

// UnsafeUse flags every use of package unsafe. The library keeps unsafe to
// a handful of audited size-accounting and sentinel-construction sites;
// each of those carries a `//quitlint:allow unsafeuse <reason>` comment
// recording the audit, and anything new surfaces here until it has been
// reviewed and annotated the same way. There is no built-in allowlist on
// purpose: the suppression comment *is* the allowlist, and it lives next
// to the code it blesses.
var UnsafeUse = &lintkit.Analyzer{
	Name: "unsafeuse",
	Doc:  "flag uses of package unsafe; audited sites must carry a //quitlint:allow unsafeuse comment with the audit reason",
	Run:  runUnsafeUse,
}

func runUnsafeUse(pass *lintkit.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok || pn.Imported() != types.Unsafe {
				return true
			}
			pass.Reportf(sel.Pos(), "use of unsafe.%s: confine unsafe to audited size-accounting/sentinel sites and annotate them with //quitlint:allow unsafeuse <reason>", sel.Sel.Name)
			return true
		})
	}
	return nil
}
