package analyzers_test

import (
	"testing"

	"github.com/quittree/quit/tools/quitlint/analyzers"
	"github.com/quittree/quit/tools/quitlint/internal/linttest"
)

func TestWalOrderFires(t *testing.T) {
	linttest.Run(t, "testdata/src", "walorder/bad", analyzers.WalOrder)
}

func TestWalOrderSilent(t *testing.T) {
	linttest.ExpectClean(t, "testdata/src", "walorder/good", analyzers.WalOrder)
}
