package analyzers

import (
	"go/ast"
	"go/types"

	"github.com/quittree/quit/tools/quitlint/internal/lintkit"
)

// WalOrder machine-checks the write-path ordering of the durability
// contract (DESIGN.md §8–§10) inside DurableTree methods:
//
//  1. Frame before apply. A mutation of the in-memory tree (Put, Delete,
//     Clear, PutBatch, PutBatchParallel, ApplySorted, or an indirect
//     apply closure) must be preceded on every path by WAL framing
//     (Append / AppendBatch / AppendBatchStart) — replay can only
//     reconstruct what was logged first.
//  2. Frame and apply under the lock. In methods that take d.mu, framing
//     and applying outside the critical section would let a concurrent
//     writer interleave log order and apply order.
//  3. Commit before ack. No path may return a nil error — the caller's
//     durability acknowledgement — without reaching a Commit / Sync /
//     Close of the log (or the append helper, which commits internally).
//     Sanctioned no-op returns carry a "quitlint:allow" waiver.
//  4. Commit errors are checked. Discarding the error of a framing or
//     committing Log call (a bare expression statement) silently breaks
//     the acked-prefix contract.
//
// The analysis is a forward may-analysis over the lintkit CFG with three
// "not yet" facts (not-locked, not-framed, not-committed); union meet
// means a violation on any path is reported. Methods with no WAL events
// (readers, accessors) are skipped; lock rules apply only to methods that
// themselves take d.mu, so helpers running under a caller's lock (append)
// are not flagged. Function literals are opaque: an apply closure handed
// to the append helper executes under the helper's framing, not at its
// creation site.
//
// The serving layer (DESIGN.md §12) extends the same contract one level
// up: in methods of a package-scope type named Coalescer — the
// server-side group-commit batcher — a send on a `chan error` is a
// writer acknowledgement, and no path may reach one before a committing
// DurableTree call (Put / Insert / Delete / PutBatch / PutBatchParallel /
// ApplySorted / Sync / Checkpoint) has run. The Coalescer lives in a
// different package from DurableTree, so this rule classifies the
// committing call by the receiver's type name rather than by identity.
var WalOrder = &lintkit.Analyzer{
	Name: "walorder",
	Doc:  "check DESIGN.md §8 WAL write-path ordering in DurableTree methods (frame before apply, both under d.mu, commit before nil-error ack, commit errors checked) and §12 coalescer acks (no error-channel send before the group's commit)",
	Run:  runWalOrder,
}

const (
	woNotLocked lintkit.Fact = 1 << iota
	woNotFramed
	woNotCommitted
)

// treeMutators are the Tree methods that change tree contents; every one
// must be framed to the WAL first.
var treeMutators = map[string]bool{
	"Put": true, "Insert": true, "Delete": true, "Clear": true,
	"PutBatch": true, "PutBatchParallel": true, "ApplySorted": true,
}

// logFraming / logCommitting classify Log methods. Append and AppendBatch
// frame and commit in one call; Flush is deliberately absent from the
// committing set — it reaches the OS, not stable storage.
var logFraming = map[string]bool{
	"Append": true, "AppendBatch": true, "AppendBatchStart": true,
}
var logCommitting = map[string]bool{
	"Append": true, "AppendBatch": true, "Commit": true, "Sync": true, "Close": true,
}

type walEvent uint8

const (
	evNone walEvent = iota
	evLock
	evUnlock
	evFrame       // AppendBatchStart: frames only
	evCommit      // Commit / Sync / Close: commits only
	evFrameCommit // Append / AppendBatch: frames and commits
	evComposite   // the DurableTree append helper: frame+apply+commit
	evApply
)

func runWalOrder(pass *lintkit.Pass) error {
	dt := scopeNamed(pass.Pkg, "DurableTree")
	co := scopeNamed(pass.Pkg, "Coalescer")
	if dt == nil && co == nil {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			recv := recvBaseNamed(obj)
			if recv == nil {
				continue
			}
			switch {
			case dt != nil && recv.Obj() == dt.Obj():
				checkWalOrder(pass, fd, obj)
			case co != nil && recv.Obj() == co.Obj():
				checkCoalescerAck(pass, fd)
			}
		}
	}
	return nil
}

// scopeNamed returns the package-scope named type called name, or nil.
func scopeNamed(pkg *types.Package, name string) *types.Named {
	obj := pkg.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	return named
}

type woChecker struct {
	pass       *lintkit.Pass
	hasLock    bool // the method itself takes d.mu
	returnsErr bool // last result is error (so nil there is an ack)
}

func checkWalOrder(pass *lintkit.Pass, fd *ast.FuncDecl, obj *types.Func) {
	c := &woChecker{pass: pass}

	sig := obj.Type().(*types.Signature)
	if n := sig.Results().Len(); n > 0 {
		last := sig.Results().At(n - 1).Type()
		c.returnsErr = types.Identical(last, types.Universe.Lookup("error").Type())
	}

	// Scope probe: skip methods with no WAL involvement, and record
	// whether the method takes the lock itself.
	hasWAL := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			switch c.classify(call) {
			case evLock:
				c.hasLock = true
			case evFrame, evCommit, evFrameCommit, evComposite, evApply:
				hasWAL = true
			}
		}
		return true
	})
	if !hasWAL {
		return
	}

	flow := &lintkit.Flow{
		CFG:      lintkit.BuildCFG(fd.Body),
		Entry:    woNotLocked | woNotFramed | woNotCommitted,
		Transfer: c.transfer,
	}
	flow.Run(c.visit, nil)
}

// classify maps a call to its WAL event.
func (c *woChecker) classify(call *ast.CallExpr) walEvent {
	callee := calleeFunc(c.pass.Info, call)
	if callee == nil {
		// Indirect call of a func-typed value: the apply closure.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if obj := c.pass.Info.ObjectOf(id); obj != nil {
				if _, ok := obj.(*types.Var); ok {
					if _, sig := obj.Type().Underlying().(*types.Signature); sig {
						return evApply
					}
				}
			}
		}
		return evNone
	}
	name := callee.Name()
	if pkg := callee.Pkg(); pkg != nil && pkg.Path() == "sync" {
		switch name {
		case "Lock":
			return evLock
		case "Unlock":
			return evUnlock
		}
		return evNone
	}
	recv := recvBaseNamed(callee)
	if recv == nil {
		return evNone
	}
	switch recv.Obj().Name() {
	case "Log":
		framing, committing := logFraming[name], logCommitting[name]
		switch {
		case framing && committing:
			return evFrameCommit
		case framing:
			return evFrame
		case committing:
			return evCommit
		}
	case "Tree":
		if treeMutators[name] {
			return evApply
		}
	case "DurableTree":
		if name == "append" {
			return evComposite
		}
	}
	return evNone
}

// transfer applies the events of one statement (deferred calls run at
// exit, not here; function literals are values, not control flow).
func (c *woChecker) transfer(n ast.Node, f lintkit.Fact) lintkit.Fact {
	if _, ok := n.(*ast.DeferStmt); ok {
		return f
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch c.classify(call) {
		case evLock:
			f &^= woNotLocked
		case evUnlock:
			f |= woNotLocked
		case evFrame:
			f &^= woNotFramed
		case evCommit:
			f &^= woNotCommitted
		case evFrameCommit:
			f &^= woNotFramed | woNotCommitted
		case evComposite:
			f &^= woNotFramed | woNotCommitted
		}
		return true
	})
	return f
}

// visit reports ordering violations with the fact in force before each
// statement.
func (c *woChecker) visit(n ast.Node, f lintkit.Fact) {
	if _, ok := n.(*ast.DeferStmt); ok {
		return
	}
	if ret, ok := n.(*ast.ReturnStmt); ok {
		c.checkAck(ret, f)
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if es, ok := m.(*ast.ExprStmt); ok {
			if call, ok := ast.Unparen(es.X).(*ast.CallExpr); ok {
				switch c.classify(call) {
				case evFrame, evCommit, evFrameCommit, evComposite:
					c.pass.Reportf(call.Pos(), "WAL %s result discarded; a failed frame or commit must not be ignored — the acked-prefix contract depends on it (DESIGN.md §8)", callName(call))
				}
			}
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch c.classify(call) {
		case evFrame, evFrameCommit:
			if c.hasLock && f&woNotLocked != 0 {
				c.pass.Reportf(call.Pos(), "WAL framing via %s outside the d.mu critical section; framing must run under the lock that serializes log order and apply order (DESIGN.md §8)", callName(call))
			}
		case evApply:
			if f&woNotFramed != 0 {
				c.pass.Reportf(call.Pos(), "tree apply via %s before the mutation is framed to the WAL; frame it first so replay covers it (DESIGN.md §8)", callName(call))
			}
			if c.hasLock && f&woNotLocked != 0 {
				c.pass.Reportf(call.Pos(), "tree apply via %s outside the d.mu critical section; apply order must match log order (DESIGN.md §8)", callName(call))
			}
		}
		return true
	})
}

// checkAck flags nil-error returns on paths that never committed.
func (c *woChecker) checkAck(ret *ast.ReturnStmt, f lintkit.Fact) {
	if !c.returnsErr || len(ret.Results) == 0 {
		return
	}
	last := ast.Unparen(ret.Results[len(ret.Results)-1])
	id, ok := last.(*ast.Ident)
	if !ok || id.Name != "nil" {
		return
	}
	if f&woNotCommitted != 0 {
		c.pass.Reportf(ret.Pos(), "nil-error return acknowledges a write on a path that never reached Commit/Sync; commit the framed record before acking (DESIGN.md §8)")
	}
}

// --- Coalescer ack ordering (DESIGN.md §12) -------------------------------

// coNotCommitted is the Coalescer flow's only fact: no committing
// DurableTree call has run yet on this path.
const coNotCommitted lintkit.Fact = 1

// durableCommitting are the DurableTree methods whose return marks the
// group commit: once any of them has run, the batch's outcome — success
// or error — is known and the writers may be acknowledged with it.
var durableCommitting = map[string]bool{
	"Put": true, "Insert": true, "Delete": true,
	"PutBatch": true, "PutBatchParallel": true, "ApplySorted": true,
	"Sync": true, "Checkpoint": true,
}

// checkCoalescerAck enforces the coalescer's ack ordering: a send on a
// `chan error` acknowledges a blocked writer, so no path may reach one
// before the group's committing DurableTree call. The Coalescer and the
// DurableTree live in different packages, so committing calls are
// classified by the receiver's type name.
func checkCoalescerAck(pass *lintkit.Pass, fd *ast.FuncDecl) {
	c := &coChecker{pass: pass}

	// Scope probe: only methods that acknowledge (send on a chan error)
	// need the flow pass; enqueue/route/kick helpers are skipped.
	hasAck := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if send, ok := n.(*ast.SendStmt); ok && c.isErrSend(send) {
			hasAck = true
		}
		return true
	})
	if !hasAck {
		return
	}

	flow := &lintkit.Flow{
		CFG:      lintkit.BuildCFG(fd.Body),
		Entry:    coNotCommitted,
		Transfer: c.transfer,
	}
	flow.Run(c.visit, nil)
}

type coChecker struct {
	pass *lintkit.Pass
}

// isErrSend reports whether send's channel carries error values — the
// coalescer's writer-acknowledgement shape.
func (c *coChecker) isErrSend(send *ast.SendStmt) bool {
	t := c.pass.Info.TypeOf(send.Chan)
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	return types.Identical(ch.Elem(), types.Universe.Lookup("error").Type())
}

// isCommit reports whether call is a committing method on a DurableTree
// (by receiver type name; the tree's package differs from the
// coalescer's).
func (c *coChecker) isCommit(call *ast.CallExpr) bool {
	callee := calleeFunc(c.pass.Info, call)
	if callee == nil {
		return false
	}
	recv := recvBaseNamed(callee)
	return recv != nil && recv.Obj().Name() == "DurableTree" && durableCommitting[callee.Name()]
}

func (c *coChecker) transfer(n ast.Node, f lintkit.Fact) lintkit.Fact {
	if _, ok := n.(*ast.DeferStmt); ok {
		return f
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok && c.isCommit(call) {
			f &^= coNotCommitted
		}
		return true
	})
	return f
}

func (c *coChecker) visit(n ast.Node, f lintkit.Fact) {
	if _, ok := n.(*ast.DeferStmt); ok {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if send, ok := m.(*ast.SendStmt); ok && c.isErrSend(send) && f&coNotCommitted != 0 {
			c.pass.Reportf(send.Pos(), "writer acknowledged (error-channel send) on a path where the group's DurableTree commit has not run; commit the batch first, then ack every writer with its outcome (DESIGN.md §12)")
		}
		return true
	})
}

// callName renders a short name for diagnostics.
func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return "call"
}
