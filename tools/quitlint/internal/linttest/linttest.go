// Package linttest is the golden-test harness for quitlint analyzers, in
// the style of golang.org/x/tools/go/analysis/analysistest: fixture
// packages live under testdata/src in a GOPATH-style layout, and expected
// findings are written as `// want "regex"` comments on the offending
// lines. A fixture needing a standard-library package vendors a stub under
// testdata/src (sync, sync/atomic), keeping the tests hermetic.
//
// Matching rules: every diagnostic must match one `want` regex on its
// file:line, and every `want` regex must be matched by exactly one
// diagnostic. Suppression comments and the *_test.go exemption are applied
// before matching (they run inside lintkit.Run), so fixtures can assert on
// them too.
package linttest

import (
	"go/ast"
	"regexp"
	"testing"

	"github.com/quittree/quit/tools/quitlint/internal/lintkit"
)

// wantRx pulls the quoted regexes out of a `// want "a" "b"` comment.
var (
	wantMarker = regexp.MustCompile(`//\s*want\b(.*)`)
	wantQuoted = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)
)

type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
	used bool
}

// Run loads srcRoot/<path>, applies the analyzers, and checks the resulting
// diagnostics against the fixture's want comments.
func Run(t *testing.T, srcRoot, path string, analyzers ...*lintkit.Analyzer) {
	t.Helper()
	pkg, err := lintkit.LoadDir(srcRoot, path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				wants = append(wants, parseWants(t, pkg, c)...)
			}
		}
	}

	diags, err := lintkit.Run(pkg, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", path, err)
	}

	for _, d := range diags {
		posn := pkg.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.used && w.file == posn.Filename && w.line == posn.Line && w.rx.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s [%s]", posn, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.rx)
		}
	}
}

func parseWants(t *testing.T, pkg *lintkit.Package, c *ast.Comment) []*expectation {
	m := wantMarker.FindStringSubmatch(c.Text)
	if m == nil {
		return nil
	}
	posn := pkg.Fset.Position(c.Pos())
	quoted := wantQuoted.FindAllStringSubmatch(m[1], -1)
	if len(quoted) == 0 {
		t.Fatalf("%s: want comment carries no quoted regex", posn)
	}
	var out []*expectation
	for _, q := range quoted {
		rx, err := regexp.Compile(q[1])
		if err != nil {
			t.Fatalf("%s: bad want regex %q: %v", posn, q[1], err)
		}
		out = append(out, &expectation{file: posn.Filename, line: posn.Line, rx: rx})
	}
	return out
}

// ExpectClean asserts the fixture produces no diagnostics at all (for
// silent fixtures that deliberately contain no want comments).
func ExpectClean(t *testing.T, srcRoot, path string, analyzers ...*lintkit.Analyzer) {
	t.Helper()
	pkg, err := lintkit.LoadDir(srcRoot, path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	diags, err := lintkit.Run(pkg, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", path, err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic in clean fixture %s at %s: %s [%s]",
			path, pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
	}
}
