package lintkit

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// loadSrc type-checks a set of in-memory files into a Package.
func loadSrc(t *testing.T, files map[string]string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	var syntax []*ast.File
	for name, src := range files {
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		syntax = append(syntax, f)
	}
	info := NewInfo()
	pkg, err := (&types.Config{}).Check("p", fset, syntax, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return &Package{Fset: fset, Files: syntax, Types: pkg, Info: info}
}

// reportEveryFunc flags every function declaration — a probe analyzer for
// exercising the suppression layer.
var reportEveryFunc = &Analyzer{
	Name: "probe",
	Doc:  "report every function",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					pass.Reportf(fd.Pos(), "func %s", fd.Name.Name)
				}
			}
		}
		return nil
	},
}

func TestSuppressions(t *testing.T) {
	pkg := loadSrc(t, map[string]string{
		"a.go": `package p

func plain() {}

func allowedTrailing() {} //quitlint:allow probe reason given here

//quitlint:allow probe reason on the line above
func allowedAbove() {}

func allowedAll() {} //quitlint:allow all blanket reason

func allowedWrongAnalyzer() {} //quitlint:allow other mismatched analyzer name

func missingReason() {} //quitlint:allow probe
`,
		"a_test.go": `package p

func inTestFile() {}
`,
	})

	diags, err := Run(pkg, []*Analyzer{reportEveryFunc})
	if err != nil {
		t.Fatal(err)
	}

	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer+": "+d.Message)
	}

	want := map[string]string{
		"probe: func plain":                "plain code must be reported",
		"probe: func allowedWrongAnalyzer": "an allow naming a different analyzer must not suppress",
		"probe: func missingReason":        "an allow without a reason must not suppress",
	}
	for _, g := range got {
		if strings.Contains(g, "missing a reason") {
			continue // the malformed-comment finding, checked below
		}
		if _, ok := want[g]; !ok {
			t.Errorf("unexpected diagnostic %q", g)
		}
		delete(want, g)
	}
	for w, why := range want {
		t.Errorf("missing diagnostic %q (%s)", w, why)
	}

	malformed := 0
	for _, g := range got {
		if strings.Contains(g, "missing a reason") {
			malformed++
			if !strings.HasPrefix(g, "quitlint:") {
				t.Errorf("malformed-allow finding should come from the quitlint meta-analyzer, got %q", g)
			}
		}
	}
	if malformed != 1 {
		t.Errorf("want exactly 1 missing-reason finding, got %d", malformed)
	}

	for _, g := range got {
		if strings.Contains(g, "inTestFile") {
			t.Errorf("finding in _test.go file must be exempt: %q", g)
		}
		if strings.Contains(g, "allowedTrailing") || strings.Contains(g, "allowedAbove") || strings.Contains(g, "allowedAll") {
			t.Errorf("suppressed finding leaked: %q", g)
		}
	}
}

func TestInspectStack(t *testing.T) {
	pkg := loadSrc(t, map[string]string{"b.go": `package p

func f() {
	g(h())
}

func g(x int)  {}
func h() int   { return 0 }
`})
	// The ancestor stack at the inner call h() must contain the outer call
	// g(...) — and skipping a subtree must not corrupt the stack.
	sawInner := false
	Inspect(pkg.Files, func(n ast.Node, stack []ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "h" {
				sawInner = true
				foundOuter := false
				for _, a := range stack {
					if c, ok := a.(*ast.CallExpr); ok {
						if oid, ok := c.Fun.(*ast.Ident); ok && oid.Name == "g" {
							foundOuter = true
						}
					}
				}
				if !foundOuter {
					t.Error("outer call g(...) missing from ancestor stack at h()")
				}
			}
		}
		// Skip import specs etc. to exercise the no-descend path.
		_, isGen := n.(*ast.GenDecl)
		return !isGen
	})
	if !sawInner {
		t.Error("never visited the inner call h()")
	}
}
