package lintkit

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses a single function declaration and returns its body.
func parseBody(t *testing.T, fn string) (*token.FileSet, *ast.BlockStmt) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fixture.go", "package p\n\n"+fn, 0)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return fset, fd.Body
		}
	}
	t.Fatal("fixture has no function body")
	return nil, nil
}

// checkInvariants asserts the structural CFG invariants every builder
// output must satisfy; it returns the set of reachable blocks.
func checkInvariants(t *testing.T, fset *token.FileSet, cfg *CFG) map[*Block]bool {
	t.Helper()
	if cfg.Entry == nil || len(cfg.Blocks) == 0 {
		t.Fatal("CFG has no entry block")
	}
	index := map[*Block]bool{}
	for i, b := range cfg.Blocks {
		if b.Index != i {
			t.Errorf("block %d carries Index %d", i, b.Index)
		}
		index[b] = true
	}
	for _, b := range cfg.Blocks {
		if b.Cond != nil && len(b.Succs) != 2 {
			t.Errorf("block %d has Cond but %d successors", b.Index, len(b.Succs))
		}
		if (b.Return != nil || b.Panics) && len(b.Succs) != 0 {
			t.Errorf("terminator block %d has %d successors", b.Index, len(b.Succs))
		}
		for _, s := range b.Succs {
			if !index[s] {
				t.Errorf("block %d has an edge to a block outside Blocks", b.Index)
			}
		}
		for _, n := range b.Stmts {
			switch n.(type) {
			case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt,
				*ast.TypeSwitchStmt, *ast.SelectStmt, *ast.LabeledStmt, *ast.BlockStmt:
				t.Errorf("block %d holds undecomposed compound statement %T at %s",
					b.Index, n, fset.Position(n.Pos()))
			}
		}
	}
	return cfg.Reachable()
}

func TestIfElseJoins(t *testing.T) {
	fset, body := parseBody(t, `func f(c bool) int {
	x := 0
	if c {
		x = 1
	} else {
		x = 2
	}
	return x
}`)
	cfg := BuildCFG(body)
	reach := checkInvariants(t, fset, cfg)
	for _, b := range cfg.Blocks {
		if !reach[b] {
			t.Errorf("unexpected unreachable block %d", b.Index)
		}
	}
	var returns int
	for _, b := range cfg.Blocks {
		if b.Return != nil {
			returns++
		}
	}
	if returns != 1 {
		t.Errorf("want one return block after the join, got %d", returns)
	}
	if cfg.Entry.Cond == nil || len(cfg.Entry.Succs) != 2 {
		t.Errorf("entry block should end in the if condition with two edges")
	}
}

func TestForLoopCycles(t *testing.T) {
	fset, body := parseBody(t, `func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`)
	cfg := BuildCFG(body)
	reach := checkInvariants(t, fset, cfg)
	var head *Block
	for _, b := range cfg.Blocks {
		if b.Cond != nil {
			head = b
		}
	}
	if head == nil {
		t.Fatal("no condition block for the loop header")
	}
	// The loop head must reach itself through the body and post blocks.
	seen := map[*Block]bool{}
	work := []*Block{head.Succs[0]}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[b] {
			continue
		}
		seen[b] = true
		work = append(work, b.Succs...)
	}
	if !seen[head] {
		t.Error("loop body does not cycle back to the header")
	}
	if !reach[head] {
		t.Error("loop head unreachable")
	}
}

func TestForeverLoopTerminates(t *testing.T) {
	fset, body := parseBody(t, `func f() {
	for {
	}
}`)
	cfg := BuildCFG(body)
	reach := checkInvariants(t, fset, cfg)
	// for{} never falls out: the loop exit block exists but is unreachable,
	// which is exactly the reachable-or-diagnosed contract.
	unreachable := 0
	for _, b := range cfg.Blocks {
		if !reach[b] {
			unreachable++
		}
	}
	if unreachable == 0 {
		t.Error("for{} should leave its exit block unreachable")
	}
}

func TestRangeSynthesizesAssign(t *testing.T) {
	fset, body := parseBody(t, `func f(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}`)
	cfg := BuildCFG(body)
	checkInvariants(t, fset, cfg)
	found := false
	for _, b := range cfg.Blocks {
		for _, n := range b.Stmts {
			if a, ok := n.(*ast.AssignStmt); ok && len(a.Rhs) == 1 {
				if id, ok := a.Rhs[0].(*ast.Ident); ok && id.Name == "xs" {
					found = true
					if len(b.Succs) != 2 {
						t.Errorf("range header should have iterate and done edges, got %d", len(b.Succs))
					}
				}
			}
		}
	}
	if !found {
		t.Error("range header did not synthesize the per-iteration assignment")
	}
}

func TestSwitchFallthrough(t *testing.T) {
	fset, body := parseBody(t, `func f(k int) int {
	r := 0
	switch k {
	case 0:
		r = 1
		fallthrough
	case 1:
		r += 2
	default:
		r = 9
	}
	return r
}`)
	cfg := BuildCFG(body)
	reach := checkInvariants(t, fset, cfg)
	for _, b := range cfg.Blocks {
		if !reach[b] {
			t.Errorf("unexpected unreachable block %d in switch", b.Index)
		}
	}
	// The fallthrough clause must have exactly one successor: the next
	// case's block (not the exit).
	for _, b := range cfg.Blocks {
		for _, n := range b.Stmts {
			if br, ok := n.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				t.Errorf("fallthrough must be consumed by the builder, found in block %d", b.Index)
			}
		}
	}
}

func TestPanicAndDeadCode(t *testing.T) {
	fset, body := parseBody(t, `func f(c bool) int {
	if !c {
		panic("no")
	}
	return 1
}`)
	cfg := BuildCFG(body)
	checkInvariants(t, fset, cfg)
	var panics int
	for _, b := range cfg.Blocks {
		if b.Panics {
			panics++
			if len(b.Succs) != 0 {
				t.Error("panic block has successors")
			}
		}
	}
	if panics != 1 {
		t.Errorf("want one panicking block, got %d", panics)
	}

	fset, body = parseBody(t, `func g() int {
	return 1
	println("dead")
}`)
	cfg = BuildCFG(body)
	reach := checkInvariants(t, fset, cfg)
	dead := 0
	for _, b := range cfg.Blocks {
		if !reach[b] && len(b.Stmts) > 0 {
			dead++
		}
	}
	if dead != 1 {
		t.Errorf("statement after return should land in one unreachable block, got %d", dead)
	}
}

func TestEmptySelectBlocksForever(t *testing.T) {
	fset, body := parseBody(t, `func f() {
	select {}
}`)
	cfg := BuildCFG(body)
	reach := checkInvariants(t, fset, cfg)
	// The entry path ends at the empty select: no reachable block may be a
	// fall-off-the-end exit with zero statements and zero successors other
	// than the select head itself.
	for _, b := range cfg.Blocks {
		if reach[b] && len(b.Succs) == 0 && b.Return != nil {
			t.Error("empty select must not reach a return")
		}
	}
}

func TestLabeledBreakContinue(t *testing.T) {
	fset, body := parseBody(t, `func f(m [][]int) int {
	s := 0
outer:
	for i := range m {
		for j := range m[i] {
			if m[i][j] < 0 {
				continue outer
			}
			if m[i][j] == 0 {
				break outer
			}
			s += j
		}
	}
	return s
}`)
	cfg := BuildCFG(body)
	reach := checkInvariants(t, fset, cfg)
	for _, b := range cfg.Blocks {
		if !reach[b] {
			t.Errorf("labeled loop left block %d unreachable", b.Index)
		}
	}
}

func TestGotoBackward(t *testing.T) {
	fset, body := parseBody(t, `func f(n int) int {
	i := 0
retry:
	i++
	if i < n {
		goto retry
	}
	return i
}`)
	cfg := BuildCFG(body)
	reach := checkInvariants(t, fset, cfg)
	for _, b := range cfg.Blocks {
		if !reach[b] {
			t.Errorf("goto loop left block %d unreachable", b.Index)
		}
	}
}

func TestFuncLitsAreOpaque(t *testing.T) {
	fset, body := parseBody(t, `func f() func() int {
	g := func() int {
		if true {
			return 1
		}
		return 2
	}
	return g
}`)
	cfg := BuildCFG(body)
	checkInvariants(t, fset, cfg)
	// The literal's control flow must not leak into the outer graph: the
	// outer function is straight-line (assign, return) with no branches.
	for _, b := range cfg.Blocks {
		if b.Cond != nil {
			t.Error("function literal's branches leaked into the enclosing CFG")
		}
	}
	lits := FuncLits(body)
	if len(lits) != 1 {
		t.Fatalf("want one function literal, got %d", len(lits))
	}
	inner := BuildCFG(lits[0].Body)
	checkInvariants(t, fset, inner)
	if len(inner.Blocks) < 3 {
		t.Error("literal body should decompose into multiple blocks")
	}
}
