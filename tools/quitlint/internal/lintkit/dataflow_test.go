package lintkit

import (
	"go/ast"
	"testing"
)

// acquireBit is the single fact bit used by the toy problems: set by a
// call to acquire(), cleared by a call to release().
const acquireBit Fact = 1

func toyTransfer(n ast.Node, f Fact) Fact {
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			switch id.Name {
			case "acquire":
				f |= acquireBit
			case "release":
				f &^= acquireBit
			}
		}
		return true
	})
	return f
}

// exitFacts runs the toy problem and returns the final fact of every exit
// block keyed by the returned expression's text (an int literal in the
// fixtures), with "end" for the fall-off-the-end exit.
func exitFacts(t *testing.T, src string) map[string]Fact {
	t.Helper()
	_, body := parseBody(t, src)
	fl := &Flow{CFG: BuildCFG(body), Transfer: toyTransfer}
	out := map[string]Fact{}
	fl.Run(nil, func(b *Block, f Fact) {
		key := "end"
		if b.Return != nil && len(b.Return.Results) > 0 {
			if lit, ok := b.Return.Results[0].(*ast.BasicLit); ok {
				key = lit.Value
			}
		}
		out[key] = f
	})
	return out
}

func TestDataflowBranches(t *testing.T) {
	facts := exitFacts(t, `func f(c bool) int {
	acquire()
	if c {
		release()
		return 1
	}
	return 2
}`)
	if facts["1"] != 0 {
		t.Errorf("released path should exit with an empty fact, got %b", facts["1"])
	}
	if facts["2"] != acquireBit {
		t.Errorf("unreleased path should exit holding the bit, got %b", facts["2"])
	}
}

func TestDataflowLoopFixpoint(t *testing.T) {
	facts := exitFacts(t, `func f(n int) int {
	for i := 0; i < n; i++ {
		acquire()
	}
	return 1
}`)
	// May-analysis: some path out of the loop acquired and never released.
	if facts["1"] != acquireBit {
		t.Errorf("loop exit should carry the may-acquired bit, got %b", facts["1"])
	}

	facts = exitFacts(t, `func f(n int) int {
	for i := 0; i < n; i++ {
		acquire()
		release()
	}
	return 1
}`)
	if facts["1"] != 0 {
		t.Errorf("balanced loop should exit clean, got %b", facts["1"])
	}
}

func TestDataflowMergeIsUnion(t *testing.T) {
	facts := exitFacts(t, `func f(c bool) int {
	if c {
		acquire()
	}
	return 1
}`)
	if facts["1"] != acquireBit {
		t.Errorf("union meet must keep the bit from the acquiring branch, got %b", facts["1"])
	}
}

func TestDataflowBranchRefinement(t *testing.T) {
	_, body := parseBody(t, `func f() int {
	ok := acquire()
	if ok {
		return 1
	}
	return 2
}`)
	fl := &Flow{
		CFG:      BuildCFG(body),
		Transfer: toyTransfer,
		Branch: func(cond ast.Expr, takenTrue bool, f Fact) Fact {
			// The acquisition is gated on ok: the false edge refines the
			// bit away, modeling a failed try-acquire.
			if id, ok := cond.(*ast.Ident); ok && id.Name == "ok" && !takenTrue {
				f &^= acquireBit
			}
			return f
		},
	}
	out := map[string]Fact{}
	fl.Run(nil, func(b *Block, f Fact) {
		if b.Return != nil {
			if lit, ok := b.Return.Results[0].(*ast.BasicLit); ok {
				out[lit.Value] = f
			}
		}
	})
	if out["1"] != acquireBit {
		t.Errorf("success edge should hold the bit, got %b", out["1"])
	}
	if out["2"] != 0 {
		t.Errorf("failure edge should be refined clean, got %b", out["2"])
	}
}

func TestWalkVisitsEachStatementOnce(t *testing.T) {
	_, body := parseBody(t, `func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`)
	fl := &Flow{CFG: BuildCFG(body), Transfer: func(n ast.Node, f Fact) Fact { return f }}
	seen := map[ast.Node]int{}
	fl.Run(func(n ast.Node, f Fact) { seen[n]++ }, nil)
	for n, count := range seen {
		if count != 1 {
			t.Errorf("node %T visited %d times; Walk must replay each program point once", n, count)
		}
	}
	if len(seen) == 0 {
		t.Error("walk visited nothing")
	}
}
