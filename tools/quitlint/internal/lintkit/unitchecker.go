package lintkit

// unitchecker.go speaks the `go vet -vettool` protocol, reimplemented on
// the standard library (the canonical implementation lives in
// golang.org/x/tools/go/analysis/unitchecker, which this module must not
// depend on). The protocol, as driven by cmd/go:
//
//  1. `tool -flags` — print a JSON array describing the tool's flags (used
//     by cmd/go to validate vet command lines). quitlint has none: "[]".
//  2. `tool -V=full` — print "<name> version <...> buildID=<hex>"; cmd/go
//     hashes this line into the build cache key, so the buildID must change
//     whenever the tool binary changes.
//  3. `tool <dir>/vet.cfg` — analyze one package unit. The cfg JSON names
//     the Go files, the import map, and, for every import, the file holding
//     its gc export data (produced by cmd/go into the build cache). The
//     tool must write cfg.VetxOutput (serialized "facts" for dependents;
//     quitlint's analyzers are fact-free so an empty file suffices), print
//     findings to stderr as "file:line:col: message", and exit 0 (clean) or
//     2 (findings).
//
// Dependency units are delivered with VetxOnly=true and are not analyzed —
// only the packages named on the `go vet` command line get a full pass.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
)

// vetConfig mirrors the JSON emitted by cmd/go for each vet unit.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunUnit executes one vet unit described by cfgPath and returns the
// process exit code: 0 clean, 1 tool/typecheck failure, 2 findings.
func RunUnit(cfgPath string, analyzers []*Analyzer, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "quitlint: reading vet config: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "quitlint: parsing vet config %s: %v\n", cfgPath, err)
		return 1
	}

	// The facts file must exist for dependents even when we have nothing
	// to say (and even on failure paths, so cmd/go's caching stays sane).
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(stderr, "quitlint: writing %s: %v\n", cfg.VetxOutput, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	pkg, err := typecheckUnit(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "quitlint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags, err := Run(pkg, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "quitlint: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s [%s]\n", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// typecheckUnit parses and type-checks the unit's Go files, resolving
// imports through the export-data files cmd/go listed in the config.
func typecheckUnit(cfg *vetConfig) (*Package, error) {
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	imp := &unitImporter{cfg: cfg}
	imp.gc = importer.ForCompiler(fset, cfg.Compiler, imp.lookup)

	goarch := os.Getenv("GOARCH")
	if goarch == "" {
		goarch = runtime.GOARCH
	}
	tconf := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(cfg.Compiler, goarch),
		GoVersion: cfg.GoVersion,
	}
	info := NewInfo()
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// unitImporter resolves source-level import paths via the config's
// ImportMap (vendoring / canonicalization) and loads export data from the
// build-cache files in PackageFile.
type unitImporter struct {
	cfg *vetConfig
	gc  types.Importer
}

func (u *unitImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := u.cfg.ImportMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return u.gc.Import(path)
}

// lookup feeds the gc export-data reader. It receives the canonical path
// (Import already applied ImportMap).
func (u *unitImporter) lookup(path string) (io.ReadCloser, error) {
	file, ok := u.cfg.PackageFile[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(file)
}
