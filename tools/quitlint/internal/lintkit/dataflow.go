// dataflow.go is the forward-dataflow fixpoint engine over the basic-block
// CFGs of cfg.go. Facts are 64-bit may-sets: the meet over merging paths is
// union, so a set bit at a program point means "some path reaches this
// point with the bit's condition possibly holding". Transfer functions must
// be monotone in the gen/kill sense (out = in &^ kill | gen with kill and
// gen independent of in), which every lintkit analyzer's transfer is; the
// lattice is finite, so the worklist iteration terminates.
//
// Analysis runs in two phases. Analyze computes the fixpoint fact at every
// block entry. Walk then replays each reachable block exactly once from its
// fixed entry fact, invoking the client's visit callback with the fact in
// force before every statement — so diagnostics are emitted once per
// program point, not once per fixpoint iteration.
package lintkit

import "go/ast"

// Fact is a may-set of up to 64 analyzer-defined bits.
type Fact uint64

// A Flow configures one forward dataflow problem over a CFG.
type Flow struct {
	CFG   *CFG
	Entry Fact // fact at function entry

	// BlockStart, if set, runs before a block's statements are processed
	// (in both phases). Clients use it to reset per-block scratch state,
	// e.g. condition-variable bindings, which are derived from the block's
	// own statements and therefore identical on every replay.
	BlockStart func(b *Block)

	// Transfer maps the fact across one statement. It is also invoked on
	// the block's Cond expression (after the statements), so side effects
	// in conditions are seen exactly once.
	Transfer func(n ast.Node, f Fact) Fact

	// Branch, if set, refines the post-condition fact along each edge of a
	// block ending in Cond: takenTrue selects the condition-true edge.
	Branch func(cond ast.Expr, takenTrue bool, f Fact) Fact
}

// Analyze runs the worklist fixpoint and returns the entry fact of every
// block, indexed by Block.Index. Unreached blocks hold the zero Fact.
func (fl *Flow) Analyze() []Fact {
	n := len(fl.CFG.Blocks)
	in := make([]Fact, n)
	reached := make([]bool, n)
	entry := fl.CFG.Entry
	in[entry.Index] = fl.Entry
	reached[entry.Index] = true

	work := []*Block{entry}
	queued := make([]bool, n)
	queued[entry.Index] = true
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b.Index] = false

		f := fl.transferBlock(b, in[b.Index])
		for i, succ := range b.Succs {
			out := f
			if b.Cond != nil && fl.Branch != nil {
				out = fl.Branch(b.Cond, i == 0, f)
			}
			merged := in[succ.Index] | out
			if !reached[succ.Index] || merged != in[succ.Index] {
				in[succ.Index] = merged
				reached[succ.Index] = true
				if !queued[succ.Index] {
					queued[succ.Index] = true
					work = append(work, succ)
				}
			}
		}
	}
	return in
}

// transferBlock maps a block-entry fact across the block's statements and
// condition.
func (fl *Flow) transferBlock(b *Block, f Fact) Fact {
	if fl.BlockStart != nil {
		fl.BlockStart(b)
	}
	for _, s := range b.Stmts {
		f = fl.Transfer(s, f)
	}
	if b.Cond != nil {
		f = fl.Transfer(b.Cond, f)
	}
	return f
}

// Walk replays every reachable block once from the fixpoint facts,
// calling visit with the fact in force immediately before each statement
// (and before the block's Cond), and exit with the final fact of every
// reachable block that has no successors — return blocks, panic blocks,
// and the fall-off-the-end block. Either callback may be nil.
func (fl *Flow) Walk(in []Fact, visit func(n ast.Node, f Fact), exit func(b *Block, f Fact)) {
	reach := fl.CFG.Reachable()
	for _, b := range fl.CFG.Blocks {
		if !reach[b] {
			continue
		}
		if fl.BlockStart != nil {
			fl.BlockStart(b)
		}
		f := in[b.Index]
		for _, s := range b.Stmts {
			if visit != nil {
				visit(s, f)
			}
			f = fl.Transfer(s, f)
		}
		if b.Cond != nil {
			if visit != nil {
				visit(b.Cond, f)
			}
			f = fl.Transfer(b.Cond, f)
		}
		if len(b.Succs) == 0 && exit != nil {
			exit(b, f)
		}
	}
}

// Run is the convenience composition: Analyze then Walk.
func (fl *Flow) Run(visit func(n ast.Node, f Fact), exit func(b *Block, f Fact)) {
	fl.Walk(fl.Analyze(), visit, exit)
}
