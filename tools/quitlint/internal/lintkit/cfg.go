// cfg.go builds a basic-block control-flow graph from a function body,
// using syntax alone — no type information and no golang.org/x/tools
// dependency, matching the rest of lintkit. The graph is the substrate for
// the forward-dataflow engine in dataflow.go and the flow-sensitive
// analyzers built on it (latchflow, walorder, stickypoison).
//
// Shape of the graph:
//
//   - A Block holds a straight-line run of simple statements (Stmts), an
//     optional branch condition evaluated after them (Cond), and its
//     successor edges (Succs). When Cond is non-nil there are exactly two
//     successors: Succs[0] is the condition-true edge, Succs[1] the
//     condition-false edge.
//   - Compound statements (if/for/range/switch/select/labels) are
//     decomposed by the builder; Stmts never contains one at top level.
//     Range headers contribute a synthesized AssignStmt (key, value :=
//     range-expr) so dataflow clients see the per-iteration assignment;
//     switch headers contribute their init/tag, and each case's guard
//     expressions are prepended to the case body's block.
//   - return terminates its block (Return records the statement); a call
//     to the panic builtin terminates its block with Panics set; an empty
//     select{} terminates with neither. Such blocks have no successors.
//   - Function literals are opaque: their bodies are separate functions
//     with separate CFGs (see FuncLits); the enclosing graph sees only the
//     statement containing the literal.
//
// Statements after a terminator, and labeled statements nothing jumps to,
// become blocks unreachable from Entry. They are kept in Blocks so clients
// can diagnose dead code; Reachable distinguishes them.
package lintkit

import (
	"go/ast"
	"go/token"
)

// A Block is one basic block of a CFG.
type Block struct {
	Index int        // position in CFG.Blocks
	Stmts []ast.Node // simple statements, in execution order
	Cond  ast.Expr   // branch condition evaluated after Stmts, or nil
	Succs []*Block   // Cond != nil: [true-edge, false-edge]

	Return *ast.ReturnStmt // set when the block ends in a return
	Panics bool            // set when the block ends in a panic(...) call
}

// A CFG is the control-flow graph of one function body.
type CFG struct {
	Entry  *Block
	Blocks []*Block  // every block created, in creation order
	End    token.Pos // closing brace of the body, for fall-off-end positions
}

// Reachable returns the set of blocks reachable from Entry.
func (c *CFG) Reachable() map[*Block]bool {
	seen := map[*Block]bool{c.Entry: true}
	work := []*Block{c.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}

// BuildCFG constructs the CFG of one function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{End: body.Rbrace}, labels: map[string]*labelInfo{}}
	b.cur = b.newBlock()
	b.cfg.Entry = b.cur
	b.stmtList(body.List, "")
	return b.cfg
}

// FuncLits returns every function literal under root, outermost first,
// without descending into the bodies of nested literals' enclosing
// expressions twice. Callers analyzing a function should analyze each
// literal's Body as its own function.
func FuncLits(root ast.Node) []*ast.FuncLit {
	var out []*ast.FuncLit
	ast.Inspect(root, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			out = append(out, fl)
		}
		return true
	})
	return out
}

// labelInfo tracks one declared (or forward-referenced) label.
type labelInfo struct {
	block *Block // the labeled statement's entry block
	brk   *Block // break-target when the label names a loop/switch/select
	cont  *Block // continue-target when the label names a loop
}

// breakable is one enclosing break/continue scope.
type breakable struct {
	label string // enclosing label, or ""
	brk   *Block
	cont  *Block // nil for switch/select scopes
}

type cfgBuilder struct {
	cfg    *CFG
	cur    *Block // nil while building dead code
	scopes []breakable
	labels map[string]*labelInfo
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// live returns the current block, reviving dead code into a fresh
// unreachable block so statements after a terminator still get blocks
// (and are diagnosable as unreachable).
func (b *cfgBuilder) live() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *cfgBuilder) add(n ast.Node) { blk := b.live(); blk.Stmts = append(blk.Stmts, n) }

// jump adds an edge from the current block to dst and kills the current
// block. No edge is added from dead code.
func (b *cfgBuilder) jump(dst *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, dst)
	}
	b.cur = nil
}

// branch ends the current block with cond, creating the true/false edges.
func (b *cfgBuilder) branch(cond ast.Expr, t, f *Block) {
	blk := b.live()
	blk.Cond = cond
	blk.Succs = []*Block{t, f}
	b.cur = nil
}

func (b *cfgBuilder) labelInfoFor(name string) *labelInfo {
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{block: b.newBlock()}
		b.labels[name] = li
	}
	return li
}

func (b *cfgBuilder) stmtList(list []ast.Stmt, _ string) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt builds one statement. label is the name of an immediately enclosing
// LabeledStmt ("" otherwise) so loops and switches can register labeled
// break/continue targets.
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List, "")
	case *ast.LabeledStmt:
		li := b.labelInfoFor(s.Label.Name)
		b.jump(li.block)
		b.cur = li.block
		b.stmt(s.Stmt, s.Label.Name)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, label)
	case *ast.RangeStmt:
		b.rangeStmt(s, label)
	case *ast.SwitchStmt:
		b.switchStmt(s, label)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, label)
	case *ast.SelectStmt:
		b.selectStmt(s, label)
	case *ast.ReturnStmt:
		b.add(s)
		b.live().Return = s
		b.cur = nil
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.EmptyStmt:
		// nothing
	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.live().Panics = true
			b.cur = nil
		}
	default:
		// Assign, Decl, IncDec, Send, Go, Defer, ...: straight-line.
		b.add(s)
	}
}

func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	then, els, done := b.newBlock(), b.newBlock(), b.newBlock()
	b.branch(s.Cond, then, els)
	b.cur = then
	b.stmtList(s.Body.List, "")
	b.jump(done)
	b.cur = els
	if s.Else != nil {
		b.stmt(s.Else, "")
	}
	b.jump(done)
	b.cur = done
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	head, body, exit := b.newBlock(), b.newBlock(), b.newBlock()
	cont := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock()
		cont = post
	}
	b.jump(head)
	b.cur = head
	if s.Cond != nil {
		b.branch(s.Cond, body, exit)
	} else {
		b.jump(body) // for{}: leaves only via break/return
	}
	b.pushScope(label, exit, cont)
	b.cur = body
	b.stmtList(s.Body.List, "")
	b.popScope()
	b.jump(cont)
	if post != nil {
		b.cur = post
		b.add(s.Post)
		b.jump(head)
	}
	b.cur = exit
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	head, body, exit := b.newBlock(), b.newBlock(), b.newBlock()
	b.jump(head)
	b.cur = head
	// Synthesize the per-iteration assignment so dataflow clients see the
	// key/value binding and the range operand each trip.
	var lhs []ast.Expr
	if s.Key != nil {
		lhs = append(lhs, s.Key)
	}
	if s.Value != nil {
		lhs = append(lhs, s.Value)
	}
	if len(lhs) > 0 {
		b.add(&ast.AssignStmt{Lhs: lhs, Tok: s.Tok, TokPos: s.TokPos, Rhs: []ast.Expr{s.X}})
	} else {
		b.add(&ast.ExprStmt{X: s.X})
	}
	// The header decides iterate-vs-done; there is no syntactic condition,
	// so the edges are unconditional (Cond stays nil).
	b.live().Succs = []*Block{body, exit}
	b.cur = nil
	b.pushScope(label, exit, head)
	b.cur = body
	b.stmtList(s.Body.List, "")
	b.popScope()
	b.jump(head)
	b.cur = exit
}

func (b *cfgBuilder) switchStmt(s *ast.SwitchStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	if s.Tag != nil {
		b.add(&ast.ExprStmt{X: s.Tag})
	}
	head := b.live()
	exit := b.newBlock()
	b.cur = nil

	clauses := make([]*ast.CaseClause, 0, len(s.Body.List))
	for _, c := range s.Body.List {
		clauses = append(clauses, c.(*ast.CaseClause))
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		blocks[i] = b.newBlock()
		if c.List == nil {
			hasDefault = true
		}
		head.Succs = append(head.Succs, blocks[i])
	}
	if !hasDefault {
		head.Succs = append(head.Succs, exit)
	}
	b.pushScope(label, exit, nil)
	for i, c := range clauses {
		b.cur = blocks[i]
		for _, guard := range c.List {
			b.add(&ast.ExprStmt{X: guard})
		}
		b.caseBody(c.Body, blocks, i, exit)
	}
	b.popScope()
	b.cur = exit
}

// caseBody builds one case clause, routing a trailing fallthrough to the
// next clause's block.
func (b *cfgBuilder) caseBody(body []ast.Stmt, blocks []*Block, i int, exit *Block) {
	for _, s := range body {
		if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
			if i+1 < len(blocks) {
				b.jump(blocks[i+1])
			} else {
				b.jump(exit)
			}
			return
		}
		b.stmt(s, "")
	}
	b.jump(exit)
}

func (b *cfgBuilder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Assign)
	head := b.live()
	exit := b.newBlock()
	b.cur = nil

	hasDefault := false
	b.pushScope(label, exit, nil)
	for _, raw := range s.Body.List {
		c := raw.(*ast.CaseClause)
		blk := b.newBlock()
		head.Succs = append(head.Succs, blk)
		if c.List == nil {
			hasDefault = true
		}
		b.cur = blk
		b.stmtList(c.Body, "")
		b.jump(exit)
	}
	b.popScope()
	if !hasDefault {
		head.Succs = append(head.Succs, exit)
	}
	b.cur = exit
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.live()
	exit := b.newBlock()
	b.cur = nil
	b.pushScope(label, exit, nil)
	for _, raw := range s.Body.List {
		c := raw.(*ast.CommClause)
		blk := b.newBlock()
		head.Succs = append(head.Succs, blk)
		b.cur = blk
		if c.Comm != nil {
			b.stmt(c.Comm, "")
		}
		b.stmtList(c.Body, "")
		b.jump(exit)
	}
	b.popScope()
	// An empty select{} blocks forever: head keeps zero successors and
	// terminates the path.
	b.cur = exit
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	switch s.Tok {
	case token.BREAK:
		if dst := b.breakTarget(labelName(s.Label)); dst != nil {
			b.jump(dst)
			return
		}
	case token.CONTINUE:
		if dst := b.continueTarget(labelName(s.Label)); dst != nil {
			b.jump(dst)
			return
		}
	case token.GOTO:
		if s.Label != nil {
			b.jump(b.labelInfoFor(s.Label.Name).block)
			return
		}
	case token.FALLTHROUGH:
		// Only legal as the final statement of a case body, which caseBody
		// handles before stmt sees it; a stray one ends the path.
	}
	b.cur = nil
}

func labelName(id *ast.Ident) string {
	if id == nil {
		return ""
	}
	return id.Name
}

func (b *cfgBuilder) pushScope(label string, brk, cont *Block) {
	b.scopes = append(b.scopes, breakable{label: label, brk: brk, cont: cont})
	if label != "" {
		li := b.labelInfoFor(label)
		li.brk, li.cont = brk, cont
	}
}

func (b *cfgBuilder) popScope() { b.scopes = b.scopes[:len(b.scopes)-1] }

func (b *cfgBuilder) breakTarget(label string) *Block {
	if label != "" {
		if li := b.labels[label]; li != nil {
			return li.brk
		}
		return nil
	}
	for i := len(b.scopes) - 1; i >= 0; i-- {
		if b.scopes[i].brk != nil {
			return b.scopes[i].brk
		}
	}
	return nil
}

func (b *cfgBuilder) continueTarget(label string) *Block {
	if label != "" {
		if li := b.labels[label]; li != nil {
			return li.cont
		}
		return nil
	}
	for i := len(b.scopes) - 1; i >= 0; i-- {
		if b.scopes[i].cont != nil {
			return b.scopes[i].cont
		}
	}
	return nil
}
