package lintkit

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// TestCFGSelfTest builds the CFG of every function declaration and every
// function literal in every Go file of both modules (the repository root
// and tools/), asserting the builder never panics and that every block is
// reachable or diagnosed as dead code. This exercises the engine against
// the whole real codebase, not just the fixtures.
func TestCFGSelfTest(t *testing.T) {
	repoRoot, err := filepath.Abs(filepath.Join("..", "..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	err = filepath.WalkDir(repoRoot, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "bin" || name == ".github" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 30 {
		t.Fatalf("self-test found only %d Go files under %s; wrong repo root?", len(files), repoRoot)
	}

	fset := token.NewFileSet()
	funcs, unreachable := 0, 0
	for _, path := range files {
		file, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			t.Errorf("parsing %s: %v", path, err)
			continue
		}
		var bodies []*ast.BlockStmt
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			bodies = append(bodies, fd.Body)
			for _, lit := range FuncLits(fd.Body) {
				bodies = append(bodies, lit.Body)
			}
		}
		for _, body := range bodies {
			funcs++
			cfg := buildWithoutPanic(t, fset, body)
			if cfg == nil {
				continue
			}
			reach := checkInvariants(t, fset, cfg)
			for _, b := range cfg.Blocks {
				if reach[b] {
					continue
				}
				unreachable++
				// Reachable-or-diagnosed: dead blocks are reported with a
				// position so the engine's view of dead code is auditable.
				pos := cfg.End
				if len(b.Stmts) > 0 {
					pos = b.Stmts[0].Pos()
				}
				if len(b.Stmts) > 0 {
					t.Logf("dead code: unreachable block at %s", fset.Position(pos))
				}
			}
		}
	}
	if funcs < 100 {
		t.Fatalf("self-test built only %d CFGs; expected the whole codebase", funcs)
	}
	t.Logf("built %d CFGs from %d files (%d unreachable blocks diagnosed)", funcs, len(files), unreachable)
}

// buildWithoutPanic wraps BuildCFG so one pathological function fails the
// test with its position instead of crashing the run.
func buildWithoutPanic(t *testing.T, fset *token.FileSet, body *ast.BlockStmt) (cfg *CFG) {
	defer func() {
		if r := recover(); r != nil {
			t.Errorf("BuildCFG panicked at %s: %v", fset.Position(body.Pos()), r)
			cfg = nil
		}
	}()
	return BuildCFG(body)
}
