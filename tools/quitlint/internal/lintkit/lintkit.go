// Package lintkit is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis surface that quitlint's analyzers are
// written against: an Analyzer runs over one type-checked package (a Pass)
// and reports Diagnostics. The shapes mirror go/analysis deliberately so
// the analyzers can be ported to the real framework mechanically if this
// repository ever grows third-party dependencies.
//
// On top of the core shapes, lintkit owns two cross-cutting behaviors:
//
//   - Suppressions: a finding whose line (or the line directly above it)
//     carries a `//quitlint:allow <analyzer> <reason>` comment is dropped.
//     The reason is mandatory; an allow comment without one is itself
//     reported, so every suppression in the tree documents why the rule
//     does not apply.
//   - Test exemption: findings positioned in *_test.go files are dropped.
//     The latch/atomics protocol governs production code; tests poke at
//     latch internals deliberately (e.g. latch_test.go drives the raw
//     version word through its state machine).
package lintkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //quitlint:allow comments. Conventionally all lowercase.
	Name string

	// Doc is the help text: first sentence is the summary.
	Doc string

	// Run applies the analyzer to a package and reports findings
	// through pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass provides one analyzer with the parsed and type-checked syntax of a
// single package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Analyzer: p.Analyzer.Name, Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// A Package bundles everything analyzers need about one type-checked
// package. Loaders (the vet cfg protocol, the test harness) produce it.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// NewInfo returns a types.Info with every map analyzers rely on allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// Run applies every analyzer to pkg, resolves suppressions, and returns the
// surviving diagnostics sorted by position. Analyzer errors are returned
// after partial results are discarded.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			report:   func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	diags = applySuppressions(pkg, diags)
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// allowRx matches `quitlint:allow <analyzer> <reason...>` inside a comment.
var allowRx = regexp.MustCompile(`quitlint:allow\s+(\S+)\s*(.*)`)

type allowComment struct {
	analyzer string // analyzer name or "all"
	reason   string
	pos      token.Pos
}

// applySuppressions drops diagnostics covered by "quitlint:allow" comments
// and diagnostics inside *_test.go files, and reports malformed allow
// comments (missing reason) as findings in their own right.
func applySuppressions(pkg *Package, diags []Diagnostic) []Diagnostic {
	// Index allow comments by file and line.
	type key struct {
		file string
		line int
	}
	allows := map[key][]allowComment{}
	var malformed []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRx.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := pkg.Fset.Position(c.Pos())
				ac := allowComment{analyzer: m[1], reason: strings.TrimSpace(m[2]), pos: c.Pos()}
				if ac.reason == "" {
					malformed = append(malformed, Diagnostic{
						Analyzer: "quitlint",
						Pos:      c.Pos(),
						Message:  fmt.Sprintf("quitlint:allow %s is missing a reason: write //quitlint:allow %s <why this is safe>", ac.analyzer, ac.analyzer),
					})
					continue
				}
				k := key{file: posn.Filename, line: posn.Line}
				allows[k] = append(allows[k], ac)
			}
		}
	}

	var out []Diagnostic
	for _, d := range diags {
		posn := pkg.Fset.Position(d.Pos)
		if strings.HasSuffix(filepath.Base(posn.Filename), "_test.go") {
			continue
		}
		suppressed := false
		for _, line := range []int{posn.Line, posn.Line - 1} {
			for _, ac := range allows[key{file: posn.Filename, line: line}] {
				if ac.analyzer == d.Analyzer || ac.analyzer == "all" {
					suppressed = true
				}
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	for _, d := range malformed {
		posn := pkg.Fset.Position(d.Pos)
		if strings.HasSuffix(filepath.Base(posn.Filename), "_test.go") {
			continue
		}
		out = append(out, d)
	}
	return out
}

// Inspect walks every file in files in depth-first source order, calling fn
// with each node and the stack of its ancestors (outermost first, not
// including n itself). If fn returns false the node's children are skipped.
func Inspect(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if !fn(n, stack) {
				// No descent: ast.Inspect sends no nil pop for n, so
				// don't push it.
				return false
			}
			stack = append(stack, n)
			return true
		})
	}
}

// Filename returns the base name of the file containing pos.
func Filename(fset *token.FileSet, pos token.Pos) string {
	return filepath.Base(fset.Position(pos).Filename)
}
