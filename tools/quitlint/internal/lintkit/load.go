package lintkit

// load.go is the source-tree loader behind the golden-test harness
// (internal/linttest): it type-checks a package from a GOPATH-style
// `testdata/src` layout, resolving imports against sibling directories in
// the same tree. Fixtures that need a standard-library package (notably
// sync/atomic, whose named types the analyzers key on) vendor a stub under
// testdata/src/sync/atomic, which keeps the tests hermetic — no export
// data, no GOROOT parsing, no network.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadDir type-checks the package rooted at srcRoot/<importPath>, resolving
// imports from srcRoot. The returned Package carries full syntax and type
// information for the analyzers.
func LoadDir(srcRoot, importPath string) (*Package, error) {
	l := &srcLoader{
		root:  srcRoot,
		fset:  token.NewFileSet(),
		info:  NewInfo(),
		cache: map[string]*types.Package{},
	}
	syntax := map[string][]*ast.File{}
	l.syntax = syntax
	tpkg, err := l.load(importPath)
	if err != nil {
		return nil, err
	}
	return &Package{Fset: l.fset, Files: syntax[importPath], Types: tpkg, Info: l.info}, nil
}

type srcLoader struct {
	root   string
	fset   *token.FileSet
	info   *types.Info
	cache  map[string]*types.Package
	syntax map[string][]*ast.File
}

func (l *srcLoader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return l.load(path)
}

func (l *srcLoader) load(path string) (*types.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("import %q: %w", path, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("import %q: no Go files in %s", path, dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, l.info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %q: %w", path, err)
	}
	l.cache[path] = pkg
	l.syntax[path] = files
	return pkg, nil
}
