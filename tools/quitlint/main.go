// quitlint is the QuIT-tree static-analysis suite: four checks over the
// OLC latch protocol, atomics discipline, and fast-path invariants of
// internal/core (see DESIGN.md §6-§7).
//
// It is a vettool — the supported invocation is through the go command,
// which handles package loading, export data, and caching:
//
//	go vet -vettool=$(make -s quitlint-bin) ./...
//
// Run directly with package patterns it re-execs `go vet` on itself:
//
//	quitlint ./...
//
// Suppress a finding with a trailing or preceding comment that names the
// analyzer and records why the code is safe:
//
//	sz := unsafe.Sizeof(x) //quitlint:allow unsafeuse audited: size accounting only
//
// The reason is mandatory; allow comments without one are findings
// themselves. Findings in *_test.go files are exempt.
package main

import (
	"crypto/sha256"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"github.com/quittree/quit/tools/quitlint/analyzers"
	"github.com/quittree/quit/tools/quitlint/internal/lintkit"
)

func main() {
	os.Exit(run(os.Args))
}

func run(args []string) int {
	if len(args) == 2 {
		switch {
		case args[1] == "-flags":
			// cmd/go probes the tool's flag set; quitlint has no flags.
			fmt.Println("[]")
			return 0
		case strings.HasPrefix(args[1], "-V"):
			return printVersion(args[0])
		case strings.HasSuffix(args[1], ".cfg"):
			return lintkit.RunUnit(args[1], analyzers.All(), os.Stderr)
		}
	}
	if len(args) >= 2 {
		return reexecVet(args[1:])
	}
	fmt.Fprintln(os.Stderr, "usage: go vet -vettool=quitlint [packages]  |  quitlint [packages]")
	return 1
}

// printVersion answers `-V=full`. cmd/go parses the final buildID token and
// hashes it into the vet cache key, so it must change with the binary:
// hashing the executable itself gives that for free.
func printVersion(argv0 string) int {
	name := filepath.Base(argv0)
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "quitlint: %v\n", err)
		return 1
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		fmt.Fprintf(os.Stderr, "quitlint: %v\n", err)
		return 1
	}
	sum := sha256.Sum256(data)
	fmt.Printf("%s version devel buildID=%x\n", name, sum[:16])
	return 0
}

// reexecVet lets `quitlint ./...` work standalone by driving `go vet` with
// itself as the vettool — one package loader, one protocol.
func reexecVet(patterns []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "quitlint: %v\n", err)
		return 1
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "quitlint: %v\n", err)
		return 1
	}
	return 0
}
