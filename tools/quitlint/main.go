// quitlint is the QuIT-tree static-analysis suite: eight checks over the
// OLC latch protocol, atomics discipline, fast-path invariants, and the
// WAL durability contract of the main module (see DESIGN.md §6-§10).
//
// It is a vettool — the supported invocation is through the go command,
// which handles package loading, export data, and caching:
//
//	go vet -vettool=$(make -s quitlint-bin) ./...
//
// Run directly with package patterns it re-execs `go vet` on itself:
//
//	quitlint ./...
//	quitlint -json ./...   # findings as a JSON array on stdout (for CI)
//
// Suppress a finding with a trailing or preceding comment that names the
// analyzer and records why the code is safe:
//
//	sz := unsafe.Sizeof(x) //quitlint:allow unsafeuse audited: size accounting only
//
// The reason is mandatory; allow comments without one are findings
// themselves. Findings in *_test.go files are exempt.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"github.com/quittree/quit/tools/quitlint/analyzers"
	"github.com/quittree/quit/tools/quitlint/internal/lintkit"
)

func main() {
	os.Exit(run(os.Args))
}

func run(args []string) int {
	if len(args) == 2 {
		switch {
		case args[1] == "-flags":
			// cmd/go probes the tool's flag set; quitlint has no flags.
			fmt.Println("[]")
			return 0
		case strings.HasPrefix(args[1], "-V"):
			return printVersion(args[0])
		case strings.HasSuffix(args[1], ".cfg"):
			return lintkit.RunUnit(args[1], analyzers.All(), os.Stderr)
		}
	}
	if len(args) >= 2 && args[1] == "-json" {
		if len(args) < 3 {
			fmt.Fprintln(os.Stderr, "usage: quitlint -json [packages]")
			return 1
		}
		return jsonVet(args[2:])
	}
	if len(args) >= 2 {
		return reexecVet(args[1:])
	}
	fmt.Fprintln(os.Stderr, "usage: go vet -vettool=quitlint [-json] [packages]  |  quitlint [packages]")
	return 1
}

// printVersion answers `-V=full`. cmd/go parses the final buildID token and
// hashes it into the vet cache key, so it must change with the binary:
// hashing the executable itself gives that for free.
func printVersion(argv0 string) int {
	name := filepath.Base(argv0)
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "quitlint: %v\n", err)
		return 1
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		fmt.Fprintf(os.Stderr, "quitlint: %v\n", err)
		return 1
	}
	sum := sha256.Sum256(data)
	fmt.Printf("%s version devel buildID=%x\n", name, sum[:16])
	return 0
}

// finding is one diagnostic in `quitlint -json` output. The field names
// are what .github/problem-matchers/quitlint.json and other tooling key
// on; treat them as a stable interface.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// diagLine matches the unit-checker's diagnostic format:
// path.go:line:col: message [analyzer]
var diagLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*) \[([a-z]+)\]$`)

// jsonVet drives `go vet` with this binary as the vettool, converts the
// diagnostics on stderr into a JSON array on stdout, and preserves the
// vet exit code. Non-diagnostic stderr (typecheck errors, package noise)
// passes through so failures stay debuggable.
func jsonVet(patterns []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "quitlint: %v\n", err)
		return 1
	}
	var out bytes.Buffer
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = &out
	runErr := cmd.Run()

	findings := []finding{}
	for _, line := range strings.Split(out.String(), "\n") {
		m := diagLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			// `# pkg` headers are vet noise; anything else (loader or
			// typecheck failures) is real and goes back to stderr.
			if line != "" && !strings.HasPrefix(line, "#") {
				fmt.Fprintln(os.Stderr, line)
			}
			continue
		}
		ln, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		findings = append(findings, finding{
			File:     filepath.ToSlash(strings.TrimPrefix(m[1], "./")),
			Line:     ln,
			Col:      col,
			Message:  m[4],
			Analyzer: m[5],
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(findings); err != nil {
		fmt.Fprintf(os.Stderr, "quitlint: encoding findings: %v\n", err)
		return 1
	}
	if runErr != nil {
		if ee, ok := runErr.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "quitlint: %v\n", runErr)
		return 1
	}
	return 0
}

// reexecVet lets `quitlint ./...` work standalone by driving `go vet` with
// itself as the vettool — one package loader, one protocol.
func reexecVet(patterns []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "quitlint: %v\n", err)
		return 1
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "quitlint: %v\n", err)
		return 1
	}
	return 0
}
