module github.com/quittree/quit/tools

go 1.23

// This module is intentionally dependency-free: quitlint implements the
// go/analysis style (Analyzer/Pass/Diagnostic) and the `go vet -vettool`
// unit-checker protocol directly on the standard library, so the main
// module stays stdlib-only and the linter builds in hermetic environments
// with no module downloads.
//
// Companion third-party checkers are version-pinned here (as build metadata
// for CI, which installs them from a networked runner; this module itself
// must stay offline-buildable and therefore cannot `require` them):
//
//	honnef.co/go/tools/cmd/staticcheck  v0.6.1  (staticcheck)
//	golang.org/x/vuln/cmd/govulncheck   v1.1.4  (govulncheck)
//
// Keep these lines in sync with STATICCHECK_VERSION / GOVULNCHECK_VERSION
// in .github/workflows/ci.yml and the Makefile.
