package quit_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/quittree/quit"
)

// TestDurableParallelIngestWithCheckpoint mixes PutBatchParallel, point
// reads, range scans, deletes and mid-stream Checkpoints on one
// DurableTree, then reopens the directory and requires the recovered tree
// to match the surviving writes exactly. This is the durable round of the
// parallel-ingest stress suite: the pipelined WAL commit overlaps tree
// application, the checkpoint rotates the log under it, and recovery must
// still see every acknowledged batch.
func TestDurableParallelIngestWithCheckpoint(t *testing.T) {
	dir := t.TempDir()
	opts := quit.DurableOptions{
		Options: quit.Options{LeafCapacity: 16, InternalFanout: 8, Design: quit.QuIT, Synchronized: true},
		Sync:    quit.SyncInterval,
	}
	d, err := quit.Open[int64, int64](dir, opts)
	if err != nil {
		t.Fatal(err)
	}

	const (
		batches   = 8
		batchSize = 4096
	)
	want := make(map[int64]int64)
	var wantMu sync.Mutex
	var readerWG sync.WaitGroup
	stop := make(chan struct{})

	// Concurrent readers exercise the RLock surface while batches commit.
	for r := 0; r < 2; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			rng := rand.New(rand.NewSource(int64(300 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := rng.Int63n(batches * batchSize)
				d.Get(k)
				prev := int64(-1)
				d.Range(k, k+100, func(k2, _ int64) bool {
					if k2 <= prev {
						panic(fmt.Sprintf("Range out of order: %d after %d", k2, prev))
					}
					prev = k2
					return true
				})
			}
		}(r)
	}

	rng := rand.New(rand.NewSource(99))
	keys := make([]int64, batchSize)
	vals := make([]int64, batchSize)
	for b := 0; b < batches; b++ {
		base := int64(b * batchSize)
		for i := range keys {
			if i%19 == 0 && base > 0 {
				keys[i] = rng.Int63n(base) // rewrite into ingested territory
			} else {
				keys[i] = base + int64(i)
			}
			vals[i] = keys[i]*3 + int64(b)
		}
		if _, err := d.PutBatchParallel(keys, vals, quit.IngestOptions{Workers: 4}); err != nil {
			t.Fatal(err)
		}
		wantMu.Lock()
		for i := range keys {
			want[keys[i]] = vals[i]
		}
		wantMu.Unlock()

		switch b % 3 {
		case 1: // checkpoint mid-stream: rotates the log under the pipeline
			if err := d.Checkpoint(); err != nil {
				t.Fatalf("batch %d: Checkpoint: %v", b, err)
			}
		case 2: // delete a scatter of ingested keys
			for i := 0; i < 200; i++ {
				k := rng.Int63n(base + batchSize)
				if _, existed, err := d.Delete(k); err != nil {
					t.Fatal(err)
				} else if existed {
					wantMu.Lock()
					delete(want, k)
					wantMu.Unlock()
				}
			}
		}
	}
	close(stop)
	readerWG.Wait()

	if got := d.Len(); got != len(want) {
		t.Fatalf("Len = %d, want %d", got, len(want))
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery: snapshot + replayed tail must reproduce exactly the
	// acknowledged state.
	d2, err := quit.Open[int64, int64](dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := d2.Len(); got != len(want) {
		t.Fatalf("recovered Len = %d, want %d", got, len(want))
	}
	got := make(map[int64]int64, len(want))
	d2.Scan(func(k, v int64) bool { got[k] = v; return true })
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("recovered key %d = %d, want %d", k, got[k], v)
		}
	}
}

// TestDurablePutBatchParallelSemantics pins argument handling and result
// mapping on the durable parallel path.
func TestDurablePutBatchParallelSemantics(t *testing.T) {
	dir := t.TempDir()
	opts := quit.DurableOptions{
		Options: quit.Options{LeafCapacity: 16, InternalFanout: 8, Synchronized: true},
		Sync:    quit.SyncAlways,
	}
	d, err := quit.Open[int64, int64](dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.PutBatchParallel([]int64{1}, []int64{1, 2}, quit.IngestOptions{Workers: 4}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if res, err := d.PutBatchParallel(nil, nil, quit.IngestOptions{Workers: 4}); err != nil || res != nil {
		t.Fatalf("empty batch: (%v, %v)", res, err)
	}
	res, err := d.PutBatchParallel([]int64{5, 5, 7}, []int64{1, 2, 3}, quit.IngestOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res[1].Existed || res[0].Existed || res[2].Existed {
		t.Fatalf("duplicate results: %+v", res)
	}
	if v, _ := d.Get(5); v != 2 {
		t.Fatalf("Get(5) = %d, want 2 (last write wins)", v)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := quit.Open[int64, int64](dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if v, _ := d2.Get(5); v != 2 {
		t.Fatalf("recovered Get(5) = %d, want 2", v)
	}
	if _, err := d2.PutBatchParallel([]int64{9}, []int64{9}, quit.IngestOptions{}); err != nil {
		t.Fatalf("zero options: %v", err)
	}
}
