package quit_test

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	quit "github.com/quittree/quit"
)

func TestPublicAPIQuickstart(t *testing.T) {
	idx := quit.New[int64, string](quit.Options{})
	idx.Put(42, "answer")
	idx.Put(7, "seven")
	if v, ok := idx.Get(42); !ok || v != "answer" {
		t.Fatalf("Get(42) = (%q,%v)", v, ok)
	}
	if idx.Len() != 2 {
		t.Fatalf("Len = %d", idx.Len())
	}
	var keys []int64
	idx.Scan(func(k int64, _ string) bool {
		keys = append(keys, k)
		return true
	})
	if len(keys) != 2 || keys[0] != 7 || keys[1] != 42 {
		t.Fatalf("Scan order: %v", keys)
	}
	if prev, existed := idx.Put(42, "new"); !existed || prev != "answer" {
		t.Fatalf("overwrite = (%q,%v)", prev, existed)
	}
	if v, ok := idx.Delete(7); !ok || v != "seven" {
		t.Fatalf("Delete = (%q,%v)", v, ok)
	}
	if idx.Contains(7) {
		t.Fatal("deleted key still present")
	}
	if err := idx.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAllDesignsBehaveIdentically(t *testing.T) {
	designs := []quit.Design{
		quit.QuIT, quit.BPlusTree, quit.TailBPlusTree,
		quit.LILBPlusTree, quit.POLEBPlusTree,
	}
	keys := quit.GenerateWorkload(quit.WorkloadSpec{N: 20000, K: 0.1, L: 1, Seed: 4})
	var reference []int64
	for _, d := range designs {
		t.Run(d.String(), func(t *testing.T) {
			idx := quit.New[int64, int64](quit.Options{
				Design: d, LeafCapacity: 64, InternalFanout: 32,
			})
			for _, k := range keys {
				idx.Insert(k, k*2)
			}
			if idx.Len() != len(keys) {
				t.Fatalf("Len = %d", idx.Len())
			}
			var got []int64
			idx.Range(0, int64(len(keys)), func(k, v int64) bool {
				if v != k*2 {
					t.Fatalf("value mismatch at %d", k)
				}
				got = append(got, k)
				return true
			})
			if reference == nil {
				reference = got
				if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
					t.Fatal("range not sorted")
				}
			} else if len(got) != len(reference) {
				t.Fatalf("designs diverge: %d vs %d entries", len(got), len(reference))
			}
			if err := idx.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestUnsignedAndNarrowKeys(t *testing.T) {
	u := quit.New[uint32, string](quit.Options{LeafCapacity: 8, InternalFanout: 4})
	for i := uint32(0); i < 1000; i++ {
		u.Insert(i*2, "v")
	}
	if !u.Contains(500 * 2) {
		t.Fatal("uint32 key lost")
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}

	type MyKey int16
	m := quit.New[MyKey, int](quit.Options{LeafCapacity: 8, InternalFanout: 4})
	for i := MyKey(-300); i < 300; i++ {
		m.Insert(i, int(i))
	}
	if v, ok := m.Get(-250); !ok || v != -250 {
		t.Fatalf("derived key type Get = (%d,%v)", v, ok)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsExposeFastPathBehavior(t *testing.T) {
	idx := quit.New[int64, int64](quit.Options{LeafCapacity: 64, InternalFanout: 32})
	for i := int64(0); i < 50000; i++ {
		idx.Insert(i, i)
	}
	st := idx.Stats()
	if st.Inserts() != 50000 {
		t.Fatalf("Inserts = %d", st.Inserts())
	}
	if st.FastInsertFraction() < 0.999 {
		t.Fatalf("sorted ingestion fast fraction = %.4f", st.FastInsertFraction())
	}
	if occ := idx.AvgLeafOccupancy(); occ < 0.9 {
		t.Fatalf("occupancy = %.2f", occ)
	}
	if idx.MemoryFootprint() <= 0 || idx.Height() < 2 {
		t.Fatal("shape accessors broken")
	}
	idx.ResetCounters()
	if idx.Stats().Inserts() != 0 {
		t.Fatal("ResetCounters did not zero")
	}
}

func TestSynchronizedTree(t *testing.T) {
	idx := quit.New[int64, int64](quit.Options{
		LeafCapacity: 64, InternalFanout: 32, Synchronized: true,
	})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := int64(g) * 10000
			for i := int64(0); i < 10000; i++ {
				idx.Insert(base+i, base+i)
			}
		}(g)
	}
	wg.Wait()
	if idx.Len() != 40000 {
		t.Fatalf("Len = %d", idx.Len())
	}
	if err := idx.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadAPI(t *testing.T) {
	idx := quit.New[int64, int64](quit.Options{LeafCapacity: 16, InternalFanout: 8})
	keys := make([]int64, 5000)
	vals := make([]int64, 5000)
	for i := range keys {
		keys[i] = int64(i)
		vals[i] = int64(i) * 10
	}
	if err := idx.BuildFromSorted(keys[:4000], vals[:4000], 1.0); err != nil {
		t.Fatal(err)
	}
	if err := idx.BulkAppend(keys[4000:], vals[4000:], 0.8); err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 5000 {
		t.Fatalf("Len = %d", idx.Len())
	}
	for _, k := range []int64{0, 3999, 4000, 4999} {
		if v, ok := idx.Get(k); !ok || v != k*10 {
			t.Fatalf("Get(%d) = (%d,%v)", k, v, ok)
		}
	}
	if err := idx.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWorkloadHelpers(t *testing.T) {
	keys := quit.GenerateWorkload(quit.WorkloadSpec{N: 10000, K: 0.05, L: 0.5, Seed: 1})
	m := quit.MeasureSortedness(keys)
	if m.N != 10000 {
		t.Fatalf("N = %d", m.N)
	}
	if m.KFraction() < 0.01 || m.KFraction() > 0.12 {
		t.Fatalf("K fraction = %.3f", m.KFraction())
	}
	if m.LFraction() > 0.51 {
		t.Fatalf("L fraction = %.3f", m.LFraction())
	}
	sorted := quit.MeasureSortedness([]int64{1, 2, 3})
	if sorted.K != 0 || sorted.L != 0 || sorted.AdjacentInversions != 0 {
		t.Fatalf("sorted metrics: %+v", sorted)
	}
}

func ExampleNew() {
	idx := quit.New[int64, string](quit.Options{})
	idx.Put(1, "one")
	idx.Put(2, "two")
	idx.Put(3, "three")
	idx.Range(1, 3, func(k int64, v string) bool {
		fmt.Println(k, v)
		return true
	})
	// Output:
	// 1 one
	// 2 two
}
