// Command bodsgen emits BoDS key streams (the paper's workload generator)
// for use outside the benchmark harness.
//
// Usage:
//
//	bodsgen -n 1000000 -k 0.05 -l 1.0 -seed 42 -format text > keys.txt
//	bodsgen -n 1000000 -k 0.05 -format binary > keys.bin   # little-endian int64
//	bodsgen -n 1000000 -k 0.05 -measure                     # print metrics only
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"os"

	"github.com/quittree/quit/internal/bods"
	"github.com/quittree/quit/internal/sortedness"
)

func main() {
	var (
		n       = flag.Int("n", 1_000_000, "number of entries")
		k       = flag.Float64("k", 0.05, "fraction of out-of-order entries [0,1]")
		l       = flag.Float64("l", 1.0, "max displacement as a fraction of n (0,1]")
		alpha   = flag.Float64("alpha", 1, "Beta-distribution alpha (placement skew)")
		beta    = flag.Float64("beta", 1, "Beta-distribution beta (placement skew)")
		seed    = flag.Int64("seed", 42, "generator seed")
		format  = flag.String("format", "text", "output format: text | binary")
		measure = flag.Bool("measure", false, "print K-L metrics instead of keys")
	)
	flag.Parse()

	keys := bods.Generate(bods.Spec{
		N: *n, K: *k, L: *l, Alpha: *alpha, Beta: *beta, Seed: *seed,
	})

	if *measure {
		m := sortedness.Measure(keys)
		fmt.Printf("N=%d K=%d (%.4f%%) L=%d (%.4f%%) adjacent-inversions=%d\n",
			m.N, m.K, m.KFraction()*100, m.L, m.LFraction()*100, m.AdjacentInversions)
		return
	}

	w := bufio.NewWriterSize(os.Stdout, 1<<20)
	defer w.Flush()
	switch *format {
	case "text":
		for _, key := range keys {
			fmt.Fprintln(w, key)
		}
	case "binary":
		var buf [8]byte
		for _, key := range keys {
			binary.LittleEndian.PutUint64(buf[:], uint64(key))
			if _, err := w.Write(buf[:]); err != nil {
				fmt.Fprintf(os.Stderr, "bodsgen: %v\n", err)
				os.Exit(1)
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "bodsgen: unknown format %q\n", *format)
		os.Exit(2)
	}
}
