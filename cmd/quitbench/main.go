// Command quitbench regenerates the paper's tables and figures.
//
// Usage:
//
//	quitbench -list
//	quitbench -exp fig08 -n 2000000
//	quitbench -exp all -quick
//
// Every experiment prints one or more aligned ASCII tables matching the
// rows/series the paper reports; see EXPERIMENTS.md for the paper-vs-
// measured record.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/quittree/quit/internal/experiments"
	"github.com/quittree/quit/internal/harness"
)

var _ = experiments.RunTab01 // link the experiment registry

func main() {
	var (
		list    = flag.Bool("list", false, "list available experiments and exit")
		exp     = flag.String("exp", "all", "experiment id (e.g. fig08), comma list, or 'all'")
		n       = flag.Int("n", 0, "entries to ingest (default 2,000,000)")
		lookups = flag.Int("lookups", 0, "point lookups per query phase (default n/10)")
		ranges  = flag.Int("ranges", 0, "range queries per selectivity (default 200)")
		leaf    = flag.Int("leaf", 0, "leaf capacity in entries (default 510)")
		fanout  = flag.Int("fanout", 0, "internal fanout (default 256)")
		seed    = flag.Int64("seed", 42, "workload seed")
		threads = flag.String("threads", "", "comma list for fig13 (default 1,2,4,8,16)")
		quick   = flag.Bool("quick", false, "small fast run (smoke scale)")
		format  = flag.String("format", "table", "output format: table | csv")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("  %-8s %-10s %s\n", e.ID, e.Paper, e.Title)
		}
		return
	}

	p := harness.DefaultParams()
	if *quick {
		p.N = 200_000
		p.Lookups = 50_000
		p.RangeLookups = 50
		p.Threads = []int{1, 2, 4}
		p.Quick = true
	}
	if *n > 0 {
		p.N = *n
		p.Lookups = *n / 10
	}
	if *lookups > 0 {
		p.Lookups = *lookups
	}
	if *ranges > 0 {
		p.RangeLookups = *ranges
	}
	if *leaf > 0 {
		p.LeafCapacity = *leaf
	}
	if *fanout > 0 {
		p.InternalFanout = *fanout
	}
	p.Seed = *seed
	if *threads != "" {
		p.Threads = nil
		for _, part := range strings.Split(*threads, ",") {
			var t int
			if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &t); err != nil || t < 1 {
				fmt.Fprintf(os.Stderr, "quitbench: bad -threads entry %q\n", part)
				os.Exit(2)
			}
			p.Threads = append(p.Threads, t)
		}
	}

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = nil
		for _, e := range harness.All() {
			ids = append(ids, e.ID)
		}
	}

	fmt.Printf("quitbench: N=%d leaf=%d fanout=%d lookups=%d seed=%d\n\n",
		p.N, p.LeafCapacity, p.InternalFanout, p.Lookups, p.Seed)
	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, ok := harness.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "quitbench: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		tables := e.Run(p)
		for _, tab := range tables {
			switch *format {
			case "csv":
				if err := tab.RenderCSV(os.Stdout); err != nil {
					fmt.Fprintf(os.Stderr, "quitbench: writing csv: %v\n", err)
					os.Exit(1)
				}
			default:
				tab.Render(os.Stdout)
			}
		}
		if *format != "csv" {
			fmt.Printf("   [%s completed in %s]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
}
