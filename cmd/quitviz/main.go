// Command quitviz ingests a BoDS workload into one or more index designs
// and dumps each tree's shape: per-level node counts, leaf-occupancy
// histogram, fast-path state and operation counters. Handy for eyeballing
// how the variable split packs leaves and when fast paths go stale.
//
// Usage:
//
//	quitviz -n 1000000 -k 0.05 -design quit
//	quitviz -n 1000000 -k 0.05 -design all -leaf 128
//	bodsgen -n 1000000 -k 0.05 -format binary | quitviz -input - -design quit
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/quittree/quit/internal/bods"
	"github.com/quittree/quit/internal/core"
)

var designs = map[string]core.Mode{
	"btree": core.ModeNone,
	"tail":  core.ModeTail,
	"lil":   core.ModeLIL,
	"pole":  core.ModePOLE,
	"quit":  core.ModeQuIT,
}

func main() {
	var (
		n      = flag.Int("n", 1_000_000, "entries to ingest")
		k      = flag.Float64("k", 0.05, "fraction of out-of-order entries")
		l      = flag.Float64("l", 1.0, "max displacement fraction")
		seed   = flag.Int64("seed", 42, "workload seed")
		leaf   = flag.Int("leaf", 0, "leaf capacity (default 510)")
		fanout = flag.Int("fanout", 0, "internal fanout (default 256)")
		design = flag.String("design", "quit", "btree | tail | lil | pole | quit | all")
		input  = flag.String("input", "", "replay little-endian int64 keys from a file ('-' = stdin) instead of generating")
	)
	flag.Parse()

	var keys []int64
	if *input != "" {
		var err error
		keys, err = readTrace(*input)
		if err != nil {
			fmt.Fprintf(os.Stderr, "quitviz: reading trace: %v\n", err)
			os.Exit(1)
		}
	} else {
		keys = bods.Generate(bods.Spec{N: *n, K: *k, L: *l, Seed: *seed})
	}

	var names []string
	if *design == "all" {
		names = []string{"btree", "tail", "lil", "pole", "quit"}
	} else {
		names = strings.Split(*design, ",")
	}
	for _, name := range names {
		mode, ok := designs[strings.TrimSpace(name)]
		if !ok {
			fmt.Fprintf(os.Stderr, "quitviz: unknown design %q\n", name)
			os.Exit(2)
		}
		tr := core.New[int64, int64](core.Config{
			Mode: mode, LeafCapacity: *leaf, InternalFanout: *fanout,
		})
		for _, key := range keys {
			tr.Put(key, key)
		}
		tr.DumpShape(os.Stdout)
		if err := tr.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "quitviz: VALIDATION FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

// readTrace loads a binary key trace as emitted by bodsgen -format binary.
func readTrace(path string) ([]int64, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	br := bufio.NewReaderSize(r, 1<<20)
	var keys []int64
	var buf [8]byte
	for {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			if err == io.EOF {
				return keys, nil
			}
			if err == io.ErrUnexpectedEOF {
				return nil, fmt.Errorf("truncated trace after %d keys: not a whole number of int64 values", len(keys))
			}
			return nil, err
		}
		keys = append(keys, int64(binary.LittleEndian.Uint64(buf[:])))
	}
}
