package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/quittree/quit"
	"github.com/quittree/quit/internal/faultio"
	"github.com/quittree/quit/internal/shard"
)

func newTestServer(t *testing.T) (*httptest.Server, *server) {
	t.Helper()
	fs := faultio.NewMemFS()
	sample := make([]int64, 256)
	for i := range sample {
		sample[i] = int64(i) * 4000 / 256
	}
	tree, err := shard.Open[int64, string]("/srv", quit.ShardedOptions{
		DurableOptions: quit.DurableOptions{
			Options: quit.Options{LeafCapacity: 16, InternalFanout: 8},
			Sync:    quit.SyncAlways,
			FS:      fs,
		},
		Shards: 4,
	}, sample)
	if err != nil {
		t.Fatal(err)
	}
	cache := shard.NewCache[int64, string](256, 4)
	co := shard.NewCoalescer(tree, 64, time.Millisecond, cache.InvalidateBatch)
	s := &server{tree: tree, co: co, cache: cache}
	ts := httptest.NewServer(newMux(s))
	t.Cleanup(func() {
		ts.Close()
		co.Close()
		tree.Close()
	})
	return ts, s
}

func mustStatus(t *testing.T, resp *http.Response, want int) []byte {
	t.Helper()
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != want {
		t.Fatalf("status = %d, want %d; body: %s", resp.StatusCode, want, body)
	}
	return body
}

func TestServerPutGetDelete(t *testing.T) {
	ts, _ := newTestServer(t)

	resp, err := http.Post(ts.URL+"/put?key=42", "text/plain", strings.NewReader("hello"))
	if err != nil {
		t.Fatal(err)
	}
	mustStatus(t, resp, http.StatusNoContent)

	resp, err = http.Get(ts.URL + "/get?key=42")
	if err != nil {
		t.Fatal(err)
	}
	if got := string(mustStatus(t, resp, http.StatusOK)); got != "hello" {
		t.Fatalf("GET = %q, want %q", got, "hello")
	}

	// A second GET hits the cache; an overwrite must invalidate it.
	resp, _ = http.Get(ts.URL + "/get?key=42")
	mustStatus(t, resp, http.StatusOK)
	resp, _ = http.Post(ts.URL+"/put?key=42", "text/plain", strings.NewReader("world"))
	mustStatus(t, resp, http.StatusNoContent)
	resp, _ = http.Get(ts.URL + "/get?key=42")
	if got := string(mustStatus(t, resp, http.StatusOK)); got != "world" {
		t.Fatalf("GET after overwrite = %q, want %q (stale cache)", got, "world")
	}

	// The query-param form (curl-friendly) must win over an empty body.
	resp, _ = http.Post(ts.URL+"/put?key=42&value=param", "text/plain", nil)
	mustStatus(t, resp, http.StatusNoContent)
	resp, _ = http.Get(ts.URL + "/get?key=42")
	if got := string(mustStatus(t, resp, http.StatusOK)); got != "param" {
		t.Fatalf("GET after query-param put = %q, want %q", got, "param")
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/delete?key=42", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	mustStatus(t, resp, http.StatusNoContent)
	resp, _ = http.Get(ts.URL + "/get?key=42")
	mustStatus(t, resp, http.StatusNotFound)

	resp, _ = http.Get(ts.URL + "/get?key=notanumber")
	mustStatus(t, resp, http.StatusBadRequest)
}

func TestServerBatchAndRange(t *testing.T) {
	ts, _ := newTestServer(t)

	var entries []batchEntry
	for k := int64(0); k < 200; k++ {
		entries = append(entries, batchEntry{Key: k * 10, Value: fmt.Sprintf("v%d", k*10)})
	}
	buf, _ := json.Marshal(entries)
	resp, err := http.Post(ts.URL+"/batch", "application/json", strings.NewReader(string(buf)))
	if err != nil {
		t.Fatal(err)
	}
	var applied map[string]int
	if err := json.Unmarshal(mustStatus(t, resp, http.StatusOK), &applied); err != nil {
		t.Fatal(err)
	}
	if applied["applied"] != 200 || applied["updated"] != 0 {
		t.Fatalf("batch response = %v", applied)
	}

	resp, _ = http.Get(ts.URL + "/len")
	var ln map[string]int
	json.Unmarshal(mustStatus(t, resp, http.StatusOK), &ln)
	if ln["len"] != 200 {
		t.Fatalf("len = %d, want 200", ln["len"])
	}

	// A range straddling shard boundaries comes back merged and ordered.
	resp, _ = http.Get(ts.URL + "/range?start=500&end=1500")
	var got []batchEntry
	json.Unmarshal(mustStatus(t, resp, http.StatusOK), &got)
	if len(got) != 100 {
		t.Fatalf("range returned %d entries, want 100", len(got))
	}
	for i, e := range got {
		if want := int64(500 + i*10); e.Key != want {
			t.Fatalf("range[%d].Key = %d, want %d (merge order broken)", i, e.Key, want)
		}
	}
	resp, _ = http.Get(ts.URL + "/range?start=0&end=5000&limit=7")
	got = nil
	json.Unmarshal(mustStatus(t, resp, http.StatusOK), &got)
	if len(got) != 7 {
		t.Fatalf("limited range returned %d entries, want 7", len(got))
	}
}

func TestServerConcurrentWritersAndStats(t *testing.T) {
	ts, s := newTestServer(t)

	const clients, per = 16, 8
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := int64(g*1000 + i)
				resp, err := http.Post(fmt.Sprintf("%s/put?key=%d", ts.URL, k),
					"text/plain", strings.NewReader("x"))
				if err != nil {
					t.Errorf("client %d: %v", g, err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusNoContent {
					t.Errorf("client %d: status %d", g, resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// Warm the cache, then overwrite the cached key — the write path must
	// invalidate it between commit and ack.
	for i := 0; i < 3; i++ {
		resp, _ := http.Get(ts.URL + "/get?key=1")
		resp.Body.Close()
	}
	resp, err := http.Post(ts.URL+"/put?key=1", "text/plain", strings.NewReader("y"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	if err := json.Unmarshal(mustStatus(t, resp, http.StatusOK), &st); err != nil {
		t.Fatal(err)
	}
	if st.Shards != 4 {
		t.Fatalf("stats.Shards = %d, want 4", st.Shards)
	}
	if st.Tree.Size != clients*per {
		t.Fatalf("stats.Tree.Size = %d, want %d", st.Tree.Size, clients*per)
	}
	if st.Coalescer.CoalescedOps != clients*per+1 {
		t.Fatalf("stats.Coalescer.CoalescedOps = %d, want %d", st.Coalescer.CoalescedOps, clients*per+1)
	}
	if st.Coalescer.CoalescedBatches == 0 || st.Coalescer.CoalescedBatches > st.Coalescer.CoalescedOps {
		t.Fatalf("stats.Coalescer.CoalescedBatches = %d nonsensical", st.Coalescer.CoalescedBatches)
	}
	if st.Durability.Fsyncs == 0 {
		t.Fatal("stats.Durability.Fsyncs = 0 under SyncAlways")
	}
	if st.Cache.CacheHits == 0 || st.Cache.CacheMisses == 0 {
		t.Fatalf("stats.Cache = %+v, want both hits and misses", st.Cache)
	}
	if st.Cache.CacheInvalidations == 0 {
		t.Fatalf("stats.Cache.CacheInvalidations = 0 after writes to cached keys; cache=%+v", st.Cache)
	}
	_ = s
}
